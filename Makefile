.PHONY: all build test fmt ci bench

all: build

build:
	dune build @all

test:
	dune runtest

# Format check gates on ocamlformat being installed: the tree must
# still build and test in environments that don't ship it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe

ci: build test fmt
