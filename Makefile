.PHONY: all build test fmt doc lint-loops lint-globals ci bench chaos-smoke \
	bench-guard replay-smoke vfs-smoke cluster-smoke gray-smoke

all: build

build:
	dune build @all

test:
	dune runtest

# Format check gates on ocamlformat being installed: the tree must
# still build and test in environments that don't ship it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

doc:
	dune build @doc

# Service loops belong on lib/svc: a hand-rolled `Chan.recv` request
# loop in the service layers bypasses the uniform overload policies
# and queue metrics.  Allowlisted files hold the loops that are not
# request/reply services: the fabric's wire and NIC delivery loops,
# the stack's frame demux fibers, the supervisor's restart
# control-plane, the cluster node's park channel, and the client's
# pipeline window (a bounded-capacity semaphore, not a request loop).
LINT_LOOP_DIRS := lib/kernel lib/net lib/cluster lib/obs lib/fsspec lib/vfs
LINT_LOOP_ALLOW := \
	lib/kernel/supervisor.ml \
	lib/net/fabric.ml \
	lib/net/stack.ml \
	lib/cluster/cluster.ml \
	lib/cluster/client.ml

lint-loops:
	@bad=$$(grep -rn --include='*.ml' 'Chan\.recv\b' $(LINT_LOOP_DIRS) \
		| grep -v $(foreach f,$(LINT_LOOP_ALLOW),-e '^$(f):') || true); \
	if [ -n "$$bad" ]; then \
		echo "lint-loops: hand-rolled Chan.recv service loop outside lib/svc:"; \
		echo "$$bad"; \
		echo "port it to Svc.serve / Svc.serve_cast, or allowlist it in the Makefile"; \
		exit 1; \
	else \
		echo "lint-loops: OK"; \
	fi

# Domain-safety gate: no new top-level mutable globals in lib/.  The
# Ctx refactor moved every process-global (Inspect registry, metrics,
# trace factory, crash points) into per-run contexts so N engines can
# run concurrently on N domains; a fresh `let x = ref ...` at module
# top level would silently re-introduce cross-run sharing.  Allowlist
# files that earn an exception (none today); Atomic.make is deliberately
# not matched — atomics are how intentional cross-domain state is spelt.
LINT_GLOBAL_ALLOW :=

lint-globals:
	@bad=$$(grep -rnE --include='*.ml' \
		"^let [a-z_][a-zA-Z0-9_']*( *:[^=]*)? = (ref |Hashtbl\.create|Queue\.create|Buffer\.create|Array\.make)" \
		lib/ \
		| grep -v $(foreach f,$(LINT_GLOBAL_ALLOW),-e '^$(f):') -e '^$$' \
		|| true); \
	if [ -n "$$bad" ]; then \
		echo "lint-globals: top-level mutable global in lib/ (breaks domain-safety):"; \
		echo "$$bad"; \
		echo "bind it in a Chorus.Ctx slot (per-run) or allowlist it in the Makefile"; \
		exit 1; \
	else \
		echo "lint-globals: OK"; \
	fi

bench:
	dune exec bench/main.exe

# A small seeded chaos campaign plus the oracle selftest (~2s): every
# fault kind gets explored, every oracle must stay green, and the
# planted violation must be caught.  Exit 1 on any oracle violation,
# 2 if the selftest fails.  --domains 0 shards the campaign across
# every available core (auto-detected, so a single-core CI host runs
# it sequentially at unchanged cost); the merged report is
# byte-identical at any width.
chaos-smoke:
	dune exec bin/chorus_sim.exe -- chaos --disk-runs 30 --kv-runs 6 \
		--selftest --domains 0

# Cluster hot-path gate: E24 end-to-end (open-loop Zipf load through
# client pipelining, group-commit batching and leader leases) plus a
# lease-focused chaos campaign — leader kills and partition-ish fabric
# windows with the linearizability oracle vetoing stale leased reads.
cluster-smoke:
	@dune exec bin/chorus_sim.exe -- run e24 > _build/cluster_smoke.txt \
		|| { cat _build/cluster_smoke.txt; exit 1; }; \
	echo "cluster-smoke: e24 OK"; \
	dune exec bin/chorus_sim.exe -- chaos --disk-runs 0 --kv-runs 0 \
		--lease-runs 8 --seed 11

# Gray-failure gate: a short gray chaos campaign (per-link delay and
# asymmetric partition windows against breaker/deadline clients; the
# fail-fast liveness oracle runs beside linearizability and both must
# stay green) plus a pinned mid-window gray replay snapshot diffed
# byte-for-byte against the checked-in golden (regenerate with the
# second command below if a format change is intentional).
GRAY_SCHED := seed=11 link-delay(0>1,p=0.65,200000cy)@1150000+600000 partition(2>0)@1300000+400000
gray-smoke:
	@dune exec bin/chorus_sim.exe -- chaos --disk-runs 0 --kv-runs 0 \
		--gray-runs 12 --seed 11; \
	dune exec bin/chorus_sim.exe -- replay --scenario gray \
		--schedule '$(GRAY_SCHED)' --at 1500000 > _build/gray_smoke.txt; \
	if ! diff -u test/golden/replay_gray_t1500000.txt _build/gray_smoke.txt; then \
		echo "gray-smoke: snapshot drifted from the golden (diff above)"; \
		exit 1; \
	fi; \
	echo "gray-smoke: OK"

# Compare the committed BENCH_*.json baselines against a fresh
# regeneration of their deterministic fields.
bench-guard:
	scripts/bench_guard

# Time-travel replay determinism gate: replay a pinned chaos schedule
# (a known kill-point reproducer) to a fixed virtual time and require
# the snapshot to match the checked-in golden byte-for-byte, then diff
# the schedule against its one-fault-dropped neighbour and require a
# first-divergence report.  Catches both nondeterminism regressions
# and accidental snapshot format drift (regenerate the golden with the
# first command below if the drift is intentional).
REPLAY_SCHED := seed=69 kill-point(chaos.store)@386220+78492 kill-point(chaos.store)@319877+182563
replay-smoke:
	@dune exec bin/chorus_sim.exe -- replay --scenario disk \
		--schedule '$(REPLAY_SCHED)' --at 300000 > _build/replay_smoke.txt; \
	if ! diff -u test/golden/replay_disk_t300000.txt _build/replay_smoke.txt; then \
		echo "replay-smoke: snapshot drifted from the golden (diff above)"; \
		exit 1; \
	fi; \
	dune exec bin/chorus_sim.exe -- replay --scenario disk \
		--schedule '$(REPLAY_SCHED)' --at 450000 --diff --drop 1 \
		| grep -q 'first diverging trace event' \
		|| { echo "replay-smoke: --diff reported no divergence"; exit 1; }; \
	echo "replay-smoke: OK"

# Projected-FS gate: a small provider-kill chaos campaign (the
# placeholder-invariant, recovery and quiescence oracles must all stay
# green) plus a pinned mid-kill replay snapshot diffed byte-for-byte
# against the checked-in golden (regenerate with the second command
# below if a format change is intentional).
PROJFS_SCHED := seed=100 kill-provider@445828+264255 loss(p=0.10)@890934+434520 loss(p=0.40)@992553+494499
vfs-smoke:
	@dune exec bin/chorus_sim.exe -- chaos --disk-runs 0 --kv-runs 0 \
		--projfs-runs 10 --seed 7; \
	dune exec bin/chorus_sim.exe -- replay --scenario projfs \
		--schedule '$(PROJFS_SCHED)' --at 500000 > _build/vfs_smoke.txt; \
	if ! diff -u test/golden/replay_projfs_t500000.txt _build/vfs_smoke.txt; then \
		echo "vfs-smoke: snapshot drifted from the golden (diff above)"; \
		exit 1; \
	fi; \
	echo "vfs-smoke: OK"

ci: build test fmt doc lint-loops lint-globals chaos-smoke replay-smoke \
	vfs-smoke cluster-smoke gray-smoke
