(* Command-line driver: run any experiment at any scale/seed, list the
   catalogue, or dump CSV for plotting. *)

module Experiments = Chorus_experiments.Experiments
module Tablefmt = Chorus_util.Tablefmt

open Cmdliner

let list_cmd =
  let doc = "List all experiments and the paper claims they test." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %-32s %s\n" e.Experiments.id e.Experiments.title
          e.Experiments.claim)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let ids_range =
  (* derived from the catalogue so it can't go stale *)
  match Experiments.all with
  | [] -> "none"
  | first :: rest ->
    let last =
      List.fold_left (fun _ e -> e.Experiments.id) first.Experiments.id rest
    in
    Printf.sprintf "%s..%s" first.Experiments.id last

let ids_arg =
  let doc = Printf.sprintf "Experiment ids (%s), or 'all'." ids_range in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)

let full_arg =
  let doc = "Full-scale runs (slower, bigger sweeps); default is quick." in
  Arg.(value & flag & info [ "full" ] ~doc)

let seed_arg =
  let doc = "Master random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let csv_arg =
  let doc = "Directory to also dump one CSV per table into." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let domains_arg =
  let doc =
    "Shard independent runs across N host domains (0 = auto-detect). \
     Results are merged in deterministic order, so every \
     simulator-side number is byte-identical at any domain count; \
     only wall-clock time changes."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let resolve_domains n =
  if n < 0 then begin
    Printf.eprintf "--domains must be >= 0\n";
    exit 2
  end
  else if n = 0 then Chorus_par.Pool.recommended ()
  else n

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

let run_cmd =
  let doc = "Run experiments and print their tables." in
  let run ids full seed csv domains =
    let selected =
      if List.mem "all" ids then Experiments.all
      else
        List.map
          (fun id ->
            match Experiments.find id with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %S (try 'list')\n" id;
              exit 2)
          ids
    in
    let domains = resolve_domains domains in
    let quick = not full in
    (* experiments compute tables silently, so sharding them across
       domains and printing in catalogue order afterwards emits
       byte-identical output to the sequential path *)
    let results =
      Chorus_par.Pool.map ~domains selected (fun e ->
          e.Experiments.run ~quick ~seed)
    in
    List.iter2
      (fun e tables ->
        Printf.printf "--- %s: %s ---\nclaim: %s\n%!"
          (String.uppercase_ascii e.Experiments.id)
          e.Experiments.title e.Experiments.claim;
        List.iter
          (fun t ->
            Tablefmt.print t;
            match csv with
            | None -> ()
            | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let file =
                Filename.concat dir
                  (Printf.sprintf "%s_%s.csv" e.Experiments.id
                     (sanitize (Tablefmt.title t)))
              in
              let oc = open_out file in
              output_string oc (Tablefmt.to_csv t);
              close_out oc)
          tables)
      selected results
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ ids_arg $ full_arg $ seed_arg $ csv_arg $ domains_arg)

(* --------------------------------------------------------------- *)
(* shared bits: --json rendering via the Inspect value type          *)

let json_arg =
  let doc = "Emit one JSON object instead of tables (jq-composable)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let value_of_record (r : Chorus.Trace.record) =
  let module Trace = Chorus.Trace in
  let open Chorus.Inspect in
  let ev, fields =
    match r.Trace.event with
    | Trace.Spawn { child; on_core } ->
      ("spawn", [ ("child", Int child); ("on_core", Int on_core) ])
    | Trace.Exit { status } -> ("exit", [ ("status", String status) ])
    | Trace.Block { on } -> ("block", [ ("on", String on) ])
    | Trace.Wake -> ("wake", [])
    | Trace.Send { chan; words; src; dst } ->
      ( "send",
        [ ("chan", Int chan); ("words", Int words); ("src", Int src);
          ("dst", Int dst) ] )
    | Trace.Recv { chan } -> ("recv", [ ("chan", Int chan) ])
    | Trace.Steal { victim_core; fiber } ->
      ("steal", [ ("victim_core", Int victim_core); ("stolen", Int fiber) ])
    | Trace.Span_begin { subsystem; span } ->
      ("span_begin", [ ("subsystem", String subsystem); ("span", String span) ])
    | Trace.Span_end { subsystem; span } ->
      ("span_end", [ ("subsystem", String subsystem); ("span", String span) ])
    | Trace.Segment { start; label } ->
      ("segment", [ ("start", Int start); ("label", String label) ])
    | Trace.Custom s -> ("custom", [ ("note", String s) ])
  in
  Assoc
    ([ ("time", Int r.Trace.time); ("core", Int r.Trace.core);
       ("fiber", Int r.Trace.fiber); ("event", String ev) ]
    @ fields)

(* --------------------------------------------------------------- *)
(* trace: watch the kernel do one file operation, event by event     *)

let trace_cmd =
  let doc =
    "Boot the kernel, perform one file write+read, and dump the \
     scheduler/channel trace."
  in
  let limit_arg =
    Arg.(value & opt int 80 & info [ "limit" ] ~doc:"Max records to print.")
  in
  let ring_arg =
    Arg.(
      value & opt int 200_000
      & info [ "ring" ]
          ~doc:
            "Trace ring capacity: most recent records kept; the count of \
             dropped older records is always reported.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Also export the full trace as Chrome trace-event JSON \
             (open in about://tracing or ui.perfetto.dev).")
  in
  let go limit capacity json chrome =
    let module Machine = Chorus_machine.Machine in
    let module Runtime = Chorus.Runtime in
    let module Trace = Chorus.Trace in
    let module Kernel = Chorus_kernel.Kernel in
    let module Msgvfs = Chorus_kernel.Msgvfs in
    let sink, get, dropped = Trace.ring ~capacity () in
    let stats =
      Runtime.run
        (Runtime.config ~trace:sink ~seed:1 (Machine.mesh ~cores:8))
        (fun () ->
          let kern = Kernel.boot Kernel.default_config in
          let fs = Kernel.fs_client kern in
          ignore (Msgvfs.mkdir fs "/tmp");
          ignore (Msgvfs.create fs "/tmp/hello");
          match Msgvfs.open_ fs "/tmp/hello" with
          | Ok fd ->
            ignore (Msgvfs.write fs fd ~off:0 "traced!");
            ignore (Msgvfs.read fs fd ~off:0 ~len:7)
          | Error _ -> ())
    in
    let records = get () in
    let dropped = dropped () in
    if json then
      print_endline
        (Chorus.Inspect.to_json
           (Chorus.Inspect.Assoc
              [ ("records",
                 Chorus.Inspect.List (List.map value_of_record records));
                ("dropped", Chorus.Inspect.Int dropped);
                ("makespan",
                 Chorus.Inspect.Int stats.Chorus.Runstats.makespan);
                ("msgs", Chorus.Inspect.Int stats.Chorus.Runstats.msgs);
                ("spawns", Chorus.Inspect.Int stats.Chorus.Runstats.spawns) ]))
    else begin
      Printf.printf
        "mkdir + create + open + write + read through the message kernel\n\
         (%d trace records retained%s; showing the first %d)\n\n"
        (List.length records)
        (if dropped > 0 then
           Printf.sprintf ", %d dropped by the ring (raise --ring)" dropped
         else "")
        limit;
      List.iteri
        (fun i r ->
          if i < limit then
            Format.printf "%a@." Trace.pp_record r)
        records;
      Printf.printf "\n%d virtual cycles, %d messages, %d fibers spawned\n"
        stats.Chorus.Runstats.makespan stats.Chorus.Runstats.msgs
        stats.Chorus.Runstats.spawns
    end;
    match chrome with
    | None -> ()
    | Some file ->
      Chorus_obs.Chrome_trace.write_file file records;
      if not json then
        Printf.printf "wrote %d records to %s (Chrome trace-event JSON)\n"
          (List.length records) file
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const go $ limit_arg $ ring_arg $ json_arg $ chrome_arg)

(* --------------------------------------------------------------- *)
(* profile: run one experiment with metrics + tracing switched on     *)

let profile_cmd =
  let doc =
    "Run one experiment with the observability layer on and print \
     per-service latency, the busiest fibers, and the core-to-core \
     message matrix."
  in
  let module Metrics = Chorus_obs.Metrics in
  let module Profile = Chorus_obs.Profile in
  let module Trace = Chorus.Trace in
  let module Runtime = Chorus.Runtime in
  let id_arg =
    let doc = Printf.sprintf "Experiment id (%s)." ids_range in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let ring_arg =
    Arg.(
      value & opt int 200_000
      & info [ "ring" ]
          ~doc:"Trace ring capacity: most recent records kept per run.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Also export the profiled run's trace as Chrome trace-event \
             JSON.")
  in
  let pct cycles total =
    if total <= 0 then "-"
    else Printf.sprintf "%.1f%%" (100. *. float cycles /. float total)
  in
  let go id full seed capacity json chrome =
    match Experiments.find id with
    | None ->
      Printf.eprintf "unknown experiment %S (try 'list')\n" id;
      exit 2
    | Some e ->
      (* Metrics accumulate across every run the experiment performs;
         the trace-derived profile uses the longest single run (the
         experiment's headline configuration is typically its biggest). *)
      let reg = Metrics.create () in
      Metrics.install reg;
      let rings : ((unit -> Trace.record list) * (unit -> int)) list ref =
        ref []
      in
      Runtime.set_default_trace
        (Some
           (fun () ->
             let sink, get, dropped = Trace.ring ~capacity () in
             rings := (get, dropped) :: !rings;
             sink));
      if not json then
        Printf.printf "--- profiling %s: %s ---\nclaim: %s\n%!"
          (String.uppercase_ascii e.Experiments.id)
          e.Experiments.title e.Experiments.claim;
      let _tables = e.Experiments.run ~quick:(not full) ~seed in
      Runtime.set_default_trace None;
      Metrics.uninstall ();
      let snap = Metrics.snapshot reg in
      if json then begin
        let open Chorus.Inspect in
        let best =
          List.fold_left
            (fun acc (get, dropped) ->
              let records = get () in
              let n = List.length records in
              match acc with
              | Some (_, bn, _) when bn >= n -> acc
              | _ -> Some (records, n, dropped ()))
            None !rings
        in
        let fibers, messages, dropped, nrecords =
          match best with
          | None -> ([], 0, 0, 0)
          | Some (records, n, dropped) ->
            let p = Profile.of_records records in
            let fibers =
              List.map
                (fun f ->
                  Assoc
                    [ ("fid", Int f.Profile.fid);
                      ("label", String f.Profile.label);
                      ("busy", Int f.Profile.busy);
                      ("blocked", Int f.Profile.blocked);
                      ("sent", Int f.Profile.sent);
                      ("recvd", Int f.Profile.received) ])
                p.Profile.fibers
            in
            (fibers, Profile.messages p, dropped, n)
        in
        print_endline
          (to_json
             (Assoc
                [ ("experiment", String e.Experiments.id);
                  ("metrics", Chorus_debug.Snapshot.value_of_metrics snap);
                  ("trace",
                   Assoc
                     [ ("runs", Int (List.length !rings));
                       ("records", Int nrecords); ("dropped", Int dropped) ]);
                  ("messages", Int messages);
                  ("fibers", List fibers) ]));
        exit 0
      end;
      let lat =
        Tablefmt.create ~title:"service latency (virtual cycles)"
          ~columns:
            [ ("service", Tablefmt.Left); ("metric", Tablefmt.Left);
              ("count", Tablefmt.Right); ("mean", Tablefmt.Right);
              ("p50", Tablefmt.Right); ("p95", Tablefmt.Right);
              ("p99", Tablefmt.Right); ("max", Tablefmt.Right) ]
      in
      let other =
        Tablefmt.create ~title:"counters and gauges"
          ~columns:
            [ ("service", Tablefmt.Left); ("metric", Tablefmt.Left);
              ("kind", Tablefmt.Left); ("value", Tablefmt.Right);
              ("peak", Tablefmt.Right); ("mean", Tablefmt.Right) ]
      in
      List.iter
        (fun ((sub, name), v) ->
          match v with
          | Metrics.Histo { count; mean; p50; p95; p99; max } ->
            Tablefmt.add_row lat
              [ sub; name; Tablefmt.cell_int count; Tablefmt.cell_float mean;
                Tablefmt.cell_int p50; Tablefmt.cell_int p95;
                Tablefmt.cell_int p99; Tablefmt.cell_int max ]
          | Metrics.Counter n ->
            Tablefmt.add_row other
              [ sub; name; "counter"; Tablefmt.cell_int n; "-"; "-" ]
          | Metrics.Gauge { last; peak; mean } ->
            Tablefmt.add_row other
              [ sub; name; "gauge"; Tablefmt.cell_int last;
                Tablefmt.cell_int peak; Tablefmt.cell_float mean ])
        snap;
      Tablefmt.print lat;
      Tablefmt.print other;
      let best =
        List.fold_left
          (fun acc (get, dropped) ->
            let records = get () in
            let n = List.length records in
            match acc with
            | Some (_, bn, _) when bn >= n -> acc
            | _ -> Some (records, n, dropped ()))
          None !rings
      in
      (match best with
      | None -> Printf.printf "(no run produced trace records)\n"
      | Some (records, n, dropped) ->
        Printf.printf "trace profile: longest of %d runs, %d records%s\n\n"
          (List.length !rings) n
          (if dropped > 0 then
             Printf.sprintf " (ring dropped %d oldest; raise --ring)" dropped
           else "");
        let p = Profile.of_records records in
        let busy_total =
          List.fold_left (fun a f -> a + f.Profile.busy) 0 p.Profile.fibers
        in
        let busy =
          Tablefmt.create ~title:"top fibers by busy time"
            ~columns:
              [ ("fiber", Tablefmt.Right); ("label", Tablefmt.Left);
                ("busy", Tablefmt.Right); ("share", Tablefmt.Right);
                ("sent", Tablefmt.Right); ("recvd", Tablefmt.Right) ]
        in
        List.iter
          (fun f ->
            Tablefmt.add_row busy
              [ string_of_int f.Profile.fid; f.Profile.label;
                Tablefmt.cell_int f.Profile.busy; pct f.Profile.busy busy_total;
                Tablefmt.cell_int f.Profile.sent;
                Tablefmt.cell_int f.Profile.received ])
          (Profile.top_busy p ~n:5);
        Tablefmt.print busy;
        let blocked =
          Tablefmt.create ~title:"top fibers by blocked time"
            ~columns:
              [ ("fiber", Tablefmt.Right); ("label", Tablefmt.Left);
                ("blocked", Tablefmt.Right); ("waiting on", Tablefmt.Left) ]
        in
        List.iter
          (fun f ->
            let on =
              Profile.blocked_breakdown f
              |> List.filteri (fun i _ -> i < 3)
              |> List.map (fun (tag, d) ->
                     Printf.sprintf "%s:%s" tag (Tablefmt.cell_int d))
              |> String.concat " "
            in
            Tablefmt.add_row blocked
              [ string_of_int f.Profile.fid; f.Profile.label;
                Tablefmt.cell_int f.Profile.blocked; on ])
          (Profile.top_blocked p ~n:5);
        Tablefmt.print blocked;
        let matrix =
          Tablefmt.create
            ~title:
              (Printf.sprintf "core-to-core messages (%d total)"
                 (Profile.messages p))
            ~columns:
              (("src\\dst", Tablefmt.Left)
              :: List.init p.Profile.cores (fun c ->
                     (string_of_int c, Tablefmt.Right)))
        in
        Array.iteri
          (fun src row ->
            Tablefmt.add_row matrix
              (string_of_int src
              :: Array.to_list
                   (Array.map
                      (fun n -> if n = 0 then "." else Tablefmt.cell_int n)
                      row)))
          p.Profile.matrix;
        Tablefmt.print matrix;
        match chrome with
        | None -> ()
        | Some file ->
          Chorus_obs.Chrome_trace.write_file file records;
          Printf.printf "wrote %d records to %s (Chrome trace-event JSON)\n"
            n file)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const go $ id_arg $ full_arg $ seed_arg $ ring_arg $ json_arg
      $ chrome_arg)

(* --------------------------------------------------------------- *)
(* cluster: drive the sharded replicated KV cluster                   *)

let cluster_cmd =
  let doc =
    "Boot the sharded, replicated KV cluster on a lossy fabric, drive \
     it with a client workload (optionally crashing nodes mid-run), \
     and print availability, election and healing statistics."
  in
  let module Machine = Chorus_machine.Machine in
  let module Policy = Chorus_sched.Policy in
  let module Runtime = Chorus.Runtime in
  let module Fiber = Chorus.Fiber in
  let module Fabric = Chorus_net.Fabric in
  let module Stack = Chorus_net.Stack in
  let module Faults = Chorus_workload.Faults in
  let module Cluster = Chorus_cluster.Cluster in
  let module Shardmap = Chorus_cluster.Shardmap in
  let module Client = Chorus_cluster.Client in
  let nodes_arg =
    Arg.(value & opt int 5 & info [ "nodes" ] ~doc:"Cluster size.")
  in
  let shards_arg =
    Arg.(value & opt int 8 & info [ "shards" ] ~doc:"Shard count.")
  in
  let repl_arg =
    Arg.(
      value & opt int 3
      & info [ "replication" ] ~doc:"Replicas per shard (capped at nodes).")
  in
  let ops_arg =
    Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Client put/get pairs.")
  in
  let loss_arg =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~doc:"Fabric frame-loss probability (0..1).")
  in
  let crashes_arg =
    Arg.(
      value & opt int 0
      & info [ "crashes" ]
          ~doc:"Node crashes to inject at exponential intervals.")
  in
  let go nnodes nshards replication ops loss crashes seed =
    let stats =
      Runtime.run
        (Runtime.config ~policy:(Policy.round_robin ()) ~seed
           (Machine.mesh ~cores:32))
        (fun () ->
          let net = Fabric.create ~latency:5_000 ~loss ~seed:(seed + 1) () in
          let c = Cluster.create ~nshards ~replication ~seed ~nnodes net in
          Cluster.start c;
          let cstack =
            Stack.create net (Fabric.attach net ~label:"client" ())
          in
          let client =
            Client.create ~seed ~bootstrap:(Cluster.addrs c) cstack
          in
          Fiber.sleep 1_000_000;
          let injector =
            if crashes > 0 then begin
              let addrs = Array.of_list (Cluster.addrs c) in
              Some
                (Faults.start_actions
                   { Faults.mean_interval = 500_000;
                     crashes;
                     seed = seed + 7 }
                   ~inject:(fun ~n ->
                     let a = addrs.(n mod Array.length addrs) in
                     if Cluster.node_up c a then begin
                       Cluster.crash_node c a;
                       true
                     end
                     else false))
            end
            else None
          in
          let acked = ref 0 and unavailable = ref 0 and wrong = ref 0 in
          for i = 0 to ops - 1 do
            let k = Printf.sprintf "key-%05d" i in
            (match Client.put client k (string_of_int i) with
            | `Ok -> incr acked
            | `Net_fail -> incr unavailable);
            match Client.get client k with
            | `Found v when v = string_of_int i -> ()
            | `Found _ | `Miss | `Net_fail -> incr wrong
          done;
          (match injector with Some inj -> Faults.wait inj | None -> ());
          let t =
            Tablefmt.create
              ~title:
                (Printf.sprintf
                   "cluster: %d nodes, %d shards x%d, loss %.1f%%, %d \
                    crashes"
                   nnodes nshards
                   (min replication nnodes)
                   (100.0 *. loss) crashes)
              ~columns:
                [ ("metric", Tablefmt.Left); ("value", Tablefmt.Right) ]
          in
          let addi name v = Tablefmt.add_row t [ name; string_of_int v ] in
          addi "puts acked" !acked;
          addi "puts unavailable" !unavailable;
          addi "reads missing an acked write" !wrong;
          Tablefmt.add_row t
            [ "availability";
              Printf.sprintf "%.5f"
                (float_of_int !acked /. float_of_int (max 1 ops)) ];
          addi "elections started" (Cluster.elections_started c);
          addi "leadership changes" (Cluster.leader_changes c);
          addi "node crashes detected" (Cluster.node_crashes c);
          addi "supervisor restarts" (Cluster.restarts c);
          addi "client op retries" (Client.retries client);
          addi "client leader redirects" (Client.redirects client);
          Tablefmt.print t;
          let leaders =
            List.init nshards (fun s ->
                Printf.sprintf "%d:%d" s (Cluster.leader_of c s))
          in
          Printf.printf "shard leaders  %s\n" (String.concat " " leaders);
          Cluster.stop c)
    in
    Printf.printf
      "\n%d virtual cycles, %d messages, %d protocol retransmissions\n"
      stats.Chorus.Runstats.makespan stats.Chorus.Runstats.msgs
      stats.Chorus.Runstats.retries
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      const go $ nodes_arg $ shards_arg $ repl_arg $ ops_arg $ loss_arg
      $ crashes_arg $ seed_arg)

let chaos_cmd =
  let doc =
    "Run a deterministic chaos campaign: enumerate fault schedules \
     (service-fiber kills, node crashes, fabric loss/dup/reorder/delay, \
     disk read errors), run a recorded workload under each, and check \
     linearizability, durability, recovery and quiescence oracles.  \
     Violations are replay-verified and shrunk to minimal schedules."
  in
  let module Chaos = Chorus_chaos.Chaos in
  let module Schedule = Chorus_chaos.Schedule in
  let disk_arg =
    Arg.(
      value & opt int 24
      & info [ "disk-runs" ] ~doc:"Disk-scenario schedules to explore.")
  in
  let kv_arg =
    Arg.(
      value & opt int 8
      & info [ "kv-runs" ] ~doc:"Cluster-scenario schedules to explore.")
  in
  let projfs_arg =
    Arg.(
      value & opt int 0
      & info [ "projfs-runs" ]
          ~doc:
            "Projected-filesystem schedules to explore (provider kills, \
             fabric faults; placeholder-invariant oracle).")
  in
  let lease_arg =
    Arg.(
      value & opt int 0
      & info [ "lease-runs" ]
          ~doc:
            "Leased-cluster schedules to explore (batched + leased hot \
             path under leader kills and partition-ish fabric faults; \
             the linearizability oracle vetoes stale leased reads).")
  in
  let gray_arg =
    Arg.(
      value & opt int 0
      & info [ "gray-runs" ]
          ~doc:
            "Gray-failure schedules to explore (per-link delay and \
             asymmetric partition windows against clients running \
             circuit breakers and per-op deadline budgets; the \
             fail-fast liveness oracle joins linearizability).")
  in
  let selftest_arg =
    Arg.(
      value & flag
      & info [ "selftest" ]
          ~doc:
            "Also plant a history corruption and verify the oracles \
             catch, shrink and replay it.")
  in
  let go disk_runs kv_runs projfs_runs lease_runs gray_runs selftest seed
      domains =
    let domains = resolve_domains domains in
    let t0 = Unix.gettimeofday () in
    let r =
      Chaos.campaign ~disk_runs ~kv_runs ~projfs_runs ~lease_runs ~gray_runs
        ~domains ~seed ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    let t =
      Tablefmt.create
        ~title:
          (Printf.sprintf "chaos campaign: %d runs, seed %d" r.Chaos.runs seed)
        ~columns:[ ("metric", Tablefmt.Left); ("value", Tablefmt.Right) ]
    in
    let addi name v = Tablefmt.add_row t [ name; string_of_int v ] in
    addi "runs" r.Chaos.runs;
    addi "client ops recorded" r.Chaos.total_ops;
    addi "faults injected" r.Chaos.faults_injected;
    List.iter
      (fun (k, n) -> addi (Printf.sprintf "faults explored: %s" k) n)
      r.Chaos.kinds;
    addi "oracle violations" (List.length r.Chaos.violations);
    Tablefmt.add_row t
      [ "campaign digest"; r.Chaos.campaign_digest ];
    addi "domains (host)" domains;
    Tablefmt.add_row t
      [ "runs/sec (host)"; Printf.sprintf "%.1f" (float_of_int r.Chaos.runs /. dt) ];
    Tablefmt.print t;
    List.iter
      (fun v ->
        Printf.printf "VIOLATION (%s): %s\n  schedule: %s\n  minimal:  %s\n  replay-identical: %b\n"
          (match v.Chaos.vscenario with
          | Chaos.Disk -> "disk"
          | Chaos.Kv -> "kv"
          | Chaos.Kv_lease -> "kv-lease"
          | Chaos.Projfs -> "projfs"
          | Chaos.Gray -> "gray")
          v.Chaos.first
          (Schedule.to_string v.Chaos.schedule)
          (Schedule.to_string v.Chaos.minimal)
          v.Chaos.replay_identical)
      r.Chaos.violations;
    if selftest then begin
      let s = Chaos.selftest ~seed in
      Printf.printf
        "selftest: planted violation %s, shrunk to %d faults, replay \
         identical: %b\n"
        (if s.Chaos.caught then "caught" else "MISSED")
        s.Chaos.minimal_faults s.Chaos.st_replay_identical;
      if
        not (s.Chaos.caught && s.Chaos.st_replay_identical && s.Chaos.minimal_faults = 0)
      then exit 2
    end;
    if r.Chaos.violations <> [] then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const go $ disk_arg $ kv_arg $ projfs_arg $ lease_arg $ gray_arg
      $ selftest_arg $ seed_arg $ domains_arg)

(* --------------------------------------------------------------- *)
(* replay: time-travel debugging over the chaos scenarios            *)

let replay_cmd =
  let doc =
    "Time-travel replay: drive a chaos scenario deterministically to \
     virtual time T and dump a snapshot of the complete live state \
     (run queues, fiber states, channel and inbox occupancy, raft \
     terms, metrics).  With $(b,--diff), execute two runs to the same \
     T and report the first diverging trace event plus a structural \
     state diff — point it at a shrunk reproducer and its passing \
     neighbour to see where the executions part ways."
  in
  let module Chaos = Chorus_chaos.Chaos in
  let module Schedule = Chorus_chaos.Schedule in
  let module Snapshot = Chorus_debug.Snapshot in
  let module Replay = Chorus_debug.Replay in
  let scenario_arg =
    Arg.(
      value & opt string "disk"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Chaos scenario: $(b,disk), $(b,cluster) (alias $(b,kv)), \
             $(b,lease) (alias $(b,kv-lease)), $(b,projfs) or \
             $(b,gray).")
  in
  let index_arg =
    Arg.(
      value & opt int 0
      & info [ "index" ]
          ~doc:
            "Campaign schedule index (with --seed); 0 is the fault-free \
             schedule.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:
            "Explicit schedule in reproducer syntax (as printed by chaos \
             violation reports), overriding --seed/--index.  Example: \
             'seed=7 disk(p=0.30)@200000+150000'.")
  in
  let at_arg =
    Arg.(
      value & opt int 300_000
      & info [ "at" ] ~docv:"T" ~doc:"Virtual time (cycles) to pause at.")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Compare against a second run (see --against / --drop) at the \
             same T.")
  in
  let against_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"SCHED"
          ~doc:"Second schedule for --diff, in reproducer syntax.")
  in
  let drop_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "drop" ] ~docv:"K"
          ~doc:
            "Second schedule for --diff = first schedule with fault K \
             (0-based) deleted; default drops the last fault.")
  in
  let parse_schedule what s =
    try Schedule.of_string s
    with Invalid_argument m ->
      Printf.eprintf "bad %s: %s\n" what m;
      exit 2
  in
  let go scenario seed index schedule at diff against drop json =
    let scen =
      match scenario with
      | "disk" -> Chaos.Disk
      | "cluster" | "kv" -> Chaos.Kv
      | "lease" | "kv-lease" -> Chaos.Kv_lease
      | "projfs" -> Chaos.Projfs
      | "gray" -> Chaos.Gray
      | s ->
        Printf.eprintf
          "unknown scenario %S (disk|cluster|lease|projfs|gray)\n" s;
        exit 2
    in
    let sch =
      match schedule with
      | Some s -> parse_schedule "--schedule" s
      | None -> Chaos.gen scen ~seed ~index
    in
    if not diff then begin
      let r = Replay.run_to scen sch ~at in
      if json then print_endline (Snapshot.to_json r.Replay.snapshot)
      else begin
        Printf.printf "replay %s  %s\npaused at t=%d  (%d trace records)\n"
          (match scen with
          | Chaos.Disk -> "disk"
          | Chaos.Kv -> "cluster"
          | Chaos.Kv_lease -> "kv-lease"
          | Chaos.Projfs -> "projfs"
          | Chaos.Gray -> "gray")
          (Schedule.to_string sch) at
          (List.length r.Replay.trace);
        print_string (Snapshot.render r.Replay.snapshot)
      end
    end
    else begin
      let sch_b =
        match (against, drop) with
        | Some s, _ -> parse_schedule "--against" s
        | None, k -> (
          let subs = Schedule.subschedules sch in
          let n = List.length subs in
          match k with
          | Some k when k < 0 || k >= n ->
            Printf.eprintf "--drop %d out of range (schedule has %d faults)\n"
              k n;
            exit 2
          | Some k -> List.nth subs k
          | None -> (
            match List.rev subs with
            | s :: _ -> s
            | [] ->
              Printf.eprintf
                "--diff needs a second run, but the schedule has no faults \
                 to drop; pass --against SCHED\n";
              exit 2))
      in
      let c = Replay.compare_runs scen sch sch_b ~at in
      if json then begin
        let open Chorus.Inspect in
        let div =
          match c.Replay.divergence with
          | None -> Null
          | Some d ->
            let side = function
              | None -> Null
              | Some r -> value_of_record r
            in
            Assoc
              [ ("index", Int d.Replay.index); ("a", side d.Replay.left);
                ("b", side d.Replay.right) ]
        in
        print_endline
          (to_json
             (Assoc
                [ ("at", Int at);
                  ("schedule_a", String (Schedule.to_string sch));
                  ("schedule_b", String (Schedule.to_string sch_b));
                  ("trace_a_records", Int (List.length c.Replay.run_a.Replay.trace));
                  ("trace_b_records", Int (List.length c.Replay.run_b.Replay.trace));
                  ("divergence", div);
                  ("state_diff",
                   Snapshot.value_of_diff c.Replay.state_diff) ]))
      end
      else begin
        Printf.printf "replay --diff at t=%d\n  A: %s\n  B: %s\n\n" at
          (Schedule.to_string sch)
          (Schedule.to_string sch_b);
        (match c.Replay.divergence with
        | None ->
          Printf.printf "traces identical (%d records)\n"
            (List.length c.Replay.run_a.Replay.trace)
        | Some d ->
          Printf.printf
            "first diverging trace event at record #%d\n  A: %s\n  B: %s\n"
            d.Replay.index
            (Replay.pp_record_str d.Replay.left)
            (Replay.pp_record_str d.Replay.right));
        match c.Replay.state_diff with
        | [] -> Printf.printf "\nstates identical at t=%d\n" at
        | entries ->
          Printf.printf "\nstate diff (%d paths):\n%s" (List.length entries)
            (Snapshot.render_diff entries)
      end
    end
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const go $ scenario_arg $ seed_arg $ index_arg $ schedule_arg $ at_arg
      $ diff_arg $ against_arg $ drop_arg $ json_arg)

let () =
  let doc =
    "Chorus: a message-passing multicore OS simulator (HotOS XIII \
     reproduction)"
  in
  let info = Cmd.info "chorus_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; trace_cmd; profile_cmd; cluster_cmd; chaos_cmd;
            replay_cmd ]))
