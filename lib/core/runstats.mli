(** Aggregate results of one simulated run. *)

type t = {
  makespan : int;  (** last cycle at which anything happened *)
  busy : int array;  (** busy cycles per core *)
  utilization : float;  (** mean busy/makespan over all cores *)
  msgs : int;
  remote_msgs : int;
  words_copied : int;
  hops : int;
  spawns : int;
  steals : int;
  segments : int;
  events : int;
  wakes : int;
  retries : int;  (** protocol retransmissions (e.g. [Stack.call] retries) *)
}

val of_engine : Engine.t -> t

val throughput : t -> ops:int -> float
(** [throughput t ~ops]: operations per million cycles. *)

val us : t -> cycles_per_us:int -> float
(** Makespan in microseconds under the machine's clock. *)

val pp : Format.formatter -> t -> unit
