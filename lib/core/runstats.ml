type t = {
  makespan : int;
  busy : int array;
  utilization : float;
  msgs : int;
  remote_msgs : int;
  words_copied : int;
  hops : int;
  spawns : int;
  steals : int;
  segments : int;
  events : int;
  wakes : int;
  retries : int;
}

let of_engine eng =
  let busy = Engine.core_busy eng in
  let makespan = Engine.elapsed eng in
  let utilization =
    if makespan = 0 then 0.0
    else begin
      let total = Array.fold_left ( + ) 0 busy in
      float_of_int total /. (float_of_int makespan *. float_of_int (Array.length busy))
    end
  in
  let c = Engine.counters eng in
  { makespan;
    busy;
    utilization;
    msgs = c.Engine.msgs;
    remote_msgs = c.Engine.remote_msgs;
    words_copied = c.Engine.words_copied;
    hops = c.Engine.hops;
    spawns = c.Engine.spawns;
    steals = c.Engine.steals;
    segments = c.Engine.segments;
    events = c.Engine.events;
    wakes = c.Engine.wakes;
    retries = c.Engine.retries }

let throughput t ~ops =
  if t.makespan = 0 then 0.0
  else float_of_int ops *. 1_000_000.0 /. float_of_int t.makespan

let us t ~cycles_per_us = float_of_int t.makespan /. float_of_int cycles_per_us

let pp ppf t =
  Format.fprintf ppf
    "makespan=%d util=%.1f%% msgs=%d (%d remote) words=%d spawns=%d steals=%d \
     segments=%d events=%d"
    t.makespan (100.0 *. t.utilization) t.msgs t.remote_msgs t.words_copied
    t.spawns t.steals t.segments t.events
