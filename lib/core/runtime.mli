(** Entry point: configure a simulated machine, run a program on it,
    collect statistics. *)

type config = {
  machine : Chorus_machine.Machine.t;
  policy : Chorus_sched.Policy.t;
  seed : int;
  trace : Trace.sink option;
  max_events : int;
}

val config :
  ?policy:Chorus_sched.Policy.t ->
  ?seed:int ->
  ?trace:Trace.sink ->
  ?max_events:int ->
  Chorus_machine.Machine.t ->
  config
(** Defaults: parent placement, seed 42, no trace, 200M-event cap. *)

val run : config -> (unit -> unit) -> Runstats.t
(** [run cfg main] executes [main] as the initial fiber on core 0 of a
    fresh engine and returns the run's statistics once every
    (non-daemon) fiber has finished.  Raises {!Engine.Deadlock} when
    progress stops with blocked fibers, and re-raises an exception that
    crashed the main fiber. *)

val run_result : config -> (unit -> 'a) -> 'a * Runstats.t
(** Like {!run} but also returns the value computed by [main]. *)

val set_default_trace : (unit -> Trace.sink) option -> unit
(** [set_default_trace (Some factory)] installs an ambient sink
    factory: every subsequent {!run} whose config has [trace = None]
    calls [factory ()] once at run start and traces into the returned
    sink.  A profiler can thereby observe code that builds its own
    configs (the experiment catalogue) and gets one sink per simulated
    run.  [set_default_trace None] removes it.  Explicit [?trace]
    arguments always win. *)
