type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Assoc of (string * value) list

(* ------------------------------------------------------------------ *)
(* Provider registry                                                   *)

(* Providers accumulate in registration order; registration order is
   itself deterministic because everything that registers does so from
   inside a deterministic run.  [snapshot] sorts by name (stable, so
   duplicate names keep registration order) to decouple the dump from
   incidental creation order.

   The registry lives in the run's {!Ctx}: every engine binds a fresh
   one at creation, so two engines in one process never see each
   other's providers.  [register] keeps its old arity by targeting the
   context of whichever engine the calling domain is stepping; outside
   any run it is a no-op (there is no registry to describe state to,
   exactly as [reset]-at-start used to guarantee). *)
type registry = (string * (unit -> value)) list ref

let slot : registry Ctx.slot = Ctx.slot "inspect.registry"

let create_registry () : registry = ref []

let attach ctx r = Ctx.set_in ctx slot r

let register ~name f =
  match Ctx.get slot with
  | None -> ()
  | Some providers -> providers := (name, f) :: !providers

let registered () =
  match Ctx.get slot with
  | None -> 0
  | Some providers -> List.length !providers

let sorted_snapshot providers =
  List.stable_sort
    (fun (a, _) (b, _) -> compare a b)
    (List.rev_map (fun (name, f) -> (name, f ())) !providers)

let snapshot () =
  match Ctx.get slot with
  | None -> []
  | Some providers -> sorted_snapshot providers

let snapshot_in ctx =
  match Ctx.get_in ctx slot with
  | None -> []
  | Some providers -> sorted_snapshot providers

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)

(* One line per scalar, two-space indentation per level: trivially
   diffable with line tools, byte-identical for equal values. *)
let render v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let scalar = function
    | Null -> "null"
    | Bool b -> string_of_bool b
    | Int n -> string_of_int n
    | Float f -> Printf.sprintf "%.6g" f
    | String s -> s
    | List _ | Assoc _ -> assert false
  in
  (* no trailing spaces: the separator space appears only when something
     follows on the same line (scalar or "[]"/"{}") *)
  let key_sep = function
    | Null | Bool _ | Int _ | Float _ | String _ | List [] | Assoc [] -> ": "
    | List _ | Assoc _ -> ":"
  in
  let item_dash = function
    | Null | Bool _ | Int _ | Float _ | String _ | List [] | Assoc [] -> "- "
    | List _ | Assoc _ -> "-"
  in
  let rec go indent v =
    match v with
    | Null | Bool _ | Int _ | Float _ | String _ ->
      Buffer.add_string buf (scalar v);
      Buffer.add_char buf '\n'
    | List [] -> Buffer.add_string buf "[]\n"
    | List items ->
      Buffer.add_char buf '\n';
      List.iter
        (fun item ->
          pad indent;
          Buffer.add_string buf (item_dash item);
          go (indent + 2) item)
        items
    | Assoc [] -> Buffer.add_string buf "{}\n"
    | Assoc fields ->
      Buffer.add_char buf '\n';
      List.iter
        (fun (k, item) ->
          pad indent;
          Buffer.add_string buf k;
          Buffer.add_string buf (key_sep item);
          go (indent + 2) item)
        fields
  in
  (match v with
  | Assoc _ | List _ ->
    (* top level starts at column 0 without a leading blank line *)
    let top v =
      match v with
      | Assoc fields ->
        List.iter
          (fun (k, item) ->
            Buffer.add_string buf k;
            Buffer.add_string buf (key_sep item);
            go 2 item)
          fields
      | List items ->
        List.iter
          (fun item ->
            Buffer.add_string buf (item_dash item);
            go 2 item)
          items
      | _ -> go 0 v
    in
    top v
  | _ -> go 0 v);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* JSON has no NaN/inf; clamp to null like most encoders *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | String s -> add_json_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add_json buf item)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        add_json_string buf k;
        Buffer.add_char buf ':';
        add_json buf item)
      fields;
    Buffer.add_char buf '}'

let to_json v =
  let buf = Buffer.create 1024 in
  add_json buf v;
  Buffer.contents buf
