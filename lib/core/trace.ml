type event =
  | Spawn of { child : int; on_core : int }
  | Exit of { status : string }
  | Block of { on : string }
  | Wake
  | Send of { chan : int; words : int; src : int; dst : int }
  | Recv of { chan : int }
  | Steal of { victim_core : int; fiber : int }
  | Span_begin of { subsystem : string; span : string }
  | Span_end of { subsystem : string; span : string }
  | Segment of { start : int; label : string }
  | Custom of string

type record = { time : int; core : int; fiber : int; event : event }

type sink = record -> unit

let collector () =
  let buf = ref [] in
  let sink r = buf := r :: !buf in
  (sink, fun () -> List.rev !buf)

let ring ~capacity () =
  if capacity < 1 then invalid_arg "Trace.ring: capacity must be >= 1";
  let buf = Array.make capacity None in
  let next = ref 0 in
  let dropped = ref 0 in
  let sink r =
    if !next >= capacity then incr dropped;
    buf.(!next mod capacity) <- Some r;
    next := !next + 1
  in
  let get () =
    let n = !next in
    let first = if n > capacity then n - capacity else 0 in
    let out = ref [] in
    for i = n - 1 downto first do
      match buf.(i mod capacity) with
      | Some r -> out := r :: !out
      | None -> ()
    done;
    !out
  in
  (sink, get, fun () -> !dropped)

let filter pred sink r = if pred r then sink r

let subsystem_of = function
  | Span_begin { subsystem; _ } | Span_end { subsystem; _ } -> Some subsystem
  | Spawn _ | Exit _ | Block _ | Wake | Send _ | Recv _ | Steal _ | Segment _
  | Custom _ ->
    None

let filter_subsystem subsys sink =
  filter
    (fun r ->
      match subsystem_of r.event with
      | Some s -> s = subsys
      | None -> true)
    sink

let pp_event ppf = function
  | Spawn { child; on_core } ->
    Format.fprintf ppf "spawn child=%d core=%d" child on_core
  | Exit { status } -> Format.fprintf ppf "exit %s" status
  | Block { on } -> Format.fprintf ppf "block on=%s" on
  | Wake -> Format.pp_print_string ppf "wake"
  | Send { chan; words; src; dst } ->
    Format.fprintf ppf "send chan=%d words=%d src=%d dst=%d" chan words src
      dst
  | Recv { chan } -> Format.fprintf ppf "recv chan=%d" chan
  | Steal { victim_core; fiber } ->
    Format.fprintf ppf "steal victim=%d fiber=%d" victim_core fiber
  | Span_begin { subsystem; span } ->
    Format.fprintf ppf "span-begin %s/%s" subsystem span
  | Span_end { subsystem; span } ->
    Format.fprintf ppf "span-end %s/%s" subsystem span
  | Segment { start; label } ->
    Format.fprintf ppf "segment start=%d label=%s" start label
  | Custom s -> Format.pp_print_string ppf s

let pp_record ppf r =
  Format.fprintf ppf "[%8d c%02d f%03d] %a" r.time r.core r.fiber pp_event
    r.event
