(** Per-run context: typed slots replacing process-global mutable state.

    Before this module existed, the Inspect provider registry, the
    metrics registry, the ambient trace factory and the chaos
    crash-point hook were plain top-level [ref]s — which made two
    engines in one process (and therefore any parallel campaign
    running on OCaml 5 domains) impossible.  They are now {e slots}
    bound in a context, and there are two kinds of context:

    - the {e ambient} context, one per domain (via [Domain.DLS]),
      holding bindings made outside any run — e.g. a test installing a
      metrics registry before calling [Runtime.run];
    - the {e engine} context, one per {!Engine.t}, holding the
      bindings of that run.

    While an engine is stepping events its context is {e active} on
    the stepping domain: {!set}/{!get}/{!clear} target it, so
    registration code called from inside a run keeps its arity and
    binds per-engine state automatically.  Outside any stepping, the
    same calls target the domain's ambient context.  {!Engine.start}
    {!adopt_ambient}s the ambient bindings into the engine context, so
    the install-then-run idiom behaves exactly as it did with
    globals — but two concurrent engines no longer share anything. *)

type t
(** A context: a small store of slot bindings. *)

type 'a slot
(** A typed key.  Create one per piece of formerly-global state. *)

val slot : string -> 'a slot
(** [slot name] allocates a fresh slot.  [name] is for diagnostics
    only; identity is the slot value itself. *)

val slot_name : 'a slot -> string

val create : unit -> t

(** {1 Explicit operations} *)

val set_in : t -> 'a slot -> 'a -> unit

val clear_in : t -> 'a slot -> unit

val get_in : t -> 'a slot -> 'a option

(** {1 Ambient / active resolution}

    These are what the formerly-global [install]/[installed] style
    entry points now call: they read and write the {e active} engine
    context when the calling domain is stepping an engine, and the
    domain's ambient context otherwise. *)

val set : 'a slot -> 'a -> unit

val clear : 'a slot -> unit

val get : 'a slot -> 'a option

val ambient : unit -> t
(** The calling domain's ambient context. *)

val active : unit -> t option
(** The engine context active on this domain, if it is stepping. *)

val activate : t option -> t option
(** [activate ctx] makes [ctx] the active context for the calling
    domain and returns the previous value (restore it when done).
    Used by {!Engine.step_until}; user code should not need it. *)

val adopt_ambient : t -> unit
(** Copy every ambient binding not already present into the context.
    Called once by {!Engine.start}. *)

val with_clean_ambient : (unit -> 'a) -> 'a
(** Run with a fresh, empty ambient context and no active engine
    context, restoring the previous state afterwards.  The domain pool
    brackets the caller's worker stint with this so spawned and caller
    workers observe identical ambient state. *)
