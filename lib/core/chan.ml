module Deque = Chorus_util.Deque
module Rng = Chorus_util.Rng
module Machine = Chorus_machine.Machine
module Cost = Chorus_machine.Cost

exception Closed

type capacity = Rendezvous | Bounded of int | Unbounded

(* A waiting (blocked or choice-registered) receiver.  [live] is a
   non-destructive staleness probe; [claim] consumes the offer and
   returns false when it had gone stale (its choice committed
   elsewhere, or its fiber was killed).  After a successful [claim],
   exactly one of [deliver]/[abort] must be invoked. *)
type 'a rx = {
  rx_live : unit -> bool;
  rx_claim : unit -> bool;
  rx_deliver : time:int -> 'a -> unit;
  rx_abort : time:int -> exn -> unit;
  rx_core : int;
  rx_time : int;
}

(* A waiting sender together with the value it offers. *)
type 'a tx = {
  tx_live : unit -> bool;
  tx_claim : unit -> bool;
  tx_val : 'a;
  tx_words : int;
  tx_core : int;
  tx_time : int;
  tx_done : time:int -> unit;
  tx_abort : time:int -> exn -> unit;
}

type 'a slot = { sl_val : 'a; sl_words : int; sl_core : int; sl_time : int }

type 'a t = {
  chid : int;
  chlabel : string;
  cap : capacity;
  buf : 'a slot Queue.t;
  txq : 'a tx Deque.t;
  rxq : 'a rx Deque.t;
  mutable closed : bool;
}

let make_chan cap label =
  let eng = Engine.current () in
  let chid = Engine.fresh_id eng in
  let chlabel =
    match label with Some l -> l | None -> Printf.sprintf "chan-%d" chid
  in
  let c =
    { chid; chlabel; cap; buf = Queue.create (); txq = Deque.create ();
      rxq = Deque.create (); closed = false }
  in
  (* Only explicitly labelled channels register with the snapshot
     layer: anonymous one-shots (reply channels) would swamp the
     registry without naming anything a debugger can recognise.
     Registration is host-side only — no charge, no trace event. *)
  (match label with
  | None -> ()
  | Some _ ->
    Inspect.register ~name:(Printf.sprintf "chan/%s#%d" c.chlabel c.chid)
      (fun () ->
        let live_tx = ref 0 and live_rx = ref 0 in
        Deque.iter (fun tx -> if tx.tx_live () then incr live_tx) c.txq;
        Deque.iter (fun rx -> if rx.rx_live () then incr live_rx) c.rxq;
        Inspect.Assoc
          [ ("queued", Inspect.Int (Queue.length c.buf));
            ("capacity",
             Inspect.Int
               (match c.cap with
               | Rendezvous -> 0
               | Bounded n -> n
               | Unbounded -> -1));
            ("waiting_senders", Inspect.Int !live_tx);
            ("waiting_receivers", Inspect.Int !live_rx);
            ("closed", Inspect.Bool c.closed) ]));
  c

let rendezvous ?label () = make_chan Rendezvous label

let buffered ?label n =
  if n < 1 then invalid_arg "Chan.buffered: capacity must be >= 1";
  make_chan (Bounded n) label

let unbounded ?label () = make_chan Unbounded label

let label c = c.chlabel

let id c = c.chid

let is_closed c = c.closed

let length c = Queue.length c.buf

let waiting_senders c =
  let n = ref 0 in
  Deque.iter (fun tx -> if tx.tx_live () then incr n) c.txq;
  !n

let waiting_receivers c =
  let n = ref 0 in
  Deque.iter (fun rx -> if rx.rx_live () then incr n) c.rxq;
  !n

(* Claim the first live offer, discarding stale ones. *)
let rec pop_live_rx c =
  match Deque.pop_front c.rxq with
  | None -> None
  | Some rx -> if rx.rx_claim () then Some rx else pop_live_rx c

let rec pop_live_tx c =
  match Deque.pop_front c.txq with
  | None -> None
  | Some tx -> if tx.tx_claim () then Some tx else pop_live_tx c

(* Non-destructive probe: prune stale entries at the front, report
   whether a live one remains. *)
let rec some_live_rx c =
  match Deque.peek_front c.rxq with
  | None -> false
  | Some rx ->
    if rx.rx_live () then true
    else begin
      ignore (Deque.pop_front c.rxq);
      some_live_rx c
    end

let rec some_live_tx c =
  match Deque.peek_front c.txq with
  | None -> false
  | Some tx ->
    if tx.tx_live () then true
    else begin
      ignore (Deque.pop_front c.txq);
      some_live_tx c
    end

(* ------------------------------------------------------------------ *)
(* Cost accounting                                                     *)

let count_message eng c ~src ~dst ~words =
  let cnt = Engine.counters eng in
  cnt.Engine.msgs <- cnt.Engine.msgs + 1;
  cnt.Engine.words_copied <- cnt.Engine.words_copied + words;
  let h = Machine.hops (Engine.machine eng) src dst in
  cnt.Engine.hops <- cnt.Engine.hops + h;
  if h > 0 then cnt.Engine.remote_msgs <- cnt.Engine.remote_msgs + 1;
  if Engine.tracing eng then
    Engine.emit eng (Trace.Send { chan = c.chid; words; src; dst })

(* Cycles from "value leaves the sender core" to "receiver has it":
   transit plus the receive-side fixed cost.  The sender-side
   injection and payload copy are charged separately at send time. *)
let transit eng ~src ~dst =
  let c = Engine.costs eng in
  let h = Machine.hops (Engine.machine eng) src dst in
  (h * c.Cost.msg_per_hop) + c.Cost.msg_receive

let charge_send_side eng ~words =
  let c = Engine.costs eng in
  Engine.charge eng (c.Cost.msg_inject + (words * c.Cost.msg_per_word))

(* When a buffered slot frees, promote the first waiting sender's
   value into the buffer and unblock that sender. *)
let refill eng c ~time =
  match c.cap with
  | Bounded n when Queue.length c.buf < n -> begin
    match pop_live_tx c with
    | None -> ()
    | Some tx ->
      Queue.push
        { sl_val = tx.tx_val; sl_words = tx.tx_words; sl_core = tx.tx_core;
          sl_time = time }
        c.buf;
      ignore eng;
      tx.tx_done ~time
  end
  | Bounded _ | Rendezvous | Unbounded -> ()

(* ------------------------------------------------------------------ *)
(* Plain-operation offers (a private one-shot cell per offer)          *)

let plain_rx eng w ~core ~time =
  ignore eng;
  let claimed = ref false in
  { rx_live = (fun () -> (not !claimed) && Engine.waker_live w);
    rx_claim =
      (fun () ->
        if (not !claimed) && Engine.waker_live w then begin
          claimed := true;
          true
        end
        else false);
    rx_deliver = (fun ~time v -> Engine.wake_at w time v);
    rx_abort = (fun ~time e -> Engine.wake_err_at w time e);
    rx_core = core;
    rx_time = time }

let plain_tx eng w ~v ~words ~core ~time =
  ignore eng;
  let claimed = ref false in
  { tx_live = (fun () -> (not !claimed) && Engine.waker_live w);
    tx_claim =
      (fun () ->
        if (not !claimed) && Engine.waker_live w then begin
          claimed := true;
          true
        end
        else false);
    tx_val = v;
    tx_words = words;
    tx_core = core;
    tx_time = time;
    tx_done = (fun ~time -> Engine.wake_at w time ());
    tx_abort = (fun ~time e -> Engine.wake_err_at w time e) }

(* ------------------------------------------------------------------ *)
(* Send                                                                *)

let deliver_to_rx eng rx ~src_core ~send_time v =
  let lat = transit eng ~src:src_core ~dst:rx.rx_core in
  let completion = max send_time rx.rx_time + lat in
  rx.rx_deliver ~time:completion v

let send_fast eng c v ~words ~src ~ts =
  (* returns true when the send completed without blocking *)
  match pop_live_rx c with
  | Some rx ->
    count_message eng c ~src ~dst:rx.rx_core ~words;
    deliver_to_rx eng rx ~src_core:src ~send_time:ts v;
    true
  | None ->
    let room =
      match c.cap with
      | Unbounded -> true
      | Bounded n -> Queue.length c.buf < n
      | Rendezvous -> false
    in
    if room then begin
      Queue.push { sl_val = v; sl_words = words; sl_core = src; sl_time = ts }
        c.buf;
      count_message eng c ~src ~dst:src ~words;
      true
    end
    else false

let send ?(words = 2) c v =
  let eng = Engine.current () in
  if c.closed then raise Closed;
  charge_send_side eng ~words;
  let src = Engine.fiber_core (Engine.self eng) in
  let ts = Engine.now eng in
  if not (send_fast eng c v ~words ~src ~ts) then
    Engine.suspend eng ~tag:("send:" ^ c.chlabel) (fun w ->
        Deque.push_back c.txq (plain_tx eng w ~v ~words ~core:src ~time:ts))

let try_send ?(words = 2) c v =
  let eng = Engine.current () in
  if c.closed then raise Closed;
  let src = Engine.fiber_core (Engine.self eng) in
  let ts = Engine.now eng in
  let can =
    some_live_rx c
    ||
    match c.cap with
    | Unbounded -> true
    | Bounded n -> Queue.length c.buf < n
    | Rendezvous -> false
  in
  if can then begin
    charge_send_side eng ~words;
    let ok = send_fast eng c v ~words ~src ~ts in
    assert ok;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Receive                                                             *)

(* A value is available if something is buffered, a live sender waits,
   or the channel is closed (in which case consuming raises). *)
let recv_ready c =
  (not (Queue.is_empty c.buf)) || some_live_tx c || c.closed

let recv_fast eng c ~me ~tr =
  (* call only when [recv_ready]; completes the receive and returns the
     value, raising [Closed] on a drained closed channel *)
  if not (Queue.is_empty c.buf) then begin
    let sl = Queue.pop c.buf in
    let completion = max tr sl.sl_time + transit eng ~src:sl.sl_core ~dst:me in
    Engine.charge eng (completion - tr);
    refill eng c ~time:completion;
    Engine.emit eng (Trace.Recv { chan = c.chid });
    sl.sl_val
  end
  else
    match pop_live_tx c with
    | Some tx ->
      let completion = max tr tx.tx_time + transit eng ~src:tx.tx_core ~dst:me in
      Engine.charge eng (completion - tr);
      count_message eng c ~src:tx.tx_core ~dst:me ~words:tx.tx_words;
      tx.tx_done ~time:completion;
      Engine.emit eng (Trace.Recv { chan = c.chid });
      tx.tx_val
    | None ->
      if c.closed then raise Closed
      else failwith "Chan.recv_fast: not ready"

let recv c =
  let eng = Engine.current () in
  let me = Engine.fiber_core (Engine.self eng) in
  let tr = Engine.now eng in
  if recv_ready c then recv_fast eng c ~me ~tr
  else
    Engine.suspend eng ~tag:("recv:" ^ c.chlabel) (fun w ->
        Deque.push_back c.rxq (plain_rx eng w ~core:me ~time:tr))

let try_recv c =
  let eng = Engine.current () in
  let me = Engine.fiber_core (Engine.self eng) in
  let tr = Engine.now eng in
  if not (Queue.is_empty c.buf) || some_live_tx c then
    Some (recv_fast eng c ~me ~tr)
  else if c.closed then raise Closed
  else None

(* ------------------------------------------------------------------ *)
(* Close                                                               *)

let close c =
  if not c.closed then begin
    let eng = Engine.current () in
    let t = Engine.now eng in
    c.closed <- true;
    let rec abort_rxs () =
      match pop_live_rx c with
      | None -> ()
      | Some rx ->
        rx.rx_abort ~time:t Closed;
        abort_rxs ()
    in
    let rec abort_txs () =
      match pop_live_tx c with
      | None -> ()
      | Some tx ->
        tx.tx_abort ~time:t Closed;
        abort_txs ()
    in
    abort_rxs ();
    abort_txs ()
  end

(* ------------------------------------------------------------------ *)
(* Choice                                                              *)

type 'r case =
  | Case : {
      ready : unit -> bool;
      exec : unit -> 'r;
      register : (unit -> 'r) Engine.waker -> bool ref -> unit;
    }
      -> 'r case
  | Timeout : int * (unit -> 'r) -> 'r case
  | Default : (unit -> 'r) -> 'r case

(* Offers registered by a blocked choice share one commit cell; the
   first partner (or timer) to claim it wins and the rest go stale. *)
let choice_rx c f w cell ~core ~time =
  let rx =
    { rx_live = (fun () -> (not !cell) && Engine.waker_live w);
      rx_claim =
        (fun () ->
          if (not !cell) && Engine.waker_live w then begin
            cell := true;
            true
          end
          else false);
      rx_deliver = (fun ~time v -> Engine.wake_at w time (fun () -> f v));
      rx_abort =
        (fun ~time e -> Engine.wake_at w time (fun () -> raise e));
      rx_core = core;
      rx_time = time }
  in
  Deque.push_back c.rxq rx

let choice_tx c v h w cell ~words ~core ~time =
  let tx =
    { tx_live = (fun () -> (not !cell) && Engine.waker_live w);
      tx_claim =
        (fun () ->
          if (not !cell) && Engine.waker_live w then begin
            cell := true;
            true
          end
          else false);
      tx_val = v;
      tx_words = words;
      tx_core = core;
      tx_time = time;
      tx_done = (fun ~time -> Engine.wake_at w time h);
      tx_abort =
        (fun ~time e -> Engine.wake_at w time (fun () -> raise e)) }
  in
  Deque.push_back c.txq tx

let recv_case c f =
  Case
    { ready = (fun () -> recv_ready c);
      exec =
        (fun () ->
          let eng = Engine.current () in
          let me = Engine.fiber_core (Engine.self eng) in
          let tr = Engine.now eng in
          f (recv_fast eng c ~me ~tr));
      register =
        (fun w cell ->
          let eng = Engine.current () in
          let me = Engine.waker_fiber w |> Engine.fiber_core in
          choice_rx c f w cell ~core:me ~time:(Engine.now eng)) }

let send_case ?(words = 2) c v h =
  Case
    { ready =
        (fun () ->
          c.closed || some_live_rx c
          ||
          match c.cap with
          | Unbounded -> true
          | Bounded n -> Queue.length c.buf < n
          | Rendezvous -> false);
      exec =
        (fun () ->
          let eng = Engine.current () in
          if c.closed then raise Closed;
          charge_send_side eng ~words;
          let src = Engine.fiber_core (Engine.self eng) in
          let ts = Engine.now eng in
          let ok = send_fast eng c v ~words ~src ~ts in
          assert ok;
          h ());
      register =
        (fun w cell ->
          let eng = Engine.current () in
          let src = Engine.waker_fiber w |> Engine.fiber_core in
          charge_send_side eng ~words;
          choice_tx c v h w cell ~words ~core:src ~time:(Engine.now eng)) }

let after n h =
  if n < 0 then invalid_arg "Chan.after: negative delay";
  Timeout (n, h)

let default h = Default h

type strategy = Commit | Poll of int

let case_ready = function
  | Case { ready; _ } -> ready ()
  | Timeout _ | Default _ -> false

let choose_commit cases =
  let eng = Engine.current () in
  let costs = Engine.costs eng in
  (* scanning k options touches k channel headers *)
  Engine.charge eng (List.length cases * costs.Cost.cache_hit);
  let ready = List.filter case_ready cases in
  match ready with
  | _ :: _ ->
    let arr = Array.of_list ready in
    let pick = arr.(Rng.int (Engine.rng eng) (Array.length arr)) in
    (match pick with
    | Case { exec; _ } -> exec ()
    | Timeout _ | Default _ -> assert false)
  | [] -> (
    let defaults =
      List.filter_map (function Default h -> Some h | _ -> None) cases
    in
    match defaults with
    | h :: _ -> h ()
    | [] ->
      let thunk =
        Engine.suspend eng ~tag:"choose" (fun w ->
            let cell = ref false in
            List.iter
              (function
                | Case { register; _ } -> register w cell
                | Timeout (n, h) ->
                  let fire = Engine.now eng + n in
                  Engine.schedule_at eng fire (fun () ->
                      if (not !cell) && Engine.waker_live w then begin
                        cell := true;
                        Engine.wake_at w fire h
                      end)
                | Default _ -> ())
              cases)
      in
      thunk ())

let choose_poll interval cases =
  let eng = Engine.current () in
  let costs = Engine.costs eng in
  let start = Engine.now eng in
  (* timeout arms become absolute deadlines checked on every poll *)
  let rec poll () =
    Engine.charge eng (List.length cases * costs.Cost.cache_miss);
    let now = Engine.now eng in
    let ready =
      List.filter
        (function
          | Case { ready; _ } -> ready ()
          | Timeout (n, _) -> now - start >= n
          | Default _ -> false)
        cases
    in
    match ready with
    | _ :: _ -> (
      let arr = Array.of_list ready in
      match arr.(Rng.int (Engine.rng eng) (Array.length arr)) with
      | Case { exec; _ } -> exec ()
      | Timeout (_, h) -> h ()
      | Default _ -> assert false)
    | [] -> (
      let defaults =
        List.filter_map (function Default h -> Some h | _ -> None) cases
      in
      match defaults with
      | h :: _ -> h ()
      | [] ->
        Engine.sleep eng interval;
        poll ())
  in
  poll ()

let choose ?(strategy = Commit) cases =
  if cases = [] then invalid_arg "Chan.choose: no cases";
  let ndefaults =
    List.length (List.filter (function Default _ -> true | _ -> false) cases)
  in
  if ndefaults > 1 then invalid_arg "Chan.choose: multiple defaults";
  match strategy with
  | Commit -> choose_commit cases
  | Poll interval ->
    if interval <= 0 then invalid_arg "Chan.choose: poll interval";
    choose_poll interval cases
