type 'a t = { ch : 'a Chan.t; mutable stash : 'a list (* arrival order *) }

let create ?label () =
  let t = { ch = Chan.unbounded ?label (); stash = [] } in
  (* labelled mailboxes report their own occupancy (stash + channel):
     the inner channel's registration alone misses selective-receive
     stashing *)
  (match label with
  | None -> ()
  | Some l ->
    Inspect.register ~name:(Printf.sprintf "mailbox/%s#%d" l (Chan.id t.ch))
      (fun () ->
        Inspect.Assoc
          [ ("stashed", Inspect.Int (List.length t.stash));
            ("queued", Inspect.Int (Chan.length t.ch)) ]));
  t

let send ?words t v = Chan.send ?words t.ch v

let recv t =
  match t.stash with
  | v :: rest ->
    t.stash <- rest;
    v
  | [] -> Chan.recv t.ch

let receive t match_ =
  (* scan the stash first *)
  let rec scan acc = function
    | [] -> None
    | v :: rest -> (
      match match_ v with
      | Some r ->
        t.stash <- List.rev_append acc rest;
        Some r
      | None -> scan (v :: acc) rest)
  in
  match scan [] t.stash with
  | Some r -> r
  | None ->
    let rec wait () =
      let v = Chan.recv t.ch in
      match match_ v with
      | Some r -> r
      | None ->
        t.stash <- t.stash @ [ v ];
        wait ()
    in
    wait ()

let size t = List.length t.stash + Chan.length t.ch

let chan t = t.ch
