type outcome = Acked | Value of string option | Lost

type op = {
  proc : int;
  kind : [ `Read | `Write ];
  key : string;
  value : string;
  invoked : int;
  mutable returned : int;
  mutable outcome : outcome option;
}

type t = { mutable rev_ops : op list; mutable n : int }

let create () = { rev_ops = []; n = 0 }

let invoke t ~proc ~kind ~key ?(value = "") () =
  let op =
    { proc; kind; key; value; invoked = Fiber.now (); returned = max_int;
      outcome = None }
  in
  t.rev_ops <- op :: t.rev_ops;
  t.n <- t.n + 1;
  op

let return_ _t op outcome =
  op.returned <- Fiber.now ();
  op.outcome <- Some outcome

let ops t = List.rev t.rev_ops

let length t = t.n

let by_key t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun op ->
      match Hashtbl.find_opt tbl op.key with
      | Some l -> l := op :: !l
      | None ->
        Hashtbl.replace tbl op.key (ref [ op ]);
        order := op.key :: !order)
    (ops t);
  List.rev_map
    (fun k -> (k, List.rev !(Hashtbl.find tbl k)))
    !order
