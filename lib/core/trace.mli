(** Execution tracing.

    When a sink is installed in the runtime config, the engine emits
    one record per scheduling-relevant action.  Tests use this to
    assert ordering properties (e.g. a driver fiber never interleaves
    two requests); the CLI can dump traces for debugging, export them
    as Chrome trace-event JSON ({!Chorus_obs.Chrome_trace}) or distill
    them into per-fiber profiles ({!Chorus_obs.Profile}).  Because a
    run is exactly deterministic in (seed, inputs), a trace is a
    faithful, replayable record of the whole execution. *)

type event =
  | Spawn of { child : int; on_core : int }
  | Exit of { status : string }
  | Block of { on : string }
  | Wake
  | Send of { chan : int; words : int; src : int; dst : int }
      (** one record per counted message, mirroring the engine's
          message counters: a direct handoff records sender core to
          receiver core, a buffered deposit records [src = dst] (the
          transit to the eventual receiver is charged at receive
          time), and a receive that claims a blocked sender records
          the sender's core to the receiver's core *)
  | Recv of { chan : int }
  | Steal of { victim_core : int; fiber : int }
  | Span_begin of { subsystem : string; span : string }
      (** opened by service instrumentation ({!Chorus_obs.Span}) *)
  | Span_end of { subsystem : string; span : string }
  | Segment of { start : int; label : string }
      (** emitted when a fiber segment retires: the fiber named
          [label] occupied its core from [start] to the record's
          [time] *)
  | Custom of string

type record = {
  time : int;  (** virtual cycles *)
  core : int;
  fiber : int;
  event : event;
}

type sink = record -> unit

val collector : unit -> sink * (unit -> record list)
(** [collector ()] returns a sink that appends to an unbounded
    in-memory buffer and a function retrieving the records in emission
    order.  Prefer {!ring} for long runs. *)

val ring :
  capacity:int -> unit -> sink * (unit -> record list) * (unit -> int)
(** [ring ~capacity ()] returns a bounded sink that keeps only the
    most recent [capacity] records, a function retrieving the retained
    records in emission order, and a function reporting how many
    records were dropped (oldest first). *)

val filter : (record -> bool) -> sink -> sink
(** [filter pred sink] forwards only records satisfying [pred]. *)

val filter_subsystem : string -> sink -> sink
(** Keep span records of one subsystem; records carrying no subsystem
    (scheduler events) always pass. *)

val subsystem_of : event -> string option

val pp_record : Format.formatter -> record -> unit
