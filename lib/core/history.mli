(** Client-side operation histories for correctness oracles.

    The chaos engine (lib/chaos) checks linearizability over what the
    {e clients} observed, not over server internals — the Jepsen
    discipline.  This module is the recording half: any layer can stamp
    operation invocations and responses against virtual time without
    depending on the checker.  Recording is host-side only: it never
    charges cycles, so an instrumented run is cycle-identical to a bare
    one. *)

type outcome =
  | Acked  (** write acknowledged *)
  | Value of string option  (** read result: [Some v] found, [None] miss *)
  | Lost
      (** no response (retries exhausted, service silent).  A lost
          write may still take effect at any later point — the checker
          must consider both; a lost read constrains nothing. *)

type op = {
  proc : int;  (** logical client id *)
  kind : [ `Read | `Write ];
  key : string;
  value : string;  (** the written value; ["" ] for reads *)
  invoked : int;  (** virtual time of the invocation *)
  mutable returned : int;  (** virtual time of the response; [max_int] while pending *)
  mutable outcome : outcome option;  (** [None] while pending *)
}

type t

val create : unit -> t

val invoke :
  t -> proc:int -> kind:[ `Read | `Write ] -> key:string -> ?value:string ->
  unit -> op
(** Record an invocation at the current virtual time (call from inside
    a run) and return the open [op] to complete with {!return_}. *)

val return_ : t -> op -> outcome -> unit
(** Stamp the response at the current virtual time.  An op left
    pending at the end of the run counts as {!Lost}. *)

val ops : t -> op list
(** All recorded ops, in invocation order. *)

val length : t -> int

val by_key : t -> (string * op list) list
(** Partition by key (each key's ops in invocation order), keys in
    first-appearance order — the compositional split: a history is
    linearizable iff every per-key subhistory is. *)
