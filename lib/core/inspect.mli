(** Structured run-state introspection.

    The time-travel debugger ({!Chorus_debug.Snapshot}) needs to walk
    live state — channel occupancy, service inbox depths, raft terms —
    into a typed, printable value while a run is paused at an arbitrary
    virtual time ({!Engine.run_until}).  The subsystems that own that
    state live above [lib/core], so this module inverts the dependency:
    it defines the common {!value} tree plus a global {e provider
    registry}, and each subsystem registers a thunk describing its own
    objects as it creates them (a labelled channel in {!Chan}, an
    endpoint in [Chorus_svc.Svc], a replica group in
    [Chorus_cluster.Cluster]).

    Providers are host-side only: registering one never charges cycles
    or advances virtual time, so an inspected run is byte-identical to
    an uninspected one.  The registry is cleared at the start of every
    {!Engine.run} / {!Engine.start}, so providers never outlive the run
    whose objects they describe. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Assoc of (string * value) list

(** {1 Provider registry} *)

val register : name:string -> (unit -> value) -> unit
(** [register ~name f] adds a provider.  Use ["/"]-separated names
    (["svc/chaos.store"], ["cluster/node2"]); {!snapshot} sorts by
    name.  The thunk is called only when a snapshot is taken and must
    not block, charge or suspend. *)

val reset : unit -> unit
(** Drop every provider (called by the engine at run start). *)

val registered : unit -> int

val snapshot : unit -> (string * value) list
(** Evaluate every provider, sorted by name (stable for duplicates) —
    deterministic for a deterministic run paused at a fixed time. *)

(** {1 Rendering} *)

val render : value -> string
(** Stable indented text: one scalar per line, ["- "] list items,
    two-space nesting.  Equal values render byte-identically. *)

val to_json : value -> string
(** Compact single-line JSON ([jq]-composable). *)
