(** Structured run-state introspection.

    The time-travel debugger ({!Chorus_debug.Snapshot}) needs to walk
    live state — channel occupancy, service inbox depths, raft terms —
    into a typed, printable value while a run is paused at an arbitrary
    virtual time ({!Engine.run_until}).  The subsystems that own that
    state live above [lib/core], so this module inverts the dependency:
    it defines the common {!value} tree plus a global {e provider
    registry}, and each subsystem registers a thunk describing its own
    objects as it creates them (a labelled channel in {!Chan}, an
    endpoint in [Chorus_svc.Svc], a replica group in
    [Chorus_cluster.Cluster]).

    Providers are host-side only: registering one never charges cycles
    or advances virtual time, so an inspected run is byte-identical to
    an uninspected one.  The registry is per-engine — bound in the
    engine's {!Ctx} at creation — so providers never outlive the run
    whose objects they describe and two engines in one process (even
    on different domains) never see each other's providers. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Assoc of (string * value) list

(** {1 Provider registry} *)

type registry
(** One run's providers.  Engines create and bind one in their context
    at {!Engine.create}; reach it with {!snapshot_in} when the run is
    paused rather than stepping. *)

val create_registry : unit -> registry

val attach : Ctx.t -> registry -> unit
(** Bind [registry] as the context's provider registry (done by
    {!Engine.create}). *)

val register : name:string -> (unit -> value) -> unit
(** [register ~name f] adds a provider to the registry of the engine
    the calling domain is currently stepping.  Use ["/"]-separated
    names (["svc/chaos.store"], ["cluster/node2"]); {!snapshot} sorts
    by name.  The thunk is called only when a snapshot is taken and
    must not block, charge or suspend.  A no-op outside any run. *)

val registered : unit -> int

val snapshot : unit -> (string * value) list
(** Evaluate every provider of the currently-stepping engine, sorted
    by name (stable for duplicates) — deterministic for a
    deterministic run paused at a fixed time.  Empty outside a run. *)

val snapshot_in : Ctx.t -> (string * value) list
(** Like {!snapshot} but against an explicit (engine) context — what
    the replay debugger uses while a stepped run is paused. *)

(** {1 Rendering} *)

val render : value -> string
(** Stable indented text: one scalar per line, ["- "] list items,
    two-space nesting.  Equal values render byte-identically. *)

val to_json : value -> string
(** Compact single-line JSON ([jq]-composable). *)
