(* Per-run context: the typed-slot store that replaced the process
   globals (Inspect provider registry, Metrics.current,
   Runtime.default_trace, Svc.crashpoint).  Two layers:

   - Every domain owns an *ambient* context (lazily created, initially
     empty).  Code that runs outside any engine — test harnesses
     installing a metrics registry before [Runtime.run], the profiler
     installing a trace factory — binds slots there.

   - Every engine owns its own context.  While an engine is stepping
     events ([Engine.step_until]) its context is *active* on the
     stepping domain, so the same [set]/[get] calls made from inside a
     run bind and read per-engine state.  [Engine.start] adopts the
     ambient bindings into the engine context (install-then-run keeps
     working), after which the two never alias.

   A context is only ever touched by the domain currently stepping its
   engine (or, for ambient, by its owning domain), so plain mutable
   state needs no locking; domain-safety comes from the DLS keying, not
   from atomics. *)

type binding = int * exn
(* [exn] as the universal type: each slot carries a locally-defined
   exception constructor, so [inj]/[proj] are total for that slot and
   reject every other slot's values.  Bindings are an assoc list keyed
   by slot uid — a handful of entries per run, so linear scan wins. *)

type 'a slot = {
  uid : int;
  sname : string;
  inj : 'a -> exn;
  proj : exn -> 'a option;
}

let next_uid = Atomic.make 0

let slot (type a) sname : a slot =
  let module M = struct
    exception E of a
  end in
  { uid = Atomic.fetch_and_add next_uid 1;
    sname;
    inj = (fun v -> M.E v);
    proj = (function M.E v -> Some v | _ -> None) }

let slot_name s = s.sname

type t = { mutable bindings : binding list }

let create () = { bindings = [] }

(* ------------------------------------------------------------------ *)
(* Explicit (context-passing) operations                               *)

let set_in ctx s v =
  ctx.bindings <-
    (s.uid, s.inj v) :: List.filter (fun (u, _) -> u <> s.uid) ctx.bindings

let clear_in ctx s =
  ctx.bindings <- List.filter (fun (u, _) -> u <> s.uid) ctx.bindings

let get_in ctx s =
  match List.assoc_opt s.uid ctx.bindings with
  | None -> None
  | Some e -> s.proj e

(* ------------------------------------------------------------------ *)
(* Ambient / active resolution                                         *)

let ambient_key : t Domain.DLS.key = Domain.DLS.new_key create

let active_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ambient () = Domain.DLS.get ambient_key

let resolve () =
  match !(Domain.DLS.get active_key) with
  | Some ctx -> ctx
  | None -> ambient ()

let activate ctx =
  let cell = Domain.DLS.get active_key in
  let prev = !cell in
  cell := ctx;
  prev

let active () = !(Domain.DLS.get active_key)

let set s v = set_in (resolve ()) s v

let clear s = clear_in (resolve ()) s

let get s = get_in (resolve ()) s

(* Adoption: copy every ambient binding the context does not already
   hold.  Called once per engine at [Engine.start], so the
   install-before-run idiom (metrics registry, default trace factory,
   crash points armed between [create] and [start]) lands inside the
   run without the run ever writing back to the domain's ambient
   state. *)
let adopt_ambient ctx =
  let amb = ambient () in
  List.iter
    (fun (u, e) ->
      if not (List.mem_assoc u ctx.bindings) then
        ctx.bindings <- (u, e) :: ctx.bindings)
    (List.rev amb.bindings)

(* Worker bracket: run [f] with a fresh ambient context and no active
   engine context, restoring both afterwards.  The domain pool wraps
   the participating caller domain with this so every worker — spawned
   or caller — starts from the same (empty) ambient state. *)
let with_clean_ambient f =
  let prev_amb = Domain.DLS.get ambient_key in
  let prev_active = activate None in
  Domain.DLS.set ambient_key (create ());
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set ambient_key prev_amb;
      ignore (activate prev_active))
    f
