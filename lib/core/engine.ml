module Rng = Chorus_util.Rng
module Pqueue = Chorus_util.Pqueue
module Deque = Chorus_util.Deque
module Machine = Chorus_machine.Machine
module Cost = Chorus_machine.Cost
module Policy = Chorus_sched.Policy

type exit_status = Normal | Crashed of exn | Killed

exception Deadlock of string
exception Killed_exn

type state = Created | Runnable | Running | Blocked | Done

type priority = High | Normal

type fiber = {
  fid : int;
  mutable label : string;
  mutable core : int;
  mutable prio : priority;
  mutable state : state;
  mutable wait_tag : string;
  mutable status : exit_status option;
  mutable monitors : (time:int -> exit_status -> unit) list;
  mutable on_kill : (exn -> unit) option;
  mutable kill_requested : bool;
  daemon : bool;
}

type core_state = {
  cid : int;
  runq : (fiber * (unit -> unit)) Deque.t;
  mutable pending : int;
      (** wakes scheduled but not yet enqueued — makes load visible to
          placement policies within the scheduling segment *)
  mutable free_at : int;
  mutable busy : int;
  mutable kicked : bool;
}

type counters = {
  mutable msgs : int;
  mutable remote_msgs : int;
  mutable words_copied : int;
  mutable hops : int;
  mutable spawns : int;
  mutable steals : int;
  mutable segments : int;
  mutable events : int;
  mutable wakes : int;
  mutable retries : int;
}

type config = {
  machine : Machine.t;
  policy : Policy.t;
  seed : int;
  trace : Trace.sink option;
  max_events : int;
}

type t = {
  config : config;
  ctx : Ctx.t;  (** per-run slot bindings (inspect registry, metrics, …) *)
  machine : Machine.t;
  policy : Policy.t;
  rng : Rng.t;
  policy_rng : Rng.t;
  events : (int * int, unit -> unit) Pqueue.t;
  mutable seq : int;
  cores : core_state array;
  mutable now : int;  (** time of the event being processed *)
  mutable horizon : int;  (** furthest virtual time reached *)
  mutable seg_start : int;
  mutable seg_acc : int;
  mutable seg_fiber : fiber option;
  mutable next_fid : int;
  mutable next_oid : int;
  mutable live : int;
  mutable live_nondaemon : int;
  mutable main_crash : exn option;
  mutable started : bool;
  mutable fibers : fiber list;  (** registry for deadlock reports *)
  cnt : counters;
}

let default_config machine =
  { machine;
    policy = Policy.parent;
    seed = 42;
    trace = None;
    max_events = 200_000_000 }

let create (config : config) =
  let n = Machine.cores config.machine in
  let rng = Rng.make config.seed in
  let cmp (t1, s1) (t2, s2) =
    if t1 <> t2 then compare t1 t2 else compare s1 s2
  in
  let ctx = Ctx.create () in
  Inspect.attach ctx (Inspect.create_registry ());
  { config;
    ctx;
    machine = config.machine;
    policy = config.policy;
    rng;
    policy_rng = Rng.split rng;
    events = Pqueue.create cmp;
    seq = 0;
    cores =
      Array.init n (fun cid ->
          { cid; runq = Deque.create (); pending = 0; free_at = 0; busy = 0;
            kicked = false });
    now = 0;
    horizon = 0;
    seg_start = 0;
    seg_acc = 0;
    seg_fiber = None;
    next_fid = 0;
    next_oid = 0;
    live = 0;
    live_nondaemon = 0;
    main_crash = None;
    started = false;
    fibers = [];
    cnt =
      { msgs = 0; remote_msgs = 0; words_copied = 0; hops = 0; spawns = 0;
        steals = 0; segments = 0; events = 0; wakes = 0; retries = 0 };
  }

let machine t = t.machine

let ctx t = t.ctx

let costs t = Machine.costs t.machine

let rng t = t.rng

let counters t = t.cnt

let fresh_id t =
  let id = t.next_oid in
  t.next_oid <- id + 1;
  id

let fiber_id f = f.fid

let fiber_label f = f.label

let fiber_core f = f.core

let alive f = f.state <> Done

let status f = f.status

let live_fibers t = t.live

let core_busy t = Array.map (fun c -> c.busy) t.cores

let elapsed t = t.horizon

(* ------------------------------------------------------------------ *)
(* Time and cost accounting                                            *)

let tracing t = t.config.trace <> None

let in_fiber t = t.seg_fiber <> None

let now t = if in_fiber t then t.seg_start + t.seg_acc else t.now

let charge t n =
  assert (n >= 0);
  if in_fiber t then t.seg_acc <- t.seg_acc + n
  (* charges outside a fiber (timer callbacks) are dropped: they model
     hardware, not core work *)

let self t =
  match t.seg_fiber with
  | Some f -> f
  | None -> failwith "Engine.self: not inside a fiber"

let emit t ev =
  match t.config.trace with
  | None -> ()
  | Some sink ->
    let fiber, core =
      match t.seg_fiber with
      | Some f -> (f.fid, f.core)
      | None -> (-1, -1)
    in
    sink { Trace.time = now t; core; fiber; event = ev }

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)

let push_event t time thunk =
  assert (time >= t.now);
  t.seq <- t.seq + 1;
  Pqueue.add t.events (time, t.seq) thunk

let schedule_at t time thunk =
  let time = max time (now t) in
  push_event t time thunk

(* ------------------------------------------------------------------ *)
(* Core dispatch                                                       *)

let core_load t c =
  let core = t.cores.(c) in
  Deque.length core.runq + core.pending
  + (if core.free_at > t.now then 1 else 0)

let policy_view t =
  { Policy.cores = Array.length t.cores;
    load = core_load t;
    hops = (fun a b -> Machine.hops t.machine a b);
    rng = t.policy_rng }

let rec kick t core at =
  if not core.kicked then begin
    core.kicked <- true;
    let when_ = max at core.free_at in
    push_event t when_ (fun () -> dispatch t core)
  end

and dispatch t core =
  core.kicked <- false;
  match Deque.pop_front core.runq with
  | Some (f, thunk) ->
    run_segment t core f thunk ~precharge:0;
    if not (Deque.is_empty core.runq) then kick t core core.free_at
    else if Policy.steals t.policy then
      (* keep this core draining other cores' backlogs *)
      kick t core core.free_at
  | None ->
    if Policy.steals t.policy then try_steal t core

and steal_retry_interval = 2_000

and any_queued_elsewhere t thief =
  Array.exists
    (fun c -> c.cid <> thief && not (Deque.is_empty c.runq))
    t.cores

and try_steal t core =
  let stolen =
    match Policy.steal_victim t.policy (policy_view t) ~thief:core.cid with
    | None -> false
    | Some vic -> (
      let victim = t.cores.(vic) in
      match Deque.pop_front victim.runq with
      | None -> false
      | Some (f, thunk) ->
        t.cnt.steals <- t.cnt.steals + 1;
        (match t.config.trace with
        | Some sink ->
          sink
            { Trace.time = t.now; core = core.cid; fiber = f.fid;
              event = Trace.Steal { victim_core = vic; fiber = f.fid } }
        | None -> ());
        f.core <- core.cid;
        (* migration drags the fiber's working set across the chip *)
        let c = costs t in
        let miss =
          c.Cost.cache_miss
          + (Machine.hops t.machine vic core.cid * c.Cost.coherence_per_hop)
        in
        run_segment t core f thunk ~precharge:miss;
        true)
  in
  if stolen || not (Deque.is_empty core.runq) then kick t core core.free_at
  else if any_queued_elsewhere t core.cid then
    (* probes missed, but backlog exists: retry after a beat *)
    kick t core (t.now + steal_retry_interval)

and run_segment t core f thunk ~precharge =
  let start = max t.now core.free_at in
  t.seg_start <- start;
  t.seg_acc <- (costs t).Cost.fiber_switch + precharge;
  t.seg_fiber <- Some f;
  f.state <- Running;
  t.cnt.segments <- t.cnt.segments + 1;
  thunk ();
  t.seg_fiber <- None;
  let fin = t.seg_start + t.seg_acc in
  core.free_at <- fin;
  core.busy <- core.busy + (fin - start);
  if fin > t.horizon then t.horizon <- fin;
  match t.config.trace with
  | None -> ()
  | Some sink ->
    sink
      { Trace.time = fin; core = core.cid; fiber = f.fid;
        event = Trace.Segment { start; label = f.label } }

(* ------------------------------------------------------------------ *)
(* Making fibers runnable                                              *)

let enqueue_runnable t f thunk ~at =
  t.cnt.wakes <- t.cnt.wakes + 1;
  f.state <- Runnable;
  (* push-assisted balancing: under a stealing policy, a wake that
     targets a busy core is redirected to an idle one when a couple of
     random probes find it *)
  if Policy.steals t.policy && core_load t f.core > 1 then begin
    let n = Array.length t.cores in
    let rec probe k =
      if k > 0 then begin
        let c = Rng.int t.policy_rng n in
        if c <> f.core && core_load t c = 0 && t.cores.(c).free_at <= at then
          f.core <- c
        else probe (k - 1)
      end
    in
    probe 2
  end;
  (match t.config.trace with
  | None -> ()
  | Some sink ->
    sink
      { Trace.time = at; core = f.core; fiber = f.fid; event = Trace.Wake });
  let core = t.cores.(f.core) in
  core.pending <- core.pending + 1;
  push_event t at (fun () ->
      core.pending <- core.pending - 1;
      (match f.prio with
      | High -> Deque.push_front core.runq (f, thunk)
      | Normal -> Deque.push_back core.runq (f, thunk));
      kick t core t.now)

(* ------------------------------------------------------------------ *)
(* Fiber lifecycle                                                     *)

let finish t f st =
  f.state <- Done;
  f.status <- Some st;
  f.on_kill <- None;
  t.live <- t.live - 1;
  if not f.daemon then t.live_nondaemon <- t.live_nondaemon - 1;
  let status_str =
    match st with
    | Normal -> "normal"
    | Killed -> "killed"
    | Crashed e -> "crashed: " ^ Printexc.to_string e
  in
  emit t (Trace.Exit { status = status_str });
  if f.fid = 0 then begin
    match st with
    | Crashed e -> t.main_crash <- Some e
    | Normal | Killed -> ()
  end;
  let time = now t in
  let ms = f.monitors in
  f.monitors <- [];
  List.iter (fun cb -> cb ~time st) (List.rev ms)

let monitor t f cb =
  match f.status with
  | Some st -> cb ~time:(now t) st
  | None -> f.monitors <- cb :: f.monitors

type 'a waker = {
  w_fiber : fiber;
  w_used : bool ref;
  w_k : ('a, unit) Effect.Deep.continuation;
}

type _ Effect.t +=
  | Suspend : string * ('a waker -> unit) -> 'a Effect.t

let waker_fiber w = w.w_fiber

let waker_live w = (not !(w.w_used)) && w.w_fiber.state = Blocked

let wake_at_gen t w time v_or_e =
  if not !(w.w_used) then begin
    w.w_used := true;
    let f = w.w_fiber in
    f.on_kill <- None;
    f.wait_tag <- "";
    let thunk =
      match v_or_e with
      | Ok v -> fun () -> Effect.Deep.continue w.w_k v
      | Error e -> fun () -> Effect.Deep.discontinue w.w_k e
    in
    enqueue_runnable t f thunk ~at:(max time t.now)
  end

(* wake_at / wake_err_at need the engine; wakers are only ever used
   within one run.  Each domain keeps a stack of the engines it is
   stepping (a stack, not a slot: [run_until] on engine A can in
   principle be interleaved with stepping engine B from the same
   top-level driver, and timer callbacks always resolve to the engine
   whose event loop invoked them).  Per-domain state means two domains
   can each run their own engine concurrently without sharing
   anything. *)
let stepping_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current () =
  match !(Domain.DLS.get stepping_key) with
  | t :: _ -> t
  | [] -> failwith "Chorus.Engine.current: no run in progress"

let wake_at w time v = wake_at_gen (current ()) w time (Ok v)

let wake_err_at w time e = wake_at_gen (current ()) w time (Error e)

let suspend (type a) t ~tag (register : a waker -> unit) : a =
  ignore t;
  Effect.perform (Suspend (tag, register))

let fiber_body t f body () =
  let open Effect.Deep in
  match_with body ()
    { retc = (fun () -> finish t f Normal);
      exnc =
        (fun e ->
          match e with
          | Killed_exn -> finish t f Killed
          | e -> finish t f (Crashed e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (tag, register) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if f.kill_requested then discontinue k Killed_exn
                else begin
                  f.state <- Blocked;
                  f.wait_tag <- tag;
                  emit t (Trace.Block { on = tag });
                  let w = { w_fiber = f; w_used = ref false; w_k = k } in
                  f.on_kill <-
                    Some (fun e -> wake_at_gen t w (now t) (Error e));
                  register w
                end)
          | _ -> None) }

let spawn t ?on ?affinity ?label ?(priority = Normal) ?(daemon = false) body =
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  let parent = t.seg_fiber in
  let core =
    match on with
    | Some c ->
      if c < 0 || c >= Array.length t.cores then
        invalid_arg "Engine.spawn: core out of range";
      c
    | None ->
      let parent_core =
        match parent with Some p -> p.core | None -> 0
      in
      Policy.place t.policy (policy_view t) ~parent:parent_core ~affinity
  in
  let label =
    match label with Some l -> l | None -> Printf.sprintf "fiber-%d" fid
  in
  let f =
    { fid; label; core; prio = priority; state = Created; wait_tag = "";
      status = None; monitors = []; on_kill = None; kill_requested = false;
      daemon }
  in
  t.live <- t.live + 1;
  if not daemon then t.live_nondaemon <- t.live_nondaemon + 1;
  t.cnt.spawns <- t.cnt.spawns + 1;
  t.fibers <- f :: t.fibers;
  (* compact the registry when mostly dead, so long runs stay O(live) *)
  if t.cnt.spawns land 0xFFF = 0 && List.length t.fibers > 4 * t.live then
    t.fibers <- List.filter alive t.fibers;
  let c = costs t in
  charge t c.Cost.fiber_spawn;
  let at =
    match parent with
    | Some p when p.core <> core ->
      (* shipping the fork request to a remote core is itself a small
         message *)
      now t + Machine.message_latency t.machine ~src:p.core ~dst:core ~words:4
    | _ -> now t
  in
  emit t (Trace.Spawn { child = fid; on_core = core });
  enqueue_runnable t f (fiber_body t f body) ~at;
  f

let yield t =
  let time = now t in
  suspend t ~tag:"yield" (fun w -> wake_at_gen t w time (Ok ()))

let sleep t n =
  assert (n >= 0);
  let time = now t + n in
  suspend t ~tag:"sleep" (fun w ->
      push_event t time (fun () -> wake_at_gen t w time (Ok ())))

let kill (_ : t) f =
  match f.state with
  | Done -> ()
  | Blocked ->
    f.kill_requested <- true;
    (match f.on_kill with
    | Some abort ->
      f.on_kill <- None;
      abort Killed_exn
    | None -> ())
  | Created | Runnable | Running -> f.kill_requested <- true

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)

let deadlock_report t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    "no pending events but non-daemon fibers remain blocked:";
  List.iter
    (fun f ->
      if alive f && not f.daemon then
        Buffer.add_string buf
          (Printf.sprintf "\n  fiber %d (%s) on core %d waiting on %s" f.fid
             f.label f.core
             (if f.wait_tag = "" then "<nothing?>" else f.wait_tag)))
    (List.rev t.fibers);
  Buffer.contents buf

let start t main =
  if !(Domain.DLS.get stepping_key) <> [] then
    failwith "Engine.start: nested runs are not supported";
  if t.started then failwith "Engine.start: engine already started";
  t.started <- true;
  (* install-then-run: bindings made on this domain before the run
     (metrics registry, trace factory, crash points) become part of
     the run's own context *)
  Ctx.adopt_ambient t.ctx;
  let (_ : fiber) = spawn t ~on:0 ~label:"main" main in
  ()

let stop t = t.started <- false

let step_until t limit =
  let stack = Domain.DLS.get stepping_key in
  stack := t :: !stack;
  let prev_ctx = Ctx.activate (Some t.ctx) in
  Fun.protect
    ~finally:(fun () ->
      (match !stack with
      | u :: rest when u == t -> stack := rest
      | _ -> assert false);
      ignore (Ctx.activate prev_ctx))
  @@ fun () ->
  let rec loop () =
    match Pqueue.min t.events with
    | None -> ()
    | Some ((time, _), _) when time > limit -> ()
    | Some _ ->
      let (time, _), thunk = Pqueue.pop_exn t.events in
      t.now <- time;
      if time > t.horizon then t.horizon <- time;
      t.cnt.events <- t.cnt.events + 1;
      if t.config.max_events > 0 && t.cnt.events > t.config.max_events
      then begin
        (* a crashed main plus looping daemons would otherwise hide
           the real error behind the cap failure *)
        match t.main_crash with
        | Some e -> raise e
        | None -> failwith "Engine.run: event cap exceeded (runaway loop?)"
      end;
      thunk ();
      loop ()
  in
  loop ()

let run_until t limit =
  if not t.started then
    failwith "Engine.run_until: engine not started (call Engine.start)";
  step_until t limit

let drained t = Pqueue.is_empty t.events

let pending_events t = Pqueue.length t.events

let finish t =
  Fun.protect
    ~finally:(fun () -> stop t)
    (fun () ->
      step_until t max_int;
      (match t.main_crash with Some e -> raise e | None -> ());
      if t.live_nondaemon > 0 then raise (Deadlock (deadlock_report t)))

let run t main =
  start t main;
  finish t

(* ------------------------------------------------------------------ *)
(* Introspection snapshot                                              *)

let state_name = function
  | Created -> "created"
  | Runnable -> "runnable"
  | Running -> "running"
  | Blocked -> "blocked"
  | Done -> "done"

let inspect t =
  let open Inspect in
  let fiber_ref f =
    Assoc [ ("fid", Int f.fid); ("label", String f.label) ]
  in
  let core_v c =
    Assoc
      [ ("core", Int c.cid);
        ("free_at", Int c.free_at);
        ("busy", Int c.busy);
        ("pending", Int c.pending);
        ("runq",
         List
           (List.map (fun (f, _) -> fiber_ref f) (Deque.to_list c.runq)))
      ]
  in
  let fiber_v f =
    Assoc
      [ ("fid", Int f.fid);
        ("label", String f.label);
        ("core", Int f.core);
        ("state", String (state_name f.state));
        ("wait", String f.wait_tag);
        ("prio", String (match f.prio with High -> "high" | Normal -> "normal"));
        ("daemon", Bool f.daemon)
      ]
  in
  let live_fibers =
    List.filter alive t.fibers
    |> List.sort (fun a b -> compare a.fid b.fid)
  in
  Assoc
    [ ("now", Int t.now);
      ("horizon", Int t.horizon);
      ("seed", Int t.config.seed);
      ("machine", String (Machine.describe t.machine));
      ("machine_facts",
       Assoc (List.map (fun (k, v) -> (k, Int v)) (Machine.facts t.machine)));
      ("events_pending", Int (Pqueue.length t.events));
      ("live_fibers", Int t.live);
      ("live_nondaemon", Int t.live_nondaemon);
      ("counters",
       Assoc
         [ ("msgs", Int t.cnt.msgs);
           ("remote_msgs", Int t.cnt.remote_msgs);
           ("words_copied", Int t.cnt.words_copied);
           ("hops", Int t.cnt.hops);
           ("spawns", Int t.cnt.spawns);
           ("steals", Int t.cnt.steals);
           ("segments", Int t.cnt.segments);
           ("events", Int t.cnt.events);
           ("wakes", Int t.cnt.wakes);
           ("retries", Int t.cnt.retries)
         ]);
      ("cores", List (Array.to_list (Array.map core_v t.cores)));
      ("fibers", List (List.map fiber_v live_fibers))
    ]
