(** The discrete-event fiber engine.

    This module is the mechanism underneath the public [Fiber] / [Chan]
    API.  It owns virtual time, per-core run queues, fiber lifecycle,
    placement, work stealing, deadlock detection and the statistics
    counters.  Higher layers interact with it through {!charge} (cost
    accounting), {!suspend} (blocking) and {!schedule_at} (timers).

    {2 Timing model}

    Virtual time is counted in cycles (plain [int]).  A fiber executes
    in {e segments}: from a (re)start to the next suspension.  Host
    execution of a segment is instantaneous; costs charged during the
    segment accumulate, and the segment is deemed to occupy its core
    from its start time to start + accumulated.  Cross-fiber
    interactions are linearized in event order; within a segment,
    operation timestamps are [segment start + charges so far].  This
    "optimistic segment" scheme makes whole-run results exactly
    deterministic in (seed, inputs) while keeping event counts low; its
    one approximation is that a non-blocking poll ([try_recv]) observes
    state in event order rather than at exact intra-segment cycle
    granularity. *)

type t

type fiber

type exit_status = Normal | Crashed of exn | Killed

exception Deadlock of string
(** Raised by {!run} when no event is pending yet a non-daemon fiber is
    still blocked.  The payload lists every blocked fiber and what it
    waits on — the runtime analogue of the wait-for-graph check. *)

exception Killed_exn
(** Raised inside a fiber being killed, so its cleanup handlers run. *)

type config = {
  machine : Chorus_machine.Machine.t;
  policy : Chorus_sched.Policy.t;
  seed : int;
  trace : Trace.sink option;
  max_events : int;  (** runaway-loop backstop; 0 = unlimited *)
}

val default_config : Chorus_machine.Machine.t -> config
(** Parent placement, seed 42, no trace, 200M events cap. *)

(** {1 Run lifecycle} *)

val create : config -> t

val ctx : t -> Ctx.t
(** The engine's per-run context: slot bindings (Inspect registry,
    metrics registry, crash points, …) scoped to this run.  Active on
    the stepping domain while the engine processes events; read it
    explicitly ({!Chorus.Inspect.snapshot_in}) while a stepped run is
    paused. *)

val run : t -> (unit -> unit) -> unit
(** [run t main] spawns [main] as fiber 0 on core 0 and processes
    events until none remain.  Raises [Deadlock] as described above,
    [Failure] if the event cap is hit, and re-raises the first
    exception that crashed a {e monitored-by-nobody} non-daemon fiber
    only if it was the main fiber; other crashes are reported through
    monitors (supervision is a feature, not an accident). *)

val current : unit -> t
(** The engine whose events the calling domain is currently stepping
    (per-domain, so concurrent engines on different domains each see
    their own).  Raises [Failure] outside of [run]. *)

(** {1 Stepped execution (the time-travel replay surface)}

    [run t main] is equivalent to [start t main; finish t].  A replay
    driver instead interleaves {!run_until} with state inspection:

    {[
      Engine.start t main;
      Engine.run_until t 250_000;   (* pause at virtual time 250k *)
      ... Engine.inspect t ...      (* look around *)
      Engine.run_until t 400_000;   (* resume to 400k *)
      Engine.stop t                 (* abandon, or [finish t] to drain *)
    ]}

    While paused, no fiber is mid-segment: every event with time <=
    the limit has been processed and the next pending event (if any)
    lies strictly after it, so inspected state is the complete
    machine state "at end of cycle T". *)

val start : t -> (unit -> unit) -> unit
(** Spawn [main] as fiber 0 on core 0 without processing any event,
    and adopt the domain's ambient {!Ctx} bindings (installed metrics
    registry, trace factory, crash points) into the engine's context.
    Fails if called from inside a running fiber (nested runs stay
    unsupported) or if [t] was already started.  Several started
    engines may coexist — interleave their {!run_until}s freely, or
    run them concurrently from different domains. *)

val run_until : t -> int -> unit
(** [run_until t limit] processes every pending event with virtual
    time <= [limit], then returns.  Resumable: a later call with a
    larger limit continues exactly where this one stopped.  Raises like
    {!run} on the event cap; deadlock checking is deferred to
    {!finish} (a paused run legitimately has blocked fibers).  Fails
    unless [t] was {!start}ed. *)

val finish : t -> unit
(** Drain every remaining event, then apply {!run}'s end-of-run
    checks (main-fiber crash re-raise, deadlock detection) and mark
    the run over. *)

val stop : t -> unit
(** Abandon a stepped run: mark it over without draining or checking
    anything.  Idempotent. *)

val drained : t -> bool
(** No events pending. *)

val pending_events : t -> int

val inspect : t -> Inspect.value
(** The engine's own state as a structured value: time, machine,
    statistics counters, per-core run queues (free_at, busy, queued
    fibers) and every live fiber (label, core, state, wait tag).
    Subsystem state (channels, services, raft) is reached through the
    {!Inspect} provider registry instead. *)

(** {1 Introspection} *)

val machine : t -> Chorus_machine.Machine.t

val costs : t -> Chorus_machine.Cost.t

val now : t -> int
(** Current virtual time: inside a fiber segment, segment start plus
    charges so far; between segments, the current event time. *)

val rng : t -> Chorus_util.Rng.t

val fresh_id : t -> int
(** Unique small integers for channel / object labelling. *)

(** {1 Fiber operations (called from inside a running fiber)} *)

val self : t -> fiber

val fiber_id : fiber -> int

val fiber_label : fiber -> string

val fiber_core : fiber -> int

type priority = High | Normal
(** [High] fibers jump their core's run queue on every wake — for
    interrupt-style service fibers (drivers) that must not sit behind
    batch work. *)

val spawn :
  t -> ?on:int -> ?affinity:int -> ?label:string -> ?priority:priority ->
  ?daemon:bool -> (unit -> unit) -> fiber
(** [spawn t body] creates a fiber.  Placement: [?on] pins a core,
    otherwise the configured policy decides (passing [?affinity], an
    opaque gang key, through to it).  The parent (when called from a
    fiber) is charged the spawn cost; a remote placement additionally
    costs one small message.  Daemon fibers do not keep the run alive
    and are not deadlock suspects. *)

val charge : t -> int -> unit
(** [charge t n] accounts [n] cycles of CPU work on the calling
    fiber's core. *)

val yield : t -> unit
(** End the current segment; requeue at the back of the core's run
    queue. *)

val sleep : t -> int -> unit
(** Block without occupying the core for [n] cycles (device latency,
    timer waits). *)

type 'a waker
(** A one-shot capability to resume a suspended fiber.  Exactly one of
    {!wake_at} / {!wake_err_at} must be called, once; later calls are
    ignored (needed by choice, where several registrations race). *)

val wake_at : 'a waker -> int -> 'a -> unit
(** [wake_at w time v] makes the fiber runnable at virtual [time] with
    [suspend]'s result [v]. *)

val wake_err_at : 'a waker -> int -> exn -> unit
(** Resume by raising [exn] at the suspension point. *)

val waker_fiber : 'a waker -> fiber

val waker_live : 'a waker -> bool
(** [true] while the suspended fiber can still be woken through this
    waker (it has not been woken, aborted or killed). *)

val suspend : t -> tag:string -> ('a waker -> unit) -> 'a
(** [suspend t ~tag register] ends the segment and blocks the calling
    fiber; [register] stows the waker somewhere (a channel wait queue,
    a timer).  [tag] names the resource for deadlock reports. *)

val schedule_at : t -> int -> (unit -> unit) -> unit
(** [schedule_at t time f] runs the plain callback [f] at virtual
    [time] (must be >= {!now}).  Callbacks run outside any fiber:
    they may wake fibers but must not suspend or charge. *)

(** {1 Lifecycle of other fibers} *)

val monitor : t -> fiber -> (time:int -> exit_status -> unit) -> unit
(** [monitor t f cb] invokes [cb] when [f] exits (immediately if it
    already has).  Basis of supervision and [join]. *)

val kill : t -> fiber -> unit
(** Request termination: a blocked fiber is aborted immediately (its
    [Killed_exn] unwind runs as a segment); a runnable/running fiber
    dies at its next suspension point (deferred cancellation). *)

val alive : fiber -> bool

val status : fiber -> exit_status option

(** {1 Statistics counters (updated by channel code)} *)

type counters = {
  mutable msgs : int;
  mutable remote_msgs : int;
  mutable words_copied : int;
  mutable hops : int;
  mutable spawns : int;
  mutable steals : int;
  mutable segments : int;
  mutable events : int;
  mutable wakes : int;
  mutable retries : int;
      (** protocol-level retransmissions (updated by library code, e.g.
          {!Stack.call} retry attempts) *)
}

val counters : t -> counters

val emit : t -> Trace.event -> unit
(** Emit a trace record attributed to the current fiber (no-op without
    a sink). *)

val tracing : t -> bool
(** Whether a trace sink is installed.  Instrumentation that must
    allocate to build an event should check this first so that an
    untraced run pays nothing. *)

val core_busy : t -> int array
(** Per-core busy cycles so far. *)

val elapsed : t -> int
(** Highest virtual time reached (makespan so far). *)

val live_fibers : t -> int
