type config = {
  machine : Chorus_machine.Machine.t;
  policy : Chorus_sched.Policy.t;
  seed : int;
  trace : Trace.sink option;
  max_events : int;
}

let config ?(policy = Chorus_sched.Policy.parent) ?(seed = 42) ?trace
    ?(max_events = 200_000_000) machine =
  { machine; policy; seed; trace; max_events }

(* Ambient instrumentation: when set, every [run] whose config carries
   no explicit sink asks the factory for one.  The factory is invoked
   once per run, so a profiler gets a fresh (ring) buffer per simulated
   run and can tell runs apart.  This is how `chorus_sim profile`
   observes experiments that build their own configs internally.  A Ctx
   slot rather than a global: installed ambiently on the profiling
   domain, invisible to every other domain. *)
let default_trace : (unit -> Trace.sink) Ctx.slot =
  Ctx.slot "runtime.default_trace"

let set_default_trace = function
  | Some f -> Ctx.set default_trace f
  | None -> Ctx.clear default_trace

let engine_config (c : config) : Engine.config =
  let trace =
    match c.trace with
    | Some _ as s -> s
    | None -> (
      match Ctx.get default_trace with
      | None -> None
      | Some factory -> Some (factory ()))
  in
  { Engine.machine = c.machine;
    policy = c.policy;
    seed = c.seed;
    trace;
    max_events = c.max_events }

let run cfg main =
  let eng = Engine.create (engine_config cfg) in
  Engine.run eng main;
  Runstats.of_engine eng

let run_result cfg main =
  let result = ref None in
  let stats = run cfg (fun () -> result := Some (main ())) in
  match !result with
  | Some v -> (v, stats)
  | None -> assert false
