(** The unified service plane: typed service endpoints with bounded
    inboxes and explicit overload policies.

    Paper Section 4 describes the OS as "a collection of services"
    communicating only by messages, and Section 5 sets the goal under
    stress: "aiming for not failing".  Before this module every Chorus
    service was a hand-rolled [Chan.recv] loop over an {e unbounded}
    inbox — overload meant queueing forever and melting latency.  A
    {!t} (request/reply) or {!cast} (one-way) endpoint wraps the inbox
    channel together with a {!config} saying how many requests may
    queue and what happens to the excess:

    - [`Block] — callers block once the inbox is full (backpressure;
      the CSP answer).  With [capacity = 0] the inbox is unbounded and
      a default-configured endpoint is charge-for-charge identical to
      the bare {!Chorus.Rpc} pattern it replaces.
    - [`Reject] — the caller immediately gets a typed busy error and
      the handler never sees the request (admission control).
    - [`Shed_oldest] — the stalest queued request is dropped (its
      caller gets the busy error) and the new one is admitted; fresh
      work wins (the Erlang mailbox-pruning answer).

    Every endpoint registers one uniform metric set —
    [queue_depth] (gauge, sampled on both enqueue and dequeue),
    [queue_hwm] (high-watermark gauge), [service_time] (histogram),
    [rejected] and [shed] (counters) — under its subsystem, and
    {!serve} wraps each request in a {!Chorus_obs.Span}.  All of it is
    free when no metrics registry / trace sink is installed, and none
    of it ever advances virtual time.

    Experiment E21 sweeps offered load past capacity and measures the
    goodput/latency crossover of the three policies. *)

module Chan = Chorus.Chan
module Fiber = Chorus.Fiber

(** {1 Overload policy} *)

type policy = [ `Block | `Reject | `Shed_oldest ]

type config = { capacity : int; policy : policy }
(** [capacity = 0] means unbounded (the policy is then irrelevant and
    must be [`Block]).  [`Reject] and [`Shed_oldest] require
    [capacity >= 1]. *)

val default_config : config
(** [{ capacity = 0; policy = `Block }]: the unbounded legacy
    behaviour; byte-identical to the pre-Svc service loops. *)

val config : ?capacity:int -> ?policy:policy -> unit -> config

exception Busy
(** Raised by {!call} and {!await} when the request was rejected or
    shed. *)

exception Expired
(** Raised by {!call} and {!await} when the request's end-to-end
    deadline passed before a reply arrived. *)

(** {1 End-to-end deadlines}

    A deadline is an {e absolute virtual time} by which the caller
    needs the reply.  It travels with the request: the serve loop
    drops work that is already expired at the {e dequeue boundary}
    (counted in [expired], answered [`Expired] so a still-listening
    caller unblocks), and while the handler runs, the request's
    deadline is the {e ambient} deadline — nested [call]s inherit it,
    so a budget set at the edge bounds the whole downstream tree.
    Everything is opt-in per call: a call without an explicit or
    ambient deadline takes exactly the pre-deadline path (no
    [Chan.choose], no RNG draw, no table writes), so seeded runs that
    never set a deadline stay byte-identical. *)

val with_deadline : int -> (unit -> 'a) -> 'a
(** [with_deadline d f] runs [f] with ambient deadline [d] for the
    {e current fiber} (saved and restored on exit, even by
    exception).  {!serve} wraps handlers of deadline-carrying requests
    in it automatically; call it directly to set a budget at the edge
    of a request tree. *)

val current_deadline : unit -> int option
(** The current fiber's ambient deadline, if any. *)

(** {1 Endpoints} *)

type 'msg cast
(** A one-way service endpoint ([Notify]-style inboxes, raft kicks,
    the net stack's port queues). *)

type 'resp reply = [ `Ok of 'resp | `Busy | `Expired ] Chan.t
(** The reply half of a request: a one-shot buffered channel.  [`Busy]
    is delivered by the overload policy, [`Expired] by the deadline
    machinery — never by a handler. *)

type ('req, 'resp) t = ('req * 'resp reply) cast
(** A request/reply service endpoint: exactly the paper's
    "[c <- (a, b, c1); r <- c1]" pattern with the inbox governed by a
    {!config}. *)

val cast_create :
  ?config:config -> ?metric_name:string -> ?on_shed:('msg -> unit) ->
  subsystem:string -> label:string -> unit -> 'msg cast
(** Fresh one-way endpoint.  [metric_name] prefixes the uniform metric
    set (["dispatcher.queue_depth"] vs plain ["queue_depth"]) so
    several services can share a subsystem.  [on_shed] observes each
    message dropped by [`Shed_oldest]. *)

val cast_attach :
  ?config:config -> ?metric_name:string -> ?on_shed:('msg -> unit) ->
  subsystem:string -> label:string -> 'msg Chan.t -> 'msg cast
(** Wrap an existing channel (the net stack's per-port frame queues)
    in a service endpoint.  The channel keeps its own buffering
    discipline, so [`Block] with a capacity cannot bound an attached
    unbounded channel — only the admission policies ([`Reject],
    [`Shed_oldest]) apply. *)

val create :
  ?config:config -> ?metric_name:string -> subsystem:string ->
  label:string -> unit -> ('req, 'resp) t
(** Fresh request/reply endpoint.  Shed requests are answered [`Busy]
    on their reply channel automatically. *)

(** {1 Client side} *)

val offer : ?words:int -> 'msg cast -> 'msg -> [ `Ok | `Busy ]
(** Submit a message under the endpoint's policy.  Under the default
    config this is exactly [Chan.send] (same charges, same words,
    default 2), plus host-side queue-depth sampling. *)

val cast : ?words:int -> 'msg cast -> 'msg -> unit
(** [offer] with the verdict dropped (rejections still count in the
    [rejected] metric). *)

val call : ?words:int -> ?deadline:int -> ('req, 'resp) t -> 'req -> 'resp
(** Send the request with a fresh reply channel, await the reply.
    Charge-for-charge identical to {!Chorus.Rpc.call} under the
    default config (and no deadline).  Raises {!Busy} when rejected or
    shed.  [deadline] is an absolute virtual time: if it passes before
    the reply arrives (or already passed — the effective deadline is
    the tighter of [deadline] and the ambient one), raises {!Expired}
    and the endpoint drops the request at its dequeue boundary. *)

val call_result :
  ?words:int -> ?deadline:int -> ('req, 'resp) t -> 'req ->
  [ `Ok of 'resp | `Busy | `Expired ]
(** {!call} with the busy/expired outcomes as values instead of
    exceptions. *)

val call_async :
  ?words:int -> ?deadline:int -> ('req, 'resp) t -> 'req -> 'resp reply
(** Fire the request and return the reply channel without waiting.  A
    rejected request's reply channel already holds [`Busy] (an
    already-expired one [`Expired]).  With a [deadline], the endpoint
    will drop the request if it dequeues after the deadline; the
    caller is responsible for its own timed wait (e.g. a
    {!Chan.choose} with {!Chan.after}). *)

val reply_chan : unit -> 'resp reply
(** A fresh one-shot reply channel ([Chan.buffered 1]), for services
    that plumb reply channels inside richer message types. *)

val answer : ?words:int -> 'resp reply -> 'resp -> unit
(** Server half: deliver [`Ok resp] on a hand-plumbed reply channel. *)

val await : 'resp reply -> 'resp
(** Client half of a hand-plumbed call.  Raises {!Busy} / {!Expired}. *)

val await_result : 'resp reply -> [ `Ok of 'resp | `Busy | `Expired ]

(** {1 Server side} *)

val take : 'msg cast -> 'msg
(** Receive the next message (blocking) and sample the queue-depth /
    high-watermark metrics on the dequeue side. *)

val recv_case : 'msg cast -> ('msg -> 'r) -> 'r Chan.case
(** The endpoint as one arm of a {!Chan.choose} (no depth sampling —
    choice commits bypass {!take}). *)

val take_batch : ?max:int -> 'msg cast -> 'msg list
(** Group commit for inboxes: block for the first message, then drain
    up to [max - 1] (default 15) more that are already queued, without
    blocking.  The whole batch costs one dequeue-side depth sample;
    the batch size feeds the [batches]/[batched]/[batch_hwm] counters
    so amortization is measurable.  Raises [Invalid_argument] when
    [max < 1]. *)

val serve_cast_batch : ?max:int -> 'msg cast -> ('msg list -> unit) -> unit
(** Batched flavour of {!serve_cast}: each iteration takes a
    {!take_batch} batch, hits the crash point {e once} per batch, runs
    the handler under a single span / [service_time] sample, and
    counts every message in [served] — the batched-serve charge model
    (one boundary per batch, per-message work inside the handler). *)

val serve :
  ?words_of_resp:('resp -> int) -> ?until:('req -> 'resp -> bool) ->
  ('req, 'resp) t -> ('req -> 'resp) -> unit
(** Serve forever (run inside a daemon fiber): receive, time the
    handler under a span + the [service_time] histogram, reply with
    [words_of_resp resp] payload words (default 2).  When [until req
    resp] answers [true] the endpoint is closed after the reply and
    the loop returns — the vnode retirement protocol.  A request whose
    deadline already passed at dequeue is dropped unserved (counted in
    [expired], answered [`Expired]); a live deadline becomes the
    ambient deadline for the handler's own nested calls. *)

val serve_cast : 'msg cast -> ('msg -> unit) -> unit
(** One-way flavour of {!serve}. *)

val start :
  ?on:int -> ?priority:Fiber.priority -> ?words_of_resp:('resp -> int) ->
  ?until:('req -> 'resp -> bool) -> ('req, 'resp) t -> ('req -> 'resp) ->
  Fiber.t
(** Spawn a daemon fiber (labelled with the endpoint's label) running
    {!serve}. *)

val start_cast :
  ?on:int -> ?priority:Fiber.priority -> 'msg cast -> ('msg -> unit) ->
  Fiber.t

val starter :
  ?on:int -> ?priority:Fiber.priority -> ?words_of_resp:('resp -> int) ->
  ?until:('req -> 'resp -> bool) -> ('req, 'resp) t -> ('req -> 'resp) ->
  unit -> Fiber.t
(** Restart hook for {!Chorus_kernel.Supervisor}-style child specs:
    because a service's identity is its endpoint, re-running the
    thunk re-attaches a fresh fiber to the same inbox. *)

val periodic :
  ?on:int -> ?priority:Fiber.priority -> ?count:int -> label:string ->
  period:int -> (int -> unit) -> Fiber.t
(** The timer-driven service shape (sensors): a daemon fiber that
    sleeps [period] cycles then runs the body with the tick index,
    [count] times ([0] = forever).  Stop it with {!Fiber.kill}. *)

val retire : 'msg cast -> unit
(** Close the inbox: blocked callers are aborted with
    [Chan.Closed]. *)

(** {1 Chaos crash points} *)

val set_crashpoint : (string -> unit) option -> unit
(** Install (or with [None] remove) the ambient crash-point hook.
    {!serve} and {!serve_cast} call it with the endpoint's crash-point
    name at every {e dequeue boundary} — after a request is taken off
    the inbox, before the handler runs, which is exactly where a crash
    loses the dequeued request.  The hook may raise: the serving fiber
    crashes, and a {!starter}-based supervisor restart re-attaches the
    surviving endpoint.  The chaos engine (lib/chaos) uses this to
    kill named service fibers at chosen cycle windows; with no hook
    installed (the default) the check is a single ref read and the
    plane behaves exactly as before. *)

val crashpoint_name : 'msg cast -> string
(** The endpoint's crash-point name: ["subsystem.label"]. *)

(** {1 Introspection} *)

val label : 'msg cast -> string

val capacity : 'msg cast -> int

val policy_of : 'msg cast -> policy

val depth : 'msg cast -> int
(** Requests queued right now. *)

val hwm : 'msg cast -> int
(** Highest queue depth ever sampled (enqueue or dequeue side). *)

val served : 'msg cast -> int

val rejected : 'msg cast -> int

val shed : 'msg cast -> int

val expired : 'msg cast -> int
(** Requests dropped at the dequeue boundary because their deadline
    had already passed. *)

val batches : 'msg cast -> int
(** {!take_batch} calls completed. *)

val batched : 'msg cast -> int
(** Messages delivered through batches; [batched / batches] is the
    realized amortization factor. *)

val batch_hwm : 'msg cast -> int
(** Largest single batch drained. *)
