(* The unified service plane.  See svc.mli for the story; the
   implementation notes below are about determinism.

   The default configuration (capacity 0 = unbounded, `Block) must be
   charge-for-charge identical to the hand-rolled Rpc loops it
   replaces: offer is a plain Chan.send, take is a plain Chan.recv,
   call builds the same one-shot [Chan.buffered 1] reply before
   sending, and nothing here ever uses Chan.choose (choose charges per
   case and draws from the run's RNG, which would perturb every seeded
   experiment).  Metrics and spans are host-side: they never advance
   virtual time and are no-ops without an installed registry/sink.

   Admission for `Reject mirrors Chan.try_send's test exactly:
   a message is deliverable without queuing past capacity iff a live
   receiver is waiting or the buffer has room. *)

module Chan = Chorus.Chan
module Fiber = Chorus.Fiber
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span

type policy = [ `Block | `Reject | `Shed_oldest ]

type config = { capacity : int; policy : policy }

let default_config = { capacity = 0; policy = `Block }

let config ?(capacity = 0) ?(policy = `Block) () = { capacity; policy }

exception Busy

exception Expired

(* The ambient end-to-end deadline, inherited by nested calls: a
   budget set at the edge bounds the whole downstream tree.  The slot
   holds a per-run table keyed by fiber id — slots are engine-wide,
   and a handler that blocks mid-request would otherwise leak its
   deadline to every other fiber interleaved on the same engine.  The
   table is created on first use (per run, so domain-safe), entries
   are save/restored around each [with_deadline] body, and an unarmed
   run pays one slot lookup returning [None]. *)
let deadline_slot : (int, int) Hashtbl.t Chorus.Ctx.slot =
  Chorus.Ctx.slot "svc.deadline"

let current_deadline () =
  match Chorus.Ctx.get deadline_slot with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl (Fiber.id (Fiber.self ()))

let with_deadline d f =
  let tbl =
    match Chorus.Ctx.get deadline_slot with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      Chorus.Ctx.set deadline_slot tbl;
      tbl
  in
  let fid = Fiber.id (Fiber.self ()) in
  let prev = Hashtbl.find_opt tbl fid in
  Hashtbl.replace tbl fid d;
  Fun.protect
    ~finally:(fun () ->
      match prev with
      | Some p -> Hashtbl.replace tbl fid p
      | None -> Hashtbl.remove tbl fid)
    f

(* A caller's effective deadline: the tighter of the explicit argument
   and the ambient (inherited) one. *)
let effective_deadline = function
  | Some d -> (
    match current_deadline () with
    | Some a when a < d -> Some a
    | _ -> Some d)
  | None -> current_deadline ()

(* The ambient crash-point hook: consulted at every serve/serve_cast
   dequeue boundary.  A Ctx slot, so a chaos worker arming a crash
   point from inside its run binds it in that run's context only —
   campaigns on other domains never observe it.  One small slot lookup
   when unarmed, so the plane stays near-free outside chaos
   campaigns. *)
let crashpoint : (string -> unit) Chorus.Ctx.slot =
  Chorus.Ctx.slot "svc.crashpoint"

let set_crashpoint = function
  | Some f -> Chorus.Ctx.set crashpoint f
  | None -> Chorus.Ctx.clear crashpoint

let hit_crashpoint name =
  match Chorus.Ctx.get crashpoint with None -> () | Some f -> f name

type 'msg cast = {
  inbox : 'msg Chan.t;
  cfg : config;
  clabel : string;
  cp_name : string;
  on_shed : 'msg -> unit;
  depth_g : Metrics.gauge;
  hwm_g : Metrics.gauge;
  service_h : Metrics.histogram;
  rejected_c : Metrics.counter;
  shed_c : Metrics.counter;
  expired_c : Metrics.counter;
  deadlines : (int, int) Hashtbl.t;
      (** reply-channel id -> absolute deadline, for in-queue requests *)
  span_sub : string;
  span_name : string;
  mutable hwm : int;
  mutable nrejected : int;
  mutable nshed : int;
  mutable nexpired : int;
  mutable nserved : int;
  mutable nbatches : int;
  mutable nbatched : int;
  mutable batch_hwm : int;
}

type 'resp reply = [ `Ok of 'resp | `Busy | `Expired ] Chan.t

type ('req, 'resp) t = ('req * 'resp reply) cast

let validate cfg =
  if cfg.capacity < 0 then invalid_arg "Svc: negative capacity";
  match cfg.policy with
  | `Reject | `Shed_oldest when cfg.capacity = 0 ->
      invalid_arg "Svc: `Reject/`Shed_oldest need a capacity >= 1"
  | _ -> ()

let mk_chan cfg ~label =
  match cfg with
  | { capacity = 0; _ } -> Chan.unbounded ~label ()
  | { capacity = n; policy = `Block } -> Chan.buffered ~label n
  (* admission policies decide before the send, so the channel itself
     never blocks the caller: offer only sends when a receiver waits or
     the buffer has room (Shed_oldest frees a slot first) *)
  | { capacity = n; policy = `Reject | `Shed_oldest } ->
      Chan.buffered ~label n

let wrap ~cfg ~subsystem ~metric_name ~label ~on_shed inbox =
  let mn = match metric_name with None -> "" | Some n -> n ^ "." in
  let ep = {
    inbox;
    cfg;
    clabel = label;
    cp_name = subsystem ^ "." ^ label;
    on_shed;
    depth_g = Metrics.gauge ~subsystem (mn ^ "queue_depth");
    hwm_g = Metrics.gauge ~subsystem (mn ^ "queue_hwm");
    service_h = Metrics.histogram ~subsystem (mn ^ "service_time");
    rejected_c = Metrics.counter ~subsystem (mn ^ "rejected");
    shed_c = Metrics.counter ~subsystem (mn ^ "shed");
    expired_c = Metrics.counter ~subsystem (mn ^ "expired");
    deadlines = Hashtbl.create 8;
    span_sub = subsystem;
    span_name = (match metric_name with None -> "serve" | Some n -> n);
    hwm = 0;
    nrejected = 0;
    nshed = 0;
    nexpired = 0;
    nserved = 0;
    nbatches = 0;
    nbatched = 0;
    batch_hwm = 0;
  }
  in
  (* Snapshot hook: every endpoint reports its inbox state to the
     replay debugger.  Identity survives crash/restart cycles because
     a restarted serve fiber re-attaches to the same endpoint. *)
  Chorus.Inspect.register
    ~name:
      (Printf.sprintf "svc/%s.%s%s" subsystem label
         (match metric_name with None -> "" | Some n -> "." ^ n))
    (fun () ->
      Chorus.Inspect.Assoc
        [ ("depth", Chorus.Inspect.Int (Chan.length ep.inbox));
          ("hwm", Chorus.Inspect.Int ep.hwm);
          ("served", Chorus.Inspect.Int ep.nserved);
          ("rejected", Chorus.Inspect.Int ep.nrejected);
          ("shed", Chorus.Inspect.Int ep.nshed);
          ("expired", Chorus.Inspect.Int ep.nexpired);
          ("batches", Chorus.Inspect.Int ep.nbatches);
          ("batched", Chorus.Inspect.Int ep.nbatched);
          ("batch_hwm", Chorus.Inspect.Int ep.batch_hwm);
          ("capacity", Chorus.Inspect.Int ep.cfg.capacity);
          ("policy",
           Chorus.Inspect.String
             (match ep.cfg.policy with
             | `Block -> "block"
             | `Reject -> "reject"
             | `Shed_oldest -> "shed-oldest")) ]);
  ep

let cast_create ?(config = default_config) ?metric_name
    ?(on_shed = fun _ -> ()) ~subsystem ~label () =
  validate config;
  wrap ~cfg:config ~subsystem ~metric_name ~label ~on_shed
    (mk_chan config ~label)

let cast_attach ?(config = default_config) ?metric_name
    ?(on_shed = fun _ -> ()) ~subsystem ~label ch =
  validate config;
  wrap ~cfg:config ~subsystem ~metric_name ~label ~on_shed ch

let create ?config ?metric_name ~subsystem ~label () =
  (* the shed hook needs the endpoint it is being created for (to drop
     a shed request's deadline entry), so tie the knot with a ref *)
  let epr = ref None in
  let ep =
    cast_create ?config ?metric_name
      ~on_shed:(fun (_req, r) ->
        (match !epr with
        | Some ep -> Hashtbl.remove ep.deadlines (Chan.id r)
        | None -> ());
        ignore (Chan.try_send r `Busy))
      ~subsystem ~label ()
  in
  epr := Some ep;
  ep

let sample t =
  let d = Chan.length t.inbox in
  if d > t.hwm then begin
    t.hwm <- d;
    Metrics.observe t.hwm_g d
  end;
  Metrics.observe t.depth_g d

(* Deliverable-now, exactly try_send's test: a live receiver waits, or
   the queue is below capacity (the inbox is unbounded under these
   policies, so capacity is enforced here, not by the channel). *)
let has_room t =
  Chan.waiting_receivers t.inbox > 0 || Chan.length t.inbox < t.cfg.capacity

let offer ?words t msg =
  let admitted =
    t.cfg.capacity = 0
    ||
    match t.cfg.policy with
    | `Block -> true
    | `Reject -> has_room t
    | `Shed_oldest ->
        if not (has_room t) then
          (match Chan.try_recv t.inbox with
          | Some stale ->
              t.nshed <- t.nshed + 1;
              Metrics.incr t.shed_c;
              t.on_shed stale
          | None -> ());
        true
  in
  if admitted then begin
    (* An admitted message under an admission policy goes through
       [Chan.try_send], not [Chan.send]: the two stamp the message at
       different points relative to the send-side charge, and the
       non-blocking stamp is the one the hand-rolled try_send call
       sites being replaced had.  Admission guarantees it succeeds
       (a receiver waits, the buffer has room, or the channel is
       unbounded), so the boolean is an invariant, not a decision. *)
    (match t.cfg.policy with
    | _ when t.cfg.capacity = 0 -> Chan.send ?words t.inbox msg
    | `Block -> Chan.send ?words t.inbox msg
    | `Reject | `Shed_oldest ->
        let sent = Chan.try_send ?words t.inbox msg in
        assert sent);
    sample t;
    `Ok
  end
  else begin
    t.nrejected <- t.nrejected + 1;
    Metrics.incr t.rejected_c;
    `Busy
  end

let cast ?words t msg = ignore (offer ?words t msg)

let reply_chan () = Chan.buffered 1

let answer ?words r v = Chan.send ?words r (`Ok v)

let await_result r = Chan.recv r

let await r =
  match Chan.recv r with
  | `Ok v -> v
  | `Busy -> raise Busy
  | `Expired -> raise Expired

(* The deadline path is opt-in per call: without an explicit or
   ambient deadline the call compiles to exactly the pre-deadline
   sequence (reply chan, offer, recv) — no table writes, no
   [Chan.choose] (which charges per case and draws from the run's
   RNG), so seeded runs without deadlines stay byte-identical. *)
let call_result ?words ?deadline t req =
  match effective_deadline deadline with
  | None -> (
    let r = reply_chan () in
    match offer ?words t (req, r) with `Ok -> Chan.recv r | `Busy -> `Busy)
  | Some d ->
    if Fiber.now () >= d then `Expired
    else
      let r = reply_chan () in
      Hashtbl.replace t.deadlines (Chan.id r) d;
      (match offer ?words t (req, r) with
      | `Busy ->
        Hashtbl.remove t.deadlines (Chan.id r);
        `Busy
      | `Ok ->
        Chan.choose
          [ Chan.recv_case r Fun.id;
            Chan.after (d - Fiber.now ()) (fun () -> `Expired) ])

let call ?words ?deadline t req =
  match call_result ?words ?deadline t req with
  | `Ok v -> v
  | `Busy -> raise Busy
  | `Expired -> raise Expired

let call_async ?words ?deadline t req =
  let r = reply_chan () in
  (match effective_deadline deadline with
  | Some d when Fiber.now () >= d -> ignore (Chan.try_send r `Expired)
  | eff ->
    (match eff with
    | Some d -> Hashtbl.replace t.deadlines (Chan.id r) d
    | None -> ());
    (match offer ?words t (req, r) with
    | `Ok -> ()
    | `Busy ->
      Hashtbl.remove t.deadlines (Chan.id r);
      ignore (Chan.try_send r `Busy)));
  r

let take t =
  let msg = Chan.recv t.inbox in
  sample t;
  msg

(* Group commit for inboxes: block for the first message, then drain
   whatever else is already queued (up to [max]) without blocking or
   further charges.  One dequeue-side depth sample covers the whole
   batch, so a server draining N coalesced messages pays one boundary
   crossing, not N — the amortization the batch stats make visible. *)
let take_batch ?(max = 16) t =
  if max < 1 then invalid_arg "Svc.take_batch: max";
  let first = Chan.recv t.inbox in
  let rec drain acc k =
    if k >= max then List.rev acc
    else
      match Chan.try_recv t.inbox with
      | None -> List.rev acc
      | Some m -> drain (m :: acc) (k + 1)
  in
  let batch = drain [ first ] 1 in
  sample t;
  let n = List.length batch in
  t.nbatches <- t.nbatches + 1;
  t.nbatched <- t.nbatched + n;
  if n > t.batch_hwm then t.batch_hwm <- n;
  batch

let serve_cast_batch ?max t handler =
  let rec loop () =
    let batch = take_batch ?max t in
    hit_crashpoint t.cp_name;
    Span.timed ~subsystem:t.span_sub ~name:t.span_name t.service_h
      (fun () -> handler batch);
    t.nserved <- t.nserved + List.length batch;
    loop ()
  in
  loop ()

let recv_case t f = Chan.recv_case t.inbox f

let serve ?(words_of_resp = fun _ -> 2) ?until t handler =
  let rec loop () =
    let req, r = take t in
    hit_crashpoint t.cp_name;
    (* deadline check at the dequeue boundary: work that already
       missed its deadline is dead on arrival — serving it would burn
       server time on a reply nobody is waiting for (the caller's
       choose arm fired at the deadline).  Dropping here is what keeps
       an overloaded queue from serving an ever-older backlog. *)
    let dl =
      match Hashtbl.find_opt t.deadlines (Chan.id r) with
      | None -> None
      | Some d ->
        Hashtbl.remove t.deadlines (Chan.id r);
        Some d
    in
    match dl with
    | Some d when Fiber.now () >= d ->
      t.nexpired <- t.nexpired + 1;
      Metrics.incr t.expired_c;
      ignore (Chan.try_send r `Expired);
      loop ()
    | _ ->
      (* the reply send is part of the serviced work: its send-side
         charge is time the server spends on this request, so it
         belongs inside the service_time window *)
      let resp =
        Span.timed ~subsystem:t.span_sub ~name:t.span_name t.service_h
          (fun () ->
            let run () =
              let resp = handler req in
              Chan.send ~words:(words_of_resp resp) r (`Ok resp);
              resp
            in
            (* nested calls made by the handler inherit the request's
               remaining budget through the ambient slot *)
            match dl with Some d -> with_deadline d run | None -> run ())
      in
      t.nserved <- t.nserved + 1;
      let stop = match until with None -> false | Some p -> p req resp in
      if stop then Chan.close t.inbox else loop ()
  in
  loop ()

let serve_cast t handler =
  let rec loop () =
    let msg = take t in
    hit_crashpoint t.cp_name;
    Span.timed ~subsystem:t.span_sub ~name:t.span_name t.service_h
      (fun () -> handler msg);
    t.nserved <- t.nserved + 1;
    loop ()
  in
  loop ()

let start ?on ?priority ?words_of_resp ?until t handler =
  Fiber.spawn ?on ?priority ~label:t.clabel ~daemon:true (fun () ->
      serve ?words_of_resp ?until t handler)

let start_cast ?on ?priority t handler =
  Fiber.spawn ?on ?priority ~label:t.clabel ~daemon:true (fun () ->
      serve_cast t handler)

let starter ?on ?priority ?words_of_resp ?until t handler () =
  start ?on ?priority ?words_of_resp ?until t handler

let periodic ?on ?priority ?(count = 0) ~label ~period body =
  Fiber.spawn ?on ?priority ~label ~daemon:true (fun () ->
      let rec loop i =
        if count > 0 && i >= count then ()
        else begin
          Fiber.sleep period;
          body i;
          loop (i + 1)
        end
      in
      loop 0)

let retire t = Chan.close t.inbox

let crashpoint_name t = t.cp_name

let label t = t.clabel

let capacity t = t.cfg.capacity

let policy_of t = t.cfg.policy

let depth t = Chan.length t.inbox

let hwm t = t.hwm

let served t = t.nserved

let rejected t = t.nrejected

let shed t = t.nshed

let expired t = t.nexpired

let batches t = t.nbatches

let batched t = t.nbatched

let batch_hwm t = t.batch_hwm
