(** Process-table service.

    Applications are fibers with pids.  The table is one service fiber
    (no locks); application exits are observed through fiber monitors
    and republished on the {!Notify} hub as [App_exit] events, so
    anything — a shell, a supervisor, an init — can watch for them the
    message-channel way. *)

type preq

type t

val start : ?config:Chorus_svc.Svc.config -> notify:Notify.t -> unit -> t

val spawn_app :
  t -> ?on:int -> label:string -> (pid:int -> unit) -> int
(** Register a pid, spawn the application fiber (non-daemon), return
    the pid immediately. *)

val wait : t -> int -> bool
(** Block until the pid exits; [true] iff it exited normally.
    Unknown/reaped pids return [false]. *)

val running : t -> int

val spawned : t -> int

val inbox : t -> preq Chorus_svc.Svc.cast
(** The table's service endpoint (uniform queue metrics live here). *)
