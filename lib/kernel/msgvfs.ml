module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Fsspec = Chorus_fsspec.Fsspec
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span
module Svc = Chorus_svc.Svc

type config = { plumbing : bool; dispatchers : int }

let default_config = { plumbing = true; dispatchers = 4 }

type attr = { akind : Fsspec.kind; asize : int; ablocks : int }

(* The common vnode message protocol. *)
type vreq =
  | Lookup of string
  | Make of string * Fsspec.kind
  | Remove of string
  | Detach of string
      (** remove and return the entry (first half of rename) *)
  | Attach of string * vnode * Fsspec.kind
      (** adopt a detached vnode (second half of rename) *)
  | Readdir
  | Getattr
  | Read of { off : int; len : int }
  | Write of { off : int; data : string }
  | Retire

and vresp =
  | Child of vnode * Fsspec.kind
  | Attr of attr
  | Data of string
  | Wrote of int
  | Names of string list
  | Done
  | Err of Fsspec.err

and vnode = (vreq, vresp) Svc.t

type sys = {
  cfg : config;
  svc_cfg : Svc.config option;
  bcache : Bcache.t;
  alloc : Cgalloc.t;
  root : vnode;
  disp : (sc, scresp) Svc.t array;
  mutable spawned : int;
  mutable live : int;
  mutable placeholders : int;
  mutable hydrations : int;
  mutable hydration_failures : int;
}

and sc =
  | Sc_mkdir of string
  | Sc_create of string
  | Sc_open of string
  | Sc_read of vnode * int * int
  | Sc_write of vnode * int * string
  | Sc_stat of string
  | Sc_unlink of string
  | Sc_rename of string * string
  | Sc_readdir of string

and scresp =
  | R_unit of (unit, Fsspec.err) result
  | R_fd of (vnode, Fsspec.err) result
  | R_data of (string, Fsspec.err) result
  | R_wrote of (int, Fsspec.err) result
  | R_stat of (Fsspec.stat, Fsspec.err) result
  | R_names of (string list, Fsspec.err) result

(* Per-operation request-latency histograms, shared through the
   metrics registry by every client of the mount. *)
type op_hists = {
  h_mkdir : Metrics.histogram;
  h_create : Metrics.histogram;
  h_open : Metrics.histogram;
  h_read : Metrics.histogram;
  h_write : Metrics.histogram;
  h_stat : Metrics.histogram;
  h_unlink : Metrics.histogram;
  h_rename : Metrics.histogram;
  h_readdir : Metrics.histogram;
}

type t = {
  sys : sys;
  fds : (int, vnode) Hashtbl.t;
  mutable next_fd : int;
  mutable next_disp : int;
  mx : op_hists;
}

let bs = Fsspec.block_size

let words_of_string s = 2 + ((String.length s + 7) / 8)

let reply_words = function
  | Data s -> words_of_string s
  | Names ns -> 2 + List.length ns
  | Child _ | Attr _ | Wrote _ | Done | Err _ -> 4

(* ------------------------------------------------------------------ *)
(* File vnode                                                          *)

let rec nth_opt l i =
  match (l, i) with
  | x :: _, 0 -> Some x
  | _ :: rest, i -> nth_opt rest (i - 1)
  | [], _ -> None

let file_read sys ~blocks ~size ~off ~len =
  let len = max 0 (min len (size - off)) in
  let out = Bytes.create len in
  let rec copy done_ =
    if done_ >= len then ()
    else begin
      let pos = off + done_ in
      let bidx = pos / bs in
      let boff = pos mod bs in
      let chunk = min (bs - boff) (len - done_) in
      (match nth_opt blocks bidx with
      | Some b ->
        let data = Bcache.get_range sys.bcache b ~off:boff ~len:chunk in
        Bytes.blit_string data 0 out done_ (String.length data);
        if String.length data < chunk then
          Bytes.fill out (done_ + String.length data)
            (chunk - String.length data) '\000'
      | None -> Bytes.fill out done_ chunk '\000');
      copy (done_ + chunk)
    end
  in
  copy 0;
  Bytes.to_string out

(* ensure the file covers block index [bidx]; returns updated block
   list or Enospc *)
let rec ensure_block sys ~hint blocks bidx =
  match nth_opt blocks bidx with
  | Some b -> Ok (blocks, b)
  | None -> (
    match Cgalloc.alloc sys.alloc ~hint with
    | None -> Error Fsspec.Enospc
    | Some b ->
      Bcache.zero sys.bcache b;
      ensure_block sys ~hint (blocks @ [ b ]) bidx)

(* copy [data] at [off] into the block list, allocating as needed;
   returns the updated list (shared by plain files and hydrating
   placeholders) *)
let file_write sys ~hint blocks ~off data =
  let len = String.length data in
  let rec copy blocks done_ =
    if done_ >= len then Ok blocks
    else begin
      let pos = off + done_ in
      let bidx = pos / bs in
      let boff = pos mod bs in
      let chunk = min (bs - boff) (len - done_) in
      match ensure_block sys ~hint blocks bidx with
      | Error e -> Error e
      | Ok (blocks', b) ->
        Bcache.put sys.bcache b ~off:boff (String.sub data done_ chunk);
        copy blocks' (done_ + chunk)
    end
  in
  copy blocks 0

let serve_file sys ep ~hint =
  let blocks = ref [] in
  let size = ref 0 in
  Svc.serve ~words_of_resp:reply_words
    ~until:(fun req _ -> match req with Retire -> true | _ -> false)
    ep
    (fun req ->
      match req with
      | Getattr -> Attr { akind = Fsspec.File; asize = !size;
                          ablocks = List.length !blocks }
      | Read { off; len } ->
        if off < 0 || len < 0 then Err Fsspec.Einval
        else Data (file_read sys ~blocks:!blocks ~size:!size ~off ~len)
      | Write { off; data } ->
        if off < 0 then Err Fsspec.Einval
        else begin
          match file_write sys ~hint !blocks ~off data with
          | Error e -> Err e
          | Ok blocks' ->
            blocks := blocks';
            let len = String.length data in
            if off + len > !size then size := off + len;
            Wrote len
        end
      | Retire ->
        List.iter (Cgalloc.free sys.alloc) !blocks;
        blocks := [];
        sys.live <- sys.live - 1;
        Done
      | Lookup _ | Make _ | Remove _ | Detach _ | Attach _ | Readdir ->
        Err Fsspec.Enotdir)

(* ------------------------------------------------------------------ *)
(* Directory vnode                                                     *)

let rec serve_dir sys ep =
  let entries : (string, vnode * Fsspec.kind) Hashtbl.t = Hashtbl.create 8 in
  Svc.serve ~words_of_resp:reply_words
    ~until:(fun req resp ->
      match (req, resp) with Retire, Done -> true | _ -> false)
    ep
    (fun req ->
      match req with
      | Getattr ->
        Attr { akind = Fsspec.Dir; asize = Hashtbl.length entries;
               ablocks = 0 }
      | Lookup name -> (
        match Hashtbl.find_opt entries name with
        | Some (v, k) -> Child (v, k)
        | None -> Err Fsspec.Enoent)
      | Make (name, kind) ->
        if Hashtbl.mem entries name then Err Fsspec.Eexist
        else begin
          let child = spawn_vnode sys kind in
          Hashtbl.replace entries name (child, kind);
          Child (child, kind)
        end
      | Detach name -> (
        match Hashtbl.find_opt entries name with
        | None -> Err Fsspec.Enoent
        | Some (v, kind) ->
          Hashtbl.remove entries name;
          Child (v, kind))
      | Attach (name, v, kind) ->
        if Hashtbl.mem entries name then Err Fsspec.Eexist
        else begin
          Hashtbl.replace entries name (v, kind);
          Done
        end
      | Remove name -> (
        match Hashtbl.find_opt entries name with
        | None -> Err Fsspec.Enoent
        | Some (v, kind) -> (
          (* directories must be empty; ask the child *)
          let empty_ok =
            match kind with
            | Fsspec.File -> Ok ()
            | Fsspec.Dir -> (
              match Svc.call v Getattr with
              | Attr a when a.asize = 0 -> Ok ()
              | Attr _ -> Error Fsspec.Enotempty
              | _ -> Error Fsspec.Einval)
          in
          match empty_ok with
          | Error e -> Err e
          | Ok () -> (
            match Svc.call v Retire with
            | Done ->
              Hashtbl.remove entries name;
              Done
            | _ -> Err Fsspec.Einval)))
      | Readdir ->
        let names = Hashtbl.fold (fun k _ acc -> k :: acc) entries [] in
        Names (List.sort compare names)
      | Retire ->
        if Hashtbl.length entries > 0 then Err Fsspec.Enotempty
        else begin
          sys.live <- sys.live - 1;
          Done
        end
      | Read _ | Write _ -> Err Fsspec.Eisdir)

and spawn_vnode sys kind =
  let ep =
    Svc.create ?config:sys.svc_cfg ~subsystem:"msgvfs" ~metric_name:"vnode"
      ~label:"vnode" ()
  in
  sys.spawned <- sys.spawned + 1;
  sys.live <- sys.live + 1;
  let hint = sys.spawned in
  let body =
    match kind with
    | Fsspec.File -> fun () -> serve_file sys ep ~hint
    | Fsspec.Dir -> fun () -> serve_dir sys ep
  in
  let label =
    Printf.sprintf "%s-vnode-%d"
      (match kind with Fsspec.File -> "file" | Fsspec.Dir -> "dir")
      hint
  in
  ignore (Fiber.spawn ~label ~daemon:true body);
  ep

(* ------------------------------------------------------------------ *)
(* Projected namespaces: lazy directories and placeholder files        *)

type projection = {
  proj_entries :
    string -> ((string * Fsspec.kind * int) list, Fsspec.err) result;
  proj_fetch : string -> (string, Fsspec.err) result;
}

(* A placeholder file vnode: declared size, no blocks, until the first
   read or write pulls the contents through proj_fetch and writes them
   into the cache (attach-on-hydrate).  The vnode fiber serializes its
   requests, so concurrent readers of a cold file queue behind one
   hydration and nobody ever sees a partial fill; a failed fetch
   surfaces as Err and leaves the placeholder cold and retryable. *)
let serve_placeholder sys proj ~rel ~declared ep ~hint =
  let blocks = ref [] in
  let size = ref 0 in
  let hydrated = ref false in
  let hydrate () =
    if !hydrated then Ok ()
    else
      match proj.proj_fetch rel with
      | Error e ->
        sys.hydration_failures <- sys.hydration_failures + 1;
        Error e
      | Ok content -> (
        match file_write sys ~hint [] ~off:0 content with
        | Error e -> Error e
        | Ok blocks' ->
          blocks := blocks';
          size := String.length content;
          hydrated := true;
          sys.placeholders <- sys.placeholders - 1;
          sys.hydrations <- sys.hydrations + 1;
          Ok ())
  in
  Svc.serve ~words_of_resp:reply_words
    ~until:(fun req _ -> match req with Retire -> true | _ -> false)
    ep
    (fun req ->
      match req with
      | Getattr ->
        if !hydrated then
          Attr { akind = Fsspec.File; asize = !size;
                 ablocks = List.length !blocks }
        else Attr { akind = Fsspec.File; asize = declared; ablocks = 0 }
      | Read { off; len } ->
        if off < 0 || len < 0 then Err Fsspec.Einval
        else begin
          match hydrate () with
          | Error e -> Err e
          | Ok () -> Data (file_read sys ~blocks:!blocks ~size:!size ~off ~len)
        end
      | Write { off; data } ->
        if off < 0 then Err Fsspec.Einval
        else begin
          (* copy-up before write: the projected bytes are the base *)
          match hydrate () with
          | Error e -> Err e
          | Ok () -> (
            match file_write sys ~hint !blocks ~off data with
            | Error e -> Err e
            | Ok blocks' ->
              blocks := blocks';
              let len = String.length data in
              if off + len > !size then size := off + len;
              Wrote len)
        end
      | Retire ->
        List.iter (Cgalloc.free sys.alloc) !blocks;
        blocks := [];
        if not !hydrated then sys.placeholders <- sys.placeholders - 1;
        sys.live <- sys.live - 1;
        Done
      | Lookup _ | Make _ | Remove _ | Detach _ | Attach _ | Readdir ->
        Err Fsspec.Enotdir)

(* A projected directory vnode: the entry list comes from
   proj_entries on first use (errors retry on the next request), child
   vnodes spawn on first Lookup.  Local Make entries coexist with the
   projected names; the projected names themselves are immutable from
   this side. *)
let rec serve_proj_dir sys proj ~rel ep =
  let local : (string, vnode * Fsspec.kind) Hashtbl.t = Hashtbl.create 8 in
  let pending : (string, Fsspec.kind * int) Hashtbl.t = Hashtbl.create 8 in
  let projected : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let enumerated = ref false in
  let enumerate () =
    if !enumerated then Ok ()
    else
      match proj.proj_entries rel with
      | Error e -> Error e
      | Ok entries ->
        List.iter
          (fun (name, kind, size) ->
            Hashtbl.replace projected name ();
            if not (Hashtbl.mem local name) then
              Hashtbl.replace pending name (kind, size))
          entries;
        enumerated := true;
        Ok ()
  in
  let child_rel name = if rel = "" then name else rel ^ "/" ^ name in
  Svc.serve ~words_of_resp:reply_words
    ~until:(fun _ _ -> false)
    ep
    (fun req ->
      match req with
      | Getattr -> (
        match enumerate () with
        | Error e -> Err e
        | Ok () ->
          Attr { akind = Fsspec.Dir;
                 asize = Hashtbl.length local + Hashtbl.length pending;
                 ablocks = 0 })
      | Lookup name -> (
        match enumerate () with
        | Error e -> Err e
        | Ok () -> (
          match Hashtbl.find_opt local name with
          | Some (v, k) -> Child (v, k)
          | None -> (
            match Hashtbl.find_opt pending name with
            | None -> Err Fsspec.Enoent
            | Some (kind, size) ->
              let child =
                spawn_proj_vnode sys proj kind ~rel:(child_rel name)
                  ~declared:size
              in
              Hashtbl.remove pending name;
              Hashtbl.replace local name (child, kind);
              Child (child, kind))))
      | Make (name, kind) -> (
        match enumerate () with
        | Error e -> Err e
        | Ok () ->
          if Hashtbl.mem local name || Hashtbl.mem pending name then
            Err Fsspec.Eexist
          else begin
            let child = spawn_vnode sys kind in
            Hashtbl.replace local name (child, kind);
            Child (child, kind)
          end)
      | Remove name ->
        if Hashtbl.mem projected name then Err Fsspec.Einval
        else (
          match Hashtbl.find_opt local name with
          | None -> Err Fsspec.Enoent
          | Some (v, kind) -> (
            let empty_ok =
              match kind with
              | Fsspec.File -> Ok ()
              | Fsspec.Dir -> (
                match Svc.call v Getattr with
                | Attr a when a.asize = 0 -> Ok ()
                | Attr _ -> Error Fsspec.Enotempty
                | _ -> Error Fsspec.Einval)
            in
            match empty_ok with
            | Error e -> Err e
            | Ok () -> (
              match Svc.call v Retire with
              | Done ->
                Hashtbl.remove local name;
                Done
              | _ -> Err Fsspec.Einval)))
      | Detach name ->
        if Hashtbl.mem projected name then Err Fsspec.Einval
        else (
          match Hashtbl.find_opt local name with
          | None -> Err Fsspec.Enoent
          | Some (v, kind) ->
            Hashtbl.remove local name;
            Child (v, kind))
      | Attach (name, v, kind) -> (
        match enumerate () with
        | Error e -> Err e
        | Ok () ->
          if Hashtbl.mem local name || Hashtbl.mem pending name then
            Err Fsspec.Eexist
          else begin
            Hashtbl.replace local name (v, kind);
            Done
          end)
      | Readdir -> (
        match enumerate () with
        | Error e -> Err e
        | Ok () ->
          let names =
            Hashtbl.fold (fun k _ acc -> k :: acc) local
              (Hashtbl.fold (fun k _ acc -> k :: acc) pending [])
          in
          Names (List.sort compare names))
      | Retire ->
        (* the projection is permanent: its namespace is remote *)
        Err Fsspec.Einval
      | Read _ | Write _ -> Err Fsspec.Eisdir)

and spawn_proj_vnode sys proj kind ~rel ~declared =
  let ep =
    Svc.create ?config:sys.svc_cfg ~subsystem:"msgvfs" ~metric_name:"vnode"
      ~label:"vnode" ()
  in
  sys.spawned <- sys.spawned + 1;
  sys.live <- sys.live + 1;
  let hint = sys.spawned in
  let body =
    match kind with
    | Fsspec.File ->
      sys.placeholders <- sys.placeholders + 1;
      fun () -> serve_placeholder sys proj ~rel ~declared ep ~hint
    | Fsspec.Dir -> fun () -> serve_proj_dir sys proj ~rel ep
  in
  let label =
    Printf.sprintf "%s-vnode-%d"
      (match kind with Fsspec.File -> "proj-file" | Fsspec.Dir -> "proj-dir")
      hint
  in
  ignore (Fiber.spawn ~label ~daemon:true body);
  ep

(* ------------------------------------------------------------------ *)
(* Path walking (chain of Lookup messages down the tree)               *)

let walk sys path =
  match Fsspec.split_path path with
  | Error e -> Error e
  | Ok comps ->
    let rec go cur kind = function
      | [] -> Ok (cur, kind)
      | name :: rest -> (
        match Svc.call cur (Lookup name) with
        | Child (v, k) -> go v k rest
        | Err e -> Error e
        | _ -> Error Fsspec.Einval)
    in
    (try go sys.root Fsspec.Dir comps
     with Chan.Closed -> Error Fsspec.Enoent)

let walk_parent sys path =
  match Fsspec.split_path path with
  | Error e -> Error e
  | Ok [] -> Error Fsspec.Einval
  | Ok comps ->
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | c :: rest -> split_last (c :: acc) rest
    in
    let parents, name = split_last [] comps in
    let rec go cur = function
      | [] -> Ok (cur, name)
      | n :: rest -> (
        match Svc.call cur (Lookup n) with
        | Child (v, Fsspec.Dir) -> go v rest
        | Child (_, Fsspec.File) -> Error Fsspec.Enotdir
        | Err e -> Error e
        | _ -> Error Fsspec.Einval)
    in
    (try go sys.root parents with Chan.Closed -> Error Fsspec.Enoent)

let project sys ~at proj =
  match walk_parent sys at with
  | Error e -> Error e
  | Ok (dir, name) -> (
    let v = spawn_proj_vnode sys proj Fsspec.Dir ~rel:"" ~declared:0 in
    try
      match Svc.call dir (Attach (name, v, Fsspec.Dir)) with
      | Done -> Ok ()
      | Err e -> Error e
      | _ -> Error Fsspec.Einval
    with Chan.Closed -> Error Fsspec.Enoent)

let stat_of_attr a =
  { Fsspec.kind = a.akind; size = a.asize; blocks = a.ablocks }

(* The full operations, as performed by whoever walks (client under
   plumbing, dispatcher otherwise). *)
let do_mkdir sys path =
  match walk_parent sys path with
  | Error e -> Error e
  | Ok (dir, name) -> (
    try
      match Svc.call dir (Make (name, Fsspec.Dir)) with
      | Child _ -> Ok ()
      | Err e -> Error e
      | _ -> Error Fsspec.Einval
    with Chan.Closed -> Error Fsspec.Enoent)

let do_create sys path =
  match walk_parent sys path with
  | Error e -> Error e
  | Ok (dir, name) -> (
    try
      match Svc.call dir (Make (name, Fsspec.File)) with
      | Child _ -> Ok ()
      | Err e -> Error e
      | _ -> Error Fsspec.Einval
    with Chan.Closed -> Error Fsspec.Enoent)

let do_open sys path =
  match walk sys path with
  | Error e -> Error e
  | Ok (_, Fsspec.Dir) -> Error Fsspec.Eisdir
  | Ok (v, Fsspec.File) -> Ok v

let do_read v ~off ~len =
  try
    match Svc.call ~words:6 v (Read { off; len }) with
    | Data d -> Ok d
    | Err e -> Error e
    | _ -> Error Fsspec.Einval
  with Chan.Closed -> Error Fsspec.Ebadf

let do_write v ~off data =
  try
    match Svc.call ~words:(4 + words_of_string data) v (Write { off; data })
    with
    | Wrote n -> Ok n
    | Err e -> Error e
    | _ -> Error Fsspec.Einval
  with Chan.Closed -> Error Fsspec.Ebadf

let do_stat sys path =
  match walk sys path with
  | Error e -> Error e
  | Ok (v, _) -> (
    try
      match Svc.call v Getattr with
      | Attr a -> Ok (stat_of_attr a)
      | Err e -> Error e
      | _ -> Error Fsspec.Einval
    with Chan.Closed -> Error Fsspec.Enoent)

let do_unlink sys path =
  match walk_parent sys path with
  | Error e -> Error e
  | Ok (dir, name) -> (
    try
      match Svc.call dir (Remove name) with
      | Done -> Ok ()
      | Err e -> Error e
      | _ -> Error Fsspec.Einval
    with Chan.Closed -> Error Fsspec.Enoent)

(* Rename is a two-message protocol between autonomous directory
   vnodes: detach from the source, attach at the destination,
   reattaching at the source if the destination name is taken.  The
   window in which the child hangs off neither directory is invisible
   to other clients only insofar as they address entries by name; a
   concurrent lookup sees Enoent — acceptable rename semantics for a
   kernel without a global lock to hide behind, and symmetric with the
   lock kernel's two-lock window. *)
let do_rename sys src dst =
  if Fsspec.path_inside ~src ~dst then Error Fsspec.Einval
  else
    match walk_parent sys src with
    | Error e -> Error e
    | Ok (sdir, sname) -> (
      try
        (* source must exist before we resolve the destination (error
           precedence matches the reference model) *)
        match Svc.call sdir (Lookup sname) with
        | Err e -> Error e
        | Child _ -> (
          match walk_parent sys dst with
          | Error e -> Error e
          | Ok (ddir, dname) -> (
            match Svc.call sdir (Detach sname) with
            | Err e -> Error e
            | Child (v, kind) -> (
              match Svc.call ddir (Attach (dname, v, kind)) with
              | Done -> Ok ()
              | Err e -> (
                (* put it back where it came from *)
                match Svc.call sdir (Attach (sname, v, kind)) with
                | Done -> Error e
                | _ -> Error Fsspec.Einval)
              | _ -> Error Fsspec.Einval)
            | _ -> Error Fsspec.Einval))
        | _ -> Error Fsspec.Einval
      with Chan.Closed -> Error Fsspec.Enoent)

let do_readdir sys path =
  match walk sys path with
  | Error e -> Error e
  | Ok (v, _) -> (
    try
      match Svc.call v Readdir with
      | Names ns -> Ok ns
      | Err e -> Error e
      | _ -> Error Fsspec.Einval
    with Chan.Closed -> Error Fsspec.Enoent)

(* ------------------------------------------------------------------ *)
(* Dispatchers (conservative, non-plumbed syscall entry)               *)

let serve_dispatcher sys ep =
  Svc.serve ep (fun sc ->
      match sc with
      | Sc_mkdir p -> R_unit (do_mkdir sys p)
      | Sc_create p -> R_unit (do_create sys p)
      | Sc_open p -> R_fd (do_open sys p)
      | Sc_read (v, off, len) -> R_data (do_read v ~off ~len)
      | Sc_write (v, off, data) -> R_wrote (do_write v ~off data)
      | Sc_stat p -> R_stat (do_stat sys p)
      | Sc_unlink p -> R_unit (do_unlink sys p)
      | Sc_rename (a, b) -> R_unit (do_rename sys a b)
      | Sc_readdir p -> R_names (do_readdir sys p))

(* ------------------------------------------------------------------ *)

let mount ?svc cfg ~bcache ~alloc =
  let root =
    Svc.create ?config:svc ~subsystem:"msgvfs" ~metric_name:"vnode"
      ~label:"root-vnode" ()
  in
  let disp =
    Array.init
      (if cfg.plumbing then 0 else max 1 cfg.dispatchers)
      (fun i ->
        Svc.create ?config:svc ~subsystem:"msgvfs" ~metric_name:"dispatcher"
          ~label:(Printf.sprintf "syscall-%d" i) ())
  in
  let sys =
    { cfg; svc_cfg = svc; bcache; alloc; root; disp; spawned = 1; live = 1;
      placeholders = 0; hydrations = 0; hydration_failures = 0 }
  in
  ignore
    (Fiber.spawn ~label:"root-vnode" ~daemon:true (fun () ->
         serve_dir sys root));
  Array.iteri
    (fun i ep ->
      ignore
        (Fiber.spawn ~label:(Printf.sprintf "syscall-%d" i) ~daemon:true
           (fun () -> serve_dispatcher sys ep)))
    disp;
  sys

let client sys =
  let h name = Metrics.histogram ~subsystem:"msgvfs" name in
  { sys; fds = Hashtbl.create 16; next_fd = 3; next_disp = 0;
    mx =
      { h_mkdir = h "mkdir"; h_create = h "create"; h_open = h "open";
        h_read = h "read"; h_write = h "write"; h_stat = h "stat";
        h_unlink = h "unlink"; h_rename = h "rename";
        h_readdir = h "readdir" } }

let pick_disp t =
  let d = t.sys.disp in
  let i = t.next_disp in
  t.next_disp <- (i + 1) mod Array.length d;
  d.(i mod Array.length d)

let via_disp t sc = Svc.call (pick_disp t) sc

let plumbed t = t.sys.cfg.plumbing

let timed name h f = Span.timed ~subsystem:"msgvfs" ~name h f

let mkdir t path =
  timed "mkdir" t.mx.h_mkdir @@ fun () ->
  if plumbed t then do_mkdir t.sys path
  else
    match via_disp t (Sc_mkdir path) with
    | R_unit r -> r
    | _ -> Error Fsspec.Einval

let create t path =
  timed "create" t.mx.h_create @@ fun () ->
  if plumbed t then do_create t.sys path
  else
    match via_disp t (Sc_create path) with
    | R_unit r -> r
    | _ -> Error Fsspec.Einval

let install_fd t v =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd v;
  fd

let open_ t path =
  timed "open" t.mx.h_open @@ fun () ->
  let r =
    if plumbed t then do_open t.sys path
    else
      match via_disp t (Sc_open path) with
      | R_fd r -> r
      | _ -> Error Fsspec.Einval
  in
  Result.map (install_fd t) r

type handle = vnode

let resolve t path =
  timed "open" t.mx.h_open @@ fun () -> do_open t.sys path

let open_handle t v = install_fd t v

let close t fd =
  if Hashtbl.mem t.fds fd then begin
    Hashtbl.remove t.fds fd;
    Ok ()
  end
  else Error Fsspec.Ebadf

let fd_vnode t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some v -> Ok v
  | None -> Error Fsspec.Ebadf

let read t fd ~off ~len =
  timed "read" t.mx.h_read @@ fun () ->
  match fd_vnode t fd with
  | Error e -> Error e
  | Ok v ->
    if plumbed t then do_read v ~off ~len
    else (
      match via_disp t (Sc_read (v, off, len)) with
      | R_data r -> r
      | _ -> Error Fsspec.Einval)

let write t fd ~off data =
  timed "write" t.mx.h_write @@ fun () ->
  match fd_vnode t fd with
  | Error e -> Error e
  | Ok v ->
    if plumbed t then do_write v ~off data
    else (
      match via_disp t (Sc_write (v, off, data)) with
      | R_wrote r -> r
      | _ -> Error Fsspec.Einval)

let stat t path =
  timed "stat" t.mx.h_stat @@ fun () ->
  if plumbed t then do_stat t.sys path
  else
    match via_disp t (Sc_stat path) with
    | R_stat r -> r
    | _ -> Error Fsspec.Einval

let unlink t path =
  timed "unlink" t.mx.h_unlink @@ fun () ->
  if plumbed t then do_unlink t.sys path
  else
    match via_disp t (Sc_unlink path) with
    | R_unit r -> r
    | _ -> Error Fsspec.Einval

let rename t src dst =
  timed "rename" t.mx.h_rename @@ fun () ->
  if plumbed t then do_rename t.sys src dst
  else
    match via_disp t (Sc_rename (src, dst)) with
    | R_unit r -> r
    | _ -> Error Fsspec.Einval

let readdir t path =
  timed "readdir" t.mx.h_readdir @@ fun () ->
  if plumbed t then do_readdir t.sys path
  else
    match via_disp t (Sc_readdir path) with
    | R_names r -> r
    | _ -> Error Fsspec.Einval

let vnodes_spawned sys = sys.spawned

let live_vnodes sys = sys.live

let placeholders_live sys = sys.placeholders

let hydrations sys = sys.hydrations

let hydration_failures sys = sys.hydration_failures
