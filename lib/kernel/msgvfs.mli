(** The message-passing VFS: every vnode is its own fiber.

    Paper Section 4: "the file system could be structured so that every
    vnode is its own thread, which communicates with other threads that
    administer cylinder groups and free-maps and so forth."  Here:

    - every file and directory is an autonomous fiber owning its state
      (no inode locks — the request loop serializes);
    - directory entries hold the {e channel} to the child vnode, so a
      lookup returns an endpoint and path resolution is a chain of
      messages down the tree;
    - data blocks live in the {!Bcache} shard services, storage comes
      from the {!Cgalloc} group fibers, and everything bottoms out in
      the single-fiber {!Blockdev} driver;
    - [open] returns the file vnode's endpoint to the client (a
      channel sent through a channel — the paper's "plumbing"), after
      which reads and writes flow {e directly} between client and
      vnode.  With [plumbing = false] every operation is instead
      routed through dispatcher fibers, the ablation measured in E4.

    Dispatch "via a common interface ... conventionally done with
    tables of function pointers, is done in this environment by
    sending to a channel using a common message protocol" — the [vreq]
    type is that protocol, understood by both file and directory
    vnodes.

    Semantic note: unlinking a vnode retires its fiber and closes its
    endpoint; operations through surviving open handles then fail
    [Ebadf] (simpler than POSIX's keep-alive-while-open).

    Implements {!Chorus_fsspec.Fsspec.S}. *)

type config = {
  plumbing : bool;  (** D3: open returns a direct vnode channel *)
  dispatchers : int;  (** syscall-entry fibers when not plumbing *)
}

val default_config : config
(** plumbing on, 4 dispatchers. *)

type sys

val mount :
  ?svc:Chorus_svc.Svc.config -> config -> bcache:Bcache.t ->
  alloc:Cgalloc.t -> sys
(** Spawn the root directory vnode (and dispatchers).  [svc] bounds
    the inbox of every vnode and dispatcher spawned under the mount
    (default: unbounded backpressure, the legacy behaviour). *)

type t

val client : sys -> t

include Chorus_fsspec.Fsspec.S with type t := t

(** {1 Introspection} *)

val vnodes_spawned : sys -> int
(** Total vnode fibers ever created under this mount. *)

val live_vnodes : sys -> int
