(** The message-passing VFS: every vnode is its own fiber.

    Paper Section 4: "the file system could be structured so that every
    vnode is its own thread, which communicates with other threads that
    administer cylinder groups and free-maps and so forth."  Here:

    - every file and directory is an autonomous fiber owning its state
      (no inode locks — the request loop serializes);
    - directory entries hold the {e channel} to the child vnode, so a
      lookup returns an endpoint and path resolution is a chain of
      messages down the tree;
    - data blocks live in the {!Bcache} shard services, storage comes
      from the {!Cgalloc} group fibers, and everything bottoms out in
      the single-fiber {!Blockdev} driver;
    - [open] returns the file vnode's endpoint to the client (a
      channel sent through a channel — the paper's "plumbing"), after
      which reads and writes flow {e directly} between client and
      vnode.  With [plumbing = false] every operation is instead
      routed through dispatcher fibers, the ablation measured in E4.

    Dispatch "via a common interface ... conventionally done with
    tables of function pointers, is done in this environment by
    sending to a channel using a common message protocol" — the [vreq]
    type is that protocol, understood by both file and directory
    vnodes.

    Semantic note: unlinking a vnode retires its fiber and closes its
    endpoint; operations through surviving open handles then fail
    [Ebadf] (simpler than POSIX's keep-alive-while-open).

    Implements {!Chorus_fsspec.Fsspec.S}. *)

type config = {
  plumbing : bool;  (** D3: open returns a direct vnode channel *)
  dispatchers : int;  (** syscall-entry fibers when not plumbing *)
}

val default_config : config
(** plumbing on, 4 dispatchers. *)

type sys

val mount :
  ?svc:Chorus_svc.Svc.config -> config -> bcache:Bcache.t ->
  alloc:Cgalloc.t -> sys
(** Spawn the root directory vnode (and dispatchers).  [svc] bounds
    the inbox of every vnode and dispatcher spawned under the mount
    (default: unbounded backpressure, the legacy behaviour). *)

type t

val client : sys -> t

include Chorus_fsspec.Fsspec.S with type t := t

(** {1 Projected namespaces}

    A projection grafts a {e virtual} directory tree into the mount:
    directories enumerate lazily through [proj_entries] and files are
    {e placeholder} vnodes — real fibers, but with no blocks — whose
    contents arrive through [proj_fetch] on first read or write
    (attach-on-hydrate: the fetched bytes are written into {!Bcache}
    blocks and the vnode becomes an ordinary file).  Both closures may
    fail with [Eio] (the provider is remote); a failed hydration
    leaves the placeholder intact and retryable, and because the vnode
    fiber serializes its requests a reader can never observe a
    half-hydrated file.  Local [Make] entries merge alongside
    projected names; projected names refuse [Remove]/[Detach]/[Attach]
    with [Einval] (the remote namespace is authoritative). *)

type projection = {
  proj_entries :
    string ->
    ( (string * Chorus_fsspec.Fsspec.kind * int) list,
      Chorus_fsspec.Fsspec.err )
    result;
      (** list a directory by projection-relative path ([""] = the
          projection root) as [(name, kind, size)].  Errors are not
          cached: the next operation retries. *)
  proj_fetch : string -> (string, Chorus_fsspec.Fsspec.err) result;
      (** full contents of a projected file, by relative path. *)
}

val project :
  sys -> at:string -> projection -> (unit, Chorus_fsspec.Fsspec.err) result
(** Attach the projection root as directory [at] (its parent must
    exist; the name must be free). *)

(** {1 Handles}

    A resolved vnode endpoint, independent of any client fd table —
    what a name cache holds so a warm open skips the path walk. *)

type handle

val resolve : t -> string -> (handle, Chorus_fsspec.Fsspec.err) result
(** Walk [path] to a file vnode (the open path without fd
    installation). *)

val open_handle : t -> handle -> Chorus_fsspec.Fsspec.fd
(** Install a resolved handle in this client's fd table. *)

(** {1 Introspection} *)

val vnodes_spawned : sys -> int
(** Total vnode fibers ever created under this mount. *)

val live_vnodes : sys -> int

val placeholders_live : sys -> int
(** Projected file vnodes not yet hydrated (and not retired). *)

val hydrations : sys -> int
(** Placeholder fills completed successfully. *)

val hydration_failures : sys -> int
(** [proj_fetch] errors surfaced to readers. *)
