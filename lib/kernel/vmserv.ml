module Fiber = Chorus.Fiber
module Svc = Chorus_svc.Svc

type freq = Falloc | Ffree of int

type fresp = Frame of int | Fnone | Fok

type preq = Fault of int | Protect of int | Count

type presp = Mapped | Already | Oom | Done | Count_is of int

type t = {
  frame_ep : (freq, fresp) Svc.t;
  managers : (preq, presp) Svc.t array;
  pages_per_manager : int;
  pages : int;
  mutable faults : int;
}

let serve_frames ep ~frames =
  let free = Queue.create () in
  for f = 0 to frames - 1 do
    Queue.push f free
  done;
  Svc.serve ep (fun req ->
      match req with
      | Falloc -> if Queue.is_empty free then Fnone else Frame (Queue.pop free)
      | Ffree f ->
        Queue.push f free;
        Fok)

let serve_manager t ep =
  (* page -> frame for the slice this manager owns *)
  let table : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Svc.serve ep (fun req ->
      match req with
      | Fault page ->
        if Hashtbl.mem table page then Already
        else begin
          match Svc.call t.frame_ep Falloc with
          | Frame f ->
            (* charge the page-table update *)
            Fiber.work 40;
            Hashtbl.replace table page f;
            Mapped
          | Fnone -> Oom
          | Fok -> assert false
        end
      | Protect page -> (
        match Hashtbl.find_opt table page with
        | None -> Done
        | Some f ->
          Hashtbl.remove table page;
          (match Svc.call t.frame_ep (Ffree f) with
          | Fok -> ()
          | Frame _ | Fnone -> assert false);
          Done)
      | Count -> Count_is (Hashtbl.length table))

let start ?(pages_per_manager = 1024) ?config ~pages ~frames () =
  if pages_per_manager < 1 then invalid_arg "Vmserv.start";
  let nmanagers = (pages + pages_per_manager - 1) / pages_per_manager in
  let t =
    { frame_ep =
        Svc.create ?config ~subsystem:"vm" ~metric_name:"frame"
          ~label:"frame-alloc" ();
      managers =
        Array.init nmanagers (fun i ->
            Svc.create ?config ~subsystem:"vm" ~metric_name:"manager"
              ~label:(Printf.sprintf "vm-%d" i) ());
      pages_per_manager;
      pages;
      faults = 0 }
  in
  ignore
    (Fiber.spawn ~label:"frame-alloc" ~daemon:true (fun () ->
         serve_frames t.frame_ep ~frames));
  Array.iteri
    (fun i ep ->
      ignore
        (Fiber.spawn ~label:(Printf.sprintf "vm-%d" i) ~daemon:true (fun () ->
             serve_manager t ep)))
    t.managers;
  t

let manager_of t page =
  if page < 0 || page >= t.pages then invalid_arg "Vmserv: page out of range";
  t.managers.(page / t.pages_per_manager)

let fault t page =
  t.faults <- t.faults + 1;
  match Svc.call ~words:3 (manager_of t page) (Fault page) with
  | Mapped -> `Mapped
  | Already -> `Already
  | Oom -> `Oom
  | Done | Count_is _ -> assert false

let protect t page =
  match Svc.call ~words:3 (manager_of t page) (Protect page) with
  | Done -> ()
  | Mapped | Already | Oom | Count_is _ -> assert false

let mapped t =
  Array.fold_left
    (fun acc ep ->
      match Svc.call ep Count with
      | Count_is n -> acc + n
      | Mapped | Already | Oom | Done -> assert false)
    0 t.managers

let managers t = Array.length t.managers

let faults_served t = t.faults
