module Fiber = Chorus.Fiber
module Rpc = Chorus.Rpc
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span

type t = {
  ep : (string, unit) Rpc.endpoint;
  mutable lines : string list;  (** reversed *)
  mutable count : int;
  write_h : Metrics.histogram;  (** caller-observed write_line latency *)
}

let start ?on ?(cycles_per_char = 2000) () =
  let t =
    { ep = Rpc.endpoint ~label:"console" (); lines = []; count = 0;
      write_h = Metrics.histogram ~subsystem:"console" "write_line" }
  in
  ignore
    (Fiber.spawn ?on ~label:"console" ~daemon:true (fun () ->
         Rpc.serve t.ep (fun line ->
             (* the device shifts characters out at line rate *)
             Fiber.sleep (cycles_per_char * (String.length line + 1));
             t.lines <- line :: t.lines;
             t.count <- t.count + 1)));
  t

let write_line t line =
  Span.timed ~subsystem:"console" ~name:"write_line" t.write_h @@ fun () ->
  Rpc.call ~words:(2 + ((String.length line + 7) / 8)) t.ep line

let output t = List.rev t.lines

let lines_written t = t.count
