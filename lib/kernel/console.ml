module Fiber = Chorus.Fiber
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span
module Svc = Chorus_svc.Svc

type t = {
  ep : (string, unit) Svc.t;
  mutable lines : string list;  (** reversed *)
  mutable count : int;
  write_h : Metrics.histogram;  (** caller-observed write_line latency *)
}

let start ?on ?(cycles_per_char = 2000) ?config () =
  let t =
    { ep = Svc.create ?config ~subsystem:"console" ~label:"console" ();
      lines = []; count = 0;
      write_h = Metrics.histogram ~subsystem:"console" "write_line" }
  in
  ignore
    (Svc.start ?on t.ep (fun line ->
         (* the device shifts characters out at line rate *)
         Fiber.sleep (cycles_per_char * (String.length line + 1));
         t.lines <- line :: t.lines;
         t.count <- t.count + 1));
  t

let write_line t line =
  Span.timed ~subsystem:"console" ~name:"write_line" t.write_h @@ fun () ->
  Svc.call ~words:(2 + ((String.length line + 7) / 8)) t.ep line

let output t = List.rev t.lines

let lines_written t = t.count

let endpoint t = t.ep
