module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Metrics = Chorus_obs.Metrics

type strategy = One_for_one | One_for_all

type child_spec = { cname : string; cstart : unit -> Fiber.t }

type msg = Exited of int * int * Fiber.exit_status | Stop
(** child index, fiber id, status *)

type t = {
  inbox : msg Chan.t;
  specs : child_spec array;
  fibers : Fiber.t option array;
  expected_kills : (int, unit) Hashtbl.t;
      (** fiber ids the supervisor itself killed; their Killed exits
          are intentional, any other Killed is an external fault *)
  mutable restarts : int;
  mutable log : (int * string) list;  (** reversed *)
  mutable gave_up : bool;
  mutable sup_fiber : Fiber.t option;
  restart_c : Metrics.counter;
  giveup_c : Metrics.counter;
}

let watch t idx fiber =
  t.fibers.(idx) <- Some fiber;
  let fid = Fiber.id fiber in
  Fiber.monitor fiber (fun ~time:_ st ->
      (* the supervisor may already be gone during teardown *)
      if not (Chan.is_closed t.inbox) then
        Chan.send t.inbox (Exited (idx, fid, st)))

let spawn_child t idx =
  let f = t.specs.(idx).cstart () in
  watch t idx f

let kill_child t idx =
  match t.fibers.(idx) with
  | Some f when Fiber.alive f ->
    t.fibers.(idx) <- None;
    Hashtbl.replace t.expected_kills (Fiber.id f) ();
    Fiber.kill f
  | Some _ | None -> t.fibers.(idx) <- None

let give_up t =
  if not t.gave_up then Metrics.incr t.giveup_c;
  t.gave_up <- true;
  Array.iteri (fun i _ -> kill_child t i) t.fibers;
  Chan.close t.inbox

let start ?(max_restarts = 10) ?(window = 10_000_000) strategy specs =
  let specs = Array.of_list specs in
  let t =
    { inbox = Chan.unbounded ~label:"supervisor" ();
      specs;
      fibers = Array.map (fun _ -> None) specs;
      expected_kills = Hashtbl.create 8;
      restarts = 0;
      log = [];
      gave_up = false;
      sup_fiber = None;
      restart_c = Metrics.counter ~subsystem:"supervisor" "restarts";
      giveup_c = Metrics.counter ~subsystem:"supervisor" "give_ups" }
  in
  let recent = ref [] in
  let too_intense now =
    recent := List.filter (fun ts -> now - ts < window) (now :: !recent);
    List.length !recent > max_restarts
  in
  let restart t idx =
    let now = Fiber.now () in
    if too_intense now then give_up t
    else begin
      t.restarts <- t.restarts + 1;
      Metrics.incr t.restart_c;
      t.log <- (now, t.specs.(idx).cname) :: t.log;
      match strategy with
      | One_for_one -> spawn_child t idx
      | One_for_all ->
        Array.iteri (fun i _ -> if i <> idx then kill_child t i) t.fibers;
        Array.iteri (fun i _ -> spawn_child t i) t.fibers
    end
  in
  let sup =
    Fiber.spawn ~label:"supervisor" ~daemon:true (fun () ->
        Array.iteri (fun i _ -> spawn_child t i) t.specs;
        let rec loop () =
          match Chan.recv t.inbox with
          | Stop -> give_up t
          | Exited (idx, fid, st) ->
            (match st with
            | Fiber.Crashed _ -> restart t idx
            | Fiber.Killed ->
              if Hashtbl.mem t.expected_kills fid then
                Hashtbl.remove t.expected_kills fid
              else
                (* killed from outside: a fault, treat as a crash *)
                restart t idx
            | Fiber.Normal -> ());
            loop ()
        in
        try loop () with Chan.Closed -> ())
  in
  t.sup_fiber <- Some sup;
  t

let restarts t = t.restarts

let restart_log t = List.rev t.log

let gave_up t = t.gave_up

let stop t = if not (Chan.is_closed t.inbox) then Chan.send t.inbox Stop
