module Fiber = Chorus.Fiber
module Svc = Chorus_svc.Svc

type preq =
  | Register of string * int Svc.reply
  | Exited of int * bool
  | Wait of int * bool Svc.reply

type t = { inbox : preq Svc.cast; notify : Notify.t; mutable spawned : int;
           mutable running : int }

let start ?config ~notify () =
  let t = { inbox = Svc.cast_create ?config ~subsystem:"proc"
                      ~label:"proc-table" ();
            notify; spawned = 0; running = 0 } in
  let next_pid = ref 1 in
  let status : (int, bool) Hashtbl.t = Hashtbl.create 32 in
  let waiters : (int, bool Svc.reply list) Hashtbl.t = Hashtbl.create 8 in
  ignore
    (Svc.start_cast t.inbox (function
       | Register (_label, reply) ->
         let pid = !next_pid in
         incr next_pid;
         Svc.answer reply pid
       | Exited (pid, ok) ->
         Hashtbl.replace status pid ok;
         Notify.publish t.notify (Notify.App_exit { pid; ok });
         (match Hashtbl.find_opt waiters pid with
         | Some ws ->
           Hashtbl.remove waiters pid;
           List.iter (fun ch -> Svc.answer ch ok) ws
         | None -> ())
       | Wait (pid, reply) -> (
         match Hashtbl.find_opt status pid with
         | Some ok -> Svc.answer reply ok
         | None ->
           if pid >= !next_pid || pid < 1 then
             (* never registered: don't leave the waiter hanging *)
             Svc.answer reply false
           else begin
             let ws =
               Option.value ~default:[] (Hashtbl.find_opt waiters pid)
             in
             Hashtbl.replace waiters pid (reply :: ws)
           end)));
  t

let spawn_app t ?on ~label body =
  let reply = Svc.reply_chan () in
  Svc.cast t.inbox (Register (label, reply));
  let pid = Svc.await reply in
  t.spawned <- t.spawned + 1;
  t.running <- t.running + 1;
  let f = Fiber.spawn ?on ~label (fun () -> body ~pid) in
  Fiber.monitor f (fun ~time:_ st ->
      t.running <- t.running - 1;
      Svc.cast t.inbox (Exited (pid, st = Fiber.Normal)));
  pid

let wait t pid =
  let reply = Svc.reply_chan () in
  Svc.cast t.inbox (Wait (pid, reply));
  Svc.await reply

let running t = t.running

let spawned t = t.spawned

let inbox t = t.inbox
