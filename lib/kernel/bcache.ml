module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rpc = Chorus.Rpc
module Fsspec = Chorus_fsspec.Fsspec
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span

type req =
  | Get of int
  | Get_range of { block : int; off : int; len : int }
  | Put of { block : int; off : int; data : string }
  | Zero of int
  | Flush

type resp = Data of string | Done

type shard_state = {
  bufs : (int, buf) Hashtbl.t;
  capacity : int;
  mutable tick : int;
}

and buf = { mutable data : bytes; mutable dirty : bool; mutable last_use : int }

type t = {
  eps : (req, resp) Rpc.endpoint array;
  mutable hits : int;
  mutable misses : int;
  req_h : Metrics.histogram;  (** per-request service time *)
  queue_g : Metrics.gauge;  (** shard request-queue depth *)
  miss_c : Metrics.counter;
}

let block_words = Fsspec.block_size / 8

let lookup t st dev block =
  st.tick <- st.tick + 1;
  match Hashtbl.find_opt st.bufs block with
  | Some b ->
    t.hits <- t.hits + 1;
    b.last_use <- st.tick;
    b
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr t.miss_c;
    if Hashtbl.length st.bufs >= st.capacity then begin
      (* evict LRU, writing back if dirty *)
      let victim = ref None in
      Hashtbl.iter
        (fun blk b ->
          match !victim with
          | None -> victim := Some (blk, b)
          | Some (_, vb) -> if b.last_use < vb.last_use then victim := Some (blk, b))
        st.bufs;
      match !victim with
      | Some (blk, b) ->
        if b.dirty then Blockdev.write dev blk b.data;
        Hashtbl.remove st.bufs blk
      | None -> ()
    end;
    let data = Blockdev.read dev block in
    let b = { data; dirty = false; last_use = st.tick } in
    Hashtbl.replace st.bufs block b;
    b

let serve_shard t st dev ep =
  let rec loop () =
    let req, reply = Chan.recv ep in
    Metrics.observe t.queue_g (Chan.length ep);
    Span.timed ~subsystem:"bcache" ~name:"request" t.req_h (fun () ->
    match req with
    | Get block ->
      let b = lookup t st dev block in
      Chan.send ~words:(2 + block_words) reply
        (Data (Bytes.to_string b.data))
    | Get_range { block; off; len } ->
      let b = lookup t st dev block in
      let len = max 0 (min len (Bytes.length b.data - off)) in
      Chan.send
        ~words:(2 + ((len + 7) / 8))
        reply
        (Data (Bytes.sub_string b.data off len))
    | Put { block; off; data } ->
      let b = lookup t st dev block in
      Bytes.blit_string data 0 b.data off (String.length data);
      b.dirty <- true;
      Chan.send reply Done
    | Zero block ->
      st.tick <- st.tick + 1;
      Hashtbl.replace st.bufs block
        { data = Bytes.make Fsspec.block_size '\000'; dirty = true;
          last_use = st.tick };
      Chan.send reply Done
    | Flush ->
      Hashtbl.iter
        (fun blk b ->
          if b.dirty then begin
            Blockdev.write dev blk b.data;
            b.dirty <- false
          end)
        st.bufs;
      Chan.send reply Done);
    loop ()
  in
  loop ()

let start ?(shards = 8) ?(capacity = 1024) ?(spread = true) ~dev () =
  let t =
    { eps =
        Array.init shards (fun i ->
            Rpc.endpoint ~label:(Printf.sprintf "bcache-%d" i) ());
      hits = 0;
      misses = 0;
      req_h = Metrics.histogram ~subsystem:"bcache" "request";
      queue_g = Metrics.gauge ~subsystem:"bcache" "queue_depth";
      miss_c = Metrics.counter ~subsystem:"bcache" "misses" }
  in
  Array.iteri
    (fun i ep ->
      let st =
        { bufs = Hashtbl.create 64; capacity = max 1 (capacity / shards);
          tick = 0 }
      in
      let on = if spread then None else Some (Fiber.core (Fiber.self ())) in
      ignore
        (Fiber.spawn ?on ~label:(Printf.sprintf "bcache-%d" i) ~daemon:true
           (fun () -> serve_shard t st dev ep)))
    t.eps;
  t

let shard_for t block = t.eps.(block mod Array.length t.eps)

let get t block =
  match Rpc.call ~words:4 (shard_for t block) (Get block) with
  | Data d -> d
  | Done -> assert false

let get_range t block ~off ~len =
  match
    Rpc.call ~words:5 (shard_for t block) (Get_range { block; off; len })
  with
  | Data d -> d
  | Done -> assert false

let put t block ~off data =
  match
    Rpc.call
      ~words:(4 + ((String.length data + 7) / 8))
      (shard_for t block)
      (Put { block; off; data })
  with
  | Done -> ()
  | Data _ -> assert false

let zero t block =
  match Rpc.call ~words:4 (shard_for t block) (Zero block) with
  | Done -> ()
  | Data _ -> assert false

let flush t =
  Array.iter
    (fun ep ->
      match Rpc.call ep Flush with Done -> () | Data _ -> assert false)
    t.eps

let hits t = t.hits

let misses t = t.misses

let shards t = Array.length t.eps
