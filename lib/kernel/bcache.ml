module Fiber = Chorus.Fiber
module Fsspec = Chorus_fsspec.Fsspec
module Metrics = Chorus_obs.Metrics
module Svc = Chorus_svc.Svc

type req =
  | Get of int
  | Get_range of { block : int; off : int; len : int }
  | Put of { block : int; off : int; data : string }
  | Zero of int
  | Flush

type resp = Data of string | Done

type shard_state = {
  bufs : (int, buf) Hashtbl.t;
  capacity : int;
  mutable tick : int;
}

and buf = { mutable data : bytes; mutable dirty : bool; mutable last_use : int }

type t = {
  eps : (req, resp) Svc.t array;
  mutable hits : int;
  mutable misses : int;
  mutable read_retries : int;
  miss_c : Metrics.counter;
}

(* Cache refill survives transient device read faults: bounded retries
   with exponential backoff, then give up and let the fault surface.
   Only the shard that hit the fault stalls — its siblings keep
   serving. *)
let max_read_attempts = 10

let read_with_retry t dev block =
  let rec go attempt backoff =
    match Blockdev.read_result dev block with
    | Ok data -> data
    | Error `Io_error ->
      if attempt >= max_read_attempts then raise Blockdev.Io_error;
      t.read_retries <- t.read_retries + 1;
      Fiber.sleep backoff;
      go (attempt + 1) (min (backoff * 2) 32_000)
  in
  go 1 2_000

(* reply payload sized by what actually crosses the interconnect: the
   requested bytes for reads, a bare ack otherwise *)
let words_of_resp = function
  | Data s -> 2 + ((String.length s + 7) / 8)
  | Done -> 2

let lookup t st dev block =
  st.tick <- st.tick + 1;
  match Hashtbl.find_opt st.bufs block with
  | Some b ->
    t.hits <- t.hits + 1;
    b.last_use <- st.tick;
    b
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr t.miss_c;
    if Hashtbl.length st.bufs >= st.capacity then begin
      (* evict LRU, writing back if dirty *)
      let victim = ref None in
      Hashtbl.iter
        (fun blk b ->
          match !victim with
          | None -> victim := Some (blk, b)
          | Some (_, vb) -> if b.last_use < vb.last_use then victim := Some (blk, b))
        st.bufs;
      match !victim with
      | Some (blk, b) ->
        if b.dirty then Blockdev.write dev blk b.data;
        Hashtbl.remove st.bufs blk
      | None -> ()
    end;
    let data = read_with_retry t dev block in
    let b = { data; dirty = false; last_use = st.tick } in
    Hashtbl.replace st.bufs block b;
    b

let handle t st dev = function
  | Get block ->
    let b = lookup t st dev block in
    Data (Bytes.to_string b.data)
  | Get_range { block; off; len } ->
    let b = lookup t st dev block in
    let len = max 0 (min len (Bytes.length b.data - off)) in
    Data (Bytes.sub_string b.data off len)
  | Put { block; off; data } ->
    let b = lookup t st dev block in
    Bytes.blit_string data 0 b.data off (String.length data);
    b.dirty <- true;
    Done
  | Zero block ->
    st.tick <- st.tick + 1;
    Hashtbl.replace st.bufs block
      { data = Bytes.make Fsspec.block_size '\000'; dirty = true;
        last_use = st.tick };
    Done
  | Flush ->
    Hashtbl.iter
      (fun blk b ->
        if b.dirty then begin
          Blockdev.write dev blk b.data;
          b.dirty <- false
        end)
      st.bufs;
    Done

let start ?(shards = 8) ?(capacity = 1024) ?(spread = true) ?config ~dev () =
  let t =
    { eps =
        Array.init shards (fun i ->
            Svc.create ?config ~subsystem:"bcache"
              ~label:(Printf.sprintf "bcache-%d" i) ());
      hits = 0;
      misses = 0;
      read_retries = 0;
      miss_c = Metrics.counter ~subsystem:"bcache" "misses" }
  in
  Array.iter
    (fun ep ->
      let st =
        { bufs = Hashtbl.create 64; capacity = max 1 (capacity / shards);
          tick = 0 }
      in
      let on = if spread then None else Some (Fiber.core (Fiber.self ())) in
      ignore (Svc.start ?on ~words_of_resp ep (handle t st dev)))
    t.eps;
  t

let shard_for t block = t.eps.(block mod Array.length t.eps)

let get t block =
  match Svc.call ~words:4 (shard_for t block) (Get block) with
  | Data d -> d
  | Done -> assert false

let get_range t block ~off ~len =
  match
    Svc.call ~words:5 (shard_for t block) (Get_range { block; off; len })
  with
  | Data d -> d
  | Done -> assert false

let put t block ~off data =
  match
    Svc.call
      ~words:(4 + ((String.length data + 7) / 8))
      (shard_for t block)
      (Put { block; off; data })
  with
  | Done -> ()
  | Data _ -> assert false

let zero t block =
  match Svc.call ~words:4 (shard_for t block) (Zero block) with
  | Done -> ()
  | Data _ -> assert false

let flush t =
  Array.iter
    (fun ep ->
      match Svc.call ep Flush with Done -> () | Data _ -> assert false)
    t.eps

let hits t = t.hits

let misses t = t.misses

let read_retries t = t.read_retries

let shards t = Array.length t.eps
