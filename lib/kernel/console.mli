(** Console device driver: the second single-fiber driver (after
    {!Blockdev}), showing the pattern generalizes — a serial-ish
    device that emits characters at a fixed rate, driven entirely by
    its own {!Chorus_svc.Svc} request loop. *)

type t

val start :
  ?on:int -> ?cycles_per_char:int -> ?config:Chorus_svc.Svc.config ->
  unit -> t
(** Default 2000 cycles/char (a ~1 MB/s console at 2 GHz).  [config]
    bounds the request inbox (default: unbounded backpressure). *)

val write_line : t -> string -> unit
(** Blocks the caller until the device has emitted the line.  Raises
    {!Chorus_svc.Svc.Busy} under a rejecting overload policy. *)

val output : t -> string list
(** Everything written so far, oldest first (test oracle). *)

val lines_written : t -> int

val endpoint : t -> (string, unit) Chorus_svc.Svc.t
(** The underlying service endpoint (queue metrics live here). *)
