(** Single-fiber disk driver.

    Paper Section 4: "it is also almost certainly desirable to give
    each device driver its own, single, thread.  Drivers would receive
    and queue requests from elsewhere in the kernel; the code to
    process the requests can then be written as simple active
    procedural code, with no need for further synchronization except to
    wait for interrupts."

    Exactly that: one fiber owns the device, requests arrive on its
    endpoint, the body is straight-line code, and the device-busy
    interval is a [sleep] (the completion wake-up standing in for the
    interrupt).  No locks exist in this module because none are
    needed. *)

type req = Read of int | Write of int * bytes

type resp = Data of bytes | Done | Io_fail

exception Io_error
(** A transient read fault (see {!set_read_fault}) surfaced by
    {!read}. *)

type t

val start :
  ?label:string -> ?on:int -> ?priority:Chorus.Fiber.priority ->
  ?config:Chorus_svc.Svc.config ->
  disk:Chorus_machine.Diskmodel.t -> unit -> t
(** Spawn the driver (a daemon fiber), optionally pinned to a core
    and/or at interrupt-style [High] priority.  [config] bounds the
    request inbox (default: unbounded backpressure). *)

val read : t -> int -> bytes
(** [read t block] round-trips a read request; returns a copy of the
    block (zero-filled when never written).  Raises {!Io_error} when
    the device returned a transient read fault. *)

val read_result : t -> int -> (bytes, [ `Io_error ]) result
(** {!read} with the fault as a value — the retrying-caller flavour
    ({!Bcache} uses it for its bounded-backoff refill path). *)

val write : t -> int -> bytes -> unit

val set_read_fault : t -> ?p:float -> ?seed:int -> unit -> unit
(** Make each read independently fail with probability [p] (default
    [0.], i.e. off — the chaos engine's disk-fault window switch).  A
    faulted read still charges the full seek+transfer service time;
    only the data is lost.  Faults draw from the device's own seeded
    RNG ([seed] reseeds it), never from the run's, and only while
    [p > 0], so runs with faults off are byte-identical to a device
    without the knob. *)

val read_errors : t -> int
(** Transient read faults delivered so far. *)

val reads : t -> int

val writes : t -> int

val max_queue : t -> int
(** High-water mark of the request queue (the endpoint's [queue_hwm]),
    for utilization analysis. *)

val max_concurrency : t -> int
(** Requests being serviced simultaneously inside the driver body —
    invariantly 1 for a single-threaded driver; tests assert it. *)

val endpoint : t -> (req, resp) Chorus_svc.Svc.t
(** Raw endpoint for callers that pipeline requests themselves. *)
