(** Single-fiber disk driver.

    Paper Section 4: "it is also almost certainly desirable to give
    each device driver its own, single, thread.  Drivers would receive
    and queue requests from elsewhere in the kernel; the code to
    process the requests can then be written as simple active
    procedural code, with no need for further synchronization except to
    wait for interrupts."

    Exactly that: one fiber owns the device, requests arrive on its
    endpoint, the body is straight-line code, and the device-busy
    interval is a [sleep] (the completion wake-up standing in for the
    interrupt).  No locks exist in this module because none are
    needed. *)

type req = Read of int | Write of int * bytes

type resp = Data of bytes | Done

type t

val start :
  ?label:string -> ?on:int -> ?priority:Chorus.Fiber.priority ->
  ?config:Chorus_svc.Svc.config ->
  disk:Chorus_machine.Diskmodel.t -> unit -> t
(** Spawn the driver (a daemon fiber), optionally pinned to a core
    and/or at interrupt-style [High] priority.  [config] bounds the
    request inbox (default: unbounded backpressure). *)

val read : t -> int -> bytes
(** [read t block] round-trips a read request; returns a copy of the
    block (zero-filled when never written). *)

val write : t -> int -> bytes -> unit

val reads : t -> int

val writes : t -> int

val max_queue : t -> int
(** High-water mark of the request queue (the endpoint's [queue_hwm]),
    for utilization analysis. *)

val max_concurrency : t -> int
(** Requests being serviced simultaneously inside the driver body —
    invariantly 1 for a single-threaded driver; tests assert it. *)

val endpoint : t -> (req, resp) Chorus_svc.Svc.t
(** Raw endpoint for callers that pipeline requests themselves. *)
