(** Asynchronous kernel-to-application event service.

    Paper Section 3.1: "thermal, power, and hot-plug events necessarily
    originate in the kernel and flow upward to user space.  Handling
    these in a traditional nested kernel design is always somewhat
    problematic ... In an environment designed around message channels
    this is not needed."

    Kernel components publish events; applications subscribe with a
    channel and simply receive — no signal frames, no unwinding, no
    special-purpose notification syscalls.  E7 measures this against
    the baseline's {!Chorus_baseline.Signals}. *)

type event =
  | Thermal of int  (** die temperature report *)
  | Power of int  (** power-state change *)
  | Hotplug of { core : int; online : bool }
  | Io_complete of int  (** tagged I/O completion *)
  | App_exit of { pid : int; ok : bool }
  | Custom of string

type msg

type t

val start : ?on:int -> ?config:Chorus_svc.Svc.config -> unit -> t
(** Spawn the notification hub fiber.  [config] bounds the hub inbox;
    under [`Shed_oldest] bursty publishers lose the stalest pending
    event instead of growing the queue. *)

val subscribe : t -> event Chorus.Chan.t
(** Returns a fresh unbounded channel on which every subsequent
    published event arrives. *)

val subscribe_filtered : t -> (event -> bool) -> event Chorus.Chan.t
(** Server-side filtering: only matching events are forwarded. *)

val publish : t -> event -> unit
(** Fire-and-forget from any fiber. *)

val published : t -> int

val delivered : t -> int
(** Total subscriber deliveries (published x matching subscribers). *)

val inbox : t -> msg Chorus_svc.Svc.cast
(** The hub's service endpoint (uniform queue metrics live here). *)
