(** Virtual-memory service (the conservative design).

    Paper Section 5 raises two open questions this module makes
    concrete and measurable:

    - "the virtual memory system is retained, but its internal design
      will be necessarily much different from today's centralized
      model": page-table state is partitioned over manager fibers,
      page faults are messages, frames come from a frame-allocator
      fiber;
    - "one might build a virtual memory system with a thread for every
      page of physical memory; that would produce too many threads":
      [pages_per_manager] sweeps the granularity from exactly that
      pathological extreme (1) to fully centralized (= pages), which
      is experiment E9's U-curve.

    The address space model is deliberately small: a fault either maps
    a fresh frame or is a no-op on an already-mapped page. *)

type t

val start :
  ?pages_per_manager:int -> ?config:Chorus_svc.Svc.config ->
  pages:int -> frames:int -> unit -> t
(** Spawn [pages / pages_per_manager] manager fibers (default
    granularity 1024) plus the frame allocator.  [config] bounds every
    service inbox (managers and frame allocator alike). *)

val fault : t -> int -> [ `Mapped | `Already | `Oom ]
(** Handle a fault on a page: RPC to its manager, which maps a frame
    (allocating one on first touch). *)

val protect : t -> int -> unit
(** Unmap a page, returning its frame (models reclaim). *)

val mapped : t -> int
(** Pages currently mapped (sums over managers). *)

val managers : t -> int

val faults_served : t -> int
