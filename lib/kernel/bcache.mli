(** Block cache as a set of autonomous shard fibers.

    Where the baseline shards a lock, the message kernel shards the
    {e service}: each shard fiber privately owns the cache state for
    the blocks hashed to it, so there is no lock at all — mutual
    exclusion is the fiber's sequential message loop.  Shards talk to
    the disk driver directly; a missing block blocks only its own
    shard. *)

type t

val start :
  ?shards:int -> ?capacity:int -> ?spread:bool ->
  ?config:Chorus_svc.Svc.config -> dev:Blockdev.t -> unit -> t
(** [start ~dev ()] spawns the shard fibers (default 8 shards, 1024
    blocks total capacity, LRU per shard, write-back on eviction).
    [spread] places shards on distinct cores via the run's policy when
    true (default).  [config] bounds each shard's request inbox. *)

val get : t -> int -> string
(** [get t block] returns the whole block contents (cache fill from
    disk on miss). *)

val get_range : t -> int -> off:int -> len:int -> string
(** [get_range t block ~off ~len] returns just the requested byte
    range — the reply message is sized by [len], not by the block.
    This is what makes fine-grained reads cheap for the vnode fibers:
    only the bytes asked for cross the interconnect. *)

val put : t -> int -> off:int -> string -> unit
(** [put t block ~off data] writes [data] into the cached block at
    byte offset [off], marking it dirty (read-modify-write of the
    block on a partial overwrite). *)

val zero : t -> int -> unit
(** Reset a freed block's cached contents to zeroes (used on
    allocation so stale data never leaks between files). *)

val flush : t -> unit
(** Write all dirty blocks back to the device. *)

val hits : t -> int

val misses : t -> int

val read_retries : t -> int
(** Transient {!Blockdev} read faults absorbed by the refill path:
    each fault costs one bounded exponential-backoff retry (up to 10
    attempts, 2k–32k cycle sleeps) before the cache gives up and lets
    {!Blockdev.Io_error} surface.  Only the faulted shard stalls. *)

val shards : t -> int
