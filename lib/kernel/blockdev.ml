module Fiber = Chorus.Fiber
module Rng = Chorus_util.Rng
module Diskmodel = Chorus_machine.Diskmodel
module Fsspec = Chorus_fsspec.Fsspec
module Svc = Chorus_svc.Svc

type req = Read of int | Write of int * bytes

type resp = Data of bytes | Done | Io_fail

exception Io_error

type t = {
  ep : (req, resp) Svc.t;
  store : (int, bytes) Hashtbl.t;
  mutable head : int;
  mutable reads : int;
  mutable writes : int;
  mutable in_body : int;
  mutable max_concurrency : int;
  disk : Diskmodel.t;
  (* transient read-fault injection (chaos): own RNG so the fault
     stream is independent of the run's, drawn only while p > 0 *)
  mutable fault_p : float;
  mutable fault_rng : Rng.t;
  mutable nread_errors : int;
}

let service t req =
  t.in_body <- t.in_body + 1;
  if t.in_body > t.max_concurrency then t.max_concurrency <- t.in_body;
  let block = match req with Read b -> b | Write (b, _) -> b in
  let svc = Diskmodel.service_time t.disk ~last_block:t.head ~block in
  t.head <- block;
  (* device busy; the wake-up at the end is the "interrupt" *)
  Fiber.sleep svc;
  let resp =
    match req with
    | Read b ->
      t.reads <- t.reads + 1;
      (* a faulted read still paid the full seek+transfer above — the
         sector came back unreadable, the arm still moved *)
      if t.fault_p > 0.0 && Rng.bernoulli t.fault_rng t.fault_p then begin
        t.nread_errors <- t.nread_errors + 1;
        Io_fail
      end
      else
        let data =
          match Hashtbl.find_opt t.store b with
          | Some d -> Bytes.copy d
          | None -> Bytes.make Fsspec.block_size '\000'
        in
        Data data
    | Write (b, data) ->
      t.writes <- t.writes + 1;
      Hashtbl.replace t.store b (Bytes.copy data);
      Done
  in
  t.in_body <- t.in_body - 1;
  resp

let words_of_resp = function
  | Data _ -> 4 + (Fsspec.block_size / 8)
  | Done | Io_fail -> 2

let start ?(label = "blockdev") ?on ?priority ?config ~disk () =
  let ep = Svc.create ?config ~subsystem:"blockdev" ~label () in
  let t =
    { ep; store = Hashtbl.create 256; head = 0; reads = 0; writes = 0;
      in_body = 0; max_concurrency = 0; disk; fault_p = 0.0;
      fault_rng = Rng.make 97; nread_errors = 0 }
  in
  let (_ : Fiber.t) = Svc.start ?on ?priority ~words_of_resp ep (service t) in
  t

let words_of_block = Fsspec.block_size / 8


let read_result t block =
  match Svc.call ~words:4 t.ep (Read block) with
  | Data d -> Ok d
  | Io_fail -> Error `Io_error
  | Done -> assert false

let read t block =
  match read_result t block with Ok d -> d | Error `Io_error -> raise Io_error

let write t block data =
  match Svc.call ~words:(4 + words_of_block) t.ep (Write (block, data)) with
  | Done -> ()
  | Data _ | Io_fail -> assert false

let set_read_fault t ?(p = 0.0) ?seed () =
  if p < 0.0 || p >= 1.0 then invalid_arg "Blockdev: fault p must be in [0, 1)";
  t.fault_p <- p;
  match seed with Some s -> t.fault_rng <- Rng.make s | None -> ()

let read_errors t = t.nread_errors

let reads t = t.reads

let writes t = t.writes

let max_queue t = Svc.hwm t.ep

let max_concurrency t = t.max_concurrency

let endpoint t = t.ep
