module Svc = Chorus_svc.Svc

type req = Alloc | Free of int

type resp = Block of int | Empty | Done

type t = {
  eps : (req, resp) Svc.t array;
  per : int;  (** blocks per group (last group may own more) *)
  mutable outstanding : int;
}

let serve_group ep ~first ~count =
  (* private free list: no locks, the message loop is the mutual
     exclusion *)
  let free = Queue.create () in
  for b = first to first + count - 1 do
    Queue.push b free
  done;
  Svc.serve ep (fun req ->
      match req with
      | Alloc ->
        if Queue.is_empty free then Empty else Block (Queue.pop free)
      | Free b ->
        Queue.push b free;
        Done)

let start ?(groups = 8) ?config ~nblocks () =
  if groups < 1 || nblocks < groups then invalid_arg "Cgalloc.start";
  let per = nblocks / groups in
  let eps =
    Array.init groups (fun i ->
        let ep =
          Svc.create ?config ~subsystem:"cgalloc"
            ~label:(Printf.sprintf "cg-%d" i) ()
        in
        let first = i * per in
        let count = if i = groups - 1 then nblocks - first else per in
        ignore
          (Chorus.Fiber.spawn ~label:(Printf.sprintf "cg-%d" i) ~daemon:true
             (fun () -> serve_group ep ~first ~count));
        ep)
  in
  { eps; per; outstanding = 0 }

let groups t = Array.length t.eps

let alloc t ~hint =
  let g = Array.length t.eps in
  let start = ((hint mod g) + g) mod g in
  let rec try_group i =
    if i >= g then None
    else
      match Svc.call t.eps.((start + i) mod g) Alloc with
      | Block b ->
        t.outstanding <- t.outstanding + 1;
        Some b
      | Empty -> try_group (i + 1)
      | Done -> assert false
  in
  try_group 0

let free t b =
  (* blocks are range-partitioned: return to the home group *)
  let home = min (Array.length t.eps - 1) (b / t.per) in
  match Svc.call t.eps.(home) (Free b) with
  | Done -> t.outstanding <- t.outstanding - 1
  | Block _ | Empty -> assert false

let allocated t = t.outstanding
