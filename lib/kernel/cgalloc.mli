(** Cylinder-group block allocators.

    Paper Section 4: the filesystem "communicates with other threads
    that administer cylinder groups and free-maps and so forth".  The
    disk's block range is split into groups, each owned by one
    allocator fiber with a private free list — allocation pressure
    spreads over the groups instead of serializing on one free-map
    lock (contrast {!Chorus_baseline.Shvfs}'s [freemap_lock]). *)

type t

val start :
  ?groups:int -> ?config:Chorus_svc.Svc.config -> nblocks:int -> unit -> t
(** Default 8 groups over [nblocks] blocks; [config] bounds each
    group's request inbox. *)

val alloc : t -> hint:int -> int option
(** [alloc t ~hint] requests a block, preferring the group [hint mod
    groups] and falling over to the others; [None] when the disk is
    full. *)

val free : t -> int -> unit

val allocated : t -> int
(** Blocks currently allocated. *)

val groups : t -> int
