module Fiber = Chorus.Fiber

type config = {
  period : int;
  samples : int;
  base_temp : int;
  temp_swing : int;
  power_every : int;
  hotplug_every : int;
}

let default_config =
  { period = 50_000;
    samples = 0;
    base_temp = 60;
    temp_swing = 15;
    power_every = 7;
    hotplug_every = 0 }

type t = { mutable taken : int; mutable fiber : Fiber.t option }

(* triangular wave: deterministic, bounded, no RNG needed *)
let temp_at cfg i =
  let phase = i mod (2 * cfg.temp_swing) in
  let offset = if phase < cfg.temp_swing then phase else (2 * cfg.temp_swing) - phase in
  cfg.base_temp + offset - (cfg.temp_swing / 2)

let start ?(config = default_config) notify =
  let t = { taken = 0; fiber = None } in
  let tick i =
    t.taken <- t.taken + 1;
    Notify.publish notify (Notify.Thermal (temp_at config i));
    if config.power_every > 0 && i mod config.power_every = config.power_every - 1
    then Notify.publish notify (Notify.Power (i mod 3));
    if
      config.hotplug_every > 0
      && i mod config.hotplug_every = config.hotplug_every - 1
    then
      Notify.publish notify
        (Notify.Hotplug { core = i mod 8; online = i mod 2 = 0 })
  in
  t.fiber <-
    Some
      (Chorus_svc.Svc.periodic ~label:"sensors" ~period:config.period
         ~count:config.samples tick);
  t

let samples_taken t = t.taken

let stop t = match t.fiber with Some f -> Fiber.kill f | None -> ()
