module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Metrics = Chorus_obs.Metrics

type event =
  | Thermal of int
  | Power of int
  | Hotplug of { core : int; online : bool }
  | Io_complete of int
  | App_exit of { pid : int; ok : bool }
  | Custom of string

type msg =
  | Publish of event
  | Subscribe of (event -> bool) * event Chan.t

type t = {
  inbox : msg Chan.t;
  mutable published : int;
  mutable delivered : int;
  published_c : Metrics.counter;
  delivered_c : Metrics.counter;
  inbox_g : Metrics.gauge;
}

let start ?on () =
  let t = { inbox = Chan.unbounded ~label:"notify" (); published = 0;
            delivered = 0;
            published_c = Metrics.counter ~subsystem:"notify" "published";
            delivered_c = Metrics.counter ~subsystem:"notify" "delivered";
            inbox_g = Metrics.gauge ~subsystem:"notify" "inbox_depth" } in
  let subscribers : ((event -> bool) * event Chan.t) list ref = ref [] in
  ignore
    (Fiber.spawn ?on ~label:"notify-hub" ~daemon:true (fun () ->
         let rec loop () =
           let msg = Chan.recv t.inbox in
           Metrics.observe t.inbox_g (Chan.length t.inbox);
           (match msg with
           | Subscribe (filter, ch) ->
             subscribers := (filter, ch) :: !subscribers
           | Publish ev ->
             t.published <- t.published + 1;
             Metrics.incr t.published_c;
             subscribers :=
               List.filter
                 (fun (filter, ch) ->
                   if Chan.is_closed ch then false
                   else begin
                     if filter ev then begin
                       Chan.send ~words:4 ch ev;
                       t.delivered <- t.delivered + 1;
                       Metrics.incr t.delivered_c
                     end;
                     true
                   end)
                 !subscribers);
           loop ()
         in
         loop ()));
  t

let subscribe_filtered t filter =
  let ch = Chan.unbounded ~label:"notify-sub" () in
  Chan.send t.inbox (Subscribe (filter, ch));
  ch

let subscribe t = subscribe_filtered t (fun _ -> true)

let publish t ev = Chan.send ~words:4 t.inbox (Publish ev)

let published t = t.published

let delivered t = t.delivered
