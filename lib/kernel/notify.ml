module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Metrics = Chorus_obs.Metrics
module Svc = Chorus_svc.Svc

type event =
  | Thermal of int
  | Power of int
  | Hotplug of { core : int; online : bool }
  | Io_complete of int
  | App_exit of { pid : int; ok : bool }
  | Custom of string

type msg =
  | Publish of event
  | Subscribe of (event -> bool) * event Chan.t

type t = {
  inbox : msg Svc.cast;
  mutable published : int;
  mutable delivered : int;
  published_c : Metrics.counter;
  delivered_c : Metrics.counter;
}

let start ?on ?config () =
  let t = { inbox = Svc.cast_create ?config ~subsystem:"notify"
                      ~label:"notify" ();
            published = 0; delivered = 0;
            published_c = Metrics.counter ~subsystem:"notify" "published";
            delivered_c = Metrics.counter ~subsystem:"notify" "delivered" } in
  let subscribers : ((event -> bool) * event Chan.t) list ref = ref [] in
  (* the hub fiber keeps its historical label, distinct from the
     endpoint's channel label *)
  ignore
    (Fiber.spawn ?on ~label:"notify-hub" ~daemon:true (fun () ->
         Svc.serve_cast t.inbox (function
           | Subscribe (filter, ch) ->
             subscribers := (filter, ch) :: !subscribers
           | Publish ev ->
             t.published <- t.published + 1;
             Metrics.incr t.published_c;
             subscribers :=
               List.filter
                 (fun (filter, ch) ->
                   if Chan.is_closed ch then false
                   else begin
                     if filter ev then begin
                       Chan.send ~words:4 ch ev;
                       t.delivered <- t.delivered + 1;
                       Metrics.incr t.delivered_c
                     end;
                     true
                   end)
                 !subscribers)));
  t

let subscribe_filtered t filter =
  let ch = Chan.unbounded ~label:"notify-sub" () in
  Svc.cast t.inbox (Subscribe (filter, ch));
  ch

let subscribe t = subscribe_filtered t (fun _ -> true)

let publish t ev = Svc.cast ~words:4 t.inbox (Publish ev)

let published t = t.published

let delivered t = t.delivered

let inbox t = t.inbox
