(** Registry of all experiments (the paper's would-be tables and
    figures; see DESIGN.md Section 3 for the claim index). *)

type t = {
  id : string;  (** "e1", "e2", ... — see {!all} for the catalogue *)
  title : string;
  claim : string;  (** the paper sentence the experiment tests *)
  run : quick:bool -> seed:int -> Chorus_util.Tablefmt.t list;
}

val all : t list

val find : string -> t option
(** Lookup by id, case-insensitive; zero-padded forms ("e04") are
    accepted for "e4". *)

val run_and_print : ?quick:bool -> ?seed:int -> t -> unit
(** Run one experiment and print its tables to stdout with timing. *)
