(* E20 — the chip as a distributed system, taken literally (Sections 1
   and 5).

   The paper argues a multicore OS "is structurally more similar to a
   client/server network application" and that, following Erlang, the
   goal should be "aiming for not failing" rather than never crashing.
   This experiment composes both: a sharded, replicated KV cluster
   (lib/cluster) runs over a lossy fabric while a fault injector
   crashes whole nodes; a smart client keeps issuing writes and reads
   through elections and node restarts.

   Table 1 measures end-to-end availability under combined frame loss
   and node crashes, with the supervisor healing crashed nodes.
   Table 2 measures the data-plane failover window: cycles from a
   leader kill until its shard answers operations again, plus steady
   throughput, as the replica group widens (N = 1, 3, 5). *)

open Exp_common
module Fiber = Chorus.Fiber
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Faults = Chorus_workload.Faults
module Shardmap = Chorus_cluster.Shardmap
module Cluster = Chorus_cluster.Cluster
module Client = Chorus_cluster.Client

let mk ~loss ~seed ~nnodes ~replication net_seed =
  let net = Fabric.create ~latency:5_000 ~loss ~seed:net_seed () in
  let c =
    Cluster.create ~nshards:8 ~replication ~seed ~nnodes net
  in
  Cluster.start c;
  let cstack = Stack.create net (Fabric.attach net ~label:"client" ()) in
  let client = Client.create ~seed ~bootstrap:(Cluster.addrs c) cstack in
  (c, client)

(* One posture of the availability matrix: [ops] writes with rolling
   node crashes, then every acked key is read back and checked. *)
let run_posture ~quick ~seed ~loss ~crash =
  let ops = pick ~quick 120 400 in
  let (acked, lost, bad_reads, crashes, restarts, op_retries), _stats =
    run ~seed ~cores:32 (fun () ->
        let c, client =
          mk ~loss ~seed ~nnodes:5 ~replication:3 (seed + 1)
        in
        Fiber.sleep 1_000_000;
        let injector =
          if crash then begin
            let addrs = Array.of_list (Cluster.addrs c) in
            Some
              (Faults.start_actions
                 { Faults.mean_interval = pick ~quick 400_000 600_000;
                   crashes = pick ~quick 4 10;
                   seed = seed + 7 }
                 ~inject:(fun ~n ->
                   let a = addrs.(n mod Array.length addrs) in
                   if Cluster.node_up c a then begin
                     Cluster.crash_node c a;
                     true
                   end
                   else false))
            end
          else None
        in
        let acked = ref [] and lost = ref 0 in
        for i = 0 to ops - 1 do
          let k = Printf.sprintf "key-%04d" i in
          match Client.put client k (string_of_int i) with
          | `Ok -> acked := i :: !acked
          | `Net_fail -> incr lost
        done;
        (match injector with Some inj -> Faults.wait inj | None -> ());
        Fiber.sleep 1_000_000;
        let bad_reads = ref 0 in
        List.iter
          (fun i ->
            let k = Printf.sprintf "key-%04d" i in
            match Client.get client k with
            | `Found v when v = string_of_int i -> ()
            | `Found _ | `Miss | `Net_fail -> incr bad_reads)
          !acked;
        let r =
          ( List.length !acked,
            !lost,
            !bad_reads,
            Cluster.node_crashes c,
            Cluster.restarts c,
            Client.retries client )
        in
        Cluster.stop c;
        r)
  in
  (acked, lost, bad_reads, crashes, restarts, op_retries)

let nines availability =
  if availability >= 1.0 then 9.9 else -.log10 (1.0 -. availability)

(* Failover window: crash the shard-0 leader and poll until the shard
   answers again; also measure steady put throughput for the group
   size. *)
let run_failover ~quick ~seed ~nnodes =
  let replication = min 3 nnodes in
  let ops = pick ~quick 60 200 in
  let (window, tput_ops, acked), stats =
    run ~seed ~cores:32 (fun () ->
        let c, client = mk ~loss:0.0 ~seed ~nnodes ~replication (seed + 3) in
        Fiber.sleep 1_000_000;
        (* steady-state throughput *)
        let t0 = Fiber.now () in
        let acked = ref 0 in
        for i = 0 to ops - 1 do
          match Client.put client (Printf.sprintf "w%d" i) "x" with
          | `Ok -> incr acked
          | `Net_fail -> ()
        done;
        let t1 = Fiber.now () in
        let window =
          if nnodes < 3 then 0  (* no failover possible below quorum 2 *)
          else begin
            let victim = Cluster.leader_of c 0 in
            Cluster.crash_node c victim;
            let crash_at = Fiber.now () in
            (* the shard is back once a put on it is acked again; keys
               are picked to land on shard 0 *)
            let key =
              let rec find i =
                if Shardmap.shard_of_key (Cluster.map c)
                     (Printf.sprintf "probe-%d" i)
                   = 0
                then Printf.sprintf "probe-%d" i
                else find (i + 1)
              in
              find 0
            in
            let rec probe () =
              match Client.put client key "back" with
              | `Ok -> Fiber.now () - crash_at
              | `Net_fail -> probe ()
            in
            probe ()
          end
        in
        let r = (window, t1 - t0, !acked) in
        Cluster.stop c;
        r)
  in
  ignore stats;
  (window, tput_ops, acked, ops)

let run ~quick ~seed =
  let avail =
    Tablefmt.create
      ~title:
        "E20: cluster availability under frame loss + node crashes (5 \
         nodes, 8 shards, 3 replicas)"
      ~columns:
        [ ("loss", Tablefmt.Right);
          ("crashes", Tablefmt.Right);
          ("acked", Tablefmt.Right);
          ("unavail", Tablefmt.Right);
          ("availability", Tablefmt.Right);
          ("nines", Tablefmt.Right);
          ("lost acked writes", Tablefmt.Right);
          ("restarts", Tablefmt.Right);
          ("client retries", Tablefmt.Right) ]
  in
  List.iter
    (fun (loss, crash) ->
      let acked, lost, bad, crashes, restarts, retries =
        run_posture ~quick ~seed ~loss ~crash
      in
      let avail_f = float_of_int acked /. float_of_int (acked + lost) in
      Tablefmt.add_row avail
        [ Printf.sprintf "%.0f%%" (100.0 *. loss);
          string_of_int crashes;
          string_of_int acked;
          string_of_int lost;
          Printf.sprintf "%.5f" avail_f;
          Tablefmt.cell_float (nines avail_f);
          string_of_int bad;
          string_of_int restarts;
          string_of_int retries ])
    [ (0.0, false); (0.01, false); (0.01, true); (0.03, true) ];
  let failover =
    Tablefmt.create
      ~title:"E20: failover window and throughput vs replica-group width"
      ~columns:
        [ ("nodes", Tablefmt.Right);
          ("puts acked", Tablefmt.Right);
          ("cycles/put", Tablefmt.Right);
          ("failover window (cycles)", Tablefmt.Right) ]
  in
  List.iter
    (fun nnodes ->
      let window, tput_cycles, acked, ops = run_failover ~quick ~seed ~nnodes in
      Tablefmt.add_row failover
        [ string_of_int nnodes;
          Printf.sprintf "%d/%d" acked ops;
          string_of_int (tput_cycles / max 1 ops);
          (if window = 0 then "n/a (no quorum peer)"
           else string_of_int window) ])
    [ 1; 3; 5 ];
  [ avail; failover ]
