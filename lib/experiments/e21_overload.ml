(* E21 — overload at the service plane (Sections 3 and 5).

   Every server in the paper's design is a message loop behind a
   queue, and queues fill.  Once offered load passes the service rate
   something must give: the sender blocks (backpressure propagates
   upstream), the server answers "busy" (the client sees the overload
   and can back off), or the server sheds its stalest queued work
   (freshest-first under pressure).  lib/svc makes the three policies
   a one-line configuration on the same endpoint; this experiment
   sweeps offered load from half capacity to 2x past it and measures
   what each policy trades away: goodput, tail latency, or both.

   The generator is open-loop: eight dispatchers emit requests on a
   fixed schedule regardless of completions, each request carried by
   its own small fiber so a blocked send stalls only that request.
   Everything is deterministic in (seed, scale) — no RNG is drawn. *)

open Exp_common
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Svc = Chorus_svc.Svc

type sample = {
  policy_name : string;
  load_pct : int;
  sent : int;
  completed : int;
  busy : int;  (* rejected at the door + shed after admission *)
  rejected : int;
  shed : int;
  hwm : int;
  p50 : int;
  p99 : int;
  goodput : float;  (* completed requests per Mcycle *)
}

let policy_name = function
  | `Block -> "block"
  | `Reject -> "reject"
  | `Shed_oldest -> "shed-oldest"

(* One (policy, load) posture: a single-server endpoint with a
   capacity-16 inbox, service time [service_cost] cycles, and an
   aggregate arrival rate of [load_pct]% of the service rate. *)
let measure ~quick ~seed ~policy ~load_pct =
  let service_cost = 8_000 in
  let capacity = 16 in
  let nclients = 8 in
  let per_client = pick ~quick 40 150 in
  let total = nclients * per_client in
  (* per-dispatcher gap so that nclients/gap = load_pct% of
     1/service_cost *)
  let gap = nclients * service_cost * 100 / load_pct in
  let (completed, busy, rejected, shed, hwm, p50, p99), stats =
    run ~seed ~cores:16 (fun () ->
        let ep =
          Svc.create
            ~config:(Svc.config ~capacity ~policy ())
            ~subsystem:"svc" ~label:"e21-server" ()
        in
        let server = Svc.start ep (fun () -> Fiber.work service_cost) in
        let lat = Histogram.create () in
        let completed = ref 0 and busy = ref 0 in
        let finished = Chan.unbounded ~label:"finished" () in
        for c = 0 to nclients - 1 do
          ignore
            (Fiber.spawn ~daemon:true
               ~label:(Printf.sprintf "dispatch-%d" c)
               (fun () ->
                 (* stagger the dispatchers across one gap so arrivals
                    interleave instead of bursting 8-wide *)
                 Fiber.sleep (c * (gap / nclients));
                 for _i = 0 to per_client - 1 do
                   let t0 = Fiber.now () in
                   ignore
                     (Fiber.spawn ~daemon:true ~label:"request"
                        (fun () ->
                          (match Svc.call_result ep () with
                          | `Ok () ->
                              incr completed;
                              Histogram.record lat (Fiber.now () - t0)
                          | `Busy | `Expired -> incr busy);
                          Chan.send finished ()));
                   Fiber.sleep gap
                 done))
        done;
        for _ = 1 to total do
          ignore (Chan.recv finished)
        done;
        Fiber.kill server;
        ( !completed,
          !busy,
          Svc.rejected ep,
          Svc.shed ep,
          Svc.hwm ep,
          Histogram.percentile lat 50.0,
          Histogram.percentile lat 99.0 ))
  in
  { policy_name = policy_name policy;
    load_pct;
    sent = total;
    completed;
    busy;
    rejected;
    shed;
    hwm;
    p50;
    p99;
    goodput = ops_per_mcycle stats completed }

let run ~quick ~seed =
  let table =
    Tablefmt.create
      ~title:
        "E21: one server, capacity-16 inbox, open-loop load sweep \
         (8 clients)"
      ~columns:
        [ ("policy", Tablefmt.Left);
          ("load", Tablefmt.Right);
          ("sent", Tablefmt.Right);
          ("completed", Tablefmt.Right);
          ("busy", Tablefmt.Right);
          ("rejected", Tablefmt.Right);
          ("shed", Tablefmt.Right);
          ("queue hwm", Tablefmt.Right);
          ("p50 (cycles)", Tablefmt.Right);
          ("p99 (cycles)", Tablefmt.Right);
          ("goodput/Mcyc", Tablefmt.Right) ]
  in
  List.iter
    (fun policy ->
      List.iter
        (fun load_pct ->
          let s = measure ~quick ~seed ~policy ~load_pct in
          Tablefmt.add_row table
            [ s.policy_name;
              Printf.sprintf "%d%%" s.load_pct;
              string_of_int s.sent;
              string_of_int s.completed;
              string_of_int s.busy;
              string_of_int s.rejected;
              string_of_int s.shed;
              string_of_int s.hwm;
              string_of_int s.p50;
              string_of_int s.p99;
              Tablefmt.cell_float s.goodput ])
        [ 50; 100; 200 ])
    [ `Block; `Reject; `Shed_oldest ];
  [ table ]
