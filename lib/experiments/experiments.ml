module Tablefmt = Chorus_util.Tablefmt

type t = {
  id : string;
  title : string;
  claim : string;
  run : quick:bool -> seed:int -> Tablefmt.t list;
}

let all =
  [ { id = "e1";
      title = "Primitive costs";
      claim =
        "sending a message is an action comparable in scope to making a \
         procedure call (S3)";
      run = E01_primitives.run };
    { id = "e2";
      title = "Syscall entry mechanisms";
      claim = "no longer necessary to transition to kernel mode (S4)";
      run = E02_syscalls.run };
    { id = "e3";
      title = "File-server scaling";
      claim =
        "locks and shared memory do not scale to hundreds of cores (S1)";
      run = E03_scaling.run };
    { id = "e4";
      title = "Channel plumbing";
      claim = "move the data directly to its destination (S3)";
      run = E04_plumbing.run };
    { id = "e5";
      title = "Blocking vs buffered send";
      claim = "non-blocking send is probably faster (S3)";
      run = E05_buffering.run };
    { id = "e6";
      title = "Choice implementations";
      claim = "implementing choice effectively is difficult (S5)";
      run = E06_choice.run };
    { id = "e7";
      title = "Async notification";
      claim = "signals must abandon, unwind and redo kernel work (S3.1)";
      run = E07_signals.run };
    { id = "e8";
      title = "Thread placement";
      claim = "which threads to place on which cores (S5)";
      run = E08_placement.run };
    { id = "e9";
      title = "Service granularity";
      claim = "a thread per page would be too many threads (S5)";
      run = E09_granularity.run };
    { id = "e10";
      title = "Supervision and availability";
      claim = "aim for not failing, like Erlang's nine nines (S5/S1)";
      run = E10_supervision.run };
    { id = "e11";
      title = "Peer vs hierarchical structure";
      claim = "GUIs want peer message structure (S3.1)";
      run = E11_gui.run };
    { id = "e12";
      title = "LibOS aggressive design";
      claim = "run applications directly on a bare core (S4)";
      run = E12_libos.run };
    { id = "e13";
      title = "Map/Reduce shared-nothing";
      claim = "Map/Reduce is based on a shared-nothing model (S1)";
      run = E13_mapred.run };
    { id = "e14";
      title = "Protocol verification";
      claim = "defined protocols offer static verification (S4)";
      run = E14_verification.run };
    { id = "e15";
      title = "Message-cost sensitivity";
      claim =
        "ablation: how cheap must messages be for the architecture to \
         win? (S4's hardware-support supposition)";
      run = E15_sensitivity.run };
    { id = "e16";
      title = "Topology ablation";
      claim = "ablation: interconnect shape vs the message kernel (S1)";
      run = E16_topology.run };
    { id = "e17";
      title = "The thousand-VMs strawman";
      claim =
        "the alternative is turning the chip into a cluster of separate \
         VMs - thoroughly unsatisfying and inefficient (S6)";
      run = E17_vm_strawman.run };
    { id = "e18";
      title = "Message weight classes";
      claim =
        "most microkernel messages are middleweight; L4's synchronous \
         messages are really procedure calls (S2)";
      run = E18_ipc_weights.run };
    { id = "e19";
      title = "Driver scheduling priority";
      claim =
        "kernel components are just threads; scheduling them is a new \
         difficulty (S5)";
      run = E19_driver_priority.run };
    { id = "e20";
      title = "Replicated cluster on the fabric";
      claim =
        "structurally similar to a client/server network application; \
         aim for not failing (S1/S5)";
      run = E20_cluster.run };
    { id = "e21";
      title = "Overload policies at the service plane";
      claim =
        "servers are queues; past saturation something must give: \
         block backpressures, reject and shed protect latency (S3/S5)";
      run = E21_overload.run };
    { id = "e22";
      title = "Chaos campaign with linearizability and recovery oracles";
      claim =
        "aiming for not failing: under enumerated fault schedules the \
         stack stays linearizable, durable, and recovers — and every \
         failure is a shrinkable, replayable schedule (S1/S5)";
      run = E22_chaos.run };
    { id = "e23";
      title = "Projected filesystem: hydration latency and storm policies";
      claim =
        "a remote namespace can be grafted in lazily: placeholders \
         hydrate over the wire on first read, the name cache makes \
         warm opens walk-free, and a hydration storm meets an \
         explicit overload policy, not an unbounded queue (S3/S5)";
      run = E23_projfs.run };
    { id = "e24";
      title = "Cluster hot path: batching, leases, open-loop load";
      claim =
        "a centralized service scales only if engineered to: group \
         commit amortizes the replication round, leader leases take \
         reads off the quorum path, and the proof is throughput/p99 \
         against offered load, not an assertion (S1/S3/S5)";
      run = E24_hotpath.run };
    { id = "e25";
      title = "Gray failure: deadlines and circuit breakers";
      claim =
        "aiming for not failing includes not failing slowly: a \
         replica that is alive to its peers but slow to its clients \
         evades crash detection, so the client plane needs its own \
         defenses — end-to-end deadlines cap the latency tail and \
         circuit breakers steer traffic off the gray node (S1/S5)";
      run = E25_gray.run } ]

let find id =
  let id = String.lowercase_ascii id in
  (* accept zero-padded forms: e04 means e4 *)
  let id =
    if String.length id > 2 && id.[0] = 'e' then
      match
        int_of_string_opt (String.sub id 1 (String.length id - 1))
      with
      | Some n -> Printf.sprintf "e%d" n
      | None -> id
    else id
  in
  List.find_opt (fun e -> e.id = id) all

let run_and_print ?(quick = true) ?(seed = 42) e =
  Printf.printf "--- %s: %s ---\nclaim: %s\n%!" (String.uppercase_ascii e.id)
    e.title e.claim;
  let t0 = Unix.gettimeofday () in
  let tables = e.run ~quick ~seed in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter Tablefmt.print tables;
  Printf.printf "(%s ran in %.2fs host time)\n\n%!" e.id dt
