(* E22 — chaos campaign over the service and cluster planes (S1/S5).

   The paper's reliability posture is Erlang's: "aiming for not
   failing" through supervision and restart rather than proving
   components never crash.  This experiment is the posture's audit: a
   campaign driver enumerates deterministic fault schedules — service
   fiber kills at crash points, whole-node crashes, fabric loss /
   duplication / reordering / delay windows, transient disk read
   errors — runs a recorded client workload under each, and checks
   four oracles after every run: per-key linearizability (Wing–Gong
   over the client histories), durability of acked writes, bounded
   recovery after the last fault clears, and quiescence (no leaked
   fibers, no stuck inboxes).

   Because every run is a pure function of its schedule, a failing
   schedule IS the reproducer: it replays byte-identically and shrinks
   greedily to a minimal fault set.  The selftest row plants a
   corrupted history and confirms the oracles actually fire — a
   checker that passes everything is the quietest way to be wrong. *)

open Exp_common
module Chaos = Chorus_chaos.Chaos
module Schedule = Chorus_chaos.Schedule

let run ~quick ~seed =
  let disk_runs = pick ~quick 24 160 in
  let kv_runs = pick ~quick 8 48 in
  let r = Chaos.campaign ~disk_runs ~kv_runs ~seed () in
  let t = Tablefmt.create ~title:"chaos campaign" ~columns:[ ("metric", Tablefmt.Left); ("value", Tablefmt.Right) ] in
  Tablefmt.add_row t [ "runs"; string_of_int r.Chaos.runs ];
  Tablefmt.add_row t [ "client ops recorded"; string_of_int r.Chaos.total_ops ];
  Tablefmt.add_row t [ "faults injected"; string_of_int r.Chaos.faults_injected ];
  List.iter
    (fun (kind, n) ->
      Tablefmt.add_row t
        [ Printf.sprintf "faults explored: %s" kind; string_of_int n ])
    r.Chaos.kinds;
  Tablefmt.add_row t
    [ "oracle violations"; string_of_int (List.length r.Chaos.violations) ];
  List.iter
    (fun v ->
      Tablefmt.add_row t
        [ "  violating schedule"; Schedule.to_string v.Chaos.schedule ];
      Tablefmt.add_row t
        [ "  shrunk reproducer"; Schedule.to_string v.Chaos.minimal ])
    r.Chaos.violations;
  let st = Chaos.selftest ~seed in
  let s =
    Tablefmt.create ~title:"oracle selftest (planted violation)"
      ~columns:[ ("check", Tablefmt.Left); ("result", Tablefmt.Right) ]
  in
  Tablefmt.add_row s
    [ "planted violation caught"; string_of_bool st.Chaos.caught ];
  Tablefmt.add_row s
    [ "shrunk to faults"; string_of_int st.Chaos.minimal_faults ];
  Tablefmt.add_row s
    [ "minimal schedule replays byte-identically";
      string_of_bool st.Chaos.st_replay_identical ];
  [ t; s ]
