(* E25 — tail latency under gray failure: circuit breakers and
   end-to-end deadlines against a slow-but-alive replica.

   The paper's reliability stance ("aim for not failing", S5) is
   usually tested against crashes — but the failure mode that actually
   wrecks tail latency in deployed systems is the *gray* one: a node
   that stays up, answers its peers, and serves some requests, just
   slowly.  Crash detection never fires, so every client keeps sending
   it traffic and eats the timeout ladder.  This experiment makes node
   0 gray on the client plane only — every client->node0 link gets a
   per-link delay fault (Fabric.set_link_faults) while the inter-node
   links stay clean, so raft keeps its leader and the cluster looks
   healthy to itself — and drives the open-loop Zipf generator through
   four client postures:

   - baseline:            retry ladder only (the pre-gray client)
   - deadlines:           per-op budget, RPC timeouts clamped to it
   - breakers:            per-node circuit breakers steering around
                          nodes that keep failing
   - breakers+deadlines:  both defenses

   Table 1 is the sanity half: on a healthy fabric the four postures
   must be indistinguishable (the defenses are free when nothing is
   gray).  Table 2 is the claim: under the gray node, deadlines cap
   the latency tail (slow calls become fast, explicit failures) and
   breakers cut the number of ops that ever wait on the gray node, so
   breakers+deadlines must beat baseline p99 outright. *)

open Exp_common
module Fiber = Chorus.Fiber
module Fabric = Chorus_net.Fabric
module Cluster = Chorus_cluster.Cluster
module Client = Chorus_cluster.Client
module Zipfload = Chorus_workload.Zipf

type point = {
  gray : bool;
  breakers : bool;
  deadlines : bool;
  submitted : int;
  completed : int;
  failed : int;
  throughput : float;  (* completed ops per Mcycle *)
  p50 : int;
  p99 : int;
  pmax : int;  (* worst completion latency seen *)
  trips : int;
  skips : int;
  probes : int;
  misses : int;  (* deadline misses *)
  link_delayed : int;  (* gray-link deliveries actually delayed *)
}

(* Gray posture of the experiment: node 0 answers its raft peers at
   full speed but [gray_p] of client frames to it arrive
   [gray_cycles] late — far past the client RPC timeout, so an
   affected call burns its timeout and retries. *)
let gray_p = 0.75

let gray_cycles = 150_000

let op_budget = 180_000

let breaker_cfg = { Client.trip_after = 3; cooldown = 250_000 }

let run_point ~quick ~seed ~gray ~breakers ~deadlines () =
  let replicas = 3 in
  let nclients = pick ~quick 8 24 in
  let wcfg =
    { (Zipfload.default_config ~seed:(seed + 11)) with
      Zipfload.nkeys = pick ~quick 50_000 500_000;
      nclients;
      depth = 8;
      offered = pick ~quick 300 600;
      duration = pick ~quick 600_000 2_400_000;
      read_fraction = 0.9;
      op_budget = (if deadlines then Some op_budget else None);
      breaker = (if breakers then Some breaker_cfg else None) }
  in
  let (res, delayed), _stats =
    run ~seed ~cores:64 (fun () ->
        let net =
          Fabric.create ~latency:5_000 ~loss:0.0 ~seed:(seed + 1) ()
        in
        let c =
          Cluster.create ~nshards:4 ~replication:replicas ~seed
            ~nnodes:replicas net
        in
        Cluster.start c;
        Fiber.sleep 1_000_000;  (* let elections settle *)
        if gray then
          (* client NICs attach after the [replicas] node NICs, so
             their addresses are replicas..replicas+nclients-1 *)
          for src = replicas to replicas + nclients - 1 do
            Fabric.set_link_faults net ~src ~dst:0 ~delay:gray_p
              ~delay_cycles:gray_cycles ()
          done;
        let res =
          Zipfload.run wcfg ~fabric:net ~bootstrap:(Cluster.addrs c)
        in
        let delayed = (Fabric.link_stats net).Fabric.link_delayed in
        Cluster.stop c;
        (res, delayed))
  in
  { gray;
    breakers;
    deadlines;
    submitted = res.Zipfload.submitted;
    completed = res.Zipfload.completed;
    failed = res.Zipfload.failed;
    throughput = res.Zipfload.throughput;
    p50 = res.Zipfload.p50;
    p99 = res.Zipfload.p99;
    pmax = Chorus_util.Histogram.percentile res.Zipfload.latency 100.0;
    trips = res.Zipfload.breaker_trips;
    skips = res.Zipfload.breaker_skips;
    probes = res.Zipfload.breaker_probes;
    misses = res.Zipfload.deadline_misses;
    link_delayed = delayed }

let posture_name ~breakers ~deadlines =
  match (breakers, deadlines) with
  | false, false -> "baseline"
  | false, true -> "deadlines"
  | true, false -> "breakers"
  | true, true -> "breakers+deadlines"

let postures =
  [ (false, false); (false, true); (true, false); (true, true) ]

let table ~title points =
  let t =
    Tablefmt.create ~title
      ~columns:
        [ ("posture", Tablefmt.Left);
          ("done", Tablefmt.Right);
          ("fail", Tablefmt.Right);
          ("p50", Tablefmt.Right);
          ("p99", Tablefmt.Right);
          ("max", Tablefmt.Right);
          ("dl misses", Tablefmt.Right);
          ("trips", Tablefmt.Right);
          ("skips", Tablefmt.Right);
          ("delayed", Tablefmt.Right) ]
  in
  List.iter
    (fun p ->
      Tablefmt.add_row t
        [ posture_name ~breakers:p.breakers ~deadlines:p.deadlines;
          string_of_int p.completed;
          string_of_int p.failed;
          string_of_int p.p50;
          string_of_int p.p99;
          string_of_int p.pmax;
          string_of_int p.misses;
          string_of_int p.trips;
          string_of_int p.skips;
          string_of_int p.link_delayed ])
    points;
  t

let run ~quick ~seed =
  let healthy =
    List.map
      (fun (breakers, deadlines) ->
        run_point ~quick ~seed ~gray:false ~breakers ~deadlines ())
      postures
  in
  let grayed =
    List.map
      (fun (breakers, deadlines) ->
        run_point ~quick ~seed ~gray:true ~breakers ~deadlines ())
      postures
  in
  [ table
      ~title:
        "E25: healthy fabric — the defenses must cost nothing when \
         nothing is gray (3 replicas, 4 shards, 90% reads)"
      healthy;
    table
      ~title:
        (Printf.sprintf
           "E25: node 0 gray to clients (%.0f%% of frames +%dk cycles) \
            — deadlines cap the tail, breakers steer around it"
           (100. *. gray_p) (gray_cycles / 1000))
      grayed ]
