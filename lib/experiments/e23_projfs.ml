(* E23 — projected filesystem: lazy hydration and the name cache
   (Sections 3 and 5).

   The paper's filesystem is a message loop per vnode; lib/vfs pushes
   that to its remote conclusion: a mounted namespace whose entries
   live on another node and whose files are placeholder vnodes that
   hydrate over the net stack on first read (the VFSForGit projection
   on the paper's substrate).  Two questions with measurable answers:

   - What does laziness cost, and what does the name cache buy back?
     Part A times cold open+read+close (walk + placeholder fill over
     the wire) against warm re-opens of the same files (name-cache hit
     skips the message-per-component walk; contents already in block
     cache).

   - What happens when everyone faults at once?  Every placeholder
     fill funnels through one bounded Svc endpoint, so a hydration
     storm meets an explicit overload policy instead of an unbounded
     queue.  Part B opens many cold files concurrently against a
     small hydration inbox and measures what each policy trades:
     `Block backpressures the readers (everything completes, tail
     latency absorbs the queue), `Reject and `Shed_oldest convert
     excess fills into clean, retryable EIO.

   Everything is deterministic in (seed, scale): contents come from
   the provider's seeded catalog and are verified byte-for-byte, so a
   torn hydration would fail the run, not skew it. *)

open Exp_common
module Fiber = Chorus.Fiber
module Runstats = Chorus.Runstats
module Svc = Chorus_svc.Svc
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Fsspec = Chorus_fsspec.Fsspec
module Blockdev = Chorus_kernel.Blockdev
module Bcache = Chorus_kernel.Bcache
module Cgalloc = Chorus_kernel.Cgalloc
module Msgvfs = Chorus_kernel.Msgvfs
module Diskmodel = Chorus_machine.Diskmodel
module Namecache = Chorus_projfs.Namecache
module Provider = Chorus_projfs.Provider
module Projfs = Chorus_projfs.Projfs

(* One projected mount over a two-node fabric; everything E23 measures
   runs against this fixture *)
let boot ?hydration ?workers ~cat () =
  let dev = Blockdev.start ~disk:Diskmodel.default () in
  let cache = Bcache.start ~shards:4 ~capacity:512 ~dev () in
  let alloc = Cgalloc.start ~nblocks:8192 () in
  let fs = Msgvfs.mount Msgvfs.default_config ~bcache:cache ~alloc in
  let net = Fabric.create ~latency:2_000 ~seed:7 () in
  let pstack = Stack.create net (Fabric.attach net ~label:"provider" ()) in
  let mstack = Stack.create net (Fabric.attach net ~label:"mount" ()) in
  ignore (Provider.serve cat pstack);
  match
    Projfs.mount ?hydration ?workers ~fs ~at:"/proj" ~stack:mstack
      ~provider:(Stack.addr pstack) ()
  with
  | Ok pf -> pf
  | Error e -> failwith ("e23: mount failed: " ^ Fsspec.err_to_string e)

let full_read c cat path rel =
  match Projfs.open_ c path with
  | Error e -> Error e
  | Ok fd ->
    let r = Projfs.read c fd ~off:0 ~len:Fsspec.block_size in
    ignore (Projfs.close c fd);
    (match r with
    | Ok data ->
      if String.equal data (Option.get (Provider.content cat rel)) then Ok ()
      else failwith ("e23: torn hydration of " ^ rel)
    | Error e -> Error e)

(* ------------------------------------------------------------------ *)
(* Part A: cold vs warm open+read latency                              *)

type open_sample = {
  files : int;
  cold_p50 : int;
  cold_p99 : int;
  warm_p50 : int;
  warm_p99 : int;
  hydrations : int;
  nc_hits : int;
  nc_misses : int;
}

let measure_open ~quick ~seed =
  let files = pick ~quick 48 192 in
  let cat = Provider.catalog ~seed:3 ~nfiles:files ~dir_width:32 () in
  let (cold, warm, hydrations, nc_hits, nc_misses), _stats =
    run ~seed ~cores:16 (fun () ->
        let pf = boot ~cat () in
        let c = Projfs.client pf in
        let cold = Histogram.create () and warm = Histogram.create () in
        let sweep hist =
          for i = 0 to files - 1 do
            let rel = Provider.rel_path cat i in
            let t0 = Fiber.now () in
            (match full_read c cat (Projfs.mount_path pf ^ "/" ^ rel) rel with
            | Ok () -> Histogram.record hist (Fiber.now () - t0)
            | Error e ->
              failwith ("e23: read failed: " ^ Fsspec.err_to_string e))
          done
        in
        sweep cold;
        sweep warm;
        let nc = Projfs.cache pf in
        ( cold,
          warm,
          Msgvfs.hydrations (Projfs.fs_sys pf),
          Namecache.hits nc,
          Namecache.misses nc ))
  in
  { files;
    cold_p50 = Histogram.percentile cold 50.0;
    cold_p99 = Histogram.percentile cold 99.0;
    warm_p50 = Histogram.percentile warm 50.0;
    warm_p99 = Histogram.percentile warm 99.0;
    hydrations;
    nc_hits;
    nc_misses }

(* ------------------------------------------------------------------ *)
(* Part B: hydration storm vs overload policy                          *)

type storm_sample = {
  policy_name : string;
  clients : int;
  capacity : int;
  completed : int;
  failed : int;  (* clean EIO from reject/shed — never torn *)
  rejected : int;
  shed : int;
  hwm : int;
  p99 : int;  (* over completed reads *)
  makespan : int;
  goodput : float;  (* completed hydrating reads per Mcycle *)
}

let policy_name = function
  | `Block -> "block"
  | `Reject -> "reject"
  | `Shed_oldest -> "shed-oldest"

let measure_storm ~quick ~seed ~policy =
  let clients = pick ~quick 24 64 in
  let capacity = 8 in
  let cat = Provider.catalog ~seed:3 ~nfiles:clients ~dir_width:32 () in
  let (completed, failed, rejected, shed, hwm, p99), stats =
    run ~seed ~cores:16 (fun () ->
        let pf =
          boot ~hydration:(Svc.config ~capacity ~policy ()) ~workers:2 ~cat ()
        in
        (* every reader faults at once: distinct cold files, one fiber
           each, all released in the same instant *)
        let lat = Histogram.create () in
        let completed = ref 0 and failed = ref 0 in
        let readers =
          List.init clients (fun i ->
              Fiber.spawn ~label:(Printf.sprintf "storm-%d" i) (fun () ->
                  let c = Projfs.client pf in
                  let rel = Provider.rel_path cat i in
                  let t0 = Fiber.now () in
                  match
                    full_read c cat (Projfs.mount_path pf ^ "/" ^ rel) rel
                  with
                  | Ok () ->
                    incr completed;
                    Histogram.record lat (Fiber.now () - t0)
                  | Error _ -> incr failed))
        in
        List.iter (fun f -> ignore (Fiber.join f)) readers;
        let ep = Projfs.hydrate_ep pf in
        ( !completed,
          !failed,
          Svc.rejected ep,
          Svc.shed ep,
          Svc.hwm ep,
          Histogram.percentile lat 99.0 ))
  in
  { policy_name = policy_name policy;
    clients;
    capacity;
    completed;
    failed;
    rejected;
    shed;
    hwm;
    p99;
    makespan = stats.Runstats.makespan;
    goodput = ops_per_mcycle stats completed }

(* ------------------------------------------------------------------ *)

let run ~quick ~seed =
  let o = measure_open ~quick ~seed in
  let a =
    Tablefmt.create
      ~title:
        "E23a: cold (placeholder fill over the wire) vs warm (name-cache \
         hit) open+read"
      ~columns:
        [ ("pass", Tablefmt.Left);
          ("files", Tablefmt.Right);
          ("p50 (cycles)", Tablefmt.Right);
          ("p99 (cycles)", Tablefmt.Right) ]
  in
  Tablefmt.add_row a
    [ "cold"; string_of_int o.files; string_of_int o.cold_p50;
      string_of_int o.cold_p99 ];
  Tablefmt.add_row a
    [ "warm"; string_of_int o.files; string_of_int o.warm_p50;
      string_of_int o.warm_p99 ];
  Tablefmt.add_row a
    [ "cold/warm p50"; "";
      Printf.sprintf "%.1fx"
        (float_of_int o.cold_p50 /. float_of_int (max 1 o.warm_p50));
      "" ];
  Tablefmt.add_row a
    [ "hydrations"; string_of_int o.hydrations; ""; "" ];
  Tablefmt.add_row a
    [ "name-cache hits/misses";
      Printf.sprintf "%d/%d" o.nc_hits o.nc_misses; ""; "" ];
  let b =
    Tablefmt.create
      ~title:
        "E23b: hydration storm (concurrent cold readers, capacity-8 \
         hydration inbox, 2 workers)"
      ~columns:
        [ ("policy", Tablefmt.Left);
          ("readers", Tablefmt.Right);
          ("completed", Tablefmt.Right);
          ("failed (EIO)", Tablefmt.Right);
          ("rejected", Tablefmt.Right);
          ("shed", Tablefmt.Right);
          ("queue hwm", Tablefmt.Right);
          ("p99 (cycles)", Tablefmt.Right);
          ("makespan", Tablefmt.Right);
          ("goodput/Mcyc", Tablefmt.Right) ]
  in
  List.iter
    (fun policy ->
      let s = measure_storm ~quick ~seed ~policy in
      Tablefmt.add_row b
        [ s.policy_name;
          string_of_int s.clients;
          string_of_int s.completed;
          string_of_int s.failed;
          string_of_int s.rejected;
          string_of_int s.shed;
          string_of_int s.hwm;
          string_of_int s.p99;
          string_of_int s.makespan;
          Tablefmt.cell_float s.goodput ])
    [ `Block; `Reject; `Shed_oldest ];
  [ a; b ]
