(* E24 — the replicated hot path under offered load: batching, leases,
   pipelining (the ROADMAP's "millions of users" item).

   The paper warns that a message-passing multicore OS lives or dies by
   its centralized services; "Research on Scalability of Operating
   Systems on Multicore Processors" (PAPERS.md) insists the proof is a
   throughput/latency curve against offered load, not an assertion.
   This experiment drives the cluster with the open-loop Zipf generator
   (lib/workload/zipf.ml — Poisson arrivals, 10⁶-key Zipf popularity,
   pipelined connections) and compares four postures of the hot path:

   - plain:   per-proposal replication kicks, all reads through the log
   - batched: Raft group commit (batch_window accumulation, wide
              AppendEntries) amortizing the replication round
   - leased:  leader leases serving reads locally, no quorum round
   - both

   Table 1 sweeps offered load at 3 replicas (read-mostly) and shows
   where each posture's throughput plateaus and its p99 blows up.
   Table 2 isolates the write path (write-only load past the plain
   ceiling) at 1/3/5 replicas: group commit must cut cycles/put >= 2x
   at 3 replicas.  Table 3 isolates the read path: leased reads vs
   leader-quorum reads at the same offered load. *)

open Exp_common
module Fiber = Chorus.Fiber
module Fabric = Chorus_net.Fabric
module Cluster = Chorus_cluster.Cluster
module Raft = Chorus_cluster.Raft
module Zipfload = Chorus_workload.Zipf

type point = {
  offered : int;
  replicas : int;
  batched : bool;
  leased : bool;
  submitted : int;
  completed : int;
  failed : int;
  throughput : float;  (* completed ops per Mcycle *)
  cycles_per_op : int;  (* inverse throughput *)
  p50 : int;
  p99 : int;
  get_p50 : int;
  get_p99 : int;
  put_p50 : int;
  put_p99 : int;
  appends : int;  (* AppendEntries RPCs sent, all leaders *)
  group_commits : int;
  leased_reads : int;
  lease_denied : int;
}

let raft_totals c ~nshards =
  let appends = ref 0
  and commits = ref 0
  and leased = ref 0
  and denied = ref 0 in
  List.iter
    (fun addr ->
      for shard = 0 to nshards - 1 do
        match Cluster.raft_of c ~node:addr ~shard with
        | None -> ()
        | Some r ->
          appends := !appends + Raft.appends_sent r;
          commits := !commits + Raft.group_commits r;
          leased := !leased + Raft.leased_reads r;
          denied := !denied + Raft.lease_denied r
      done)
    (Cluster.addrs c);
  (!appends, !commits, !leased, !denied)

(* One measured point: a fresh cluster + generator per posture so no
   state leaks between postures; everything below the offered load is
   identical across the four. *)
let run_point ?nclients ?(depth = 8) ?duration ?(call_timeout = 60_000)
    ?propose_timeout ?(fabric_latency = 5_000) ~quick ~seed ~replicas
    ~batched ~leased ~offered ~read_fraction () =
  let nshards = 4 in
  let rcfg =
    { (Raft.default_config ~seed) with
      batch_window = (if batched then 10_000 else 0);
      max_append = (if batched then 128 else 16);
      lease = leased }
  in
  let rcfg =
    match propose_timeout with
    | None -> rcfg
    | Some t -> { rcfg with propose_timeout = t }
  in
  (* a slow fabric must not starve raft's own RPC budget *)
  let rcfg =
    if 3 * fabric_latency <= rcfg.Raft.rpc_timeout then rcfg
    else { rcfg with rpc_timeout = 8 * fabric_latency }
  in
  let nclients =
    match nclients with Some n -> n | None -> pick ~quick 8 48
  in
  let duration =
    match duration with Some d -> d | None -> pick ~quick 600_000 3_000_000
  in
  let wcfg =
    { (Zipfload.default_config ~seed:(seed + 11)) with
      Zipfload.nkeys = pick ~quick 100_000 1_000_000;
      nclients;
      depth;
      offered;
      duration;
      read_fraction;
      call_timeout }
  in
  let (res, appends, commits, leased_n, denied), _stats =
    run ~seed ~cores:64 (fun () ->
        let net =
          Fabric.create ~latency:fabric_latency ~loss:0.0 ~seed:(seed + 1) ()
        in
        let c =
          Cluster.create ~raft:rcfg ~nshards ~replication:replicas ~seed
            ~nnodes:replicas net
        in
        Cluster.start c;
        Fiber.sleep 1_000_000;  (* let elections settle *)
        let res =
          Zipfload.run wcfg ~fabric:net ~bootstrap:(Cluster.addrs c)
        in
        let totals = raft_totals c ~nshards in
        Cluster.stop c;
        let a, g, l, d = totals in
        (res, a, g, l, d))
  in
  { offered;
    replicas;
    batched;
    leased;
    submitted = res.Zipfload.submitted;
    completed = res.Zipfload.completed;
    failed = res.Zipfload.failed;
    throughput = res.Zipfload.throughput;
    cycles_per_op =
      (let ok = res.Zipfload.completed - res.Zipfload.failed in
       if ok = 0 then 0 else res.Zipfload.elapsed / ok);
    p50 = res.Zipfload.p50;
    p99 = res.Zipfload.p99;
    get_p50 = Chorus_util.Histogram.percentile res.Zipfload.lat_get 50.0;
    get_p99 = Chorus_util.Histogram.percentile res.Zipfload.lat_get 99.0;
    put_p50 = Chorus_util.Histogram.percentile res.Zipfload.lat_put 50.0;
    put_p99 = Chorus_util.Histogram.percentile res.Zipfload.lat_put 99.0;
    appends;
    group_commits = commits;
    leased_reads = leased_n;
    lease_denied = denied }

let posture_name ~batched ~leased =
  match (batched, leased) with
  | false, false -> "plain"
  | true, false -> "batched"
  | false, true -> "leased"
  | true, true -> "batched+leased"

let offered_sweep ~quick =
  if quick then [ 300; 1200 ] else [ 200; 600; 1800; 4000 ]

(* The write table must drive BOTH postures past their replication
   ceilings or cycles/put just reads back the offered load; and it runs
   on a slow fabric (20k-cycle one-way latency — the fsync/WAN regime
   group commit exists for), where a 16-entry round costs ~2.8k
   cycles/entry but a 128-entry round ~350.  At that depth of queueing
   the client call timeout and the server propose timeout must both
   exceed the queueing delay, or timeout/retry churn — not the
   replication path — sets the measured ceiling. *)
let write_loads ~quick = pick ~quick 16_000 16_000

let run ~quick ~seed =
  let sweep =
    Tablefmt.create
      ~title:
        "E24: throughput and p99 vs offered load (3 replicas, 4 shards, \
         90% reads, Zipf theta 0.99)"
      ~columns:
        [ ("offered ops/Mc", Tablefmt.Right);
          ("posture", Tablefmt.Left);
          ("done", Tablefmt.Right);
          ("fail", Tablefmt.Right);
          ("tput ops/Mc", Tablefmt.Right);
          ("p50", Tablefmt.Right);
          ("p99", Tablefmt.Right);
          ("leased reads", Tablefmt.Right);
          ("group commits", Tablefmt.Right) ]
  in
  List.iter
    (fun offered ->
      List.iter
        (fun (batched, leased) ->
          let p =
            run_point ~quick ~seed ~replicas:3 ~batched ~leased ~offered
              ~read_fraction:0.9 ()
          in
          Tablefmt.add_row sweep
            [ string_of_int offered;
              posture_name ~batched ~leased;
              string_of_int p.completed;
              string_of_int p.failed;
              Printf.sprintf "%.0f" p.throughput;
              string_of_int p.p50;
              string_of_int p.p99;
              string_of_int p.leased_reads;
              string_of_int p.group_commits ])
        [ (false, false); (true, false); (false, true); (true, true) ])
    (offered_sweep ~quick);
  let writes =
    Tablefmt.create
      ~title:
        "E24: write path at saturating load (write-only) — group commit \
         vs per-proposal replication"
      ~columns:
        [ ("replicas", Tablefmt.Right);
          ("posture", Tablefmt.Left);
          ("done", Tablefmt.Right);
          ("cycles/put", Tablefmt.Right);
          ("put p99", Tablefmt.Right);
          ("appends", Tablefmt.Right);
          ("entries/append", Tablefmt.Right) ]
  in
  List.iter
    (fun replicas ->
      List.iter
        (fun batched ->
          let p =
            run_point ~quick ~seed ~replicas ~batched ~leased:false
              ~offered:(write_loads ~quick) ~read_fraction:0.0
              ~nclients:(pick ~quick 24 64) ~depth:16
              ~duration:(pick ~quick 600_000 1_500_000)
              ~call_timeout:800_000 ~propose_timeout:600_000
              ~fabric_latency:20_000 ()
          in
          Tablefmt.add_row writes
            [ string_of_int replicas;
              posture_name ~batched ~leased:false;
              string_of_int p.completed;
              string_of_int p.cycles_per_op;
              string_of_int p.put_p99;
              string_of_int p.appends;
              Printf.sprintf "%.1f"
                (float_of_int p.completed /. float_of_int (max 1 p.appends)) ])
        [ false; true ])
    (if quick then [ 3 ] else [ 1; 3; 5 ]);
  let readpath =
    Tablefmt.create
      ~title:
        "E24: read path — leader leases vs through-the-log quorum reads \
         (3 replicas, 95% reads)"
      ~columns:
        [ ("posture", Tablefmt.Left);
          ("done", Tablefmt.Right);
          ("tput ops/Mc", Tablefmt.Right);
          ("get p50", Tablefmt.Right);
          ("get p99", Tablefmt.Right);
          ("leased reads", Tablefmt.Right);
          ("lease denied", Tablefmt.Right) ]
  in
  List.iter
    (fun leased ->
      let p =
        run_point ~quick ~seed ~replicas:3 ~batched:true ~leased
          ~offered:(pick ~quick 300 800) ~read_fraction:0.95 ()
      in
      Tablefmt.add_row readpath
        [ posture_name ~batched:true ~leased;
          string_of_int p.completed;
          Printf.sprintf "%.0f" p.throughput;
          string_of_int p.get_p50;
          string_of_int p.get_p99;
          string_of_int p.leased_reads;
          string_of_int p.lease_denied ])
    [ false; true ];
  [ sweep; writes; readpath ]
