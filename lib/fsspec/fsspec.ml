type err =
  | Enoent
  | Eexist
  | Enotdir
  | Eisdir
  | Enotempty
  | Ebadf
  | Enospc
  | Einval
  | Eio

type kind = File | Dir

type stat = { kind : kind; size : int; blocks : int }

type fd = int

module type S = sig
  type t

  val mkdir : t -> string -> (unit, err) result

  val create : t -> string -> (unit, err) result

  val open_ : t -> string -> (fd, err) result

  val close : t -> fd -> (unit, err) result

  val read : t -> fd -> off:int -> len:int -> (string, err) result

  val write : t -> fd -> off:int -> string -> (int, err) result

  val stat : t -> string -> (stat, err) result

  val unlink : t -> string -> (unit, err) result

  val rename : t -> string -> string -> (unit, err) result

  val readdir : t -> string -> (string list, err) result
end

let err_to_string = function
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Enotempty -> "ENOTEMPTY"
  | Ebadf -> "EBADF"
  | Enospc -> "ENOSPC"
  | Einval -> "EINVAL"
  | Eio -> "EIO"

let split_path p =
  if String.length p = 0 || p.[0] <> '/' then Error Einval
  else begin
    let parts = String.split_on_char '/' p in
    (* leading '/' yields an empty first component; a trailing '/' an
       empty last one, which we tolerate for directories *)
    let rec clean = function
      | [] -> Ok []
      | [ "" ] -> Ok []
      | "" :: _ -> Error Einval
      | c :: rest -> (
        match clean rest with Ok tl -> Ok (c :: tl) | Error e -> Error e)
    in
    match parts with
    | "" :: rest -> clean rest
    | _ -> Error Einval
  end

(* [dst] strictly inside [src]? compares component lists *)
let path_inside ~src ~dst =
  match (split_path src, split_path dst) with
  | Ok s, Ok d ->
    let rec prefix = function
      | [], _ -> true
      | _, [] -> false
      | a :: s', b :: d' -> a = b && prefix (s', d')
    in
    prefix (s, d)
  | _ -> false

let block_size = 4096
