(** Filesystem interface shared by the message-passing kernel and the
    lock-based baseline.

    Both kernels expose exactly these operations with exactly these
    semantics, so workloads drive either through one code path and
    tests can check both against the same reference model.  Handles
    ([fd]) are per-client small integers; path syntax is absolute,
    ['/']-separated. *)

type err =
  | Enoent  (** path component missing *)
  | Eexist  (** create/mkdir target exists *)
  | Enotdir  (** intermediate component is a file *)
  | Eisdir  (** file operation on a directory *)
  | Enotempty  (** unlink of a non-empty directory *)
  | Ebadf  (** stale or invalid handle *)
  | Enospc  (** out of blocks or inodes *)
  | Einval
  | Eio  (** remote fetch / hydration failed (projected namespaces) *)

type kind = File | Dir

type stat = { kind : kind; size : int; blocks : int }

type fd = int

module type S = sig
  type t
  (** One client's view of a mounted filesystem. *)

  val mkdir : t -> string -> (unit, err) result

  val create : t -> string -> (unit, err) result
  (** Create an empty regular file. *)

  val open_ : t -> string -> (fd, err) result
  (** Open an existing regular file. *)

  val close : t -> fd -> (unit, err) result

  val read : t -> fd -> off:int -> len:int -> (string, err) result
  (** Short reads at EOF; empty string beyond it. *)

  val write : t -> fd -> off:int -> string -> (int, err) result
  (** Returns bytes written; extends the file as needed. *)

  val stat : t -> string -> (stat, err) result

  val unlink : t -> string -> (unit, err) result
  (** Removes a file, or an empty directory. *)

  val rename : t -> string -> string -> (unit, err) result
  (** [rename t src dst] moves a file or directory; fails [Eexist]
      when [dst] exists, [Einval] when [dst] would be inside [src]. *)

  val readdir : t -> string -> (string list, err) result
  (** Entry names, sorted. *)
end

val err_to_string : err -> string

val split_path : string -> (string list, err) result
(** ["/a/b"] -> [Ok ["a"; "b"]]; rejects relative and empty-component
    paths.  [["/"]] is [Ok []]. *)

val path_inside : src:string -> dst:string -> bool
(** Is [dst] equal to or inside [src]?  (The rename cycle check.) *)

val block_size : int
(** Bytes per block, shared by both kernels' storage layers. *)
