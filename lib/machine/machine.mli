(** A simulated multicore machine: a topology plus a cycle cost model.

    This is the substrate substituted for the paper's hypothetical
    hundreds-of-cores chips (see DESIGN.md, substitution table).  It is
    purely descriptive — the runtime engine does the accounting. *)

type t

val make : Topology.t -> Cost.t -> t

val topology : t -> Topology.t

val costs : t -> Cost.t

val cores : t -> int

val hops : t -> Topology.core -> Topology.core -> int

(** {1 Derived message costs} *)

val message_latency : t -> src:Topology.core -> dst:Topology.core ->
  words:int -> int
(** End-to-end cycles for one message of [words] payload words:
    inject + hops * per_hop + words * per_word + receive.  A message to
    the local core still pays inject + receive (queue traversal). *)

val transfer_latency : t -> owner:Topology.core -> requester:Topology.core ->
  int
(** Cycles to move a cache line from [owner] to [requester]
    (miss + per-hop coherence cost); equals [cache_miss] when local. *)

(** {1 Presets} *)

val smp : cores:int -> t
(** Small shared-bus SMP (crossbar, software messages): the
    four-to-128-core machines the paper says we already know how to
    handle. *)

val mesh : cores:int -> t
(** Square-ish 2D mesh with software messages; the "hundreds of cores"
    regime on today's coherence hardware. *)

val mesh_hw : cores:int -> t
(** Same mesh with native hardware message support (paper Section 4's
    supposition). *)

val hierarchy : dies:int -> clusters:int -> cores_per_cluster:int -> t
(** Multi-die package with software messages. *)

val describe : t -> string

val facts : t -> (string * int) list
(** Introspection hook for state snapshots: the machine's shape and
    headline cost constants as named integers (cores, topology
    diameter, message/coherence costs), in a fixed order. *)
