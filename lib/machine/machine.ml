type t = { topology : Topology.t; costs : Cost.t }

let make topology costs = { topology; costs }

let topology t = t.topology

let costs t = t.costs

let cores t = Topology.cores t.topology

let hops t a b = Topology.hops t.topology a b

let message_latency t ~src ~dst ~words =
  let c = t.costs in
  let h = hops t src dst in
  c.Cost.msg_inject + (h * c.Cost.msg_per_hop)
  + (words * c.Cost.msg_per_word)
  + c.Cost.msg_receive

let transfer_latency t ~owner ~requester =
  let c = t.costs in
  if owner = requester then c.Cost.cache_hit
  else c.Cost.cache_miss + (hops t owner requester * c.Cost.coherence_per_hop)

(* Exact w*h = cores factorization with w as close to sqrt as possible,
   so power-of-two sweeps get the expected core counts. *)
let mesh_shape cores =
  let rec widest w = if w >= 1 && cores mod w = 0 then w else widest (w - 1) in
  let w = widest (int_of_float (sqrt (float_of_int cores))) in
  Topology.Mesh (w, cores / w)

let smp ~cores =
  let shape = if cores = 1 then Topology.Single else Topology.Crossbar cores in
  make (Topology.make shape) Cost.software_messages

let mesh ~cores =
  let shape = if cores = 1 then Topology.Single else mesh_shape cores in
  make (Topology.make shape) Cost.software_messages

let mesh_hw ~cores =
  let shape = if cores = 1 then Topology.Single else mesh_shape cores in
  make (Topology.make shape) Cost.hardware_messages

let hierarchy ~dies ~clusters ~cores_per_cluster =
  make
    (Topology.make (Topology.Hierarchy (dies, clusters, cores_per_cluster)))
    Cost.software_messages

let describe t =
  Printf.sprintf "%s (%d cores)" (Topology.to_string t.topology) (cores t)

let facts t =
  let c = t.costs in
  [ ("cores", cores t);
    ("diameter", Topology.diameter t.topology);
    ("msg_inject", c.Cost.msg_inject);
    ("msg_per_hop", c.Cost.msg_per_hop);
    ("msg_per_word", c.Cost.msg_per_word);
    ("msg_receive", c.Cost.msg_receive);
    ("cache_miss", c.Cost.cache_miss);
    ("coherence_per_hop", c.Cost.coherence_per_hop) ]
