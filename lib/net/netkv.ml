module Fiber = Chorus.Fiber
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span

(* Wire format: requests and replies are tiny strings; first byte is
   the opcode.  (Payload strings keep the fabric honest about sizes.) *)

let encode_put k v = Printf.sprintf "P%s\x00%s" k v

let encode_get k = "G" ^ k

let encode_repl k v = Printf.sprintf "R%s\x00%s" k v

let decode msg =
  if String.length msg = 0 then `Bad
  else begin
    let body = String.sub msg 1 (String.length msg - 1) in
    match msg.[0] with
    | 'G' -> `Get body
    | 'P' | 'R' -> (
      match String.index_opt body '\x00' with
      | None -> `Bad
      | Some i ->
        let k = String.sub body 0 i in
        let v = String.sub body (i + 1) (String.length body - i - 1) in
        if msg.[0] = 'P' then `Put (k, v) else `Repl (k, v))
    | _ -> `Bad
  end

type server = {
  table : (string, string) Hashtbl.t;
  mutable puts : int;
  mutable gets : int;
  mutable repls : int;
}

let start_server ?backup stack ~port =
  let s = { table = Hashtbl.create 64; puts = 0; gets = 0; repls = 0 } in
  ignore
    (Fiber.spawn
       ~label:(Printf.sprintf "kv-server-%d" (Stack.addr stack))
       ~daemon:true
       (fun () ->
         Stack.serve stack ~port (fun ~src:_ msg ->
             match decode msg with
             | `Get k -> (
               s.gets <- s.gets + 1;
               Fiber.work 150;
               match Hashtbl.find_opt s.table k with
               | Some v -> "F" ^ v
               | None -> "M")
             | `Put (k, v) -> (
               s.puts <- s.puts + 1;
               Fiber.work 200;
               Hashtbl.replace s.table k v;
               match backup with
               | None -> "A"
               | Some peer -> (
                 (* synchronous replication before acking the client *)
                 match
                   Stack.call stack ~dst:peer ~port (encode_repl k v)
                 with
                 | Some "A" -> "A"
                 | Some _ | None -> "E"))
             | `Repl (k, v) ->
               s.repls <- s.repls + 1;
               Fiber.work 200;
               Hashtbl.replace s.table k v;
               "A"
             | `Bad -> "E")));
  s

let puts_served s = s.puts

let gets_served s = s.gets

let replications s = s.repls

type client = {
  stack : Stack.t;
  server_addr : int;
  port : int;
  put_h : Metrics.histogram;
  get_h : Metrics.histogram;
}

let client stack ~server_addr ~port =
  { stack; server_addr; port;
    put_h = Metrics.histogram ~subsystem:"netkv" "put";
    get_h = Metrics.histogram ~subsystem:"netkv" "get" }

let put c k v =
  Span.timed ~subsystem:"netkv" ~name:"put" c.put_h @@ fun () ->
  match
    Stack.call c.stack ~dst:c.server_addr ~port:c.port (encode_put k v)
  with
  | Some "A" -> true
  | Some _ | None -> false

let get c k =
  Span.timed ~subsystem:"netkv" ~name:"get" c.get_h @@ fun () ->
  match Stack.call c.stack ~dst:c.server_addr ~port:c.port (encode_get k) with
  | None -> `Net_fail
  | Some reply ->
    if String.length reply >= 1 && reply.[0] = 'F' then
      `Ok (Some (String.sub reply 1 (String.length reply - 1)))
    else `Ok None
