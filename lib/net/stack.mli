(** Per-node protocol stack: port demultiplexing plus a reliable
    request/response protocol over the lossy {!Fabric}.

    Structure follows the paper's model: the demux is an autonomous
    fiber that owns the NIC's receive channel and routes frames to
    per-port channels; the reliable layer is ordinary client code built
    from [choose] — a retransmission is literally a timeout arm firing.
    Duplicate suppression on the server side uses a last-seq cache per
    peer, so retried requests execute exactly once. *)

type t

val create : Fabric.t -> Fabric.nic -> t
(** Spawn the demux fiber for this NIC. *)

val addr : t -> int

val listen : t -> port:int -> Fabric.frame Chorus.Chan.t
(** The channel of frames arriving on [port].  One listener per port;
    raises [Invalid_argument] on a duplicate. *)

val send : t -> dst:int -> port:int -> ?seq:int -> string -> unit
(** Fire-and-forget datagram. *)

(** {1 Reliable request/response} *)

type rel_stats = {
  mutable calls : int;
  mutable retransmissions : int;
  mutable failures : int;  (** gave up after max attempts *)
  mutable duplicates_served : int;  (** server-side replays suppressed *)
  mutable dedup_evictions : int;
      (** (peer, seq) entries dropped from the bounded
          duplicate-suppression caches (FIFO insertion order) *)
}

val rel_stats : t -> rel_stats

val call :
  t -> dst:int -> port:int -> ?timeout:int -> ?attempts:int -> string ->
  string option
(** [call t ~dst ~port req] sends the request and waits for the
    matching reply, retransmitting up to [attempts] times (default 5).
    The first attempt waits [timeout] cycles (default 4x the wire round
    trip heuristic: 50k); each retry backs off exponentially (2x per
    retry, bounded at 8x the base) with a seed-derived +-12.5% jitter
    so concurrent callers de-synchronize.  Every retransmission is also
    counted in the run's {!Chorus.Runstats.t.retries}.  [None] when
    every attempt timed out. *)

val serve :
  ?config:Chorus_svc.Svc.config -> ?dedup_capacity:int -> t -> port:int ->
  (src:int -> string -> string) -> unit
(** Serve requests on [port] forever (run in a daemon fiber):
    deduplicates retransmitted requests by (peer, seq), replaying the
    cached reply instead of re-executing the handler.  The dedup cache
    holds at most [dedup_capacity] entries (default 4096), evicting in
    FIFO insertion order and counting evictions in
    {!rel_stats.dedup_evictions}.

    The port's frame queue runs through a {!Chorus_svc.Svc} endpoint:
    [config] sets its overload policy, applied by the demux fiber on
    enqueue.  A frame dropped by [`Reject] or [`Shed_oldest] looks
    exactly like wire loss to the remote caller, whose retransmission
    recovers it.  [`Block] with a capacity cannot bound the port
    channel (it is attached, not created, by the endpoint) — it
    behaves like the unbounded default. *)

val serve_async :
  ?config:Chorus_svc.Svc.config -> ?dedup_capacity:int -> t -> port:int ->
  (src:int -> string -> reply:(string -> unit) -> unit) -> unit
(** Like {!serve} but the handler answers through the [reply] callback
    instead of a return value, so it may hand slow requests to worker
    fibers and keep the port loop responsive.  The handler itself runs
    in the serving fiber and must not block.  Duplicate suppression
    covers in-flight requests (retransmissions of an unanswered request
    are swallowed; the eventual reply answers them) and, unlike
    {!serve}, survives server restarts: the (peer, seq) cache and the
    port channel live on the stack, so calling [serve_async] again on
    the same port after the serving fiber died resumes the same
    endpoint with exactly-once semantics intact.  [config] and
    [dedup_capacity] as in {!serve}; the cache capacity is fixed by
    the first server incarnation on the port. *)
