module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rng = Chorus_util.Rng

type frame = {
  src : int;
  dst : int;
  port : int;
  seq : int;
  payload : string;
}

type nic = {
  naddr : int;
  tx : frame Chan.t;  (** to the driver fiber *)
  rx_ch : frame Chan.t;
}

type fault_stats = {
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
}

(* A directed per-(src,dst) fault override.  Gray failures are
   asymmetric by nature — a link can be dead or slow in one direction
   while its reverse stays healthy — so overrides are keyed on the
   ordered pair and layered over the global knobs: a frame whose link
   has an override consults it first and falls through to the global
   knobs only if no link fault fires. *)
type link_faults = {
  mutable lk_partition : bool;
  mutable lk_loss : float;
  mutable lk_delay : float;
  mutable lk_delay_cycles : int;
}

type link_stats = {
  mutable partitioned : int;
  mutable link_dropped : int;
  mutable link_delayed : int;
}

type t = {
  latency : int;
  mutable loss : float;
  mutable dup : float;
  mutable reorder : float;
  mutable delay : float;
  mutable delay_cycles : int;
  fstats : fault_stats;
  links : (int * int, link_faults) Hashtbl.t;
      (** directed (src,dst) fault overrides; absent = no override *)
  lstats : link_stats;
  rng : Rng.t;
  wire : (int * frame * nic) Chan.t;
      (** (deliver_at, frame, destination): drained by the wire pump *)
  mutable nics : nic list;  (** reversed attach order *)
  mutable next_addr : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
}

let frame_words f = 6 + ((String.length f.payload + 7) / 8)

let deliver t dst f =
  t.delivered <- t.delivered + 1;
  if not (Chan.is_closed dst.rx_ch) then
    Chan.send ~words:(frame_words f) dst.rx_ch f

(* The wire pump carries frames in flight: it sleeps until each
   frame's arrival time and posts it on the destination's rx channel
   (the receive interrupt). *)
let wire_pump t =
  let rec loop () =
    let deliver_at, f, dst = Chan.recv t.wire in
    let now = Fiber.now () in
    if deliver_at > now then Fiber.sleep (deliver_at - now);
    deliver t dst f;
    loop ()
  in
  loop ()

(* Faulted frames (duplicates, reordered, delayed) bypass the FIFO
   wire pump: each rides its own one-shot in-flight fiber, so frames
   sent after it can overtake — which is the whole point. *)
let deliver_at t dst f at =
  ignore
    (Fiber.spawn ~label:"in-flight" ~daemon:true (fun () ->
         let now = Fiber.now () in
         if at > now then Fiber.sleep (at - now);
         deliver t dst f))

let check_knob name p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg (Printf.sprintf "Fabric: %s must be in [0, 1)" name)

let create ?(latency = 5_000) ?(loss = 0.0) ?(dup = 0.0) ?(reorder = 0.0)
    ?(delay = 0.0) ?delay_cycles ?(seed = 17) () =
  check_knob "loss" loss;
  check_knob "dup" dup;
  check_knob "reorder" reorder;
  check_knob "delay" delay;
  let t =
    { latency; loss; dup; reorder; delay;
      delay_cycles =
        (match delay_cycles with Some c -> c | None -> 10 * latency);
      fstats = { duplicated = 0; reordered = 0; delayed = 0 };
      links = Hashtbl.create 8;
      lstats = { partitioned = 0; link_dropped = 0; link_delayed = 0 };
      rng = Rng.make seed; wire = Chan.unbounded ~label:"wire" ();
      nics = []; next_addr = 0; sent = 0; dropped = 0; delivered = 0 }
  in
  ignore (Fiber.spawn ~label:"wire-pump" ~daemon:true (fun () -> wire_pump t));
  t

let set_faults t ?loss ?dup ?reorder ?delay ?delay_cycles () =
  let app name field v =
    match v with
    | None -> ()
    | Some p ->
      check_knob name p;
      field p
  in
  app "loss" (fun p -> t.loss <- p) loss;
  app "dup" (fun p -> t.dup <- p) dup;
  app "reorder" (fun p -> t.reorder <- p) reorder;
  app "delay" (fun p -> t.delay <- p) delay;
  match delay_cycles with Some c -> t.delay_cycles <- c | None -> ()

let set_link_faults t ~src ~dst ?partition ?loss ?delay ?delay_cycles () =
  let lk =
    match Hashtbl.find_opt t.links (src, dst) with
    | Some lk -> lk
    | None ->
      let lk =
        { lk_partition = false; lk_loss = 0.0; lk_delay = 0.0;
          lk_delay_cycles = 10 * t.latency }
      in
      Hashtbl.replace t.links (src, dst) lk;
      lk
  in
  (match partition with Some b -> lk.lk_partition <- b | None -> ());
  (match loss with
  | Some p ->
    check_knob "link loss" p;
    lk.lk_loss <- p
  | None -> ());
  (match delay with
  | Some p ->
    check_knob "link delay" p;
    lk.lk_delay <- p
  | None -> ());
  match delay_cycles with Some c -> lk.lk_delay_cycles <- c | None -> ()

let clear_link_faults t ~src ~dst = Hashtbl.remove t.links (src, dst)

let link_stats t = t.lstats

let find_nic t addr = List.find_opt (fun n -> n.naddr = addr) t.nics

(* The transmit driver: one fiber per NIC, straight-line code, no
   locks (paper Section 4's driver pattern).

   Determinism note: the loss draw is unconditional (it always was);
   the dup/reorder/delay draws happen only while their knob is
   non-zero, and the per-link override lookup is a hash probe with no
   RNG (link loss/delay draw only when their knob is non-zero on that
   link), so with every knob off and no link overrides the RNG stream
   — and therefore the whole run — is byte-identical to the pre-knob
   fabric.

   A frame whose link fault fires (partition drop, link loss, link
   delay) is fully claimed by the link layer: the global
   delay/reorder/dup knobs are skipped for it.  Frames on an overridden
   link whose link draws all miss fall through to the global knobs
   unchanged. *)
let driver t nic =
  let fires p = p > 0.0 && Rng.bernoulli t.rng p in
  let rec loop () =
    let f = Chan.recv nic.tx in
    (* serialization/DMA time proportional to the frame *)
    Fiber.work (40 + (frame_words f * 2));
    t.sent <- t.sent + 1;
    (if Rng.bernoulli t.rng t.loss then t.dropped <- t.dropped + 1
     else
       match find_nic t f.dst with
       | None -> t.dropped <- t.dropped + 1
       | Some dst ->
         let base = Fiber.now () + t.latency in
         let global () =
           (if fires t.delay then begin
              t.fstats.delayed <- t.fstats.delayed + 1;
              deliver_at t dst f (base + t.delay_cycles)
            end
            else if fires t.reorder then begin
              t.fstats.reordered <- t.fstats.reordered + 1;
              deliver_at t dst f (base + t.latency)
            end
            else Chan.send ~words:2 t.wire (base, f, dst));
           if fires t.dup then begin
             t.fstats.duplicated <- t.fstats.duplicated + 1;
             deliver_at t dst f (base + (t.latency / 2))
           end
         in
         (match Hashtbl.find_opt t.links (nic.naddr, f.dst) with
         | Some lk when lk.lk_partition ->
           t.lstats.partitioned <- t.lstats.partitioned + 1;
           t.dropped <- t.dropped + 1
         | Some lk when fires lk.lk_loss ->
           t.lstats.link_dropped <- t.lstats.link_dropped + 1;
           t.dropped <- t.dropped + 1
         | Some lk when fires lk.lk_delay ->
           t.lstats.link_delayed <- t.lstats.link_delayed + 1;
           deliver_at t dst f (base + lk.lk_delay_cycles)
         | Some _ | None -> global ()));
    loop ()
  in
  loop ()

let attach t ?label () =
  let naddr = t.next_addr in
  t.next_addr <- naddr + 1;
  let label =
    match label with Some l -> l | None -> Printf.sprintf "nic-%d" naddr
  in
  let nic =
    { naddr;
      tx = Chan.unbounded ~label:(label ^ "-tx") ();
      rx_ch = Chan.unbounded ~label:(label ^ "-rx") () }
  in
  t.nics <- nic :: t.nics;
  ignore
    (Fiber.spawn ~label:(label ^ "-driver") ~daemon:true (fun () ->
         driver t nic));
  nic

let addr nic = nic.naddr

let transmit nic f =
  Chan.send ~words:(frame_words f) nic.tx { f with src = nic.naddr }

let rx nic = nic.rx_ch

let frames_sent t = t.sent

let frames_dropped t = t.dropped

let frames_delivered t = t.delivered

let fault_stats t = t.fstats
