(** A lossy network fabric connecting simulated NICs.

    The paper remarks that its proposed kernel "is structurally more
    similar to a client/server network application … than to either
    traditional kernel design", and that verification can borrow
    "techniques developed for networking software".  This substrate
    makes that concrete: nodes exchange frames over a fabric with
    latency and (optionally) loss, each NIC's transmit side is a
    single-fiber driver exactly like {!Chorus_kernel.Blockdev}, and the
    receive side delivers frames as messages on a channel — the
    "interrupt" is just a recv.

    Frames are typed records (no byte-level encoding): the simulation
    cares about counts, sizes and ordering, not wire formats.

    {2 Fault injection}

    Beyond uniform loss the fabric can deterministically duplicate,
    reorder and delay frames — the full unreliable-datagram fault
    space the reliable layer above ({!Stack}) must absorb.  All knobs
    draw from the fabric's seeded RNG {e only when enabled}, so a run
    with every knob at zero is byte-identical to one on a fabric
    without the knobs, and the chaos engine can open and close fault
    windows mid-run ({!set_faults}) without perturbing the stream
    outside them. *)

type frame = {
  src : int;
  dst : int;
  port : int;
  seq : int;
  payload : string;
}

type t

type nic

val create :
  ?latency:int -> ?loss:float -> ?dup:float -> ?reorder:float ->
  ?delay:float -> ?delay_cycles:int -> ?seed:int -> unit -> t
(** [create ()] builds a fabric; [latency] is the one-way frame delay
    in cycles (default 5000 — an on-package interconnect between
    nodes), [loss] a uniform drop probability (default 0).  [dup]
    delivers an extra copy of the frame half a latency late; [reorder]
    holds the frame one extra latency so frames sent after it overtake
    it; [delay] holds the frame [delay_cycles] (default 10x latency).
    All probabilities default to 0 (off). *)

val set_faults :
  t -> ?loss:float -> ?dup:float -> ?reorder:float -> ?delay:float ->
  ?delay_cycles:int -> unit -> unit
(** Adjust the fault knobs mid-run — the chaos engine's fault-window
    switch.  {b Every omitted knob keeps its current value}: passing
    only [~loss:0.10] leaves [dup]/[reorder]/[delay]/[delay_cycles]
    exactly as they were, so closing a window must name each knob it
    opened ([set_faults t ~loss:0.0 ()] closes only the loss window).
    [set_faults t ()] is a no-op. *)

val set_link_faults :
  t -> src:int -> dst:int -> ?partition:bool -> ?loss:float ->
  ?delay:float -> ?delay_cycles:int -> unit -> unit
(** Install or adjust a {e directed} fault override on the (src,dst)
    link — the gray-failure primitive: a link can drop or crawl in one
    direction while its reverse stays healthy.  [partition] drops every
    frame on the link unconditionally (no RNG draw); [loss] drops each
    frame with the given probability; [delay] holds each frame
    [delay_cycles] (default 10x fabric latency).  Omitted knobs keep
    their current value, mirroring {!set_faults}.  A frame claimed by a
    link fault skips the global knobs; frames on an overridden link
    whose draws all miss fall through to the global knobs unchanged.
    Link knobs draw from the seeded RNG only when enabled, so a fabric
    with no overrides is byte-identical to one without this API. *)

val clear_link_faults : t -> src:int -> dst:int -> unit
(** Remove the (src,dst) override entirely: the link reverts to the
    global knobs alone. *)

val attach : t -> ?label:string -> unit -> nic
(** Add a node: spawns its transmit-driver fiber and returns the NIC.
    Addresses are assigned 0, 1, 2, … in attach order. *)

val addr : nic -> int

val transmit : nic -> frame -> unit
(** Queue a frame for transmission (never blocks; the driver fiber
    serializes the actual sends). The [src] field is overwritten with
    this NIC's address. *)

val rx : nic -> frame Chorus.Chan.t
(** The receive channel: every frame addressed to this NIC (and not
    lost) appears here in transmission order per sender — unless a
    fault knob duplicated, reordered or delayed it. *)

val frames_sent : t -> int

val frames_dropped : t -> int

val frames_delivered : t -> int

type fault_stats = {
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
}

val fault_stats : t -> fault_stats
(** Frames touched by each injection knob (loss is {!frames_dropped}).
    The reliable layer's view of the same faults is
    {!Stack.rel_stats}: a duplicated frame surfaces there as a
    [duplicates_served] replay, a reordered or delayed one as a
    retransmission if it outran the caller's timeout. *)

type link_stats = {
  mutable partitioned : int;  (** frames dropped by a link partition *)
  mutable link_dropped : int;  (** frames dropped by link loss *)
  mutable link_delayed : int;  (** frames held by link delay *)
}

val link_stats : t -> link_stats
(** Frames claimed by per-link overrides ({!set_link_faults}), summed
    across all links.  Partition and link-loss drops also count in
    {!frames_dropped}. *)
