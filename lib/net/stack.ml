module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rng = Chorus_util.Rng
module Svc = Chorus_svc.Svc

type rel_stats = {
  mutable calls : int;
  mutable retransmissions : int;
  mutable failures : int;
  mutable duplicates_served : int;
  mutable dedup_evictions : int;
}

(* Bounded (peer, seq) duplicate-suppression cache: FIFO in insertion
   order, so eviction is deterministic.  A re-[set] of a live key
   updates in place without renewing its position; an evicted key that
   returns is a fresh insertion.  The queue mirrors the table exactly:
   every key appears in it once. *)
module Dedup = struct
  type 'v t = {
    tbl : (int * int, 'v) Hashtbl.t;
    order : (int * int) Queue.t;
    cap : int;
    stats : rel_stats;
  }

  let create ~cap stats =
    { tbl = Hashtbl.create 32; order = Queue.create (); cap; stats }

  let find_opt d k = Hashtbl.find_opt d.tbl k

  let set d k v =
    if Hashtbl.mem d.tbl k then Hashtbl.replace d.tbl k v
    else begin
      if d.cap > 0 && Queue.length d.order >= d.cap then begin
        let victim = Queue.pop d.order in
        Hashtbl.remove d.tbl victim;
        d.stats.dedup_evictions <- d.stats.dedup_evictions + 1
      end;
      Queue.push k d.order;
      Hashtbl.replace d.tbl k v
    end
end

let default_dedup_capacity = 4096

type t = {
  fabric : Fabric.t;
  nic : Fabric.nic;
  ports : (int, Fabric.frame Chan.t) Hashtbl.t;
  port_svcs : (int, Fabric.frame Svc.cast) Hashtbl.t;
      (** ports whose listener is a service endpoint; the demux offers
          frames through the endpoint's overload policy *)
  pending : (int, string Chan.t) Hashtbl.t;
      (** outstanding reliable calls, by seq *)
  reply_demux_on : (int, unit) Hashtbl.t;
      (** reply ports whose demux fiber is running *)
  served : (int, string option Dedup.t) Hashtbl.t;
      (** per-port duplicate-suppression state for {!serve_async}:
          (peer, seq) -> None while in flight, Some reply once sent.
          Lives on the stack, not in the serve fiber, so a restarted
          server keeps exactly-once semantics across the crash. *)
  retry_rng : Rng.t;
      (** jitter for retransmission backoff; seeded from the NIC
          address so streams are deterministic and per-node *)
  stats : rel_stats;
  mutable next_seq : int;
}

let create fabric nic =
  let t =
    { fabric;
      nic;
      ports = Hashtbl.create 8;
      port_svcs = Hashtbl.create 8;
      pending = Hashtbl.create 8;
      reply_demux_on = Hashtbl.create 4;
      served = Hashtbl.create 4;
      retry_rng = Rng.make (0x57ac + (131 * Fabric.addr nic));
      stats =
        { calls = 0; retransmissions = 0; failures = 0;
          duplicates_served = 0; dedup_evictions = 0 };
      next_seq = 1 }
  in
  (* the demux fiber owns the NIC's rx channel *)
  ignore
    (Fiber.spawn
       ~label:(Printf.sprintf "demux-%d" (Fabric.addr nic))
       ~daemon:true
       (fun () ->
         let rec loop () =
           let f = Chan.recv (Fabric.rx nic) in
           (match Hashtbl.find_opt t.port_svcs f.Fabric.port with
           | Some svc ->
             (* a shed/rejected frame is indistinguishable from wire
                loss; the caller's retransmission recovers it *)
             ignore (Svc.offer ~words:4 svc f)
           | None -> (
             match Hashtbl.find_opt t.ports f.Fabric.port with
             | Some ch -> Chan.send ~words:4 ch f
             | None -> (* no listener: drop, like a closed port *) ()));
           loop ()
         in
         loop ()));
  t

let addr t = Fabric.addr t.nic

let listen t ~port =
  if Hashtbl.mem t.ports port then
    invalid_arg (Printf.sprintf "Stack.listen: port %d taken" port);
  let ch = Chan.unbounded ~label:(Printf.sprintf "port-%d" port) () in
  Hashtbl.replace t.ports port ch;
  ch

let send t ~dst ~port ?seq payload =
  let seq =
    match seq with
    | Some s -> s
    | None ->
      let s = t.next_seq in
      t.next_seq <- s + 1;
      s
  in
  Fabric.transmit t.nic { Fabric.src = 0; dst; port; seq; payload }

let rel_stats t = t.stats

(* Reply port convention: replies to a request on port p arrive on
   port p + 10000, tagged with the request's seq. *)
let reply_port port = port + 10_000

(* One demux fiber per reply port routes replies to the waiting
   caller's one-shot channel, so concurrent calls never steal each
   other's replies. *)
let ensure_reply_demux t port =
  let rport = reply_port port in
  if not (Hashtbl.mem t.reply_demux_on rport) then begin
    Hashtbl.replace t.reply_demux_on rport ();
    let replies = listen t ~port:rport in
    ignore
      (Fiber.spawn
         ~label:(Printf.sprintf "reply-demux-%d" rport)
         ~daemon:true
         (fun () ->
           let rec loop () =
             let f = Chan.recv replies in
             (match Hashtbl.find_opt t.pending f.Fabric.seq with
             | Some one_shot ->
               Hashtbl.remove t.pending f.Fabric.seq;
               Chan.send one_shot f.Fabric.payload
             | None -> (* duplicate reply to a completed call *) ());
             loop ()
           in
           loop ()))
  end

(* Retransmission waits back off exponentially (2x per retry, bounded
   at 8x the base) with a +-12.5% seed-derived jitter, so callers
   hammering a dead peer de-synchronize instead of retrying in
   lockstep.  The first attempt always waits exactly [timeout]: a run
   that never retransmits is cycle-identical to the fixed-interval
   protocol. *)
let retry_wait t ~base n =
  if n = 0 then base
  else begin
    let w = base * (1 lsl min n 3) in
    let j = w / 8 in
    (w - j) + Rng.int t.retry_rng ((2 * j) + 1)
  end

let call t ~dst ~port ?(timeout = 50_000) ?(attempts = 5) req =
  t.stats.calls <- t.stats.calls + 1;
  ensure_reply_demux t port;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let one_shot = Chan.buffered 1 in
  Hashtbl.replace t.pending seq one_shot;
  let rec attempt n =
    if n >= attempts then begin
      t.stats.failures <- t.stats.failures + 1;
      Hashtbl.remove t.pending seq;
      None
    end
    else begin
      if n > 0 then begin
        t.stats.retransmissions <- t.stats.retransmissions + 1;
        let c = Chorus.Engine.counters (Chorus.Engine.current ()) in
        c.Chorus.Engine.retries <- c.Chorus.Engine.retries + 1
      end;
      send t ~dst ~port ~seq req;
      Chan.choose
        [ Chan.recv_case one_shot (fun payload -> Some payload);
          Chan.after (retry_wait t ~base:timeout n) (fun () -> attempt (n + 1)) ]
    end
  in
  attempt 0

(* Wrap a port channel in a service endpoint and register it with the
   demux, which then enqueues through the endpoint's overload policy. *)
let attach_port_svc t ~port ?config requests =
  let svc =
    Svc.cast_attach ?config ~subsystem:"net"
      ~metric_name:(Printf.sprintf "port%d" port)
      ~label:(Printf.sprintf "port-%d" port)
      requests
  in
  Hashtbl.replace t.port_svcs port svc;
  svc

let serve_async ?config ?(dedup_capacity = default_dedup_capacity) t ~port
    handler =
  (* reuse the port channel when a previous server incarnation already
     registered it: a restarted service resumes the same endpoint *)
  let requests =
    match Hashtbl.find_opt t.ports port with
    | Some ch -> ch
    | None -> listen t ~port
  in
  let svc = attach_port_svc t ~port ?config requests in
  let seen =
    match Hashtbl.find_opt t.served port with
    | Some d -> d
    | None ->
      let d = Dedup.create ~cap:dedup_capacity t.stats in
      Hashtbl.replace t.served port d;
      d
  in
  Svc.serve_cast svc (fun f ->
      let key = (f.Fabric.src, f.Fabric.seq) in
      match Dedup.find_opt seen key with
      | Some (Some cached) ->
        (* completed earlier: replay the reply *)
        t.stats.duplicates_served <- t.stats.duplicates_served + 1;
        send t ~dst:f.Fabric.src ~port:(reply_port port) ~seq:f.Fabric.seq
          cached
      | Some None ->
        (* still in flight: the eventual reply will answer this
           retransmission too, so just swallow it *)
        t.stats.duplicates_served <- t.stats.duplicates_served + 1
      | None ->
        Dedup.set seen key None;
        let src = f.Fabric.src and seq = f.Fabric.seq in
        let reply r =
          match Dedup.find_opt seen key with
          | Some (Some _) -> ()  (* double reply: keep the first *)
          | Some None | None ->
            Dedup.set seen key (Some r);
            send t ~dst:src ~port:(reply_port port) ~seq r
        in
        handler ~src f.Fabric.payload ~reply)

let serve ?config ?(dedup_capacity = default_dedup_capacity) t ~port handler =
  let requests = listen t ~port in
  let svc = attach_port_svc t ~port ?config requests in
  (* (peer, seq) -> cached reply, for duplicate suppression *)
  let seen : string Dedup.t = Dedup.create ~cap:dedup_capacity t.stats in
  Svc.serve_cast svc (fun f ->
      let key = (f.Fabric.src, f.Fabric.seq) in
      let reply =
        match Dedup.find_opt seen key with
        | Some cached ->
          t.stats.duplicates_served <- t.stats.duplicates_served + 1;
          cached
        | None ->
          let r = handler ~src:f.Fabric.src f.Fabric.payload in
          Dedup.set seen key r;
          r
      in
      send t ~dst:f.Fabric.src ~port:(reply_port port) ~seq:f.Fabric.seq
        reply)
