(** A distributed key-value service over the lossy fabric.

    The paper observes its proposed kernel "is structurally more
    similar to a client/server network application or to a cluster
    environment than to either traditional kernel design"; this module
    closes the loop by building exactly such an application on the same
    primitives.  A primary node serves gets/puts; an optional backup
    receives synchronous replication of every put (primary replies to
    the client only after the backup acks), all over {!Stack.call}'s
    retransmitting request/response, so the whole thing tolerates frame
    loss end to end. *)

type server

val start_server :
  ?backup:int -> Stack.t -> port:int -> server
(** Serve on [port] (daemon fiber).  [backup] is the address of a
    replica node that must also be running [start_server] on the same
    port. *)

val puts_served : server -> int

val gets_served : server -> int

val replications : server -> int

type client

val client : Stack.t -> server_addr:int -> port:int -> client

val put : client -> string -> string -> bool
(** [put c k v] returns false if the network gave up (retries
    exhausted). *)

val get : client -> string -> [ `Ok of string option | `Net_fail ]
(** [get c k]: [`Ok (Some v)] = found, [`Ok None] = the server answered
    and the key is absent, [`Net_fail] = the network gave up (retries
    exhausted) and nothing is known about the key. *)
