module Inspect = Chorus.Inspect
module Engine = Chorus.Engine
module Metrics = Chorus_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)

let value_of_metric = function
  | Metrics.Counter n ->
    Inspect.Assoc [ ("kind", Inspect.String "counter"); ("value", Inspect.Int n) ]
  | Metrics.Gauge { last; peak; mean } ->
    Inspect.Assoc
      [ ("kind", Inspect.String "gauge");
        ("last", Inspect.Int last);
        ("peak", Inspect.Int peak);
        ("mean", Inspect.Float mean) ]
  | Metrics.Histo { count; mean; p50; p95; p99; max } ->
    Inspect.Assoc
      [ ("kind", Inspect.String "histogram");
        ("count", Inspect.Int count);
        ("mean", Inspect.Float mean);
        ("p50", Inspect.Int p50);
        ("p95", Inspect.Int p95);
        ("p99", Inspect.Int p99);
        ("max", Inspect.Int max) ]

let value_of_metrics snap =
  Inspect.Assoc
    (List.map
       (fun ((sub, name), v) -> (sub ^ "/" ^ name, value_of_metric v))
       snap)

let capture ?at eng =
  (* a paused stepped run is not "current" on any domain, so read the
     inspect providers and metrics out of the engine's own context *)
  let ctx = Engine.ctx eng in
  let metrics =
    match Metrics.installed_in ctx with
    | None -> Inspect.Null
    | Some reg -> value_of_metrics (Metrics.snapshot reg)
  in
  Inspect.Assoc
    [ ("at", Inspect.Int (match at with Some a -> a | None -> Engine.now eng));
      ("engine", Engine.inspect eng);
      ("subsystems", Inspect.Assoc (Inspect.snapshot_in ctx));
      ("metrics", metrics) ]

let render = Inspect.render

let to_json = Inspect.to_json

(* ------------------------------------------------------------------ *)
(* Structural diff                                                     *)

type entry = { path : string; left : string option; right : string option }

let scalar_str = function
  | Inspect.Null -> "null"
  | Inspect.Bool b -> string_of_bool b
  | Inspect.Int n -> string_of_int n
  | Inspect.Float f -> Printf.sprintf "%.6g" f
  | Inspect.String s -> s
  | (Inspect.List _ | Inspect.Assoc _) as v -> Inspect.to_json v

let diff a b =
  let acc = ref [] in
  let emit path l r = acc := { path; left = l; right = r } :: !acc in
  let rec go path a b =
    match (a, b) with
    | Inspect.Assoc fa, Inspect.Assoc fb ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (k, va) ->
          Hashtbl.replace seen k ();
          let sub = if path = "" then k else path ^ "/" ^ k in
          match List.assoc_opt k fb with
          | Some vb -> go sub va vb
          | None -> emit sub (Some (scalar_str va)) None)
        fa;
      List.iter
        (fun (k, vb) ->
          if not (Hashtbl.mem seen k) then
            let sub = if path = "" then k else path ^ "/" ^ k in
            emit sub None (Some (scalar_str vb)))
        fb
    | Inspect.List la, Inspect.List lb ->
      let rec items i la lb =
        let sub = Printf.sprintf "%s[%d]" path i in
        match (la, lb) with
        | [], [] -> ()
        | x :: la', y :: lb' ->
          go sub x y;
          items (i + 1) la' lb'
        | x :: la', [] ->
          emit sub (Some (scalar_str x)) None;
          items (i + 1) la' []
        | [], y :: lb' ->
          emit sub None (Some (scalar_str y));
          items (i + 1) [] lb'
      in
      items 0 la lb
    | a, b ->
      (* scalars, or a kind mismatch (collapsed to compact JSON) *)
      if a <> b then emit path (Some (scalar_str a)) (Some (scalar_str b))
  in
  go "" a b;
  List.rev !acc

let render_diff entries =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s: %s -> %s\n" e.path
           (Option.value ~default:"(absent)" e.left)
           (Option.value ~default:"(absent)" e.right)))
    entries;
  Buffer.contents buf

let value_of_diff entries =
  Inspect.List
    (List.map
       (fun e ->
         Inspect.Assoc
           [ ("path", Inspect.String e.path);
             ("a",
              match e.left with
              | None -> Inspect.Null
              | Some s -> Inspect.String s);
             ("b",
              match e.right with
              | None -> Inspect.Null
              | Some s -> Inspect.String s) ])
       entries)
