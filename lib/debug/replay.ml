module Engine = Chorus.Engine
module Trace = Chorus.Trace
module Inspect = Chorus.Inspect
module Metrics = Chorus_obs.Metrics
module Chaos = Chorus_chaos.Chaos
module Schedule = Chorus_chaos.Schedule

type run = {
  scenario : Chaos.scenario;
  schedule : Schedule.t;
  at : int;
  snapshot : Inspect.value;
  trace : Trace.record list;
}

let run_to ?(capture_trace = true) scenario sch ~at =
  let records = ref [] in
  let sink r = records := r :: !records in
  let p = Chaos.prepare scenario sch in
  let cfg = p.Chaos.pconfig in
  let ecfg =
    { Engine.machine = cfg.Chorus.Runtime.machine;
      policy = cfg.Chorus.Runtime.policy;
      seed = cfg.Chorus.Runtime.seed;
      trace = (if capture_trace then Some sink else None);
      max_events = cfg.Chorus.Runtime.max_events }
  in
  let eng = Engine.create ecfg in
  let reg = Metrics.create () in
  Metrics.install reg;
  Fun.protect
    ~finally:(fun () ->
      Engine.stop eng;
      Chorus_svc.Svc.set_crashpoint None;
      Metrics.uninstall ())
    (fun () ->
      Engine.start eng p.Chaos.pmain;
      Engine.run_until eng at;
      let snapshot = Snapshot.capture ~at eng in
      { scenario; schedule = sch; at; snapshot; trace = List.rev !records })

type divergence = {
  index : int;
  left : Trace.record option;
  right : Trace.record option;
}

let first_divergence a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | x :: a', y :: b' ->
      if x = y then go (i + 1) a' b'
      else Some { index = i; left = Some x; right = Some y }
    | x :: _, [] -> Some { index = i; left = Some x; right = None }
    | [], y :: _ -> Some { index = i; left = None; right = Some y }
  in
  go 0 a b

let pp_record_str = function
  | None -> "(end of trace)"
  | Some r -> Format.asprintf "%a" Trace.pp_record r

type comparison = {
  run_a : run;
  run_b : run;
  divergence : divergence option;
  state_diff : Snapshot.entry list;
}

let compare_runs scenario sa sb ~at =
  let a = run_to scenario sa ~at in
  let b = run_to scenario sb ~at in
  { run_a = a;
    run_b = b;
    divergence = first_divergence a.trace b.trace;
    state_diff = Snapshot.diff a.snapshot b.snapshot }
