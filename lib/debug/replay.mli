(** Time-travel replay: drive any chaos (scenario, schedule) to a
    virtual time [T], pause, and snapshot the complete live state.

    "Time travel" here is the deterministic-simulation kind: there is
    no checkpointing, because re-execution {e is} random access — the
    same schedule replays byte-identically, so "go to time T" is just
    "run again and stop at T".  Combined with {!Snapshot.diff} this
    turns a failing/passing schedule pair (e.g. a shrunk reproducer
    and its nearest passing neighbour) into a first-divergence report:
    the earliest trace event where the two executions differ, plus a
    structural diff of their states at T. *)

type run = {
  scenario : Chorus_chaos.Chaos.scenario;
  schedule : Chorus_chaos.Schedule.t;
  at : int;
  snapshot : Chorus.Inspect.value;
  trace : Chorus.Trace.record list;  (** emission order, up to [at] *)
}

val run_to :
  ?capture_trace:bool ->
  Chorus_chaos.Chaos.scenario ->
  Chorus_chaos.Schedule.t ->
  at:int ->
  run
(** Prepare the scenario, install a fresh metrics registry and (by
    default) a trace collector, step the run to virtual time [at] and
    capture a snapshot.  The run is then abandoned (never drained), so
    the scenario's oracles do not fire; ambient hooks (current engine,
    crash point, metrics registry) are restored on every exit path.
    Deterministic: same (scenario, schedule, [at]) gives a
    byte-identical snapshot and trace. *)

type divergence = {
  index : int;  (** position in emission order, 0-based *)
  left : Chorus.Trace.record option;
  right : Chorus.Trace.record option;  (** [None] = trace ended *)
}

val first_divergence :
  Chorus.Trace.record list ->
  Chorus.Trace.record list ->
  divergence option
(** First index at which the two traces differ structurally, or [None]
    when identical (prefix-equal and same length). *)

val pp_record_str : Chorus.Trace.record option -> string
(** One-line rendering for divergence reports; ["(end of trace)"] for
    [None]. *)

type comparison = {
  run_a : run;
  run_b : run;
  divergence : divergence option;
  state_diff : Snapshot.entry list;
}

val compare_runs :
  Chorus_chaos.Chaos.scenario ->
  Chorus_chaos.Schedule.t ->
  Chorus_chaos.Schedule.t ->
  at:int ->
  comparison
(** Execute both schedules to the same [at] and report the first
    diverging trace event plus the structural state diff — the
    [replay --diff] engine. *)
