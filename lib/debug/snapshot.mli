(** State snapshots: walk a paused engine plus every registered
    {!Chorus.Inspect} provider into one typed, printable value.

    A snapshot is taken {e between} events (after
    {!Chorus.Engine.run_until}), so it is the complete machine state
    "at end of cycle T": per-core run queues and fiber states from
    {!Chorus.Engine.inspect}, channel/mailbox occupancy, service inbox
    depths, raft per-shard terms and commit indices from the provider
    registry, and the installed {!Chorus_obs.Metrics} registry if any.
    Capture is host-side only — it charges no virtual cycles — so a
    snapshotted run stays byte-identical to an unsnapshotted one. *)

val value_of_metrics : Chorus_obs.Metrics.snapshot -> Chorus.Inspect.value
(** A metrics snapshot as an assoc keyed ["subsystem/name"], each
    metric tagged with its kind — shared by [--json] CLI modes. *)

val capture : ?at:int -> Chorus.Engine.t -> Chorus.Inspect.value
(** [capture ~at eng] assembles [{at; engine; subsystems; metrics}].
    [at] defaults to the engine's current time. *)

val render : Chorus.Inspect.value -> string
(** Stable human-readable text (two-space indentation); equal values
    render byte-identically. *)

val to_json : Chorus.Inspect.value -> string
(** Compact single-line JSON. *)

(** {1 Structural diff} *)

type entry = { path : string; left : string option; right : string option }
(** One divergent leaf: slash-separated path ([engine/cores[2]/busy]),
    rendered value on each side, [None] where the path is absent. *)

val diff : Chorus.Inspect.value -> Chorus.Inspect.value -> entry list
(** Structural comparison, depth-first in the left value's field
    order.  Assoc fields are matched by key, lists by index; a
    kind-mismatched node is reported as one entry with both sides
    collapsed to compact JSON.  Empty iff the values are equal. *)

val render_diff : entry list -> string
(** One line per entry: [path: left -> right], [(absent)] for a
    missing side. *)

val value_of_diff : entry list -> Chorus.Inspect.value
(** The diff as a value, for [--json] output. *)
