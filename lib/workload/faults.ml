module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rng = Chorus_util.Rng

type config = { mean_interval : int; crashes : int; seed : int }

type t = {
  mutable injected : int;
  mutable log : int list;  (** reversed *)
  done_ch : unit Chan.t;
}

let start_actions cfg ~inject =
  let t = { injected = 0; log = []; done_ch = Chan.buffered 1 } in
  let rng = Rng.make cfg.seed in
  ignore
    (Fiber.spawn ~label:"fault-injector" ~daemon:true (fun () ->
         for n = 1 to cfg.crashes do
           let gap =
             1 + int_of_float (Rng.exponential rng (float_of_int cfg.mean_interval))
           in
           Fiber.sleep gap;
           if inject ~n then begin
             t.injected <- t.injected + 1;
             t.log <- Fiber.now () :: t.log
           end
         done;
         Chan.send t.done_ch ()));
  t

let start_schedule ~at ~inject =
  let t = { injected = 0; log = []; done_ch = Chan.buffered 1 } in
  let at = List.sort compare at in
  ignore
    (Fiber.spawn ~label:"fault-injector" ~daemon:true (fun () ->
         List.iteri
           (fun i when_ ->
             let now = Fiber.now () in
             if when_ > now then Fiber.sleep (when_ - now);
             if inject ~n:(i + 1) then begin
               t.injected <- t.injected + 1;
               t.log <- Fiber.now () :: t.log
             end)
           at;
         Chan.send t.done_ch ()));
  t

let start cfg ~victims =
  start_actions cfg ~inject:(fun ~n:_ ->
      match victims () with
      | Some f when Fiber.alive f ->
        Fiber.kill f;
        true
      | Some _ | None -> false)

let injected t = t.injected

let log t = List.rev t.log

let wait t = Chan.recv t.done_ch
