(** Open-loop Zipf workload generator for the replicated cluster —
    the "millions of users" driver.

    Simulated client connections issue Zipf-distributed key
    operations at exponentially-distributed instants (a Poisson
    arrival process at the configured offered load), independent of
    how fast the cluster answers: a saturated cluster does not slow
    the generator down, it grows the latency tail.  Each client
    pipelines up to [depth] operations ({!Chorus_cluster.Client}'s
    sliding window); latency is measured from the {e scheduled} issue
    instant to the completion stamp, so window-full queueing counts.

    Distinct from {!Chorus_util.Zipf} (the bare rank distribution,
    which this module samples for key popularity). *)

type config = {
  nkeys : int;  (** key-space size (ranks map to keys ["k%07d"]) *)
  theta : float;  (** Zipf skew (0 = uniform, 0.99 = YCSB-ish) *)
  nclients : int;  (** simulated client connections *)
  depth : int;  (** pipeline window per client *)
  offered : int;  (** total offered load, ops per million cycles *)
  duration : int;  (** issue window in cycles *)
  read_fraction : float;  (** fraction of ops that are gets *)
  value_bytes : int;
  call_timeout : int;
      (** per-RPC client timeout; raise it past the expected queueing
          delay when measuring capacity at deep saturation, or the
          client's own timeout/retry churn becomes the bottleneck *)
  op_budget : int option;
      (** per-operation deadline budget handed to each
          {!Chorus_cluster.Client.create} (default [None] = off) *)
  breaker : Chorus_cluster.Client.breaker_config option;
      (** per-node circuit breakers for each client (default [None]) *)
  seed : int;
}

val default_config : seed:int -> config
(** 10⁶ keys, theta 0.99, 64 clients × depth 8, 400 ops/Mcycle over a
    2M-cycle window, 90% reads, 16-byte values. *)

type result = {
  submitted : int;
  completed : int;
  failed : int;  (** [`Net_fail] verdicts (submitted ops that gave up) *)
  reads : int;
  writes : int;
  elapsed : int;  (** cycles from generator start to last completion *)
  throughput : float;  (** completed ops per million cycles *)
  p50 : int;  (** completion latency percentiles, cycles *)
  p99 : int;
  mean_latency : float;
  latency : Chorus_util.Histogram.t;
  lat_get : Chorus_util.Histogram.t;  (** read-path latencies alone *)
  lat_put : Chorus_util.Histogram.t;  (** write-path latencies alone *)
  breaker_trips : int;
      (** circuit-breaker trips summed over all clients (0 when
          [breaker] is [None]) *)
  breaker_skips : int;  (** routing decisions steered off open nodes *)
  breaker_probes : int;  (** half-open probes *)
  deadline_misses : int;
      (** ops failed fast on the [op_budget] deadline (0 when off) *)
}

val run :
  config -> fabric:Chorus_net.Fabric.t -> bootstrap:int list -> result
(** Attach [nclients] fresh stacks to the fabric, drive the load, and
    block until every submitted operation has completed (the cluster
    must already be running).  Deterministic for a given config.  Call
    from the main fiber of a running engine. *)
