(** Failure injection.

    Kills victim fibers at exponentially distributed intervals —
    the component-crash load for the supervision/availability
    experiment (E10).  Deterministic in the seed. *)

type config = {
  mean_interval : int;  (** mean cycles between injected crashes *)
  crashes : int;  (** how many to inject in total *)
  seed : int;
}

type t

val start : config -> victims:(unit -> Chorus.Fiber.t option) -> t
(** [victims] picks the next fiber to kill (e.g. a random live service
    from a registry); [None] skips that injection.  The injector runs
    as a daemon fiber. *)

val start_actions : config -> inject:(n:int -> bool) -> t
(** Generalized injector for faults that are not a single fiber kill:
    [inject ~n] performs the [n]-th fault (1-based) — e.g. crash a
    whole cluster node — returning whether anything was actually
    injected.  Same exponential schedule and determinism as
    {!start}. *)

val start_schedule : at:int list -> inject:(n:int -> bool) -> t
(** Schedule-driven injector (the chaos engine's mode): fire the
    [n]-th injection at the [n]-th absolute virtual time in [at]
    (sorted internally; times already past fire immediately).  No RNG
    at all — the schedule {e is} the fault plan, so replaying the same
    schedule replays the same faults. *)

val injected : t -> int

val log : t -> int list
(** Injection times, oldest first. *)

val wait : t -> unit
(** Block until all configured crashes have been injected. *)
