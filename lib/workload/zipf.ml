(* Open-loop Zipf-keyed load against the replicated cluster.

   Open loop means arrivals are a property of the offered load, not of
   the system's responsiveness: each simulated client draws exponential
   inter-arrival gaps (a Poisson process at the configured rate) and
   submits at the scheduled instants whether or not earlier operations
   have completed — the only coupling is the pipeline window, which
   models a connection's bounded in-flight buffer.  Latency is measured
   from the *intended* issue time, so queueing delay a saturated system
   inflicts shows up in p99 instead of silently throttling the
   generator (the closed-loop mistake the scalability literature warns
   about — see PAPERS.md). *)

module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Rng = Chorus_util.Rng
module Histogram = Chorus_util.Histogram
module Client = Chorus_cluster.Client

type config = {
  nkeys : int;
  theta : float;
  nclients : int;
  depth : int;
  offered : int;  (* total ops per 1e6 cycles across all clients *)
  duration : int;  (* issue window, cycles *)
  read_fraction : float;
  value_bytes : int;
  call_timeout : int;  (* per-RPC client timeout, cycles *)
  op_budget : int option;  (* per-op deadline budget (Client.create) *)
  breaker : Client.breaker_config option;  (* per-node circuit breakers *)
  seed : int;
}

let default_config ~seed =
  { nkeys = 1_000_000;
    theta = 0.99;
    nclients = 64;
    depth = 8;
    offered = 400;
    duration = 2_000_000;
    read_fraction = 0.9;
    value_bytes = 16;
    call_timeout = 60_000;
    op_budget = None;
    breaker = None;
    seed }

type result = {
  submitted : int;
  completed : int;
  failed : int;
  reads : int;
  writes : int;
  elapsed : int;  (* first scheduled issue -> last completion *)
  throughput : float;  (* completed ops per 1e6 cycles of elapsed *)
  p50 : int;
  p99 : int;
  mean_latency : float;
  latency : Histogram.t;
  lat_get : Histogram.t;
  lat_put : Histogram.t;
  breaker_trips : int;  (* summed over clients; 0 without [breaker] *)
  breaker_skips : int;
  breaker_probes : int;
  deadline_misses : int;  (* 0 without [op_budget] *)
}

let key_of_rank rank = Printf.sprintf "k%07d" rank

(* One client connection: generator + deferred drain.  Nothing reads
   completions during the issue window, so the pipeline window is the
   only backpressure — exactly the bounded-buffer open-loop model. *)
let drive cfg ~fabric ~bootstrap ~zipf ~idx ~lat ~lat_get ~lat_put ~failed
    ~reads ~writes ~submitted ~last_done ~trips ~skips ~probes ~misses
    ~done_ch =
  let nic =
    Fabric.attach fabric ~label:(Printf.sprintf "loadgen%d" idx) ()
  in
  let stack = Stack.create fabric nic in
  let client =
    Client.create ~call_timeout:cfg.call_timeout ?op_budget:cfg.op_budget
      ?breaker:cfg.breaker
      ~seed:(cfg.seed + (7919 * idx))
      ~bootstrap stack
  in
  let pipe = Client.pipeline ~depth:cfg.depth client in
  let rng = Rng.make (cfg.seed lxor (0x21f00d + (131 * idx))) in
  let mean =
    float_of_int (cfg.nclients * 1_000_000) /. float_of_int cfg.offered
  in
  let value = String.make cfg.value_bytes 'v' in
  let sched = Hashtbl.create 64 in
  let t0 = Fiber.now () in
  let t_end = t0 + cfg.duration in
  let issued = ref 0 in
  let gap () = 1 + int_of_float (Rng.exponential rng mean) in
  let rec gen next_t =
    if next_t <= t_end then begin
      let now = Fiber.now () in
      if next_t > now then Fiber.sleep (next_t - now);
      let rank = Chorus_util.Zipf.sample zipf rng in
      let key = key_of_rank rank in
      let is_read = Rng.float rng 1.0 < cfg.read_fraction in
      let op =
        if is_read then begin
          incr reads;
          Client.Op_get key
        end
        else begin
          incr writes;
          Client.Op_put (key, value)
        end
      in
      let seq = Client.submit pipe op in
      Hashtbl.replace sched seq (next_t, is_read);
      incr issued;
      incr submitted;
      gen (next_t + gap ())
    end
  in
  gen (t0 + gap ());
  let compl_c = Client.completions pipe in
  for _ = 1 to !issued do
    let { Client.seq; at; result } = Chan.recv compl_c in
    let t_issue, is_read = Hashtbl.find sched seq in
    let d = at - t_issue in
    Histogram.record lat d;
    Histogram.record (if is_read then lat_get else lat_put) d;
    if at > !last_done then last_done := at;
    match result with
    | `Net_fail -> incr failed
    | `Ok | `Found _ | `Miss -> ()
  done;
  trips := !trips + Client.breaker_trips client;
  skips := !skips + Client.breaker_skips client;
  probes := !probes + Client.breaker_probes client;
  misses := !misses + Client.deadline_misses client;
  Chan.send done_ch ()

let run cfg ~fabric ~bootstrap =
  if cfg.nclients < 1 then invalid_arg "Zipf.run: nclients";
  if cfg.offered < 1 then invalid_arg "Zipf.run: offered";
  let zipf = Chorus_util.Zipf.make ~n:cfg.nkeys ~theta:cfg.theta in
  let lat = Histogram.create () in
  let lat_get = Histogram.create () in
  let lat_put = Histogram.create () in
  let failed = ref 0
  and reads = ref 0
  and writes = ref 0
  and submitted = ref 0
  and last_done = ref 0
  and trips = ref 0
  and skips = ref 0
  and probes = ref 0
  and misses = ref 0 in
  let done_ch = Chan.buffered cfg.nclients in
  let t0 = Fiber.now () in
  for idx = 0 to cfg.nclients - 1 do
    ignore
      (Fiber.spawn
         ~label:(Printf.sprintf "zipf-client%d" idx)
         (fun () ->
           drive cfg ~fabric ~bootstrap ~zipf ~idx ~lat ~lat_get ~lat_put
             ~failed ~reads ~writes ~submitted ~last_done ~trips ~skips
             ~probes ~misses ~done_ch))
  done;
  for _ = 1 to cfg.nclients do
    Chan.recv done_ch
  done;
  let completed = Histogram.count lat in
  let elapsed = max 1 (!last_done - t0) in
  { submitted = !submitted;
    completed;
    failed = !failed;
    reads = !reads;
    writes = !writes;
    elapsed;
    throughput = float_of_int completed *. 1_000_000. /. float_of_int elapsed;
    p50 = Histogram.percentile lat 50.0;
    p99 = Histogram.percentile lat 99.0;
    mean_latency = Histogram.mean lat;
    latency = lat;
    lat_get;
    lat_put;
    breaker_trips = !trips;
    breaker_skips = !skips;
    breaker_probes = !probes;
    deadline_misses = !misses }
