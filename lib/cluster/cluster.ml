module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Supervisor = Chorus_kernel.Supervisor
module Notify = Chorus_kernel.Notify
module Metrics = Chorus_obs.Metrics

let client_port = 7000

let raft_port = 7100

type node = {
  addr : int;
  stack : Stack.t;
  rafts : (int * Raft.t) list;  (* shard -> replica, ascending shards *)
  mutable incarnation : int;
  mutable root : Fiber.t option;
  mutable subs : Fiber.t list;  (* current incarnation's fibers *)
  mutable up : bool;
  mutable inflight : int;  (* proposals parked in worker fibers *)
  depth_g : Metrics.gauge;
}

type t = {
  map : Shardmap.t;
  map_wire : string;  (* "m" ^ encoding, served on 'M' *)
  nodes : node array;
  notify : Notify.t option;
  overload : Chorus_svc.Svc.config option;
      (* applied to every node's raft- and client-port endpoints *)
  mutable sup : Supervisor.t option;
  mutable elections : int;
  mutable leader_changes : int;
  mutable crashes : int;
}

let publish t ev =
  match t.notify with None -> () | Some n -> Notify.publish n ev

let on_raft_event t (ev : Raft.event) =
  match ev with
  | Raft.Election_started _ -> t.elections <- t.elections + 1
  | Raft.Leader_won { shard; node; _ } ->
    t.leader_changes <- t.leader_changes + 1;
    publish t
      (Notify.Custom (Printf.sprintf "cluster:shard%d:leader:%d" shard node))
  | Raft.Stepped_down _ -> ()

let create ?raft ?notify ?overload ~nshards ~replication ~seed ~nnodes fabric =
  if nnodes <= 0 then invalid_arg "Cluster.create: nnodes";
  let rcfg =
    match raft with Some c -> c | None -> Raft.default_config ~seed
  in
  let nics =
    Array.init nnodes (fun i ->
        Fabric.attach fabric ~label:(Printf.sprintf "node%d" i) ())
  in
  let addrs = Array.to_list (Array.map Fabric.addr nics) in
  let map = Shardmap.build ~nshards ~replication addrs in
  (* tie the knot: raft event callbacks need the cluster record *)
  let t_ref = ref None in
  let on_event ev =
    match !t_ref with None -> () | Some t -> on_raft_event t ev
  in
  let nodes =
    Array.map
      (fun nic ->
        let addr = Fabric.addr nic in
        let stack = Stack.create fabric nic in
        let rafts =
          List.map
            (fun shard ->
              let peers =
                Shardmap.replicas map shard
                |> Array.to_list
                |> List.filter (fun a -> a <> addr)
                |> Array.of_list
              in
              (shard, Raft.create rcfg ~stack ~raft_port ~shard ~peers ~on_event))
            (Shardmap.shards_of_node map addr)
        in
        { addr;
          stack;
          rafts;
          incarnation = 0;
          root = None;
          subs = [];
          up = false;
          inflight = 0;
          depth_g =
            Metrics.gauge ~subsystem:"cluster"
              (Printf.sprintf "node%d.inflight" addr) })
      nics
  in
  let t =
    { map;
      map_wire = "m" ^ Shardmap.encode map;
      nodes;
      notify;
      overload;
      sup = None;
      elections = 0;
      leader_changes = 0;
      crashes = 0 }
  in
  t_ref := Some t;
  (* Snapshot hooks: one provider per node walking its replicas.  The
     raft state machines survive node restarts (log and term model
     stable storage), so these thunks stay valid across crash cycles. *)
  Array.iter
    (fun node ->
      Chorus.Inspect.register
        ~name:(Printf.sprintf "cluster/node%d" node.addr)
        (fun () ->
          let open Chorus.Inspect in
          Assoc
            [ ("up", Bool node.up);
              ("incarnation", Int node.incarnation);
              ("inflight", Int node.inflight);
              ("shards",
               List
                 (List.map
                    (fun (shard, r) ->
                      Assoc
                        [ ("shard", Int shard);
                          ("role",
                           String
                             (match Raft.role r with
                             | Raft.Follower -> "follower"
                             | Raft.Candidate -> "candidate"
                             | Raft.Leader -> "leader"));
                          ("term", Int (Raft.term r));
                          ("commit_index", Int (Raft.commit_index r));
                          ("log_length", Int (Raft.log_length r));
                          ("applied", Int (Raft.applied r));
                          ("leader_hint", Int (Raft.leader_hint r));
                          ("group_commits", Int (Raft.group_commits r));
                          ("leased_reads", Int (Raft.leased_reads r));
                          ("lease_valid", Bool (Raft.lease_valid r)) ])
                    node.rafts)) ]))
    t.nodes;
  Chorus.Inspect.register ~name:"cluster/summary" (fun () ->
      let open Chorus.Inspect in
      Assoc
        [ ("elections_started", Int t.elections);
          ("leader_changes", Int t.leader_changes);
          ("node_crashes", Int t.crashes);
          ("nodes_up",
           Int
             (Array.fold_left
                (fun acc n -> if n.up then acc + 1 else acc)
                0 t.nodes)) ]);
  t

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

let parse_cmd payload =
  match payload.[0] with
  | 'P' ->
    let r = Wire.reader ~pos:1 payload in
    let k = Wire.str_ r in
    let v = Wire.str_ r in
    Some (k, Raft.Put (k, v))
  | 'G' ->
    let r = Wire.reader ~pos:1 payload in
    let k = Wire.str_ r in
    Some (k, Raft.Get k)
  | _ -> None
  | exception _ -> None

let track_inflight node d =
  node.inflight <- node.inflight + d;
  Metrics.observe node.depth_g node.inflight

(* The quorum path: hand the command to a registered worker fiber that
   blocks in [Raft.propose] until commit+apply (or timeout). *)
let propose_path node ~register shard r cmd ~reply =
  track_inflight node 1;
  register
    (Fiber.spawn
       ~label:(Printf.sprintf "prop-n%d-s%d" node.addr shard)
       ~daemon:true
       (fun () ->
         let answer =
           match Raft.propose r cmd with
           | `Ok payload -> payload
           | `Not_leader h -> Printf.sprintf "L%d" h
           | `Retry -> "R"
         in
         track_inflight node (-1);
         reply answer))

(* Runs in the client-port serve fiber: must not block.  Leader ops are
   handed to a registered worker fiber; everything else answers
   inline. *)
let handle_client t node ~register ~src:_ payload ~reply =
  if payload = "M" then reply t.map_wire
  else
    match parse_cmd payload with
    | None -> reply "X"
    | Some (key, cmd) -> (
      let shard = Shardmap.shard_of_key t.map key in
      match List.assoc_opt shard node.rafts with
      | None -> reply "X"  (* not a replica: client's map is stale *)
      | Some r ->
        if Raft.role r <> Raft.Leader then
          reply (Printf.sprintf "L%d" (Raft.leader_hint r))
        else begin
          (* leased read fast path: a Get under a valid leader lease is
             answered from the local store right here in the serve
             fiber — no log entry, no replication round, no worker
             fiber.  [read_local] never blocks (it only charges one
             apply's worth of work) and answers [`No_lease] whenever
             leases are off, so the propose path below is untouched by
             default. *)
          match cmd with
          | Raft.Get key' -> (
            match Raft.read_local r key' with
            | `Value (Some v) -> reply ("F" ^ v)
            | `Value None -> reply "M"
            | `No_lease -> propose_path node ~register shard r cmd ~reply)
          | Raft.Put _ | Raft.Nop ->
            propose_path node ~register shard r cmd ~reply
        end)

let handle_raft node ~src payload ~reply =
  match
    let op = payload.[0] in
    let r = Wire.reader ~pos:1 payload in
    let shard = Wire.int_ r in
    (op, shard, r)
  with
  | exception _ -> reply "X"
  | op, shard, r -> (
    match List.assoc_opt shard node.rafts with
    | None -> reply "X"
    | Some raft -> (
      match Raft.handle_rpc raft ~src ~op r with
      | answer -> reply answer
      | exception Wire.Malformed -> reply "X"))

(* ------------------------------------------------------------------ *)
(* Node lifecycle                                                      *)

let start_node t ni =
  let node = t.nodes.(ni) in
  node.incarnation <- node.incarnation + 1;
  let inc = node.incarnation in
  (* crash recovery: volatile raft state is gone, log/term survive *)
  List.iter (fun (_, r) -> Raft.reset_volatile r) node.rafts;
  node.subs <- [];
  node.inflight <- 0;
  let register f =
    if node.incarnation = inc then node.subs <- f :: node.subs
    else Fiber.kill f  (* spawned by a fiber leaked across a crash *)
  in
  (* A node's serve fibers share protocol state (raft replicas, the
     stack's dedup caches) with the rest of the node: one dying alone
     — a chaos crash point, an unhandled handler exception — leaves a
     half-alive node that answers on one port and is silent on the
     other.  Escalate: kill the root, so the supervisor restarts the
     node as a unit (One_for_all in miniature, scoped to the node). *)
  let escalate f =
    Fiber.monitor f (fun ~time:_ _st ->
        if node.incarnation = inc && node.up then
          match node.root with
          | Some r when Fiber.alive r -> Fiber.kill r
          | Some _ | None -> ())
  in
  let root =
    Fiber.spawn
      ~label:(Printf.sprintf "node%d" node.addr)
      ~daemon:true
      (fun () ->
        node.up <- true;
        publish t (Notify.Custom (Printf.sprintf "cluster:node%d:up" node.addr));
        let raft_srv =
          Fiber.spawn
            ~label:(Printf.sprintf "raft-srv-%d" node.addr)
            ~daemon:true
            (fun () ->
              Stack.serve_async ?config:t.overload node.stack
                ~port:raft_port (handle_raft node))
        in
        register raft_srv;
        escalate raft_srv;
        let kv_srv =
          Fiber.spawn
            ~label:(Printf.sprintf "kv-srv-%d" node.addr)
            ~daemon:true
            (fun () ->
              Stack.serve_async ?config:t.overload node.stack
                ~port:client_port (handle_client t node ~register))
        in
        register kv_srv;
        escalate kv_srv;
        List.iter
          (fun (_, r) -> register (Raft.start_timer r ~register))
          node.rafts;
        (* park forever: this fiber is the node's kill target *)
        Chan.recv (Chan.rendezvous ~label:"park" ()))
  in
  (* the cluster's own monitor coexists with the supervisor's: it is
     the failure detector's control-plane half, reaping the dead
     incarnation and announcing the membership change *)
  node.root <- Some root;
  Fiber.monitor root (fun ~time:_ _st ->
      if node.incarnation = inc then begin
        node.up <- false;
        t.crashes <- t.crashes + 1;
        publish t
          (Notify.Custom (Printf.sprintf "cluster:node%d:down" node.addr));
        let doomed = node.subs in
        node.subs <- [];
        List.iter (fun (_, r) -> Raft.reset_volatile r) node.rafts;
        List.iter (fun f -> if Fiber.alive f then Fiber.kill f) doomed
      end);
  root

let start ?(max_restarts = 100) ?(window = 50_000_000) t =
  match t.sup with
  | Some _ -> invalid_arg "Cluster.start: already started"
  | None ->
    let specs =
      Array.to_list
        (Array.mapi
           (fun i n ->
             { Supervisor.cname = Printf.sprintf "node%d" n.addr;
               cstart = (fun () -> start_node t i) })
           t.nodes)
    in
    t.sup <- Some (Supervisor.start ~max_restarts ~window One_for_one specs)

let stop t =
  (match t.sup with Some s -> Supervisor.stop s | None -> ());
  Array.iter
    (fun n ->
      let doomed = n.subs in
      n.subs <- [];
      n.incarnation <- n.incarnation + 1;
      n.up <- false;
      List.iter (fun f -> if Fiber.alive f then Fiber.kill f) doomed)
    t.nodes

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let map t = t.map

let addrs t = Shardmap.nodes t.map

let node_by_addr t addr =
  let found = ref None in
  Array.iter (fun n -> if n.addr = addr then found := Some n) t.nodes;
  !found

let node_up t addr =
  match node_by_addr t addr with Some n -> n.up | None -> false

let crash_node t addr =
  match node_by_addr t addr with
  | None -> invalid_arg "Cluster.crash_node: unknown address"
  | Some node -> (
    match node.root with
    | Some f when Fiber.alive f -> Fiber.kill f
    | Some _ | None -> ())

let leader_of t shard =
  let leader = ref (-1) in
  Array.iter
    (fun n ->
      if n.up then
        match List.assoc_opt shard n.rafts with
        | Some r when Raft.role r = Raft.Leader -> leader := n.addr
        | Some _ | None -> ())
    t.nodes;
  !leader

let elections_started t = t.elections

let leader_changes t = t.leader_changes

let node_crashes t = t.crashes

let restarts t = match t.sup with Some s -> Supervisor.restarts s | None -> 0

let raft_of t ~node ~shard =
  match node_by_addr t node with
  | None -> None
  | Some n -> List.assoc_opt shard n.rafts
