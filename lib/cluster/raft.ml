module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Stack = Chorus_net.Stack
module Rng = Chorus_util.Rng
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span
module Svc = Chorus_svc.Svc

type config = {
  heartbeat : int;
  election_lo : int;
  election_hi : int;
  rpc_timeout : int;
  propose_timeout : int;
  batch_window : int;
  max_append : int;
  lease : bool;
  lease_margin : int;
  seed : int;
}

let default_config ~seed =
  { heartbeat = 25_000;
    election_lo = 120_000;
    election_hi = 240_000;
    rpc_timeout = 30_000;
    propose_timeout = 200_000;
    batch_window = 0;
    max_append = 16;
    lease = false;
    lease_margin = 10_000;
    seed }

type role = Follower | Candidate | Leader

type cmd = Nop | Put of string * string | Get of string

type event =
  | Election_started of { shard : int; node : int; term : int }
  | Leader_won of { shard : int; node : int; term : int }
  | Stepped_down of { shard : int; node : int; term : int }

type entry = { eterm : int; cmd : cmd }

type wait_result = [ `Applied of string | `Lost ]

type t = {
  cfg : config;
  shard : int;
  self : int;
  peers : int array;
  stack : Stack.t;
  raft_port : int;
  rng : Rng.t;
  on_event : event -> unit;
  (* persistent ("stable storage") *)
  mutable term : int;
  mutable voted_for : int option;
  mutable log : entry array;
  mutable log_len : int;
  store : (string, string) Hashtbl.t;
  mutable commit_idx : int;
  mutable applied : int;
  (* volatile *)
  mutable role : role;
  mutable leader_hint : int;
  mutable last_heartbeat : int;
  next_idx : int array;  (* per peer position *)
  match_idx : int array;
  mutable kicks : wait_result Svc.cast list;
      (* one per replicator fiber; pinged on new proposals.  Each is a
         capacity-1 `Reject endpoint: a kick that finds the slot full
         is redundant by construction and is dropped, exactly the old
         try_send-on-buffered-1 behaviour, but now visible in the
         uniform rejected counter. *)
  mutable batch_kick : unit Svc.cast option;
      (* the group-commit batcher's doorbell; Some only while a leader
         with batch_window > 0 has its batcher fiber up *)
  mutable batch_pending : int;
      (* proposals appended since the last replicator flush *)
  lease_acked : int array;
      (* per peer: virtual send-time of the latest append that peer
         acknowledged, -1 before the first ack of this leadership.
         The (majority-1)-th largest of these anchors the lease. *)
  mutable term_start : int;
      (* index of this term's pinning Nop; leased reads need
         commit_idx >= term_start (current-term commitment) *)
  waiters : (int, int * wait_result Chan.t) Hashtbl.t;
      (* log index -> (expected term, reply channel) *)
  mutable lineage : int;
      (* bumped by reset_volatile; fibers of older lineages exit *)
  (* stats *)
  mutable elections : int;
  mutable won : int;
  mutable appends : int;
  mutable group_commits : int;
  mutable leased_reads : int;
  mutable lease_denied : int;
  propose_h : Metrics.histogram;
}

let create cfg ~stack ~raft_port ~shard ~peers ~on_event =
  let self = Stack.addr stack in
  { cfg;
    shard;
    self;
    peers;
    stack;
    raft_port;
    rng = Rng.make (cfg.seed lxor Shardmap.hash64 (Printf.sprintf "raft:%d:%d" self shard));
    on_event;
    term = 0;
    voted_for = None;
    log = Array.make 16 { eterm = 0; cmd = Nop };
    log_len = 0;
    store = Hashtbl.create 64;
    commit_idx = 0;
    applied = 0;
    role = Follower;
    leader_hint = -1;
    last_heartbeat = Fiber.now ();
    next_idx = Array.map (fun _ -> 1) peers;
    match_idx = Array.map (fun _ -> 0) peers;
    kicks = [];
    batch_kick = None;
    batch_pending = 0;
    lease_acked = Array.map (fun _ -> -1) peers;
    term_start = 0;
    waiters = Hashtbl.create 8;
    lineage = 0;
    elections = 0;
    won = 0;
    appends = 0;
    group_commits = 0;
    leased_reads = 0;
    lease_denied = 0;
    propose_h =
      Metrics.histogram ~subsystem:"cluster"
        (Printf.sprintf "shard%d.propose" shard) }

let role t = t.role

let term t = t.term

let leader_hint t = t.leader_hint

let commit_index t = t.commit_idx

let log_length t = t.log_len

let elections_started t = t.elections

let elections_won t = t.won

let appends_sent t = t.appends

let applied t = t.applied

let group_commits t = t.group_commits

let leased_reads t = t.leased_reads

let lease_denied t = t.lease_denied

(* 1-based log access *)
let entry t i = t.log.(i - 1)

let last_log_term t = if t.log_len = 0 then 0 else (entry t t.log_len).eterm

let append_entry t e =
  if t.log_len = Array.length t.log then begin
    let bigger = Array.make (2 * t.log_len) { eterm = 0; cmd = Nop } in
    Array.blit t.log 0 bigger 0 t.log_len;
    t.log <- bigger
  end;
  t.log.(t.log_len) <- e;
  t.log_len <- t.log_len + 1

let majority t = ((Array.length t.peers + 1) / 2) + 1

(* ------------------------------------------------------------------ *)
(* Role transitions                                                    *)

let step_down t new_term =
  if new_term > t.term then begin
    t.term <- new_term;
    t.voted_for <- None
  end;
  if t.role <> Follower then begin
    t.role <- Follower;
    t.kicks <- [];
    t.batch_kick <- None;
    t.on_event (Stepped_down { shard = t.shard; node = t.self; term = t.term })
  end;
  t.last_heartbeat <- Fiber.now ()

let reset_volatile t =
  t.lineage <- t.lineage + 1;
  t.role <- Follower;
  t.leader_hint <- -1;
  t.kicks <- [];
  t.batch_kick <- None;
  t.batch_pending <- 0;
  Array.fill t.lease_acked 0 (Array.length t.lease_acked) (-1);
  Hashtbl.reset t.waiters;
  t.last_heartbeat <- Fiber.now ()

(* ------------------------------------------------------------------ *)
(* Apply and commit                                                    *)

let apply_cmd t = function
  | Nop -> "A"
  | Put (k, v) ->
    Hashtbl.replace t.store k v;
    "A"
  | Get k -> (
    match Hashtbl.find_opt t.store k with
    | Some v -> "F" ^ v
    | None -> "M")

let apply t =
  while t.applied < t.commit_idx do
    let idx = t.applied + 1 in
    let e = entry t idx in
    Fiber.work 120;
    let result = apply_cmd t e.cmd in
    t.applied <- idx;
    match Hashtbl.find_opt t.waiters idx with
    | None -> ()
    | Some (expected_term, ch) ->
      Hashtbl.remove t.waiters idx;
      (* a different entry can occupy the index after a truncation;
         answer the waiter only when it is literally its own command *)
      let answer : wait_result =
        if e.eterm = expected_term then `Applied result else `Lost
      in
      ignore (Chan.try_send ch answer)
  done

(* leader: advance commit_idx to the highest current-term index a
   majority holds (Raft's commitment rule: only entries of the current
   term commit by counting; earlier ones ride along) *)
let maybe_commit t =
  if t.role = Leader then begin
    let n = ref t.log_len in
    let committed = ref false in
    while (not !committed) && !n > t.commit_idx do
      if (entry t !n).eterm = t.term then begin
        let acks =
          1
          + Array.fold_left
              (fun acc m -> if m >= !n then acc + 1 else acc)
              0 t.match_idx
        in
        if acks >= majority t then begin
          t.commit_idx <- !n;
          committed := true
        end
      end;
      decr n
    done;
    if !committed then apply t
  end

(* ------------------------------------------------------------------ *)
(* Leader lease (read path)                                            *)

(* The lease anchors at the (majority-1)-th most recent send-time among
   peer-acknowledged appends: at that instant a majority (those peers
   plus the leader itself) had heard from this leader.  Under virtual
   time there is no clock skew, and every follower that processed an
   append at t_recv >= t_send both reset its election timer and — in
   lease mode — refuses to grant votes for election_lo cycles after
   t_recv.  So no competing leader can be elected by any majority
   before anchor + election_lo; serving local reads until
   anchor + election_lo - lease_margin leaves lease_margin cycles of
   slack for the read itself.  (See DESIGN D13.) *)
let lease_deadline t =
  let need = majority t - 1 in
  if need = 0 then max_int  (* single-replica group: always leased *)
  else begin
    let sorted = Array.copy t.lease_acked in
    Array.sort (fun a b -> compare (b : int) a) sorted;
    let anchor = sorted.(need - 1) in
    if anchor < 0 then min_int
    else anchor + t.cfg.election_lo - t.cfg.lease_margin
  end

let lease_valid t =
  t.cfg.lease && t.role = Leader
  && t.commit_idx >= t.term_start
  && Fiber.now () < lease_deadline t

let read_local t key =
  if not (t.cfg.lease && t.role = Leader) then `No_lease
  else begin
    (* the read is charged like one applied Get; re-check the lease at
       completion time so the value returned is covered by it *)
    Fiber.work 120;
    if lease_valid t then begin
      t.leased_reads <- t.leased_reads + 1;
      `Value (Hashtbl.find_opt t.store key)
    end
    else begin
      t.lease_denied <- t.lease_denied + 1;
      `No_lease
    end
  end

(* ------------------------------------------------------------------ *)
(* Wire encoding                                                       *)

let encode_vote_req t =
  let b = Buffer.create 32 in
  Buffer.add_char b 'V';
  Wire.enc_int b t.shard;
  Wire.enc_int b t.term;
  Wire.enc_int b t.self;
  Wire.enc_int b t.log_len;
  Wire.enc_int b (last_log_term t);
  Buffer.contents b

let encode_vote_reply ~term ~granted =
  let b = Buffer.create 16 in
  Buffer.add_char b 'v';
  Wire.enc_int b term;
  Wire.enc_int b (if granted then 1 else 0);
  Buffer.contents b

let encode_append t ~prev ~prev_term ~entries =
  let b = Buffer.create 64 in
  Buffer.add_char b 'E';
  Wire.enc_int b t.shard;
  Wire.enc_int b t.term;
  Wire.enc_int b t.self;
  Wire.enc_int b prev;
  Wire.enc_int b prev_term;
  Wire.enc_int b t.commit_idx;
  Wire.enc_int b (List.length entries);
  List.iter
    (fun e ->
      Wire.enc_int b e.eterm;
      match e.cmd with
      | Nop -> Wire.enc_int b 0
      | Put (k, v) ->
        Wire.enc_int b 1;
        Wire.enc_str b k;
        Wire.enc_str b v
      | Get k ->
        Wire.enc_int b 2;
        Wire.enc_str b k)
    entries;
  Buffer.contents b

let encode_append_reply ~term ~success ~match_idx =
  let b = Buffer.create 16 in
  Buffer.add_char b 'e';
  Wire.enc_int b term;
  Wire.enc_int b (if success then 1 else 0);
  Wire.enc_int b match_idx;
  Buffer.contents b

let decode_entry r =
  let eterm = Wire.int_ r in
  let cmd =
    match Wire.int_ r with
    | 0 -> Nop
    | 1 ->
      let k = Wire.str_ r in
      let v = Wire.str_ r in
      Put (k, v)
    | 2 -> Get (Wire.str_ r)
    | _ -> raise Wire.Malformed
  in
  { eterm; cmd }

(* ------------------------------------------------------------------ *)
(* RPC handlers (run inline in the raft-port serve fiber; no blocking) *)

let handle_vote t r =
  let cterm = Wire.int_ r in
  let cand = Wire.int_ r in
  let c_last_idx = Wire.int_ r in
  let c_last_term = Wire.int_ r in
  Fiber.work 80;
  (* Lease guard (thesis §6.4.1 flavour): while leases are on, a
     follower that heard from a live leader within the minimum election
     timeout refuses to vote — this is what makes the leader's lease
     arithmetic sound.  Captured before step_down, which resets the
     heartbeat clock. *)
  let lease_guard =
    t.cfg.lease && t.role = Follower
    && Fiber.now () - t.last_heartbeat < t.cfg.election_lo
  in
  if cterm > t.term then step_down t cterm;
  let up_to_date =
    c_last_term > last_log_term t
    || (c_last_term = last_log_term t && c_last_idx >= t.log_len)
  in
  let granted =
    cterm = t.term && up_to_date && (not lease_guard)
    && (match t.voted_for with None -> true | Some c -> c = cand)
  in
  if granted then begin
    t.voted_for <- Some cand;
    (* granting a vote is a sign of a live election: restart our own
       timeout so we do not pile a competing candidacy on top *)
    t.last_heartbeat <- Fiber.now ()
  end;
  encode_vote_reply ~term:t.term ~granted

let handle_append t ~src:_ r =
  let aterm = Wire.int_ r in
  let leader = Wire.int_ r in
  let prev = Wire.int_ r in
  let prev_term = Wire.int_ r in
  let leader_commit = Wire.int_ r in
  let n = Wire.int_ r in
  let entries = List.init n (fun _ -> decode_entry r) in
  Fiber.work (100 + (20 * n));
  if aterm < t.term then
    encode_append_reply ~term:t.term ~success:false ~match_idx:0
  else begin
    if aterm > t.term || t.role <> Follower then step_down t aterm;
    t.leader_hint <- leader;
    t.last_heartbeat <- Fiber.now ();
    if prev > t.log_len || (prev > 0 && (entry t prev).eterm <> prev_term)
    then
      (* log mismatch: the leader will back its next_idx down *)
      encode_append_reply ~term:t.term ~success:false ~match_idx:0
    else begin
      List.iteri
        (fun k e ->
          let idx = prev + k + 1 in
          if idx <= t.log_len then begin
            if (entry t idx).eterm <> e.eterm then begin
              t.log_len <- idx - 1;  (* truncate the conflicting suffix *)
              append_entry t e
            end
          end
          else append_entry t e)
        entries;
      let last_new = prev + n in
      if leader_commit > t.commit_idx then begin
        t.commit_idx <- max t.commit_idx (min leader_commit last_new);
        apply t
      end;
      encode_append_reply ~term:t.term ~success:true ~match_idx:last_new
    end
  end

let handle_rpc t ~src ~op r =
  match op with
  | 'V' -> handle_vote t r
  | 'E' -> handle_append t ~src r
  | _ -> raise Wire.Malformed

(* ------------------------------------------------------------------ *)
(* Leader side: replicator fibers                                      *)

let kick_replicators t =
  List.iter (fun k -> Svc.cast k (`Applied "")) t.kicks

let replicator t ~lineage ~my_term ~peer_pos =
  let peer = t.peers.(peer_pos) in
  let kick =
    Svc.cast_create
      ~config:(Svc.config ~capacity:1 ~policy:`Reject ())
      ~subsystem:"cluster" ~metric_name:"kick" ~label:"raft-kick" ()
  in
  t.kicks <- kick :: t.kicks;
  let live () =
    t.role = Leader && t.term = my_term && t.lineage = lineage
  in
  let rec loop () =
    if live () then begin
      let ni = t.next_idx.(peer_pos) in
      let until = min t.log_len (ni + t.cfg.max_append - 1) in
      let entries =
        if until < ni then []
        else List.init (until - ni + 1) (fun k -> entry t (ni + k))
      in
      let prev = ni - 1 in
      let prev_term = if prev = 0 then 0 else (entry t prev).eterm in
      t.appends <- t.appends + 1;
      let t_send = Fiber.now () in
      (match
         Stack.call t.stack ~dst:peer ~port:t.raft_port
           ~timeout:t.cfg.rpc_timeout ~attempts:1
           (encode_append t ~prev ~prev_term ~entries)
       with
      | None -> ()  (* lost or slow; next round retries *)
      | Some reply -> (
        match
          let r = Wire.reader ~pos:1 reply in
          if String.length reply = 0 || reply.[0] <> 'e' then
            raise Wire.Malformed;
          let rterm = Wire.int_ r in
          let success = Wire.int_ r = 1 in
          let m = Wire.int_ r in
          (rterm, success, m)
        with
        | exception Wire.Malformed -> ()
        | rterm, success, m ->
          if rterm > t.term then step_down t rterm
          else if live () then begin
            if success then begin
              (* the peer processed an append sent at t_send: it heard
                 from us no earlier than that, which is what the lease
                 order statistic needs (heartbeats renew too: an empty
                 append acks the same way) *)
              if t_send > t.lease_acked.(peer_pos) then
                t.lease_acked.(peer_pos) <- t_send;
              t.match_idx.(peer_pos) <- max t.match_idx.(peer_pos) m;
              t.next_idx.(peer_pos) <- t.match_idx.(peer_pos) + 1;
              maybe_commit t
            end
            else t.next_idx.(peer_pos) <- max 1 (t.next_idx.(peer_pos) - 1)
          end));
      (* pace: drain backlog immediately, otherwise idle until the next
         heartbeat or a fresh proposal kicks us *)
      if live () && t.next_idx.(peer_pos) > t.log_len then
        ignore
          (Chan.choose
             [ Svc.recv_case kick (fun _ -> ());
               Chan.after t.cfg.heartbeat (fun () -> ()) ]);
      loop ()
    end
  in
  loop ()

(* Group commit: flush the accumulated window to the replicators in
   one AppendEntries round per peer and try to commit.  Also the
   size-triggered fast path out of [propose]. *)
let flush_batch t =
  t.batch_pending <- 0;
  t.group_commits <- t.group_commits + 1;
  kick_replicators t;
  maybe_commit t

(* The group-commit batcher (leader only, batch_window > 0): proposals
   ring the doorbell; the batcher lets the window elapse so log
   neighbours accumulate, then flushes them as one replication round.
   The doorbell is the same capacity-1 `Reject endpoint the replicator
   kicks use: redundant rings during a window are coalesced (they show
   up in the rejected counter), so a thousand proposals in one window
   cost one flush.  [take_batch] drains any rings that slipped in
   between the sleep and the flush. *)
let batcher t ~lineage ~my_term =
  let bell =
    Svc.cast_create
      ~config:(Svc.config ~capacity:1 ~policy:`Reject ())
      ~subsystem:"cluster" ~metric_name:"batch" ~label:"raft-batch" ()
  in
  t.batch_kick <- Some bell;
  let live () =
    t.role = Leader && t.term = my_term && t.lineage = lineage
  in
  let rec loop () =
    if live () then begin
      let rung =
        Chan.choose
          [ Svc.recv_case bell (fun () -> true);
            Chan.after t.cfg.heartbeat (fun () -> false) ]
      in
      if live () && rung then begin
        Fiber.sleep t.cfg.batch_window;
        (* rings that landed during the sleep belong to entries already
           in the log: this flush covers them (a leftover ring at worst
           buys one empty follow-up round) *)
        if live () then flush_batch t
      end;
      loop ()
    end
  in
  loop ()

let become_leader t ~register ~lineage =
  t.role <- Leader;
  t.leader_hint <- t.self;
  t.won <- t.won + 1;
  t.kicks <- [];
  t.batch_kick <- None;
  t.batch_pending <- 0;
  Array.fill t.lease_acked 0 (Array.length t.lease_acked) (-1);
  Array.iteri (fun i _ -> t.next_idx.(i) <- t.log_len + 1) t.next_idx;
  Array.iteri (fun i _ -> t.match_idx.(i) <- 0) t.match_idx;
  (* a fresh no-op pins the new term in the log so earlier entries can
     commit under the current-term counting rule *)
  append_entry t { eterm = t.term; cmd = Nop };
  t.term_start <- t.log_len;
  t.on_event (Leader_won { shard = t.shard; node = t.self; term = t.term });
  let my_term = t.term in
  Array.iteri
    (fun i _ ->
      register
        (Fiber.spawn
           ~label:
             (Printf.sprintf "raft-repl-s%d-n%d-p%d" t.shard t.self
                t.peers.(i))
           ~daemon:true
           (fun () -> replicator t ~lineage ~my_term ~peer_pos:i)))
    t.peers;
  if t.cfg.batch_window > 0 then
    register
      (Fiber.spawn
         ~label:(Printf.sprintf "raft-batch-s%d-n%d" t.shard t.self)
         ~daemon:true
         (fun () -> batcher t ~lineage ~my_term));
  maybe_commit t

(* ------------------------------------------------------------------ *)
(* Elections                                                           *)

let run_election t ~register ~lineage =
  t.role <- Candidate;
  t.term <- t.term + 1;
  t.voted_for <- Some t.self;
  t.elections <- t.elections + 1;
  t.last_heartbeat <- Fiber.now ();
  let my_term = t.term in
  t.on_event (Election_started { shard = t.shard; node = t.self; term = my_term });
  Span.with_ ~subsystem:"cluster" "election" @@ fun () ->
  let npeers = Array.length t.peers in
  if npeers = 0 then become_leader t ~register ~lineage
  else begin
    let votes = Chan.buffered (max 1 npeers) in
    let req = encode_vote_req t in
    Array.iteri
      (fun i peer ->
        register
          (Fiber.spawn
             ~label:(Printf.sprintf "raft-vote-s%d-n%d-p%d" t.shard t.self i)
             ~daemon:true
             (fun () ->
               let reply =
                 Stack.call t.stack ~dst:peer ~port:t.raft_port
                   ~timeout:t.cfg.rpc_timeout ~attempts:2 req
               in
               let parsed =
                 match reply with
                 | Some s when String.length s > 1 && s.[0] = 'v' -> (
                   match
                     let r = Wire.reader ~pos:1 s in
                     let rt = Wire.int_ r in
                     let g = Wire.int_ r = 1 in
                     (rt, g)
                   with
                   | v -> v
                   | exception Wire.Malformed -> (0, false))
                 | Some _ | None -> (0, false)
               in
               Chan.send votes parsed)))
      t.peers;
    let still_candidate () =
      t.role = Candidate && t.term = my_term && t.lineage = lineage
    in
    let granted = ref 1 (* own vote *) and heard = ref 0 in
    let deadline = t.cfg.election_lo in
    let rec collect () =
      if
        still_candidate ()
        && !granted < majority t
        && !heard < npeers
      then begin
        match
          Chan.choose
            [ Chan.recv_case votes (fun v -> Some v);
              Chan.after deadline (fun () -> None) ]
        with
        | None -> ()  (* election timed out; the timer loop retries *)
        | Some (rterm, g) ->
          incr heard;
          if rterm > t.term then step_down t rterm
          else begin
            if g then incr granted;
            collect ()
          end
      end
    in
    collect ();
    if still_candidate () && !granted >= majority t then
      become_leader t ~register ~lineage
    else if still_candidate () then
      (* lost or split: drop back and let the randomized timer retry *)
      t.role <- Follower
  end

let start_timer t ~register =
  let lineage = t.lineage in
  Fiber.spawn
    ~label:(Printf.sprintf "raft-timer-s%d-n%d" t.shard t.self)
    ~daemon:true
    (fun () ->
      let rec loop () =
        if t.lineage = lineage then begin
          let span =
            t.cfg.election_lo
            + Rng.int t.rng (max 1 (t.cfg.election_hi - t.cfg.election_lo))
          in
          Fiber.sleep span;
          if t.lineage = lineage then begin
            if
              t.role <> Leader
              && Fiber.now () - t.last_heartbeat >= span
            then run_election t ~register ~lineage;
            loop ()
          end
        end
      in
      loop ())

(* ------------------------------------------------------------------ *)
(* Client proposals (leader only; blocks, so run in a worker fiber)    *)

let propose t cmd =
  if t.role <> Leader then `Not_leader t.leader_hint
  else
    Span.timed ~subsystem:"cluster" ~name:"propose" t.propose_h @@ fun () ->
    let my_term = t.term in
    append_entry t { eterm = my_term; cmd };
    let idx = t.log_len in
    let ch = Chan.buffered 1 in
    Hashtbl.replace t.waiters idx (my_term, ch);
    if t.cfg.batch_window > 0 then begin
      (* group commit: park the entry in the window; a full window
         flushes immediately, otherwise the batcher's timer does *)
      t.batch_pending <- t.batch_pending + 1;
      if t.batch_pending >= t.cfg.max_append then flush_batch t
      else
        match t.batch_kick with
        | Some bell -> Svc.cast bell ()
        | None -> flush_batch t  (* batcher not up yet: don't stall *)
    end
    else begin
      kick_replicators t;
      maybe_commit t  (* a single-replica group commits synchronously *)
    end;
    let result =
      Chan.choose
        [ Chan.recv_case ch (fun (r : wait_result) -> (r :> [ wait_result | `Timeout ]));
          Chan.after t.cfg.propose_timeout (fun () -> `Timeout) ]
    in
    (match Hashtbl.find_opt t.waiters idx with
    | Some (_, c) when c == ch -> Hashtbl.remove t.waiters idx
    | Some _ | None -> ());
    match result with
    | `Applied payload -> `Ok payload
    | `Lost | `Timeout -> `Retry
