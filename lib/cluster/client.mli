(** Smart cluster client: map discovery, shard routing, leader
    tracking and retry with bounded exponential backoff.

    A client is a plain fabric node with its own {!Chorus_net.Stack}.
    On first use it fetches the {!Shardmap} from a bootstrap node, then
    routes each operation to the owning shard's replicas directly.
    ["L<addr>"] redirects are followed immediately (no backoff — the
    cluster just told us where to go); timeouts and ["R"] retries back
    off exponentially with seed-derived jitter and rotate to the next
    replica, so a crashed leader costs one election's worth of retries,
    not a wedge.  Acked puts ([`Ok]) are committed on a majority and
    survive any single node crash; gets are proposed through the log,
    so reads are linearizable. *)

type t

type breaker_config = { trip_after : int; cooldown : int }
(** Per-node circuit breaker parameters: [trip_after] consecutive
    failures (silent/empty replies, deadline misses) open the node's
    breaker for [cooldown] virtual cycles.  While open, routing steers
    operations to other replicas; at cooldown expiry the breaker goes
    half-open and the next operation to consider the node is the
    probe — success closes the breaker, failure re-opens it for
    another cooldown.  Any response at all (including a leader
    redirect) counts as success: breakers track liveness, not
    leadership. *)

type breaker_state = [ `Closed | `Open | `Half_open ]

val create :
  ?attempts:int -> ?call_timeout:int -> ?backoff_base:int ->
  ?backoff_cap:int -> ?breaker:breaker_config -> ?op_budget:int ->
  seed:int -> bootstrap:int list -> Chorus_net.Stack.t -> t
(** [bootstrap] lists node addresses tried in order for map discovery.
    Defaults: [attempts] 10 per operation, [call_timeout] 60k cycles
    per RPC, backoff base 15k doubling to a 120k cap, +-25%
    seed-derived jitter.  [breaker] (default off) arms per-node
    circuit breakers; [op_budget] (default off) gives every operation
    an absolute deadline [now + op_budget] — checked before each
    attempt, with each RPC timeout clamped to the remaining budget —
    so a gray (slow-but-alive) node costs a bounded slice of the
    caller's time instead of the full retry ladder.  Both default to
    off, leaving the client byte-identical to the pre-breaker one. *)

val put : t -> string -> string -> [ `Ok | `Net_fail ]
(** [`Net_fail] means every attempt was exhausted without a response —
    the same typed verdict (and the same name) as
    {!Chorus_net.Netkv.get}'s, so callers handle single-node and
    clustered give-ups with one pattern.  The operation may or may not
    have taken effect: a lost ack is not a lost write. *)

val get : t -> string -> [ `Found of string | `Miss | `Net_fail ]

val retries : t -> int
(** Operation-level retries performed (not counting the stack's own
    frame retransmissions). *)

val redirects : t -> int
(** ["L<addr>"] leader redirects followed. *)

val ops_failed : t -> int
(** Operations that exhausted every attempt ([`Net_fail]). *)

val map_reads : t -> int
(** Lock-free routing-snapshot reads performed ({!Chorus_util.Rcu}
    read-side count). *)

val map_publishes : t -> int
(** Fresh shardmap snapshots published (initial fetch + every
    stale-map refetch). *)

(** {1 Breaker introspection} *)

val breaker_state : t -> int -> breaker_state
(** The breaker posture of a node address as of now (a node never seen,
    or on a client without breakers, reads [`Closed]).  An open breaker
    whose cooldown has expired reads [`Half_open]. *)

val breaker_trips : t -> int
(** Closed/half-open -> open transitions. *)

val breaker_skips : t -> int
(** Routing decisions that steered an operation off an open node. *)

val breaker_probes : t -> int
(** Open -> half-open transitions (cooldown expiries). *)

val deadline_misses : t -> int
(** Operations failed fast because their [op_budget] deadline passed
    (each also counts in {!ops_failed}). *)

(** {1 Pipelining}

    A pipe keeps up to [depth] operations of one client in flight at
    once, each tagged with a monotonically increasing sequence number,
    and delivers sequence-tagged completions on a channel as they
    finish — the strict call/response round-trip per operation becomes
    a sliding window, which is what lets an open-loop generator drive
    a single connection far past one-op-per-RTT.  Completions may
    arrive out of submission order (redirect/retry histories differ
    per key); the sequence number is the correlation.  One pipe per
    client: the pipe owns the client's in-flight accounting, which the
    [cluster/client<addr>] {!Chorus.Inspect} provider reports. *)

type pipe

type op = Op_put of string * string | Op_get of string

type op_result = [ `Ok | `Found of string | `Miss | `Net_fail ]
(** [`Ok] acks a put; [`Found]/[`Miss] answer a get; [`Net_fail] as in
    {!put}/{!get}. *)

type completion = { seq : int; at : int; result : op_result }
(** [at] is the virtual completion time — latency measurement stays
    exact even when a driver drains completions in arrears. *)

val pipeline : ?depth:int -> t -> pipe
(** [pipeline ~depth t] (default depth 8) opens the sliding window. *)

val submit : pipe -> op -> int
(** Start an operation and return its sequence number.  Blocks only
    while the window is full ([depth] ops already in flight) — the
    submission-side backpressure an open-loop driver leans on. *)

val completions : pipe -> completion Chorus.Chan.t
(** The completion stream: exactly one message per {!submit}, in
    completion order. *)

val inflight : pipe -> int

val inflight_hwm : pipe -> int
(** Highest concurrent in-flight count reached. *)

val pipe_depth : pipe -> int
