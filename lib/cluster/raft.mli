(** A deterministic Raft-style replication core for one shard.

    Each replica of a shard's replica group runs this state machine on
    its node: randomized-by-seed election timeouts elect a leader;
    the leader replicates a term-tagged command log to its peers over
    {!Chorus_net.Stack.call} (one replicator fiber per follower, the
    paper's driver pattern); an entry is committed once a majority
    acknowledges it, and only committed entries are applied to the
    key-value store or acknowledged to clients.  Elections grant votes
    only to candidates whose log is at least as up to date, so an
    acknowledged write survives any single leader crash.

    Everything stochastic (election timeouts) draws from a replica-local
    seeded {!Chorus_util.Rng}, and all communication rides the
    deterministic engine, so whole-cluster runs — elections, failovers
    and all — are byte-identical for the same seed.

    Crash/restart model: {!reset_volatile} wipes exactly the state Raft
    declares volatile (role, leader hint, peer indexes, client waiters)
    while term, vote and log survive as modeled stable storage. *)

type config = {
  heartbeat : int;  (** leader append/heartbeat interval, cycles *)
  election_lo : int;  (** election timeout drawn from \[lo, hi) *)
  election_hi : int;
  rpc_timeout : int;  (** per-attempt timeout of raft RPCs *)
  propose_timeout : int;  (** client-visible wait for commit+apply *)
  batch_window : int;
      (** group-commit accumulation window in cycles; [0] (default)
          disables batching: every proposal kicks the replicators
          immediately, the pre-batching behaviour bit for bit *)
  max_append : int;
      (** entries per AppendEntries RPC; doubles as the batch-size
          flush trigger when [batch_window > 0] *)
  lease : bool;
      (** leader leases: serve reads locally while a majority has
          acked an append within [election_lo]; also arms the
          vote-refusal guard that makes the lease sound (followers
          that heard a leader within [election_lo] do not vote) *)
  lease_margin : int;  (** safety slack subtracted from the lease *)
  seed : int;
}

val default_config : seed:int -> config
(** heartbeat 25k, election 120k–240k, rpc timeout 30k, propose
    timeout 200k cycles; batching off ([batch_window = 0],
    [max_append = 16]), leases off, lease margin 10k. *)

type role = Follower | Candidate | Leader

type cmd = Nop | Put of string * string | Get of string

type event =
  | Election_started of { shard : int; node : int; term : int }
  | Leader_won of { shard : int; node : int; term : int }
  | Stepped_down of { shard : int; node : int; term : int }

type t

val create :
  config -> stack:Chorus_net.Stack.t -> raft_port:int -> shard:int ->
  peers:int array -> on_event:(event -> unit) -> t
(** [peers] are the other group members' addresses (exclude self). *)

(** {1 Introspection} *)

val role : t -> role

val term : t -> int

val leader_hint : t -> int
(** Last known leader address, [-1] when unknown. *)

val commit_index : t -> int

val log_length : t -> int

val elections_started : t -> int

val elections_won : t -> int

val appends_sent : t -> int

val applied : t -> int

val group_commits : t -> int
(** Batcher flushes performed (0 unless [batch_window > 0]). *)

val leased_reads : t -> int
(** Reads served locally under the leader lease. *)

val lease_denied : t -> int
(** Lease-read attempts that fell back to the quorum path. *)

val lease_valid : t -> bool
(** Whether a leased read would be served right now: leases on, this
    replica leads, its term has committed, and the majority-ack order
    statistic plus [election_lo - lease_margin] is still ahead of
    virtual now. *)

(** {1 Node integration} *)

val start_timer : t -> register:(Chorus.Fiber.t -> unit) -> Chorus.Fiber.t
(** Spawn the election-timer fiber (daemon) and return it.  Every
    fiber the replica spawns from this lineage (vote gatherers, leader
    replicators) is passed to [register] so the owning node can kill
    them all on a crash. *)

val reset_volatile : t -> unit
(** Crash recovery: demote to follower, forget the leader, drop client
    waiters and invalidate stale fibers of earlier lineages.  Term,
    vote and log persist. *)

val handle_rpc : t -> src:int -> op:char -> Wire.reader -> string
(** Dispatch one raft RPC ([op] is ['V'] request-vote or ['E']
    append-entries; the reader is positioned after the shard field).
    Never blocks; called from the node's raft-port serve loop.
    Raises {!Wire.Malformed} on a bad payload. *)

val read_local :
  t -> string -> [ `Value of string option | `No_lease ]
(** Serve a read from the local store under the leader lease, without
    a quorum round: [`Value] is the committed value ([None] = miss)
    and is linearizable by the lease argument (DESIGN D13); [`No_lease]
    means the caller must fall back to {!propose} — always the answer
    when [config.lease] is off or this replica is not leading.  Charges
    one apply's worth of work on success; never blocks on the net. *)

val propose : t -> cmd -> [ `Ok of string | `Not_leader of int | `Retry ]
(** Submit a command on the leader and wait until it is applied (or
    until [propose_timeout]).  [`Ok payload] carries the apply result
    ("A" for puts, "F<v>"/"M" for gets); [`Not_leader hint] redirects;
    [`Retry] means leadership was lost or the wait timed out — the
    entry may or may not commit later, so callers must treat it as
    unacknowledged.  Blocks: call from a worker fiber. *)
