(** A sharded, replicated, self-healing key-value cluster.

    [create] attaches [nnodes] NICs to a {!Chorus_net.Fabric}, derives
    the {!Shardmap} every party agrees on, and builds one {!Raft}
    replica per (node, owned shard).  [start] boots every node under a
    {!Chorus_kernel.Supervisor}: each node is a supervised child whose
    root fiber anchors its serve loops, election timers and in-flight
    request workers.

    Failure detection and failover are layered: Raft followers detect a
    silent leader through missed heartbeats and elect a replacement
    (data-plane failover, bounded by the election timeout), while the
    supervisor detects the dead node fiber and restarts the whole node
    (control-plane healing — the restarted replica rejoins as a
    follower with its log intact, modeling recovery from stable
    storage).  Membership transitions and leadership changes are
    published to the optional {!Chorus_kernel.Notify} hub as [Custom]
    events ["cluster:node<a>:up"], ["cluster:node<a>:down"] and
    ["cluster:shard<s>:leader:<a>"].

    Wire protocol on {!client_port} (length-prefixed via {!Wire}):
    ['M'] fetches the encoded shard map; ['P' key value] and ['G' key]
    are routed ops answered ["A"] (put acked), ["F<v>"]/["M"]
    (get found / miss), ["L<addr>"] (not leader, hint; [-1] unknown),
    ["R"] (commit lost or timed out — retry), ["X"] (wrong node or
    malformed).  Replication RPCs ride {!raft_port}. *)

val client_port : int
(** 7000 *)

val raft_port : int
(** 7100 *)

type t

val create :
  ?raft:Raft.config -> ?notify:Chorus_kernel.Notify.t ->
  ?overload:Chorus_svc.Svc.config ->
  nshards:int -> replication:int -> seed:int -> nnodes:int ->
  Chorus_net.Fabric.t -> t
(** Attach the nodes and build their replicas.  Nothing runs until
    {!start}.  [raft] defaults to {!Raft.default_config} with [seed].
    [overload] is applied to every node's raft- and client-port
    endpoints (see {!Chorus_net.Stack.serve_async}): frames refused by
    [`Reject] or [`Shed_oldest] look like wire loss and are recovered
    by the caller's retransmission. *)

val start : ?max_restarts:int -> ?window:int -> t -> unit
(** Boot all nodes under a [One_for_one] supervisor (defaults:
    [max_restarts] 100 within [window] 50M cycles).  Call from inside
    a run. *)

val stop : t -> unit

val map : t -> Shardmap.t

val addrs : t -> int list
(** Node addresses, ascending. *)

val node_up : t -> int -> bool
(** By address. *)

val crash_node : t -> int -> unit
(** Fault injection: kill the node's root fiber (by address).  The
    monitor marks it down, reaps its fibers, and the supervisor
    restarts it. *)

val leader_of : t -> int -> int
(** [leader_of t shard]: address of the replica currently acting as
    leader, or [-1] when the shard has none (mid-election). *)

(** {1 Introspection for experiments and tests} *)

val elections_started : t -> int

val leader_changes : t -> int

val node_crashes : t -> int
(** Node-down events observed by the failure detector. *)

val restarts : t -> int
(** Supervisor restarts performed so far (0 before {!start}). *)

val raft_of : t -> node:int -> shard:int -> Raft.t option
(** The replica state machine a node runs for a shard, if it owns
    one.  For white-box assertions in tests. *)
