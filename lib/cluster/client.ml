module Fiber = Chorus.Fiber
module Stack = Chorus_net.Stack
module Rng = Chorus_util.Rng
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span

type t = {
  stack : Stack.t;
  bootstrap : int list;
  attempts : int;
  call_timeout : int;
  backoff_base : int;
  backoff_cap : int;
  rng : Rng.t;
  mutable map : Shardmap.t option;
  hints : (int, int) Hashtbl.t;  (* shard -> last known leader *)
  mutable retries : int;
  mutable redirects : int;
  mutable failed : int;
  put_h : Metrics.histogram;
  get_h : Metrics.histogram;
}

let create ?(attempts = 10) ?(call_timeout = 60_000) ?(backoff_base = 15_000)
    ?(backoff_cap = 120_000) ~seed ~bootstrap stack =
  if bootstrap = [] then invalid_arg "Client.create: no bootstrap nodes";
  { stack;
    bootstrap;
    attempts;
    call_timeout;
    backoff_base;
    backoff_cap;
    rng = Rng.make (seed lxor (0x0c11e47 + (977 * Stack.addr stack)));
    map = None;
    hints = Hashtbl.create 8;
    retries = 0;
    redirects = 0;
    failed = 0;
    put_h = Metrics.histogram ~subsystem:"cluster" "client.put";
    get_h = Metrics.histogram ~subsystem:"cluster" "client.get" }

let retries t = t.retries

let redirects t = t.redirects

let ops_failed t = t.failed

(* Bounded exponential backoff with +-25% jitter.  Same shape as the
   stack's retransmission backoff but at operation granularity: a
   whole election has to pass before a crashed leader's shard answers
   again, so waits stretch toward the cap instead of hammering. *)
let backoff t n =
  let w = min t.backoff_cap (t.backoff_base * (1 lsl min n 3)) in
  let j = w / 4 in
  Fiber.sleep ((w - j) + Rng.int t.rng ((2 * j) + 1))

let fetch_map t =
  let rec try_nodes = function
    | [] -> None
    | node :: rest -> (
      match
        Stack.call t.stack ~dst:node ~port:Cluster.client_port
          ~timeout:t.call_timeout ~attempts:2 "M"
      with
      | Some reply
        when String.length reply > 1 && reply.[0] = 'm' -> (
        match Shardmap.decode (String.sub reply 1 (String.length reply - 1)) with
        | Some m -> Some m
        | None -> try_nodes rest)
      | Some _ | None -> try_nodes rest)
  in
  try_nodes t.bootstrap

let rec ensure_map t n =
  match t.map with
  | Some m -> Some m
  | None -> (
    match fetch_map t with
    | Some m ->
      t.map <- Some m;
      Some m
    | None ->
      if n + 1 >= t.attempts then None
      else begin
        t.retries <- t.retries + 1;
        backoff t n;
        ensure_map t (n + 1)
      end)

let encode_put k v =
  let b = Buffer.create (String.length k + String.length v + 8) in
  Buffer.add_char b 'P';
  Wire.enc_str b k;
  Wire.enc_str b v;
  Buffer.contents b

let encode_get k =
  let b = Buffer.create (String.length k + 4) in
  Buffer.add_char b 'G';
  Wire.enc_str b k;
  Buffer.contents b

(* One routed operation: pick the hinted leader (else the preferred
   replica), follow redirects immediately, rotate + back off on
   timeout/retry.  [n] counts attempts that consumed backoff budget;
   redirects are free but bounded by [t.attempts] total hops via
   [hops]. *)
let operation t ~key ~req =
  match ensure_map t 0 with
  | None ->
    t.failed <- t.failed + 1;
    `Net_fail
  | Some map ->
    let shard = Shardmap.shard_of_key map key in
    let replicas = Shardmap.replicas map shard in
    let nrep = Array.length replicas in
    let target = ref
        (match Hashtbl.find_opt t.hints shard with
        | Some a -> a
        | None -> replicas.(0))
    and rotation = ref 0 in
    let rotate () =
      Hashtbl.remove t.hints shard;
      incr rotation;
      target := replicas.(!rotation mod nrep)
    in
    let rec go n hops =
      if n >= t.attempts || hops >= 4 * t.attempts then begin
        t.failed <- t.failed + 1;
        `Net_fail
      end
      else begin
        let retry ?(redirect = false) () =
          if redirect then go n (hops + 1)
          else begin
            t.retries <- t.retries + 1;
            backoff t n;
            go (n + 1) (hops + 1)
          end
        in
        match
          Stack.call t.stack ~dst:!target ~port:Cluster.client_port
            ~timeout:t.call_timeout ~attempts:2 req
        with
        | None ->
          (* node silent: likely down, try the next replica *)
          rotate ();
          retry ()
        | Some reply when String.length reply = 0 -> rotate (); retry ()
        | Some reply -> (
          match reply.[0] with
          | 'A' ->
            Hashtbl.replace t.hints shard !target;
            `Acked
          | 'F' ->
            Hashtbl.replace t.hints shard !target;
            `Found (String.sub reply 1 (String.length reply - 1))
          | 'M' ->
            Hashtbl.replace t.hints shard !target;
            `Miss
          | 'L' -> (
            match int_of_string_opt (String.sub reply 1 (String.length reply - 1)) with
            | Some hint when hint >= 0 && hint <> !target ->
              (* free fast-path: the follower told us who leads *)
              t.redirects <- t.redirects + 1;
              Hashtbl.replace t.hints shard hint;
              target := hint;
              retry ~redirect:true ()
            | Some _ | None ->
              (* no leader yet: wait out the election *)
              rotate ();
              retry ())
          | 'R' ->
            (* proposal lost to a leadership change: same target may
               well have recovered, but re-route defensively *)
            rotate ();
            retry ()
          | 'X' ->
            (* wrong node: our map is stale, refetch *)
            t.map <- None;
            (match ensure_map t 0 with Some _ -> () | None -> ());
            rotate ();
            retry ()
          | _ -> rotate (); retry ())
      end
    in
    go 0 0

let put t k v =
  Span.timed ~subsystem:"cluster" ~name:"client.put" t.put_h @@ fun () ->
  match operation t ~key:k ~req:(encode_put k v) with
  | `Acked -> `Ok
  | `Found _ | `Miss -> `Ok  (* cannot happen for a put *)
  | `Net_fail -> `Net_fail

let get t k =
  Span.timed ~subsystem:"cluster" ~name:"client.get" t.get_h @@ fun () ->
  match operation t ~key:k ~req:(encode_get k) with
  | `Found v -> `Found v
  | `Miss -> `Miss
  | `Acked -> `Miss  (* cannot happen for a get *)
  | `Net_fail -> `Net_fail
