module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Stack = Chorus_net.Stack
module Rng = Chorus_util.Rng
module Rcu = Chorus_util.Rcu
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span

(* Circuit breaker, per target node, on the virtual clock.  Closed
   passes traffic and counts consecutive failures; [trip_after] of
   them opens the breaker for [cooldown] cycles, during which the
   routing layer steers around the node; at cooldown expiry the next
   operation to consider the node becomes the half-open probe — its
   verdict alone closes or re-opens the breaker.  Any successful
   response (including a leader redirect: the node answered) resets
   the failure count. *)
type breaker_config = { trip_after : int; cooldown : int }

type breaker_state = [ `Closed | `Open | `Half_open ]

type node_breaker = {
  mutable bst : [ `Closed | `Open_until of int | `Half_open ];
  mutable fails : int;  (* consecutive failures while closed *)
}

type t = {
  stack : Stack.t;
  bootstrap : int list;
  attempts : int;
  call_timeout : int;
  backoff_base : int;
  backoff_cap : int;
  breaker : breaker_config option;
  op_budget : int option;
      (* per-operation deadline budget in cycles: an operation that
         outlives it fails fast with [`Net_fail] instead of burning
         its remaining attempts *)
  breakers : (int, node_breaker) Hashtbl.t;  (* node addr -> breaker *)
  rng : Rng.t;
  map : Shardmap.snapshot option Rcu.t;
      (* RCU-published routing snapshot: the op hot path reads it
         lock-free; a stale-map verdict publishes a fresh one *)
  hints : (int, int) Hashtbl.t;  (* shard -> last known leader *)
  mutable retries : int;
  mutable redirects : int;
  mutable failed : int;
  mutable trips : int;  (* closed/half-open -> open transitions *)
  mutable breaker_skips : int;  (* routing decisions steered off an open node *)
  mutable probes : int;  (* open -> half-open transitions *)
  mutable deadline_misses : int;  (* ops failed fast on the op budget *)
  (* pipeline stats (one pipeline per client at most) *)
  mutable inflight : int;
  mutable inflight_hwm : int;
  mutable submitted : int;
  mutable completed : int;
  mutable pipe_depth : int;  (* 0 = no pipeline created *)
  put_h : Metrics.histogram;
  get_h : Metrics.histogram;
}

let create ?(attempts = 10) ?(call_timeout = 60_000) ?(backoff_base = 15_000)
    ?(backoff_cap = 120_000) ?breaker ?op_budget ~seed ~bootstrap stack =
  if bootstrap = [] then invalid_arg "Client.create: no bootstrap nodes";
  (match breaker with
  | Some { trip_after; cooldown } when trip_after < 1 || cooldown < 1 ->
    invalid_arg "Client.create: breaker needs trip_after/cooldown >= 1"
  | _ -> ());
  (match op_budget with
  | Some b when b < 1 -> invalid_arg "Client.create: op_budget must be >= 1"
  | _ -> ());
  let t =
    { stack;
      bootstrap;
      attempts;
      call_timeout;
      backoff_base;
      backoff_cap;
      breaker;
      op_budget;
      breakers = Hashtbl.create 8;
      rng = Rng.make (seed lxor (0x0c11e47 + (977 * Stack.addr stack)));
      map = Rcu.make None;
      hints = Hashtbl.create 8;
      retries = 0;
      redirects = 0;
      failed = 0;
      trips = 0;
      breaker_skips = 0;
      probes = 0;
      deadline_misses = 0;
      inflight = 0;
      inflight_hwm = 0;
      submitted = 0;
      completed = 0;
      pipe_depth = 0;
      put_h = Metrics.histogram ~subsystem:"cluster" "client.put";
      get_h = Metrics.histogram ~subsystem:"cluster" "client.get" }
  in
  (* host-side snapshot hook: replay snapshots show the client's
     retry/backoff posture and pipeline occupancy *)
  Chorus.Inspect.register
    ~name:(Printf.sprintf "cluster/client%d" (Stack.addr t.stack))
    (fun () ->
      let open Chorus.Inspect in
      Assoc
        [ ("attempts", Int t.attempts);
          ("backoff_base", Int t.backoff_base);
          ("backoff_cap", Int t.backoff_cap);
          ("retries", Int t.retries);
          ("redirects", Int t.redirects);
          ("failed", Int t.failed);
          ("map_version",
           Int (match Rcu.peek t.map with None -> 0 | Some m -> Shardmap.version m));
          ("map_publishes", Int (Rcu.publishes t.map));
          ("pipeline_depth", Int t.pipe_depth);
          ("inflight", Int t.inflight);
          ("inflight_hwm", Int t.inflight_hwm);
          ("submitted", Int t.submitted);
          ("completed", Int t.completed);
          ("breaker",
           match t.breaker with
           | None -> Null
           | Some { trip_after; cooldown } ->
             Assoc
               [ ("trip_after", Int trip_after);
                 ("cooldown", Int cooldown);
                 ("trips", Int t.trips);
                 ("skips", Int t.breaker_skips);
                 ("probes", Int t.probes);
                 ("open_now",
                  Int
                    (Hashtbl.fold
                       (fun _ b acc ->
                         match b.bst with
                         | `Open_until _ -> acc + 1
                         | `Closed | `Half_open -> acc)
                       t.breakers 0)) ]);
          ("op_budget",
           match t.op_budget with None -> Null | Some b -> Int b);
          ("deadline_misses", Int t.deadline_misses) ]);
  t

(* ------------------------------------------------------------------ *)
(* Breaker machinery: every function is a no-op (and allocates
   nothing) when the client was created without ~breaker, so the
   default client is unchanged.                                       *)

let bk t node =
  match Hashtbl.find_opt t.breakers node with
  | Some b -> b
  | None ->
    let b = { bst = `Closed; fails = 0 } in
    Hashtbl.replace t.breakers node b;
    b

(* Is the node's breaker open right now?  An expired cooldown
   transitions open -> half-open here (lazily, on the virtual clock):
   the caller asking is the probe. *)
let breaker_blocks t node =
  match t.breaker with
  | None -> false
  | Some _ -> (
    let b = bk t node in
    match b.bst with
    | `Closed | `Half_open -> false
    | `Open_until until ->
      if Fiber.now () >= until then begin
        b.bst <- `Half_open;
        t.probes <- t.probes + 1;
        false
      end
      else true)

let record_failure t node =
  match t.breaker with
  | None -> ()
  | Some cfg -> (
    let b = bk t node in
    b.fails <- b.fails + 1;
    match b.bst with
    | `Half_open ->
      (* the probe failed: straight back to open *)
      t.trips <- t.trips + 1;
      b.bst <- `Open_until (Fiber.now () + cfg.cooldown)
    | `Closed when b.fails >= cfg.trip_after ->
      t.trips <- t.trips + 1;
      b.bst <- `Open_until (Fiber.now () + cfg.cooldown)
    | `Closed | `Open_until _ -> ())

let record_success t node =
  match t.breaker with
  | None -> ()
  | Some _ -> (
    match Hashtbl.find_opt t.breakers node with
    | None -> ()
    | Some b ->
      b.bst <- `Closed;
      b.fails <- 0)

let breaker_state t node : breaker_state =
  match Hashtbl.find_opt t.breakers node with
  | None -> `Closed
  | Some b -> (
    match b.bst with
    | `Closed -> `Closed
    | `Half_open -> `Half_open
    | `Open_until until -> if Fiber.now () >= until then `Half_open else `Open)

let retries t = t.retries

let redirects t = t.redirects

let ops_failed t = t.failed

let map_reads t = Rcu.reads t.map

let map_publishes t = Rcu.publishes t.map

let breaker_trips t = t.trips

let breaker_skips t = t.breaker_skips

let breaker_probes t = t.probes

let deadline_misses t = t.deadline_misses

(* Bounded exponential backoff with +-25% jitter.  Same shape as the
   stack's retransmission backoff but at operation granularity: a
   whole election has to pass before a crashed leader's shard answers
   again, so waits stretch toward the cap instead of hammering. *)
let backoff t n =
  let w = min t.backoff_cap (t.backoff_base * (1 lsl min n 3)) in
  let j = w / 4 in
  Fiber.sleep ((w - j) + Rng.int t.rng ((2 * j) + 1))

let fetch_map t =
  let rec try_nodes = function
    | [] -> None
    | node :: rest -> (
      match
        Stack.call t.stack ~dst:node ~port:Cluster.client_port
          ~timeout:t.call_timeout ~attempts:2 "M"
      with
      | Some reply
        when String.length reply > 1 && reply.[0] = 'm' -> (
        match Shardmap.decode (String.sub reply 1 (String.length reply - 1)) with
        | Some m -> Some m
        | None -> try_nodes rest)
      | Some _ | None -> try_nodes rest)
  in
  try_nodes t.bootstrap

let rec ensure_map t n =
  match Rcu.read t.map with
  | Some m -> Some m
  | None -> (
    match fetch_map t with
    | Some m ->
      Rcu.publish t.map (Some m);
      Some m
    | None ->
      if n + 1 >= t.attempts then None
      else begin
        t.retries <- t.retries + 1;
        backoff t n;
        ensure_map t (n + 1)
      end)

let encode_put k v =
  let b = Buffer.create (String.length k + String.length v + 8) in
  Buffer.add_char b 'P';
  Wire.enc_str b k;
  Wire.enc_str b v;
  Buffer.contents b

let encode_get k =
  let b = Buffer.create (String.length k + 4) in
  Buffer.add_char b 'G';
  Wire.enc_str b k;
  Buffer.contents b

(* One routed operation: pick the hinted leader (else the preferred
   replica), follow redirects immediately, rotate + back off on
   timeout/retry.  [n] counts attempts that consumed backoff budget;
   redirects are free but bounded by [t.attempts] total hops via
   [hops].

   With a breaker installed, routing steers around open nodes: the
   initial pick and every rotation advance past replicas whose breaker
   is open (when {e every} replica is open the current target is kept
   — the call itself is the probe that can ever close a breaker
   again).  With an op budget, the operation carries an absolute
   deadline: checked before every attempt, and each RPC's timeout is
   clamped to the remaining budget, so the op fails fast instead of
   queueing retries behind a gray node. *)
let operation t ~key ~req =
  let dl = match t.op_budget with None -> None | Some b -> Some (Fiber.now () + b) in
  match ensure_map t 0 with
  | None ->
    t.failed <- t.failed + 1;
    `Net_fail
  | Some map ->
    let shard = Shardmap.shard_of_key map key in
    let replicas = Shardmap.replicas map shard in
    let nrep = Array.length replicas in
    let target = ref
        (match Hashtbl.find_opt t.hints shard with
        | Some a -> a
        | None -> replicas.(0))
    and rotation = ref 0 in
    let rotate () =
      Hashtbl.remove t.hints shard;
      incr rotation;
      target := replicas.(!rotation mod nrep)
    in
    (* steer off an open breaker: advance the rotation until a
       non-open replica turns up, at most one full cycle *)
    let steer () =
      if breaker_blocks t !target then begin
        let rec scan k =
          if k < nrep then begin
            incr rotation;
            let cand = replicas.(!rotation mod nrep) in
            if breaker_blocks t cand then scan (k + 1)
            else begin
              t.breaker_skips <- t.breaker_skips + 1;
              Hashtbl.remove t.hints shard;
              target := cand
            end
          end
        in
        scan 0
      end
    in
    steer ();
    let rec go n hops =
      if (match dl with Some d -> Fiber.now () >= d | None -> false) then begin
        t.deadline_misses <- t.deadline_misses + 1;
        record_failure t !target;
        t.failed <- t.failed + 1;
        `Net_fail
      end
      else if n >= t.attempts || hops >= 4 * t.attempts then begin
        t.failed <- t.failed + 1;
        `Net_fail
      end
      else begin
        let retry ?(redirect = false) () =
          if redirect then go n (hops + 1)
          else begin
            t.retries <- t.retries + 1;
            backoff t n;
            steer ();
            go (n + 1) (hops + 1)
          end
        in
        let timeout =
          match dl with
          | None -> t.call_timeout
          | Some d -> min t.call_timeout (max 1 (d - Fiber.now ()))
        in
        match
          Stack.call t.stack ~dst:!target ~port:Cluster.client_port
            ~timeout ~attempts:2 req
        with
        | None ->
          (* node silent: likely down, try the next replica *)
          record_failure t !target;
          rotate ();
          retry ()
        | Some reply when String.length reply = 0 ->
          record_failure t !target;
          rotate ();
          retry ()
        | Some reply -> (
          record_success t !target;
          match reply.[0] with
          | 'A' ->
            Hashtbl.replace t.hints shard !target;
            `Acked
          | 'F' ->
            Hashtbl.replace t.hints shard !target;
            `Found (String.sub reply 1 (String.length reply - 1))
          | 'M' ->
            Hashtbl.replace t.hints shard !target;
            `Miss
          | 'L' -> (
            match int_of_string_opt (String.sub reply 1 (String.length reply - 1)) with
            | Some hint when hint >= 0 && hint <> !target ->
              (* free fast-path: the follower told us who leads *)
              t.redirects <- t.redirects + 1;
              Hashtbl.replace t.hints shard hint;
              target := hint;
              retry ~redirect:true ()
            | Some _ | None ->
              (* no leader yet: wait out the election *)
              rotate ();
              retry ())
          | 'R' ->
            (* proposal lost to a leadership change: same target may
               well have recovered, but re-route defensively *)
            rotate ();
            retry ()
          | 'X' ->
            (* wrong node: our map is stale — retract the snapshot and
               publish a freshly fetched one *)
            Rcu.publish t.map None;
            (match ensure_map t 0 with Some _ -> () | None -> ());
            rotate ();
            retry ()
          | _ -> rotate (); retry ())
      end
    in
    go 0 0

let put t k v =
  Span.timed ~subsystem:"cluster" ~name:"client.put" t.put_h @@ fun () ->
  match operation t ~key:k ~req:(encode_put k v) with
  | `Acked -> `Ok
  | `Found _ | `Miss -> `Ok  (* cannot happen for a put *)
  | `Net_fail -> `Net_fail

let get t k =
  Span.timed ~subsystem:"cluster" ~name:"client.get" t.get_h @@ fun () ->
  match operation t ~key:k ~req:(encode_get k) with
  | `Found v -> `Found v
  | `Miss -> `Miss
  | `Acked -> `Miss  (* cannot happen for a get *)
  | `Net_fail -> `Net_fail

(* ------------------------------------------------------------------ *)
(* Pipelining: multiple in-flight operations per client                *)

type op = Op_put of string * string | Op_get of string

type op_result = [ `Ok | `Found of string | `Miss | `Net_fail ]

type completion = { seq : int; at : int; result : op_result }

type pipe = {
  client : t;
  depth : int;
  window : unit Chan.t;  (* semaphore: depth slots *)
  done_c : completion Chan.t;
  mutable next_seq : int;
}

let pipeline ?(depth = 8) t =
  if depth < 1 then invalid_arg "Client.pipeline: depth";
  t.pipe_depth <- depth;
  { client = t;
    depth;
    window = Chan.buffered ~label:"pipe-window" depth;
    done_c = Chan.unbounded ~label:"pipe-done" ();
    next_seq = 0 }

let submit p op =
  let t = p.client in
  Chan.send p.window ();  (* blocks while [depth] ops are in flight *)
  let seq = p.next_seq in
  p.next_seq <- seq + 1;
  t.submitted <- t.submitted + 1;
  t.inflight <- t.inflight + 1;
  if t.inflight > t.inflight_hwm then t.inflight_hwm <- t.inflight;
  ignore
    (Fiber.spawn
       ~label:(Printf.sprintf "pipe-op-%d" seq)
       ~daemon:true
       (fun () ->
         let result : op_result =
           match op with
           | Op_put (k, v) -> (put t k v :> op_result)
           | Op_get k -> (get t k :> op_result)
         in
         t.inflight <- t.inflight - 1;
         t.completed <- t.completed + 1;
         ignore (Chan.recv p.window);  (* free the window slot *)
         Chan.send p.done_c { seq; at = Fiber.now (); result }));
  seq

let completions p = p.done_c

let inflight p = p.client.inflight

let inflight_hwm p = p.client.inflight_hwm

let pipe_depth p = p.depth
