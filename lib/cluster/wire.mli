(** Length-prefixed wire encoding for cluster messages.

    Cluster payloads (raft RPCs, client operations, shard maps) carry
    arbitrary keys and values, so unlike {!Chorus_net.Netkv}'s
    separator-based format they need framing that cannot be confused by
    payload bytes.  Integers are decimal followed by [';']; strings are
    [<len>:<bytes>].  Decoding raises {!Malformed} on any violation —
    handlers catch it and answer with a protocol error. *)

exception Malformed

val enc_int : Buffer.t -> int -> unit

val enc_str : Buffer.t -> string -> unit

type reader

val reader : ?pos:int -> string -> reader
(** [pos] skips a leading opcode byte when 1 (default 0). *)

val int_ : reader -> int

val str_ : reader -> string

val at_end : reader -> bool
