type t = {
  version : int;
  nshards : int;
  all_nodes : int list;  (* ascending *)
  groups : int array array;  (* shard -> replica addrs, preferred first *)
}

(* FNV-1a with a murmur3 avalanche finalizer, masked to 62 bits so it
   stays a nonnegative OCaml int.  The finalizer matters: raw FNV on
   short, similar keys ("node:1#7") leaves the high bits nearly
   constant, which collapses the ring into per-node clumps and starves
   whole nodes of shards.  Deterministic across runs and nodes — the
   whole point: every party computes the same map from the same node
   list. *)
let hash64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  let mix h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
    Int64.logxor h (Int64.shift_right_logical h 33)
  in
  Int64.to_int (Int64.logand (mix !h) 0x3FFFFFFFFFFFFFFFL)

let point node vnode = hash64 (Printf.sprintf "node:%d#%d" node vnode)

let shard_point s = hash64 (Printf.sprintf "shard:%d" s)

let build ?(version = 1) ?(vnodes = 64) ~nshards ~replication nodes =
  if nodes = [] then invalid_arg "Shardmap.build: no nodes";
  if nshards <= 0 then invalid_arg "Shardmap.build: nshards";
  if replication <= 0 then invalid_arg "Shardmap.build: replication";
  let all_nodes = List.sort_uniq compare nodes in
  let n = List.length all_nodes in
  let repl = min replication n in
  let ring =
    List.concat_map
      (fun node -> List.init vnodes (fun v -> (point node v, node)))
      all_nodes
    |> List.sort compare
    |> Array.of_list
  in
  let len = Array.length ring in
  (* first ring index at or after h (binary search, wrapping) *)
  let successor h =
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst ring.(mid) < h then lo := mid + 1 else hi := mid
    done;
    if !lo = len then 0 else !lo
  in
  let group s =
    let start = successor (shard_point s) in
    let picked = ref [] in
    let i = ref 0 in
    while List.length !picked < repl && !i < len do
      let node = snd ring.((start + !i) mod len) in
      if not (List.mem node !picked) then picked := node :: !picked;
      incr i
    done;
    Array.of_list (List.rev !picked)
  in
  { version; nshards; all_nodes; groups = Array.init nshards group }

let version t = t.version

let nshards t = t.nshards

let nodes t = t.all_nodes

let shard_of_key t key = hash64 key mod t.nshards

let replicas t shard = t.groups.(shard)

(* Pure routing over a snapshot: key -> preferred replica.  No state
   is consulted beyond the immutable map value, so this is safe to
   call against an RCU-published snapshot from any fiber and trivial
   to exercise in tests without a live cluster. *)
type snapshot = t

let lookup_in snap key = snap.groups.(hash64 key mod snap.nshards).(0)

let shards_of_node t node =
  List.filter
    (fun s -> Array.exists (fun a -> a = node) t.groups.(s))
    (List.init t.nshards (fun s -> s))

let encode t =
  let b = Buffer.create 64 in
  Wire.enc_int b t.version;
  Wire.enc_int b t.nshards;
  Wire.enc_int b (List.length t.all_nodes);
  List.iter (Wire.enc_int b) t.all_nodes;
  Array.iter
    (fun g ->
      Wire.enc_int b (Array.length g);
      Array.iter (Wire.enc_int b) g)
    t.groups;
  Buffer.contents b

let decode s =
  match
    let r = Wire.reader s in
    let version = Wire.int_ r in
    let nshards = Wire.int_ r in
    let nnodes = Wire.int_ r in
    let all_nodes = List.init nnodes (fun _ -> Wire.int_ r) in
    let groups =
      Array.init nshards (fun _ ->
          let k = Wire.int_ r in
          Array.init k (fun _ -> Wire.int_ r))
    in
    { version; nshards; all_nodes; groups }
  with
  | t -> Some t
  | exception Wire.Malformed -> None
