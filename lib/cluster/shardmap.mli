(** Consistent-hash sharding of the key space over cluster nodes.

    The key space is split into a fixed number of shards by hash; each
    shard is owned by a replica group of [replication] distinct nodes
    chosen by walking a consistent-hash ring of virtual node points.
    Both mappings are pure functions of the node list, so every node
    and client derives the identical map without coordination, and
    adding a node moves only the shards whose ring neighbourhood it
    lands in.

    The map is versioned and wire-encodable so smart clients can
    discover it from any node ({!Client} fetches it at first use). *)

type t

val build :
  ?version:int -> ?vnodes:int -> nshards:int -> replication:int ->
  int list -> t
(** [build ~nshards ~replication nodes] places [nshards] shards over
    the node addresses.  [replication] is capped at the node count;
    [vnodes] (default 64) is the number of ring points per node.
    Raises [Invalid_argument] on an empty node list or nonpositive
    shard count. *)

val version : t -> int

val nshards : t -> int

val nodes : t -> int list
(** All node addresses, ascending. *)

val shard_of_key : t -> string -> int

type snapshot = t
(** A map value used as an immutable routing snapshot (what
    {!Chorus_util.Rcu} cells publish).  Every [t] already is one —
    the alias names the role. *)

val lookup_in : snapshot -> string -> int
(** [lookup_in snap key] is the preferred replica for [key]'s shard —
    a pure function of the snapshot alone, so routing can be tested
    without a live cluster and hot paths can call it against an
    RCU-published snapshot without any lock. *)

val replicas : t -> int -> int array
(** [replicas t shard]: the shard's replica group, preferred node
    first.  The array is owned by the map — do not mutate. *)

val shards_of_node : t -> int -> int list
(** Shards whose replica group includes the node, ascending. *)

val encode : t -> string

val decode : string -> t option

val hash64 : string -> int
(** The FNV-1a hash (63-bit, nonnegative) used for both keys and ring
    points; exposed for tests and for external placement decisions. *)
