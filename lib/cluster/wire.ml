exception Malformed

let enc_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let enc_str b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

type reader = { s : string; mutable pos : int }

let reader ?(pos = 0) s = { s; pos }

let upto r stop =
  match String.index_from_opt r.s r.pos stop with
  | None -> raise Malformed
  | Some i ->
    let tok = String.sub r.s r.pos (i - r.pos) in
    r.pos <- i + 1;
    tok

let int_ r =
  match int_of_string_opt (upto r ';') with
  | Some n -> n
  | None -> raise Malformed

let str_ r =
  match int_of_string_opt (upto r ':') with
  | None -> raise Malformed
  | Some len ->
    if len < 0 || r.pos + len > String.length r.s then raise Malformed;
    let s = String.sub r.s r.pos len in
    r.pos <- r.pos + len;
    s

let at_end r = r.pos >= String.length r.s
