module Engine = Chorus.Engine
module Trace = Chorus.Trace

let enter ~subsystem span =
  let eng = Engine.current () in
  if Engine.tracing eng then
    Engine.emit eng (Trace.Span_begin { subsystem; span })

let exit ~subsystem span =
  let eng = Engine.current () in
  if Engine.tracing eng then
    Engine.emit eng (Trace.Span_end { subsystem; span })

let with_ ~subsystem span f =
  let eng = Engine.current () in
  if not (Engine.tracing eng) then f ()
  else begin
    Engine.emit eng (Trace.Span_begin { subsystem; span });
    Fun.protect
      ~finally:(fun () ->
        Engine.emit eng (Trace.Span_end { subsystem; span }))
      f
  end

let timed ~subsystem ~name h f =
  let eng = Engine.current () in
  let tr = Engine.tracing eng in
  if not (tr || Metrics.live h) then f ()
  else begin
    if tr then Engine.emit eng (Trace.Span_begin { subsystem; span = name });
    let t0 = Engine.now eng in
    Fun.protect
      ~finally:(fun () ->
        Metrics.record h (Engine.now eng - t0);
        if tr then
          Engine.emit eng (Trace.Span_end { subsystem; span = name }))
      f
  end
