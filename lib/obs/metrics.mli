(** Metrics registry: named counters, gauges and log-scale latency
    histograms, labelled [subsystem/name].

    A registry must be {!install}ed before the instrumented code
    creates its handles (services fetch handles when they start, so:
    install, then boot).  When no registry is installed, every handle
    is a no-op [None] and recording costs one pattern match — metrics
    collection is strictly opt-in.

    The engine itself never touches this module; engine-level
    observability goes through the {!Chorus.Trace} sink.  Metrics are
    for the service layers (kernel, net, applications). *)

type t
(** A registry: a table from [(subsystem, name)] to metric state. *)

val create : unit -> t

val install : t -> unit
(** Make [t] the registry that handle creation binds to: for the
    current run when called from inside one, otherwise for the calling
    domain's ambient context (whence {!Chorus.Engine.start} adopts it
    into the run — install, then boot, as before).  Never visible to
    other domains. *)

val uninstall : unit -> unit

val installed : unit -> t option

val installed_in : Chorus.Ctx.t -> t option
(** The registry bound in an explicit (engine) context — what the
    replay debugger reads while a stepped run is paused. *)

val reset : t -> unit
(** Drop every registered metric (handles bound to them go stale). *)

(** {1 Handles}

    Cheap to create (one hash lookup), deduplicated by
    [(subsystem, name)]: creating the same counter twice returns the
    same underlying cell, so per-client instrumentation aggregates
    naturally.  Raises [Invalid_argument] if the name is already
    registered as a different kind. *)

type counter

type gauge

type histogram

val counter : subsystem:string -> string -> counter

val gauge : subsystem:string -> string -> gauge

val histogram : subsystem:string -> string -> histogram

val incr : ?by:int -> counter -> unit

val observe : gauge -> int -> unit
(** Record an instantaneous level (queue depth, live fibers); the
    snapshot reports last, peak and mean of observed values. *)

val record : histogram -> int -> unit
(** Record one latency/size sample (virtual cycles). *)

val live : histogram -> bool
(** Whether the handle is bound to an installed registry —
    instrumentation that must compute a value before recording it can
    skip the computation when [false]. *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and records its virtual-time duration.  Call
    from inside a fiber; no-op timing when the handle is dead. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of { last : int; peak : int; mean : float }
  | Histo of {
      count : int;
      mean : float;
      p50 : int;
      p95 : int;
      p99 : int;
      max : int;
    }

type snapshot = ((string * string) * value) list
(** Sorted by [(subsystem, name)], so deterministic. *)

val snapshot : t -> snapshot

val sample_every :
  t -> interval:int -> (time:int -> snapshot -> unit) -> unit
(** [sample_every r ~interval f] spawns a daemon fiber (call from
    inside a run) that passes a snapshot to [f] every [interval]
    virtual cycles — time-series metrics for long runs. *)
