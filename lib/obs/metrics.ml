module Histogram = Chorus_util.Histogram

type gauge_state = {
  mutable last : int;
  mutable peak : int;
  mutable samples : int;
  mutable sum : float;
}

type metric =
  | M_counter of int ref
  | M_gauge of gauge_state
  | M_histogram of Histogram.t

type t = { tbl : ((string * string), metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* The "installed registry" is a Ctx slot, not a global: installed
   before a run it binds in the installing domain's ambient context and
   is adopted into the engine's context at Engine.start, so handle
   creation from inside the run finds it while concurrent runs on
   other domains see nothing. *)
let slot : t Chorus.Ctx.slot = Chorus.Ctx.slot "obs.metrics"

let install r = Chorus.Ctx.set slot r

let uninstall () = Chorus.Ctx.clear slot

let installed () = Chorus.Ctx.get slot

let installed_in ctx = Chorus.Ctx.get_in ctx slot

let reset r = Hashtbl.reset r.tbl

(* Handles are [None] when no registry was installed at creation time,
   so every record/incr on them is a single pattern match and nothing
   else — uninstrumented runs pay (almost) nothing. *)

type counter = int ref option

type gauge = gauge_state option

type histogram = Histogram.t option

let find_or_register ~subsystem name make get =
  match installed () with
  | None -> None
  | Some r -> (
    let key = (subsystem, name) in
    match Hashtbl.find_opt r.tbl key with
    | Some m -> get key m
    | None ->
      let m = make () in
      Hashtbl.replace r.tbl key m;
      get key m)

let kind_error (subsystem, name) =
  invalid_arg
    (Printf.sprintf
       "Metrics: %s/%s already registered with a different metric kind"
       subsystem name)

let counter ~subsystem name =
  find_or_register ~subsystem name
    (fun () -> M_counter (ref 0))
    (fun key m ->
      match m with M_counter c -> Some c | _ -> kind_error key)

let gauge ~subsystem name =
  find_or_register ~subsystem name
    (fun () -> M_gauge { last = 0; peak = 0; samples = 0; sum = 0.0 })
    (fun key m -> match m with M_gauge g -> Some g | _ -> kind_error key)

let histogram ~subsystem name =
  find_or_register ~subsystem name
    (fun () -> M_histogram (Histogram.create ()))
    (fun key m ->
      match m with M_histogram h -> Some h | _ -> kind_error key)

let incr ?(by = 1) c = match c with None -> () | Some r -> r := !r + by

let observe g v =
  match g with
  | None -> ()
  | Some s ->
    s.last <- v;
    if v > s.peak then s.peak <- v;
    s.samples <- s.samples + 1;
    s.sum <- s.sum +. float_of_int v

let record h v = match h with None -> () | Some t -> Histogram.record t v

let live = function None -> false | Some _ -> true

let time h f =
  match h with
  | None -> f ()
  | Some t ->
    let eng = Chorus.Engine.current () in
    let t0 = Chorus.Engine.now eng in
    Fun.protect
      ~finally:(fun () -> Histogram.record t (Chorus.Engine.now eng - t0))
      f

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type value =
  | Counter of int
  | Gauge of { last : int; peak : int; mean : float }
  | Histo of {
      count : int;
      mean : float;
      p50 : int;
      p95 : int;
      p99 : int;
      max : int;
    }

type snapshot = ((string * string) * value) list

let snapshot r =
  Hashtbl.fold
    (fun key m acc ->
      let v =
        match m with
        | M_counter c -> Counter !c
        | M_gauge g ->
          Gauge
            { last = g.last;
              peak = g.peak;
              mean =
                (if g.samples = 0 then 0.0
                 else g.sum /. float_of_int g.samples) }
        | M_histogram h ->
          Histo
            { count = Histogram.count h;
              mean = Histogram.mean h;
              p50 = Histogram.percentile h 50.0;
              p95 = Histogram.percentile h 95.0;
              p99 = Histogram.percentile h 99.0;
              max = Histogram.max_value h }
      in
      (key, v) :: acc)
    r.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sample_every r ~interval f =
  if interval <= 0 then invalid_arg "Metrics.sample_every: interval";
  ignore
    (Chorus.Fiber.spawn ~label:"metrics-sampler" ~daemon:true (fun () ->
         let rec loop () =
           Chorus.Fiber.sleep interval;
           f ~time:(Chorus.Fiber.now ()) (snapshot r);
           loop ()
         in
         loop ()))
