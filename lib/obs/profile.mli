(** Per-fiber latency/occupancy profiles distilled from a trace.

    Because a run is exactly deterministic in (seed, inputs), the
    trace is a complete account of where cycles and messages went;
    this module folds it into: busy cycles per fiber (from [Segment]
    records, so it matches the engine's core-busy accounting exactly),
    blocked time per fiber broken down by suspend tag (from
    [Block]/[Wake] pairs), a core-by-core message-flow matrix (from
    [Send] records) and a latency histogram per service span.

    Feed it the records of one run; merging runs would conflate
    unrelated fibers that share ids. *)

type fiber_stats = {
  fid : int;
  mutable label : string;
  mutable busy : int;  (** cycles the fiber occupied a core *)
  mutable blocked : int;  (** cycles between each Block and its Wake *)
  by_tag : (string, int) Hashtbl.t;  (** blocked cycles per suspend tag *)
  mutable sent : int;
  mutable received : int;
}

type t = {
  fibers : fiber_stats list;  (** sorted by fiber id *)
  cores : int;
  matrix : int array array;  (** [matrix.(src).(dst)] = messages *)
  spans : ((string * string) * Chorus_util.Histogram.t) list;
      (** per-[(subsystem, span)] latency, sorted by key *)
  records : int;  (** trace records consumed *)
}

val of_records : Chorus.Trace.record list -> t

val top_busy : t -> n:int -> fiber_stats list
(** Fibers with the most busy cycles, descending (ties by id);
    fibers with zero busy time are omitted. *)

val top_blocked : t -> n:int -> fiber_stats list

val blocked_breakdown : fiber_stats -> (string * int) list
(** Blocked cycles per suspend tag, largest first. *)

val messages : t -> int
(** Total messages in the flow matrix. *)
