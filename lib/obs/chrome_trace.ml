module Trace = Chorus.Trace

(* Chrome trace-event JSON (the about://tracing / Perfetto "JSON
   object format").  Mapping: the simulated chip is one process; each
   core is a "thread" carrying the fiber segments that executed on it
   plus instant marks for scheduler/channel events; service spans get
   a parallel "core N spans" track keyed by the core the span opened
   on, so slices nest cleanly even when a span sleeps across fiber
   segments.  One virtual cycle renders as one microsecond (ts is in
   us in this format), so cycle arithmetic survives in the UI.

   Everything here is a pure function of the record list, so a fixed
   (seed, inputs) run exports byte-identical JSON. *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* tid layout: 0 = outside-any-fiber events, 1+c = core c's segments,
   1001+c = core c's service spans. *)
let tid_of_core c = if c < 0 then 0 else c + 1

let span_tid_of_core c = if c < 0 then 0 else c + 1001

type ev = { ts : int; seq : int; body : string }

let add_arg b first k v =
  if not !first then Buffer.add_char b ',';
  first := false;
  Buffer.add_char b '"';
  escape b k;
  Buffer.add_string b "\":";
  Buffer.add_string b v

let quoted s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"';
  Buffer.contents b

let make_ev ~ph ~tid ~ts ?dur ~name args =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int tid);
  Buffer.add_string b ",\"ts\":";
  Buffer.add_string b (string_of_int ts);
  (match dur with
  | Some d ->
    Buffer.add_string b ",\"dur\":";
    Buffer.add_string b (string_of_int d)
  | None -> ());
  if ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
  Buffer.add_string b ",\"name\":";
  Buffer.add_string b (quoted name);
  (match args with
  | [] -> ()
  | args ->
    Buffer.add_string b ",\"args\":{";
    let first = ref true in
    List.iter (fun (k, v) -> add_arg b first k v) args;
    Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

let instant_of_event ev =
  match ev with
  | Trace.Spawn { child; on_core } ->
    Some ("spawn", [ ("child", string_of_int child);
                     ("on_core", string_of_int on_core) ])
  | Trace.Exit { status } -> Some ("exit", [ ("status", quoted status) ])
  | Trace.Block { on } -> Some ("block", [ ("on", quoted on) ])
  | Trace.Wake -> Some ("wake", [])
  | Trace.Send { chan; words; src; dst } ->
    Some ("send", [ ("chan", string_of_int chan);
                    ("words", string_of_int words);
                    ("src", string_of_int src);
                    ("dst", string_of_int dst) ])
  | Trace.Recv { chan } -> Some ("recv", [ ("chan", string_of_int chan) ])
  | Trace.Steal { victim_core; fiber } ->
    Some ("steal", [ ("victim_core", string_of_int victim_core);
                     ("fiber", string_of_int fiber) ])
  | Trace.Custom s -> Some (s, [])
  | Trace.Span_begin _ | Trace.Span_end _ | Trace.Segment _ -> None

let to_string records =
  let events = ref [] in
  let nseq = ref 0 in
  let push ts body =
    incr nseq;
    events := { ts; seq = !nseq; body } :: !events
  in
  (* per-fiber stacks of open spans: (subsystem, span, begin ts,
     begin core) *)
  let open_spans : (int, (string * string * int * int) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let stack_of fid =
    match Hashtbl.find_opt open_spans fid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace open_spans fid s;
      s
  in
  let max_core = ref (-1) in
  let fiber_arg r = ("fiber", string_of_int r.Trace.fiber) in
  List.iter
    (fun r ->
      if r.Trace.core > !max_core then max_core := r.Trace.core;
      match r.Trace.event with
      | Trace.Segment { start; label } ->
        push start
          (make_ev ~ph:"X" ~tid:(tid_of_core r.Trace.core) ~ts:start
             ~dur:(r.Trace.time - start) ~name:label [ fiber_arg r ])
      | Trace.Span_begin { subsystem; span } ->
        let st = stack_of r.Trace.fiber in
        st := (subsystem, span, r.Trace.time, r.Trace.core) :: !st
      | Trace.Span_end { subsystem; span } ->
        let st = stack_of r.Trace.fiber in
        let rec unwind = function
          | (sub, sp, ts, core) :: rest when sub = subsystem && sp = span ->
            push ts
              (make_ev ~ph:"X" ~tid:(span_tid_of_core core) ~ts
                 ~dur:(r.Trace.time - ts) ~name:span
                 [ fiber_arg r; ("subsystem", quoted sub) ]);
            rest
          | _ :: rest -> unwind rest
          | [] -> []
        in
        st := unwind !st
      | ev -> (
        match instant_of_event ev with
        | None -> ()
        | Some (name, args) ->
          push r.Trace.time
            (make_ev ~ph:"i" ~tid:(tid_of_core r.Trace.core) ~ts:r.Trace.time
               ~name (fiber_arg r :: args))))
    records;
  (* spans left open at end of trace: emit as zero-duration marks so
     they are visible rather than silently dropped *)
  let leftovers = Hashtbl.fold (fun fid st acc -> (fid, !st) :: acc)
      open_spans []
  in
  List.iter
    (fun (fid, st) ->
      List.iter
        (fun (sub, sp, ts, core) ->
          push ts
            (make_ev ~ph:"i" ~tid:(span_tid_of_core core) ~ts
               ~name:("unclosed:" ^ sp)
               [ ("fiber", string_of_int fid); ("subsystem", quoted sub) ]))
        st)
    (List.sort compare leftovers);
  (* thread-name metadata rows *)
  let meta = ref [] in
  let add_meta tid name sort_index =
    meta :=
      Printf.sprintf
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}},{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}"
        tid (quoted name) tid sort_index
      :: !meta
  in
  add_meta 0 "external" (-1);
  for c = 0 to !max_core do
    add_meta (tid_of_core c) (Printf.sprintf "core %d" c) (2 * c);
    add_meta (span_tid_of_core c)
      (Printf.sprintf "core %d spans" c)
      ((2 * c) + 1)
  done;
  let sorted =
    List.stable_sort
      (fun a b -> if a.ts <> b.ts then compare a.ts b.ts else compare a.seq b.seq)
      (List.rev !events)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"exporter\":\"chorus\",\"timeUnit\":\"1 virtual cycle = 1 us\"},\"traceEvents\":[";
  Buffer.add_string b
    "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"chorus\"}}";
  List.iter
    (fun m ->
      Buffer.add_char b ',';
      Buffer.add_string b m)
    (List.rev !meta);
  List.iter
    (fun e ->
      Buffer.add_char b ',';
      Buffer.add_string b e.body)
    sorted;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let write_file path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string records))
