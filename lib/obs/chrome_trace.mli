(** Chrome trace-event JSON export.

    Renders a trace-record list in the Chrome "JSON object format" so
    any run can be opened in about://tracing or {{:https://ui.perfetto.dev}Perfetto}.
    The simulated chip is one process; each core is a "thread" row
    showing the fiber segments it executed (slices named by fiber
    label), with a parallel "core N spans" row for service spans and
    instant marks for scheduler/channel events.  Virtual cycles map
    1:1 to the format's microsecond timestamps.

    The output is a pure function of the input records: a run with a
    fixed (seed, inputs) exports byte-identical JSON. *)

val to_string : Chorus.Trace.record list -> string

val write_file : string -> Chorus.Trace.record list -> unit
