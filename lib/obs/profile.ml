module Trace = Chorus.Trace
module Histogram = Chorus_util.Histogram

type fiber_stats = {
  fid : int;
  mutable label : string;
  mutable busy : int;
  mutable blocked : int;
  by_tag : (string, int) Hashtbl.t;
  mutable sent : int;
  mutable received : int;
}

type t = {
  fibers : fiber_stats list;
  cores : int;
  matrix : int array array;
  spans : ((string * string) * Histogram.t) list;
  records : int;
}

let of_records records =
  let fibers : (int, fiber_stats) Hashtbl.t = Hashtbl.create 64 in
  let fiber fid =
    match Hashtbl.find_opt fibers fid with
    | Some f -> f
    | None ->
      let f =
        { fid; label = Printf.sprintf "fiber-%d" fid; busy = 0; blocked = 0;
          by_tag = Hashtbl.create 4; sent = 0; received = 0 }
      in
      Hashtbl.replace fibers fid f;
      f
  in
  (* fiber -> (tag, block time) of the still-open block *)
  let pending_block : (int, string * int) Hashtbl.t = Hashtbl.create 64 in
  (* fiber -> open span stack *)
  let open_spans : (int, (string * string * int) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let spans : (string * string, Histogram.t) Hashtbl.t = Hashtbl.create 16 in
  let span_hist key =
    match Hashtbl.find_opt spans key with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.replace spans key h;
      h
  in
  let max_core = ref 0 in
  let nrecords = ref 0 in
  List.iter
    (fun r ->
      incr nrecords;
      if r.Trace.core > !max_core then max_core := r.Trace.core;
      match r.Trace.event with
      | Trace.Send { src; dst; _ } ->
        if src > !max_core then max_core := src;
        if dst > !max_core then max_core := dst
      | _ -> ())
    records;
  let cores = !max_core + 1 in
  let matrix = Array.make_matrix cores cores 0 in
  List.iter
    (fun r ->
      let fid = r.Trace.fiber in
      match r.Trace.event with
      | Trace.Segment { start; label } ->
        let f = fiber fid in
        f.busy <- f.busy + (r.Trace.time - start);
        f.label <- label
      | Trace.Block { on } ->
        Hashtbl.replace pending_block fid (on, r.Trace.time)
      | Trace.Wake -> (
        match Hashtbl.find_opt pending_block fid with
        | None -> ()
        | Some (tag, t0) ->
          Hashtbl.remove pending_block fid;
          let d = max 0 (r.Trace.time - t0) in
          let f = fiber fid in
          f.blocked <- f.blocked + d;
          Hashtbl.replace f.by_tag tag
            ((match Hashtbl.find_opt f.by_tag tag with
             | Some n -> n
             | None -> 0)
            + d))
      | Trace.Send { src; dst; _ } ->
        matrix.(src).(dst) <- matrix.(src).(dst) + 1;
        (fiber fid).sent <- (fiber fid).sent + 1
      | Trace.Recv _ -> (fiber fid).received <- (fiber fid).received + 1
      | Trace.Span_begin { subsystem; span } ->
        let st =
          match Hashtbl.find_opt open_spans fid with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.replace open_spans fid s;
            s
        in
        st := (subsystem, span, r.Trace.time) :: !st
      | Trace.Span_end { subsystem; span } -> (
        match Hashtbl.find_opt open_spans fid with
        | None -> ()
        | Some st ->
          let rec unwind = function
            | (sub, sp, t0) :: rest when sub = subsystem && sp = span ->
              Histogram.record (span_hist (sub, sp))
                (max 0 (r.Trace.time - t0));
              rest
            | _ :: rest -> unwind rest
            | [] -> []
          in
          st := unwind !st)
      | Trace.Spawn _ | Trace.Exit _ | Trace.Steal _ | Trace.Custom _ -> ())
    records;
  let fibers =
    Hashtbl.fold (fun _ f acc -> f :: acc) fibers []
    |> List.sort (fun a b -> compare a.fid b.fid)
  in
  let spans =
    Hashtbl.fold (fun k h acc -> (k, h) :: acc) spans []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { fibers; cores; matrix; spans; records = !nrecords }

let top_by value t n =
  List.stable_sort
    (fun a b ->
      if value b <> value a then compare (value b) (value a)
      else compare a.fid b.fid)
    t.fibers
  |> List.filteri (fun i _ -> i < n)
  |> List.filter (fun f -> value f > 0)

let top_busy t ~n = top_by (fun f -> f.busy) t n

let top_blocked t ~n = top_by (fun f -> f.blocked) t n

let blocked_breakdown f =
  Hashtbl.fold (fun tag d acc -> (tag, d) :: acc) f.by_tag []
  |> List.sort (fun (ta, da) (tb, db) ->
         if da <> db then compare db da else compare ta tb)

let messages t =
  let n = ref 0 in
  Array.iter (fun row -> Array.iter (fun c -> n := !n + c) row) t.matrix;
  !n
