(** Span tracing: attribute stretches of virtual time to named
    operations.

    Spans ride the run's {!Chorus.Trace} sink as
    [Span_begin]/[Span_end] records, attributed to fiber, core and
    virtual time by the engine; {!Chrome_trace} renders them as nested
    slices and {!Profile} distills per-span latency histograms.  All
    entry points are no-ops (beyond one flag test) when the run has no
    trace sink, and must be called from inside a fiber. *)

val enter : subsystem:string -> string -> unit

val exit : subsystem:string -> string -> unit
(** Close the innermost open span with this name (spans nest; close in
    LIFO order, which {!with_} guarantees). *)

val with_ : subsystem:string -> string -> (unit -> 'a) -> 'a
(** [with_ ~subsystem name f] wraps [f] in a span; the span is closed
    even if [f] raises. *)

val timed :
  subsystem:string -> name:string -> Metrics.histogram -> (unit -> 'a) -> 'a
(** One-stop operation instrumentation: opens a span (when tracing)
    and records the operation's virtual-time latency into the
    histogram handle (when metrics are installed).  When neither is
    active, calls [f] directly. *)
