module Fiber = Chorus.Fiber
module Inspect = Chorus.Inspect
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span
module Svc = Chorus_svc.Svc
module Stack = Chorus_net.Stack
module Fsspec = Chorus_fsspec.Fsspec
module Msgvfs = Chorus_kernel.Msgvfs

type t = {
  sys : Msgvfs.sys;
  at : string;
  cache : Msgvfs.handle Namecache.t;
  hyd : (string, (string, Fsspec.err) result) Svc.t;
  pf : string Svc.cast;
  mutable pf_queued : int;
  mutable pf_done : int;
  mutable pf_dropped : int;
  h_hydrate : Metrics.histogram;
}

(* ------------------------------------------------------------------ *)
(* Wire adapters: the projection closures Msgvfs calls                 *)

let fetch_over_wire stack ~provider ?timeout ?attempts rel =
  match
    Stack.call stack ~dst:provider ~port:Provider.port ?timeout ?attempts
      ("R " ^ rel)
  with
  | None -> Error Fsspec.Eio
  | Some resp ->
    if String.length resp >= 1 && resp.[0] = 'D' then
      Ok (String.sub resp 1 (String.length resp - 1))
    else Error Fsspec.Enoent

let entries_over_wire stack ~provider ?timeout ?attempts rel =
  let req = if String.equal rel "" then "L" else "L " ^ rel in
  match
    Stack.call stack ~dst:provider ~port:Provider.port ?timeout ?attempts req
  with
  | None -> Error Fsspec.Eio
  | Some resp ->
    if String.length resp >= 1 && resp.[0] = 'D' then
      Ok
        (Provider.decode_entries
           (String.sub resp 1 (String.length resp - 1)))
    else Error Fsspec.Enoent

(* ------------------------------------------------------------------ *)

let register_inspect t =
  Inspect.register ~name:"projfs/namecache" (fun () ->
      let c = t.cache in
      Inspect.Assoc
        ([ ("entries", Inspect.Int (Namecache.length c));
           ("hits", Inspect.Int (Namecache.hits c));
           ("misses", Inspect.Int (Namecache.misses c));
           ("negative_hits", Inspect.Int (Namecache.negative_hits c));
           ("evictions", Inspect.Int (Namecache.evictions c));
           ("invalidations", Inspect.Int (Namecache.invalidations c)) ]
        @ List.map
            (fun (st, n) -> (Namecache.state_name st, Inspect.Int n))
            (Namecache.state_counts c)));
  Inspect.register ~name:"projfs/hydration" (fun () ->
      Inspect.Assoc
        [ ("placeholders_live", Inspect.Int (Msgvfs.placeholders_live t.sys));
          ("hydrations", Inspect.Int (Msgvfs.hydrations t.sys));
          ("hydration_failures",
           Inspect.Int (Msgvfs.hydration_failures t.sys));
          ("prefetch_queued", Inspect.Int t.pf_queued);
          ("prefetch_done", Inspect.Int t.pf_done);
          ("prefetch_dropped", Inspect.Int t.pf_dropped) ])

let mount ?hydration ?(workers = 4) ?prefetch_cfg ?(namecache = 512) ?timeout
    ?attempts ~fs ~at ~stack ~provider () =
  let h_hydrate = Metrics.histogram ~subsystem:"projfs" "hydrate" in
  let hyd : (string, (string, Fsspec.err) result) Svc.t =
    Svc.create ?config:hydration ~subsystem:"projfs" ~label:"hydrate" ()
  in
  let prefetch_cfg =
    match prefetch_cfg with
    | Some c -> c
    | None -> Svc.config ~capacity:64 ~policy:`Shed_oldest ()
  in
  let t_ref = ref None in
  let pf : string Svc.cast =
    Svc.cast_create ~config:prefetch_cfg
      ~on_shed:(fun _ ->
        match !t_ref with
        | Some t -> t.pf_dropped <- t.pf_dropped + 1
        | None -> ())
      ~subsystem:"projfs" ~label:"prefetch" ()
  in
  let t =
    { sys = fs; at; cache = Namecache.create ~cap:namecache ();
      hyd; pf; pf_queued = 0; pf_done = 0; pf_dropped = 0; h_hydrate }
  in
  t_ref := Some t;
  (* every placeholder fill funnels through the bounded endpoint; a
     rejected or shed fill answers `Busy, which the vnode-side closure
     turns into a clean, retryable Eio *)
  let proj_fetch rel =
    match Svc.call_result t.hyd rel with
    | `Ok r -> r
    | `Busy | `Expired -> Error Fsspec.Eio
  in
  let proj_entries rel = entries_over_wire stack ~provider ?timeout ?attempts rel in
  let words_of_resp = function
    | Ok s -> 2 + ((String.length s + 7) / 8)
    | Error _ -> 2
  in
  for _ = 1 to max 1 workers do
    ignore
      (Svc.start ~words_of_resp t.hyd (fun rel ->
           Span.timed ~subsystem:"projfs" ~name:"hydrate" t.h_hydrate
             (fun () ->
               fetch_over_wire stack ~provider ?timeout ?attempts rel)))
  done;
  match Msgvfs.project fs ~at { Msgvfs.proj_entries; proj_fetch } with
  | Error e -> Error e
  | Ok () ->
    (* the prefetch worker warms paths through its own client: resolve
       (populating the name cache) and read one byte (hydrating) *)
    let ic = Msgvfs.client fs in
    ignore
      (Svc.start_cast t.pf (fun path ->
           let warmed =
             match Msgvfs.resolve ic path with
             | Error _ -> false
             | Ok h ->
               Namecache.insert t.cache path h;
               let fd = Msgvfs.open_handle ic h in
               let ok =
                 match Msgvfs.read ic fd ~off:0 ~len:1 with
                 | Ok _ -> true
                 | Error _ -> false
               in
               ignore (Msgvfs.close ic fd);
               ok
           in
           if warmed then t.pf_done <- t.pf_done + 1
           else t.pf_dropped <- t.pf_dropped + 1));
    register_inspect t;
    Ok t

(* ------------------------------------------------------------------ *)
(* Clients: fd table + shared name cache                               *)

type client = {
  m : t;
  ic : Msgvfs.t;
  fd_paths : (int, string) Hashtbl.t;
  mutable cold_opens : int;
  mutable warm_opens : int;
}

let client m =
  { m; ic = Msgvfs.client m.sys; fd_paths = Hashtbl.create 16;
    cold_opens = 0; warm_opens = 0 }

let mkdir c path = Msgvfs.mkdir c.ic path

let create c path =
  let r = Msgvfs.create c.ic path in
  (* the name may have been cached absent *)
  if r = Ok () then Namecache.invalidate c.m.cache path;
  r

let install c path fd =
  Hashtbl.replace c.fd_paths fd path;
  Namecache.acquire c.m.cache path;
  fd

let open_ c path =
  match Namecache.find c.m.cache path with
  | `Hit h ->
    c.warm_opens <- c.warm_opens + 1;
    Ok (install c path (Msgvfs.open_handle c.ic h))
  | `Negative -> Error Fsspec.Enoent
  | `Miss -> (
    match Msgvfs.resolve c.ic path with
    | Ok h ->
      c.cold_opens <- c.cold_opens + 1;
      Namecache.insert c.m.cache path h;
      Ok (install c path (Msgvfs.open_handle c.ic h))
    | Error Fsspec.Enoent ->
      Namecache.insert_negative c.m.cache path;
      Error Fsspec.Enoent
    | Error e -> Error e)

let close c fd =
  (match Hashtbl.find_opt c.fd_paths fd with
  | Some path ->
    Hashtbl.remove c.fd_paths fd;
    Namecache.release c.m.cache path
  | None -> ());
  Msgvfs.close c.ic fd

let read c fd ~off ~len = Msgvfs.read c.ic fd ~off ~len

let write c fd ~off data = Msgvfs.write c.ic fd ~off data

let stat c path = Msgvfs.stat c.ic path

let unlink c path =
  let r = Msgvfs.unlink c.ic path in
  if r = Ok () then Namecache.invalidate c.m.cache path;
  r

let rename c src dst =
  let r = Msgvfs.rename c.ic src dst in
  if r = Ok () then begin
    Namecache.invalidate c.m.cache src;
    Namecache.invalidate c.m.cache dst
  end;
  r

let readdir c path = Msgvfs.readdir c.ic path

let open_stats c = (c.cold_opens, c.warm_opens)

(* ------------------------------------------------------------------ *)

let prefetch t path =
  t.pf_queued <- t.pf_queued + 1;
  match Svc.offer t.pf path with
  | `Ok -> ()
  | `Busy -> t.pf_dropped <- t.pf_dropped + 1

let prefetch_stats t = (t.pf_queued, t.pf_done, t.pf_dropped)

let hydrate_ep t = t.hyd

let cache t = t.cache

let mount_path t = t.at

let fs_sys t = t.sys
