type state = Cached | Active | Inactive | Dying

type 'v entry = {
  mutable value : 'v option;  (* None = negative entry *)
  mutable st : state;
  mutable refs : int;
  mutable tick : int;  (* last-touched stamp, insertion order breaks ties *)
}

type 'v t = {
  cap : int;
  tbl : (string, 'v entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable negative_hits : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ~cap () =
  if cap < 1 then invalid_arg "Namecache.create: cap must be >= 1";
  { cap; tbl = Hashtbl.create (min cap 64); clock = 0; hits = 0;
    misses = 0; negative_hits = 0; evictions = 0; invalidations = 0 }

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let evictable e = (e.st = Cached || e.st = Inactive) && e.refs = 0

(* deterministic LRU: the evictable entry with the smallest tick;
   capacity is small (hundreds to a few thousand) so the scan is
   cheaper than maintaining an intrusive list would be to get right *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun name e acc ->
        if not (evictable e) then acc
        else
          match acc with
          | Some (_, best) when best.tick <= e.tick -> acc
          | _ -> Some (name, e))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (name, _) ->
    Hashtbl.remove t.tbl name;
    t.evictions <- t.evictions + 1

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | Some e when e.st <> Dying -> (
    touch t e;
    match e.value with
    | Some v ->
      t.hits <- t.hits + 1;
      `Hit v
    | None ->
      t.negative_hits <- t.negative_hits + 1;
      `Negative)
  | Some _ | None ->
    t.misses <- t.misses + 1;
    `Miss

let count_evictable t =
  Hashtbl.fold (fun _ e n -> if evictable e then n + 1 else n) t.tbl 0

let insert_gen t name value =
  (match Hashtbl.find_opt t.tbl name with
  | Some e when e.st <> Dying ->
    e.value <- value;
    touch t e
  | Some _ ->
    (* rebinding over a dying entry supersedes it: holders of the old
       entry release into a no-op, the fresh binding starts clean *)
    Hashtbl.remove t.tbl name;
    let e = { value; st = Cached; refs = 0; tick = 0 } in
    touch t e;
    Hashtbl.replace t.tbl name e
  | None ->
    let e = { value; st = Cached; refs = 0; tick = 0 } in
    touch t e;
    Hashtbl.replace t.tbl name e);
  while count_evictable t > t.cap do
    evict_one t
  done

let insert t name v = insert_gen t name (Some v)

let insert_negative t name = insert_gen t name None

let acquire t name =
  match Hashtbl.find_opt t.tbl name with
  | Some e when e.st <> Dying && e.value <> None ->
    e.refs <- e.refs + 1;
    e.st <- Active;
    touch t e
  | Some _ | None -> ()

let release t name =
  match Hashtbl.find_opt t.tbl name with
  | Some e when e.refs > 0 ->
    e.refs <- e.refs - 1;
    if e.refs = 0 then begin
      match e.st with
      | Dying -> Hashtbl.remove t.tbl name
      | Active -> e.st <- Inactive
      | Cached | Inactive -> ()
    end
  | Some _ | None -> ()

let invalidate t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> ()
  | Some e ->
    t.invalidations <- t.invalidations + 1;
    if e.refs > 0 then e.st <- Dying else Hashtbl.remove t.tbl name

let state_of t name =
  Option.map (fun e -> e.st) (Hashtbl.find_opt t.tbl name)

let length t = Hashtbl.length t.tbl

let state_counts t =
  let c = [| 0; 0; 0; 0 |] in
  Hashtbl.iter
    (fun _ e ->
      let i =
        match e.st with Cached -> 0 | Active -> 1 | Inactive -> 2 | Dying -> 3
      in
      c.(i) <- c.(i) + 1)
    t.tbl;
  [ (Cached, c.(0)); (Active, c.(1)); (Inactive, c.(2)); (Dying, c.(3)) ]

let state_name = function
  | Cached -> "cached"
  | Active -> "active"
  | Inactive -> "inactive"
  | Dying -> "dying"

let hits t = t.hits

let misses t = t.misses

let negative_hits t = t.negative_hits

let evictions t = t.evictions

let invalidations t = t.invalidations
