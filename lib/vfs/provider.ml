module Fiber = Chorus.Fiber
module Rng = Chorus_util.Rng
module Stack = Chorus_net.Stack
module Fsspec = Chorus_fsspec.Fsspec

type catalog = { seed : int; nfiles : int; dir_width : int }

let catalog ?(seed = 1) ?(nfiles = 1_000_000) ?(dir_width = 1024) () =
  if nfiles < 1 || dir_width < 1 then
    invalid_arg "Provider.catalog: nfiles and dir_width must be >= 1";
  { seed; nfiles; dir_width }

let port = 7300

let crashpoint = Printf.sprintf "net.port-%d" port

let ndirs cat = (cat.nfiles + cat.dir_width - 1) / cat.dir_width

let dir_name d = Printf.sprintf "d%03d" d

let file_name i = Printf.sprintf "f%06d" i

let rel_path cat i =
  if i < 0 || i >= cat.nfiles then invalid_arg "Provider.rel_path"
  else Printf.sprintf "%s/%s" (dir_name (i / cat.dir_width)) (file_name i)

(* parse a relative path back to the global file index; canonical
   forms only (what rel_path printed), so "d1/f2" names nothing *)
let index_of cat rel =
  match String.index_opt rel '/' with
  | None -> None
  | Some slash ->
    let d = String.sub rel 0 slash in
    let f = String.sub rel (slash + 1) (String.length rel - slash - 1) in
    let num prefix s =
      if
        String.length s > 1
        && s.[0] = prefix
        && String.for_all (fun c -> c >= '0' && c <= '9')
             (String.sub s 1 (String.length s - 1))
      then int_of_string_opt (String.sub s 1 (String.length s - 1))
      else None
    in
    (match (num 'd' d, num 'f' f) with
    | Some dn, Some i
      when i >= 0 && i < cat.nfiles && i / cat.dir_width = dn
           && String.equal rel (rel_path cat i) ->
      Some i
    | _ -> None)

let content_of_index cat i =
  let rng = Rng.make ((cat.seed * 2_654_435_761) + (i * 40_503) + 17) in
  let extra = Rng.int rng 80 in
  let b = Buffer.create (48 + extra) in
  Buffer.add_string b
    (Printf.sprintf "%s|seed=%d|" (rel_path cat i) cat.seed);
  for _ = 1 to 24 + extra do
    Buffer.add_char b (Char.chr (Char.code 'a' + Rng.int rng 26))
  done;
  Buffer.contents b

let content cat rel = Option.map (content_of_index cat) (index_of cat rel)

let size_of cat rel = Option.map String.length (content cat rel)

let dir_index_of cat rel =
  if
    String.length rel > 1
    && rel.[0] = 'd'
    && String.for_all (fun c -> c >= '0' && c <= '9')
         (String.sub rel 1 (String.length rel - 1))
  then
    match int_of_string_opt (String.sub rel 1 (String.length rel - 1)) with
    | Some d when d >= 0 && d < ndirs cat && String.equal rel (dir_name d) ->
      Some d
    | _ -> None
  else None

let dir_entries cat rel =
  if String.equal rel "" then
    Some
      (List.init (ndirs cat) (fun d -> (dir_name d, Fsspec.Dir, 0)))
  else
    match dir_index_of cat rel with
    | None -> None
    | Some d ->
      let lo = d * cat.dir_width in
      let hi = min cat.nfiles ((d + 1) * cat.dir_width) in
      Some
        (List.init (hi - lo) (fun k ->
             let i = lo + k in
             ( file_name i,
               Fsspec.File,
               String.length (content_of_index cat i) )))

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

let encode_entries entries =
  String.concat " "
    (List.map
       (fun (name, kind, size) ->
         match kind with
         | Fsspec.Dir -> name ^ "/"
         | Fsspec.File -> Printf.sprintf "%s:%d" name size)
       entries)

let decode_entries payload =
  if String.equal payload "" then []
  else
    List.filter_map
      (fun tok ->
        let n = String.length tok in
        if n = 0 then None
        else if tok.[n - 1] = '/' then
          Some (String.sub tok 0 (n - 1), Fsspec.Dir, 0)
        else
          match String.rindex_opt tok ':' with
          | None -> None
          | Some c -> (
            match int_of_string_opt (String.sub tok (c + 1) (n - c - 1)) with
            | Some size -> Some (String.sub tok 0 c, Fsspec.File, size)
            | None -> None))
      (String.split_on_char ' ' payload)

let handle cat req =
  if String.equal req "L" then
    match dir_entries cat "" with
    | Some es -> "D" ^ encode_entries es
    | None -> "N"
  else if String.length req >= 2 && req.[1] = ' ' then begin
    let rel = String.sub req 2 (String.length req - 2) in
    match req.[0] with
    | 'L' -> (
      match dir_entries cat rel with
      | Some es -> "D" ^ encode_entries es
      | None -> "N")
    | 'R' -> (
      match content cat rel with Some c -> "D" ^ c | None -> "N")
    | _ -> "N"
  end
  else "N"

type t = {
  mutable requests : int;
  mutable bytes_served : int;
}

let serve_in_fiber t cat stack =
  Stack.serve_async stack ~port (fun ~src:_ req ~reply ->
      (* a list or read walks the provider's own tables: charge a
         base lookup plus a per-byte marshalling cost *)
      let resp = handle cat req in
      Fiber.work (400 + (String.length resp / 4));
      t.requests <- t.requests + 1;
      t.bytes_served <- t.bytes_served + String.length resp;
      reply resp)

let make () = { requests = 0; bytes_served = 0 }

let starter t cat stack () =
  Fiber.spawn ~label:"provider" ~daemon:true (fun () ->
      serve_in_fiber t cat stack)

let serve cat stack =
  let t = make () in
  ignore (starter t cat stack ());
  t

let requests t = t.requests

let bytes_served t = t.bytes_served
