(** The projected-namespace name cache: an LRU of path -> value
    bindings with the DragonFly VFS entry lifecycle.

    DragonFly's namecache keeps every entry in one of four states and
    lets the state, not a lock, say what may happen to it:

    - {e cached} — resolved and idle; evictable.
    - {e active} — some client holds a reference (an open handle went
      through this entry); never evicted.
    - {e inactive} — the last reference was dropped; evictable again
      but still authoritative, so a re-open is a pure cache hit.
    - {e dying} — invalidated (create/rename/unlink shadowed the name)
      while references were still out.  A dying entry answers no more
      lookups and is reaped when its last reference drops.

    Negative entries (the name is known {e absent}) are first-class:
    they make repeated misses cheap and are invalidated by exactly the
    operations that could materialize the name.

    The cache is a host-visible data structure: operations never
    charge cycles or advance virtual time; determinism comes from the
    caller.  Eviction order is deterministic (oldest access tick
    first, insertion order breaking ties). *)

type state = Cached | Active | Inactive | Dying

type 'v t

val create : cap:int -> unit -> 'v t
(** LRU capacity [cap] (>= 1): at most [cap] entries in an evictable
    state are retained; [Active]/[Dying] entries never count against
    eviction scans but do occupy the table. *)

val find : 'v t -> string -> [ `Hit of 'v | `Negative | `Miss ]
(** Touch + classify.  [Dying] entries answer [`Miss] (they are dead
    to lookups even while references keep them in the table). *)

val insert : 'v t -> string -> 'v -> unit
(** Bind [name] in state [Cached], evicting the least-recently used
    evictable entry when over capacity.  Rebinding an existing entry
    refreshes its value in place. *)

val insert_negative : 'v t -> string -> unit
(** Bind [name] as known-absent (state [Cached], no value). *)

val acquire : 'v t -> string -> unit
(** Take a reference: [Cached]/[Inactive] -> [Active].  No-op on a
    miss or negative entry. *)

val release : 'v t -> string -> unit
(** Drop a reference: [Active] with no remaining refs -> [Inactive];
    [Dying] with no remaining refs is reaped. *)

val invalidate : 'v t -> string -> unit
(** The name changed (create over a negative entry, rename, unlink):
    entries without references are dropped immediately, referenced
    entries go [Dying] until their last {!release}. *)

val state_of : 'v t -> string -> state option

val length : 'v t -> int

val state_counts : 'v t -> (state * int) list
(** [(Cached, n); (Active, n); (Inactive, n); (Dying, n)] — always all
    four, in that order. *)

val state_name : state -> string

(** {1 Counters} (monotonic, host-side) *)

val hits : 'v t -> int

val misses : 'v t -> int

val negative_hits : 'v t -> int

val evictions : 'v t -> int

val invalidations : 'v t -> int
