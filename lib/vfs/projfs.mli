(** The projected filesystem: a lazily-hydrated remote namespace
    mounted into {!Chorus_kernel.Msgvfs}.

    VFSForGit's model on the paper's substrate: the mount point is a
    projected directory tree whose entries come from a remote
    {!Provider} node (over {!Chorus_net.Stack.call}, so retransmission
    and dedup are the net stack's problem) and whose files are
    placeholder vnodes that hydrate on first read.  Three service-plane
    pieces sit between the vnodes and the wire:

    - the {e hydration endpoint} — a bounded request/reply
      {!Chorus_svc.Svc.t} ([projfs.hydrate], [workers] serving fibers)
      that every placeholder fill goes through, so a hydration storm
      meets an explicit overload policy ([`Block] backpressures the
      reading clients, [`Reject]/[`Shed_oldest] turn excess fills into
      clean [Eio] results) instead of an unbounded queue;
    - the {e prefetch endpoint} — a one-way bounded cast
      ([projfs.prefetch], [`Shed_oldest] by default: a prefetch is
      advice, and stale advice sheds first) whose worker warms paths
      through an internal client;
    - the {e name cache} — a {!Namecache} of absolute path -> resolved
      vnode handle shared by every {!client} of the mount, so a warm
      open skips the message-per-component path walk entirely, with
      negative entries short-circuiting repeated misses.

    Two {!Chorus.Inspect} providers ([projfs/namecache],
    [projfs/hydration]) expose cache and hydration state to the
    time-travel debugger; like every provider they are host-side only
    — zero observer effect.  E23 measures cold vs warm opens and the
    hydration-storm sweep; the chaos [Projfs] scenario kills the
    provider mid-hydration and checks the placeholder invariants. *)

module Svc = Chorus_svc.Svc
module Fsspec = Chorus_fsspec.Fsspec
module Msgvfs = Chorus_kernel.Msgvfs

type t

val mount :
  ?hydration:Svc.config ->
  ?workers:int ->
  ?prefetch_cfg:Svc.config ->
  ?namecache:int ->
  ?timeout:int ->
  ?attempts:int ->
  fs:Msgvfs.sys ->
  at:string ->
  stack:Chorus_net.Stack.t ->
  provider:int ->
  unit ->
  (t, Fsspec.err) result
(** Graft the projection at absolute path [at] (parent must exist) and
    spawn the hydration workers (default 4) and the prefetch worker.
    [hydration] bounds the hydration inbox (default unbounded
    backpressure), [prefetch_cfg] the prefetch inbox (default capacity
    64, [`Shed_oldest]), [namecache] the cache capacity (default 512).
    [timeout]/[attempts] tune {!Chorus_net.Stack.call} towards the
    provider at address [provider]; entries and contents always travel
    the wire. *)

(** {1 Clients} *)

type client

val client : t -> client
(** A per-fiber view: own fd table, shared name cache. *)

include Fsspec.S with type t := client

val open_stats : client -> int * int
(** [(cold, warm)] opens completed by this client — warm = served from
    the name cache without a path walk. *)

(** {1 Prefetch} *)

val prefetch : t -> string -> unit
(** Queue a background hydration of absolute path [path] (fire and
    forget; under pressure the oldest queued prefetch sheds). *)

val prefetch_stats : t -> int * int * int
(** [(queued, completed, dropped)] — dropped counts sheds and failed
    warms. *)

(** {1 Introspection} *)

val hydrate_ep : t -> (string, (string, Fsspec.err) result) Svc.t
(** The hydration endpoint (queue metrics, overload counters). *)

val cache : t -> Msgvfs.handle Namecache.t

val mount_path : t -> string

val fs_sys : t -> Msgvfs.sys
