(** The remote projection provider: the node that owns the virtual
    namespace a projected mount hydrates from.

    The catalog is a pure function of [(seed, nfiles, dir_width)] — no
    state, no storage — so a million-file namespace costs nothing
    until someone reads from it, and the mount side can verify
    hydrated bytes against {!content} exactly (the chaos placeholder
    oracle: torn or fabricated contents are detectable, not just
    implausible).

    Layout: [dir_width] files per directory, directories [d000],
    [d001], ... under the projection root, files [f00000], [f00001],
    ...; the relative path of global file [i] is
    [dNNN/fIIIII] with [NNN = i / dir_width].  Contents are short
    (one block at most), embed the file's own path, and differ per
    seed.

    The wire protocol (port {!port}) is three request forms over
    {!Chorus_net.Stack.call}:

    - ["L"] — list the root: directory names.
    - ["L <dir>"] — list a directory: [name/] for subdirectories,
      [name:size] for files, space-separated.
    - ["R <rel>"] — read a file's contents.

    Every success is ["D" ^ payload]; ["N"] answers a request naming
    nothing (or malformed) — the distinction the placeholder needs
    between "empty" and "absent".

    {!serve} runs the handler through {!Chorus_net.Stack.serve_async},
    so retransmitted requests dedup server-side and a killed provider
    fiber can be re-served on the same port with its dedup cache
    intact (the supervised-restart path the chaos scenario exercises). *)

type catalog = { seed : int; nfiles : int; dir_width : int }

val catalog : ?seed:int -> ?nfiles:int -> ?dir_width:int -> unit -> catalog
(** Defaults: seed 1, 1_000_000 files, 1024 per directory. *)

val port : int
(** 7300 — the provider's well-known service port. *)

val crashpoint : string
(** The provider's {!Chorus_svc.Svc} crash-point name
    (["net.port-7300"]) — what a [kill-provider] chaos fault targets. *)

val ndirs : catalog -> int

val rel_path : catalog -> int -> string
(** Relative path of global file index [i] ([0 <= i < nfiles]). *)

val content : catalog -> string -> string option
(** The file's full contents, [None] when [rel] names no file. *)

val size_of : catalog -> string -> int option

val dir_entries :
  catalog -> string -> (string * Chorus_fsspec.Fsspec.kind * int) list option
(** [dir_entries cat rel] lists directory [rel] ([""] = projection
    root) as [(name, kind, size)], sorted by name; [None] when [rel]
    names no directory. *)

type t

val serve : catalog -> Chorus_net.Stack.t -> t
(** Spawn a daemon fiber running the protocol handler on {!port} of
    [stack] (via {!Chorus_net.Stack.serve_async}, so the port channel
    and dedup cache live on the stack).  Returns the server handle. *)

val make : unit -> t
(** A server handle with no serving fiber yet — for supervised serving
    via {!starter}. *)

val starter : t -> catalog -> Chorus_net.Stack.t -> unit -> Chorus.Fiber.t
(** [starter t cat stack] is a {!Chorus_kernel.Supervisor.child_spec}
    start function: each call (re-)spawns the serving fiber on the
    same port, with counters and the stack-side dedup cache carrying
    over — the chaos supervised-restart path. *)

val requests : t -> int
(** Requests served (lists + reads), across restarts. *)

val bytes_served : t -> int

val handle : catalog -> string -> string
(** The bare request -> response function ([serve] plugs it into the
    stack) — exposed for unit tests. *)

val encode_entries : (string * Chorus_fsspec.Fsspec.kind * int) list -> string

val decode_entries :
  string -> (string * Chorus_fsspec.Fsspec.kind * int) list
(** Wire form of a directory listing (the ["L"] reply payload). *)
