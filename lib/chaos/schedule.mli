(** Fault schedules: the explorable coordinates of a chaos run.

    A schedule is a {e value} — a seed plus a list of faults pinned to
    absolute virtual times — so the fault space is enumerable, any
    point in it replays byte-identically from the schedule alone, and
    a failing schedule can be shrunk by deleting faults one at a time
    ({!subschedules}).  This is the deterministic-simulation answer to
    stochastic fault injection: instead of "crash something every ~N
    cycles and hope", the campaign driver walks a grid of schedules
    and every interesting one is a reproducer by construction. *)

type fault =
  | Kill_node of { node : int; at : int }
      (** crash a whole cluster node (root fiber kill) at [at] *)
  | Kill_point of { point : string; at : int; dur : int }
      (** crash the service fiber owning crash point [point]
          ({!Chorus_svc.Svc.set_crashpoint} name, i.e.
          ["subsystem.label"]) at its first dequeue inside
          [[at, at+dur)] — the dequeued request is lost with it *)
  | Frame_loss of { at : int; dur : int; p : float }
  | Frame_dup of { at : int; dur : int; p : float }
  | Frame_reorder of { at : int; dur : int; p : float }
      (** open a fabric fault window: probability [p] from [at] for
          [dur] cycles, then back to zero *)
  | Frame_delay of { at : int; dur : int; p : float; cycles : int }
  | Disk_errors of { at : int; dur : int; p : float }
      (** transient {!Chorus_kernel.Blockdev} read faults with
          probability [p] inside the window *)
  | Kill_provider of { at : int; dur : int }
      (** crash the projection provider's serving fiber
          ({!Chorus_projfs.Provider.crashpoint}) at its first dequeue
          inside [[at, at+dur)] — in-flight hydrations lose their
          replies; a supervisor re-serves the port after the window *)
  | Link_delay of {
      src : int;
      dst : int;
      at : int;
      dur : int;
      p : float;
      cycles : int;
    }
      (** gray-failure window on the directed (src,dst) link only:
          each frame held [cycles] with probability [p]
          ({!Chorus_net.Fabric.set_link_faults}) — the slow-but-alive
          node, one direction at a time *)
  | Partition of { src : int; dst : int; at : int; dur : int }
      (** asymmetric partition window: every frame on the directed
          (src,dst) link dropped inside [[at, at+dur)]; the reverse
          direction is untouched *)

type t = { seed : int; faults : fault list }

val nfaults : t -> int

val kind : fault -> string
(** Short tag for histograms: ["kill-node"], ["kill-point"],
    ["loss"], ["dup"], ["reorder"], ["delay"], ["disk"],
    ["kill-provider"], ["link-delay"], ["partition"]. *)

val to_string : t -> string
(** Compact one-line form, e.g.
    [seed=7 kill-point(chaos.store)@120000+80000 disk(p=0.30)@200000+150000]
    — what a violation report prints as the reproducer. *)

val of_string : string -> t
(** Parse {!to_string}'s format back into a schedule, so a reproducer
    printed by a violation report (or pasted into
    [chorus_sim replay --schedule]) is directly runnable.  Raises
    [Invalid_argument] on malformed input.  Round-trip guarantee:
    [to_string (of_string (to_string s)) = to_string s] (probabilities
    are printed with two decimals, so the printed form is the
    canonical one). *)

val subschedules : t -> t list
(** Every schedule obtained by deleting exactly one fault (same seed,
    same order otherwise) — the shrinking neighbourhood. *)
