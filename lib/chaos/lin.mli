(** Wing–Gong linearizability checker for per-key registers.

    A history is linearizable iff every operation can be assigned a
    single point between its invocation and response such that the
    resulting sequential history is legal (each read returns the most
    recently written value).  Keys are independent registers, so the
    check is compositional: partition by key and check each subhistory
    alone ({!check_history}) — the decomposition that keeps the
    NP-complete core tractable for campaign-sized histories.

    Per key the checker runs the Wing–Gong search: repeatedly pick a
    {e minimal} pending operation (one that no other pending
    operation's response precedes in real time), try to linearize it
    next, backtrack on illegal reads.  Visited states are memoized on
    (set of linearized ops, register value), which collapses the
    factorial search to the subset lattice.

    Lost operations — invoked, never answered — get the Jepsen
    treatment: a lost {e read} constrains nothing and is dropped; a
    lost {e write} may have taken effect at any point after its
    invocation {e or never}, so the search may linearize it anywhere
    its real-time order allows, or leave it out entirely. *)

type op = {
  proc : int;
  kind : [ `Read | `Write ];
  value : string option;
      (** write: [Some v] written.  read: the result — [Some v] found,
          [None] miss (registers start absent). *)
  invoked : int;
  returned : int option;  (** [None] = lost (no response observed) *)
}

val check : op list -> [ `Ok | `Violation of string ]
(** Check one register's history (all ops on one key). *)

val check_history :
  Chorus.History.t -> [ `Ok | `Violation of string ]
(** Partition a recorded history by key and check every key; the first
    violating key is reported (with its ops) as the witness. *)
