type op = {
  proc : int;
  kind : [ `Read | `Write ];
  value : string option;
  invoked : int;
  returned : int option;
}

let op_to_string o =
  Printf.sprintf "p%d %s %s [%d,%s]" o.proc
    (match o.kind with `Read -> "read" | `Write -> "write")
    (match o.value with Some v -> v | None -> "nil")
    o.invoked
    (match o.returned with Some r -> string_of_int r | None -> "lost")

(* One register.  Search state is (set of linearized ops, register
   value); memoizing on it turns the factorial order search into a
   walk of the subset lattice — the Wing-Gong observation. *)
let check ops =
  (* lost reads constrain nothing *)
  let ops =
    List.filter (fun o -> not (o.kind = `Read && o.returned = None)) ops
  in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  if n = 0 then `Ok
  else if n > 60 then
    invalid_arg "Lin.check: > 60 ops on one key (bitmask search)"
  else begin
    let ret i = match arr.(i).returned with Some r -> r | None -> max_int in
    (* all completed ops must linearize; lost writes are optional *)
    let completed_mask = ref 0 in
    Array.iteri
      (fun i o -> if o.returned <> None then completed_mask := !completed_mask lor (1 lsl i))
      arr;
    let completed_mask = !completed_mask in
    let seen : (int * string option, unit) Hashtbl.t = Hashtbl.create 256 in
    (* i may be linearized next iff no other pending op responded
       before i was even invoked (real-time order) *)
    let minimal mask i =
      let ok = ref true in
      for j = 0 to n - 1 do
        if j <> i && mask land (1 lsl j) = 0 && ret j < arr.(i).invoked then
          ok := false
      done;
      !ok
    in
    let rec dfs mask reg =
      mask land completed_mask = completed_mask
      ||
      if Hashtbl.mem seen (mask, reg) then false
      else begin
        Hashtbl.replace seen (mask, reg) ();
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < n do
          let k = !i in
          if mask land (1 lsl k) = 0 && minimal mask k then
            (match arr.(k).kind with
            | `Write -> found := dfs (mask lor (1 lsl k)) arr.(k).value
            | `Read ->
              if arr.(k).value = reg then
                found := dfs (mask lor (1 lsl k)) reg);
          incr i
        done;
        !found
      end
    in
    if dfs 0 None then `Ok
    else
      `Violation
        (Printf.sprintf "no linearization of %d ops: %s" n
           (String.concat "; " (List.map op_to_string ops)))
  end

let of_history_op (o : Chorus.History.op) =
  let outcome =
    match o.Chorus.History.outcome with Some oc -> oc | None -> Chorus.History.Lost
  in
  match outcome with
  | Chorus.History.Acked ->
    Some
      { proc = o.Chorus.History.proc; kind = o.kind;
        value = Some o.Chorus.History.value; invoked = o.invoked;
        returned = Some o.returned }
  | Chorus.History.Value vo ->
    Some
      { proc = o.Chorus.History.proc; kind = o.kind; value = vo;
        invoked = o.invoked; returned = Some o.returned }
  | Chorus.History.Lost -> (
    match o.Chorus.History.kind with
    | `Read -> None
    | `Write ->
      Some
        { proc = o.Chorus.History.proc; kind = `Write;
          value = Some o.Chorus.History.value; invoked = o.invoked;
          returned = None })

let check_history h =
  let rec go = function
    | [] -> `Ok
    | (key, kops) :: rest -> (
      let ops = List.filter_map of_history_op kops in
      match check ops with
      | `Ok -> go rest
      | `Violation msg -> `Violation (Printf.sprintf "key %s: %s" key msg))
  in
  go (Chorus.History.by_key h)
