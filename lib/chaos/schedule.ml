type fault =
  | Kill_node of { node : int; at : int }
  | Kill_point of { point : string; at : int; dur : int }
  | Frame_loss of { at : int; dur : int; p : float }
  | Frame_dup of { at : int; dur : int; p : float }
  | Frame_reorder of { at : int; dur : int; p : float }
  | Frame_delay of { at : int; dur : int; p : float; cycles : int }
  | Disk_errors of { at : int; dur : int; p : float }
  | Kill_provider of { at : int; dur : int }
  | Link_delay of {
      src : int;
      dst : int;
      at : int;
      dur : int;
      p : float;
      cycles : int;
    }
  | Partition of { src : int; dst : int; at : int; dur : int }

type t = { seed : int; faults : fault list }

let nfaults t = List.length t.faults

let kind = function
  | Kill_node _ -> "kill-node"
  | Kill_point _ -> "kill-point"
  | Frame_loss _ -> "loss"
  | Frame_dup _ -> "dup"
  | Frame_reorder _ -> "reorder"
  | Frame_delay _ -> "delay"
  | Disk_errors _ -> "disk"
  | Kill_provider _ -> "kill-provider"
  | Link_delay _ -> "link-delay"
  | Partition _ -> "partition"

let fault_to_string = function
  | Kill_node { node; at } -> Printf.sprintf "kill-node(%d)@%d" node at
  | Kill_point { point; at; dur } ->
    Printf.sprintf "kill-point(%s)@%d+%d" point at dur
  | Frame_loss { at; dur; p } ->
    Printf.sprintf "loss(p=%.2f)@%d+%d" p at dur
  | Frame_dup { at; dur; p } -> Printf.sprintf "dup(p=%.2f)@%d+%d" p at dur
  | Frame_reorder { at; dur; p } ->
    Printf.sprintf "reorder(p=%.2f)@%d+%d" p at dur
  | Frame_delay { at; dur; p; cycles } ->
    Printf.sprintf "delay(p=%.2f,%dcy)@%d+%d" p cycles at dur
  | Disk_errors { at; dur; p } ->
    Printf.sprintf "disk(p=%.2f)@%d+%d" p at dur
  | Kill_provider { at; dur } -> Printf.sprintf "kill-provider@%d+%d" at dur
  | Link_delay { src; dst; at; dur; p; cycles } ->
    Printf.sprintf "link-delay(%d>%d,p=%.2f,%dcy)@%d+%d" src dst p cycles at
      dur
  | Partition { src; dst; at; dur } ->
    Printf.sprintf "partition(%d>%d)@%d+%d" src dst at dur

let to_string t =
  String.concat " "
    (Printf.sprintf "seed=%d" t.seed
     ::
     (match t.faults with
     | [] -> [ "(no faults)" ]
     | fs -> List.map fault_to_string fs))

let fault_of_string s =
  let fail () = invalid_arg (Printf.sprintf "Schedule.of_string: bad fault %S" s) in
  let parse head =
    match head with
    | "kill-node" ->
      Scanf.sscanf s "kill-node(%d)@%d%!" (fun node at -> Kill_node { node; at })
    | "kill-point" ->
      Scanf.sscanf s "kill-point(%[^)])@%d+%d%!" (fun point at dur ->
          Kill_point { point; at; dur })
    | "loss" ->
      Scanf.sscanf s "loss(p=%f)@%d+%d%!" (fun p at dur ->
          Frame_loss { at; dur; p })
    | "dup" ->
      Scanf.sscanf s "dup(p=%f)@%d+%d%!" (fun p at dur ->
          Frame_dup { at; dur; p })
    | "reorder" ->
      Scanf.sscanf s "reorder(p=%f)@%d+%d%!" (fun p at dur ->
          Frame_reorder { at; dur; p })
    | "delay" ->
      Scanf.sscanf s "delay(p=%f,%dcy)@%d+%d%!" (fun p cycles at dur ->
          Frame_delay { at; dur; p; cycles })
    | "disk" ->
      Scanf.sscanf s "disk(p=%f)@%d+%d%!" (fun p at dur ->
          Disk_errors { at; dur; p })
    | "link-delay" ->
      Scanf.sscanf s "link-delay(%d>%d,p=%f,%dcy)@%d+%d%!"
        (fun src dst p cycles at dur ->
          Link_delay { src; dst; at; dur; p; cycles })
    | "partition" ->
      Scanf.sscanf s "partition(%d>%d)@%d+%d%!" (fun src dst at dur ->
          Partition { src; dst; at; dur })
    | _ -> fail ()
  in
  (* kill-provider is the one paren-less form: which fiber dies is
     implied by the scenario, so only the window is printed *)
  if
    String.length s >= 14 && String.equal (String.sub s 0 14) "kill-provider@"
  then
    try
      Scanf.sscanf s "kill-provider@%d+%d%!" (fun at dur ->
          Kill_provider { at; dur })
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> fail ()
  else
    match String.index_opt s '(' with
    | None -> fail ()
    | Some i -> (
      try parse (String.sub s 0 i) with
      | Scanf.Scan_failure _ | End_of_file | Failure _ -> fail ())

let of_string str =
  let toks =
    String.split_on_char ' ' (String.trim str)
    |> List.filter (fun t -> t <> "")
  in
  match toks with
  | [] -> invalid_arg "Schedule.of_string: empty schedule"
  | seedtok :: rest ->
    let seed =
      try Scanf.sscanf seedtok "seed=%d%!" Fun.id
      with Scanf.Scan_failure _ | End_of_file | Failure _ ->
        invalid_arg
          (Printf.sprintf "Schedule.of_string: expected seed=N, got %S" seedtok)
    in
    let faults =
      match rest with
      | [ "(no"; "faults)" ] | [] -> []
      | fs -> List.map fault_of_string fs
    in
    { seed; faults }

let subschedules t =
  List.mapi
    (fun i _ ->
      { t with faults = List.filteri (fun j _ -> j <> i) t.faults })
    t.faults
