(** The chaos engine: deterministic fault-space campaigns with
    linearizability and recovery oracles.

    Paper Section 5 sets the reliability goal — following Erlang,
    "aiming for {e not failing}" — and Section 4's observation that the
    kernel resembles "a client/server network application" means the
    right test discipline is the distributed-systems one: inject
    faults, record what the {e clients} observed, and check the
    observations against the specification.  Because every Chorus run
    is a pure function of its seed, chaos testing here is stronger
    than Jepsen on real hardware: a fault plan is a {!Schedule.t}
    value, every run replays byte-identically from its schedule, and a
    failing schedule shrinks to a minimal reproducer by re-running
    subschedules ({!shrink}) — FoundationDB's simulation discipline,
    not spray-and-pray.

    Two scenarios cover the stack's two service planes:

    - {!Disk}: a supervised KV store over {!Chorus_kernel.Bcache} and
      {!Chorus_kernel.Blockdev} on one 8-core node.  Faults: service
      fiber kills at the [chaos.store] crash point (dequeue boundary —
      the in-flight request dies with the fiber) and transient
      block-device read-error windows.
    - {!Kv}: the full replicated cluster (3 nodes, 2 shards,
      replication 3) over the fabric.  Faults: whole-node crashes plus
      fabric loss / duplication / reordering / delay windows.
    - {!Kv_lease}: the {!Kv} topology and workload, but the raft
      groups run the batched, leased hot path (group commit plus
      leader leases serving reads locally).  Fault generation is
      biased to the lease hazards — leader kills and partition-ish
      fabric windows (loss, delay) — so the linearizability oracle is
      pointed straight at the stale-read risk a lease introduces: a
      deposed leader answering a local read after a newer acked write
      would violate on the spot.
    - {!Projfs}: a projected mount ({!Chorus_projfs.Projfs}) hydrating
      a 128-file catalog from a supervised provider node over the
      fabric.  Faults: provider serving-fiber kills at its dequeue
      boundary (mid-hydration death; the supervisor re-serves the
      port) plus fabric loss / delay windows.  The {e placeholder
      invariant} — every read is fully hydrated or cleanly failed,
      never torn — rides on the linearizability oracle: each reachable
      file is seeded into the history as written-once with its exact
      catalog contents, so any torn or fabricated hydration is a read
      of a never-written value.
    - {!Gray}: the {!Kv} topology and workload under {e gray} failure —
      per-link fault windows ({!Schedule.Link_delay},
      {!Schedule.Partition}) that make one node slow-but-alive or
      unreachable in one direction only, while the workload clients
      defend themselves with per-node circuit breakers and per-op
      deadline budgets ({!Chorus_cluster.Client.create}'s [breaker] /
      [op_budget]).  A fifth, fail-fast {e liveness} oracle runs
      beside linearizability: every workload operation must return —
      complete or fail — within its deadline budget plus a stated
      slack; an op that outlives it hung somewhere the deadline
      machinery should have cut.

    After every run, four oracles:

    + {e linearizability} — the per-key Wing-Gong check ({!Lin}) over
      the client-recorded history, lost writes allowed to take effect
      anytime-or-never;
    + {e durability} — no acknowledged write may vanish: the
      post-recovery read of each key must see a written value;
    + {e recovery} — after the last fault window closes, the service
      plane must answer again within a stated bound (supervised
      restarts actually healed the system);
    + {e quiescence} — the run winds down to no more live fibers than
      it started with and no requests stuck in inboxes (nothing
      leaked). *)

type scenario = Disk | Kv | Kv_lease | Projfs | Gray

type outcome = {
  digest : string;
      (** hex digest of the full observable record (history, fault and
          recovery counters, violations).  Two runs of the same
          schedule are byte-identical iff their digests are equal —
          the replay oracle. *)
  violations : string list;  (** empty = all oracles passed *)
  injected : int;  (** faults that actually fired *)
  ops : int;  (** client operations recorded in the history *)
  leased_reads : int;
      (** reads the leaders served locally under a lease ({!Kv_lease}
          only; 0 elsewhere).  A green lease run that never actually
          served a leased read proves nothing, so tests assert on
          this.  Counters reset when a crashed node restarts — the
          total undercounts, never overcounts. *)
}

type prepared = {
  pconfig : Chorus.Runtime.config;
      (** engine configuration for the scenario (no trace sink) *)
  pmain : unit -> unit;
      (** the scenario body: boot, fault injection, workload, oracles *)
  pfinish : unit -> outcome;
      (** assemble digest + violations — only meaningful after [pmain]
          ran to completion under {!Chorus.Runtime.run} *)
}

val prepare : ?corrupt:bool -> scenario -> Schedule.t -> prepared
(** The scenario split into its replayable phases.  [run_one] is
    [prepare] composed with a full run; the time-travel debugger
    ({!Chorus_debug.Replay}) instead drives [pmain] through
    {!Chorus.Engine.start} / {!Chorus.Engine.run_until} to pause at an
    arbitrary virtual time and snapshot live state.  A caller that
    does not run [pmain] to completion must clear the ambient
    crash-point hook ({!Chorus_svc.Svc.set_crashpoint}) itself. *)

val run_one : ?corrupt:bool -> scenario -> Schedule.t -> outcome
(** Run one schedule and check every oracle.  [corrupt] (default
    false) appends a fabricated read of a never-written value to the
    history — a deliberately broken oracle input used by {!selftest}
    to prove violations are actually caught. *)

val gen : scenario -> seed:int -> index:int -> Schedule.t
(** The campaign's schedule enumerator: deterministic in
    [(seed, index)].  Index 0 is always the fault-free schedule (the
    sanity point); higher indices carry 1–3 faults with
    seed-derived kinds, windows and probabilities. *)

val shrink : ?corrupt:bool -> scenario -> Schedule.t -> Schedule.t
(** Greedy ddmin-lite: repeatedly drop any single fault whose removal
    keeps the schedule violating, to a fixpoint.  Returns the input
    unchanged if it does not violate. *)

type violation = {
  vscenario : scenario;
  schedule : Schedule.t;  (** as explored *)
  minimal : Schedule.t;  (** after {!shrink} *)
  first : string;  (** first oracle violation message *)
  replay_identical : bool;
      (** the schedule re-ran to the same digest and the minimal
          schedule still violates *)
}

type report = {
  runs : int;
  total_ops : int;
  faults_injected : int;
  kinds : (string * int) list;
      (** faults explored per {!Schedule.kind}, alphabetical *)
  violations : violation list;
  campaign_digest : string;
      (** hex digest over every run's outcome digest in task order —
          two campaigns merged identically iff these are equal, which
          is how the N-domain determinism gate compares shardings *)
}

val campaign :
  ?disk_runs:int -> ?kv_runs:int -> ?projfs_runs:int -> ?lease_runs:int ->
  ?gray_runs:int -> ?domains:int -> seed:int -> unit -> report
(** Enumerate and run [disk_runs] {!Disk} schedules (default 24),
    [kv_runs] {!Kv} schedules (default 8), [projfs_runs] {!Projfs}
    schedules, [lease_runs] {!Kv_lease} schedules and [gray_runs]
    {!Gray} schedules (all three default 0 —
    opt-in, so the standing chaos benchmark's record is unchanged),
    checking every oracle after every run; violations are
    replay-verified and shrunk.  [domains] (default 1) shards the runs
    across a {!Chorus_par.Pool}: every run is an independent engine
    with its own context, and results merge in task order, so the
    report — digest included — is byte-identical at any domain
    count. *)

type selftest_result = {
  caught : bool;  (** the planted violation was detected *)
  minimal_faults : int;
      (** faults left after shrinking — 0, since the planted violation
          does not depend on any injected fault *)
  st_replay_identical : bool;
      (** two runs of the minimal schedule: same digest, same
          violations *)
}

val selftest : seed:int -> selftest_result
(** End-to-end oracle validation: run a faulty schedule with
    [~corrupt:true], confirm the checker flags it, shrink it, and
    replay the minimal schedule byte-identically.  Guards against the
    quietest failure mode a checker has — passing everything. *)
