(* The chaos engine.  See chaos.mli for the story.

   Implementation notes, mostly about determinism and non-flakiness:

   - Everything a run observes is a function of its Schedule.t: the
     engine seed, the fault times, the fault RNG seeds.  Nothing here
     reads host time or host randomness, so digest equality across
     runs of the same schedule is exact, not statistical.

   - Clients record what *they* saw (History), using single-attempt
     calls with generous timeouts: a timed-out operation is Lost, and
     Lost is always safe for the checker (a lost write may take effect
     anytime-or-never, a lost read constrains nothing).  No client
     ever retries a write, so no write can be applied twice — the
     classic way chaos harnesses poison their own histories.

   - Oracle bounds (recovery deadlines, quiesce settles) are sized
     several times worse than the worst path through the scenario
     (retry storms, elections), so a violation means a broken system,
     not a tight constant. *)

module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Engine = Chorus.Engine
module History = Chorus.History
module Runtime = Chorus.Runtime
module Rng = Chorus_util.Rng
module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Diskmodel = Chorus_machine.Diskmodel
module Svc = Chorus_svc.Svc
module Blockdev = Chorus_kernel.Blockdev
module Bcache = Chorus_kernel.Bcache
module Supervisor = Chorus_kernel.Supervisor
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Cluster = Chorus_cluster.Cluster
module Client = Chorus_cluster.Client
module Raft = Chorus_cluster.Raft
module Faults = Chorus_workload.Faults
module Fsspec = Chorus_fsspec.Fsspec
module Cgalloc = Chorus_kernel.Cgalloc
module Msgvfs = Chorus_kernel.Msgvfs
module Provider = Chorus_projfs.Provider
module Projfs = Chorus_projfs.Projfs

type scenario = Disk | Kv | Kv_lease | Projfs | Gray

type outcome = {
  digest : string;
  violations : string list;
  injected : int;
  ops : int;
  leased_reads : int;
}

exception Chaos_kill
(* raised by the crash-point hook inside the victim's serve fiber *)

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                     *)

let live () = Engine.live_fibers (Engine.current ())

(* Turn (time, thunk) pairs into one schedule-driven injector.  Times
   are nudged apart when equal so the sorted order is unambiguous. *)
let start_injector actions =
  match actions with
  | [] -> None
  | l ->
    let l = List.stable_sort (fun (a, _) (b, _) -> compare a b) l in
    let rec spread last = function
      | [] -> []
      | (t, f) :: rest ->
        let t = if t <= last then last + 1 else t in
        (t, f) :: spread t rest
    in
    let l = spread (-1) l in
    let arr = Array.of_list l in
    Some
      (Faults.start_schedule
         ~at:(List.map fst l)
         ~inject:(fun ~n ->
           (snd arr.(n - 1)) ();
           true))

let serialize_history hist b =
  List.iter
    (fun (o : History.op) ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %s %s %d %d %s\n" o.proc
           (match o.kind with `Read -> "r" | `Write -> "w")
           o.key o.value o.invoked
           (if o.returned = max_int then -1 else o.returned)
           (match o.outcome with
           | None -> "pending"
           | Some History.Acked -> "acked"
           | Some (History.Value None) -> "miss"
           | Some (History.Value (Some v)) -> "=" ^ v
           | Some History.Lost -> "lost")))
    (History.ops hist)

let written_values hist key =
  List.filter_map
    (fun (o : History.op) ->
      if o.kind = `Write && o.key = key then Some o.value else None)
    (History.ops hist)

let has_acked_write hist key =
  List.exists
    (fun (o : History.op) ->
      o.kind = `Write && o.key = key && o.outcome = Some History.Acked)
    (History.ops hist)

(* The planted oracle violation for selftest: a completed read of a
   value nobody ever wrote.  Must be recorded inside the run (it
   stamps virtual times). *)
let plant_corruption hist =
  let op = History.invoke hist ~proc:13 ~kind:`Read ~key:"k0" () in
  History.return_ hist op (History.Value (Some "bogus-never-written"))

let finish ?(leased = 0) ~hist ~tail ~viols ~injected () =
  (match Lin.check_history hist with
  | `Ok -> ()
  | `Violation m -> viols := ("linearizability: " ^ m) :: !viols);
  let violations = List.rev !viols in
  let b = Buffer.create 1024 in
  serialize_history hist b;
  Buffer.add_buffer b tail;
  List.iter
    (fun v ->
      Buffer.add_string b v;
      Buffer.add_char b '\n')
    violations;
  { digest = Digest.to_hex (Digest.string (Buffer.contents b));
    violations;
    injected = !injected;
    ops = History.length hist;
    leased_reads = leased }

(* ------------------------------------------------------------------ *)
(* Disk scenario: supervised KV store over Bcache + Blockdev           *)

type store_req = Put of string * string | Get of string

type store_resp = Ack | Val of string option

let key_block k = Char.code k.[1] - Char.code '0'

let disk_op_timeout = 400_000

let disk_recovery_bound = 800_000

(* A scenario split into its three replayable phases: the engine
   configuration, the body to run on it, and the oracle/digest
   assembly.  run_one composes all three; the time-travel debugger
   (lib/debug) instead drives pmain through Engine.start/run_until and
   never calls pfinish. *)
type prepared = {
  pconfig : Runtime.config;
  pmain : unit -> unit;
  pfinish : unit -> outcome;
}

let prepare_disk ~corrupt (sch : Schedule.t) =
  let hist = History.create () in
  let injected = ref 0 in
  let viols = ref [] in
  let viol fmt = Printf.ksprintf (fun m -> viols := m :: !viols) fmt in
  let tail = Buffer.create 128 in
  let pconfig =
    Runtime.config ~policy:(Policy.round_robin ()) ~seed:sch.Schedule.seed
      (Machine.mesh ~cores:8)
  in
  let pmain () =
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let cache = Bcache.start ~shards:2 ~capacity:64 ~dev () in
        let ep : (store_req, store_resp) Svc.t =
          Svc.create ~subsystem:"chaos" ~label:"store" ()
        in
        let handler = function
          | Put (k, v) ->
            Bcache.put cache (key_block k) ~off:0 (v ^ "\n");
            Ack
          | Get k -> (
            let s = Bcache.get_range cache (key_block k) ~off:0 ~len:32 in
            match String.index_opt s '\n' with
            | Some i -> Val (Some (String.sub s 0 i))
            | None -> Val None)
        in
        let words_of_resp = function
          | Ack | Val None -> 2
          | Val (Some s) -> 2 + ((String.length s + 7) / 8)
        in
        let sup =
          Supervisor.start ~max_restarts:100 ~window:1_000_000_000
            Supervisor.One_for_one
            [ { Supervisor.cname = "store";
                cstart = Svc.starter ~words_of_resp ep handler } ]
        in
        (* crash points: first dequeue inside each window kills the
           store's serve fiber (with the request it just dequeued) *)
        let kill_windows =
          List.filter_map
            (function
              | Schedule.Kill_point { point; at; dur } ->
                Some (point, at, dur, ref false)
              | _ -> None)
            sch.Schedule.faults
        in
        Svc.set_crashpoint
          (Some
             (fun name ->
               let now = Fiber.now () in
               List.iter
                 (fun (pt, at, dur, fired) ->
                   if
                     (not !fired) && String.equal pt name && now >= at
                     && now < at + dur
                   then begin
                     fired := true;
                     incr injected;
                     raise Chaos_kill
                   end)
                 kill_windows));
        let baseline = live () in
        let actions = ref [] in
        List.iter
          (function
            | Schedule.Disk_errors { at; dur; p } ->
              actions :=
                ( at,
                  fun () ->
                    incr injected;
                    Blockdev.set_read_fault dev ~p ~seed:(sch.Schedule.seed + at)
                      () )
                :: ( at + dur,
                     fun () -> Blockdev.set_read_fault dev () )
                :: !actions
            | _ -> ())
          sch.Schedule.faults;
        let inj = start_injector !actions in
        (* workload: 2 procs x 10 single-attempt ops on 4 shared keys *)
        let keys = [| "k0"; "k1"; "k2"; "k3" |] in
        let one_shot req map =
          let r = Svc.call_async ~words:4 ep req in
          Chan.choose
            [ Chan.recv_case r (fun x -> map x);
              Chan.after disk_op_timeout (fun () -> History.Lost) ]
        in
        let client proc =
          for i = 0 to 9 do
            Fiber.sleep (15_000 + ((((proc * 7) + (i * 13)) mod 9) * 4_000));
            let key = keys.((proc + (2 * i)) mod 4) in
            if i mod 3 = 2 then begin
              let op = History.invoke hist ~proc ~kind:`Read ~key () in
              History.return_ hist op
                (one_shot (Get key) (function
                  | `Ok (Val vo) -> History.Value vo
                  | `Ok Ack | `Busy | `Expired -> History.Lost))
            end
            else begin
              let v = Printf.sprintf "p%d-%d" proc i in
              let op =
                History.invoke hist ~proc ~kind:`Write ~key ~value:v ()
              in
              History.return_ hist op
                (one_shot (Put (key, v)) (function
                  | `Ok Ack -> History.Acked
                  | `Ok (Val _) | `Busy | `Expired -> History.Lost))
            end
          done
        in
        let c0 = Fiber.spawn ~label:"chaos-client-0" (fun () -> client 0) in
        let c1 = Fiber.spawn ~label:"chaos-client-1" (fun () -> client 1) in
        ignore (Fiber.join c0);
        ignore (Fiber.join c1);
        (match inj with Some t -> Faults.wait t | None -> ());
        Blockdev.set_read_fault dev ();
        (* kill windows are hook-based, not injector-based: a window
           opening after the workload drains would otherwise still be
           armed and kill the recovery probe itself.  Wait the windows
           out and disarm before claiming "faults cleared". *)
        let faults_end =
          List.fold_left
            (fun acc (_, at, dur, _) -> max acc (at + dur))
            0 kill_windows
        in
        let now = Fiber.now () in
        if faults_end > now then Fiber.sleep (faults_end - now);
        Svc.set_crashpoint None;
        (* recovery oracle: the (supervised, possibly just restarted)
           store must answer again within the bound *)
        let t0 = Fiber.now () in
        let r = Svc.call_async ~words:4 ep (Get "k0") in
        (match
           Chan.choose
             [ Chan.recv_case r (fun x -> `R x);
               Chan.after disk_recovery_bound (fun () -> `T) ]
         with
        | `R (`Ok _) ->
          Buffer.add_string tail
            (Printf.sprintf "recovered=%d\n" (Fiber.now () - t0))
        | `R (`Busy | `Expired) | `T ->
          viol "recovery: store silent %d cycles after faults cleared"
            disk_recovery_bound);
        (* final reads close the history and back the durability check *)
        Array.iter
          (fun key ->
            let acked = has_acked_write hist key in
            let writes = written_values hist key in
            let op = History.invoke hist ~proc:9 ~kind:`Read ~key () in
            match one_shot (Get key) (function
              | `Ok (Val vo) -> History.Value vo
              | `Ok Ack | `Busy | `Expired -> History.Lost)
            with
            | History.Value (Some v) as oc ->
              History.return_ hist op oc;
              if not (List.mem v writes) then
                viol "durability: key %s holds never-written value %s" key v
            | History.Value None as oc ->
              History.return_ hist op oc;
              if acked then
                viol "durability: key %s lost its acked write(s)" key
            | oc ->
              History.return_ hist op oc;
              viol "recovery: final read of %s got no answer" key)
          keys;
        if corrupt then plant_corruption hist;
        (* quiesce: stop the supervised store, then nothing may be
           left running or queued beyond what the run started with *)
        Supervisor.stop sup;
        Fiber.sleep 60_000;
        let depth = Svc.depth ep in
        if depth > 0 then viol "quiesce: %d requests stuck in store inbox" depth;
        let end_live = live () in
        if end_live > baseline then
          viol "quiesce: %d live fibers leaked (%d > %d)"
            (end_live - baseline) end_live baseline;
        Buffer.add_string tail
          (Printf.sprintf "injected=%d read_errors=%d retries=%d restarts=%d live=%d end=%d\n"
             !injected (Blockdev.read_errors dev) (Bcache.read_retries cache)
             (Supervisor.restarts sup) end_live (Fiber.now ()))
  in
  { pconfig;
    pmain;
    pfinish = (fun () -> finish ~hist ~tail ~viols ~injected ()) }

let run_prepared p =
  Fun.protect ~finally:(fun () -> Svc.set_crashpoint None) @@ fun () ->
  let (_ : Chorus.Runstats.t) = Runtime.run p.pconfig p.pmain in
  p.pfinish ()

let run_disk ~corrupt sch = run_prepared (prepare_disk ~corrupt sch)

(* ------------------------------------------------------------------ *)
(* Kv scenario: the replicated cluster over a faulty fabric            *)

let kv_settle = 1_000_000

let kv_node_deadline = 3_000_000

let kv_probe_deadline = 2_000_000

(* Gray scenario: the workload clients run with circuit breakers and a
   per-operation deadline budget, and the fail-fast liveness oracle
   holds every one of their operations to [budget + slack].  The slack
   covers the pre-deadline machinery (one bootstrap map fetch at
   ~3 nodes x 2 x 60k worst case) plus the RPC in flight when the
   budget expires (timeout clamped to the remaining budget, 2 stack
   attempts) — sized several times worse than that worst path, so a
   violation means an op that truly outlived its budget (a hang, a
   retry loop that ignored the deadline), not a tight constant. *)
let gray_op_budget = 600_000

let gray_liveness_slack = 2_500_000

let gray_breaker = { Client.trip_after = 3; cooldown = 400_000 }

(* [lease] is the Kv_lease scenario: same topology, same workload, but
   the raft groups run with leader leases AND group-commit batching on
   — the whole batched/leased hot path under node kills and fabric
   faults.  The stale-read hazard a lease introduces (a deposed leader
   serving a local read after a new leader acked a newer write) would
   surface as a linearizability violation on the recorded history, so
   "0 violations" is exactly the lease-safety claim of DESIGN.md D13. *)
(* [gray] is the gray-failure scenario: same topology and workload,
   but the fault palette is per-link (a slow-but-alive node, an
   asymmetric partition) and the workload clients defend themselves
   with circuit breakers and per-op deadline budgets.  The liveness
   oracle then rides beside linearizability: every workload op must
   return — complete or fail — within its budget (plus slack), no
   hangs.  *)
let prepare_kv ?(lease = false) ?(gray = false) ~corrupt (sch : Schedule.t) =
  let hist = History.create () in
  let injected = ref 0 in
  let leased_total = ref 0 in
  let viols = ref [] in
  let viol fmt = Printf.ksprintf (fun m -> viols := m :: !viols) fmt in
  let tail = Buffer.create 128 in
  let pconfig =
    Runtime.config ~policy:(Policy.round_robin ()) ~seed:sch.Schedule.seed
      (Machine.mesh ~cores:16)
  in
  let pmain () =
        let net = Fabric.create ~latency:5_000 ~seed:(sch.Schedule.seed + 1) () in
        let raft =
          if not lease then None
          else
            Some
              { (Raft.default_config ~seed:sch.Schedule.seed) with
                Raft.lease = true;
                batch_window = 8_000;
                max_append = 64 }
        in
        let c =
          Cluster.create ?raft ~nshards:2 ~replication:3
            ~seed:sch.Schedule.seed ~nnodes:3 net
        in
        Cluster.start ~max_restarts:100 ~window:1_000_000_000 c;
        let mk ?attempts ?breaker ?op_budget s label =
          Client.create ?attempts ?breaker ?op_budget
            ~seed:(sch.Schedule.seed + s) ~bootstrap:(Cluster.addrs c)
            (Stack.create net (Fabric.attach net ~label ()))
        in
        (* workload clients never retry an operation (attempts:1): a
           write either acks or is Lost — retrying would risk applying
           it twice, which no register history can absorb.  In the gray
           scenario they additionally carry breakers and a deadline
           budget — the defenses under test. *)
        let mk_wl s label =
          if gray then
            mk ~attempts:1 ~breaker:gray_breaker ~op_budget:gray_op_budget s
              label
          else mk ~attempts:1 s label
        in
        let wl = [| mk_wl 101 "wl0"; mk_wl 102 "wl1" |] in
        let probe = mk 103 "probe" in
        Fiber.sleep kv_settle;
        let baseline = live () in
        let actions = ref [] in
        let add t f = actions := (t, f) :: !actions in
        let window at dur on off =
          add at (fun () ->
              incr injected;
              on ());
          add (at + dur) off
        in
        List.iter
          (function
            | Schedule.Kill_node { node; at } ->
              add at (fun () ->
                  if Cluster.node_up c node then begin
                    incr injected;
                    Cluster.crash_node c node
                  end)
            | Schedule.Frame_loss { at; dur; p } ->
              window at dur
                (fun () -> Fabric.set_faults net ~loss:p ())
                (fun () -> Fabric.set_faults net ~loss:0.0 ())
            | Schedule.Frame_dup { at; dur; p } ->
              window at dur
                (fun () -> Fabric.set_faults net ~dup:p ())
                (fun () -> Fabric.set_faults net ~dup:0.0 ())
            | Schedule.Frame_reorder { at; dur; p } ->
              window at dur
                (fun () -> Fabric.set_faults net ~reorder:p ())
                (fun () -> Fabric.set_faults net ~reorder:0.0 ())
            | Schedule.Frame_delay { at; dur; p; cycles } ->
              window at dur
                (fun () -> Fabric.set_faults net ~delay:p ~delay_cycles:cycles ())
                (fun () -> Fabric.set_faults net ~delay:0.0 ())
            | Schedule.Link_delay { src; dst; at; dur; p; cycles } ->
              window at dur
                (fun () ->
                  Fabric.set_link_faults net ~src ~dst ~delay:p
                    ~delay_cycles:cycles ())
                (fun () -> Fabric.clear_link_faults net ~src ~dst)
            | Schedule.Partition { src; dst; at; dur } ->
              window at dur
                (fun () ->
                  Fabric.set_link_faults net ~src ~dst ~partition:true ())
                (fun () -> Fabric.clear_link_faults net ~src ~dst)
            | Schedule.Kill_point _ | Schedule.Disk_errors _
            | Schedule.Kill_provider _ -> ())
          sch.Schedule.faults;
        let inj = start_injector !actions in
        let keys = [| "k0"; "k1"; "k2" |] in
        let client proc =
          for i = 0 to 7 do
            Fiber.sleep (40_000 + ((((proc * 11) + (i * 17)) mod 7) * 20_000));
            let key = keys.((proc + i) mod 3) in
            if i mod 3 = 2 then begin
              let op = History.invoke hist ~proc ~kind:`Read ~key () in
              match Client.get wl.(proc) key with
              | `Found v -> History.return_ hist op (History.Value (Some v))
              | `Miss -> History.return_ hist op (History.Value None)
              | `Net_fail -> History.return_ hist op History.Lost
            end
            else begin
              let v = Printf.sprintf "p%d-%d" proc i in
              let op =
                History.invoke hist ~proc ~kind:`Write ~key ~value:v ()
              in
              match Client.put wl.(proc) key v with
              | `Ok -> History.return_ hist op History.Acked
              | `Net_fail -> History.return_ hist op History.Lost
            end
          done
        in
        let c0 = Fiber.spawn ~label:"chaos-client-0" (fun () -> client 0) in
        let c1 = Fiber.spawn ~label:"chaos-client-1" (fun () -> client 1) in
        ignore (Fiber.join c0);
        ignore (Fiber.join c1);
        (* fail-fast liveness oracle: under gray faults every workload
           op must have returned — acked, answered or failed — within
           its deadline budget.  An op that outlived budget + slack
           hung somewhere the deadline machinery should have cut. *)
        if gray then begin
          let bound = gray_op_budget + gray_liveness_slack in
          List.iter
            (fun (o : History.op) ->
              if o.proc <= 1 then
                if o.returned = max_int then
                  viol "liveness: proc %d %s %s never returned" o.proc
                    (match o.kind with `Read -> "read" | `Write -> "write")
                    o.key
                else if o.returned - o.invoked > bound then
                  viol
                    "liveness: proc %d %s %s took %d cycles (budget %d + slack %d)"
                    o.proc
                    (match o.kind with `Read -> "read" | `Write -> "write")
                    o.key (o.returned - o.invoked) gray_op_budget
                    gray_liveness_slack)
            (History.ops hist);
          (* defense evidence, folded into the digest: a green gray
             campaign in which no breaker ever tripped and no link
             fault ever fired proves much less *)
          let sum f = Array.fold_left (fun a c -> a + f c) 0 wl in
          let ls = Fabric.link_stats net in
          Buffer.add_string tail
            (Printf.sprintf
               "gray: trips=%d skips=%d probes=%d misses=%d link_delayed=%d \
                link_dropped=%d partitioned=%d\n"
               (sum Client.breaker_trips) (sum Client.breaker_skips)
               (sum Client.breaker_probes) (sum Client.deadline_misses)
               ls.Fabric.link_delayed ls.Fabric.link_dropped
               ls.Fabric.partitioned)
        end;
        (match inj with Some t -> Faults.wait t | None -> ());
        Fabric.set_faults net ~loss:0.0 ~dup:0.0 ~reorder:0.0 ~delay:0.0 ();
        (* recovery oracle 1: supervision heals every crashed node *)
        let deadline = Fiber.now () + kv_node_deadline in
        let rec wait_up () =
          if List.for_all (Cluster.node_up c) (Cluster.addrs c) then true
          else if Fiber.now () >= deadline then false
          else begin
            Fiber.sleep 50_000;
            wait_up ()
          end
        in
        if not (wait_up ()) then
          viol "recovery: crashed node not restarted within %d cycles"
            kv_node_deadline;
        (* recovery oracle 2: the data plane answers again *)
        let t0 = Fiber.now () in
        let rec probe_put () =
          match Client.put probe "probe-key" "up" with
          | `Ok ->
            Buffer.add_string tail
              (Printf.sprintf "recovered=%d\n" (Fiber.now () - t0));
            true
          | `Net_fail ->
            if Fiber.now () - t0 > kv_probe_deadline then false else probe_put ()
        in
        if not (probe_put ()) then
          viol "recovery: cluster silent %d cycles after faults cleared"
            kv_probe_deadline;
        (* final reads + durability: an acked write must still be
           readable; any readable value must have been written *)
        Array.iter
          (fun key ->
            let acked = has_acked_write hist key in
            let writes = written_values hist key in
            let op = History.invoke hist ~proc:9 ~kind:`Read ~key () in
            match Client.get probe key with
            | `Found v ->
              History.return_ hist op (History.Value (Some v));
              if not (List.mem v writes) then
                viol "durability: key %s holds never-written value %s" key v
            | `Miss ->
              History.return_ hist op (History.Value None);
              if acked then
                viol "durability: key %s lost its acked write(s)" key
            | `Net_fail ->
              History.return_ hist op History.Lost;
              viol "recovery: final read of %s got no answer" key)
          keys;
        if corrupt then plant_corruption hist;
        (* lease-path evidence, folded into the digest: a green lease
           campaign that never served a leased read proves nothing.
           Counters on nodes that crashed and restarted reset — this
           undercounts, never overcounts. *)
        if lease then begin
          let lr = ref 0 and ld = ref 0 and gc = ref 0 in
          List.iter
            (fun addr ->
              for shard = 0 to 1 do
                match Cluster.raft_of c ~node:addr ~shard with
                | None -> ()
                | Some r ->
                  lr := !lr + Raft.leased_reads r;
                  ld := !ld + Raft.lease_denied r;
                  gc := !gc + Raft.group_commits r
              done)
            (Cluster.addrs c);
          leased_total := !lr;
          Buffer.add_string tail
            (Printf.sprintf "leased=%d denied=%d group_commits=%d\n" !lr !ld
               !gc)
        end;
        Cluster.stop c;
        Fiber.sleep 100_000;
        let end_live = live () in
        if end_live > baseline then
          viol "quiesce: %d live fibers leaked (%d > %d)"
            (end_live - baseline) end_live baseline;
        Buffer.add_string tail
          (Printf.sprintf
             "injected=%d elections=%d leader_changes=%d crashes=%d restarts=%d live=%d end=%d\n"
             !injected
             (Cluster.elections_started c)
             (Cluster.leader_changes c) (Cluster.node_crashes c)
             (Cluster.restarts c) end_live (Fiber.now ()))
  in
  { pconfig;
    pmain;
    pfinish =
      (fun () ->
        finish ~leased:!leased_total ~hist ~tail ~viols ~injected ()) }

let run_kv ?lease ?gray ~corrupt sch =
  run_prepared (prepare_kv ?lease ?gray ~corrupt sch)

(* ------------------------------------------------------------------ *)
(* Projfs scenario: projected mount hydrating from a supervised
   provider over a faulty fabric.

   The placeholder invariant rides on the linearizability oracle: the
   catalog is immutable, so before any client runs, every file the
   workload can touch is recorded as written-once with its exact
   catalog contents.  A read that returns anything else — a torn
   hydration, bytes from the wrong file, a partial fill exposed by a
   provider kill mid-hydration — is then a read of a never-written
   value, precisely what the checker rejects; a hydration that fails
   is Lost, which constrains nothing.  "Every fd fully hydrated or
   cleanly failed" becomes a checkable register property. *)

let projfs_recovery_bound = 1_500_000

let prepare_projfs ~corrupt (sch : Schedule.t) =
  let hist = History.create () in
  let injected = ref 0 in
  let viols = ref [] in
  let viol fmt = Printf.ksprintf (fun m -> viols := m :: !viols) fmt in
  let tail = Buffer.create 128 in
  let pconfig =
    Runtime.config ~policy:(Policy.round_robin ()) ~seed:sch.Schedule.seed
      (Machine.mesh ~cores:16)
  in
  let nops = 12 in
  let pmain () =
        let cat =
          Provider.catalog ~seed:sch.Schedule.seed ~nfiles:128 ~dir_width:32 ()
        in
        let net = Fabric.create ~latency:5_000 ~seed:(sch.Schedule.seed + 1) () in
        let pstack = Stack.create net (Fabric.attach net ~label:"provider" ()) in
        let mstack = Stack.create net (Fabric.attach net ~label:"mount" ()) in
        let server = Provider.make () in
        let sup =
          Supervisor.start ~max_restarts:100 ~window:1_000_000_000
            Supervisor.One_for_one
            [ { Supervisor.cname = "provider";
                cstart = Provider.starter server cat pstack } ]
        in
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let cache = Bcache.start ~shards:2 ~capacity:128 ~dev () in
        let alloc = Cgalloc.start ~nblocks:2048 () in
        let fs = Msgvfs.mount Msgvfs.default_config ~bcache:cache ~alloc in
        let pf =
          match
            Projfs.mount ~workers:2 ~fs ~at:"/proj" ~stack:mstack
              ~provider:(Stack.addr pstack) ()
          with
          | Ok pf -> pf
          | Error e ->
            failwith ("chaos projfs: mount failed: " ^ Fsspec.err_to_string e)
        in
        (* crash points: the provider's serving fiber dies at its first
           dequeue inside each window; the supervisor re-serves the
           port (stack-side dedup cache intact) *)
        let kill_windows =
          List.filter_map
            (function
              | Schedule.Kill_provider { at; dur } ->
                Some (Provider.crashpoint, at, dur, ref false)
              | _ -> None)
            sch.Schedule.faults
        in
        Svc.set_crashpoint
          (Some
             (fun name ->
               let now = Fiber.now () in
               List.iter
                 (fun (pt, at, dur, fired) ->
                   if
                     (not !fired) && String.equal pt name && now >= at
                     && now < at + dur
                   then begin
                     fired := true;
                     incr injected;
                     raise Chaos_kill
                   end)
                 kill_windows));
        let actions = ref [] in
        let add t f = actions := (t, f) :: !actions in
        let window at dur on off =
          add at (fun () ->
              incr injected;
              on ());
          add (at + dur) off
        in
        List.iter
          (function
            | Schedule.Frame_loss { at; dur; p } ->
              window at dur
                (fun () -> Fabric.set_faults net ~loss:p ())
                (fun () -> Fabric.set_faults net ~loss:0.0 ())
            | Schedule.Frame_delay { at; dur; p; cycles } ->
              window at dur
                (fun () -> Fabric.set_faults net ~delay:p ~delay_cycles:cycles ())
                (fun () -> Fabric.set_faults net ~delay:0.0 ())
            | _ -> ())
          sch.Schedule.faults;
        let inj = start_injector !actions in
        (* the workload's read set, plus one file it never touches for
           the post-fault cold-hydration probe *)
        let file_idx proc i = ((proc * 13) + (i * 7)) mod cat.Provider.nfiles in
        let used = Hashtbl.create 32 in
        for proc = 0 to 1 do
          for i = 0 to nops - 1 do
            Hashtbl.replace used (file_idx proc i) ()
          done
        done;
        let cold_idx =
          let rec go i = if Hashtbl.mem used i then go (i + 1) else i in
          go 0
        in
        Hashtbl.replace used cold_idx ();
        let seeded =
          List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) used [])
        in
        (* immutable-register seeding: one acked write per reachable
           file, carrying the exact catalog contents *)
        List.iter
          (fun idx ->
            let rel = Provider.rel_path cat idx in
            let v = Option.get (Provider.content cat rel) in
            let op =
              History.invoke hist ~proc:8 ~kind:`Write ~key:rel ~value:v ()
            in
            History.return_ hist op History.Acked)
          seeded;
        (* pre-walk: spawn every reachable vnode (a stat walks but does
           not hydrate) so the quiescence baseline includes the
           namespace itself and only transient fibers count as leaks *)
        let prewalk = Projfs.client pf in
        List.iter
          (fun idx ->
            let path =
              Projfs.mount_path pf ^ "/" ^ Provider.rel_path cat idx
            in
            ignore (Projfs.stat prewalk path))
          seeded;
        let baseline = live () in
        let read_file c path =
          match Projfs.open_ c path with
          | Error _ -> None
          | Ok fd ->
            let r = Projfs.read c fd ~off:0 ~len:Fsspec.block_size in
            ignore (Projfs.close c fd);
            (match r with Ok data -> Some data | Error _ -> None)
        in
        let client proc =
          let c = Projfs.client pf in
          for i = 0 to nops - 1 do
            Fiber.sleep (30_000 + ((((proc * 7) + (i * 13)) mod 9) * 15_000));
            let rel = Provider.rel_path cat (file_idx proc i) in
            let path = Projfs.mount_path pf ^ "/" ^ rel in
            if i mod 5 = 4 then
              (* background hydration traffic crossing the fault
                 windows; sheds and failures are invisible to the
                 history (prefetch is advice) *)
              Projfs.prefetch pf path
            else begin
              let op = History.invoke hist ~proc ~kind:`Read ~key:rel () in
              match read_file c path with
              | Some data ->
                History.return_ hist op (History.Value (Some data));
                (* the lin checker will reject this too; name the
                   broken invariant directly *)
                if not (String.equal data (Option.get (Provider.content cat rel)))
                then viol "placeholder: %s read torn/fabricated contents" rel
              | None -> History.return_ hist op History.Lost
            end
          done
        in
        let c0 = Fiber.spawn ~label:"chaos-client-0" (fun () -> client 0) in
        let c1 = Fiber.spawn ~label:"chaos-client-1" (fun () -> client 1) in
        ignore (Fiber.join c0);
        ignore (Fiber.join c1);
        (match inj with Some t -> Faults.wait t | None -> ());
        Fabric.set_faults net ~loss:0.0 ~delay:0.0 ();
        (* wait the kill windows out before disarming (see prepare_disk) *)
        let faults_end =
          List.fold_left
            (fun acc (_, at, dur, _) -> max acc (at + dur))
            0 kill_windows
        in
        let now = Fiber.now () in
        if faults_end > now then Fiber.sleep (faults_end - now);
        Svc.set_crashpoint None;
        (* recovery oracle: a never-touched file cold-hydrates within
           the bound once the (restarted) provider answers again *)
        let probe_client = Projfs.client pf in
        let rel = Provider.rel_path cat cold_idx in
        let path = Projfs.mount_path pf ^ "/" ^ rel in
        let t0 = Fiber.now () in
        let rec probe () =
          let op = History.invoke hist ~proc:9 ~kind:`Read ~key:rel () in
          match read_file probe_client path with
          | Some data ->
            History.return_ hist op (History.Value (Some data));
            if not (String.equal data (Option.get (Provider.content cat rel)))
            then viol "placeholder: %s read torn/fabricated contents" rel;
            Buffer.add_string tail
              (Printf.sprintf "recovered=%d\n" (Fiber.now () - t0));
            true
          | None ->
            History.return_ hist op History.Lost;
            if Fiber.now () - t0 > projfs_recovery_bound then false
            else begin
              Fiber.sleep 50_000;
              probe ()
            end
        in
        if not (probe ()) then
          viol "recovery: provider silent %d cycles after faults cleared"
            projfs_recovery_bound;
        if corrupt then plant_corruption hist;
        Supervisor.stop sup;
        Fiber.sleep 60_000;
        let depth = Svc.depth (Projfs.hydrate_ep pf) in
        if depth > 0 then
          viol "quiesce: %d hydrations stuck in inbox" depth;
        let end_live = live () in
        if end_live > baseline then
          viol "quiesce: %d live fibers leaked (%d > %d)"
            (end_live - baseline) end_live baseline;
        Buffer.add_string tail
          (Printf.sprintf
             "injected=%d hydrations=%d hyd_failures=%d placeholders=%d requests=%d restarts=%d live=%d end=%d\n"
             !injected
             (Msgvfs.hydrations fs)
             (Msgvfs.hydration_failures fs)
             (Msgvfs.placeholders_live fs)
             (Provider.requests server)
             (Supervisor.restarts sup) end_live (Fiber.now ()))
  in
  { pconfig;
    pmain;
    pfinish = (fun () -> finish ~hist ~tail ~viols ~injected ()) }

let run_projfs ~corrupt sch = run_prepared (prepare_projfs ~corrupt sch)

let prepare ?(corrupt = false) scenario sch =
  match scenario with
  | Disk -> prepare_disk ~corrupt sch
  | Kv -> prepare_kv ~corrupt sch
  | Kv_lease -> prepare_kv ~lease:true ~corrupt sch
  | Projfs -> prepare_projfs ~corrupt sch
  | Gray -> prepare_kv ~gray:true ~corrupt sch

let run_one ?(corrupt = false) scenario sch =
  match scenario with
  | Disk -> run_disk ~corrupt sch
  | Kv -> run_kv ~corrupt sch
  | Kv_lease -> run_kv ~lease:true ~corrupt sch
  | Projfs -> run_projfs ~corrupt sch
  | Gray -> run_kv ~gray:true ~corrupt sch

(* ------------------------------------------------------------------ *)
(* Schedule enumeration                                                *)

let rec init_in_order n f = if n = 0 then [] else f () :: init_in_order (n - 1) f

let gen scenario ~seed ~index =
  let rng = Rng.make ((seed * 1_000_003) + (index * 7919) + 11) in
  let sseed = seed + (31 * index) in
  let n = if index = 0 then 0 else 1 + Rng.int rng 3 in
  let fault () =
    match scenario with
    | Disk ->
      if Rng.bool rng then
        Schedule.Kill_point
          { point = "chaos.store";
            at = 30_000 + Rng.int rng 570_000;
            dur = 50_000 + Rng.int rng 150_000 }
      else
        Schedule.Disk_errors
          { at = 30_000 + Rng.int rng 470_000;
            dur = 80_000 + Rng.int rng 220_000;
            p = 0.2 +. (0.25 *. float_of_int (Rng.int rng 3)) }
    | Kv -> (
      match Rng.int rng 5 with
      | 0 ->
        Schedule.Kill_node { node = Rng.int rng 3; at = 1_050_000 + Rng.int rng 1_150_000 }
      | 1 ->
        Schedule.Frame_loss
          { at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 200_000 + Rng.int rng 600_000;
            p = 0.05 +. (0.1 *. float_of_int (Rng.int rng 4)) }
      | 2 ->
        Schedule.Frame_dup
          { at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 200_000 + Rng.int rng 600_000;
            p = 0.1 +. (0.15 *. float_of_int (Rng.int rng 3)) }
      | 3 ->
        Schedule.Frame_reorder
          { at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 200_000 + Rng.int rng 600_000;
            p = 0.1 +. (0.15 *. float_of_int (Rng.int rng 3)) }
      | _ ->
        Schedule.Frame_delay
          { at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 200_000 + Rng.int rng 600_000;
            p = 0.1 +. (0.1 *. float_of_int (Rng.int rng 3));
            cycles = 20_000 + Rng.int rng 60_000 })
    | Kv_lease -> (
      (* the faults a lease could turn into a stale read: leader
         kills carry double weight, and the fabric windows are the
         partition-ish ones (loss and delay isolate a leader that
         still thinks it holds a lease; dup/reorder don't) *)
      match Rng.int rng 4 with
      | 0 | 1 ->
        Schedule.Kill_node
          { node = Rng.int rng 3; at = 1_050_000 + Rng.int rng 1_150_000 }
      | 2 ->
        Schedule.Frame_loss
          { at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 200_000 + Rng.int rng 600_000;
            p = 0.05 +. (0.1 *. float_of_int (Rng.int rng 4)) }
      | _ ->
        Schedule.Frame_delay
          { at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 200_000 + Rng.int rng 600_000;
            p = 0.1 +. (0.1 *. float_of_int (Rng.int rng 3));
            cycles = 20_000 + Rng.int rng 60_000 })
    | Gray -> (
      (* the gray palette is per-link and asymmetric: a direction of
         one node's traffic crawls (delay cycles several times the
         client RPC timeout — alive for heartbeats, dead for callers)
         or silently vanishes, while every other link stays healthy.
         Link-delay windows carry double weight: slow-but-alive is the
         headline failure.  Node addresses 0..2 are the cluster nodes
         (attach order). *)
      let src = Rng.int rng 3 in
      let dst = (src + 1 + Rng.int rng 2) mod 3 in
      match Rng.int rng 4 with
      | 0 | 1 ->
        Schedule.Link_delay
          { src;
            dst;
            at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 300_000 + Rng.int rng 700_000;
            p = 0.5 +. (0.15 *. float_of_int (Rng.int rng 3));
            cycles = 150_000 + Rng.int rng 250_000 }
      | 2 ->
        Schedule.Partition
          { src;
            dst;
            at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 300_000 + Rng.int rng 500_000 }
      | _ ->
        (* one symmetric ingredient keeps elections in the mix: the
           slow node can also lose whole-fabric frames *)
        Schedule.Frame_loss
          { at = 1_050_000 + Rng.int rng 1_000_000;
            dur = 200_000 + Rng.int rng 400_000;
            p = 0.05 +. (0.1 *. float_of_int (Rng.int rng 3)) })
    | Projfs -> (
      (* provider kills carry double weight: mid-hydration death is
         the scenario's headline fault *)
      match Rng.int rng 4 with
      | 0 | 1 ->
        Schedule.Kill_provider
          { at = 250_000 + Rng.int rng 950_000;
            dur = 100_000 + Rng.int rng 200_000 }
      | 2 ->
        Schedule.Frame_loss
          { at = 250_000 + Rng.int rng 800_000;
            dur = 150_000 + Rng.int rng 350_000;
            p = 0.1 +. (0.15 *. float_of_int (Rng.int rng 3)) }
      | _ ->
        Schedule.Frame_delay
          { at = 250_000 + Rng.int rng 800_000;
            dur = 150_000 + Rng.int rng 350_000;
            p = 0.1 +. (0.1 *. float_of_int (Rng.int rng 3));
            cycles = 20_000 + Rng.int rng 60_000 })
  in
  { Schedule.seed = sseed; faults = init_in_order n fault }

(* ------------------------------------------------------------------ *)
(* Shrinking and campaigns                                             *)

let shrink ?(corrupt = false) scenario sch =
  let violating s = (run_one ~corrupt scenario s).violations <> [] in
  if not (violating sch) then sch
  else
    let rec go s =
      match List.find_opt violating (Schedule.subschedules s) with
      | Some s' -> go s'
      | None -> s
    in
    go sch

type violation = {
  vscenario : scenario;
  schedule : Schedule.t;
  minimal : Schedule.t;
  first : string;
  replay_identical : bool;
}

type report = {
  runs : int;
  total_ops : int;
  faults_injected : int;
  kinds : (string * int) list;
  violations : violation list;
  campaign_digest : string;
}

(* Campaigns shard across domains: schedules are generated host-side
   (cheap, deterministic), each worker runs whole explorations — run,
   replay-verify, shrink — for the task indices it claims, and the
   merge walks the results in task order.  Task order is exactly the
   order of the old sequential loops (disk, kv, projfs, lease), so
   every aggregate — counts, kind histogram, violation list,
   campaign digest — is byte-identical at any [domains]. *)
let campaign ?(disk_runs = 24) ?(kv_runs = 8) ?(projfs_runs = 0)
    ?(lease_runs = 0) ?(gray_runs = 0) ?(domains = 1) ~seed () =
  let tasks =
    Array.of_list
      (List.concat
         [ List.init disk_runs (fun i -> (Disk, i));
           List.init kv_runs (fun i -> (Kv, i));
           List.init projfs_runs (fun i -> (Projfs, i));
           List.init lease_runs (fun i -> (Kv_lease, i));
           List.init gray_runs (fun i -> (Gray, i)) ])
  in
  let explore ti =
    let scenario, index = tasks.(ti) in
    let sch = gen scenario ~seed ~index in
    let o = run_one scenario sch in
    let viol =
      if o.violations = [] then None
      else begin
        (* a violation must replay from its schedule alone, and its
           shrunk form must still violate — otherwise the "reproducer"
           is worthless and we say so *)
        let o2 = run_one scenario sch in
        let minimal = shrink scenario sch in
        let om = run_one scenario minimal in
        Some
          { vscenario = scenario;
            schedule = sch;
            minimal;
            first = List.hd o.violations;
            replay_identical =
              String.equal o.digest o2.digest && om.violations <> [] }
      end
    in
    (sch, o, viol)
  in
  let results =
    Chorus_par.Pool.run ~domains ~tasks:(Array.length tasks) explore
  in
  let kinds : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k))
  in
  let injected = ref 0
  and total_ops = ref 0
  and digests = Buffer.create 256 in
  List.iter
    (fun (sch, o, _) ->
      List.iter (fun f -> bump (Schedule.kind f)) sch.Schedule.faults;
      injected := !injected + o.injected;
      total_ops := !total_ops + o.ops;
      Buffer.add_string digests o.digest)
    results;
  { runs = Array.length tasks;
    total_ops = !total_ops;
    faults_injected = !injected;
    kinds =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []);
    violations = List.filter_map (fun (_, _, v) -> v) results;
    campaign_digest = Digest.to_hex (Digest.string (Buffer.contents digests)) }

type selftest_result = {
  caught : bool;
  minimal_faults : int;
  st_replay_identical : bool;
}

let selftest ~seed =
  (* index 2 always carries at least one fault: shrinking must strip
     it, because the planted corruption violates on its own *)
  let sch = gen Disk ~seed ~index:2 in
  let o = run_one ~corrupt:true Disk sch in
  let minimal = shrink ~corrupt:true Disk sch in
  let o1 = run_one ~corrupt:true Disk minimal in
  let o2 = run_one ~corrupt:true Disk minimal in
  { caught =
      List.exists
        (fun v ->
          String.length v >= 15 && String.sub v 0 15 = "linearizability")
        o.violations;
    minimal_faults = Schedule.nfaults minimal;
    st_replay_identical =
      String.equal o1.digest o2.digest
      && o1.violations = o2.violations
      && o1.violations <> [] }
