type 'a t = {
  mutable snapshot : 'a;
  mutable version : int;
  mutable reads : int;
  mutable publishes : int;
}

let make v = { snapshot = v; version = 1; reads = 0; publishes = 0 }

let read t =
  t.reads <- t.reads + 1;
  t.snapshot

let peek t = t.snapshot

let publish t v =
  t.snapshot <- v;
  t.version <- t.version + 1;
  t.publishes <- t.publishes + 1

let update t f = publish t (f t.snapshot)

let version t = t.version

let reads t = t.reads

let publishes t = t.publishes
