(** RCU-style published-snapshot cell (read-copy-update, the perfbook
    playbook scaled down to the simulator's cooperative world).

    Readers take the currently published immutable snapshot with one
    pointer load — no lock, no retry loop, no charge to virtual time —
    and keep using it for as long as they like; a snapshot, once
    published, is never mutated.  Writers build a complete replacement
    value off to the side and {!publish} it with a single pointer
    store.  Readers that loaded the old snapshot finish against it
    (that is the grace period: in a cooperative scheduler a reader's
    critical section is just the code between two yields, so the old
    value dies when the last holder drops it — the GC is the
    [synchronize_rcu]).

    The cell counts reads and publishes so hot paths can prove they
    went through the published snapshot rather than a lock. *)

type 'a t

val make : 'a -> 'a t
(** [make v] publishes [v] as the initial snapshot (version 1). *)

val read : 'a t -> 'a
(** The read-side primitive: returns the current snapshot and counts
    the access.  Never blocks, never charges cycles. *)

val peek : 'a t -> 'a
(** Like {!read} but without touching the read counter — for
    introspection thunks that must not perturb the stats they report. *)

val publish : 'a t -> 'a -> unit
(** Atomically (w.r.t. the cooperative scheduler: no yield inside)
    replace the published snapshot and bump the version. *)

val update : 'a t -> ('a -> 'a) -> unit
(** [update t f] publishes [f (current snapshot)].  The classic
    read-copy-update step: [f] must build a fresh value, not mutate
    the old one. *)

val version : 'a t -> int
(** Monotone publish count + 1; two reads seeing the same version saw
    the same snapshot. *)

val reads : 'a t -> int

val publishes : 'a t -> int
