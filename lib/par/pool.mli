(** A fixed domain pool for sharding independent deterministic runs —
    chaos schedules, experiment sweeps, bench sections — across OCaml 5
    domains.

    Each task is a pure function of its index (seeded simulations are:
    every Chorus run carries its own engine, RNG and {!Chorus.Ctx}, so
    runs on different domains share nothing).  Workers claim indices
    from an atomic counter; results land in task-index order, so the
    merged list is byte-identical no matter how many domains ran or how
    the host interleaved them.  Only wall-clock time varies with
    [domains]. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — what [--domains 0] means. *)

exception Task_failed of int * exn
(** [Task_failed (i, e)]: task [i] raised [e].  The first failure (in
    claim order) wins; remaining workers stop claiming and the pool
    re-raises after every domain has joined.  The inline [domains = 1]
    path wraps failures the same way, so the contract is uniform. *)

val run : ?domains:int -> tasks:int -> (int -> 'a) -> 'a list
(** [run ~domains ~tasks f] evaluates [f 0 .. f (tasks-1)] on
    [domains] cores (the caller participates; [domains - 1] domains
    are spawned, never more than [tasks - 1]) and returns the results
    in task order.  [domains = 1] (the default) is a plain inline loop
    with no spawn at all.  Every worker — spawned or caller — runs
    with a fresh ambient {!Chorus.Ctx}, so ambient installs made by
    the caller (metrics, trace factories) do not leak into shards.
    Raises [Invalid_argument] if [domains < 1]. *)

val map : ?domains:int -> 'a list -> ('a -> 'b) -> 'b list
(** [map ~domains items f] = [run] over the items of a list. *)
