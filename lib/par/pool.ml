(* A fixed domain pool for sharding independent deterministic runs
   (chaos schedules, experiment sweeps, bench sections) across OCaml 5
   domains.

   Work distribution is a single atomic next-index counter: workers
   claim task indices in whatever order the host schedules them, but
   every result lands in a results array at its task index, so the
   merged output is always in task order — byte-identical aggregates
   regardless of how many domains ran or how the host interleaved
   them.  Determinism is the caller's contract (each task must be a
   pure function of its index, e.g. a seeded simulation); the pool's
   contract is order-preserving merge and all-or-first-error
   completion.

   The calling domain participates as a worker (bracketed with a clean
   ambient Ctx so it observes the same empty ambient state as the
   spawned domains), so [domains = n] uses exactly [n] cores and
   [domains = 1] degenerates to a plain inline loop with no spawn at
   all. *)

let recommended () = Domain.recommended_domain_count ()

exception Task_failed of int * exn

let run (type a) ?(domains = 1) ~tasks (f : int -> a) : a list =
  if domains < 1 then invalid_arg "Pool.run: domains must be >= 1";
  if tasks < 0 then invalid_arg "Pool.run: negative task count";
  if tasks = 0 then []
  else if domains = 1 then
    (* same failure contract as the parallel path: callers always see
       Task_failed with the failing index, never the bare exception *)
    List.init tasks (fun i ->
        match f i with
        | v -> v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Printexc.raise_with_backtrace (Task_failed (i, e)) bt)
  else begin
    let results : a option array = Array.make tasks None in
    let next = Atomic.make 0 in
    (* first failure wins; remaining workers drain the counter and
       stop claiming once they see the flag *)
    let failed : (int * exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let worker () =
      let rec claim () =
        if Atomic.get failed = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < tasks then begin
            (match f i with
            | v -> results.(i) <- Some v
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore
                (Atomic.compare_and_set failed None (Some (i, e, bt))));
            claim ()
          end
        end
      in
      claim ()
    in
    let spawned =
      Array.init
        (min (domains - 1) (tasks - 1))
        (fun _ -> Domain.spawn (fun () -> Chorus.Ctx.with_clean_ambient worker))
    in
    Chorus.Ctx.with_clean_ambient worker;
    Array.iter Domain.join spawned;
    (match Atomic.get failed with
    | Some (i, e, bt) ->
      Printexc.raise_with_backtrace (Task_failed (i, e)) bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false)
         results)
  end

let map ?domains items f =
  let arr = Array.of_list items in
  run ?domains ~tasks:(Array.length arr) (fun i -> f arr.(i))
