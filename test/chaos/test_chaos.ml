(* Tests for the chaos engine: the Wing–Gong linearizability checker
   on hand-built histories (legal and illegal), schedule shrinking
   neighbourhoods, byte-identical replay of individual runs, a small
   all-green campaign, and the oracle selftest (a planted violation
   must be caught, shrunk to zero faults, and replayed). *)

module Lin = Chorus_chaos.Lin
module Schedule = Chorus_chaos.Schedule
module Chaos = Chorus_chaos.Chaos

(* ------------------------------------------------------------------ *)
(* Lin: per-key register checker                                       *)

let op ?value ?returned kind invoked =
  { Lin.proc = 0; kind; value; invoked; returned }

let wr v i r = { (op `Write i ~returned:r) with Lin.value = Some v }

let rd vo i r = { (op `Read i ~returned:r) with Lin.value = vo }

let check_ok what ops =
  match Lin.check ops with
  | `Ok -> ()
  | `Violation m -> Alcotest.failf "%s: unexpected violation: %s" what m

let check_viol what ops =
  match Lin.check ops with
  | `Ok -> Alcotest.failf "%s: expected a violation, got `Ok" what
  | `Violation _ -> ()

let test_lin_sequential () =
  check_ok "write then read"
    [ wr "a" 0 10; rd (Some "a") 20 30 ];
  check_ok "overwrite then read"
    [ wr "a" 0 10; wr "b" 20 30; rd (Some "b") 40 50 ];
  check_ok "initial miss" [ rd None 0 10; wr "a" 20 30 ]

let test_lin_concurrent () =
  (* reads overlapping a write may see either side of it *)
  check_ok "overlapping read sees new"
    [ wr "a" 0 10; wr "b" 20 100; rd (Some "b") 50 60 ];
  check_ok "overlapping read sees old"
    [ wr "a" 0 10; wr "b" 20 100; rd (Some "a") 50 60 ];
  (* two concurrent writes: order is free, later read pins it *)
  check_ok "concurrent writes, either wins"
    [ wr "a" 0 100; wr "b" 0 100; rd (Some "a") 200 210 ]

let test_lin_stale_read () =
  check_viol "stale read after overwrite"
    [ wr "a" 0 10; wr "b" 20 30; rd (Some "a") 40 50 ];
  check_viol "read of never-written value"
    [ wr "a" 0 10; rd (Some "ghost") 20 30 ];
  check_viol "miss after completed write"
    [ wr "a" 0 10; rd None 20 30 ]

let test_lin_lost_write () =
  (* a lost write may take effect any time after invocation... *)
  check_ok "lost write observed later"
    [ { (wr "a" 0 0) with Lin.returned = None }; rd (Some "a") 100 110 ];
  (* ...or never *)
  check_ok "lost write never applied"
    [ { (wr "a" 0 0) with Lin.returned = None }; rd None 100 110 ];
  (* but never before its invocation *)
  check_viol "lost write seen before invoked"
    [ rd (Some "a") 0 10; { (wr "a" 100 0) with Lin.returned = None } ]

let test_lin_lost_read () =
  (* a lost read constrains nothing, even an impossible-looking one *)
  check_ok "lost read dropped"
    [ wr "a" 0 10;
      { (rd (Some "ghost") 20 0) with Lin.returned = None };
      rd (Some "a") 40 50 ]

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)

let test_schedule_subschedules () =
  let s =
    { Schedule.seed = 9;
      faults =
        [ Schedule.Kill_point { point = "chaos.store"; at = 100; dur = 50 };
          Schedule.Disk_errors { at = 200; dur = 80; p = 0.3 };
          Schedule.Frame_loss { at = 10; dur = 20; p = 0.1 } ] }
  in
  let subs = Schedule.subschedules s in
  Alcotest.(check int) "one per fault" 3 (List.length subs);
  List.iter
    (fun sub ->
      Alcotest.(check int) "seed preserved" 9 sub.Schedule.seed;
      Alcotest.(check int) "one fault dropped" 2 (Schedule.nfaults sub))
    subs;
  Alcotest.(check (list string))
    "kind tags"
    [ "kill-point"; "disk"; "loss" ]
    (List.map Schedule.kind s.Schedule.faults);
  let str = Schedule.to_string s in
  Alcotest.(check bool) "to_string names seed" true
    (String.length str > 6 && String.sub str 0 6 = "seed=9")

let test_schedule_link_fault_round_trip () =
  (* the two gray fault kinds survive to_string/of_string exactly *)
  let s =
    { Schedule.seed = 7;
      faults =
        [ Schedule.Link_delay
            { src = 0; dst = 2; at = 1_100_000; dur = 400_000; p = 0.65;
              cycles = 200_000 };
          Schedule.Partition { src = 2; dst = 0; at = 1_300_000; dur = 250_000 } ] }
  in
  let str = Schedule.to_string s in
  Alcotest.(check string) "round trip is exact" str
    (Schedule.to_string (Schedule.of_string str));
  Alcotest.(check (list string))
    "kind tags" [ "link-delay"; "partition" ]
    (List.map Schedule.kind s.Schedule.faults)

let test_schedule_malformed_partition_rejected () =
  (* a partition spec without its (src>dst) link is meaningless *)
  List.iter
    (fun bad ->
      match Schedule.of_string ("seed=1 " ^ bad) with
      | (_ : Schedule.t) ->
        Alcotest.failf "malformed %S accepted" bad
      | exception Invalid_argument _ -> ())
    [ "partition@100+200";
      "partition()@100+200";
      "partition(3)@100+200";
      "link-delay(0>1)@100+200" ]

(* ------------------------------------------------------------------ *)
(* Chaos runs                                                          *)

let test_gen_deterministic () =
  let a = Chaos.gen Chaos.Disk ~seed:5 ~index:3 in
  let b = Chaos.gen Chaos.Disk ~seed:5 ~index:3 in
  Alcotest.(check string)
    "gen is a pure function of (seed, index)"
    (Schedule.to_string a) (Schedule.to_string b);
  let zero = Chaos.gen Chaos.Disk ~seed:5 ~index:0 in
  Alcotest.(check int) "index 0 is fault-free" 0 (Schedule.nfaults zero)

let test_run_replays () =
  let sch = Chaos.gen Chaos.Disk ~seed:5 ~index:2 in
  let a = Chaos.run_one Chaos.Disk sch in
  let b = Chaos.run_one Chaos.Disk sch in
  Alcotest.(check string) "same schedule, same digest" a.Chaos.digest
    b.Chaos.digest;
  Alcotest.(check (list string)) "no violations" [] a.Chaos.violations;
  Alcotest.(check bool) "history non-trivial" true (a.Chaos.ops >= 20)

let test_campaign_green () =
  let r = Chaos.campaign ~disk_runs:6 ~kv_runs:2 ~seed:42 () in
  Alcotest.(check int) "runs" 8 r.Chaos.runs;
  Alcotest.(check int) "all oracles green" 0 (List.length r.Chaos.violations);
  Alcotest.(check bool) "ops recorded" true (r.Chaos.total_ops > 100)

(* The lease-safety claim (DESIGN.md D13): kill each node in turn
   while the cluster runs the batched, leased hot path — one of the
   three is the leader, killed while holding a live lease — and the
   linearizability oracle must stay green (no deposed leader served a
   stale local read).  The runs must also have actually exercised the
   lease path, or the claim is vacuous, and must replay
   byte-identically. *)
let test_lease_kill_no_stale_reads () =
  let leased_total = ref 0 in
  for node = 0 to 2 do
    let sch =
      { Schedule.seed = 40 + node;
        faults = [ Schedule.Kill_node { node; at = 1_200_000 } ] }
    in
    let a = Chaos.run_one Chaos.Kv_lease sch in
    let b = Chaos.run_one Chaos.Kv_lease sch in
    Alcotest.(check (list string))
      (Printf.sprintf "kill node %d: no violations" node)
      [] a.Chaos.violations;
    Alcotest.(check string)
      (Printf.sprintf "kill node %d: replays" node)
      a.Chaos.digest b.Chaos.digest;
    leased_total := !leased_total + a.Chaos.leased_reads
  done;
  Alcotest.(check bool) "lease path exercised" true (!leased_total > 0)

let test_lease_campaign_green () =
  let r =
    Chaos.campaign ~disk_runs:0 ~kv_runs:0 ~lease_runs:6 ~seed:17 ()
  in
  Alcotest.(check int) "runs" 6 r.Chaos.runs;
  Alcotest.(check int) "all oracles green" 0 (List.length r.Chaos.violations)

(* The gray claim: per-link delay and asymmetric partition windows
   against clients running breakers and deadline budgets — the
   liveness oracle (every op returns within budget + slack) and
   linearizability must both stay green, and runs must replay
   byte-identically. *)
let test_gray_run_replays () =
  let sch = Chaos.gen Chaos.Gray ~seed:11 ~index:2 in
  let a = Chaos.run_one Chaos.Gray sch in
  let b = Chaos.run_one Chaos.Gray sch in
  Alcotest.(check string) "same schedule, same digest" a.Chaos.digest
    b.Chaos.digest;
  Alcotest.(check (list string)) "no violations" [] a.Chaos.violations;
  Alcotest.(check bool) "history non-trivial" true (a.Chaos.ops >= 10)

let test_gray_campaign_green () =
  let r =
    Chaos.campaign ~disk_runs:0 ~kv_runs:0 ~gray_runs:8 ~seed:17 ()
  in
  Alcotest.(check int) "runs" 8 r.Chaos.runs;
  Alcotest.(check int) "all oracles green" 0 (List.length r.Chaos.violations);
  Alcotest.(check bool) "gray fault kinds explored" true
    (List.exists
       (fun (k, n) -> (k = "link-delay" || k = "partition") && n > 0)
       r.Chaos.kinds)

let test_selftest () =
  let st = Chaos.selftest ~seed:11 in
  Alcotest.(check bool) "planted violation caught" true st.Chaos.caught;
  Alcotest.(check int) "shrinks to zero faults" 0 st.Chaos.minimal_faults;
  Alcotest.(check bool) "minimal schedule replays" true
    st.Chaos.st_replay_identical

let () =
  Alcotest.run "chaos"
    [ ( "lin",
        [ Alcotest.test_case "sequential" `Quick test_lin_sequential;
          Alcotest.test_case "concurrent" `Quick test_lin_concurrent;
          Alcotest.test_case "stale-read" `Quick test_lin_stale_read;
          Alcotest.test_case "lost-write" `Quick test_lin_lost_write;
          Alcotest.test_case "lost-read" `Quick test_lin_lost_read ] );
      ( "schedule",
        [ Alcotest.test_case "subschedules" `Quick test_schedule_subschedules;
          Alcotest.test_case "link-fault round trip" `Quick
            test_schedule_link_fault_round_trip;
          Alcotest.test_case "malformed specs rejected" `Quick
            test_schedule_malformed_partition_rejected ] );
      ( "engine",
        [ Alcotest.test_case "gen-deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "run-replays" `Quick test_run_replays;
          Alcotest.test_case "campaign-green" `Quick test_campaign_green;
          Alcotest.test_case "lease-kill" `Quick test_lease_kill_no_stale_reads;
          Alcotest.test_case "lease-campaign" `Quick test_lease_campaign_green;
          Alcotest.test_case "gray-replays" `Quick test_gray_run_replays;
          Alcotest.test_case "gray-campaign" `Quick test_gray_campaign_green;
          Alcotest.test_case "selftest" `Quick test_selftest ] ) ]
