(* Unit and property tests for the chorus runtime: fibers, channels,
   choice, lifecycle, determinism. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Mailbox = Chorus.Mailbox
module Rpc = Chorus.Rpc
module Engine = Chorus.Engine

let cfg ?policy ?(cores = 4) ?(seed = 42) () =
  Runtime.config ?policy ~seed (Machine.mesh ~cores)

let run ?policy ?cores ?seed main = Runtime.run (cfg ?policy ?cores ?seed ()) main

(* ------------------------------------------------------------------ *)

let test_empty_run () =
  let stats = run (fun () -> ()) in
  Alcotest.(check bool) "makespan positive" true (stats.Runstats.makespan > 0)

let test_work_charges () =
  let s1 = run (fun () -> Fiber.work 1_000) in
  let s2 = run (fun () -> Fiber.work 50_000) in
  Alcotest.(check bool) "longer work, longer makespan" true
    (s2.Runstats.makespan > s1.Runstats.makespan + 40_000)

let test_spawn_join () =
  let result = ref 0 in
  let (_ : Runstats.t) =
    run (fun () ->
        let f = Fiber.spawn (fun () -> result := 41) in
        (match Fiber.join f with
        | Fiber.Normal -> incr result
        | Fiber.Crashed _ | Fiber.Killed -> ());
        ())
  in
  Alcotest.(check int) "child ran then joined" 42 !result

let test_join_crashed () =
  let saw = ref "" in
  let (_ : Runstats.t) =
    run (fun () ->
        let f = Fiber.spawn (fun () -> failwith "boom") in
        match Fiber.join f with
        | Fiber.Crashed (Failure m) -> saw := m
        | _ -> saw := "wrong")
  in
  Alcotest.(check string) "crash visible to joiner" "boom" !saw

let test_main_crash_propagates () =
  Alcotest.check_raises "main crash re-raised" (Failure "mainboom")
    (fun () -> ignore (run (fun () -> failwith "mainboom")))

let test_rendezvous_order () =
  let got = ref [] in
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.rendezvous () in
        let producer =
          Fiber.spawn (fun () -> List.iter (Chan.send c) [ 1; 2; 3; 4; 5 ])
        in
        for _ = 1 to 5 do
          got := Chan.recv c :: !got
        done;
        ignore (Fiber.join producer))
  in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_rendezvous_blocks_sender () =
  (* sender must not proceed past a rendezvous send until recv happens *)
  let progress = ref [] in
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.rendezvous () in
        let s =
          Fiber.spawn (fun () ->
              progress := "before" :: !progress;
              Chan.send c ();
              progress := "after" :: !progress)
        in
        Fiber.sleep 10_000;
        progress := "pre-recv" :: !progress;
        Chan.recv c;
        ignore (Fiber.join s))
  in
  Alcotest.(check (list string))
    "send completed only after recv"
    [ "before"; "pre-recv"; "after" ]
    (List.rev !progress)

let test_buffered_capacity () =
  let sent = ref 0 in
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.buffered 3 in
        let s =
          Fiber.spawn (fun () ->
              for i = 1 to 10 do
                Chan.send c i;
                sent := i
              done)
        in
        Fiber.sleep 100_000;
        (* by now the producer must be stuck at capacity *)
        Alcotest.(check int) "producer filled the buffer then blocked" 3 !sent;
        for i = 1 to 10 do
          Alcotest.(check int) "value" i (Chan.recv c)
        done;
        ignore (Fiber.join s))
  in
  ()

let test_unbounded_never_blocks () =
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.unbounded () in
        for i = 1 to 1000 do
          Chan.send c i
        done;
        for i = 1 to 1000 do
          Alcotest.(check int) "drain order" i (Chan.recv c)
        done)
  in
  ()

let test_try_ops () =
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.buffered 1 in
        Alcotest.(check (option int)) "empty try_recv" None (Chan.try_recv c);
        Alcotest.(check bool) "try_send into room" true (Chan.try_send c 7);
        Alcotest.(check bool) "try_send full" false (Chan.try_send c 8);
        Alcotest.(check (option int)) "try_recv" (Some 7) (Chan.try_recv c);
        let r = Chan.rendezvous () in
        Alcotest.(check bool) "rendezvous try_send no receiver" false
          (Chan.try_send r 1))
  in
  ()

let test_close_semantics () =
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.buffered 4 in
        Chan.send c 1;
        Chan.send c 2;
        Chan.close c;
        Alcotest.(check int) "buffered survives close" 1 (Chan.recv c);
        Alcotest.(check int) "buffered survives close" 2 (Chan.recv c);
        Alcotest.check_raises "drained close raises" Chan.Closed (fun () ->
            ignore (Chan.recv c));
        Alcotest.check_raises "send after close raises" Chan.Closed (fun () ->
            Chan.send c 3))
  in
  ()

let test_close_wakes_blocked_receiver () =
  let aborted = ref false in
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.rendezvous () in
        let r =
          Fiber.spawn (fun () ->
              match Chan.recv c with
              | _ -> ()
              | exception Chan.Closed -> aborted := true)
        in
        Fiber.sleep 1_000;
        Chan.close c;
        ignore (Fiber.join r))
  in
  Alcotest.(check bool) "blocked receiver aborted" true !aborted

let test_channels_over_channels () =
  (* the paper's plumbing idiom: pass a data channel through a control
     channel, then talk directly *)
  let sum = ref 0 in
  let (_ : Runstats.t) =
    run (fun () ->
        let control = Chan.rendezvous () in
        let _server =
          Fiber.spawn ~daemon:true (fun () ->
              let data = Chan.recv control in
              for i = 1 to 10 do
                Chan.send data i
              done)
        in
        let data = Chan.buffered 4 in
        Chan.send control data;
        for _ = 1 to 10 do
          sum := !sum + Chan.recv data
        done)
  in
  Alcotest.(check int) "plumbed channel carried data" 55 !sum

let test_choice_picks_ready () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.buffered 1 and b = Chan.buffered 1 in
        Chan.send b 99;
        let got =
          Chan.choose
            [ Chan.recv_case a (fun v -> ("a", v));
              Chan.recv_case b (fun v -> ("b", v)) ]
        in
        Alcotest.(check (pair string int)) "ready case wins" ("b", 99) got)
  in
  ()

let test_choice_blocks_until_ready () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.rendezvous () and b = Chan.rendezvous () in
        let _sender =
          Fiber.spawn ~daemon:true (fun () ->
              Fiber.sleep 5_000;
              Chan.send a 7)
        in
        let got =
          Chan.choose
            [ Chan.recv_case a (fun v -> v); Chan.recv_case b (fun v -> v) ]
        in
        Alcotest.(check int) "blocked choice woken" 7 got)
  in
  ()

let test_choice_timeout () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.rendezvous () in
        let t0 = Fiber.now () in
        let got =
          Chan.choose
            [ Chan.recv_case a (fun _ -> "data"); Chan.after 10_000 (fun () -> "timeout") ]
        in
        Alcotest.(check string) "timeout fired" "timeout" got;
        Alcotest.(check bool) "waited about the timeout" true
          (Fiber.now () - t0 >= 10_000))
  in
  ()

let test_choice_default () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.rendezvous () in
        let got =
          Chan.choose
            [ Chan.recv_case a (fun _ -> "data");
              Chan.default (fun () -> "default") ]
        in
        Alcotest.(check string) "default taken when idle" "default" got)
  in
  ()

let test_choice_commit_once () =
  (* one choice over two channels; both eventually ready; exactly one
     consumed.  The other channel must still hold its value. *)
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.buffered 1 and b = Chan.buffered 1 in
        let _s =
          Fiber.spawn ~daemon:true (fun () ->
              Fiber.sleep 2_000;
              Chan.send a 1;
              Chan.send b 2)
        in
        let _got =
          Chan.choose
            [ Chan.recv_case a (fun v -> v); Chan.recv_case b (fun v -> v) ]
        in
        Fiber.sleep 50_000;
        let remaining = Chan.length a + Chan.length b in
        Alcotest.(check int) "exactly one value consumed" 1 remaining)
  in
  ()

let test_choice_send_case () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.rendezvous () in
        let got = ref 0 in
        let _r =
          Fiber.spawn ~daemon:true (fun () ->
              Fiber.sleep 3_000;
              got := Chan.recv a)
        in
        let tag =
          Chan.choose [ Chan.send_case a 42 (fun () -> "sent") ]
        in
        Fiber.sleep 50_000;
        Alcotest.(check string) "send case fired" "sent" tag;
        Alcotest.(check int) "value arrived" 42 !got)
  in
  ()

let test_choice_send_full_no_commit () =
  (* a send case on a full buffered channel is not ready: the choice
     must take the timeout arm and leave the channel untouched *)
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.buffered 1 in
        Chan.send c 1;
        let tag =
          Chan.choose
            [ Chan.send_case c 2 (fun () -> "sent");
              Chan.after 10_000 (fun () -> "timeout") ]
        in
        Alcotest.(check string) "timeout wins over full channel" "timeout"
          tag;
        Fiber.sleep 50_000;
        Alcotest.(check int) "nothing enqueued" 1 (Chan.length c);
        Alcotest.(check int) "original value intact" 1 (Chan.recv c))
  in
  ()

let test_choice_send_full_commits_after_drain () =
  (* the same send case commits exactly once when a receiver frees the
     slot, and never double-delivers *)
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.buffered 1 in
        Chan.send c 1;
        let first = ref 0 in
        let _consumer =
          Fiber.spawn ~daemon:true (fun () ->
              Fiber.sleep 5_000;
              first := Chan.recv c)
        in
        let tag =
          Chan.choose [ Chan.send_case c 2 (fun () -> "sent") ]
        in
        Fiber.sleep 50_000;
        Alcotest.(check string) "send committed once unblocked" "sent" tag;
        Alcotest.(check int) "consumer saw the original" 1 !first;
        Alcotest.(check int) "exactly one value enqueued" 1 (Chan.length c);
        Alcotest.(check int) "it is the chosen send's value" 2 (Chan.recv c))
  in
  ()

let test_choice_send_full_beats_late_timeout () =
  (* slot frees before the timeout arm fires: the send must win, and
     the timeout must not also have committed anything *)
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.buffered 1 in
        Chan.send c 1;
        let _consumer =
          Fiber.spawn ~daemon:true (fun () ->
              Fiber.sleep 5_000;
              ignore (Chan.recv c))
        in
        let tag =
          Chan.choose
            [ Chan.send_case c 2 (fun () -> "sent");
              Chan.after 200_000 (fun () -> "timeout") ]
        in
        Fiber.sleep 300_000;
        Alcotest.(check string) "send wins when freed in time" "sent" tag;
        Alcotest.(check int) "committed exactly once" 1 (Chan.length c))
  in
  ()

let test_choice_poll_strategy () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.rendezvous () in
        let _s =
          Fiber.spawn ~daemon:true (fun () ->
              Fiber.sleep 5_000;
              Chan.send a 5)
        in
        let got =
          Chan.choose ~strategy:(Chan.Poll 500)
            [ Chan.recv_case a (fun v -> v) ]
        in
        Alcotest.(check int) "poll choice eventually receives" 5 got)
  in
  ()

let test_choice_timeout_deadline_is_now () =
  (* the boundary tick: a timeout arm whose absolute deadline equals
     the instant the choice starts ([after 0]) fires exactly once,
     without waiting for a later tick *)
  let (_ : Runstats.t) =
    run (fun () ->
        let never : int Chan.t = Chan.rendezvous () in
        let fired = ref 0 in
        let t0 = Fiber.now () in
        Chan.choose
          [ Chan.recv_case never (fun _ -> ());
            Chan.after 0 (fun () -> incr fired) ];
        Alcotest.(check int) "fired exactly once" 1 !fired;
        Alcotest.(check bool)
          (Printf.sprintf "fired at its deadline tick (+%d)"
             (Fiber.now () - t0))
          true
          (Fiber.now () - t0 < 1_000))
  in
  ()

let test_choice_equal_deadlines_fire_once () =
  (* two timeout arms sharing one absolute deadline: the commit cell
     must let exactly one of them through *)
  let (_ : Runstats.t) =
    run (fun () ->
        let never : int Chan.t = Chan.rendezvous () in
        let fired = ref 0 in
        Chan.choose
          [ Chan.recv_case never (fun _ -> ());
            Chan.after 500 (fun () -> incr fired);
            Chan.after 500 (fun () -> incr fired) ];
        Fiber.sleep 5_000;
        Alcotest.(check int) "equal deadlines, one firing" 1 !fired)
  in
  ()

let test_choice_poll_timeout_boundary () =
  (* poll strategy rechecks [now - start >= n] every tick: the arm
     must fire on the first tick at-or-past the deadline, never
     before it, and only once even though later polls would also see
     the deadline as passed *)
  let (_ : Runstats.t) =
    run (fun () ->
        let never : int Chan.t = Chan.rendezvous () in
        let fired = ref 0 in
        let t0 = Fiber.now () in
        Chan.choose ~strategy:(Chan.Poll 100)
          [ Chan.recv_case never (fun _ -> ());
            Chan.after 1_000 (fun () -> incr fired) ];
        Alcotest.(check int) "fired exactly once" 1 !fired;
        Alcotest.(check bool) "not before the deadline" true
          (Fiber.now () - t0 >= 1_000))
  in
  ()

let test_deadlock_detected () =
  let raised = ref false in
  (try
     ignore
       (run (fun () ->
            let c = Chan.rendezvous () in
            ignore (Chan.recv c)))
   with Engine.Deadlock _ -> raised := true);
  Alcotest.(check bool) "deadlock raised" true !raised

let test_daemon_not_deadlock () =
  (* a daemon blocked forever must not fail the run *)
  let (_ : Runstats.t) =
    run (fun () ->
        let c : int Chan.t = Chan.rendezvous () in
        let _d = Fiber.spawn ~daemon:true (fun () -> ignore (Chan.recv c)) in
        Fiber.work 100)
  in
  ()

let test_kill_blocked () =
  let status = ref "" in
  let (_ : Runstats.t) =
    run (fun () ->
        let c : int Chan.t = Chan.rendezvous () in
        let f = Fiber.spawn (fun () -> ignore (Chan.recv c)) in
        Fiber.sleep 1_000;
        Fiber.kill f;
        (match Fiber.join f with
        | Fiber.Killed -> status := "killed"
        | Fiber.Normal -> status := "normal"
        | Fiber.Crashed _ -> status := "crashed"))
  in
  Alcotest.(check string) "blocked fiber killed" "killed" !status

let test_kill_runs_cleanup () =
  let cleaned = ref false in
  let (_ : Runstats.t) =
    run (fun () ->
        let c : int Chan.t = Chan.rendezvous () in
        let f =
          Fiber.spawn (fun () ->
              Fun.protect
                ~finally:(fun () -> cleaned := true)
                (fun () -> ignore (Chan.recv c)))
        in
        Fiber.sleep 1_000;
        Fiber.kill f;
        ignore (Fiber.join f))
  in
  Alcotest.(check bool) "finally ran on kill" true !cleaned

let test_monitor_immediate () =
  let count = ref 0 in
  let (_ : Runstats.t) =
    run (fun () ->
        let f = Fiber.spawn (fun () -> ()) in
        ignore (Fiber.join f);
        (* monitoring an already-dead fiber fires immediately *)
        Fiber.monitor f (fun ~time:_ _ -> incr count);
        Fiber.monitor f (fun ~time:_ _ -> incr count))
  in
  Alcotest.(check int) "both monitors fired" 2 !count

let test_sleep_advances_time () =
  let (_ : Runstats.t) =
    run (fun () ->
        let t0 = Fiber.now () in
        Fiber.sleep 123_456;
        Alcotest.(check bool) "time advanced" true
          (Fiber.now () >= t0 + 123_456))
  in
  ()

let test_mailbox_selective () =
  let (_ : Runstats.t) =
    run (fun () ->
        let mb = Mailbox.create () in
        Mailbox.send mb (`A 1);
        Mailbox.send mb (`B 2);
        Mailbox.send mb (`A 3);
        let b = Mailbox.receive mb (function `B x -> Some x | `A _ -> None) in
        Alcotest.(check int) "selective pulled B" 2 b;
        (match Mailbox.recv mb with
        | `A x -> Alcotest.(check int) "stash order kept" 1 x
        | `B _ -> Alcotest.fail "wrong order");
        match Mailbox.recv mb with
        | `A x -> Alcotest.(check int) "stash order kept" 3 x
        | `B _ -> Alcotest.fail "wrong order")
  in
  ()

let test_rpc_roundtrip () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Rpc.endpoint () in
        let _server =
          Fiber.spawn ~daemon:true (fun () -> Rpc.serve ep (fun x -> x * 2))
        in
        Alcotest.(check int) "rpc" 42 (Rpc.call ep 21);
        Alcotest.(check int) "rpc again" 10 (Rpc.call ep 5))
  in
  ()

let test_determinism () =
  let go () =
    run ~policy:(Policy.work_steal ()) ~seed:7 (fun () ->
        let c = Chan.buffered 8 in
        let fibers =
          List.init 16 (fun i ->
              Fiber.spawn (fun () ->
                  Fiber.work (100 * (i + 1));
                  Chan.send c i;
                  Fiber.yield ();
                  Fiber.work 50))
        in
        for _ = 1 to 16 do
          ignore (Chan.recv c)
        done;
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  let s1 = go () and s2 = go () in
  Alcotest.(check int) "same makespan" s1.Runstats.makespan s2.Runstats.makespan;
  Alcotest.(check int) "same events" s1.Runstats.events s2.Runstats.events;
  Alcotest.(check int) "same msgs" s1.Runstats.msgs s2.Runstats.msgs

let test_remote_costs_more () =
  (* same ping-pong, neighbours vs far corners of a mesh *)
  let pingpong c0 c1 =
    run ~cores:64 (fun () ->
        let req = Chan.rendezvous () and resp = Chan.rendezvous () in
        let _echo =
          Fiber.spawn ~on:c1 ~daemon:true (fun () ->
              let rec loop () =
                let v = Chan.recv req in
                Chan.send resp v;
                loop ()
              in
              loop ())
        in
        let f =
          Fiber.spawn ~on:c0 (fun () ->
              for i = 1 to 100 do
                Chan.send req i;
                ignore (Chan.recv resp)
              done)
        in
        ignore (Fiber.join f))
  in
  let near = pingpong 0 1 in
  let far = pingpong 0 63 in
  Alcotest.(check bool) "cross-chip ping-pong slower" true
    (far.Runstats.makespan > near.Runstats.makespan)

let test_spawn_placement_policies () =
  List.iter
    (fun policy ->
      let s =
        run ~policy ~cores:8 (fun () ->
            let fibers =
              List.init 32 (fun _ -> Fiber.spawn (fun () -> Fiber.work 1_000))
            in
            List.iter (fun f -> ignore (Fiber.join f)) fibers)
      in
      Alcotest.(check bool)
        (Policy.name policy ^ " completes")
        true
        (s.Runstats.makespan > 0))
    (Policy.all ())

let test_parallelism_speedup () =
  (* independent work should get faster with more cores under a
     spreading policy *)
  let go cores =
    run ~policy:(Policy.round_robin ()) ~cores (fun () ->
        let fibers =
          List.init 64 (fun _ -> Fiber.spawn (fun () -> Fiber.work 10_000))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  let s1 = go 1 and s16 = go 16 in
  let speedup =
    float_of_int s1.Runstats.makespan /. float_of_int s16.Runstats.makespan
  in
  Alcotest.(check bool)
    (Printf.sprintf "16 cores at least 4x faster (got %.1fx)" speedup)
    true (speedup > 4.0)

let test_trace_collects () =
  let sink, get = Chorus.Trace.collector () in
  let cfg =
    Runtime.config ~trace:sink (Machine.mesh ~cores:2)
  in
  let (_ : Runstats.t) =
    Runtime.run cfg (fun () ->
        let c = Chan.buffered 1 in
        let f = Fiber.spawn (fun () -> Chan.send c 1) in
        ignore (Chan.recv c);
        ignore (Fiber.join f))
  in
  let records = get () in
  let has p = List.exists p records in
  Alcotest.(check bool) "spawn traced" true
    (has (fun r -> match r.Chorus.Trace.event with
       | Chorus.Trace.Spawn _ -> true | _ -> false));
  Alcotest.(check bool) "send traced" true
    (has (fun r -> match r.Chorus.Trace.event with
       | Chorus.Trace.Send _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)

let prop_fifo_any_capacity =
  QCheck.Test.make ~name:"channel is FIFO at any capacity" ~count:50
    QCheck.(pair (int_range 1 64) (list_of_size Gen.(1 -- 50) small_nat))
    (fun (capacity, xs) ->
      let received = ref [] in
      let (_ : Runstats.t) =
        run (fun () ->
            let c = Chan.buffered capacity in
            let p = Fiber.spawn (fun () -> List.iter (Chan.send c) xs) in
            for _ = 1 to List.length xs do
              received := Chan.recv c :: !received
            done;
            ignore (Fiber.join p))
      in
      List.rev !received = xs)

let prop_rendezvous_conserves =
  QCheck.Test.make ~name:"n producers, 1 consumer: all values arrive"
    ~count:30
    QCheck.(int_range 1 8)
    (fun nprod ->
      let total = ref 0 in
      let per = 20 in
      let (_ : Runstats.t) =
        run ~policy:Policy.random (fun () ->
            let c = Chan.rendezvous () in
            let prods =
              List.init nprod (fun _ ->
                  Fiber.spawn (fun () ->
                      for _ = 1 to per do
                        Chan.send c 1
                      done))
            in
            for _ = 1 to nprod * per do
              total := !total + Chan.recv c
            done;
            List.iter (fun f -> ignore (Fiber.join f)) prods)
      in
      !total = nprod * per)

let prop_deterministic_seeded =
  QCheck.Test.make ~name:"identical seeds give identical runs" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let go () =
        run ~policy:(Policy.work_steal ()) ~seed (fun () ->
            let c = Chan.buffered 4 in
            let fs =
              List.init 8 (fun i ->
                  Fiber.spawn (fun () ->
                      Fiber.work (i * 37);
                      Chan.send c i))
            in
            for _ = 1 to 8 do
              ignore (Chan.recv c)
            done;
            List.iter (fun f -> ignore (Fiber.join f)) fs)
      in
      let a = go () and b = go () in
      a.Runstats.makespan = b.Runstats.makespan
      && a.Runstats.events = b.Runstats.events)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "chorus-core"
    [ ( "engine",
        [ Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "work charges cycles" `Quick test_work_charges;
          Alcotest.test_case "spawn and join" `Quick test_spawn_join;
          Alcotest.test_case "join crashed" `Quick test_join_crashed;
          Alcotest.test_case "main crash propagates" `Quick
            test_main_crash_propagates;
          Alcotest.test_case "sleep advances time" `Quick
            test_sleep_advances_time;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "daemons exempt from deadlock" `Quick
            test_daemon_not_deadlock;
          Alcotest.test_case "kill blocked fiber" `Quick test_kill_blocked;
          Alcotest.test_case "kill runs cleanup" `Quick test_kill_runs_cleanup;
          Alcotest.test_case "monitor after death" `Quick
            test_monitor_immediate;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "remote messages cost more" `Quick
            test_remote_costs_more;
          Alcotest.test_case "all policies complete" `Quick
            test_spawn_placement_policies;
          Alcotest.test_case "multicore speedup" `Quick
            test_parallelism_speedup;
          Alcotest.test_case "trace collects" `Quick test_trace_collects ] );
      ( "chan",
        [ Alcotest.test_case "rendezvous order" `Quick test_rendezvous_order;
          Alcotest.test_case "rendezvous blocks sender" `Quick
            test_rendezvous_blocks_sender;
          Alcotest.test_case "buffered capacity" `Quick test_buffered_capacity;
          Alcotest.test_case "unbounded" `Quick test_unbounded_never_blocks;
          Alcotest.test_case "try ops" `Quick test_try_ops;
          Alcotest.test_case "close semantics" `Quick test_close_semantics;
          Alcotest.test_case "close wakes blocked" `Quick
            test_close_wakes_blocked_receiver;
          Alcotest.test_case "channels over channels" `Quick
            test_channels_over_channels ] );
      ( "choice",
        [ Alcotest.test_case "picks ready" `Quick test_choice_picks_ready;
          Alcotest.test_case "blocks until ready" `Quick
            test_choice_blocks_until_ready;
          Alcotest.test_case "timeout" `Quick test_choice_timeout;
          Alcotest.test_case "default" `Quick test_choice_default;
          Alcotest.test_case "commits exactly once" `Quick
            test_choice_commit_once;
          Alcotest.test_case "send case" `Quick test_choice_send_case;
          Alcotest.test_case "send case on full channel stays pending"
            `Quick test_choice_send_full_no_commit;
          Alcotest.test_case "send case commits once after drain" `Quick
            test_choice_send_full_commits_after_drain;
          Alcotest.test_case "send case beats a later timeout" `Quick
            test_choice_send_full_beats_late_timeout;
          Alcotest.test_case "poll strategy" `Quick test_choice_poll_strategy;
          Alcotest.test_case "timeout deadline = now" `Quick
            test_choice_timeout_deadline_is_now;
          Alcotest.test_case "equal deadlines fire once" `Quick
            test_choice_equal_deadlines_fire_once;
          Alcotest.test_case "poll timeout boundary" `Quick
            test_choice_poll_timeout_boundary ] );
      ( "mailbox-rpc",
        [ Alcotest.test_case "selective receive" `Quick test_mailbox_selective;
          Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip ] );
      ( "properties",
        [ qt prop_fifo_any_capacity;
          qt prop_rendezvous_conserves;
          qt prop_deterministic_seeded ] ) ]
