(* Tests for the projected filesystem: name-cache LRU order and the
   cached/active/inactive/dying lifecycle, negative-entry invalidation
   on create/rename, provider catalog determinism and wire protocol,
   and the end-to-end mount — placeholder hydration over the net
   stack, warm opens through the cache, copy-up writes, prefetch,
   failure and recovery of the provider. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Fsspec = Chorus_fsspec.Fsspec
module Blockdev = Chorus_kernel.Blockdev
module Bcache = Chorus_kernel.Bcache
module Cgalloc = Chorus_kernel.Cgalloc
module Msgvfs = Chorus_kernel.Msgvfs
module Diskmodel = Chorus_machine.Diskmodel
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Svc = Chorus_svc.Svc
module Namecache = Chorus_projfs.Namecache
module Provider = Chorus_projfs.Provider
module Projfs = Chorus_projfs.Projfs

let run ?(cores = 8) ?(policy = Policy.round_robin ()) ?(seed = 42) main =
  Runtime.run (Runtime.config ~policy ~seed (Machine.mesh ~cores)) main

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" what (Fsspec.err_to_string e)

let check_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" what (Fsspec.err_to_string expected)
  | Error e ->
    Alcotest.(check string) what
      (Fsspec.err_to_string expected)
      (Fsspec.err_to_string e)

(* ------------------------------------------------------------------ *)
(* Name cache: LRU and lifecycle                                       *)

let test_nc_lru_eviction_order () =
  let c = Namecache.create ~cap:3 () in
  Namecache.insert c "a" 1;
  Namecache.insert c "b" 2;
  Namecache.insert c "c" 3;
  (* touch a so b is now the least recently used *)
  (match Namecache.find c "a" with
  | `Hit 1 -> ()
  | _ -> Alcotest.fail "expected hit on a");
  Namecache.insert c "d" 4;
  Alcotest.(check int) "capacity held" 3 (Namecache.length c);
  Alcotest.(check int) "one eviction" 1 (Namecache.evictions c);
  Alcotest.(check bool) "b evicted" true (Namecache.find c "b" = `Miss);
  Alcotest.(check bool) "a survived" true (Namecache.find c "a" = `Hit 1);
  (* now c is coldest (a and d touched since) *)
  Namecache.insert c "e" 5;
  Alcotest.(check bool) "c evicted next" true (Namecache.find c "c" = `Miss);
  Alcotest.(check bool) "d survived" true (Namecache.find c "d" = `Hit 4)

let test_nc_active_entries_never_evict () =
  let c = Namecache.create ~cap:2 () in
  Namecache.insert c "a" 1;
  Namecache.acquire c "a";
  Namecache.insert c "b" 2;
  Namecache.insert c "c" 3;
  Namecache.insert c "d" 4;
  (* active a is immune; only the evictable pool rotates *)
  Alcotest.(check bool) "a still present" true (Namecache.find c "a" = `Hit 1);
  Alcotest.(check (option string))
    "a active"
    (Some "active")
    (Option.map Namecache.state_name (Namecache.state_of c "a"))

let test_nc_lifecycle () =
  let c = Namecache.create ~cap:8 () in
  let state name =
    Option.map Namecache.state_name (Namecache.state_of c name)
  in
  Namecache.insert c "x" 10;
  Alcotest.(check (option string)) "cached on insert" (Some "cached")
    (state "x");
  Namecache.acquire c "x";
  Alcotest.(check (option string)) "active on acquire" (Some "active")
    (state "x");
  Namecache.acquire c "x";
  Namecache.release c "x";
  Alcotest.(check (option string)) "still active (refs=1)" (Some "active")
    (state "x");
  Namecache.release c "x";
  Alcotest.(check (option string)) "inactive on last release"
    (Some "inactive") (state "x");
  Alcotest.(check bool) "inactive entries still hit" true
    (Namecache.find c "x" = `Hit 10);
  (* invalidate while referenced -> dying; reaped on release *)
  Namecache.acquire c "x";
  Namecache.invalidate c "x";
  Alcotest.(check (option string)) "dying while held" (Some "dying")
    (state "x");
  Alcotest.(check bool) "dying entries miss" true
    (Namecache.find c "x" = `Miss);
  Namecache.release c "x";
  Alcotest.(check (option string)) "reaped after release" None (state "x");
  (* invalidate with no refs drops immediately *)
  Namecache.insert c "y" 20;
  Namecache.invalidate c "y";
  Alcotest.(check (option string)) "dropped immediately" None (state "y");
  Alcotest.(check int) "invalidation count" 2 (Namecache.invalidations c)

let test_nc_negative_entries () =
  let c = Namecache.create ~cap:8 () in
  Namecache.insert_negative c "ghost";
  Alcotest.(check bool) "negative hit" true (Namecache.find c "ghost" = `Negative);
  Alcotest.(check int) "negative counter" 1 (Namecache.negative_hits c);
  (* create over the name must kill the negative entry *)
  Namecache.invalidate c "ghost";
  Alcotest.(check bool) "miss after invalidate" true
    (Namecache.find c "ghost" = `Miss)

let test_nc_state_counts () =
  let c = Namecache.create ~cap:8 () in
  Namecache.insert c "a" 1;
  Namecache.insert c "b" 2;
  Namecache.acquire c "b";
  Namecache.insert c "c" 3;
  Namecache.acquire c "c";
  Namecache.release c "c";
  Namecache.insert c "d" 4;
  Namecache.acquire c "d";
  Namecache.invalidate c "d";
  let counts =
    List.map
      (fun (st, n) -> (Namecache.state_name st, n))
      (Namecache.state_counts c)
  in
  Alcotest.(check (list (pair string int)))
    "one of each state"
    [ ("cached", 1); ("active", 1); ("inactive", 1); ("dying", 1) ]
    counts

(* ------------------------------------------------------------------ *)
(* Provider catalog                                                    *)

let test_provider_catalog () =
  let cat = Provider.catalog ~seed:5 ~nfiles:2500 ~dir_width:1000 () in
  Alcotest.(check int) "ndirs" 3 (Provider.ndirs cat);
  let rel = Provider.rel_path cat 1042 in
  Alcotest.(check string) "rel path shape" "d001/f001042" rel;
  (match Provider.content cat rel with
  | None -> Alcotest.fail "content of a real file"
  | Some body ->
    Alcotest.(check bool) "content embeds path" true
      (String.length body > String.length rel
      && String.sub body 0 (String.length rel) = rel);
    Alcotest.(check (option int))
      "size agrees" (Some (String.length body)) (Provider.size_of cat rel));
  Alcotest.(check (option string)) "no such file" None
    (Provider.content cat "d001/f000042");
  Alcotest.(check (option string)) "non-canonical rejected" None
    (Provider.content cat "d1/f001042");
  (* determinism: two catalogs with the same coordinates agree *)
  let cat' = Provider.catalog ~seed:5 ~nfiles:2500 ~dir_width:1000 () in
  Alcotest.(check (option string)) "content deterministic"
    (Provider.content cat rel) (Provider.content cat' rel);
  (* different seed, different bytes *)
  let cat2 = Provider.catalog ~seed:6 ~nfiles:2500 ~dir_width:1000 () in
  Alcotest.(check bool) "seed changes contents" false
    (Provider.content cat rel = Provider.content cat2 rel)

let test_provider_protocol () =
  let cat = Provider.catalog ~seed:5 ~nfiles:64 ~dir_width:32 () in
  (* root listing *)
  (match Provider.handle cat "L" with
  | "N" -> Alcotest.fail "root list failed"
  | resp ->
    let entries =
      Provider.decode_entries (String.sub resp 1 (String.length resp - 1))
    in
    Alcotest.(check int) "two dirs" 2 (List.length entries));
  (* dir listing round-trips through the wire encoding *)
  (match Provider.handle cat "L d001" with
  | "N" -> Alcotest.fail "dir list failed"
  | resp ->
    let entries =
      Provider.decode_entries (String.sub resp 1 (String.length resp - 1))
    in
    Alcotest.(check int) "32 files" 32 (List.length entries);
    List.iter
      (fun (name, kind, size) ->
        Alcotest.(check bool) "file kind" true (kind = Fsspec.File);
        Alcotest.(check (option int))
          (Printf.sprintf "size of %s" name)
          (Some size)
          (Provider.size_of cat ("d001/" ^ name)))
      entries);
  Alcotest.(check string) "bad dir" "N" (Provider.handle cat "L d009");
  Alcotest.(check string) "bad verb" "N" (Provider.handle cat "X d001");
  let rel = Provider.rel_path cat 40 in
  match (Provider.handle cat ("R " ^ rel), Provider.content cat rel) with
  | resp, Some body -> Alcotest.(check string) "read" ("D" ^ body) resp
  | _, None -> Alcotest.fail "content missing"

(* ------------------------------------------------------------------ *)
(* End-to-end mount                                                    *)

let boot ?hydration ?workers ?namecache ~cat () =
  let dev = Blockdev.start ~disk:Diskmodel.default () in
  let cache = Bcache.start ~shards:2 ~capacity:256 ~dev () in
  let alloc = Cgalloc.start ~nblocks:4096 () in
  let fs = Msgvfs.mount Msgvfs.default_config ~bcache:cache ~alloc in
  let net = Fabric.create ~latency:2_000 ~seed:7 () in
  let pstack = Stack.create net (Fabric.attach net ~label:"provider" ()) in
  let mstack = Stack.create net (Fabric.attach net ~label:"mount" ()) in
  let server = Provider.serve cat pstack in
  let pf =
    check_ok "mount"
      (Projfs.mount ?hydration ?workers ?namecache ~fs ~at:"/proj"
         ~stack:mstack ~provider:(Stack.addr pstack) ())
  in
  (fs, pf, server, net)

let test_e2e_cold_read_correct () =
  let cat = Provider.catalog ~seed:3 ~nfiles:96 ~dir_width:32 () in
  let (_ : Runstats.t) =
    run ~cores:8 (fun () ->
        let _fs, pf, server, _net = boot ~cat () in
        let c = Projfs.client pf in
        (* the projected tree is visible *)
        let dirs = check_ok "readdir root" (Projfs.readdir c "/proj") in
        Alcotest.(check (list string)) "projected dirs"
          [ "d000"; "d001"; "d002" ] dirs;
        let rel = Provider.rel_path cat 33 in
        let path = "/proj/" ^ rel in
        let expected = Option.get (Provider.content cat rel) in
        (* stat before hydration: declared size, no blocks *)
        let st = check_ok "stat cold" (Projfs.stat c path) in
        Alcotest.(check int) "declared size" (String.length expected) st.Fsspec.size;
        Alcotest.(check int) "no blocks yet" 0 st.Fsspec.blocks;
        Alcotest.(check int) "nothing hydrated" 0
          (Msgvfs.hydrations (Projfs.fs_sys pf));
        (* first read hydrates over the wire *)
        let fd = check_ok "open" (Projfs.open_ c path) in
        let data =
          check_ok "read" (Projfs.read c fd ~off:0 ~len:(String.length expected))
        in
        Alcotest.(check string) "hydrated bytes match the catalog" expected data;
        Alcotest.(check int) "one hydration" 1
          (Msgvfs.hydrations (Projfs.fs_sys pf));
        (* second read comes from cache blocks: no new provider traffic *)
        let reqs = Provider.requests server in
        let again =
          check_ok "reread" (Projfs.read c fd ~off:0 ~len:(String.length expected))
        in
        Alcotest.(check string) "stable" expected again;
        Alcotest.(check int) "no extra provider requests" reqs
          (Provider.requests server);
        check_ok "close" (Projfs.close c fd))
  in
  ()

let test_e2e_warm_open_skips_walk () =
  let cat = Provider.catalog ~seed:3 ~nfiles:96 ~dir_width:32 () in
  let (_ : Runstats.t) =
    run ~cores:8 (fun () ->
        let _fs, pf, _server, _net = boot ~cat () in
        let c = Projfs.client pf in
        let path = "/proj/" ^ Provider.rel_path cat 10 in
        let fd1 = check_ok "cold open" (Projfs.open_ c path) in
        check_ok "close1" (Projfs.close c fd1);
        let fd2 = check_ok "warm open" (Projfs.open_ c path) in
        check_ok "close2" (Projfs.close c fd2);
        let cold, warm = Projfs.open_stats c in
        Alcotest.(check (pair int int)) "one cold, one warm" (1, 1)
          (cold, warm);
        let nc = Projfs.cache pf in
        Alcotest.(check int) "cache hit recorded" 1 (Namecache.hits nc);
        (* the entry is inactive after the last close *)
        Alcotest.(check (option string))
          "inactive after close"
          (Some "inactive")
          (Option.map Namecache.state_name (Namecache.state_of nc path)))
  in
  ()

let test_e2e_negative_and_create_invalidation () =
  let cat = Provider.catalog ~seed:3 ~nfiles:96 ~dir_width:32 () in
  let (_ : Runstats.t) =
    run ~cores:8 (fun () ->
        let _fs, pf, _server, _net = boot ~cat () in
        let c = Projfs.client pf in
        let path = "/proj/d000/notyet" in
        check_err "missing" Fsspec.Enoent (Projfs.open_ c path);
        (* second miss is served by the negative entry *)
        check_err "still missing" Fsspec.Enoent (Projfs.open_ c path);
        let nc = Projfs.cache pf in
        Alcotest.(check int) "negative hit" 1 (Namecache.negative_hits nc);
        (* creating the file shoots the negative entry down *)
        check_ok "create" (Projfs.create c path);
        let fd = check_ok "open after create" (Projfs.open_ c path) in
        ignore (check_ok "write" (Projfs.write c fd ~off:0 "local"));
        let got = check_ok "read back" (Projfs.read c fd ~off:0 ~len:5) in
        Alcotest.(check string) "local file readable" "local" got;
        check_ok "close" (Projfs.close c fd);
        (* rename invalidates both names *)
        let dst = "/proj/d000/renamed" in
        check_ok "rename" (Projfs.rename c path dst);
        check_err "old name gone" Fsspec.Enoent (Projfs.open_ c path);
        let fd2 = check_ok "open new name" (Projfs.open_ c dst) in
        check_ok "close2" (Projfs.close c fd2);
        (* projected names refuse unlink/rename-over *)
        let proj_name = "/proj/d000/" ^ "f000000" in
        check_err "projected unlink refused" Fsspec.Einval
          (Projfs.unlink c proj_name);
        check_ok "local unlink ok" (Projfs.unlink c dst))
  in
  ()

let test_e2e_copy_up_write () =
  let cat = Provider.catalog ~seed:3 ~nfiles:96 ~dir_width:32 () in
  let (_ : Runstats.t) =
    run ~cores:8 (fun () ->
        let _fs, pf, _server, _net = boot ~cat () in
        let c = Projfs.client pf in
        let rel = Provider.rel_path cat 5 in
        let path = "/proj/" ^ rel in
        let base = Option.get (Provider.content cat rel) in
        let fd = check_ok "open" (Projfs.open_ c path) in
        (* writing a cold placeholder hydrates first (copy-up), then
           overlays *)
        ignore (check_ok "write" (Projfs.write c fd ~off:3 "XYZ"));
        let got =
          check_ok "read" (Projfs.read c fd ~off:0 ~len:(String.length base))
        in
        let expected =
          String.sub base 0 3 ^ "XYZ"
          ^ String.sub base 6 (String.length base - 6)
        in
        Alcotest.(check string) "projected base under local overlay" expected
          got;
        Alcotest.(check int) "hydrated exactly once" 1
          (Msgvfs.hydrations (Projfs.fs_sys pf));
        check_ok "close" (Projfs.close c fd))
  in
  ()

let test_e2e_prefetch () =
  let cat = Provider.catalog ~seed:3 ~nfiles:96 ~dir_width:32 () in
  let (_ : Runstats.t) =
    run ~cores:8 (fun () ->
        let _fs, pf, _server, _net = boot ~cat () in
        let paths =
          List.map (fun i -> "/proj/" ^ Provider.rel_path cat i) [ 1; 2; 3 ]
        in
        List.iter (Projfs.prefetch pf) paths;
        (* wait for the background warms to land *)
        let rec settle tries =
          let _, done_, dropped = Projfs.prefetch_stats pf in
          if done_ + dropped >= 3 || tries = 0 then ()
          else begin
            Fiber.sleep 200_000;
            settle (tries - 1)
          end
        in
        settle 50;
        let _, done_, dropped = Projfs.prefetch_stats pf in
        Alcotest.(check int) "all prefetches landed" 3 done_;
        Alcotest.(check int) "none dropped" 0 dropped;
        Alcotest.(check int) "three hydrations" 3
          (Msgvfs.hydrations (Projfs.fs_sys pf));
        (* a subsequent open is warm: the prefetch worker populated the
           name cache *)
        let c = Projfs.client pf in
        let fd = check_ok "open" (Projfs.open_ c (List.hd paths)) in
        check_ok "close" (Projfs.close c fd);
        let cold, warm = Projfs.open_stats c in
        Alcotest.(check (pair int int)) "warm open after prefetch" (0, 1)
          (cold, warm))
  in
  ()

let test_e2e_hydration_failure_is_clean_and_retryable () =
  let cat = Provider.catalog ~seed:3 ~nfiles:96 ~dir_width:32 () in
  let (_ : Runstats.t) =
    run ~cores:8 (fun () ->
        let _fs, pf, _server, net = boot ~cat () in
        let c = Projfs.client pf in
        let rel = Provider.rel_path cat 50 in
        let path = "/proj/" ^ rel in
        let expected = Option.get (Provider.content cat rel) in
        let fd = check_ok "open" (Projfs.open_ c path) in
        (* cut the wire: hydration must fail Eio, not hang or tear *)
        Fabric.set_faults net ~loss:0.999 ();
        check_err "clean failure" Fsspec.Eio
          (Projfs.read c fd ~off:0 ~len:8);
        Alcotest.(check int) "failure counted" 1
          (Msgvfs.hydration_failures (Projfs.fs_sys pf));
        Alcotest.(check int) "placeholder still cold" 0
          (Msgvfs.hydrations (Projfs.fs_sys pf));
        (* heal the wire: the same fd hydrates on retry *)
        Fabric.set_faults net ~loss:0.0 ();
        let got =
          check_ok "retry read"
            (Projfs.read c fd ~off:0 ~len:(String.length expected))
        in
        Alcotest.(check string) "retried hydration intact" expected got;
        check_ok "close" (Projfs.close c fd))
  in
  ()

let test_e2e_hydration_storm_reject_policy () =
  let cat = Provider.catalog ~seed:3 ~nfiles:96 ~dir_width:32 () in
  let (_ : Runstats.t) =
    run ~cores:16 (fun () ->
        let _fs, pf, _server, _net =
          boot
            ~hydration:(Svc.config ~capacity:2 ~policy:`Reject ())
            ~workers:1 ~cat ()
        in
        (* 12 concurrent cold readers against a capacity-2, one-worker
           hydration endpoint: some fills must be rejected, every
           rejection must surface as Eio, and nothing may tear *)
        let results = Array.make 12 (Error Fsspec.Einval) in
        let fibers =
          List.init 12 (fun i ->
              Fiber.spawn (fun () ->
                  let c = Projfs.client pf in
                  let rel = Provider.rel_path cat i in
                  match Projfs.open_ c ("/proj/" ^ rel) with
                  | Error e -> results.(i) <- Error e
                  | Ok fd ->
                    results.(i) <- Projfs.read c fd ~off:0 ~len:256;
                    ignore (Projfs.close c fd)))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers;
        let ok = ref 0 and eio = ref 0 in
        Array.iteri
          (fun i r ->
            match r with
            | Ok data ->
              incr ok;
              let rel = Provider.rel_path cat i in
              Alcotest.(check string)
                (Printf.sprintf "no torn read for %s" rel)
                (Option.get (Provider.content cat rel))
                data
            | Error Fsspec.Eio -> incr eio
            | Error e ->
              Alcotest.failf "unexpected %s" (Fsspec.err_to_string e))
          results;
        Alcotest.(check int) "every reader resolved" 12 (!ok + !eio);
        Alcotest.(check bool) "storm actually overloaded" true (!eio > 0);
        Alcotest.(check bool) "some fills completed" true (!ok > 0);
        let ep = Projfs.hydrate_ep pf in
        Alcotest.(check bool) "endpoint counted rejections" true
          (Svc.rejected ep > 0))
  in
  ()

let test_e2e_determinism () =
  let cat = Provider.catalog ~seed:3 ~nfiles:96 ~dir_width:32 () in
  let once () =
    let stats =
      run ~cores:8 (fun () ->
          let _fs, pf, _server, _net = boot ~cat () in
          let c = Projfs.client pf in
          for i = 0 to 7 do
            let path = "/proj/" ^ Provider.rel_path cat (i * 11) in
            match Projfs.open_ c path with
            | Error _ -> ()
            | Ok fd ->
              ignore (Projfs.read c fd ~off:0 ~len:64);
              ignore (Projfs.close c fd)
          done)
    in
    stats.Runstats.makespan
  in
  Alcotest.(check int) "same seed, same makespan" (once ()) (once ())

let () =
  Alcotest.run "vfs"
    [ ( "namecache",
        [ Alcotest.test_case "lru-eviction-order" `Quick
            test_nc_lru_eviction_order;
          Alcotest.test_case "active-never-evicts" `Quick
            test_nc_active_entries_never_evict;
          Alcotest.test_case "lifecycle" `Quick test_nc_lifecycle;
          Alcotest.test_case "negative-entries" `Quick
            test_nc_negative_entries;
          Alcotest.test_case "state-counts" `Quick test_nc_state_counts ] );
      ( "provider",
        [ Alcotest.test_case "catalog" `Quick test_provider_catalog;
          Alcotest.test_case "protocol" `Quick test_provider_protocol ] );
      ( "projfs",
        [ Alcotest.test_case "cold-read-correct" `Quick
            test_e2e_cold_read_correct;
          Alcotest.test_case "warm-open" `Quick test_e2e_warm_open_skips_walk;
          Alcotest.test_case "negative-and-invalidation" `Quick
            test_e2e_negative_and_create_invalidation;
          Alcotest.test_case "copy-up-write" `Quick test_e2e_copy_up_write;
          Alcotest.test_case "prefetch" `Quick test_e2e_prefetch;
          Alcotest.test_case "hydration-failure-clean" `Quick
            test_e2e_hydration_failure_is_clean_and_retryable;
          Alcotest.test_case "hydration-storm-reject" `Quick
            test_e2e_hydration_storm_reject_policy;
          Alcotest.test_case "determinism" `Quick test_e2e_determinism ] ) ]
