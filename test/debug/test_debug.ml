(* Tests for the time-travel replay debugger: snapshot determinism
   (same scenario, schedule and pause time => byte-identical dump,
   across both chaos scenarios), structural diffing, first-divergence
   detection on a failing/passing schedule pair, schedule parsing
   round-trips, engine stepping, and Inspect rendering invariants. *)

module Inspect = Chorus.Inspect
module Engine = Chorus.Engine
module Fiber = Chorus.Fiber
module Machine = Chorus_machine.Machine
module Chaos = Chorus_chaos.Chaos
module Schedule = Chorus_chaos.Schedule
module Snapshot = Chorus_debug.Snapshot
module Replay = Chorus_debug.Replay

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Snapshot determinism                                                *)

let check_deterministic what scenario sch ~at =
  let a = Replay.run_to scenario sch ~at in
  let b = Replay.run_to scenario sch ~at in
  Alcotest.(check string)
    (what ^ ": byte-identical render")
    (Snapshot.render a.Replay.snapshot)
    (Snapshot.render b.Replay.snapshot);
  Alcotest.(check string)
    (what ^ ": byte-identical json")
    (Snapshot.to_json a.Replay.snapshot)
    (Snapshot.to_json b.Replay.snapshot);
  Alcotest.(check int)
    (what ^ ": same trace length")
    (List.length a.Replay.trace)
    (List.length b.Replay.trace);
  Alcotest.(check bool) (what ^ ": identical traces") true
    (a.Replay.trace = b.Replay.trace);
  a

let test_determinism_disk () =
  let sch = Chaos.gen Chaos.Disk ~seed:7 ~index:2 in
  let r = check_deterministic "disk" Chaos.Disk sch ~at:300_000 in
  let text = Snapshot.render r.Replay.snapshot in
  Alcotest.(check bool) "disk: engine state present" true
    (contains text "live_fibers:");
  Alcotest.(check bool) "disk: service inboxes present" true
    (contains text "svc/");
  Alcotest.(check bool) "disk: traced" true (r.Replay.trace <> [])

let test_determinism_kv () =
  let sch = Chaos.gen Chaos.Kv ~seed:7 ~index:1 in
  let r = check_deterministic "kv" Chaos.Kv sch ~at:1_500_000 in
  let text = Snapshot.render r.Replay.snapshot in
  Alcotest.(check bool) "kv: raft state present" true
    (contains text "cluster/node0:");
  Alcotest.(check bool) "kv: shard roles present" true
    (contains text "role: leader")

let test_determinism_projfs () =
  let sch = Chaos.gen Chaos.Projfs ~seed:7 ~index:2 in
  let r = check_deterministic "projfs" Chaos.Projfs sch ~at:400_000 in
  let text = Snapshot.render r.Replay.snapshot in
  Alcotest.(check bool) "projfs: name cache provider present" true
    (contains text "projfs/namecache");
  Alcotest.(check bool) "projfs: hydration provider present" true
    (contains text "projfs/hydration");
  Alcotest.(check bool) "projfs: hydration endpoint inbox present" true
    (contains text "svc/projfs.hydrate")

let test_snapshot_not_observer_effect () =
  (* capturing a snapshot mid-run must not change where the run goes:
     the trace up to T is identical whether we pause at T or run past
     it, so inspection is pure observation.  Covers the projfs Inspect
     providers too: registering and rendering the name cache and
     hydration views must not perturb the run *)
  List.iter
    (fun (scenario, early_at, late_at) ->
      let sch = Chaos.gen scenario ~seed:7 ~index:2 in
      let early = Replay.run_to scenario sch ~at:early_at in
      let late = Replay.run_to scenario sch ~at:late_at in
      let n = List.length early.Replay.trace in
      Alcotest.(check bool) "longer run has more records" true
        (List.length late.Replay.trace >= n);
      let prefix = List.filteri (fun i _ -> i < n) late.Replay.trace in
      Alcotest.(check bool) "earlier trace is a prefix of the later one" true
        (prefix = early.Replay.trace))
    [ (Chaos.Disk, 200_000, 300_000); (Chaos.Projfs, 250_000, 400_000) ]

(* ------------------------------------------------------------------ *)
(* Diffing and divergence                                              *)

let test_diff_empty_on_same () =
  let sch = Chaos.gen Chaos.Disk ~seed:7 ~index:2 in
  let c = Replay.compare_runs Chaos.Disk sch sch ~at:300_000 in
  Alcotest.(check bool) "no divergence" true (c.Replay.divergence = None);
  Alcotest.(check int) "empty state diff" 0 (List.length c.Replay.state_diff)

let test_diff_neighbour () =
  (* a two-fault disk schedule vs. itself minus the fault that fires
     first: past the fault time the executions must have diverged *)
  let sch = Chaos.gen Chaos.Disk ~seed:7 ~index:2 in
  Alcotest.(check bool) "schedule has faults" true (Schedule.nfaults sch > 0);
  let neighbour =
    match List.rev (Schedule.subschedules sch) with
    | s :: _ -> s
    | [] -> Alcotest.fail "no subschedules"
  in
  let c = Replay.compare_runs Chaos.Disk sch neighbour ~at:450_000 in
  (match c.Replay.divergence with
  | None -> Alcotest.fail "expected a trace divergence"
  | Some d ->
    Alcotest.(check bool) "divergence has at least one side" true
      (d.Replay.left <> None || d.Replay.right <> None));
  Alcotest.(check bool) "non-empty state diff" true
    (c.Replay.state_diff <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "diff entries carry a path" true
        (e.Snapshot.path <> ""))
    c.Replay.state_diff

let test_diff_structural () =
  let open Inspect in
  let a =
    Assoc
      [ ("x", Int 1); ("y", List [ Int 1; Int 2 ]);
        ("sub", Assoc [ ("p", String "v") ]) ]
  in
  let b =
    Assoc
      [ ("x", Int 2); ("y", List [ Int 1 ]);
        ("sub", Assoc [ ("p", String "v"); ("q", Bool true) ]) ]
  in
  let d = Snapshot.diff a b in
  let paths = List.map (fun e -> e.Snapshot.path) d in
  Alcotest.(check (list string))
    "paths, left order"
    [ "x"; "y[1]"; "sub/q" ] paths;
  Alcotest.(check int) "same value diffs empty" 0
    (List.length (Snapshot.diff b b))

let test_first_divergence () =
  let r time : Chorus.Trace.record =
    { time; core = 0; fiber = 0; event = Chorus.Trace.Wake }
  in
  Alcotest.(check bool) "equal traces" true
    (Replay.first_divergence [ r 1; r 2 ] [ r 1; r 2 ] = None);
  (match Replay.first_divergence [ r 1; r 2 ] [ r 1; r 3 ] with
  | Some { Replay.index = 1; _ } -> ()
  | _ -> Alcotest.fail "expected divergence at index 1");
  match Replay.first_divergence [ r 1 ] [ r 1; r 2 ] with
  | Some { Replay.index = 1; left = None; right = Some _ } -> ()
  | _ -> Alcotest.fail "expected length divergence at index 1"

(* ------------------------------------------------------------------ *)
(* Schedule parsing                                                    *)

let test_schedule_roundtrip () =
  List.iter
    (fun scenario ->
      for index = 0 to 5 do
        let s = Chaos.gen scenario ~seed:(11 * (index + 1)) ~index in
        let printed = Schedule.to_string s in
        Alcotest.(check string)
          (Printf.sprintf "roundtrip %s" printed)
          printed
          (Schedule.to_string (Schedule.of_string printed))
      done)
    [ Chaos.Disk; Chaos.Kv; Chaos.Projfs ];
  Alcotest.(check string) "kill-provider parses without parens"
    "seed=5 kill-provider@300000+120000"
    (Schedule.to_string
       (Schedule.of_string "seed=5 kill-provider@300000+120000"));
  Alcotest.(check string) "fault-free" "seed=3 (no faults)"
    (Schedule.to_string (Schedule.of_string "seed=3 (no faults)"))

let test_schedule_rejects_garbage () =
  List.iter
    (fun s ->
      match Schedule.of_string s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Invalid_argument _ -> ())
    [ ""; "seed="; "seed=1 flood(p=0.5)@1+2"; "seed=1 loss(p=x)@1+2";
      "seed=1 kill-provider@x+2"; "seed=1 kill-provider" ]

(* ------------------------------------------------------------------ *)
(* Engine stepping                                                     *)

let test_engine_stepping () =
  let cfg = Engine.default_config (Machine.mesh ~cores:4) in
  let eng = Engine.create cfg in
  let ticks = ref 0 in
  Engine.start eng (fun () ->
      for _ = 1 to 5 do
        Fiber.sleep 1_000;
        incr ticks
      done);
  Engine.run_until eng 2_500;
  let mid = !ticks in
  Alcotest.(check bool) "paused mid-run" true (mid > 0 && mid < 5);
  Alcotest.(check bool) "time within limit" true (Engine.now eng <= 2_500);
  Engine.run_until eng 2_500;
  Alcotest.(check int) "same-limit call is a no-op" mid !ticks;
  Engine.finish eng;
  Alcotest.(check int) "finish drains" 5 !ticks;
  Alcotest.(check bool) "drained" true (Engine.drained eng)

let test_engine_stepping_guard () =
  let cfg = Engine.default_config (Machine.mesh ~cores:4) in
  let eng = Engine.create cfg in
  match Engine.run_until eng 1_000 with
  | () -> Alcotest.fail "run_until before start should fail"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Inspect rendering                                                   *)

let test_inspect_json_escaping () =
  let open Inspect in
  Alcotest.(check string)
    "escapes" "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}"
    (to_json (Assoc [ ("k", String "a\"b\\c\nd\x01") ]));
  Alcotest.(check string) "non-finite floats" "[null,null]"
    (to_json (List [ Float nan; Float infinity ]))

let test_inspect_render_clean () =
  let open Inspect in
  let v =
    Assoc
      [ ("empty", List []); ("items", List [ Assoc [ ("a", Int 1) ] ]);
        ("n", Int 3) ]
  in
  let text = render v in
  Alcotest.(check string) "stable layout"
    "empty: []\nitems:\n  -\n    a: 1\nn: 3\n" text;
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         Alcotest.(check bool)
           (Printf.sprintf "no trailing space in %S" line)
           false
           (String.length line > 0 && line.[String.length line - 1] = ' '))

let () =
  Alcotest.run "debug"
    [ ( "snapshot",
        [ Alcotest.test_case "determinism-disk" `Quick test_determinism_disk;
          Alcotest.test_case "determinism-kv" `Quick test_determinism_kv;
          Alcotest.test_case "determinism-projfs" `Quick
            test_determinism_projfs;
          Alcotest.test_case "no-observer-effect" `Quick
            test_snapshot_not_observer_effect ] );
      ( "diff",
        [ Alcotest.test_case "empty-on-same" `Quick test_diff_empty_on_same;
          Alcotest.test_case "neighbour" `Quick test_diff_neighbour;
          Alcotest.test_case "structural" `Quick test_diff_structural;
          Alcotest.test_case "first-divergence" `Quick test_first_divergence ]
      );
      ( "schedule",
        [ Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "rejects-garbage" `Quick
            test_schedule_rejects_garbage ] );
      ( "engine",
        [ Alcotest.test_case "stepping" `Quick test_engine_stepping;
          Alcotest.test_case "stepping-guard" `Quick
            test_engine_stepping_guard ] );
      ( "inspect",
        [ Alcotest.test_case "json-escaping" `Quick test_inspect_json_escaping;
          Alcotest.test_case "render-clean" `Quick test_inspect_render_clean ]
      ) ]
