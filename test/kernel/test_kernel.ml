(* Tests for the message-passing kernel: drivers, cache, allocators,
   vnode VFS (unit + model-based against the pure reference model and
   the lock-based baseline), notification, VM service, supervision. *)

module Machine = Chorus_machine.Machine
module Diskmodel = Chorus_machine.Diskmodel
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Fsspec = Chorus_fsspec.Fsspec
module Fsmodel = Chorus_fsspec.Fsmodel
module Blockdev = Chorus_kernel.Blockdev
module Bcache = Chorus_kernel.Bcache
module Cgalloc = Chorus_kernel.Cgalloc
module Msgvfs = Chorus_kernel.Msgvfs
module Notify = Chorus_kernel.Notify
module Vmserv = Chorus_kernel.Vmserv
module Supervisor = Chorus_kernel.Supervisor
module Console = Chorus_kernel.Console
module Proc = Chorus_kernel.Proc
module Kernel = Chorus_kernel.Kernel
module Sensors = Chorus_kernel.Sensors
module Shvfs = Chorus_baseline.Shvfs

let run ?(cores = 8) ?(policy = Policy.round_robin ()) ?(seed = 42) main =
  Runtime.run (Runtime.config ~policy ~seed (Machine.mesh ~cores)) main

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" what (Fsspec.err_to_string e)

let check_err what expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" what (Fsspec.err_to_string expected)
  | Error e ->
    Alcotest.(check string) what
      (Fsspec.err_to_string expected)
      (Fsspec.err_to_string e)

(* ------------------------------------------------------------------ *)
(* Blockdev                                                            *)

let test_blockdev_roundtrip () =
  let (_ : Runstats.t) =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let data = Bytes.make Fsspec.block_size 'x' in
        Blockdev.write dev 7 data;
        let back = Blockdev.read dev 7 in
        Alcotest.(check bytes) "block roundtrip" data back;
        let zero = Blockdev.read dev 8 in
        Alcotest.(check char) "unwritten zero" '\000' (Bytes.get zero 0))
  in
  ()

let test_blockdev_read_faults_and_retry () =
  (* transient read-error windows: the device fails reads with
     probability p, the cache retries with backoff until the data
     comes back, and both sides count what happened *)
  let (_ : Runstats.t) =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        for b = 0 to 9 do
          Blockdev.write dev b
            (Bytes.make Fsspec.block_size (Char.chr (Char.code 'a' + b)))
        done;
        let cache = Bcache.start ~shards:2 ~capacity:4 ~dev () in
        (match Blockdev.set_read_fault dev ~p:1.0 () with
        | () -> Alcotest.fail "p = 1.0 accepted (retry could never end)"
        | exception Invalid_argument _ -> ());
        Blockdev.set_read_fault dev ~p:0.5 ~seed:7 ();
        for b = 0 to 9 do
          let s = Bcache.get_range cache b ~off:0 ~len:4 in
          Alcotest.(check string) "data survives transient read errors"
            (String.make 4 (Char.chr (Char.code 'a' + b)))
            s
        done;
        Alcotest.(check bool) "device reported errors" true
          (Blockdev.read_errors dev > 0);
        Alcotest.(check bool) "cache retried through them" true
          (Bcache.read_retries cache > 0);
        Blockdev.set_read_fault dev ();
        (match Blockdev.read_result dev 0 with
        | Ok data ->
          Alcotest.(check char) "fault window cleared" 'a' (Bytes.get data 0)
        | Error `Io_error -> Alcotest.fail "error after window cleared"))
  in
  ()

let test_blockdev_single_threaded () =
  let (_ : Runstats.t) =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let fibers =
          List.init 16 (fun i ->
              Fiber.spawn (fun () ->
                  let d = Bytes.make Fsspec.block_size (Char.chr (65 + i)) in
                  Blockdev.write dev (i * 100) d;
                  ignore (Blockdev.read dev (i * 100))))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers;
        Alcotest.(check int) "driver body never concurrent" 1
          (Blockdev.max_concurrency dev);
        Alcotest.(check int) "all writes" 16 (Blockdev.writes dev))
  in
  ()

let test_blockdev_seek_costs () =
  (* sequential access must be cheaper than scattered access *)
  let go blocks =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        List.iter (fun b -> ignore (Blockdev.read dev b)) blocks)
  in
  let seq = go (List.init 50 (fun i -> i)) in
  let scattered = go (List.init 50 (fun i -> i * 977 mod 10_000)) in
  Alcotest.(check bool) "seeks cost" true
    (scattered.Runstats.makespan > seq.Runstats.makespan)

(* ------------------------------------------------------------------ *)
(* Bcache                                                              *)

let test_bcache_roundtrip () =
  let (_ : Runstats.t) =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let bc = Bcache.start ~shards:4 ~capacity:64 ~dev () in
        Bcache.put bc 3 ~off:100 "hello";
        let s = Bcache.get bc 3 in
        Alcotest.(check string) "cached write visible" "hello"
          (String.sub s 100 5);
        Alcotest.(check int) "shards running" 4 (Bcache.shards bc))
  in
  ()

let test_bcache_eviction_writeback () =
  let (_ : Runstats.t) =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        (* tiny cache: 1 block per shard, 2 shards *)
        let bc = Bcache.start ~shards:2 ~capacity:2 ~dev () in
        Bcache.put bc 0 ~off:0 "persist-me";
        (* push enough same-shard blocks through to evict block 0 *)
        for i = 1 to 8 do
          ignore (Bcache.get bc (i * 2))
        done;
        Alcotest.(check bool) "dirty block reached the device" true
          (Blockdev.writes dev >= 1);
        (* refetch: must come back from the device intact *)
        let s = Bcache.get bc 0 in
        Alcotest.(check string) "write-back preserved data" "persist-me"
          (String.sub s 0 10))
  in
  ()

let test_bcache_hit_miss_counters () =
  let (_ : Runstats.t) =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let bc = Bcache.start ~shards:2 ~capacity:32 ~dev () in
        ignore (Bcache.get bc 5);
        ignore (Bcache.get bc 5);
        ignore (Bcache.get bc 5);
        Alcotest.(check int) "one miss" 1 (Bcache.misses bc);
        Alcotest.(check int) "two hits" 2 (Bcache.hits bc))
  in
  ()

let test_bcache_get_range () =
  let (_ : Runstats.t) =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let bc = Bcache.start ~shards:2 ~capacity:16 ~dev () in
        Bcache.put bc 9 ~off:50 "0123456789";
        Alcotest.(check string) "inner range" "34567"
          (Bcache.get_range bc 9 ~off:53 ~len:5);
        (* range clamped at the block boundary *)
        let tail = Bcache.get_range bc 9 ~off:(Fsspec.block_size - 3) ~len:10 in
        Alcotest.(check int) "clamped" 3 (String.length tail))
  in
  ()

let test_blockdev_priority_accepted () =
  let (_ : Runstats.t) =
    run (fun () ->
        let dev =
          Blockdev.start ~priority:Fiber.High ~disk:Diskmodel.default ()
        in
        Blockdev.write dev 1 (Bytes.make Fsspec.block_size 'p');
        Alcotest.(check char) "works at high priority" 'p'
          (Bytes.get (Blockdev.read dev 1) 0))
  in
  ()

(* ------------------------------------------------------------------ *)
(* Cgalloc                                                             *)

let test_cgalloc_unique () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Cgalloc.start ~groups:4 ~nblocks:64 () in
        let seen = Hashtbl.create 64 in
        for i = 0 to 63 do
          match Cgalloc.alloc a ~hint:i with
          | Some b ->
            Alcotest.(check bool)
              (Printf.sprintf "block %d fresh" b)
              false (Hashtbl.mem seen b);
            Hashtbl.replace seen b ()
          | None -> Alcotest.fail "premature exhaustion"
        done;
        Alcotest.(check (option int)) "exhausted" None (Cgalloc.alloc a ~hint:0);
        Alcotest.(check int) "all allocated" 64 (Cgalloc.allocated a);
        (* free one and get it back *)
        Cgalloc.free a 17;
        (match Cgalloc.alloc a ~hint:17 with
        | Some _ -> ()
        | None -> Alcotest.fail "free block not reusable");
        ())
  in
  ()

(* ------------------------------------------------------------------ *)
(* Msgvfs semantics                                                    *)

let boot_fs ?(plumbing = true) () =
  let dev = Blockdev.start ~disk:Diskmodel.default () in
  let bc = Bcache.start ~dev () in
  let alloc = Cgalloc.start ~nblocks:4096 () in
  let sys =
    Msgvfs.mount { Msgvfs.plumbing; dispatchers = 2 } ~bcache:bc ~alloc
  in
  Msgvfs.client sys

let fs_semantics_suite plumbing () =
  let (_ : Runstats.t) =
    run (fun () ->
        let fs = boot_fs ~plumbing () in
        check_ok "mkdir /a" (Msgvfs.mkdir fs "/a");
        check_ok "mkdir /a/b" (Msgvfs.mkdir fs "/a/b");
        check_err "mkdir dup" Fsspec.Eexist (Msgvfs.mkdir fs "/a");
        check_ok "create" (Msgvfs.create fs "/a/b/f");
        check_err "create in missing dir" Fsspec.Enoent
          (Msgvfs.create fs "/nope/f");
        let fd = check_ok "open" (Msgvfs.open_ fs "/a/b/f") in
        check_err "open dir" Fsspec.Eisdir (Msgvfs.open_ fs "/a");
        check_err "open missing" Fsspec.Enoent (Msgvfs.open_ fs "/a/zz");
        let n = check_ok "write" (Msgvfs.write fs fd ~off:0 "hello world") in
        Alcotest.(check int) "wrote all" 11 n;
        let s = check_ok "read" (Msgvfs.read fs fd ~off:0 ~len:11) in
        Alcotest.(check string) "read back" "hello world" s;
        let s = check_ok "read middle" (Msgvfs.read fs fd ~off:6 ~len:5) in
        Alcotest.(check string) "offset read" "world" s;
        let s = check_ok "read past eof" (Msgvfs.read fs fd ~off:100 ~len:5) in
        Alcotest.(check string) "eof empty" "" s;
        (* cross-block write *)
        let big = String.init 10_000 (fun i -> Char.chr (33 + (i mod 90))) in
        let n = check_ok "big write" (Msgvfs.write fs fd ~off:1000 big) in
        Alcotest.(check int) "big wrote" 10_000 n;
        let back = check_ok "big read" (Msgvfs.read fs fd ~off:1000 ~len:10_000) in
        Alcotest.(check string) "big roundtrip" big back;
        let st = check_ok "stat file" (Msgvfs.stat fs "/a/b/f") in
        Alcotest.(check int) "size" 11_000 st.Fsspec.size;
        Alcotest.(check bool) "blocks allocated" true (st.Fsspec.blocks >= 3);
        (* sparse hole reads back as zeroes *)
        check_ok "create sparse" (Msgvfs.create fs "/a/sparse") |> ignore;
        let sfd = check_ok "open sparse" (Msgvfs.open_ fs "/a/sparse") in
        ignore (check_ok "sparse write" (Msgvfs.write fs sfd ~off:9000 "end"));
        let hole = check_ok "hole read" (Msgvfs.read fs sfd ~off:100 ~len:10) in
        Alcotest.(check string) "zero hole" (String.make 10 '\000') hole;
        (* readdir *)
        let names = check_ok "readdir" (Msgvfs.readdir fs "/a") in
        Alcotest.(check (list string)) "entries" [ "b"; "sparse" ] names;
        check_err "readdir of file" Fsspec.Enotdir (Msgvfs.readdir fs "/a/b/f");
        (* unlink semantics *)
        check_err "rmdir nonempty" Fsspec.Enotempty (Msgvfs.unlink fs "/a");
        check_ok "close" (Msgvfs.close fs fd);
        check_ok "unlink file" (Msgvfs.unlink fs "/a/b/f");
        check_err "stat gone" Fsspec.Enoent (Msgvfs.stat fs "/a/b/f");
        check_ok "rmdir" (Msgvfs.unlink fs "/a/b");
        check_err "unlink twice" Fsspec.Enoent (Msgvfs.unlink fs "/a/b");
        (* rename *)
        check_ok "mkdir /r1" (Msgvfs.mkdir fs "/r1");
        check_ok "mkdir /r2" (Msgvfs.mkdir fs "/r2");
        check_ok "create /r1/x" (Msgvfs.create fs "/r1/x");
        let xfd = check_ok "open /r1/x" (Msgvfs.open_ fs "/r1/x") in
        ignore (check_ok "write x" (Msgvfs.write fs xfd ~off:0 "payload"));
        check_ok "rename file" (Msgvfs.rename fs "/r1/x" "/r2/y");
        check_err "old name gone" Fsspec.Enoent (Msgvfs.stat fs "/r1/x");
        let st = check_ok "new name stat" (Msgvfs.stat fs "/r2/y") in
        Alcotest.(check int) "size moved" 7 st.Fsspec.size;
        Alcotest.(check string) "open handle survives rename" "payload"
          (check_ok "read via old fd" (Msgvfs.read fs xfd ~off:0 ~len:7));
        check_ok "rename dir" (Msgvfs.rename fs "/r2" "/r1/sub");
        let names = check_ok "moved dir listing" (Msgvfs.readdir fs "/r1/sub") in
        Alcotest.(check (list string)) "dir contents moved" [ "y" ] names;
        check_err "rename missing" Fsspec.Enoent
          (Msgvfs.rename fs "/nope" "/zz");
        check_ok "create /c1" (Msgvfs.create fs "/c1");
        check_ok "create /c2" (Msgvfs.create fs "/c2");
        check_err "rename onto existing" Fsspec.Eexist
          (Msgvfs.rename fs "/c1" "/c2");
        check_err "rename into self" Fsspec.Einval
          (Msgvfs.rename fs "/r1" "/r1/sub/deep");
        (* walking through a file *)
        check_ok "create f2" (Msgvfs.create fs "/f2");
        check_err "file as dir" Fsspec.Enotdir (Msgvfs.stat fs "/f2/x");
        check_err "bad fd" Fsspec.Ebadf (Msgvfs.read fs 999 ~off:0 ~len:1))
  in
  ()

let test_fs_unlink_open_handle () =
  (* documented deviation: operations through handles to retired
     vnodes fail Ebadf *)
  let (_ : Runstats.t) =
    run (fun () ->
        let fs = boot_fs () in
        check_ok "create" (Msgvfs.create fs "/f");
        let fd = check_ok "open" (Msgvfs.open_ fs "/f") in
        ignore (check_ok "write" (Msgvfs.write fs fd ~off:0 "x"));
        check_ok "unlink" (Msgvfs.unlink fs "/f");
        check_err "read after retire" Fsspec.Ebadf
          (Msgvfs.read fs fd ~off:0 ~len:1))
  in
  ()

let test_fs_concurrent_clients () =
  let (_ : Runstats.t) =
    run ~cores:16 (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let bc = Bcache.start ~dev () in
        let alloc = Cgalloc.start ~nblocks:8192 () in
        let sys = Msgvfs.mount Msgvfs.default_config ~bcache:bc ~alloc in
        check_ok "mkdir" (Msgvfs.mkdir (Msgvfs.client sys) "/shared");
        let workers =
          List.init 8 (fun i ->
              Fiber.spawn (fun () ->
                  let fs = Msgvfs.client sys in
                  let path = Printf.sprintf "/shared/w%d" i in
                  check_ok "create" (Msgvfs.create fs path);
                  let fd = check_ok "open" (Msgvfs.open_ fs path) in
                  let payload = Printf.sprintf "worker-%d-data" i in
                  for k = 0 to 9 do
                    ignore
                      (check_ok "write"
                         (Msgvfs.write fs fd
                            ~off:(k * String.length payload)
                            payload))
                  done;
                  let s =
                    check_ok "read"
                      (Msgvfs.read fs fd ~off:0
                         ~len:(10 * String.length payload))
                  in
                  Alcotest.(check bool)
                    "own data intact" true
                    (String.sub s 0 (String.length payload) = payload)))
        in
        List.iter (fun f -> ignore (Fiber.join f)) workers;
        let fs = Msgvfs.client sys in
        let names = check_ok "readdir" (Msgvfs.readdir fs "/shared") in
        Alcotest.(check int) "all files present" 8 (List.length names))
  in
  ()

let test_vnode_fibers_spawned () =
  let (_ : Runstats.t) =
    run (fun () ->
        let dev = Blockdev.start ~disk:Diskmodel.default () in
        let bc = Bcache.start ~dev () in
        let alloc = Cgalloc.start ~nblocks:4096 () in
        let sys = Msgvfs.mount Msgvfs.default_config ~bcache:bc ~alloc in
        let fs = Msgvfs.client sys in
        let before = Msgvfs.live_vnodes sys in
        check_ok "mkdir" (Msgvfs.mkdir fs "/d");
        for i = 0 to 9 do
          check_ok "create" (Msgvfs.create fs (Printf.sprintf "/d/f%d" i))
        done;
        Alcotest.(check int) "one fiber per vnode" (before + 11)
          (Msgvfs.live_vnodes sys);
        check_ok "unlink" (Msgvfs.unlink fs "/d/f0");
        Alcotest.(check int) "retire reduces" (before + 10)
          (Msgvfs.live_vnodes sys))
  in
  ()

(* ------------------------------------------------------------------ *)
(* Model-based testing: random op sequences must behave identically on
   the reference model, the message VFS (both modes) and the baseline *)

type op =
  | Op_rename of string * string
  | Op_mkdir of string
  | Op_create of string
  | Op_open of string
  | Op_close of int
  | Op_read of int * int * int
  | Op_write of int * int * string
  | Op_stat of string
  | Op_unlink of string
  | Op_readdir of string

let paths =
  [| "/d0"; "/d1"; "/d0/d2"; "/f0"; "/f1"; "/d0/f2"; "/d0/d2/f3"; "/d1/f4" |]

let gen_op =
  let open QCheck.Gen in
  let path = map (fun i -> paths.(i mod Array.length paths)) small_nat in
  let slot = int_range 0 3 in
  let data =
    map
      (fun (c, n) -> String.make (1 + (n mod 2000)) (Char.chr (97 + (c mod 26))))
      (pair small_nat small_nat)
  in
  frequency
    [ (2, map (fun p -> Op_mkdir p) path);
      (3, map (fun p -> Op_create p) path);
      (3, map (fun p -> Op_open p) path);
      (1, map (fun s -> Op_close s) slot);
      (4, map (fun (s, (o, l)) -> Op_read (s, o mod 5000, l mod 3000))
           (pair slot (pair small_nat small_nat)));
      (4, map (fun (s, (o, d)) -> Op_write (s, o mod 5000, d))
           (pair slot (pair small_nat data)));
      (2, map (fun p -> Op_stat p) path);
      (2, map (fun p -> Op_unlink p) path);
      (2, map (fun p -> Op_readdir p) path);
      (2, map (fun (a, b) -> Op_rename (a, b)) (pair path path)) ]

let show_op = function
  | Op_rename (a, b) -> Printf.sprintf "rename %s -> %s" a b
  | Op_mkdir p -> "mkdir " ^ p
  | Op_create p -> "create " ^ p
  | Op_open p -> "open " ^ p
  | Op_close s -> Printf.sprintf "close #%d" s
  | Op_read (s, o, l) -> Printf.sprintf "read #%d off=%d len=%d" s o l
  | Op_write (s, o, d) ->
    Printf.sprintf "write #%d off=%d len=%d" s o (String.length d)
  | Op_stat p -> "stat " ^ p
  | Op_unlink p -> "unlink " ^ p
  | Op_readdir p -> "readdir " ^ p

let arbitrary_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map show_op ops))
    QCheck.Gen.(list_size (1 -- 40) gen_op)

(* Run one op against a filesystem; outcomes are compared as strings.
   Handle tables are kept outside so fd numbering differences between
   implementations cannot cause false mismatches. *)
module Driver (F : Fsspec.S) = struct
  type state = {
    fs : F.t;
    handles : (int * string) option array;  (** slot -> fd, path *)
  }

  let make fs = { fs; handles = Array.make 4 None }

  let open_paths st =
    Array.to_list st.handles
    |> List.filter_map (fun h -> Option.map snd h)

  let apply st op =
    match op with
    | Op_mkdir p -> (
      match F.mkdir st.fs p with
      | Ok () -> "ok"
      | Error e -> Fsspec.err_to_string e)
    | Op_create p -> (
      match F.create st.fs p with
      | Ok () -> "ok"
      | Error e -> Fsspec.err_to_string e)
    | Op_open p -> (
      match F.open_ st.fs p with
      | Ok fd ->
        let slot = ref (-1) in
        Array.iteri
          (fun i h -> if !slot < 0 && h = None then slot := i)
          st.handles;
        if !slot >= 0 then st.handles.(!slot) <- Some (fd, p)
        else ignore (F.close st.fs fd);
        "opened"
      | Error e -> Fsspec.err_to_string e)
    | Op_close s -> (
      match st.handles.(s) with
      | None -> "no-slot"
      | Some (fd, _) ->
        st.handles.(s) <- None;
        (match F.close st.fs fd with
        | Ok () -> "ok"
        | Error e -> Fsspec.err_to_string e))
    | Op_read (s, off, len) -> (
      match st.handles.(s) with
      | None -> "no-slot"
      | Some (fd, _) -> (
        match F.read st.fs fd ~off ~len with
        | Ok data -> Printf.sprintf "data:%d:%d" (String.length data)
                       (Hashtbl.hash data)
        | Error e -> Fsspec.err_to_string e))
    | Op_write (s, off, data) -> (
      match st.handles.(s) with
      | None -> "no-slot"
      | Some (fd, _) -> (
        match F.write st.fs fd ~off data with
        | Ok n -> Printf.sprintf "wrote:%d" n
        | Error e -> Fsspec.err_to_string e))
    | Op_stat p -> (
      match F.stat st.fs p with
      | Ok st_ ->
        Printf.sprintf "stat:%s:%d"
          (match st_.Fsspec.kind with Fsspec.File -> "f" | Fsspec.Dir -> "d")
          st_.Fsspec.size
      | Error e -> Fsspec.err_to_string e)
    | Op_unlink p ->
      (* avoid the divergent unlink-while-open corner (documented
         semantic difference); report it skipped instead *)
      if List.mem p (open_paths st) then "skipped-open"
      else (
        match F.unlink st.fs p with
        | Ok () -> "ok"
        | Error e -> Fsspec.err_to_string e)
    | Op_readdir p -> (
      match F.readdir st.fs p with
      | Ok names -> "dir:" ^ String.concat "," names
      | Error e -> Fsspec.err_to_string e)
    | Op_rename (a, b) ->
      (* moving a path that has an open handle, or a directory above
         one, keeps handles alive identically in all implementations,
         but moving it *under a new name* makes later path-based ops
         diverge from our handle bookkeeping; simplest sound rule:
         skip when any open handle's path would be affected *)
      if
        List.exists
          (fun p ->
            Fsspec.path_inside ~src:a ~dst:p
            || Fsspec.path_inside ~src:b ~dst:p)
          (open_paths st)
      then "skipped-open"
      else (
        match F.rename st.fs a b with
        | Ok () -> "ok"
        | Error e -> Fsspec.err_to_string e)
end

module Model_driver = Driver (Fsmodel)
module Msg_driver = Driver (Msgvfs)
module Sh_driver = Driver (Shvfs)

let model_check_against name apply_impl =
  QCheck.Test.make ~name ~count:60 arbitrary_ops (fun ops ->
      let mismatch = ref None in
      let (_ : Runstats.t) =
        run (fun () ->
            let model = Model_driver.make (Fsmodel.make ()) in
            let impl = apply_impl () in
            List.iter
              (fun op ->
                if !mismatch = None then begin
                  let expect = Model_driver.apply model op in
                  let got = impl op in
                  if expect <> got then
                    mismatch := Some (show_op op, expect, got)
                end)
              ops)
      in
      match !mismatch with
      | None -> true
      | Some (op, expect, got) ->
        QCheck.Test.fail_reportf "op %s: model=%s impl=%s" op expect got)

let prop_msgvfs_matches_model =
  model_check_against "msgvfs (plumbed) == reference model" (fun () ->
      let st = Msg_driver.make (boot_fs ~plumbing:true ()) in
      Msg_driver.apply st)

let prop_msgvfs_dispatch_matches_model =
  model_check_against "msgvfs (dispatchers) == reference model" (fun () ->
      let st = Msg_driver.make (boot_fs ~plumbing:false ()) in
      Msg_driver.apply st)

let prop_shvfs_matches_model =
  model_check_against "baseline shvfs == reference model" (fun () ->
      let sys = Shvfs.make Shvfs.default_config in
      let st = Sh_driver.make (Shvfs.client sys) in
      Sh_driver.apply st)

(* ------------------------------------------------------------------ *)
(* Notify                                                              *)

let test_notify_pubsub () =
  let (_ : Runstats.t) =
    run (fun () ->
        let hub = Notify.start () in
        let all = Notify.subscribe hub in
        let hot =
          Notify.subscribe_filtered hub (function
            | Notify.Thermal _ -> true
            | _ -> false)
        in
        Notify.publish hub (Notify.Thermal 90);
        Notify.publish hub (Notify.Power 2);
        Fiber.sleep 10_000;
        Alcotest.(check int) "all-subscriber got both" 2 (Chan.length all);
        Alcotest.(check int) "filtered got one" 1 (Chan.length hot);
        (match Chan.recv hot with
        | Notify.Thermal v -> Alcotest.(check int) "payload" 90 v
        | _ -> Alcotest.fail "wrong event");
        Alcotest.(check int) "published" 2 (Notify.published hub);
        Alcotest.(check int) "delivered" 3 (Notify.delivered hub))
  in
  ()

(* ------------------------------------------------------------------ *)
(* Vmserv                                                              *)

let test_vm_fault_map () =
  let (_ : Runstats.t) =
    run (fun () ->
        let vm = Vmserv.start ~pages_per_manager:16 ~pages:64 ~frames:32 () in
        Alcotest.(check int) "managers" 4 (Vmserv.managers vm);
        (match Vmserv.fault vm 5 with
        | `Mapped -> ()
        | _ -> Alcotest.fail "first fault should map");
        (match Vmserv.fault vm 5 with
        | `Already -> ()
        | _ -> Alcotest.fail "second fault is a no-op");
        Alcotest.(check int) "one page mapped" 1 (Vmserv.mapped vm);
        (* exhaust frames *)
        for p = 6 to 36 do
          ignore (Vmserv.fault vm p)
        done;
        (match Vmserv.fault vm 40 with
        | `Oom -> ()
        | _ -> Alcotest.fail "frames exhausted -> Oom");
        (* reclaim and retry *)
        Vmserv.protect vm 5;
        (match Vmserv.fault vm 40 with
        | `Mapped -> ()
        | _ -> Alcotest.fail "reclaimed frame reusable"))
  in
  ()

let test_vm_thread_per_page () =
  (* the paper's pathological granularity: one manager per page *)
  let (_ : Runstats.t) =
    run (fun () ->
        let vm = Vmserv.start ~pages_per_manager:1 ~pages:64 ~frames:64 () in
        Alcotest.(check int) "64 managers" 64 (Vmserv.managers vm);
        for p = 0 to 63 do
          match Vmserv.fault vm p with
          | `Mapped -> ()
          | _ -> Alcotest.fail "map"
        done;
        Alcotest.(check int) "all mapped" 64 (Vmserv.mapped vm))
  in
  ()

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)

let crashing_echo ~crash_on ep () =
  Fiber.spawn ~label:"echo-svc" ~daemon:true (fun () ->
      let rec loop () =
        let v, reply = Chan.recv ep in
        if v = crash_on then failwith "service bug";
        Chan.send reply (v * 2);
        loop ()
      in
      loop ())

let test_supervisor_restart () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Chorus.Rpc.endpoint ~label:"echo" () in
        let sup =
          Supervisor.start Supervisor.One_for_one
            [ { Supervisor.cname = "echo";
                cstart = crashing_echo ~crash_on:13 ep } ]
        in
        Fiber.sleep 1_000;
        Alcotest.(check int) "service works" 4 (Chorus.Rpc.call ep 2);
        (* crash it: the request (and its reply) is lost, so the caller
           needs a timeout arm — which is exactly what choice is for *)
        let reply = Chan.buffered 1 in
        Chan.send ep (13, reply);
        let timed_out =
          Chan.choose
            [ Chan.recv_case reply (fun _ -> false);
              Chan.after 200_000 (fun () -> true) ]
        in
        Alcotest.(check bool) "crashed request lost" true timed_out;
        Fiber.sleep 100_000;
        Alcotest.(check int) "restarted, same endpoint" 10
          (Chorus.Rpc.call ep 5);
        Alcotest.(check int) "one restart" 1 (Supervisor.restarts sup);
        Alcotest.(check bool) "did not give up" false (Supervisor.gave_up sup))
  in
  ()

let test_supervisor_gives_up () =
  let (_ : Runstats.t) =
    run (fun () ->
        let crash_always () =
          Fiber.spawn ~label:"bad" ~daemon:true (fun () ->
              Fiber.sleep 100;
              failwith "always")
        in
        let sup =
          Supervisor.start ~max_restarts:3 ~window:10_000_000
            Supervisor.One_for_one
            [ { Supervisor.cname = "bad"; cstart = crash_always } ]
        in
        Fiber.sleep 5_000_000;
        Alcotest.(check bool) "gave up" true (Supervisor.gave_up sup);
        Alcotest.(check bool) "bounded restarts" true
          (Supervisor.restarts sup <= 4))
  in
  ()

let test_supervisor_one_for_all () =
  let (_ : Runstats.t) =
    run (fun () ->
        let starts = ref 0 in
        let counting_child name crash_first =
          { Supervisor.cname = name;
            cstart =
              (fun () ->
                incr starts;
                let mine = !starts in
                Fiber.spawn ~label:name ~daemon:true (fun () ->
                    (* only the very first incarnation of the first
                       child crashes *)
                    if crash_first && mine = 1 then begin
                      Fiber.sleep 1_000;
                      failwith "crash"
                    end
                    else Fiber.sleep 100_000_000)) }
        in
        let (_ : Supervisor.t) =
          Supervisor.start Supervisor.One_for_all
            [ counting_child "a" true; counting_child "b" false ]
        in
        Fiber.sleep 1_000_000;
        (* 2 initial starts + 2 restarts (both restarted together) *)
        Alcotest.(check int) "all children restarted" 4 !starts)
  in
  ()

let test_supervisor_escalation_kills_siblings () =
  (* a child exceeding max_restarts within the window escalates: the
     supervisor gives up, and healthy siblings are killed too *)
  let (_ : Runstats.t) =
    run (fun () ->
        let sibling = ref None in
        let good =
          { Supervisor.cname = "good";
            cstart =
              (fun () ->
                let f =
                  Fiber.spawn ~label:"good" ~daemon:true (fun () ->
                      Fiber.sleep 1_000_000_000)
                in
                sibling := Some f;
                f) }
        in
        let bad =
          { Supervisor.cname = "bad";
            cstart =
              (fun () ->
                Fiber.spawn ~label:"bad" ~daemon:true (fun () ->
                    Fiber.sleep 1_000;
                    failwith "always")) }
        in
        let sup =
          Supervisor.start ~max_restarts:2 ~window:10_000_000
            Supervisor.One_for_one [ good; bad ]
        in
        Fiber.sleep 5_000_000;
        Alcotest.(check bool) "escalated" true (Supervisor.gave_up sup);
        Alcotest.(check bool) "bounded restarts" true
          (Supervisor.restarts sup <= 2);
        Alcotest.(check bool) "only the bad child was restarted" true
          (List.for_all (fun (_, n) -> n = "bad") (Supervisor.restart_log sup));
        (match !sibling with
        | None -> Alcotest.fail "good child never started"
        | Some f ->
          Alcotest.(check bool) "healthy sibling killed on escalation"
            false (Fiber.alive f)))
  in
  ()

let test_supervisor_one_for_all_shared_protocol () =
  (* two children share protocol state (an epoch the leader bumps on
     every start, which the follower reads on its start).  One_for_all
     restarts them together, so the follower's view always matches;
     when the leader exceeds the restart budget the whole group
     escalates and the healthy follower is killed too — no orphan left
     running with a stale epoch *)
  let (_ : Runstats.t) =
    run (fun () ->
        let epoch = ref 0 in
        let leader_views = ref [] and follower_views = ref [] in
        let follower_fiber = ref None in
        let leader =
          { Supervisor.cname = "proto-leader";
            cstart =
              (fun () ->
                incr epoch;
                leader_views := !epoch :: !leader_views;
                Fiber.spawn ~label:"proto-leader" ~daemon:true (fun () ->
                    Fiber.sleep 1_000;
                    failwith "desync")) }
        in
        let follower =
          { Supervisor.cname = "proto-follower";
            cstart =
              (fun () ->
                follower_views := !epoch :: !follower_views;
                let f =
                  Fiber.spawn ~label:"proto-follower" ~daemon:true (fun () ->
                      Fiber.sleep 1_000_000_000)
                in
                follower_fiber := Some f;
                f) }
        in
        let sup =
          Supervisor.start ~max_restarts:2 ~window:10_000_000
            Supervisor.One_for_all [ leader; follower ]
        in
        Fiber.sleep 5_000_000;
        Alcotest.(check bool) "escalated" true (Supervisor.gave_up sup);
        Alcotest.(check (list int))
          "follower's epoch view tracked the leader's on every restart"
          !leader_views !follower_views;
        Alcotest.(check int) "initial start + budgeted restarts" 3
          (List.length !leader_views);
        match !follower_fiber with
        | None -> Alcotest.fail "follower never started"
        | Some f ->
          Alcotest.(check bool) "follower killed on escalation" false
            (Fiber.alive f))
  in
  ()

let test_supervisor_window_prunes_old_crashes () =
  (* crashes spaced wider than the window never escalate: the restart
     intensity only counts crashes inside the sliding window *)
  let (_ : Runstats.t) =
    run (fun () ->
        let bad =
          { Supervisor.cname = "slow-crasher";
            cstart =
              (fun () ->
                Fiber.spawn ~label:"slow-crasher" ~daemon:true (fun () ->
                    Fiber.sleep 200_000;
                    failwith "periodic")) }
        in
        let sup =
          Supervisor.start ~max_restarts:2 ~window:100_000
            Supervisor.One_for_one [ bad ]
        in
        Fiber.sleep 3_000_000;
        let escalated = Supervisor.gave_up sup in
        let restarts = Supervisor.restarts sup in
        (* quiesce before the run ends: the crash/restart cycle would
           otherwise generate events forever *)
        Supervisor.stop sup;
        Alcotest.(check bool) "never escalates" false escalated;
        Alcotest.(check bool)
          (Printf.sprintf "keeps restarting (%d)" restarts)
          true (restarts > 2))
  in
  ()

let test_sensors_publish () =
  let (_ : Runstats.t) =
    run (fun () ->
        let hub = Notify.start () in
        let thermal =
          Notify.subscribe_filtered hub (function
            | Notify.Thermal _ -> true
            | _ -> false)
        in
        let power =
          Notify.subscribe_filtered hub (function
            | Notify.Power _ -> true
            | _ -> false)
        in
        let s =
          Sensors.start
            ~config:
              { Sensors.default_config with
                period = 1_000;
                samples = 14;
                power_every = 7 }
            hub
        in
        Fiber.sleep 100_000;
        Alcotest.(check int) "all samples" 14 (Sensors.samples_taken s);
        Alcotest.(check int) "thermal events" 14 (Chan.length thermal);
        Alcotest.(check int) "power every 7th" 2 (Chan.length power);
        (* temperatures stay within the configured swing *)
        for _ = 1 to 14 do
          match Chan.recv thermal with
          | Notify.Thermal v ->
            Alcotest.(check bool) "bounded" true (v >= 45 && v <= 75)
          | _ -> Alcotest.fail "wrong event"
        done)
  in
  ()

let test_sensors_stop () =
  let (_ : Runstats.t) =
    run (fun () ->
        let hub = Notify.start () in
        let s =
          Sensors.start
            ~config:{ Sensors.default_config with period = 1_000; samples = 0 }
            hub
        in
        Fiber.sleep 5_500;
        Sensors.stop s;
        let at_stop = Sensors.samples_taken s in
        Fiber.sleep 20_000;
        Alcotest.(check int) "no samples after stop" at_stop
          (Sensors.samples_taken s))
  in
  ()

(* ------------------------------------------------------------------ *)
(* Proc, console, kernel boot                                          *)

let test_proc_spawn_wait () =
  let (_ : Runstats.t) =
    run (fun () ->
        let notify = Notify.start () in
        let events = Notify.subscribe notify in
        let pt = Proc.start ~notify () in
        let pid_ok = Proc.spawn_app pt ~label:"good" (fun ~pid:_ -> Fiber.work 100) in
        let pid_bad =
          Proc.spawn_app pt ~label:"bad" (fun ~pid:_ -> failwith "app crash")
        in
        Alcotest.(check bool) "good app ok" true (Proc.wait pt pid_ok);
        Alcotest.(check bool) "bad app not ok" false (Proc.wait pt pid_bad);
        Alcotest.(check int) "both spawned" 2 (Proc.spawned pt);
        Fiber.sleep 10_000;
        (* exits republished as events *)
        Alcotest.(check int) "two exit events" 2 (Chan.length events))
  in
  ()

let test_console_order () =
  let (_ : Runstats.t) =
    run (fun () ->
        let con = Console.start ~cycles_per_char:10 () in
        Console.write_line con "first";
        Console.write_line con "second";
        Alcotest.(check (list string)) "in order" [ "first"; "second" ]
          (Console.output con))
  in
  ()

let test_kernel_boot () =
  let (_ : Runstats.t) =
    run ~cores:16 (fun () ->
        let k = Kernel.boot Kernel.default_config in
        Alcotest.(check bool) "services running" true
          (Kernel.service_fibers k > 10);
        let fs = Kernel.fs_client k in
        check_ok "mkdir" (Msgvfs.mkdir fs "/etc");
        check_ok "create" (Msgvfs.create fs "/etc/motd");
        let fd = check_ok "open" (Msgvfs.open_ fs "/etc/motd") in
        ignore (check_ok "write" (Msgvfs.write fs fd ~off:0 "hello chorus"));
        Alcotest.(check string) "roundtrip through booted kernel"
          "hello chorus"
          (check_ok "read" (Msgvfs.read fs fd ~off:0 ~len:12));
        Console.write_line k.Kernel.console "boot ok";
        let pid = Proc.spawn_app k.Kernel.proc ~label:"init" (fun ~pid:_ -> ()) in
        Alcotest.(check bool) "init ran" true (Proc.wait k.Kernel.proc pid);
        (* sync pushes the dirty cache to the device *)
        Alcotest.(check int) "nothing written yet" 0
          (Blockdev.writes k.Kernel.dev);
        Kernel.sync k;
        Alcotest.(check bool) "sync wrote dirty blocks" true
          (Blockdev.writes k.Kernel.dev > 0))
  in
  ()

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "chorus-kernel"
    [ ( "blockdev",
        [ Alcotest.test_case "roundtrip" `Quick test_blockdev_roundtrip;
          Alcotest.test_case "single-threaded driver" `Quick
            test_blockdev_single_threaded;
          Alcotest.test_case "seek costs" `Quick test_blockdev_seek_costs;
          Alcotest.test_case "read faults + retry" `Quick
            test_blockdev_read_faults_and_retry ] );
      ( "bcache",
        [ Alcotest.test_case "roundtrip" `Quick test_bcache_roundtrip;
          Alcotest.test_case "eviction writeback" `Quick
            test_bcache_eviction_writeback;
          Alcotest.test_case "hit/miss counters" `Quick
            test_bcache_hit_miss_counters;
          Alcotest.test_case "get_range" `Quick test_bcache_get_range;
          Alcotest.test_case "driver priority" `Quick
            test_blockdev_priority_accepted ] );
      ( "cgalloc",
        [ Alcotest.test_case "unique allocation" `Quick test_cgalloc_unique ] );
      ( "msgvfs",
        [ Alcotest.test_case "semantics (plumbed)" `Quick
            (fs_semantics_suite true);
          Alcotest.test_case "semantics (dispatchers)" `Quick
            (fs_semantics_suite false);
          Alcotest.test_case "unlink vs open handle" `Quick
            test_fs_unlink_open_handle;
          Alcotest.test_case "concurrent clients" `Quick
            test_fs_concurrent_clients;
          Alcotest.test_case "fiber per vnode" `Quick
            test_vnode_fibers_spawned ] );
      ( "model-based",
        [ qt prop_msgvfs_matches_model;
          qt prop_msgvfs_dispatch_matches_model;
          qt prop_shvfs_matches_model ] );
      ( "notify",
        [ Alcotest.test_case "pub/sub + filter" `Quick test_notify_pubsub ] );
      ( "vm",
        [ Alcotest.test_case "fault/map/reclaim" `Quick test_vm_fault_map;
          Alcotest.test_case "thread per page" `Quick test_vm_thread_per_page ] );
      ( "supervisor",
        [ Alcotest.test_case "restart on crash" `Quick test_supervisor_restart;
          Alcotest.test_case "gives up" `Quick test_supervisor_gives_up;
          Alcotest.test_case "one_for_all" `Quick test_supervisor_one_for_all;
          Alcotest.test_case "one_for_all shared protocol" `Quick
            test_supervisor_one_for_all_shared_protocol;
          Alcotest.test_case "escalation kills siblings" `Quick
            test_supervisor_escalation_kills_siblings;
          Alcotest.test_case "window prunes old crashes" `Quick
            test_supervisor_window_prunes_old_crashes ] );
      ( "sensors",
        [ Alcotest.test_case "publishes" `Quick test_sensors_publish;
          Alcotest.test_case "stop" `Quick test_sensors_stop ] );
      ( "proc-console-kernel",
        [ Alcotest.test_case "proc table" `Quick test_proc_spawn_wait;
          Alcotest.test_case "console order" `Quick test_console_order;
          Alcotest.test_case "full kernel boot" `Quick test_kernel_boot ] ) ]
