(* Tests for the network substrate: fabric delivery/loss, port demux,
   reliable calls over loss, and the replicated KV service. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Netkv = Chorus_net.Netkv

let run ?(cores = 16) main =
  Runtime.run
    (Runtime.config ~policy:(Policy.round_robin ()) ~seed:21
       (Machine.mesh ~cores))
    main

(* ------------------------------------------------------------------ *)
(* Fabric                                                              *)

let test_fabric_delivers_in_order () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        for i = 1 to 10 do
          Fabric.transmit a
            { Fabric.src = 0; dst = Fabric.addr b; port = 1; seq = i;
              payload = Printf.sprintf "msg-%d" i }
        done;
        for i = 1 to 10 do
          let f = Chan.recv (Fabric.rx b) in
          Alcotest.(check int) "in order" i f.Fabric.seq;
          Alcotest.(check int) "src stamped" (Fabric.addr a) f.Fabric.src
        done;
        Alcotest.(check int) "sent" 10 (Fabric.frames_sent net);
        Alcotest.(check int) "delivered" 10 (Fabric.frames_delivered net))
  in
  ()

let test_fabric_latency () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:20_000 () in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        let t0 = Fiber.now () in
        Fabric.transmit a
          { Fabric.src = 0; dst = Fabric.addr b; port = 1; seq = 1;
            payload = "x" };
        ignore (Chan.recv (Fabric.rx b));
        Alcotest.(check bool) "wire latency applied" true
          (Fiber.now () - t0 >= 20_000))
  in
  ()

let test_fabric_loses_frames () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~loss:0.5 ~seed:3 () in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        ignore b;
        for i = 1 to 200 do
          Fabric.transmit a
            { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "" }
        done;
        (* let the driver drain *)
        Fiber.sleep 1_000_000;
        let dropped = Fabric.frames_dropped net in
        Alcotest.(check bool)
          (Printf.sprintf "about half dropped (%d)" dropped)
          true
          (dropped > 60 && dropped < 140))
  in
  ()

(* Loss accounting: every transmitted frame must be accounted as
   either delivered or dropped once the drivers drain — under loss,
   under zero loss, and identically across same-seed runs. *)

let loss_counts ~loss ~seed ~frames =
  let counts = ref (0, 0, 0) in
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~loss ~seed () in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        ignore b;
        for i = 1 to frames do
          Fabric.transmit a
            { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "x" }
        done;
        Fiber.sleep 5_000_000;
        counts :=
          ( Fabric.frames_sent net,
            Fabric.frames_delivered net,
            Fabric.frames_dropped net ))
  in
  !counts

let test_fabric_loss_accounting () =
  let sent, delivered, dropped = loss_counts ~loss:0.2 ~seed:11 ~frames:500 in
  Alcotest.(check int) "all frames entered the fabric" 500 sent;
  Alcotest.(check int)
    (Printf.sprintf "sent = delivered + dropped (%d = %d + %d)" sent
       delivered dropped)
    sent (delivered + dropped);
  (* statistical sanity at 20% configured loss over 500 frames *)
  Alcotest.(check bool)
    (Printf.sprintf "dropped near expectation (%d)" dropped)
    true
    (dropped > 50 && dropped < 160)

let test_fabric_zero_loss_invariant () =
  let sent, delivered, dropped = loss_counts ~loss:0.0 ~seed:11 ~frames:300 in
  Alcotest.(check int) "sent" 300 sent;
  Alcotest.(check int) "nothing dropped" 0 dropped;
  Alcotest.(check int) "everything delivered" 300 delivered

let test_fabric_loss_deterministic () =
  let a = loss_counts ~loss:0.1 ~seed:17 ~frames:400 in
  let b = loss_counts ~loss:0.1 ~seed:17 ~frames:400 in
  let sa, da, xa = a and sb, db, xb = b in
  Alcotest.(check int) "sent agree" sa sb;
  Alcotest.(check int) "delivered agree" da db;
  Alcotest.(check int) "dropped agree" xa xb

let test_fabric_unknown_dst_dropped () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let a = Fabric.attach net () in
        Fabric.transmit a
          { Fabric.src = 0; dst = 99; port = 1; seq = 1; payload = "" };
        Fiber.sleep 100_000;
        Alcotest.(check int) "dropped" 1 (Fabric.frames_dropped net))
  in
  ()

let fault_counts ~seed () =
  let duplicated = ref 0 and reordered = ref 0 and delayed = ref 0 in
  let delivered = ref 0 in
  let (_ : Runstats.t) =
    run (fun () ->
        let net =
          Fabric.create ~latency:5_000 ~dup:0.25 ~reorder:0.25 ~delay:0.25
            ~delay_cycles:15_000 ~seed ()
        in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        ignore b;
        for i = 1 to 300 do
          Fabric.transmit a
            { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "" }
        done;
        Fiber.sleep 2_000_000;
        let fs = Fabric.fault_stats net in
        duplicated := fs.Fabric.duplicated;
        reordered := fs.Fabric.reordered;
        delayed := fs.Fabric.delayed;
        delivered := Fabric.frames_delivered net)
  in
  (!duplicated, !reordered, !delayed, !delivered)

let test_fabric_fault_knobs () =
  let dup, reord, del, delivered = fault_counts ~seed:4 () in
  Alcotest.(check bool)
    (Printf.sprintf "duplicated some (%d)" dup)
    true (dup > 0);
  Alcotest.(check bool)
    (Printf.sprintf "reordered some (%d)" reord)
    true (reord > 0);
  Alcotest.(check bool)
    (Printf.sprintf "delayed some (%d)" del)
    true (del > 0);
  (* duplication adds deliveries on top of the 300 originals *)
  Alcotest.(check int) "delivered = originals + duplicates"
    (300 + dup) delivered;
  let again = fault_counts ~seed:4 () in
  Alcotest.(check bool) "same seed, same fault stream" true
    (again = (dup, reord, del, delivered))

let test_fabric_set_faults_mid_run () =
  (* knobs opened then closed mid-run: frames after the window are
     clean, so chaos windows can't bleed into the recovery phase *)
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:5_000 ~seed:9 () in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        ignore b;
        Fabric.set_faults net ~dup:0.5 ();
        for i = 1 to 100 do
          Fabric.transmit a
            { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "" }
        done;
        Fiber.sleep 1_000_000;
        let during = (Fabric.fault_stats net).Fabric.duplicated in
        Alcotest.(check bool) "window duplicated" true (during > 0);
        Fabric.set_faults net ~dup:0.0 ();
        for i = 101 to 200 do
          Fabric.transmit a
            { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "" }
        done;
        Fiber.sleep 1_000_000;
        Alcotest.(check int) "window closed: no further duplicates" during
          (Fabric.fault_stats net).Fabric.duplicated)
  in
  ()

let test_set_faults_omitted_knobs_keep_value () =
  (* the documented contract: every omitted knob keeps its current
     value, so [set_faults t ()] is a no-op and a window can be closed
     one knob at a time without disturbing the others *)
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:5_000 ~seed:9 () in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        ignore b;
        Fabric.set_faults net ~dup:0.9 ();
        Fabric.set_faults net ();  (* no-op *)
        Fabric.set_faults net ~delay:0.0 ();  (* touches only delay *)
        for i = 1 to 50 do
          Fabric.transmit a
            { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "" }
        done;
        Fiber.sleep 1_000_000;
        let dup = (Fabric.fault_stats net).Fabric.duplicated in
        Alcotest.(check bool)
          (Printf.sprintf "dup=0.9 survived two narrower set_faults (%d)" dup)
          true (dup > 30);
        (* and an explicit 0.0 is what actually closes it *)
        Fabric.set_faults net ~dup:0.0 ();
        for i = 51 to 100 do
          Fabric.transmit a
            { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "" }
        done;
        Fiber.sleep 1_000_000;
        Alcotest.(check int) "explicit 0.0 closes the knob" dup
          (Fabric.fault_stats net).Fabric.duplicated)
  in
  ()

(* ------------------------------------------------------------------ *)
(* Per-link faults                                                     *)

let test_link_partition_is_directed () =
  (* partitioning a->b must not touch a->c or b->a: link faults are
     per directed (src, dst) pair — the asymmetric gray case *)
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:5_000 ~seed:5 () in
        let a = Fabric.attach net () in
        let b = Fabric.attach net () in
        let c = Fabric.attach net () in
        Fabric.set_link_faults net ~src:0 ~dst:1 ~partition:true ();
        let send nic dst n =
          for i = 1 to n do
            Fabric.transmit nic
              { Fabric.src = 0; dst; port = 1; seq = i; payload = "" }
          done
        in
        send a 1 20;  (* partitioned *)
        send a 2 15;  (* same source, other destination: clean *)
        send b 0 10;  (* reverse direction: clean *)
        ignore c;
        Fiber.sleep 1_000_000;
        let ls = Fabric.link_stats net in
        Alcotest.(check int) "a->b frames partitioned" 20 ls.Fabric.partitioned;
        Alcotest.(check int) "only those dropped" 20
          (Fabric.frames_dropped net);
        Alcotest.(check int) "a->c and b->a delivered" 25
          (Fabric.frames_delivered net);
        (* heal the link: traffic flows again *)
        Fabric.clear_link_faults net ~src:0 ~dst:1;
        send a 1 5;
        Fiber.sleep 1_000_000;
        Alcotest.(check int) "healed link delivers" 30
          (Fabric.frames_delivered net))
  in
  ()

let test_link_delay_slows_one_link () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:5_000 ~seed:6 () in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        Fabric.set_link_faults net ~src:0 ~dst:1 ~delay:0.99
          ~delay_cycles:50_000 ();
        let t0 = Fiber.now () in
        for i = 1 to 10 do
          Fabric.transmit a
            { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "x" }
        done;
        for _ = 1 to 10 do
          ignore (Chan.recv (Fabric.rx b))
        done;
        Alcotest.(check bool) "latency + link delay applied" true
          (Fiber.now () - t0 >= 55_000);
        let delayed = (Fabric.link_stats net).Fabric.link_delayed in
        Alcotest.(check bool)
          (Printf.sprintf "most frames link-delayed (%d)" delayed)
          true (delayed >= 5))
  in
  ()

let link_window_counts ~seed () =
  (* a per-link loss window opened then closed mid-run; returns every
     counter the window can move *)
  let out = ref (0, 0, 0) in
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:5_000 ~seed () in
        let a = Fabric.attach net () and b = Fabric.attach net () in
        ignore b;
        let send n =
          for i = 1 to n do
            Fabric.transmit a
              { Fabric.src = 0; dst = 1; port = 1; seq = i; payload = "" }
          done
        in
        Fabric.set_link_faults net ~src:0 ~dst:1 ~loss:0.5 ();
        send 200;
        Fiber.sleep 1_000_000;
        let during = (Fabric.link_stats net).Fabric.link_dropped in
        (* close the window: omitted knobs keep their values, an
           explicit 0.0 clears the loss *)
        Fabric.set_link_faults net ~src:0 ~dst:1 ~loss:0.0 ();
        send 100;
        Fiber.sleep 1_000_000;
        out :=
          ( during,
            (Fabric.link_stats net).Fabric.link_dropped,
            Fabric.frames_delivered net ))
  in
  !out

let test_link_window_open_close_deterministic () =
  let during, after_close, delivered = link_window_counts ~seed:13 () in
  Alcotest.(check bool)
    (Printf.sprintf "window dropped about half (%d)" during)
    true
    (during > 60 && during < 140);
  Alcotest.(check int) "window closed: no further link drops" during
    after_close;
  Alcotest.(check int) "everything outside the window delivered"
    (300 - during) delivered;
  (* mid-run window open/close is deterministic: same seed, same counts *)
  Alcotest.(check bool) "same seed, same window effects" true
    (link_window_counts ~seed:13 () = (during, after_close, delivered))

(* ------------------------------------------------------------------ *)
(* Stack                                                               *)

let test_stack_port_demux () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let a = Stack.create net (Fabric.attach net ()) in
        let b = Stack.create net (Fabric.attach net ()) in
        let p5 = Stack.listen b ~port:5 in
        let p6 = Stack.listen b ~port:6 in
        Stack.send a ~dst:(Stack.addr b) ~port:6 "six";
        Stack.send a ~dst:(Stack.addr b) ~port:5 "five";
        let f5 = Chan.recv p5 and f6 = Chan.recv p6 in
        Alcotest.(check string) "port 5" "five" f5.Fabric.payload;
        Alcotest.(check string) "port 6" "six" f6.Fabric.payload)
  in
  ()

let test_stack_duplicate_listen_rejected () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let a = Stack.create net (Fabric.attach net ()) in
        ignore (Stack.listen a ~port:7);
        match Stack.listen a ~port:7 with
        | _ -> Alcotest.fail "duplicate listen accepted"
        | exception Invalid_argument _ -> ())
  in
  ()

let test_reliable_call_clean_network () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let client = Stack.create net (Fabric.attach net ()) in
        let server = Stack.create net (Fabric.attach net ()) in
        ignore
          (Fiber.spawn ~daemon:true (fun () ->
               Stack.serve server ~port:9 (fun ~src:_ req -> req ^ "!")));
        (match Stack.call client ~dst:(Stack.addr server) ~port:9 "hello" with
        | Some r -> Alcotest.(check string) "reply" "hello!" r
        | None -> Alcotest.fail "call failed on clean network");
        Alcotest.(check int) "no retransmissions" 0
          (Stack.rel_stats client).Stack.retransmissions)
  in
  ()

let test_reliable_call_over_loss () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~loss:0.3 ~seed:11 () in
        let client = Stack.create net (Fabric.attach net ()) in
        let server = Stack.create net (Fabric.attach net ()) in
        let executed = ref 0 in
        ignore
          (Fiber.spawn ~daemon:true (fun () ->
               Stack.serve server ~port:9 (fun ~src:_ req ->
                   incr executed;
                   "ok:" ^ req)));
        let ok = ref 0 in
        for i = 1 to 50 do
          match
            Stack.call client
              ~dst:(Stack.addr server)
              ~port:9 ~timeout:30_000 ~attempts:10
              (string_of_int i)
          with
          | Some r ->
            Alcotest.(check string) "right reply" ("ok:" ^ string_of_int i) r;
            incr ok
          | None -> ()
        done;
        Alcotest.(check int) "all calls eventually succeed" 50 !ok;
        let st = Stack.rel_stats client in
        Alcotest.(check bool) "loss forced retransmissions" true
          (st.Stack.retransmissions > 0);
        (* exactly-once: despite retries, every request executed once *)
        Alcotest.(check int) "handler executed exactly once per call" 50
          !executed)
  in
  ()

let test_reliable_call_under_duplication () =
  (* the fabric delivers extra copies of request frames; the server's
     (peer, seq) dedup cache must replay the cached reply instead of
     re-executing the handler *)
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~dup:0.5 ~seed:6 () in
        let client = Stack.create net (Fabric.attach net ()) in
        let server = Stack.create net (Fabric.attach net ()) in
        let executed = ref 0 in
        ignore
          (Fiber.spawn ~daemon:true (fun () ->
               Stack.serve server ~port:9 (fun ~src:_ req ->
                   incr executed;
                   "ok:" ^ req)));
        for i = 1 to 40 do
          match
            Stack.call client
              ~dst:(Stack.addr server)
              ~port:9 (string_of_int i)
          with
          | Some r ->
            Alcotest.(check string) "right reply" ("ok:" ^ string_of_int i) r
          | None -> Alcotest.failf "call %d gave up on a lossless fabric" i
        done;
        Fiber.sleep 1_000_000;
        let st = Stack.rel_stats server in
        Alcotest.(check bool)
          (Printf.sprintf "duplicates suppressed server-side (%d)"
             st.Stack.duplicates_served)
          true
          (st.Stack.duplicates_served > 0);
        Alcotest.(check int) "handler executed exactly once per call" 40
          !executed)
  in
  ()

let test_reliable_call_gives_up () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let client = Stack.create net (Fabric.attach net ()) in
        (* no server at all *)
        match
          Stack.call client ~dst:55 ~port:9 ~timeout:5_000 ~attempts:3 "x"
        with
        | None ->
          Alcotest.(check int) "failure counted" 1
            (Stack.rel_stats client).Stack.failures
        | Some _ -> Alcotest.fail "reply from nowhere")
  in
  ()

let test_dedup_cache_bounded () =
  (* the duplicate-suppression cache evicts in FIFO insertion order
     once it hits its configured capacity, and counts what it drops *)
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let client = Stack.create net (Fabric.attach net ()) in
        let server = Stack.create net (Fabric.attach net ()) in
        ignore
          (Fiber.spawn ~daemon:true (fun () ->
               Stack.serve server ~dedup_capacity:2 ~port:9
                 (fun ~src:_ req -> req ^ "!")));
        for i = 1 to 5 do
          match
            Stack.call client ~dst:(Stack.addr server) ~port:9
              (string_of_int i)
          with
          | Some _ -> ()
          | None -> Alcotest.fail "call failed on clean network"
        done;
        Alcotest.(check int) "evictions = distinct keys - capacity" 3
          (Stack.rel_stats server).Stack.dedup_evictions)
  in
  ()

let test_port_overload_reject_recovers_by_retry () =
  (* a frame rejected by the port endpoint's overload policy looks
     like wire loss; the client's retransmission eventually lands *)
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let client = Stack.create net (Fabric.attach net ()) in
        let server = Stack.create net (Fabric.attach net ()) in
        ignore
          (Fiber.spawn ~daemon:true (fun () ->
               Stack.serve server
                 ~config:
                   (Chorus_svc.Svc.config ~capacity:1 ~policy:`Reject ())
                 ~port:9
                 (fun ~src:_ req ->
                   Fiber.work 20_000;
                   req ^ "!")));
        let fibers =
          List.init 4 (fun i ->
              Fiber.spawn (fun () ->
                  match
                    Stack.call client ~dst:(Stack.addr server) ~port:9
                      ~timeout:30_000 ~attempts:10 (string_of_int i)
                  with
                  | Some r ->
                    Alcotest.(check string) "own reply"
                      (string_of_int i ^ "!") r
                  | None -> Alcotest.fail "call failed under rejection"))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  ()

let test_concurrent_calls_not_crossed () =
  (* concurrent callers on one stack must each get their own reply *)
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~loss:0.2 ~seed:5 () in
        let client = Stack.create net (Fabric.attach net ()) in
        let server = Stack.create net (Fabric.attach net ()) in
        ignore
          (Fiber.spawn ~daemon:true (fun () ->
               Stack.serve server ~port:4 (fun ~src:_ req -> "echo:" ^ req)));
        let fibers =
          List.init 8 (fun i ->
              Fiber.spawn (fun () ->
                  for k = 1 to 10 do
                    let req = Printf.sprintf "%d-%d" i k in
                    match
                      Stack.call client ~dst:(Stack.addr server) ~port:4
                        ~timeout:30_000 ~attempts:10 req
                    with
                    | Some r ->
                      Alcotest.(check string) "own reply" ("echo:" ^ req) r
                    | None -> Alcotest.fail "call failed"
                  done))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  ()

(* ------------------------------------------------------------------ *)
(* Netkv                                                               *)

let get_result : [ `Ok of string option | `Net_fail ] Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | `Net_fail -> Format.fprintf ppf "`Net_fail"
      | `Ok None -> Format.fprintf ppf "`Ok None"
      | `Ok (Some v) -> Format.fprintf ppf "`Ok (Some %S)" v)
    ( = )

let check_get msg expected actual = Alcotest.check get_result msg expected actual

let test_kv_basic () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create () in
        let s = Stack.create net (Fabric.attach net ()) in
        let c = Stack.create net (Fabric.attach net ()) in
        let server = Netkv.start_server s ~port:100 in
        let kv = Netkv.client c ~server_addr:(Stack.addr s) ~port:100 in
        Alcotest.(check bool) "put" true (Netkv.put kv "k1" "v1");
        check_get "get hit" (`Ok (Some "v1")) (Netkv.get kv "k1");
        check_get "get miss" (`Ok None) (Netkv.get kv "nope");
        Alcotest.(check bool) "overwrite" true (Netkv.put kv "k1" "v2");
        check_get "updated" (`Ok (Some "v2")) (Netkv.get kv "k1");
        Alcotest.(check int) "server counted" 2 (Netkv.puts_served server))
  in
  ()

let test_kv_replication () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~loss:0.15 ~seed:9 () in
        let primary_stack = Stack.create net (Fabric.attach net ()) in
        let backup_stack = Stack.create net (Fabric.attach net ()) in
        let client_stack = Stack.create net (Fabric.attach net ()) in
        let backup = Netkv.start_server backup_stack ~port:100 in
        let _primary =
          Netkv.start_server ~backup:(Stack.addr backup_stack) primary_stack
            ~port:100
        in
        let kv =
          Netkv.client client_stack ~server_addr:(Stack.addr primary_stack)
            ~port:100
        in
        for i = 1 to 20 do
          Alcotest.(check bool) "replicated put" true
            (Netkv.put kv (Printf.sprintf "k%d" i) (string_of_int i))
        done;
        Alcotest.(check int) "backup holds every put" 20
          (Netkv.replications backup);
        (* reads served by the backup see the replicated data *)
        let kv_b =
          Netkv.client client_stack ~server_addr:(Stack.addr backup_stack)
            ~port:100
        in
        check_get "replica read" (`Ok (Some "7")) (Netkv.get kv_b "k7"))
  in
  ()

let prop_lossless_fabric_delivers_everything =
  QCheck.Test.make ~name:"loss=0 fabric delivers every frame in order"
    ~count:40
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_range 0 4) small_nat))
    (fun sends ->
      let ok = ref true in
      let (_ : Runstats.t) =
        run (fun () ->
            let net = Fabric.create ~latency:500 () in
            let nics = Array.init 5 (fun _ -> Fabric.attach net ()) in
            let sink = Fabric.attach net () in
            List.iteri
              (fun i (src, payload) ->
                Fabric.transmit nics.(src)
                  { Fabric.src = 0; dst = Fabric.addr sink; port = 1;
                    seq = i; payload = string_of_int payload })
              sends;
            (* drain: every frame must arrive, per-sender order kept *)
            let last_seq = Array.make 5 (-1) in
            for _ = 1 to List.length sends do
              let f = Chan.recv (Fabric.rx sink) in
              let src = f.Fabric.src in
              if f.Fabric.seq <= last_seq.(src) then ok := false;
              last_seq.(src) <- f.Fabric.seq
            done;
            if Fabric.frames_dropped net <> 0 then ok := false)
      in
      !ok)

let () =
  Alcotest.run "chorus-net"
    [ ( "fabric",
        [ Alcotest.test_case "in-order delivery" `Quick
            test_fabric_delivers_in_order;
          Alcotest.test_case "wire latency" `Quick test_fabric_latency;
          Alcotest.test_case "loss" `Quick test_fabric_loses_frames;
          Alcotest.test_case "unknown dst" `Quick
            test_fabric_unknown_dst_dropped;
          Alcotest.test_case "loss accounting" `Quick
            test_fabric_loss_accounting;
          Alcotest.test_case "zero-loss invariant" `Quick
            test_fabric_zero_loss_invariant;
          Alcotest.test_case "loss deterministic" `Quick
            test_fabric_loss_deterministic;
          Alcotest.test_case "dup/reorder/delay knobs" `Quick
            test_fabric_fault_knobs;
          Alcotest.test_case "set_faults mid-run" `Quick
            test_fabric_set_faults_mid_run;
          Alcotest.test_case "set_faults keeps omitted knobs" `Quick
            test_set_faults_omitted_knobs_keep_value;
          Alcotest.test_case "link partition is directed" `Quick
            test_link_partition_is_directed;
          Alcotest.test_case "link delay slows one link" `Quick
            test_link_delay_slows_one_link;
          Alcotest.test_case "link window open/close deterministic" `Quick
            test_link_window_open_close_deterministic;
          QCheck_alcotest.to_alcotest
            prop_lossless_fabric_delivers_everything ] );
      ( "stack",
        [ Alcotest.test_case "port demux" `Quick test_stack_port_demux;
          Alcotest.test_case "duplicate listen" `Quick
            test_stack_duplicate_listen_rejected;
          Alcotest.test_case "call clean" `Quick
            test_reliable_call_clean_network;
          Alcotest.test_case "call over 30% loss" `Quick
            test_reliable_call_over_loss;
          Alcotest.test_case "call under duplication" `Quick
            test_reliable_call_under_duplication;
          Alcotest.test_case "dedup cache bounded" `Quick
            test_dedup_cache_bounded;
          Alcotest.test_case "port reject recovered by retry" `Quick
            test_port_overload_reject_recovers_by_retry;
          Alcotest.test_case "call gives up" `Quick
            test_reliable_call_gives_up;
          Alcotest.test_case "concurrent calls" `Quick
            test_concurrent_calls_not_crossed ] );
      ( "netkv",
        [ Alcotest.test_case "basic ops" `Quick test_kv_basic;
          Alcotest.test_case "replication over loss" `Quick
            test_kv_replication ] ) ]
