(* Unit tests for the unified service plane (lib/svc): endpoint
   round-trips, the three overload policies, queue-depth accounting,
   metrics wiring, and per-policy determinism. *)

module Machine = Chorus_machine.Machine
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Metrics = Chorus_obs.Metrics
module Svc = Chorus_svc.Svc

let cfg ?(cores = 4) ?(seed = 42) () =
  Runtime.config ~seed (Machine.mesh ~cores)

let run ?cores ?seed main = Runtime.run (cfg ?cores ?seed ()) main

let run_result ?cores ?seed main =
  Runtime.run_result (cfg ?cores ?seed ()) main

(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Svc.create ~subsystem:"test" ~label:"double" () in
        ignore (Svc.start ep (fun x -> x * 2));
        Alcotest.(check int) "call round-trips" 42 (Svc.call ep 21);
        Alcotest.(check int) "served counted" 1 (Svc.served ep))
  in
  ()

let test_validate () =
  Alcotest.check_raises "reject needs a capacity"
    (Invalid_argument "Svc: `Reject/`Shed_oldest need a capacity >= 1")
    (fun () ->
      ignore
        (run (fun () ->
             ignore
               (Svc.create
                  ~config:(Svc.config ~policy:`Reject ())
                  ~subsystem:"test" ~label:"bad" ()))))

let test_reject_busy_without_handler () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ran = ref 0 in
        let ep =
          Svc.create
            ~config:(Svc.config ~capacity:1 ~policy:`Reject ())
            ~subsystem:"test" ~label:"rejector" ()
        in
        (* no server yet: the first request fills the only slot *)
        let r1 = Svc.call_async ep 1 in
        (match Svc.call_result ep 2 with
        | `Busy -> ()
        | `Ok _ | `Expired -> Alcotest.fail "second request should be rejected");
        Alcotest.(check int) "rejection counted" 1 (Svc.rejected ep);
        Alcotest.(check int) "queue still holds one" 1 (Svc.depth ep);
        ignore (Svc.start ep (fun v -> incr ran; v));
        Alcotest.(check int) "admitted request served" 1 (Svc.await r1);
        Alcotest.(check int) "handler ran only for the admitted one" 1 !ran)
  in
  ()

let test_shed_drops_exactly_the_stalest () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep =
          Svc.create
            ~config:(Svc.config ~capacity:2 ~policy:`Shed_oldest ())
            ~subsystem:"test" ~label:"shedder" ()
        in
        let r1 = Svc.call_async ep 1 in
        let r2 = Svc.call_async ep 2 in
        (* queue full: this admission evicts request 1, the stalest *)
        let r3 = Svc.call_async ep 3 in
        Alcotest.(check int) "one shed" 1 (Svc.shed ep);
        Alcotest.(check int) "none rejected" 0 (Svc.rejected ep);
        ignore (Svc.start ep (fun v -> v));
        (match Svc.await_result r1 with
        | `Busy -> ()
        | `Ok _ | `Expired ->
          Alcotest.fail "stalest request must be the one shed");
        Alcotest.(check int) "second survived" 2 (Svc.await r2);
        Alcotest.(check int) "newest survived" 3 (Svc.await r3))
  in
  ()

let test_block_backpressures () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep =
          Svc.create
            ~config:(Svc.config ~capacity:1 ~policy:`Block ())
            ~subsystem:"test" ~label:"blocker" ()
        in
        let blocked_for = ref 0 in
        let producer =
          Fiber.spawn (fun () ->
              ignore (Svc.call_async ep 1);
              let t0 = Fiber.now () in
              ignore (Svc.call_async ep 2);
              blocked_for := Fiber.now () - t0)
        in
        Fiber.sleep 50_000;
        ignore (Svc.start ep (fun v -> v));
        ignore (Fiber.join producer);
        Alcotest.(check bool)
          "second offer blocked until the server drained a slot" true
          (!blocked_for >= 40_000))
  in
  ()

let test_hwm_sees_bursts_between_receives () =
  (* the high-watermark is sampled on enqueue, so a burst that arrives
     while the server is busy is visible even though the queue is
     empty again by the time anyone looks *)
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Svc.create ~subsystem:"test" ~label:"bursty" () in
        let r1 = Svc.call_async ep 1 in
        let r2 = Svc.call_async ep 2 in
        let r3 = Svc.call_async ep 3 in
        Alcotest.(check int) "depth counts the burst" 3 (Svc.depth ep);
        Alcotest.(check int) "hwm caught the burst" 3 (Svc.hwm ep);
        ignore (Svc.start ep (fun v -> v));
        ignore (Svc.await r1);
        ignore (Svc.await r2);
        ignore (Svc.await r3);
        Alcotest.(check int) "queue drained" 0 (Svc.depth ep);
        Alcotest.(check int) "hwm survives the drain" 3 (Svc.hwm ep))
  in
  ()

let test_metrics_registered () =
  let reg = Metrics.create () in
  Metrics.install reg;
  let (_ : Runstats.t) =
    run (fun () ->
        let ep =
          Svc.create
            ~config:(Svc.config ~capacity:2 ~policy:`Shed_oldest ())
            ~subsystem:"svctest" ~label:"metered" ()
        in
        let r1 = Svc.call_async ep 1 in
        let r2 = Svc.call_async ep 2 in
        let r3 = Svc.call_async ep 3 in
        ignore (Svc.start ep (fun v -> v));
        ignore (Svc.await_result r1);
        ignore (Svc.await r2);
        ignore (Svc.await r3))
  in
  Metrics.uninstall ();
  let snap = Metrics.snapshot reg in
  let get name =
    match List.assoc_opt ("svctest", name) snap with
    | Some v -> v
    | None -> Alcotest.fail (Printf.sprintf "metric %s not registered" name)
  in
  (match get "queue_hwm" with
  | Metrics.Gauge { peak; _ } ->
      Alcotest.(check int) "queue_hwm peak" 2 peak
  | _ -> Alcotest.fail "queue_hwm is not a gauge");
  (match get "queue_depth" with
  | Metrics.Gauge { last; _ } ->
      Alcotest.(check int) "queue_depth drained" 0 last
  | _ -> Alcotest.fail "queue_depth is not a gauge");
  (match get "service_time" with
  | Metrics.Histo { count; _ } ->
      Alcotest.(check int) "service_time samples" 2 count
  | _ -> Alcotest.fail "service_time is not a histogram");
  (match get "shed" with
  | Metrics.Counter n -> Alcotest.(check int) "shed counter" 1 n
  | _ -> Alcotest.fail "shed is not a counter");
  match get "rejected" with
  | Metrics.Counter n -> Alcotest.(check int) "rejected counter" 0 n
  | _ -> Alcotest.fail "rejected is not a counter"

(* A small open-loop overload scenario; byte-identical replay under
   the same seed is the whole point of keeping choose (and its RNG
   draw) out of the service plane. *)
let overload_scenario ~policy ~seed =
  let (completed, busy), stats =
    run_result ~seed (fun () ->
        let ep =
          Svc.create
            ~config:(Svc.config ~capacity:2 ~policy ())
            ~subsystem:"test" ~label:"det" ()
        in
        ignore (Svc.start ep (fun v -> Fiber.work 10_000; v));
        let completed = ref 0 and busy = ref 0 in
        let finished = Chan.unbounded () in
        for c = 0 to 1 do
          ignore
            (Fiber.spawn ~daemon:true (fun () ->
                 Fiber.sleep (c * 1_000);
                 for i = 0 to 9 do
                   ignore
                     (Fiber.spawn ~daemon:true (fun () ->
                          (match Svc.call_result ep i with
                          | `Ok _ -> incr completed
                          | `Busy | `Expired -> incr busy);
                          Chan.send finished ()));
                   Fiber.sleep 4_000
                 done))
        done;
        for _ = 1 to 20 do
          ignore (Chan.recv finished)
        done;
        (!completed, !busy))
  in
  (completed, busy, stats.Runstats.makespan)

let test_deterministic_per_policy () =
  List.iter
    (fun policy ->
      let a = overload_scenario ~policy ~seed:7 in
      let b = overload_scenario ~policy ~seed:7 in
      let pp (c, bz, mk) = Printf.sprintf "(%d,%d,%d)" c bz mk in
      Alcotest.(check string)
        "same seed, same counts and makespan" (pp a) (pp b))
    [ `Block; `Reject; `Shed_oldest ]

(* ------------------------------------------------------------------ *)
(* Batched dequeue                                                     *)

let test_take_batch_drains_backlog () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Svc.cast_create ~subsystem:"test" ~label:"batcher" () in
        for i = 1 to 5 do
          Svc.cast ep i
        done;
        (* first take: blocks for the head, then drains the backlog
           without yielding, capped at max *)
        Alcotest.(check (list int)) "drains up to max" [ 1; 2; 3 ]
          (Svc.take_batch ~max:3 ep);
        Alcotest.(check (list int)) "rest on the next take" [ 4; 5 ]
          (Svc.take_batch ~max:16 ep);
        Alcotest.(check int) "batches counted" 2 (Svc.batches ep);
        Alcotest.(check int) "messages counted" 5 (Svc.batched ep);
        Alcotest.(check int) "hwm is the widest batch" 3 (Svc.batch_hwm ep))
  in
  ()

let test_serve_cast_batch () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Svc.cast_create ~subsystem:"test" ~label:"bserver" () in
        let seen = ref [] in
        let widths = ref [] in
        ignore
          (Fiber.spawn ~daemon:true ~label:"bserver" (fun () ->
               Svc.serve_cast_batch ~max:8 ep (fun batch ->
                   widths := List.length batch :: !widths;
                   seen := !seen @ batch)));
        (* a burst sent while the server is parked arrives as one
           batch, not eight single-message wakeups *)
        for i = 1 to 8 do
          Svc.cast ep i
        done;
        Fiber.sleep 10_000;
        Alcotest.(check (list int))
          "all served in order" [ 1; 2; 3; 4; 5; 6; 7; 8 ] !seen;
        Alcotest.(check int) "served counts every message" 8 (Svc.served ep);
        Alcotest.(check bool) "burst coalesced into few batches" true
          (List.length !widths <= 2))
  in
  ()

(* ------------------------------------------------------------------ *)
(* End-to-end deadlines                                                *)

let test_deadline_dropped_at_dequeue () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Svc.create ~subsystem:"test" ~label:"slow" () in
        ignore
          (Svc.start ep (fun x ->
               Fiber.sleep 50_000;
               x));
        (* occupy the server so the deadlined request waits queued *)
        let first = Svc.call_async ep 1 in
        Fiber.sleep 1_000;
        (match Svc.call_result ep ~deadline:(Fiber.now () + 10_000) 2 with
        | `Expired -> ()
        | `Ok _ | `Busy -> Alcotest.fail "queued call outlived its deadline");
        (match Svc.await_result first with
        | `Ok 1 -> ()
        | `Ok _ | `Busy | `Expired -> Alcotest.fail "first call lost");
        Fiber.sleep 200_000;
        Alcotest.(check int) "dropped at the dequeue boundary" 1
          (Svc.expired ep);
        Alcotest.(check int) "handler never saw the expired request" 1
          (Svc.served ep))
  in
  ()

let test_deadline_pre_expired () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Svc.create ~subsystem:"test" ~label:"echo" () in
        ignore (Svc.start ep (fun x -> x));
        Fiber.sleep 5_000;
        (match Svc.call_result ep ~deadline:(Fiber.now () - 1) 7 with
        | `Expired -> ()
        | `Ok _ | `Busy -> Alcotest.fail "already-dead deadline accepted");
        Alcotest.check_raises "call raises Expired" Svc.Expired (fun () ->
            ignore (Svc.call ep ~deadline:(Fiber.now ()) 7));
        Alcotest.(check int) "nothing reached the queue" 0 (Svc.served ep))
  in
  ()

let test_deadline_ambient_inheritance () =
  let (_ : Runstats.t) =
    run (fun () ->
        Alcotest.(check (option int)) "no ambient deadline by default"
          None
          (Svc.current_deadline ());
        let ep = Svc.create ~subsystem:"test" ~label:"echo" () in
        ignore (Svc.start ep (fun x -> x));
        Fiber.sleep 5_000;
        let d = Fiber.now () + 10_000 in
        Svc.with_deadline d (fun () ->
            Alcotest.(check (option int)) "ambient deadline visible"
              (Some d)
              (Svc.current_deadline ());
            (* a call with no explicit deadline inherits the ambient
               one: once it passes, the call expires *)
            Fiber.sleep 20_000;
            match Svc.call_result ep 1 with
            | `Expired -> ()
            | `Ok _ | `Busy ->
              Alcotest.fail "ambient deadline not inherited");
        Alcotest.(check (option int)) "restored on exit" None
          (Svc.current_deadline ());
        (* without the ambient deadline the same call succeeds *)
        match Svc.call_result ep 2 with
        | `Ok 2 -> ()
        | `Ok _ | `Busy | `Expired -> Alcotest.fail "clean call failed")
  in
  ()

let test_deadline_inherited_by_nested_handler () =
  (* the budget set at the edge bounds the whole downstream tree: an
     outer handler that dawdles past the caller's deadline sees its
     own nested call expire *)
  let (_ : Runstats.t) =
    run (fun () ->
        let inner = Svc.create ~subsystem:"test" ~label:"inner" () in
        ignore (Svc.start inner (fun x -> x * 10));
        let outer = Svc.create ~subsystem:"test" ~label:"outer" () in
        let inner_verdict = ref `Unset in
        ignore
          (Svc.start outer (fun x ->
               Fiber.sleep 30_000;  (* blow the caller's budget *)
               (inner_verdict :=
                  match Svc.call_result inner x with
                  | `Expired -> `Expired
                  | `Ok _ -> `Ok
                  | `Busy -> `Busy);
               x));
        Fiber.sleep 5_000;
        (match Svc.call_result outer ~deadline:(Fiber.now () + 10_000) 3 with
        | `Expired -> ()
        | `Ok _ | `Busy -> Alcotest.fail "outer call outlived its deadline");
        Fiber.sleep 100_000;
        Alcotest.(check bool) "nested call inherited the spent budget"
          true
          (!inner_verdict = `Expired))
  in
  ()

let () =
  Alcotest.run "chorus-svc"
    [ ( "endpoint",
        [ Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "config validation" `Quick test_validate ] );
      ( "overload",
        [ Alcotest.test_case "reject answers busy without the handler"
            `Quick test_reject_busy_without_handler;
          Alcotest.test_case "shed drops exactly the stalest" `Quick
            test_shed_drops_exactly_the_stalest;
          Alcotest.test_case "block backpressures" `Quick
            test_block_backpressures ] );
      ( "accounting",
        [ Alcotest.test_case "hwm sees bursts between receives" `Quick
            test_hwm_sees_bursts_between_receives;
          Alcotest.test_case "uniform metrics registered" `Quick
            test_metrics_registered ] );
      ( "batch",
        [ Alcotest.test_case "take_batch drains backlog" `Quick
            test_take_batch_drains_backlog;
          Alcotest.test_case "serve_cast_batch coalesces" `Quick
            test_serve_cast_batch ] );
      ( "deadlines",
        [ Alcotest.test_case "dropped at dequeue" `Quick
            test_deadline_dropped_at_dequeue;
          Alcotest.test_case "pre-expired" `Quick test_deadline_pre_expired;
          Alcotest.test_case "ambient inheritance" `Quick
            test_deadline_ambient_inheritance;
          Alcotest.test_case "nested handler inherits" `Quick
            test_deadline_inherited_by_nested_handler ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, same run, per policy" `Quick
            test_deterministic_per_policy ] ) ]
