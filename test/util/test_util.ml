(* Tests for the utility substrate: RNG, priority queue, deque,
   histograms, stats, Zipf, table formatting. *)

module Rng = Chorus_util.Rng
module Pqueue = Chorus_util.Pqueue
module Deque = Chorus_util.Deque
module Histogram = Chorus_util.Histogram
module Stats = Chorus_util.Stats
module Zipf = Chorus_util.Zipf
module Rcu = Chorus_util.Rcu
module Tablefmt = Chorus_util.Tablefmt

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.make 123 and b = Rng.make 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.make 7 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_bounds () =
  let r = Rng.make 5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-3) 3 in
    Alcotest.(check bool) "int_in range" true (v >= -3 && v <= 3)
  done;
  for _ = 1 to 100 do
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_uniformity () =
  (* chi-square-ish sanity: buckets within 3x of each other *)
  let r = Rng.make 11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near uniform" true (c > 700 && c < 1400))
    buckets

let test_rng_exponential_mean () =
  let r = Rng.make 13 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential r 100.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean approx 100 (got %.1f)" mean)
    true
    (mean > 90.0 && mean < 110.0)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_orders () =
  let q = Pqueue.create compare in
  List.iter (fun k -> Pqueue.add q k k) [ 5; 1; 4; 1; 3; 9; 0 ];
  let rec drain acc =
    match Pqueue.pop q with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (drain [])

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains any input sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Pqueue.create compare in
      List.iter (fun x -> Pqueue.add q x ()) xs;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare xs)

let test_pqueue_fifo_ties () =
  (* (time, seq) keys with equal time keep sequence order *)
  let q = Pqueue.create compare in
  List.iteri (fun i v -> Pqueue.add q (42, i) v) [ "a"; "b"; "c"; "d" ];
  let rec drain acc =
    match Pqueue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list string)) "tie order" [ "a"; "b"; "c"; "d" ] (drain [])

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)

let test_deque_basics () =
  let d = Deque.create () in
  Deque.push_back d 1;
  Deque.push_back d 2;
  Deque.push_front d 0;
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Deque.to_list d);
  Alcotest.(check (option int)) "pop front" (Some 0) (Deque.pop_front d);
  Alcotest.(check (option int)) "pop back" (Some 2) (Deque.pop_back d);
  Alcotest.(check int) "length" 1 (Deque.length d)

let prop_deque_model =
  (* model-check against a list *)
  QCheck.Test.make ~name:"deque behaves like a list" ~count:200
    QCheck.(list (pair (int_range 0 3) small_int))
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      List.for_all
        (fun (op, v) ->
          match op with
          | 0 ->
            Deque.push_back d v;
            model := !model @ [ v ];
            true
          | 1 ->
            Deque.push_front d v;
            model := v :: !model;
            true
          | 2 -> (
            let got = Deque.pop_front d in
            match !model with
            | [] -> got = None
            | x :: rest ->
              model := rest;
              got = Some x)
          | _ -> (
            let got = Deque.pop_back d in
            match List.rev !model with
            | [] -> got = None
            | x :: rest ->
              model := List.rev rest;
              got = Some x))
        ops
      && Deque.to_list d = !model)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_histogram_exact_small () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "p50" 3 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p100" 5 (Histogram.percentile h 100.0);
  Alcotest.(check int) "max" 5 (Histogram.max_value h);
  Alcotest.(check int) "min" 1 (Histogram.min_value h)

let prop_histogram_percentile_bounded =
  QCheck.Test.make ~name:"percentile within 5% relative error" ~count:100
    QCheck.(list_of_size Gen.(10 -- 200) (int_range 0 1_000_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let exact =
            sorted.(min (n - 1)
                      (max 0 (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)))
          in
          let approx = Histogram.percentile h p in
          approx >= exact
          && float_of_int approx <= (float_of_int exact *. 1.05) +. 2.0)
        [ 50.0; 90.0; 99.0 ])

let test_histogram_percentile_boundaries () =
  (* below [linear_limit] every value has its own bucket: percentiles
     are exact, including at the rank boundaries *)
  let h = Histogram.create () in
  for v = 0 to 63 do
    Histogram.record h v
  done;
  Alcotest.(check int) "p1 -> rank 1" 0 (Histogram.percentile h 1.0);
  Alcotest.(check int) "p25 -> rank 16" 15 (Histogram.percentile h 25.0);
  Alcotest.(check int) "p50 -> rank 32" 31 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p100 -> rank 64" 63 (Histogram.percentile h 100.0);
  (* empty histogram *)
  Alcotest.(check int) "empty p99" 0 (Histogram.percentile (Histogram.create ()) 99.0);
  (* negative samples clamp to zero *)
  let hneg = Histogram.create () in
  Histogram.record hneg (-5);
  Alcotest.(check int) "negative clamps" 0 (Histogram.percentile hneg 50.0);
  (* the log region reports a bucket upper bound: within one
     sub-bucket (1/32 relative) above the sample, and capped at the
     observed max so a top-bucket percentile never exceeds it *)
  List.iter
    (fun v ->
      let h2 = Histogram.create () in
      Histogram.record h2 v;
      Histogram.record h2 (4 * v);
      let p50 = Histogram.percentile h2 50.0 in
      Alcotest.(check bool)
        (Printf.sprintf "p50 of {%d,%d} in [%d, %d+width]" v (4 * v) v v)
        true
        (p50 >= v && p50 <= v + (v / 32) + 1);
      Alcotest.(check int)
        (Printf.sprintf "p100 of {%d,..} capped at max" v)
        (4 * v)
        (Histogram.percentile h2 100.0))
    [ 64; 65; 127; 128; 1000; 65536; 1_000_000 ]

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 10;
  Histogram.record b 1000;
  let m = Histogram.merge a b in
  Alcotest.(check int) "count" 2 (Histogram.count m);
  Alcotest.(check int) "max" 1000 (Histogram.max_value m);
  Alcotest.(check int) "min" 10 (Histogram.min_value m)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_welford () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s)

let prop_stats_merge_equals_sequential =
  QCheck.Test.make ~name:"merge(a,b) == sequential" ~count:100
    QCheck.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and s = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      List.iter (Stats.add s) (xs @ ys);
      let m = Stats.merge a b in
      Stats.count m = Stats.count s
      && (Stats.count s = 0
         || Float.abs (Stats.mean m -. Stats.mean s) < 1e-6)
      && (Stats.count s < 2
         || Float.abs (Stats.variance m -. Stats.variance s) < 1e-4))

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)

let test_zipf_skew () =
  let z = Zipf.make ~n:100 ~theta:1.0 in
  let r = Rng.make 3 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let i = Zipf.sample z r in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 much hotter than rank 50" true
    (counts.(0) > 10 * max 1 counts.(50));
  (* pmf sums to 1 *)
  let total = ref 0.0 in
  for i = 0 to 99 do
    total := !total +. Zipf.probability z i
  done;
  Alcotest.(check (float 1e-9)) "pmf sums to 1" 1.0 !total

let test_zipf_uniform_theta0 () =
  let z = Zipf.make ~n:10 ~theta:0.0 in
  for i = 0 to 9 do
    Alcotest.(check (float 1e-9)) "uniform mass" 0.1 (Zipf.probability z i)
  done

(* ------------------------------------------------------------------ *)
(* Rcu                                                                 *)

let test_rcu_publish_read () =
  let t = Rcu.make [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "initial snapshot" [ 1; 2; 3 ] (Rcu.read t);
  Alcotest.(check int) "starts at version 1" 1 (Rcu.version t);
  Rcu.publish t [ 4 ];
  Alcotest.(check (list int)) "new snapshot visible" [ 4 ] (Rcu.read t);
  Alcotest.(check int) "version bumped" 2 (Rcu.version t);
  (* a reader that grabbed the old snapshot keeps a consistent value:
     published snapshots are never mutated, only replaced *)
  let old = Rcu.make [ 9 ] in
  let held = Rcu.read old in
  Rcu.publish old [];
  Alcotest.(check (list int)) "held snapshot intact" [ 9 ] held

let test_rcu_update_counters () =
  let t = Rcu.make 10 in
  Rcu.update t (fun v -> v + 1);
  Alcotest.(check int) "update publishes f snapshot" 11 (Rcu.read t);
  (* only read counts reads; update and peek don't *)
  ignore (Rcu.peek t);
  Alcotest.(check int) "reads counted" 1 (Rcu.reads t);
  Alcotest.(check int) "publishes counted" 1 (Rcu.publishes t);
  Alcotest.(check int) "peek sees current" 11 (Rcu.peek t)

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)

let test_table_renders () =
  let t =
    Tablefmt.create ~title:"demo"
      ~columns:[ ("name", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b"; "22" ];
  let s = Tablefmt.to_string t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0
    && String.sub s 0 11 = "== demo ==\n");
  let csv = Tablefmt.to_csv t in
  Alcotest.(check string) "csv" "name,value\nalpha,1\nb,22\n" csv

let test_table_rejects_bad_row () =
  let t =
    Tablefmt.create ~title:"x" ~columns:[ ("a", Tablefmt.Left) ]
  in
  Alcotest.check_raises "arity enforced"
    (Invalid_argument "Tablefmt.add_row (x): 2 cells for 1 columns")
    (fun () -> Tablefmt.add_row t [ "1"; "2" ])

let test_csv_escaping () =
  let t = Tablefmt.create ~title:"e" ~columns:[ ("c", Tablefmt.Left) ] in
  Tablefmt.add_row t [ "has,comma" ];
  Tablefmt.add_row t [ "has\"quote" ];
  Alcotest.(check string) "escaped" "c\n\"has,comma\"\n\"has\"\"quote\"\n"
    (Tablefmt.to_csv t)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "chorus-util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "exponential mean" `Quick
            test_rng_exponential_mean ] );
      ( "pqueue",
        [ Alcotest.test_case "orders" `Quick test_pqueue_orders;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          qt prop_pqueue_sorts ] );
      ( "deque",
        [ Alcotest.test_case "basics" `Quick test_deque_basics;
          qt prop_deque_model ] );
      ( "histogram",
        [ Alcotest.test_case "exact small values" `Quick
            test_histogram_exact_small;
          Alcotest.test_case "percentile boundaries" `Quick
            test_histogram_percentile_boundaries;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          qt prop_histogram_percentile_bounded ] );
      ( "stats",
        [ Alcotest.test_case "welford" `Quick test_stats_welford;
          qt prop_stats_merge_equals_sequential ] );
      ( "zipf",
        [ Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "uniform at theta 0" `Quick
            test_zipf_uniform_theta0 ] );
      ( "rcu",
        [ Alcotest.test_case "publish/read" `Quick test_rcu_publish_read;
          Alcotest.test_case "update + counters" `Quick
            test_rcu_update_counters ] );
      ( "tablefmt",
        [ Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "bad row rejected" `Quick
            test_table_rejects_bad_row;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping ] ) ]
