(* Tests for the workload generators: fsload, pipeline, mapred, gui,
   fault injection. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Histogram = Chorus_util.Histogram
module Fsload = Chorus_workload.Fsload
module Pipeline = Chorus_workload.Pipeline
module Mapred = Chorus_workload.Mapred
module Gui = Chorus_workload.Gui
module Faults = Chorus_workload.Faults
module Fsmodel = Chorus_fsspec.Fsmodel
module Libos = Chorus_kernel.Libos

let run ?(cores = 16) main =
  Runtime.run (Runtime.config ~policy:(Policy.round_robin ()) (Machine.mesh ~cores)) main

(* ------------------------------------------------------------------ *)
(* Fsload                                                              *)

module Model_load = Fsload.Make (Fsmodel)
module Libos_load = Fsload.Make (Libos)

let small_cfg =
  { Fsload.default_config with
    clients = 3;
    ops_per_client = 50;
    files = 16;
    dirs = 4;
    file_size = 2048;
    io_size = 128 }

let test_fsload_on_reference_model () =
  (* the generator itself must produce zero failed ops against the
     reference semantics *)
  let (_ : Runstats.t) =
    run (fun () ->
        let fs = Fsmodel.make () in
        Model_load.setup fs small_cfg;
        let r = Model_load.run_clients (fun _ -> fs) small_cfg in
        Alcotest.(check int) "ops" 150 r.Fsload.total_ops;
        Alcotest.(check int) "no failures" 0 r.Fsload.failed_ops;
        Alcotest.(check bool) "latencies recorded" true
          (Histogram.count r.Fsload.latency = 150);
        Alcotest.(check bool) "per-op split present" true
          (List.length r.Fsload.per_op >= 2))
  in
  ()

let test_fsload_on_libos () =
  let (_ : Runstats.t) =
    run (fun () ->
        let fs = Libos.make () in
        Libos_load.setup fs small_cfg;
        let r = Libos_load.run_clients (fun _ -> fs) small_cfg in
        Alcotest.(check int) "no failures" 0 r.Fsload.failed_ops;
        Alcotest.(check bool) "elapsed measured" true (r.Fsload.elapsed > 0);
        Alcotest.(check bool) "throughput positive" true
          (Fsload.throughput r > 0.0))
  in
  ()

let test_fsload_deterministic () =
  let go () =
    let tput = ref 0.0 in
    let (_ : Runstats.t) =
      run (fun () ->
          let fs = Libos.make () in
          Libos_load.setup fs small_cfg;
          tput := Fsload.throughput (Libos_load.run_clients (fun _ -> fs) small_cfg))
    in
    !tput
  in
  Alcotest.(check (float 1e-9)) "same throughput" (go ()) (go ())

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)

let test_pipeline_delivers_all () =
  let (_ : Runstats.t) =
    run (fun () ->
        let r =
          Pipeline.run { Pipeline.default_config with items = 100; stages = 3 }
        in
        Alcotest.(check int) "all items" 100
          (Histogram.count r.Pipeline.item_latency);
        Alcotest.(check bool) "makespan sane" true (r.Pipeline.makespan_hint > 0))
  in
  ()

let test_pipeline_latency_grows_with_stages () =
  let mean stages =
    let m = ref 0.0 in
    let (_ : Runstats.t) =
      run (fun () ->
          let r =
            Pipeline.run
              { Pipeline.default_config with items = 100; stages; capacity = 4 }
          in
          m := Histogram.mean r.Pipeline.item_latency)
    in
    !m
  in
  Alcotest.(check bool) "deeper pipeline, higher latency" true
    (mean 8 > mean 2)

(* ------------------------------------------------------------------ *)
(* Mapred                                                              *)

let test_mapred_equivalence () =
  let cfg = { Mapred.default_config with chunks = 8; words_per_chunk = 100 } in
  let msg = ref None and sh = ref None in
  let (_ : Runstats.t) = run (fun () -> msg := Some (Mapred.run_messages cfg)) in
  let (_ : Runstats.t) = run (fun () -> sh := Some (Mapred.run_shared cfg)) in
  let m = Option.get !msg and s = Option.get !sh in
  Alcotest.(check int) "total words" (8 * 100) m.Mapred.total;
  Alcotest.(check bool) "some vocabulary hit" true (m.Mapred.distinct > 10);
  Alcotest.(check int) "same distinct" m.Mapred.distinct s.Mapred.distinct;
  Alcotest.(check int) "same total" m.Mapred.total s.Mapred.total;
  Alcotest.(check int) "same checksum" m.Mapred.checksum s.Mapred.checksum

(* ------------------------------------------------------------------ *)
(* Gui                                                                 *)

let test_gui_both_structures_complete () =
  let cfg = { Gui.default_config with input_events = 40; app_updates = 40 } in
  let check_result name r =
    Alcotest.(check int) (name ^ " updates rendered") 40
      (Histogram.count r.Gui.update_latency);
    Alcotest.(check int) (name ^ " inputs handled") 40
      (Histogram.count r.Gui.input_latency)
  in
  let (_ : Runstats.t) = run (fun () -> check_result "peer" (Gui.run_peer cfg)) in
  let (_ : Runstats.t) =
    run (fun () -> check_result "hier" (Gui.run_hierarchical cfg))
  in
  ()

let test_gui_peer_updates_faster () =
  let cfg = { Gui.default_config with input_events = 60; app_updates = 60 } in
  let peer = ref 0.0 and hier = ref 0.0 in
  let (_ : Runstats.t) =
    run (fun () -> peer := Histogram.mean (Gui.run_peer cfg).Gui.update_latency)
  in
  let (_ : Runstats.t) =
    run (fun () ->
        hier := Histogram.mean (Gui.run_hierarchical cfg).Gui.update_latency)
  in
  Alcotest.(check bool)
    (Printf.sprintf "peer %.0f < hier %.0f" !peer !hier)
    true (!peer < !hier)

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)

let test_faults_kill_victims () =
  let (_ : Runstats.t) =
    run (fun () ->
        let victims =
          Array.init 4 (fun i ->
              Fiber.spawn ~label:(Printf.sprintf "victim-%d" i) ~daemon:true
                (fun () -> Fiber.sleep 100_000_000))
        in
        let next = ref 0 in
        let injector =
          Faults.start
            { Faults.mean_interval = 1_000; crashes = 4; seed = 3 }
            ~victims:(fun () ->
              let v = victims.(!next) in
              incr next;
              Some v)
        in
        Faults.wait injector;
        Alcotest.(check int) "all injected" 4 (Faults.injected injector);
        Alcotest.(check int) "log matches" 4 (List.length (Faults.log injector));
        Array.iter
          (fun v ->
            Alcotest.(check bool) "victim dead" false (Fiber.alive v))
          victims)
  in
  ()

let test_faults_skip_none () =
  let (_ : Runstats.t) =
    run (fun () ->
        let injector =
          Faults.start
            { Faults.mean_interval = 100; crashes = 5; seed = 1 }
            ~victims:(fun () -> None)
        in
        Faults.wait injector;
        Alcotest.(check int) "nothing injected" 0 (Faults.injected injector))
  in
  ()

let test_faults_schedule_exact_times () =
  let (_ : Runstats.t) =
    run (fun () ->
        let seen = ref [] in
        let injector =
          (* deliberately unsorted: the schedule sorts internally *)
          Faults.start_schedule ~at:[ 9_000; 1_000; 5_000 ]
            ~inject:(fun ~n ->
              seen := (n, Fiber.now ()) :: !seen;
              true)
        in
        Faults.wait injector;
        Alcotest.(check int) "all injected" 3 (Faults.injected injector);
        (* the injector wakes at the first instant >= the scheduled
           time; fiber scheduling itself costs a few cycles *)
        List.iter2
          (fun scheduled fired ->
            Alcotest.(check bool)
              (Printf.sprintf "fired at ~%d (%d)" scheduled fired)
              true
              (fired >= scheduled && fired < scheduled + 1_000))
          [ 1_000; 5_000; 9_000 ] (Faults.log injector);
        Alcotest.(check (list int)) "inject saw 1-based indices in order"
          [ 1; 2; 3 ]
          (List.rev_map fst !seen))
  in
  ()

let test_faults_schedule_outlives_workload () =
  (* a schedule extending far past the workload must not wedge the
     run: the injector is a daemon fiber, virtual time is free, so the
     run still terminates and the late injection fires at its
     scheduled (virtual) instant long after the real work ended *)
  let injector = ref None in
  let times = ref [] in
  let (_ : Runstats.t) =
    run (fun () ->
        injector :=
          Some
            (Faults.start_schedule
               ~at:[ 1_000; 60_000_000_000 ]
               ~inject:(fun ~n:_ ->
                 times := Fiber.now () :: !times;
                 true));
        Fiber.sleep 10_000)
  in
  (match !injector with
  | None -> Alcotest.fail "injector never started"
  | Some t ->
    Alcotest.(check int) "both injections fired" 2 (Faults.injected t);
    match List.rev !times with
    | [ first; late ] ->
      Alcotest.(check bool) "first fired during the workload" true
        (first < 10_000);
      Alcotest.(check bool) "late one fired past the workload's end" true
        (late >= 60_000_000_000)
    | l -> Alcotest.failf "expected 2 injection times, got %d" (List.length l));
  ()

let () =
  Alcotest.run "chorus-workload"
    [ ( "fsload",
        [ Alcotest.test_case "reference model" `Quick
            test_fsload_on_reference_model;
          Alcotest.test_case "libos" `Quick test_fsload_on_libos;
          Alcotest.test_case "deterministic" `Quick test_fsload_deterministic ] );
      ( "pipeline",
        [ Alcotest.test_case "delivers all" `Quick test_pipeline_delivers_all;
          Alcotest.test_case "latency vs depth" `Quick
            test_pipeline_latency_grows_with_stages ] );
      ( "mapred",
        [ Alcotest.test_case "msg == shared results" `Quick
            test_mapred_equivalence ] );
      ( "gui",
        [ Alcotest.test_case "both complete" `Quick
            test_gui_both_structures_complete;
          Alcotest.test_case "peer faster updates" `Quick
            test_gui_peer_updates_faster ] );
      ( "faults",
        [ Alcotest.test_case "kills victims" `Quick test_faults_kill_victims;
          Alcotest.test_case "skips none" `Quick test_faults_skip_none;
          Alcotest.test_case "schedule exact times" `Quick
            test_faults_schedule_exact_times;
          Alcotest.test_case "schedule outlives workload" `Quick
            test_faults_schedule_outlives_workload ] ) ]
