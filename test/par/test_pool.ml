(* Tests for the domain pool and the domain-safe engine contexts:
   order-preserving deterministic merge at any domain count, failure
   propagation, N-domain chaos campaigns byte-identical to sequential,
   and two engines in one process — stepped interleaved and fully
   concurrent on separate domains — with no Inspect/metrics
   cross-contamination. *)

module Pool = Chorus_par.Pool
module Chaos = Chorus_chaos.Chaos
module Engine = Chorus.Engine
module Machine = Chorus_machine.Machine
module Metrics = Chorus_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)

let test_pool_order () =
  let expect = List.init 20 (fun i -> i * i) in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "order at %d domains" domains)
        expect
        (Pool.run ~domains ~tasks:20 (fun i -> i * i)))
    [ 1; 2; 4 ]

let test_pool_edges () =
  Alcotest.(check (list int)) "zero tasks" [] (Pool.run ~domains:4 ~tasks:0 Fun.id);
  Alcotest.(check (list int))
    "more domains than tasks" [ 0; 1 ]
    (Pool.run ~domains:8 ~tasks:2 Fun.id);
  Alcotest.(check (list string))
    "map" [ "a!"; "b!" ]
    (Pool.map ~domains:2 [ "a"; "b" ] (fun s -> s ^ "!"));
  Alcotest.check_raises "domains 0 rejected"
    (Invalid_argument "Pool.run: domains must be >= 1") (fun () ->
      ignore (Pool.run ~domains:0 ~tasks:1 Fun.id))

let test_pool_failure () =
  (* only task 3 ever fails, so the winning failure index is fixed *)
  List.iter
    (fun domains ->
      match Pool.run ~domains ~tasks:8 (fun i -> if i = 3 then failwith "boom" else i) with
      | _ -> Alcotest.failf "expected Task_failed at %d domains" domains
      | exception Pool.Task_failed (3, Failure msg) when String.equal msg "boom"
        -> ()
      | exception e ->
        Alcotest.failf "wrong exception at %d domains: %s" domains
          (Printexc.to_string e))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* N-domain campaign determinism                                       *)

let report_sig (r : Chaos.report) =
  ( r.Chaos.runs,
    r.Chaos.total_ops,
    r.Chaos.faults_injected,
    r.Chaos.kinds,
    List.length r.Chaos.violations,
    r.Chaos.campaign_digest )

let test_campaign_domains_identical () =
  (* disk runs arm crash points from inside their runs and kv runs
     don't: with a shared global crash point, concurrent shards would
     contaminate each other; with per-run contexts the merged report
     must be byte-identical at every width *)
  let rep domains =
    Chaos.campaign ~disk_runs:6 ~kv_runs:2 ~domains ~seed:5 ()
  in
  let base = report_sig (rep 1) in
  List.iter
    (fun domains ->
      if report_sig (rep domains) <> base then
        Alcotest.failf "campaign diverged at %d domains" domains)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Two engines in one process                                          *)

let test_two_engines_stepped () =
  (* interleave two started engines from the same driver; each must
     keep its own Inspect provider registry *)
  let mk tag =
    let eng = Engine.create (Engine.default_config (Machine.mesh ~cores:2)) in
    Engine.start eng (fun () ->
        Chorus.Inspect.register ~name:tag (fun () ->
            Chorus.Inspect.String tag);
        Chorus.Fiber.sleep 10_000;
        Chorus.Inspect.register ~name:(tag ^ "/late") (fun () ->
            Chorus.Inspect.Int 1));
    eng
  in
  let a = mk "a" in
  let b = mk "b" in
  let names eng =
    List.map fst (Chorus.Inspect.snapshot_in (Engine.ctx eng))
  in
  Engine.run_until a 5_000;
  Alcotest.(check (list string)) "a early" [ "a" ] (names a);
  Alcotest.(check (list string)) "b unstepped sees nothing" [] (names b);
  Engine.run_until b 20_000;
  Alcotest.(check (list string)) "b complete" [ "b"; "b/late" ] (names b);
  Alcotest.(check (list string)) "a unaffected by b" [ "a" ] (names a);
  Engine.run_until a 20_000;
  Alcotest.(check (list string)) "a complete" [ "a"; "a/late" ] (names a);
  Engine.finish a;
  Engine.finish b

let test_two_engines_concurrent () =
  (* the same chaos runs, solo then concurrently on two domains, must
     produce the same digests — engines share no mutable state *)
  let seed = 7 in
  let digest i =
    (Chaos.run_one Chaos.Disk (Chaos.gen Chaos.Disk ~seed ~index:i))
      .Chaos.digest
  in
  let solo1 = digest 1 in
  let solo2 = digest 2 in
  let d1 = Domain.spawn (fun () -> digest 1) in
  let d2 = Domain.spawn (fun () -> digest 2) in
  let c1 = Domain.join d1 in
  let c2 = Domain.join d2 in
  Alcotest.(check string) "digest 1 concurrent = solo" solo1 c1;
  Alcotest.(check string) "digest 2 concurrent = solo" solo2 c2;
  Alcotest.(check bool) "distinct schedules distinct digests" true
    (not (String.equal solo1 solo2))

let test_metrics_domain_isolation () =
  (* each domain installs its own registry before its run; counts must
     not bleed across domains *)
  let count n =
    let reg = Metrics.create () in
    Metrics.install reg;
    Fun.protect ~finally:Metrics.uninstall @@ fun () ->
    let (_ : Chorus.Runstats.t) =
      Chorus.Runtime.run
        (Chorus.Runtime.config ~seed:n (Machine.mesh ~cores:2))
        (fun () ->
          let c = Metrics.counter ~subsystem:"iso" "count" in
          for _ = 1 to n do
            Metrics.incr c
          done)
    in
    match Metrics.snapshot reg with
    | [ ((_, _), Metrics.Counter v) ] -> v
    | _ -> -1
  in
  let da = Domain.spawn (fun () -> count 3) in
  let db = Domain.spawn (fun () -> count 5) in
  let va = Domain.join da in
  let vb = Domain.join db in
  Alcotest.(check int) "domain a count" 3 va;
  Alcotest.(check int) "domain b count" 5 vb

let () =
  Alcotest.run "chorus-par"
    [ ( "pool",
        [ Alcotest.test_case "order-preserving merge" `Quick test_pool_order;
          Alcotest.test_case "edge cases" `Quick test_pool_edges;
          Alcotest.test_case "failure propagation" `Quick test_pool_failure
        ] );
      ( "campaign",
        [ Alcotest.test_case "byte-identical at 1/2/4 domains" `Quick
            test_campaign_domains_identical
        ] );
      ( "engines",
        [ Alcotest.test_case "two stepped engines interleaved" `Quick
            test_two_engines_stepped;
          Alcotest.test_case "two concurrent engines" `Quick
            test_two_engines_concurrent;
          Alcotest.test_case "metrics isolated per domain" `Quick
            test_metrics_domain_isolation
        ] )
    ]
