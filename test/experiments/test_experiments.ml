(* Smoke tests over the experiment harnesses: every registered
   experiment must run in quick mode, produce at least one table with
   at least one row, and be deterministic in its seed.  A few
   shape-level assertions pin the headline results so a regression in
   the simulator that flips a conclusion fails loudly here. *)

module Experiments = Chorus_experiments.Experiments
module Tablefmt = Chorus_util.Tablefmt

let cell table ~row ~col =
  let rows = Tablefmt.rows table in
  List.nth (List.nth rows row) col

let fcell table ~row ~col = float_of_string (cell table ~row ~col)

let test_all_run_and_fill () =
  List.iter
    (fun e ->
      let tables = e.Experiments.run ~quick:true ~seed:7 in
      Alcotest.(check bool)
        (e.Experiments.id ^ " produced tables")
        true
        (List.length tables >= 1);
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (e.Experiments.id ^ ":" ^ Tablefmt.title t ^ " has rows")
            true
            (List.length (Tablefmt.rows t) >= 1))
        tables)
    Experiments.all

let test_registry_lookup () =
  Alcotest.(check bool) "finds e3" true (Experiments.find "E3" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.find "e99" = None);
  Alcotest.(check int) "catalogue size" 25 (List.length Experiments.all)

let run_tables id =
  match Experiments.find id with
  | Some e -> e.Experiments.run ~quick:true ~seed:7
  | None -> Alcotest.failf "experiment %s missing" id

let test_deterministic_tables () =
  List.iter
    (fun id ->
      let strings tables = List.map Tablefmt.to_string tables in
      let a = strings (run_tables id) and b = strings (run_tables id) in
      Alcotest.(check (list string)) (id ^ " deterministic") a b)
    [ "e1"; "e5"; "e11"; "e18" ]

(* shape pins: the conclusions EXPERIMENTS.md reports must survive *)

let test_e1_message_heavier_than_call () =
  match run_tables "e1" with
  | [ t ] ->
    let call = fcell t ~row:0 ~col:1 in
    let msg_local = fcell t ~row:1 ~col:1 in
    Alcotest.(check bool) "call is cycles-cheap" true (call < 10.0);
    Alcotest.(check bool) "message within 100x of a call" true
      (msg_local < 100.0 *. call);
    Alcotest.(check bool) "message costs more than a call" true
      (msg_local > call)
  | _ -> Alcotest.fail "e1 shape"

let test_e3_message_kernel_wins_at_scale () =
  match run_tables "e3" with
  | [ t; _note ] ->
    let rows = Tablefmt.rows t in
    let last = List.length rows - 1 in
    let msg = fcell t ~row:last ~col:1 and lock = fcell t ~row:last ~col:2 in
    Alcotest.(check bool)
      (Printf.sprintf "msg (%.0f) > 2x lock (%.0f) at max cores" msg lock)
      true
      (msg > 2.0 *. lock)
  | _ -> Alcotest.fail "e3 shape"

let test_e7_channels_beat_signals () =
  match run_tables "e7" with
  | [ t ] ->
    let signal_mean = fcell t ~row:0 ~col:1 in
    let chan_mean = fcell t ~row:1 ~col:1 in
    let signal_waste = fcell t ~row:0 ~col:3 in
    Alcotest.(check bool) "channel latency lower" true
      (chan_mean < signal_mean);
    Alcotest.(check bool) "signals waste work" true (signal_waste > 0.0)
  | _ -> Alcotest.fail "e7 shape"

let test_e18_weight_ordering () =
  match run_tables "e18" with
  | [ t ] ->
    let chan = fcell t ~row:0 ~col:1 in
    let l4 = fcell t ~row:1 ~col:1 in
    let mach = fcell t ~row:2 ~col:1 in
    Alcotest.(check bool) "chan < l4 < mach" true (chan < l4 && l4 < mach)
  | _ -> Alcotest.fail "e18 shape"

let () =
  Alcotest.run "chorus-experiments"
    [ ( "smoke",
        [ Alcotest.test_case "all run and fill tables" `Slow
            test_all_run_and_fill;
          Alcotest.test_case "registry" `Quick test_registry_lookup;
          Alcotest.test_case "deterministic" `Quick test_deterministic_tables ] );
      ( "shape-pins",
        [ Alcotest.test_case "e1 message vs call" `Quick
            test_e1_message_heavier_than_call;
          Alcotest.test_case "e3 crossover direction" `Quick
            test_e3_message_kernel_wins_at_scale;
          Alcotest.test_case "e7 signals waste" `Quick
            test_e7_channels_beat_signals;
          Alcotest.test_case "e18 weight classes" `Quick
            test_e18_weight_ordering ] ) ]
