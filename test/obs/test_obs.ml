(* Tests for the observability layer: trace ring buffer, metrics
   registry, span pairing, profile distillation and the Chrome
   trace-event exporter. *)

module Trace = Chorus.Trace
module Runtime = Chorus.Runtime
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Machine = Chorus_machine.Machine
module Metrics = Chorus_obs.Metrics
module Span = Chorus_obs.Span
module Profile = Chorus_obs.Profile
module Chrome_trace = Chorus_obs.Chrome_trace

let mk_record ?(core = 0) ?(fiber = 1) time event =
  { Trace.time; core; fiber; event }

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)

let test_ring_drop_oldest () =
  let sink, get, dropped = Trace.ring ~capacity:4 () in
  for i = 1 to 10 do
    sink (mk_record i (Trace.Custom (string_of_int i)))
  done;
  let times = List.map (fun r -> r.Trace.time) (get ()) in
  Alcotest.(check (list int)) "keeps newest, in order" [ 7; 8; 9; 10 ] times;
  Alcotest.(check int) "dropped oldest" 6 (dropped ())

let test_ring_under_capacity () =
  let sink, get, dropped = Trace.ring ~capacity:8 () in
  for i = 1 to 3 do
    sink (mk_record i Trace.Wake)
  done;
  Alcotest.(check int) "all kept" 3 (List.length (get ()));
  Alcotest.(check int) "nothing dropped" 0 (dropped ())

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let with_registry f =
  let reg = Metrics.create () in
  Metrics.install reg;
  Fun.protect ~finally:Metrics.uninstall (fun () -> f reg)

let test_metrics_basics () =
  with_registry @@ fun reg ->
  let c = Metrics.counter ~subsystem:"t" "reqs" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  let g = Metrics.gauge ~subsystem:"t" "depth" in
  Metrics.observe g 3;
  Metrics.observe g 7;
  Metrics.observe g 2;
  let h = Metrics.histogram ~subsystem:"t" "lat" in
  List.iter (Metrics.record h) [ 10; 20; 30 ];
  match Metrics.snapshot reg with
  | [ (("t", "depth"), Metrics.Gauge { last; peak; mean });
      (("t", "lat"), Metrics.Histo { count; max; _ });
      (("t", "reqs"), Metrics.Counter n) ] ->
    Alcotest.(check int) "counter" 5 n;
    Alcotest.(check int) "gauge last" 2 last;
    Alcotest.(check int) "gauge peak" 7 peak;
    Alcotest.(check (float 1e-9)) "gauge mean" 4.0 mean;
    Alcotest.(check int) "histo count" 3 count;
    Alcotest.(check int) "histo max" 30 max
  | snap -> Alcotest.failf "unexpected snapshot (%d entries)" (List.length snap)

let test_metrics_dedup_and_kinds () =
  with_registry @@ fun reg ->
  (* same (subsystem, name) from two call sites shares one cell *)
  let a = Metrics.counter ~subsystem:"t" "n" in
  let b = Metrics.counter ~subsystem:"t" "n" in
  Metrics.incr a;
  Metrics.incr b;
  (match Metrics.snapshot reg with
  | [ (_, Metrics.Counter n) ] -> Alcotest.(check int) "aggregated" 2 n
  | _ -> Alcotest.fail "expected one counter");
  (* re-registering under a different kind is a bug, not a new metric *)
  Alcotest.(check bool)
    "kind mismatch rejected" true
    (try
       ignore (Metrics.gauge ~subsystem:"t" "n");
       false
     with Invalid_argument _ -> true)

let test_metrics_dead_handles () =
  (* with no registry installed every handle is inert *)
  Alcotest.(check bool) "nothing installed" true (Metrics.installed () = None);
  let c = Metrics.counter ~subsystem:"t" "x" in
  let h = Metrics.histogram ~subsystem:"t" "y" in
  Metrics.incr c;
  Metrics.record h 5;
  Alcotest.(check bool) "histogram dead" false (Metrics.live h)

(* ------------------------------------------------------------------ *)
(* Spans + metrics in a real run                                       *)

(* a client/server exchange wrapped in Span.timed, as services do *)
let workload h () =
  let ep = Chan.rendezvous ~label:"srv" () in
  let _srv =
    Fiber.spawn ~daemon:true (fun () ->
        let rec loop () =
          let reply = Chan.recv ep in
          Fiber.work 100;
          Chan.send reply 1;
          loop ()
        in
        loop ())
  in
  for _ = 1 to 10 do
    Span.timed ~subsystem:"test" ~name:"call" h (fun () ->
        let reply = Chan.rendezvous () in
        Chan.send ep reply;
        ignore (Chan.recv reply))
  done

let run_traced () =
  let reg = Metrics.create () in
  Metrics.install reg;
  Fun.protect ~finally:Metrics.uninstall (fun () ->
      let sink, get = Trace.collector () in
      let h = Metrics.histogram ~subsystem:"test" "call" in
      let stats =
        Runtime.run
          (Runtime.config ~trace:sink ~seed:7 (Machine.mesh ~cores:4))
          (workload h)
      in
      (stats, get (), Metrics.snapshot reg))

let test_span_pairing () =
  let _, records, snap = run_traced () in
  let begins, ends =
    List.fold_left
      (fun (b, e) r ->
        match r.Trace.event with
        | Trace.Span_begin { subsystem = "test"; span = "call" } -> (b + 1, e)
        | Trace.Span_end { subsystem = "test"; span = "call" } -> (b, e + 1)
        | _ -> (b, e))
      (0, 0) records
  in
  Alcotest.(check int) "10 begins" 10 begins;
  Alcotest.(check int) "10 ends" 10 ends;
  (* the timed wrapper also fed the metrics histogram *)
  (match List.assoc_opt ("test", "call") snap with
  | Some (Metrics.Histo { count; p50; _ }) ->
    Alcotest.(check int) "histo count" 10 count;
    Alcotest.(check bool) "latency positive" true (p50 > 0)
  | _ -> Alcotest.fail "no test/call histogram");
  (* and the profile distills the same pairs *)
  let p = Profile.of_records records in
  match List.assoc_opt ("test", "call") p.Profile.spans with
  | Some h -> Alcotest.(check int) "profile spans" 10 (Chorus_util.Histogram.count h)
  | None -> Alcotest.fail "no span histogram in profile"

let test_profile_matches_engine () =
  let stats, records, _ = run_traced () in
  let p = Profile.of_records records in
  (* every counted message appears exactly once in the flow matrix *)
  Alcotest.(check int) "matrix total = engine msgs"
    stats.Chorus.Runstats.msgs (Profile.messages p);
  (* fibers doing the work show up busiest, and busy time is bounded
     by the run's makespan per fiber *)
  let top = Profile.top_busy p ~n:5 in
  Alcotest.(check bool) "some busy fibers" true (top <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "fiber %d busy <= makespan" f.Profile.fid)
        true
        (f.Profile.busy <= stats.Chorus.Runstats.makespan))
    top

let test_metrics_deterministic () =
  let _, _, snap1 = run_traced () in
  let _, _, snap2 = run_traced () in
  Alcotest.(check bool) "same snapshot across same-seed runs" true
    (snap1 = snap2)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)

(* minimal recursive-descent JSON well-formedness check, so the test
   needs no json library *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let adv () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false
    then begin
      adv ();
      skip_ws ()
    end
  in
  let lit w =
    String.iter
      (fun c ->
        if peek () <> c then fail ();
        adv ())
      w
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      adv ()
    done;
    if !pos = start then fail ()
  in
  let string_ () =
    if peek () <> '"' then fail ();
    adv ();
    let rec go () =
      match peek () with
      | '"' -> adv ()
      | '\\' ->
        adv ();
        adv ();
        go ()
      | _ ->
        adv ();
        go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_ ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and obj () =
    adv ();
    skip_ws ();
    if peek () = '}' then adv ()
    else
      let rec members () =
        skip_ws ();
        string_ ();
        skip_ws ();
        if peek () <> ':' then fail ();
        adv ();
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          adv ();
          members ()
        | '}' -> adv ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    adv ();
    skip_ws ();
    if peek () = ']' then adv ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          adv ();
          elems ()
        | ']' -> adv ()
        | _ -> fail ()
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_chrome_well_formed () =
  let _, records, _ = run_traced () in
  let json = Chrome_trace.to_string records in
  Alcotest.(check bool) "valid JSON" true (json_valid json);
  let contains needle =
    let nl = String.length needle and l = String.length json in
    let rec go i = i + nl <= l && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "names cores" true (contains "core 0");
  Alcotest.(check bool) "has span slices" true (contains "\"call\"")

let test_chrome_deterministic () =
  let _, r1, _ = run_traced () in
  let _, r2, _ = run_traced () in
  Alcotest.(check string) "byte-identical across same-seed runs"
    (Chrome_trace.to_string r1) (Chrome_trace.to_string r2)

let test_chrome_unclosed_span () =
  let records =
    [ mk_record 5 (Trace.Span_begin { subsystem = "t"; span = "orphan" }) ]
  in
  let json = Chrome_trace.to_string records in
  Alcotest.(check bool) "still valid" true (json_valid json);
  let contains needle =
    let nl = String.length needle and l = String.length json in
    let rec go i = i + nl <= l && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "marked unclosed" true (contains "unclosed:")

let test_chrome_escaping () =
  let records =
    [ mk_record 1 (Trace.Custom "quote\" slash\\ newline\n tab\t") ]
  in
  Alcotest.(check bool) "escapes custom payloads" true
    (json_valid (Chrome_trace.to_string records))

(* ------------------------------------------------------------------ *)
(* Default-trace factory                                               *)

let test_default_trace_factory () =
  let made = ref 0 in
  Runtime.set_default_trace
    (Some
       (fun () ->
         incr made;
         fun _ -> ()));
  Fun.protect ~finally:(fun () -> Runtime.set_default_trace None) @@ fun () ->
  let cfg () = Runtime.config ~seed:1 (Machine.mesh ~cores:2) in
  ignore (Runtime.run (cfg ()) (fun () -> Fiber.work 10));
  ignore (Runtime.run (cfg ()) (fun () -> Fiber.work 10));
  Alcotest.(check int) "one sink per run" 2 !made;
  (* explicit sinks win over the ambient factory *)
  let sink, get = Trace.collector () in
  ignore
    (Runtime.run
       (Runtime.config ~trace:sink ~seed:1 (Machine.mesh ~cores:2))
       (fun () -> Fiber.work 10));
  Alcotest.(check int) "explicit sink untouched by factory" 2 !made;
  Alcotest.(check bool) "explicit sink used" true (get () <> [])

let () =
  Alcotest.run "chorus-obs"
    [ ( "ring",
        [ Alcotest.test_case "drop oldest" `Quick test_ring_drop_oldest;
          Alcotest.test_case "under capacity" `Quick test_ring_under_capacity ]
      );
      ( "metrics",
        [ Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "dedup + kinds" `Quick
            test_metrics_dedup_and_kinds;
          Alcotest.test_case "dead handles" `Quick test_metrics_dead_handles;
          Alcotest.test_case "deterministic" `Quick test_metrics_deterministic
        ] );
      ( "spans",
        [ Alcotest.test_case "pairing" `Quick test_span_pairing;
          Alcotest.test_case "profile matches engine" `Quick
            test_profile_matches_engine ] );
      ( "chrome",
        [ Alcotest.test_case "well-formed" `Quick test_chrome_well_formed;
          Alcotest.test_case "deterministic" `Quick test_chrome_deterministic;
          Alcotest.test_case "unclosed span" `Quick test_chrome_unclosed_span;
          Alcotest.test_case "escaping" `Quick test_chrome_escaping ] );
      ( "runtime",
        [ Alcotest.test_case "default trace factory" `Quick
            test_default_trace_factory ] ) ]
