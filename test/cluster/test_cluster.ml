(* Tests for the sharded, replicated KV cluster: shard map purity,
   cold-start elections, durability of acked writes across a leader
   crash, availability under combined loss and crash injection, and
   whole-cluster determinism. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Notify = Chorus_kernel.Notify
module Shardmap = Chorus_cluster.Shardmap
module Raft = Chorus_cluster.Raft
module Cluster = Chorus_cluster.Cluster
module Client = Chorus_cluster.Client

let run ?(seed = 21) ?(cores = 16) main =
  Runtime.run
    (Runtime.config ~policy:(Policy.round_robin ()) ~seed
       (Machine.mesh ~cores))
    main

(* ------------------------------------------------------------------ *)
(* Shard map                                                           *)

let test_shardmap_pure () =
  let nodes = [ 0; 1; 2; 3; 4 ] in
  let a = Shardmap.build ~nshards:16 ~replication:3 nodes in
  let b = Shardmap.build ~nshards:16 ~replication:3 nodes in
  Alcotest.(check string)
    "same nodes, same map" (Shardmap.encode a) (Shardmap.encode b);
  for s = 0 to 15 do
    let g = Shardmap.replicas a s in
    Alcotest.(check int) "replication degree" 3 (Array.length g);
    let distinct = List.sort_uniq compare (Array.to_list g) in
    Alcotest.(check int) "replicas distinct" 3 (List.length distinct)
  done;
  (* every key maps to a shard in range, stably *)
  List.iter
    (fun k ->
      let s = Shardmap.shard_of_key a k in
      Alcotest.(check bool) "shard in range" true (s >= 0 && s < 16);
      Alcotest.(check int) "stable" s (Shardmap.shard_of_key b k))
    [ "alpha"; "beta"; ""; "x"; String.make 100 'q' ]

let test_shardmap_roundtrip () =
  let m = Shardmap.build ~nshards:8 ~replication:2 [ 3; 1; 4; 1; 5 ] in
  match Shardmap.decode (Shardmap.encode m) with
  | None -> Alcotest.fail "decode failed"
  | Some m' ->
    Alcotest.(check int) "version" (Shardmap.version m) (Shardmap.version m');
    Alcotest.(check (list int)) "nodes" (Shardmap.nodes m) (Shardmap.nodes m');
    Alcotest.(check string)
      "re-encodes identically" (Shardmap.encode m) (Shardmap.encode m');
    for s = 0 to 7 do
      Alcotest.(check (list int))
        "group"
        (Array.to_list (Shardmap.replicas m s))
        (Array.to_list (Shardmap.replicas m' s))
    done

let test_shardmap_decode_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (Shardmap.decode "not;a;map" = None);
  Alcotest.(check bool) "empty rejected" true (Shardmap.decode "" = None)

let test_shardmap_spread () =
  (* consistent hashing should touch every node with enough shards *)
  let nodes = [ 0; 1; 2; 3; 4 ] in
  let m = Shardmap.build ~nshards:32 ~replication:3 nodes in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d owns some shard" n)
        true
        (Shardmap.shards_of_node m n <> []))
    nodes

let test_shardmap_lookup_in () =
  (* the RCU read path: lookup_in is pure over a snapshot and agrees
     with the two-step shard_of_key + replicas(...).(0) route *)
  let m = Shardmap.build ~nshards:16 ~replication:3 [ 0; 1; 2; 3; 4 ] in
  List.iter
    (fun k ->
      let s = Shardmap.shard_of_key m k in
      Alcotest.(check int)
        (Printf.sprintf "lookup_in %S = primary of its shard" k)
        (Shardmap.replicas m s).(0)
        (Shardmap.lookup_in m k))
    [ "alpha"; "beta"; ""; "k0000042"; String.make 64 'z' ]

let test_shardmap_chi_squared () =
  (* 64 shards x 1e5 workload-shaped keys: the shard hash must spread
     keys uniformly or one raft group becomes the hot-path bottleneck.
     chi^2 over 63 degrees of freedom has mean 63 and sigma ~11; 150
     is far beyond any plausible good-hash excursion (p < 1e-9) while
     a byte-sum-grade hash scores in the thousands on k%07d keys. *)
  let nshards = 64 and nkeys = 100_000 in
  let m = Shardmap.build ~nshards ~replication:1 [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let counts = Array.make nshards 0 in
  for i = 0 to nkeys - 1 do
    let s = Shardmap.shard_of_key m (Printf.sprintf "k%07d" i) in
    counts.(s) <- counts.(s) + 1
  done;
  let expect = float_of_int nkeys /. float_of_int nshards in
  let chi2 =
    Array.fold_left
      (fun acc n ->
        let d = float_of_int n -. expect in
        acc +. (d *. d /. expect))
      0.0 counts
  in
  Array.iteri
    (fun s n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d non-empty" s)
        true (n > 0))
    counts;
  Alcotest.(check bool)
    (Printf.sprintf "chi^2 %.1f within uniform bounds" chi2)
    true (chi2 < 150.0)

(* ------------------------------------------------------------------ *)
(* Cluster behaviour                                                   *)

let mk_cluster ?raft ?(loss = 0.0) ?(nnodes = 3) ?(nshards = 4)
    ?(replication = 3) ?(seed = 7) () =
  let net = Fabric.create ~latency:5_000 ~loss ~seed () in
  let c = Cluster.create ?raft ~nshards ~replication ~seed ~nnodes net in
  Cluster.start c;
  let cstack = Stack.create net (Fabric.attach net ~label:"client" ()) in
  let client =
    Client.create ~seed ~bootstrap:(Cluster.addrs c) cstack
  in
  (net, c, client)

let test_cold_start_election () =
  let (_ : Runstats.t) =
    run (fun () ->
        let _, c, client = mk_cluster () in
        Fiber.sleep 800_000;
        for s = 0 to Shardmap.nshards (Cluster.map c) - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "shard %d elected a leader" s)
            true
            (Cluster.leader_of c s >= 0)
        done;
        Alcotest.(check bool) "elections ran" true
          (Cluster.elections_started c > 0);
        Alcotest.(check bool) "put acked" true
          (Client.put client "alpha" "1" = `Ok);
        Alcotest.(check bool) "get hit" true
          (Client.get client "alpha" = `Found "1");
        Alcotest.(check bool) "get miss" true
          (Client.get client "absent" = `Miss);
        Cluster.stop c)
  in
  ()

let test_leader_crash_durability () =
  let (_ : Runstats.t) =
    run (fun () ->
        let _, c, client = mk_cluster ~nshards:2 () in
        Fiber.sleep 800_000;
        let key i = Printf.sprintf "key-%03d" i in
        for i = 0 to 9 do
          Alcotest.(check bool)
            (Printf.sprintf "put %d acked" i)
            true
            (Client.put client (key i) (string_of_int i) = `Ok)
        done;
        (* kill the shard-0 leader mid-load *)
        let victim = Cluster.leader_of c 0 in
        Alcotest.(check bool) "shard 0 has a leader" true (victim >= 0);
        let changes_before = Cluster.leader_changes c in
        Cluster.crash_node c victim;
        (* writes continue through the election *)
        for i = 10 to 19 do
          Alcotest.(check bool)
            (Printf.sprintf "put %d acked through failover" i)
            true
            (Client.put client (key i) (string_of_int i) = `Ok)
        done;
        (* a new leader took over the victim's shard; the healed victim
           may legitimately win leadership back later, so the evidence
           of the move is the election counter, not the current holder *)
        Alcotest.(check bool) "shard 0 re-elected" true
          (Cluster.leader_of c 0 >= 0);
        Alcotest.(check bool) "leadership moved" true
          (Cluster.leader_changes c > changes_before);
        (* no acked write was lost; reads are linearizable *)
        for i = 0 to 19 do
          Alcotest.(check bool)
            (Printf.sprintf "read %d survives the crash" i)
            true
            (Client.get client (key i) = `Found (string_of_int i))
        done;
        (* the supervisor healed the node *)
        Fiber.sleep 800_000;
        Alcotest.(check bool) "supervisor restarted the node" true
          (Cluster.restarts c >= 1);
        Alcotest.(check bool) "victim is back up" true
          (Cluster.node_up c victim);
        Cluster.stop c)
  in
  ()

let test_membership_events_published () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:5_000 () in
        let hub = Notify.start () in
        let c =
          Cluster.create ~notify:hub ~nshards:2 ~replication:3 ~seed:7
            ~nnodes:3 net
        in
        let events = Notify.subscribe hub in
        Cluster.start c;
        Fiber.sleep 800_000;
        Cluster.crash_node c (List.hd (Cluster.addrs c));
        Fiber.sleep 800_000;
        let seen = Hashtbl.create 8 in
        let rec drain () =
          match Chorus.Chan.try_recv events with
          | Some (Notify.Custom s) ->
            Hashtbl.replace seen s ();
            drain ()
          | Some _ -> drain ()
          | None -> ()
        in
        drain ();
        let saw prefix =
          Hashtbl.fold
            (fun k () acc ->
              acc
              || String.length k >= String.length prefix
                 && String.sub k 0 (String.length prefix) = prefix)
            seen false
        in
        Alcotest.(check bool) "node up events" true (saw "cluster:node");
        Alcotest.(check bool) "down event for node 0" true
          (Hashtbl.mem seen "cluster:node0:down");
        Alcotest.(check bool) "leader announcements" true
          (saw "cluster:shard");
        Cluster.stop c)
  in
  ()

let test_availability_under_loss_and_crashes () =
  let (_ : Runstats.t) =
    run (fun () ->
        let _, c, client =
          mk_cluster ~loss:0.01 ~nnodes:5 ~nshards:8 ~seed:11 ()
        in
        Fiber.sleep 1_000_000;
        let acked = ref [] in
        let key i = Printf.sprintf "k%04d" i in
        for i = 0 to 149 do
          (* rolling crash injection: one node at a time, round robin *)
          if i mod 50 = 25 then begin
            let victims = Cluster.addrs c in
            let v = List.nth victims (i / 50 mod List.length victims) in
            Cluster.crash_node c v
          end;
          match Client.put client (key i) (string_of_int i) with
          | `Ok -> acked := i :: !acked
          | `Net_fail -> ()
        done;
        let n_acked = List.length !acked in
        (* bounded unavailability: elections are fast relative to the
           client's retry budget, so the vast majority must ack *)
        Alcotest.(check bool)
          (Printf.sprintf "most writes acked (%d/150)" n_acked)
          true (n_acked >= 140);
        (* every acked write is durable and readable *)
        Fiber.sleep 1_000_000;
        List.iter
          (fun i ->
            Alcotest.(check bool)
              (Printf.sprintf "acked %d readable" i)
              true
              (Client.get client (key i) = `Found (string_of_int i)))
          !acked;
        Alcotest.(check bool) "crashes detected" true
          (Cluster.node_crashes c >= 3);
        Alcotest.(check bool) "supervisor healed nodes" true
          (Cluster.restarts c >= 3);
        Cluster.stop c)
  in
  ()

(* Two identical runs of a failover-heavy scenario must agree on every
   observable: op results, elections, virtual time. *)
let cluster_digest () =
  let results = Buffer.create 256 in
  let stats =
    run ~seed:33 (fun () ->
        let _, c, client =
          mk_cluster ~loss:0.02 ~nnodes:3 ~nshards:4 ~seed:13 ()
        in
        Fiber.sleep 800_000;
        for i = 0 to 39 do
          if i = 20 then Cluster.crash_node c (Cluster.leader_of c 0);
          let k = Printf.sprintf "d%d" i in
          (match Client.put client k (string_of_int i) with
          | `Ok -> Buffer.add_string results "A"
          | `Net_fail -> Buffer.add_string results "U");
          match Client.get client k with
          | `Found v -> Buffer.add_string results ("=" ^ v ^ ";")
          | `Miss -> Buffer.add_string results "M;"
          | `Net_fail -> Buffer.add_string results "u;"
        done;
        Buffer.add_string results
          (Printf.sprintf "|elections=%d|changes=%d|t=%d"
             (Cluster.elections_started c)
             (Cluster.leader_changes c)
             (Fiber.now ()));
        Cluster.stop c)
  in
  Buffer.add_string results
    (Printf.sprintf "|makespan=%d|msgs=%d|retries=%d" stats.Runstats.makespan
       stats.Runstats.msgs stats.Runstats.retries);
  Buffer.contents results

let test_same_seed_byte_identical () =
  let a = cluster_digest () in
  let b = cluster_digest () in
  Alcotest.(check string) "same seed, same history" a b

let test_runstats_counts_retries () =
  (* loss forces retransmissions, and they surface in Runstats *)
  let stats =
    run (fun () ->
        let net = Fabric.create ~latency:2_000 ~loss:0.3 ~seed:9 () in
        let a = Stack.create net (Fabric.attach net ()) in
        let b = Stack.create net (Fabric.attach net ()) in
        ignore
          (Fiber.spawn ~daemon:true (fun () ->
               Stack.serve b ~port:50 (fun ~src:_ req -> "re:" ^ req)));
        for i = 1 to 20 do
          ignore
            (Stack.call a ~dst:(Stack.addr b) ~port:50 ~timeout:20_000
               (Printf.sprintf "m%d" i))
        done)
  in
  Alcotest.(check bool) "retries counted in runstats" true
    (stats.Runstats.retries > 0);
  let clean =
    run (fun () ->
        let net = Fabric.create ~latency:2_000 () in
        let a = Stack.create net (Fabric.attach net ()) in
        let b = Stack.create net (Fabric.attach net ()) in
        ignore
          (Fiber.spawn ~daemon:true (fun () ->
               Stack.serve b ~port:50 (fun ~src:_ req -> "re:" ^ req)));
        for i = 1 to 20 do
          ignore
            (Stack.call a ~dst:(Stack.addr b) ~port:50
               (Printf.sprintf "m%d" i))
        done)
  in
  Alcotest.(check int) "no loss, no retries" 0 clean.Runstats.retries

(* ------------------------------------------------------------------ *)
(* Client give-up verdict                                              *)

(* ------------------------------------------------------------------ *)
(* Circuit breakers and op budgets                                     *)

(* A 1-node cluster plus a breaker/budget client.  The client's NIC
   attaches after the node's, so its fabric address is 1 and the
   gray/partition window is the directed link 1 -> 0. *)
let mk_gray_pair ?breaker ?op_budget ~seed () =
  let net = Fabric.create ~latency:5_000 ~seed () in
  let c = Cluster.create ~nshards:2 ~replication:1 ~seed ~nnodes:1 net in
  Cluster.start c;
  let cstack = Stack.create net (Fabric.attach net ~label:"client" ()) in
  let client =
    Client.create ~call_timeout:20_000 ?breaker ?op_budget ~seed:9
      ~bootstrap:(Cluster.addrs c) cstack
  in
  (net, c, client)

let test_breaker_trip_halfopen_close () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net, c, client =
          mk_gray_pair
            ~breaker:{ Client.trip_after = 3; cooldown = 300_000 }
            ~op_budget:80_000 ~seed:7 ()
        in
        Fiber.sleep 800_000;
        Alcotest.(check bool) "healthy put acked" true
          (Client.put client "k" "v1" = `Ok);
        Alcotest.(check bool) "healthy node reads closed" true
          (Client.breaker_state client 0 = `Closed);
        (* the node goes gray: the client's requests to it vanish *)
        Fabric.set_link_faults net ~src:1 ~dst:0 ~partition:true ();
        (match Client.put client "k" "v2" with
        | `Net_fail -> ()
        | `Ok -> Alcotest.fail "put through a partition");
        Alcotest.(check bool) "breaker tripped open" true
          (Client.breaker_state client 0 = `Open);
        Alcotest.(check bool) "trip counted" true
          (Client.breaker_trips client >= 1);
        (* cooldown passes: the breaker reads half-open *)
        Fiber.sleep 400_000;
        Alcotest.(check bool) "cooldown expiry reads half-open" true
          (Client.breaker_state client 0 = `Half_open);
        (* the link heals: the next operation is the probe *)
        Fabric.clear_link_faults net ~src:1 ~dst:0;
        Alcotest.(check bool) "probe succeeds" true
          (Client.put client "k" "v3" = `Ok);
        Alcotest.(check bool) "probe counted" true
          (Client.breaker_probes client >= 1);
        Alcotest.(check bool) "breaker closed again" true
          (Client.breaker_state client 0 = `Closed);
        Alcotest.(check bool) "write-through after recovery" true
          (Client.get client "k" = `Found "v3");
        Cluster.stop c)
  in
  ()

let test_op_budget_bounds_failure_time () =
  let (_ : Runstats.t) =
    run (fun () ->
        let net, c, client =
          mk_gray_pair ~op_budget:50_000 ~seed:8 ()
        in
        Fiber.sleep 800_000;
        Alcotest.(check bool) "healthy put acked" true
          (Client.put client "k" "v1" = `Ok);
        Fabric.set_link_faults net ~src:1 ~dst:0 ~partition:true ();
        let t0 = Fiber.now () in
        (match Client.put client "k" "v2" with
        | `Net_fail -> ()
        | `Ok -> Alcotest.fail "put through a partition");
        let elapsed = Fiber.now () - t0 in
        Alcotest.(check bool)
          (Printf.sprintf "failed fast (%d cycles)" elapsed)
          true
          (elapsed <= 120_000);
        Alcotest.(check bool) "deadline miss counted" true
          (Client.deadline_misses client >= 1);
        Alcotest.(check int) "counted in ops_failed too" 1
          (Client.ops_failed client);
        Cluster.stop c)
  in
  ()

let test_breaker_steers_around_gray_node () =
  (* 3 replicas, the leader of one shard gray to the client only:
     after the breaker trips, routing must steer rotations off that
     node, and operations led by healthy nodes keep succeeding.  All
     assertions happen after the run: a failed check inside the
     simulation would kill the main fiber with the cluster still
     heartbeating, and the run would never quiesce. *)
  let victim = ref (-1)
  and trips = ref 0
  and skips = ref 0
  and state = ref `Closed
  and state_after = ref `Open
  and healed_ok = ref false in
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:5_000 ~seed:7 () in
        let c =
          Cluster.create ~nshards:4 ~replication:3 ~seed:7 ~nnodes:3 net
        in
        Cluster.start c;
        let cstack =
          Stack.create net (Fabric.attach net ~label:"client" ())
        in
        let client =
          Client.create ~call_timeout:20_000
            ~breaker:{ Client.trip_after = 3; cooldown = 2_000_000 }
            ~op_budget:120_000 ~seed:9 ~bootstrap:(Cluster.addrs c) cstack
        in
        Fiber.sleep 1_000_000;
        (* gray the node that actually leads key "hot"'s shard, so
           every op on that key keeps running into the open breaker *)
        let m = Cluster.map c in
        let v = Cluster.leader_of c (Shardmap.shard_of_key m "hot") in
        victim := v;
        if v >= 0 then begin
          Fabric.set_link_faults net ~src:3 ~dst:v ~partition:true ();
          for _ = 1 to 6 do
            match Client.put client "hot" "v" with `Ok | `Net_fail -> ()
          done;
          trips := Client.breaker_trips client;
          skips := Client.breaker_skips client;
          state := Client.breaker_state client v;
          (* heal the link: the next op steers to a follower, whose
             redirect goes straight at the leader (redirect hops bypass
             the breaker — they are the probe), succeeds, and closes it *)
          Fabric.clear_link_faults net ~src:3 ~dst:v;
          healed_ok := Client.put client "hot" "v" = `Ok;
          state_after := Client.breaker_state client v
        end;
        Cluster.stop c)
  in
  Alcotest.(check bool) "shard has a settled leader" true (!victim >= 0);
  Alcotest.(check bool)
    (Printf.sprintf "breaker tripped on the gray node (trips=%d)" !trips)
    true (!trips >= 1);
  Alcotest.(check bool) "gray node reads open" true (!state = `Open);
  Alcotest.(check bool)
    (Printf.sprintf "rotations steered off it (skips=%d)" !skips)
    true (!skips >= 1);
  Alcotest.(check bool) "healed link serves again" true !healed_ok;
  Alcotest.(check bool) "success closes the breaker" true
    (!state_after = `Closed)

let test_client_net_fail_no_cluster () =
  (* no cluster ever starts: every attempt times out and the client
     reports the same typed verdict (and the same name) as
     Netkv.get's give-up — the unified `Net_fail *)
  let (_ : Runstats.t) =
    run (fun () ->
        let net = Fabric.create ~latency:5_000 ~seed:3 () in
        let st = Stack.create net (Fabric.attach net ()) in
        let c =
          Client.create ~attempts:2 ~call_timeout:20_000 ~seed:9
            ~bootstrap:[ 0; 1; 2 ] st
        in
        (match Client.put c "k" "v" with
        | `Net_fail -> ()
        | `Ok -> Alcotest.fail "put acked with no cluster running");
        (match Client.get c "k" with
        | `Net_fail -> ()
        | `Found _ | `Miss ->
          Alcotest.fail "get answered with no cluster running");
        Alcotest.(check int) "both operations counted as failed" 2
          (Client.ops_failed c))
  in
  ()

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Hot path: group commit, leases, pipelining                          *)

let raft_sum c ~nshards f =
  List.fold_left
    (fun acc addr ->
      let s = ref 0 in
      for shard = 0 to nshards - 1 do
        match Cluster.raft_of c ~node:addr ~shard with
        | Some r -> s := !s + f r
        | None -> ()
      done;
      acc + !s)
    0 (Cluster.addrs c)

let test_group_commit_batching () =
  let (_ : Runstats.t) =
    run (fun () ->
        let raft =
          { (Raft.default_config ~seed:7) with
            Raft.batch_window = 10_000;
            max_append = 64 }
        in
        let _, c, client = mk_cluster ~raft () in
        Fiber.sleep 800_000;
        for i = 0 to 29 do
          Alcotest.(check bool)
            (Printf.sprintf "put %d acked" i)
            true
            (Client.put client (Printf.sprintf "bk%d" i) (string_of_int i)
            = `Ok)
        done;
        for i = 0 to 29 do
          Alcotest.(check bool)
            (Printf.sprintf "batched write %d readable" i)
            true
            (Client.get client (Printf.sprintf "bk%d" i)
            = `Found (string_of_int i))
        done;
        Alcotest.(check bool) "group commits happened" true
          (raft_sum c ~nshards:4 Raft.group_commits > 0);
        Cluster.stop c)
  in
  ()

let test_leased_reads_served_locally () =
  let (_ : Runstats.t) =
    run (fun () ->
        let raft =
          { (Raft.default_config ~seed:7) with Raft.lease = true }
        in
        let _, c, client = mk_cluster ~raft () in
        Fiber.sleep 800_000;
        Alcotest.(check bool) "put acked" true
          (Client.put client "lk" "v1" = `Ok);
        for _ = 1 to 10 do
          Alcotest.(check bool) "leased get sees the write" true
            (Client.get client "lk" = `Found "v1")
        done;
        Alcotest.(check bool) "reads served under the lease" true
          (raft_sum c ~nshards:4 Raft.leased_reads > 0);
        (* leases must not serve a value newer writes replaced *)
        Alcotest.(check bool) "overwrite acked" true
          (Client.put client "lk" "v2" = `Ok);
        Alcotest.(check bool) "leased get sees the overwrite" true
          (Client.get client "lk" = `Found "v2");
        Cluster.stop c)
  in
  ()

let test_client_pipeline () =
  let (_ : Runstats.t) =
    run (fun () ->
        let _, c, client = mk_cluster () in
        Fiber.sleep 800_000;
        let pipe = Client.pipeline ~depth:4 client in
        let n = 12 in
        let seqs = ref [] in
        for i = 0 to n - 1 do
          seqs :=
            Client.submit pipe
              (Client.Op_put (Printf.sprintf "pk%d" i, string_of_int i))
            :: !seqs
        done;
        let compl_c = Client.completions pipe in
        for _ = 1 to n do
          let { Client.seq; at; result } = Chan.recv compl_c in
          Alcotest.(check bool) "seq was issued" true (List.mem seq !seqs);
          Alcotest.(check bool) "completion is stamped" true (at > 0);
          match result with
          | `Ok -> ()
          | `Found _ | `Miss | `Net_fail -> Alcotest.fail "put must ack"
        done;
        Alcotest.(check int)
          "seqs dense and unique" (n * (n - 1) / 2)
          (List.fold_left ( + ) 0 !seqs);
        Alcotest.(check int) "window drained" 0 (Client.inflight pipe);
        Alcotest.(check bool) "window was actually used" true
          (Client.inflight_hwm pipe > 1);
        Alcotest.(check bool) "window never exceeded depth" true
          (Client.inflight_hwm pipe <= 4);
        (* pipelined reads observe the pipelined writes *)
        for i = 0 to n - 1 do
          ignore (Client.submit pipe (Client.Op_get (Printf.sprintf "pk%d" i)))
        done;
        let found = ref 0 in
        for _ = 1 to n do
          match (Chan.recv compl_c).Client.result with
          | `Found _ -> incr found
          | `Ok | `Miss | `Net_fail -> ()
        done;
        Alcotest.(check int) "every pipelined write readable" n !found;
        Cluster.stop c)
  in
  ()

let () =
  Alcotest.run "cluster"
    [ ( "shardmap",
        [ Alcotest.test_case "pure function of nodes" `Quick
            test_shardmap_pure;
          Alcotest.test_case "wire roundtrip" `Quick test_shardmap_roundtrip;
          Alcotest.test_case "garbage decode" `Quick
            test_shardmap_decode_garbage;
          Alcotest.test_case "spread over nodes" `Quick test_shardmap_spread;
          Alcotest.test_case "lookup_in agrees with shard_of_key" `Quick
            test_shardmap_lookup_in;
          Alcotest.test_case "chi-squared key distribution" `Quick
            test_shardmap_chi_squared
        ] );
      ( "hot path",
        [ Alcotest.test_case "group commit batches writes" `Quick
            test_group_commit_batching;
          Alcotest.test_case "leased reads served locally" `Quick
            test_leased_reads_served_locally;
          Alcotest.test_case "client pipeline window" `Quick
            test_client_pipeline
        ] );
      ( "cluster",
        [ Alcotest.test_case "cold-start election" `Quick
            test_cold_start_election;
          Alcotest.test_case "leader crash: acked writes survive" `Quick
            test_leader_crash_durability;
          Alcotest.test_case "membership events published" `Quick
            test_membership_events_published;
          Alcotest.test_case "availability under loss + crashes" `Slow
            test_availability_under_loss_and_crashes;
          Alcotest.test_case "client Net_fail with no cluster" `Quick
            test_client_net_fail_no_cluster
        ] );
      ( "breakers",
        [ Alcotest.test_case "trip, half-open, close" `Quick
            test_breaker_trip_halfopen_close;
          Alcotest.test_case "op budget bounds failure time" `Quick
            test_op_budget_bounds_failure_time;
          Alcotest.test_case "steering around a gray node" `Quick
            test_breaker_steers_around_gray_node
        ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, byte-identical run" `Slow
            test_same_seed_byte_identical;
          Alcotest.test_case "runstats retries" `Quick
            test_runstats_counts_retries
        ] )
    ]
