(* The full benchmark harness.

   Part 1 regenerates every "table/figure" of the evaluation (the
   paper is a position paper with no numbered exhibits; DESIGN.md S3
   maps each experiment id to the claim it tests).  Experiments run in
   quick mode here so the whole suite completes in a couple of minutes;
   `bin/chorus_sim run --full` produces the big sweeps.

   Part 2 is a Bechamel micro-benchmark suite over the runtime
   primitives (host-side cost of simulating spawn / send / choice /
   engine events) — one Test.make per experiment family, all in this
   one executable, so simulator performance regressions are visible.

   Usage: main.exe [--tables-only | --bechamel-only] *)

module Experiments = Chorus_experiments.Experiments
module Machine = Chorus_machine.Machine
module Runtime = Chorus.Runtime
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables                                           *)

let run_tables () =
  print_endline "=====================================================";
  print_endline " Chorus evaluation: all experiments (quick mode)";
  print_endline "=====================================================\n";
  List.iter (Experiments.run_and_print ~quick:true ~seed:42) Experiments.all

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks of the simulator itself           *)

let machine = lazy (Machine.mesh ~cores:16)

let sim body () =
  ignore
    (Runtime.run (Runtime.config ~seed:1 (Lazy.force machine)) body)

let bench_spawn =
  Bechamel.Test.make ~name:"e1:spawn+join x100"
    (Bechamel.Staged.stage
       (sim (fun () ->
            for _ = 1 to 100 do
              ignore (Fiber.join (Fiber.spawn (fun () -> ())))
            done)))

let bench_rendezvous =
  Bechamel.Test.make ~name:"e1:rendezvous ping-pong x100"
    (Bechamel.Staged.stage
       (sim (fun () ->
            let c = Chan.rendezvous () and r = Chan.rendezvous () in
            let _echo =
              Fiber.spawn ~daemon:true (fun () ->
                  let rec loop () =
                    Chan.send r (Chan.recv c);
                    loop ()
                  in
                  loop ())
            in
            for i = 1 to 100 do
              Chan.send c i;
              ignore (Chan.recv r)
            done)))

let bench_buffered =
  Bechamel.Test.make ~name:"e5:buffered stream x1000"
    (Bechamel.Staged.stage
       (sim (fun () ->
            let c = Chan.buffered 32 in
            let consumer =
              Fiber.spawn (fun () ->
                  for _ = 1 to 1000 do
                    ignore (Chan.recv c)
                  done)
            in
            for i = 1 to 1000 do
              Chan.send c i
            done;
            ignore (Fiber.join consumer))))

let bench_choice =
  Bechamel.Test.make ~name:"e6:choice over 8 channels x100"
    (Bechamel.Staged.stage
       (sim (fun () ->
            let chans = Array.init 8 (fun _ -> Chan.buffered 4) in
            let _feeder =
              Fiber.spawn ~daemon:true (fun () ->
                  let i = ref 0 in
                  let rec loop () =
                    Chan.send chans.(!i mod 8) !i;
                    incr i;
                    loop ()
                  in
                  loop ())
            in
            for _ = 1 to 100 do
              ignore
                (Chan.choose
                   (Array.to_list
                      (Array.map (fun c -> Chan.recv_case c (fun v -> v))
                         chans)))
            done)))

let bench_sleep_timers =
  Bechamel.Test.make ~name:"engine:1000 timers"
    (Bechamel.Staged.stage
       (sim (fun () ->
            let fibers =
              List.init 100 (fun i ->
                  Fiber.spawn (fun () ->
                      for _ = 1 to 10 do
                        Fiber.sleep (100 + i)
                      done))
            in
            List.iter (fun f -> ignore (Fiber.join f)) fibers)))

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "\n=====================================================";
  print_endline " Bechamel: host-side cost of the simulator primitives";
  print_endline "=====================================================\n";
  let tests =
    Test.make_grouped ~name:"chorus"
      [ bench_spawn; bench_rendezvous; bench_buffered; bench_choice;
        bench_sleep_timers ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | Some [] | None -> ())
    results;
  Printf.printf "%-40s %16s\n" "primitive benchmark" "host ns/run";
  Printf.printf "%s\n" (String.make 57 '-');
  List.iter
    (fun (name, est) -> Printf.printf "%-40s %16.0f\n" name est)
    (List.sort compare !rows)

let () =
  let args = Array.to_list Sys.argv in
  let tables = not (List.mem "--bechamel-only" args) in
  let bech = not (List.mem "--tables-only" args) in
  if tables then run_tables ();
  if bech then run_bechamel ()
