(* Command-line driver: run any experiment at any scale/seed, list the
   catalogue, or dump CSV for plotting. *)

module Experiments = Chorus_experiments.Experiments
module Tablefmt = Chorus_util.Tablefmt

open Cmdliner

let list_cmd =
  let doc = "List all experiments and the paper claims they test." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %-32s %s\n" e.Experiments.id e.Experiments.title
          e.Experiments.claim)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let ids_arg =
  let doc = "Experiment ids (e1..e14), or 'all'." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)

let full_arg =
  let doc = "Full-scale runs (slower, bigger sweeps); default is quick." in
  Arg.(value & flag & info [ "full" ] ~doc)

let seed_arg =
  let doc = "Master random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let csv_arg =
  let doc = "Directory to also dump one CSV per table into." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

let run_cmd =
  let doc = "Run experiments and print their tables." in
  let run ids full seed csv =
    let selected =
      if List.mem "all" ids then Experiments.all
      else
        List.map
          (fun id ->
            match Experiments.find id with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %S (try 'list')\n" id;
              exit 2)
          ids
    in
    List.iter
      (fun e ->
        let quick = not full in
        Printf.printf "--- %s: %s ---\nclaim: %s\n%!"
          (String.uppercase_ascii e.Experiments.id)
          e.Experiments.title e.Experiments.claim;
        let tables = e.Experiments.run ~quick ~seed in
        List.iter
          (fun t ->
            Tablefmt.print t;
            match csv with
            | None -> ()
            | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let file =
                Filename.concat dir
                  (Printf.sprintf "%s_%s.csv" e.Experiments.id
                     (sanitize (Tablefmt.title t)))
              in
              let oc = open_out file in
              output_string oc (Tablefmt.to_csv t);
              close_out oc)
          tables)
      selected
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ ids_arg $ full_arg $ seed_arg $ csv_arg)

(* --------------------------------------------------------------- *)
(* trace: watch the kernel do one file operation, event by event     *)

let trace_cmd =
  let doc =
    "Boot the kernel, perform one file write+read, and dump the \
     scheduler/channel trace."
  in
  let limit_arg =
    Arg.(value & opt int 80 & info [ "limit" ] ~doc:"Max records to print.")
  in
  let go limit =
    let module Machine = Chorus_machine.Machine in
    let module Runtime = Chorus.Runtime in
    let module Trace = Chorus.Trace in
    let module Kernel = Chorus_kernel.Kernel in
    let module Msgvfs = Chorus_kernel.Msgvfs in
    let sink, get = Trace.collector () in
    let stats =
      Runtime.run
        (Runtime.config ~trace:sink ~seed:1 (Machine.mesh ~cores:8))
        (fun () ->
          let kern = Kernel.boot Kernel.default_config in
          let fs = Kernel.fs_client kern in
          ignore (Msgvfs.mkdir fs "/tmp");
          ignore (Msgvfs.create fs "/tmp/hello");
          match Msgvfs.open_ fs "/tmp/hello" with
          | Ok fd ->
            ignore (Msgvfs.write fs fd ~off:0 "traced!");
            ignore (Msgvfs.read fs fd ~off:0 ~len:7)
          | Error _ -> ())
    in
    let records = get () in
    Printf.printf
      "mkdir + create + open + write + read through the message kernel\n\
       (%d trace records total; showing the first %d)\n\n"
      (List.length records) limit;
    List.iteri
      (fun i r ->
        if i < limit then
          Format.printf "%a@." Trace.pp_record r)
      records;
    Printf.printf "\n%d virtual cycles, %d messages, %d fibers spawned\n"
      stats.Chorus.Runstats.makespan stats.Chorus.Runstats.msgs
      stats.Chorus.Runstats.spawns
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const go $ limit_arg)

let () =
  let doc =
    "Chorus: a message-passing multicore OS simulator (HotOS XIII \
     reproduction)"
  in
  let info = Cmd.info "chorus_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; trace_cmd ]))
