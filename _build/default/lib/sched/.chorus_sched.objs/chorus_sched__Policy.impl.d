lib/sched/policy.ml: Chorus_util Hashtbl List
