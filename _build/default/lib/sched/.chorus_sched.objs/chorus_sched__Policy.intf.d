lib/sched/policy.mli: Chorus_util
