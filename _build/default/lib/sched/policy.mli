(** Fiber placement policies.

    Paper Section 5: "Scheduling in general, and the specific problem
    of deciding which threads to place on which cores, and which groups
    of threads to place together on the same core, is likely to present
    a new range of difficulties."  The runtime engine consults a
    [Policy.t] at every spawn (and, when stealing is enabled, whenever
    a core idles) through the read-only [view] of current machine
    state, so policies are pluggable and experiment E8 can compare
    them. *)

type view = {
  cores : int;
  load : int -> int;
      (** runnable fibers currently queued on a core (including the
          one executing) *)
  hops : int -> int -> int;  (** topology distance *)
  rng : Chorus_util.Rng.t;  (** policy-private deterministic stream *)
}

type t

val name : t -> string

val place : t -> view -> parent:int -> affinity:int option -> int
(** [place p v ~parent ~affinity] picks the core for a fiber spawned
    by a fiber running on [parent].  [affinity] is an opaque group key
    ({!Chorus.Fiber.spawn}'s [?affinity]): fibers sharing a key want
    to land together; every policy may use or ignore it. *)

val steal_victim : t -> view -> thief:int -> int option
(** [steal_victim p v ~thief] picks a core to steal from when [thief]
    has run dry, or [None] to stay idle.  Only consulted when the
    policy enables stealing. *)

val steals : t -> bool

(** {1 Policies} *)

val parent : t
(** Children run where their parent runs (no spreading at all). *)

val round_robin : unit -> t
(** Global rotating counter; ignores topology.  Fresh state per call. *)

val random : t
(** Uniformly random core. *)

val least_loaded : t
(** Scan all cores, pick the least loaded (ties to the lowest id);
    models a global run-queue scheduler — itself a scalability risk,
    which E8 exposes as placement cost at high core counts. *)

val locality : ?spill:int -> unit -> t
(** Prefer the parent's core while its queue is shorter than [spill]
    (default 2); otherwise pick the least-loaded core within a small
    neighbourhood, walking outward.  Models hierarchical placement. *)

val work_steal : ?attempts:int -> unit -> t
(** Children start on the parent core; idle cores steal from a random
    victim, probing up to [attempts] (default 4) victims per idle
    event. *)

val affinity_groups : ?fallback:t -> unit -> t
(** Fibers with the same [affinity] key land on the same core (keys
    hash over the cores); fibers without a key fall back to
    [fallback] (default {!round_robin}).  Models gang placement of
    communicating services — paper Section 5: "which groups of threads
    to place together on the same core". *)

val all : unit -> t list
(** One instance of every policy, fresh state, for sweeps. *)
