module Rng = Chorus_util.Rng

type view = {
  cores : int;
  load : int -> int;
  hops : int -> int -> int;
  rng : Rng.t;
}

type t = {
  name : string;
  place : view -> parent:int -> affinity:int option -> int;
  steal_victim : view -> thief:int -> int option;
  steals : bool;
}

let name t = t.name

let place t = t.place

let steal_victim t = t.steal_victim

let steals t = t.steals

let no_steal _ ~thief:_ = None

let parent =
  { name = "parent";
    place = (fun _ ~parent ~affinity:_ -> parent);
    steal_victim = no_steal;
    steals = false }

let round_robin () =
  let next = ref 0 in
  let place v ~parent:_ ~affinity:_ =
    let c = !next mod v.cores in
    next := (!next + 1) mod v.cores;
    c
  in
  { name = "round-robin"; place; steal_victim = no_steal; steals = false }

let random =
  { name = "random";
    place = (fun v ~parent:_ ~affinity:_ -> Rng.int v.rng v.cores);
    steal_victim = no_steal;
    steals = false }

let least_loaded_core v among =
  let best = ref (-1) and best_load = ref max_int in
  List.iter
    (fun c ->
      let l = v.load c in
      if l < !best_load then begin
        best := c;
        best_load := l
      end)
    among;
  !best

let least_loaded =
  let place v ~parent:_ ~affinity:_ =
    least_loaded_core v (List.init v.cores (fun i -> i))
  in
  { name = "least-loaded"; place; steal_victim = no_steal; steals = false }

let locality ?(spill = 2) () =
  (* Stay home while the local queue is short; when spilling, pick the
     least-loaded core among progressively wider rings around the
     parent. *)
  let place v ~parent ~affinity:_ =
    if v.load parent < spill then parent
    else begin
      let rec widen radius =
        if radius > v.cores then parent
        else begin
          let ring =
            List.init v.cores (fun c -> c)
            |> List.filter (fun c -> v.hops parent c <= radius)
          in
          let c = least_loaded_core v ring in
          if c >= 0 && v.load c < spill then c
          else if radius >= v.cores then least_loaded_core v (List.init v.cores (fun i -> i))
          else widen (radius * 2)
        end
      in
      widen 1
    end
  in
  { name = "locality"; place; steal_victim = no_steal; steals = false }

let work_steal ?(attempts = 4) () =
  let steal_victim v ~thief =
    let rec probe n =
      if n = 0 then None
      else begin
        let victim = Rng.int v.rng v.cores in
        if victim <> thief && v.load victim > 1 then Some victim
        else probe (n - 1)
      end
    in
    probe attempts
  in
  { name = "work-steal";
    place = (fun _ ~parent ~affinity:_ -> parent);
    steal_victim;
    steals = true }

let affinity_groups ?fallback () =
  let fallback = match fallback with Some p -> p | None -> round_robin () in
  let place v ~parent ~affinity =
    match affinity with
    | Some key ->
      (* deterministic hash of the group key over the cores *)
      (Hashtbl.hash key * 2654435761) land max_int mod v.cores
    | None -> fallback.place v ~parent ~affinity:None
  in
  { name = "affinity"; place; steal_victim = no_steal; steals = false }

let all () =
  [ parent; round_robin (); random; least_loaded; locality (); work_steal ();
    affinity_groups () ]
