(** Erlang-style process mailbox: unbounded, non-blocking send, with
    selective receive.

    The kernel's autonomous service fibers (vnodes, drivers,
    allocators) each own one mailbox and loop on it; selective receive
    lets a service pull a matching reply out of order while other
    requests wait — the idiom behind Erlang's nine-nines systems the
    paper cites. *)

type 'a t

val create : ?label:string -> unit -> 'a t

val send : ?words:int -> 'a t -> 'a -> unit
(** Never blocks. *)

val recv : 'a t -> 'a
(** Next message in arrival order (stashed messages first). *)

val receive : 'a t -> ('a -> 'b option) -> 'b
(** [receive t match_] returns the first message (in arrival order)
    for which [match_] answers [Some], blocking for new messages as
    needed; non-matching messages are stashed and stay available to
    later calls in their original order. *)

val size : 'a t -> int
(** Messages currently queued (buffered + stashed). *)

val chan : 'a t -> 'a Chan.t
(** The underlying channel (e.g. to pass the endpoint around). *)
