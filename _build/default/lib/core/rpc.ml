type ('req, 'resp) endpoint = ('req * 'resp Chan.t) Chan.t

let endpoint ?label () = Chan.unbounded ?label ()

let call ?words ep req =
  let reply = Chan.buffered 1 in
  Chan.send ?words ep (req, reply);
  Chan.recv reply

let serve ep handler =
  let rec loop () =
    let req, reply = Chan.recv ep in
    Chan.send reply (handler req);
    loop ()
  in
  loop ()

let serve_n n ep handler =
  for _ = 1 to n do
    let req, reply = Chan.recv ep in
    Chan.send reply (handler req)
  done
