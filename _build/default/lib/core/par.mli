(** occam-style structured parallelism (the paper's occam/Transputer
    lineage, Section 1/2).

    [PAR] blocks in occam run a set of processes and join them all;
    these combinators give the same structured shape over fibers, with
    crash propagation: if any branch crashes, the whole combinator
    raises after every branch has finished. *)

exception Branch_failed of string * exn
(** Label of the failed branch and its exception. *)

val par : (unit -> unit) list -> unit
(** Run every thunk in its own fiber (placed by the run's policy),
    wait for all.  The first crash (in completion order) is re-raised
    as {!Branch_failed} after all branches settle. *)

val par_map : ('a -> 'b) -> 'a list -> 'b list
(** Parallel map, preserving order.  Crashes propagate like {!par}. *)

val par_iteri : (int -> 'a -> unit) -> 'a list -> unit

val race : (unit -> 'a) list -> 'a
(** Run all thunks; return the first value to finish and kill the
    rest.  Raises [Invalid_argument] on an empty list; if every branch
    crashes, raises the first crash. *)
