(** Lightweight threads (paper Section 3: "threads are also
    lightweight, so typically starting one is easy").

    These are the user-facing wrappers over {!Engine}; all of them act
    on the ambient engine of the current {!Runtime.run}. *)

type t = Engine.fiber

type exit_status = Engine.exit_status = Normal | Crashed of exn | Killed

type priority = Engine.priority = High | Normal

val spawn :
  ?on:int -> ?affinity:int -> ?label:string -> ?priority:priority ->
  ?daemon:bool -> (unit -> unit) -> t
(** [spawn body] is the paper's [start { body(); }].  Placement
    follows the run's policy unless [?on] pins a core; [?affinity] is
    an opaque gang key for policies that co-locate groups (see
    {!Chorus_sched.Policy.affinity_groups}).  A [daemon] fiber (device
    driver loops, services) does not keep the run alive and is ignored
    by deadlock detection. *)

val self : unit -> t

val id : t -> int

val label : t -> string

val core : t -> int

val yield : unit -> unit

val sleep : int -> unit
(** Block for n cycles without occupying the core. *)

val work : int -> unit
(** Model [n] cycles of pure computation: occupies the core. *)

val join : t -> exit_status
(** Wait for a fiber to exit and return how it exited. *)

val kill : t -> unit
(** Deferred cancellation: a blocked fiber aborts now; a running one
    dies at its next suspension point.  Its [Killed_exn] unwind runs
    normally so protective handlers fire. *)

val monitor : t -> (time:int -> exit_status -> unit) -> unit
(** Supervision hook: the callback runs when (or immediately if) the
    fiber is done. *)

val alive : t -> bool

val now : unit -> int
(** Current virtual time in cycles. *)

val call : (unit -> 'a) -> 'a
(** Model an ordinary procedure call: charges the call cost, then runs
    [f].  Exists so E1 can compare a message against "the same thing
    as a procedure call" under identical accounting. *)
