type config = {
  machine : Chorus_machine.Machine.t;
  policy : Chorus_sched.Policy.t;
  seed : int;
  trace : Trace.sink option;
  max_events : int;
}

let config ?(policy = Chorus_sched.Policy.parent) ?(seed = 42) ?trace
    ?(max_events = 200_000_000) machine =
  { machine; policy; seed; trace; max_events }

let engine_config (c : config) : Engine.config =
  { Engine.machine = c.machine;
    policy = c.policy;
    seed = c.seed;
    trace = c.trace;
    max_events = c.max_events }

let run cfg main =
  let eng = Engine.create (engine_config cfg) in
  Engine.run eng main;
  Runstats.of_engine eng

let run_result cfg main =
  let result = ref None in
  let stats = run cfg (fun () -> result := Some (main ())) in
  match !result with
  | Some v -> (v, stats)
  | None -> assert false
