exception Branch_failed of string * exn

let par thunks =
  let fibers =
    List.mapi
      (fun i thunk -> (i, Fiber.spawn ~label:(Printf.sprintf "par-%d" i) thunk))
      thunks
  in
  let first_crash = ref None in
  List.iter
    (fun (i, f) ->
      match Fiber.join f with
      | Fiber.Normal -> ()
      | Fiber.Killed ->
        if !first_crash = None then
          first_crash := Some (Printf.sprintf "par-%d" i, Engine.Killed_exn)
      | Fiber.Crashed e ->
        if !first_crash = None then
          first_crash := Some (Printf.sprintf "par-%d" i, e))
    fibers;
  match !first_crash with
  | Some (label, e) -> raise (Branch_failed (label, e))
  | None -> ()

let par_map fn xs =
  let results = Array.make (List.length xs) None in
  par
    (List.mapi
       (fun i x () -> results.(i) <- Some (fn x))
       xs);
  Array.to_list results
  |> List.map (function Some v -> v | None -> assert false)

let par_iteri fn xs = par (List.mapi (fun i x () -> fn i x) xs)

let race thunks =
  if thunks = [] then invalid_arg "Par.race: empty";
  let finish = Chan.unbounded () in
  let fibers =
    List.mapi
      (fun i thunk ->
        Fiber.spawn ~label:(Printf.sprintf "race-%d" i) (fun () ->
            match thunk () with
            | v -> Chan.send finish (Ok v)
            | exception e -> Chan.send finish (Error e)))
      thunks
  in
  let n = List.length thunks in
  let rec wait_winner i first_err =
    if i >= n then
      match first_err with Some e -> raise e | None -> assert false
    else
      match Chan.recv finish with
      | Ok v ->
        List.iter Fiber.kill fibers;
        v
      | Error e ->
        wait_winner (i + 1)
          (match first_err with Some _ -> first_err | None -> Some e)
  in
  let v = wait_winner 0 None in
  (* losers unwound by kill; reap them so the run can end cleanly *)
  List.iter (fun f -> ignore (Fiber.join f)) fibers;
  v
