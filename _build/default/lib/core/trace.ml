type event =
  | Spawn of { child : int; on_core : int }
  | Exit of { status : string }
  | Block of { on : string }
  | Wake
  | Send of { chan : int; words : int; remote : bool }
  | Recv of { chan : int }
  | Steal of { victim_core : int; fiber : int }
  | Custom of string

type record = { time : int; core : int; fiber : int; event : event }

type sink = record -> unit

let collector () =
  let buf = ref [] in
  let sink r = buf := r :: !buf in
  (sink, fun () -> List.rev !buf)

let pp_event ppf = function
  | Spawn { child; on_core } ->
    Format.fprintf ppf "spawn child=%d core=%d" child on_core
  | Exit { status } -> Format.fprintf ppf "exit %s" status
  | Block { on } -> Format.fprintf ppf "block on=%s" on
  | Wake -> Format.pp_print_string ppf "wake"
  | Send { chan; words; remote } ->
    Format.fprintf ppf "send chan=%d words=%d remote=%b" chan words remote
  | Recv { chan } -> Format.fprintf ppf "recv chan=%d" chan
  | Steal { victim_core; fiber } ->
    Format.fprintf ppf "steal victim=%d fiber=%d" victim_core fiber
  | Custom s -> Format.pp_print_string ppf s

let pp_record ppf r =
  Format.fprintf ppf "[%8d c%02d f%03d] %a" r.time r.core r.fiber pp_event
    r.event
