lib/core/runstats.ml: Array Engine Format
