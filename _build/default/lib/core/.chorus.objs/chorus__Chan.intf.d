lib/core/chan.mli:
