lib/core/trace.ml: Format List
