lib/core/par.mli:
