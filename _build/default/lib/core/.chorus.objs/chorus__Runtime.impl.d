lib/core/runtime.ml: Chorus_machine Chorus_sched Engine Runstats Trace
