lib/core/engine.ml: Array Buffer Chorus_machine Chorus_sched Chorus_util Effect Fun List Printexc Printf Trace
