lib/core/chan.ml: Array Chorus_machine Chorus_util Engine List Printf Queue Trace
