lib/core/mailbox.ml: Chan List
