lib/core/rpc.mli: Chan
