lib/core/engine.mli: Chorus_machine Chorus_sched Chorus_util Trace
