lib/core/par.ml: Array Chan Engine Fiber List Printf
