lib/core/mailbox.mli: Chan
