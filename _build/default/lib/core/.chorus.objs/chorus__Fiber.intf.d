lib/core/fiber.mli: Engine
