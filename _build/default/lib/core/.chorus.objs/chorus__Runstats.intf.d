lib/core/runstats.mli: Engine Format
