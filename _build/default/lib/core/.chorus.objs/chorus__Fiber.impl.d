lib/core/fiber.ml: Chorus_machine Engine
