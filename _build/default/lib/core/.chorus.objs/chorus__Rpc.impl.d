lib/core/rpc.ml: Chan
