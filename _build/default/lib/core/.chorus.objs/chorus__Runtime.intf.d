lib/core/runtime.mli: Chorus_machine Chorus_sched Runstats Trace
