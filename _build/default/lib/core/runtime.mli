(** Entry point: configure a simulated machine, run a program on it,
    collect statistics. *)

type config = {
  machine : Chorus_machine.Machine.t;
  policy : Chorus_sched.Policy.t;
  seed : int;
  trace : Trace.sink option;
  max_events : int;
}

val config :
  ?policy:Chorus_sched.Policy.t ->
  ?seed:int ->
  ?trace:Trace.sink ->
  ?max_events:int ->
  Chorus_machine.Machine.t ->
  config
(** Defaults: parent placement, seed 42, no trace, 200M-event cap. *)

val run : config -> (unit -> unit) -> Runstats.t
(** [run cfg main] executes [main] as the initial fiber on core 0 of a
    fresh engine and returns the run's statistics once every
    (non-daemon) fiber has finished.  Raises {!Engine.Deadlock} when
    progress stops with blocked fibers, and re-raises an exception that
    crashed the main fiber. *)

val run_result : config -> (unit -> 'a) -> 'a * Runstats.t
(** Like {!run} but also returns the value computed by [main]. *)
