(** Execution tracing.

    When a sink is installed in the runtime config, the engine emits
    one record per scheduling-relevant action.  Tests use this to
    assert ordering properties (e.g. a driver fiber never interleaves
    two requests); the CLI can dump traces for debugging. *)

type event =
  | Spawn of { child : int; on_core : int }
  | Exit of { status : string }
  | Block of { on : string }
  | Wake
  | Send of { chan : int; words : int; remote : bool }
  | Recv of { chan : int }
  | Steal of { victim_core : int; fiber : int }
  | Custom of string

type record = {
  time : int;  (** virtual cycles *)
  core : int;
  fiber : int;
  event : event;
}

type sink = record -> unit

val collector : unit -> sink * (unit -> record list)
(** [collector ()] returns a sink that appends to an in-memory buffer
    and a function retrieving the records in emission order. *)

val pp_record : Format.formatter -> record -> unit
