(** Lightweight typed message channels (paper Section 3).

    A channel is the endpoint object through which fibers exchange
    values.  Three flavours cover the design space the paper discusses:

    - {!rendezvous}: blocking send — "waits until a receiver is
      available", the CSP/occam primitive, "easier to implement in a
      low-level environment (no buffering) and more powerful";
    - {!buffered}: bounded queue — senders block only when full;
    - {!unbounded}: non-blocking send that "queues values for later",
      the Erlang mailbox flavour.

    Channels are first-class values and can themselves be sent through
    channels ("plumb a connection by passing around a channel", paper
    Section 3) — this falls out of the types for free and the kernel's
    file-handle plumbing (D3) relies on it.

    Sends are charged to the sending fiber (injection + payload copy);
    transit and receive-side costs appear as message latency scaled by
    the hop distance between the two fibers' cores.

    {!choose} is the paper's [choice] construct: exactly one of the
    cases executes, whichever becomes ready first.  The default
    implementation is CML-style one-shot commitment (offers carrying a
    shared commit cell are registered with every involved channel); the
    [`Poll] strategy is the naive periodic-polling alternative kept as
    an ablation for experiment E6. *)

type 'a t

exception Closed

(** {1 Construction} *)

val rendezvous : ?label:string -> unit -> 'a t

val buffered : ?label:string -> int -> 'a t
(** [buffered n] has [n] slots, [n >= 1]. *)

val unbounded : ?label:string -> unit -> 'a t

val label : 'a t -> string

val id : 'a t -> int

(** {1 Communication} *)

val send : ?words:int -> 'a t -> 'a -> unit
(** [send c v] delivers [v].  Blocks on a rendezvous channel until a
    receiver takes the value, and on a full buffered channel until a
    slot frees.  [words] is the payload size for cost accounting
    (default 2).  Raises {!Closed} if [c] is closed. *)

val recv : 'a t -> 'a
(** [recv c] takes the next value, blocking while none is available.
    Raises {!Closed} once the channel is closed and drained. *)

val try_send : ?words:int -> 'a t -> 'a -> bool
(** Non-blocking send: [false] instead of blocking. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive: [None] instead of blocking. *)

val close : 'a t -> unit
(** [close c] marks the channel closed and aborts every blocked sender
    and receiver with {!Closed}.  Values already buffered remain
    receivable.  Closing twice is a no-op. *)

val is_closed : 'a t -> bool

val length : 'a t -> int
(** Buffered values currently queued. *)

val waiting_senders : 'a t -> int

val waiting_receivers : 'a t -> int

(** {1 Choice (the [choose] statement)} *)

type 'r case

val recv_case : 'a t -> ('a -> 'r) -> 'r case
(** Ready when a value (or a blocked sender, or a closed mark) is
    available; the handler runs in the choosing fiber. *)

val send_case : ?words:int -> 'a t -> 'a -> (unit -> 'r) -> 'r case
(** Ready when the send can complete without blocking. *)

val after : int -> (unit -> 'r) -> 'r case
(** Ready once [n] cycles have elapsed; the timeout arm. *)

val default : (unit -> 'r) -> 'r case
(** Taken immediately when no other case is ready (makes the whole
    choice non-blocking).  At most one per choice. *)

type strategy = Commit | Poll of int
(** [Commit]: CML-style registration, wake on first ready (default).
    [Poll n]: re-poll every [n] cycles — the naive implementation,
    measurably worse in both latency and burned cycles (E6). *)

val choose : ?strategy:strategy -> 'r case list -> 'r
(** Executes exactly one ready case.  When several are ready at poll
    time the pick is uniform (seeded).  Raises [Invalid_argument] on an
    empty case list. *)
