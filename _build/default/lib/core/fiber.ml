module Cost = Chorus_machine.Cost

type t = Engine.fiber

type exit_status = Engine.exit_status = Normal | Crashed of exn | Killed

type priority = Engine.priority = High | Normal

let spawn ?on ?affinity ?label ?priority ?daemon body =
  Engine.spawn (Engine.current ()) ?on ?affinity ?label ?priority ?daemon body

let self () = Engine.self (Engine.current ())

let id = Engine.fiber_id

let label = Engine.fiber_label

let core = Engine.fiber_core

let yield () = Engine.yield (Engine.current ())

let sleep n = Engine.sleep (Engine.current ()) n

let work n = Engine.charge (Engine.current ()) n

let join f =
  let eng = Engine.current () in
  match Engine.status f with
  | Some st -> st
  | None ->
    Engine.suspend eng ~tag:("join:" ^ Engine.fiber_label f) (fun w ->
        Engine.monitor eng f (fun ~time st -> Engine.wake_at w time st))

let kill f = Engine.kill (Engine.current ()) f

let monitor f cb = Engine.monitor (Engine.current ()) f cb

let alive = Engine.alive

let now () = Engine.now (Engine.current ())

let call f =
  let eng = Engine.current () in
  Engine.charge eng (Engine.costs eng).Cost.call;
  f ()
