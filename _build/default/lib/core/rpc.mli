(** Request/reply over channels.

    Paper Section 3: "A function call [r = f(a, b)] is equivalent,
    given a listener thread on channel c ... to writing
    [c <- (a, b, c1); r <- c1;] where c1 is a fresh channel used to
    send the return value back."  This module is exactly that pattern,
    packaged: the system-call interface of the message kernel is built
    from it, and because the reply channel travels inside the request,
    a server can delegate the request to another fiber and the reply
    still flows directly to the caller (the paper's "plumbing"). *)

type ('req, 'resp) endpoint = ('req * 'resp Chan.t) Chan.t

val endpoint : ?label:string -> unit -> ('req, 'resp) endpoint
(** Unbounded request channel: callers never block on submission. *)

val call : ?words:int -> ('req, 'resp) endpoint -> 'req -> 'resp
(** Send the request with a fresh reply channel, await the reply. *)

val serve : ('req, 'resp) endpoint -> ('req -> 'resp) -> unit
(** Serve requests forever (run it in a daemon fiber).  Exceptions
    raised by the handler crash the server fiber — supervision
    territory, not silently swallowed. *)

val serve_n : int -> ('req, 'resp) endpoint -> ('req -> 'resp) -> unit
(** Serve exactly [n] requests, then return. *)
