lib/util/deque.mli:
