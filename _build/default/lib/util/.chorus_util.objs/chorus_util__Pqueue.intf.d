lib/util/pqueue.mli:
