lib/util/tablefmt.ml: Array Buffer Float Format List Printf String
