lib/util/rng.mli:
