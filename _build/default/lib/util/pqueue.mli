(** Mutable binary min-heap priority queue.

    The discrete-event engine keeps all pending events here, keyed by
    (virtual time, sequence number); the sequence number makes ordering
    of simultaneous events deterministic.  The heap is polymorphic in
    both key and value; keys are compared with a user-supplied total
    order supplied at creation time. *)

type ('k, 'v) t

val create : ?initial_capacity:int -> ('k -> 'k -> int) -> ('k, 'v) t
(** [create cmp] is an empty queue ordered by [cmp] (smallest first). *)

val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** [add t k v] inserts the binding in O(log n). *)

val min : ('k, 'v) t -> ('k * 'v) option
(** [min t] peeks at the smallest binding without removing it. *)

val pop : ('k, 'v) t -> ('k * 'v) option
(** [pop t] removes and returns the smallest binding in O(log n). *)

val pop_exn : ('k, 'v) t -> 'k * 'v
(** [pop_exn t] is [pop] but raises [Invalid_argument] when empty. *)

val clear : ('k, 'v) t -> unit

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** [iter t f] visits every binding in unspecified (heap) order. *)
