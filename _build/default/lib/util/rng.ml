type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: one additive step plus two xor-shift
   multiplies (Steele, Lea & Flood, OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  if bound land (bound - 1) = 0 then
    (* power of two: mask the low bits *)
    Int64.to_int (bits64 t) land (bound - 1)
  else begin
    (* rejection sampling on 62 bits to avoid modulo bias *)
    let rec draw () =
      let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits into [0,1) *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  -. mean *. log1p (-. u)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
