(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic decision in the simulator draws from an explicit
    [Rng.t] so that a run is a pure function of its seed.  SplitMix64 is
    used because it is tiny, fast, passes BigCrush, and supports cheap
    stream splitting, which lets independent subsystems (placement,
    failure injection, workload generation) consume independent streams
    derived from one master seed. *)

type t

val make : int -> t
(** [make seed] creates a generator from a 63-bit seed. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** [bits64 t] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].  [bound]
    must be positive.  Uses rejection sampling, so the result is exactly
    uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform integer in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the
    given mean (inter-arrival times of Poisson processes). *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)

val pick : t -> 'a array -> 'a
(** [pick t a] returns a uniformly chosen element of the non-empty
    array [a]. *)
