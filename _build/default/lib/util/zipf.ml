type t = {
  n : int;
  cdf : float array;  (* cdf.(i) = P(rank <= i) *)
  pmf : float array;
}

let make ~n ~theta =
  assert (n > 0);
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let pmf = Array.map (fun x -> x /. total) w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { n; cdf; pmf }

let n t = t.n

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* binary search for the first index with cdf >= u *)
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then go lo mid else go (mid + 1) hi
    end
  in
  go 0 (t.n - 1)

let probability t rank = t.pmf.(rank)
