(** Log-bucketed latency histogram (HdrHistogram-style).

    Values (cycle counts) are recorded into buckets whose width grows
    geometrically, giving a bounded relative error on reported
    percentiles at O(1) memory.  Sub-bucket resolution is fixed at 32
    sub-buckets per power of two, bounding quantile error to ~3%. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** [record t v] records a non-negative value.  Negative values are
    clamped to 0. *)

val record_n : t -> int -> int -> unit
(** [record_n t v n] records [v] with multiplicity [n]. *)

val count : t -> int

val total : t -> float
(** Sum of recorded values (exact for the recorded representatives). *)

val mean : t -> float

val max_value : t -> int

val min_value : t -> int

val percentile : t -> float -> int
(** [percentile t p] returns the upper bound of the bucket holding the
    p-th percentile (0 < p <= 100).  Returns 0 when empty. *)

val merge : t -> t -> t

val pp_summary : Format.formatter -> t -> unit
(** Prints count, mean, p50, p95, p99, max on one line. *)
