(** Zipfian sampler over [\[0, n)].

    File-server workloads use this to model skewed popularity: a small
    set of hot files receives most operations, which is exactly the
    regime where a global lock or a single hot vnode becomes the
    bottleneck.  Sampling is by inverse transform over the precomputed
    CDF (O(log n) per sample, deterministic given the generator). *)

type t

val make : n:int -> theta:float -> t
(** [make ~n ~theta] prepares a sampler over ranks [0..n-1] with skew
    exponent [theta] ([theta = 0] is uniform; typical skew is 0.8-1.2).
    Rank 0 is the most popular item. *)

val n : t -> int

val sample : t -> Rng.t -> int

val probability : t -> int -> float
(** [probability t rank] is the exact probability mass of [rank]. *)
