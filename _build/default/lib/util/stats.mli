(** Streaming summary statistics (Welford's online algorithm).

    Accumulates count/mean/variance/min/max in O(1) space; used for the
    per-metric summaries printed by the experiment harnesses. *)

type t

val create : unit -> t

val add : t -> float -> unit

val merge : t -> t -> t
(** [merge a b] is the summary of the union of both samples (Chan et
    al.'s parallel variance combination). *)

val count : t -> int

val mean : t -> float
(** [mean t] is [nan] when empty. *)

val variance : t -> float
(** Sample variance (n-1 denominator); [nan] when count < 2. *)

val stddev : t -> float

val min : t -> float
(** [min t] is [infinity] when empty. *)

val max : t -> float
(** [max t] is [neg_infinity] when empty. *)

val total : t -> float

val pp : Format.formatter -> t -> unit
