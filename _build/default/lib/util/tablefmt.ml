type align = Left | Right

type t = {
  title : string;
  columns : (string * align) array;
  mutable rev_rows : string list list;
}

let create ~title ~columns =
  { title; columns = Array.of_list columns; rev_rows = [] }

let add_row t cells =
  if List.length cells <> Array.length t.columns then
    invalid_arg
      (Printf.sprintf "Tablefmt.add_row (%s): %d cells for %d columns"
         t.title (List.length cells) (Array.length t.columns));
  t.rev_rows <- cells :: t.rev_rows

let add_rowf t fmt =
  Format.kasprintf
    (fun s -> add_row t (String.split_on_char '\t' s))
    fmt

let rows t = List.rev t.rev_rows

let title t = t.title

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let to_string t =
  let headers = Array.to_list (Array.map fst t.columns) in
  let all = headers :: rows t in
  let ncols = Array.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let align = if i < ncols then snd t.columns.(i) else Left in
        Buffer.add_string buf (pad align widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  render_row headers;
  let rule_len =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make rule_len '-');
  Buffer.add_char buf '\n';
  List.iter render_row (rows t);
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let render_row row =
    Buffer.add_string buf (String.concat "," (List.map csv_escape row));
    Buffer.add_char buf '\n'
  in
  render_row (Array.to_list (Array.map fst t.columns));
  List.iter render_row (rows t);
  Buffer.contents buf

let print t =
  print_string (to_string t);
  print_newline ()

let cell_float f =
  if Float.is_nan f then "-"
  else if Float.abs (f -. Float.round f) < 1e-9 && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.abs f >= 100.0 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.2f" f

let cell_int = string_of_int
