type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;  (* index of front element *)
  mutable size : int;
}

let create () = { buf = Array.make 16 None; head = 0; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let capacity t = Array.length t.buf

let index t i = (t.head + i) mod capacity t

let grow t =
  let n = capacity t * 2 in
  let buf = Array.make n None in
  for i = 0 to t.size - 1 do
    buf.(i) <- t.buf.(index t i)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  if t.size = capacity t then grow t;
  t.buf.(index t t.size) <- Some x;
  t.size <- t.size + 1

let push_front t x =
  if t.size = capacity t then grow t;
  t.head <- (t.head + capacity t - 1) mod capacity t;
  t.buf.(t.head) <- Some x;
  t.size <- t.size + 1

let pop_front t =
  if t.size = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.size <- t.size - 1;
    x
  end

let pop_back t =
  if t.size = 0 then None
  else begin
    let i = index t (t.size - 1) in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.size <- t.size - 1;
    x
  end

let peek_front t = if t.size = 0 then None else t.buf.(t.head)

let clear t =
  Array.fill t.buf 0 (capacity t) None;
  t.head <- 0;
  t.size <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    match t.buf.(index t i) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
