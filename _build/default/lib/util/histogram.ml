(* Buckets: values < 64 are exact (buckets 0..63); beyond that, each
   power of two is split into [sub] sub-buckets.  Index computation is
   branch-light and total over non-negative ints. *)

let sub = 32
let linear_limit = 64

type t = {
  mutable counts : int array;
  mutable n : int;
  mutable total : float;
  mutable max_v : int;
  mutable min_v : int;
}

let nbuckets = linear_limit + (64 * sub)

let create () =
  { counts = Array.make nbuckets 0; n = 0; total = 0.0; max_v = 0;
    min_v = max_int }

let log2_floor v =
  (* v >= 1 *)
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of v =
  if v < linear_limit then v
  else begin
    let e = log2_floor v in
    (* sub-bucket within [2^e, 2^(e+1)) *)
    let frac = (v - (1 lsl e)) * sub / (1 lsl e) in
    linear_limit + (((e - 6) * sub) + frac)
  end

let upper_bound_of_bucket b =
  if b < linear_limit then b
  else begin
    let b = b - linear_limit in
    let e = (b / sub) + 6 in
    let frac = b mod sub in
    (1 lsl e) + (((frac + 1) * (1 lsl e) / sub) - 1)
  end

let record_n t v n =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + n;
  t.n <- t.n + n;
  t.total <- t.total +. (float_of_int v *. float_of_int n);
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let record t v = record_n t v 1

let count t = t.n

let total t = t.total

let mean t = if t.n = 0 then nan else t.total /. float_of_int t.n

let max_value t = t.max_v

let min_value t = if t.n = 0 then 0 else t.min_v

let percentile t p =
  if t.n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else rank in
    let rec go b seen =
      if b >= nbuckets then t.max_v
      else begin
        let seen = seen + t.counts.(b) in
        if seen >= rank then Stdlib.min (upper_bound_of_bucket b) t.max_v
        else go (b + 1) seen
      end
    in
    go 0 0
  end

let merge a b =
  let t = create () in
  Array.iteri (fun i c -> t.counts.(i) <- c) a.counts;
  Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
  t.n <- a.n + b.n;
  t.total <- a.total +. b.total;
  t.max_v <- Stdlib.max a.max_v b.max_v;
  t.min_v <- Stdlib.min a.min_v b.min_v;
  t

let pp_summary ppf t =
  Format.fprintf ppf "n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d" t.n (mean t)
    (percentile t 50.0) (percentile t 95.0) (percentile t 99.0) t.max_v
