(** Plain-text and CSV rendering of experiment result tables.

    Every experiment harness produces one [t]; the bench driver prints
    it aligned to stdout (the "figure/table" the paper would show) and
    can also dump CSV for external plotting. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row; the cell count must match the
    column count. *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats one row whose cells are separated by
    ['\t'] in the format string. *)

val rows : t -> string list list

val title : t -> string

val to_string : t -> string
(** Aligned plain-text rendering with a header rule. *)

val to_csv : t -> string

val print : t -> unit
(** [print t] writes [to_string t] to stdout followed by a blank
    line. *)

val cell_float : float -> string
(** Compact numeric rendering: integers without decimals, large values
    with thousands separators elided, small values with 2 decimals. *)

val cell_int : int -> string
