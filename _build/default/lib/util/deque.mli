(** Mutable double-ended queue (growable circular buffer).

    Used for per-core run queues: the owning core pushes and pops at the
    back (LIFO for cache warmth is not modelled; FIFO order is used for
    determinism) while work-stealing removes from the front. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit

val push_front : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option

val pop_back : 'a t -> 'a option

val peek_front : 'a t -> 'a option

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] visits elements front to back. *)

val to_list : 'a t -> 'a list
(** [to_list t] lists elements front to back. *)
