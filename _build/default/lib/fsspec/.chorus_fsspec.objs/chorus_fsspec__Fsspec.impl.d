lib/fsspec/fsspec.ml: String
