lib/fsspec/fsmodel.mli: Fsspec
