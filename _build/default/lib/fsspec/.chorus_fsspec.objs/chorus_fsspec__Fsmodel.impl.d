lib/fsspec/fsmodel.ml: Buffer Fsspec Hashtbl List String
