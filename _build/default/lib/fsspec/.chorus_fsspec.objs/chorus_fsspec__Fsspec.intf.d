lib/fsspec/fsspec.mli:
