type node = Dir_node of (string, node) Hashtbl.t | File_node of Buffer.t

type t = {
  root : (string, node) Hashtbl.t;
  fds : (int, Buffer.t) Hashtbl.t;
  mutable next_fd : int;
}

let make () = { root = Hashtbl.create 8; fds = Hashtbl.create 8; next_fd = 3 }

let rec walk dir = function
  | [] -> Ok (Dir_node dir)
  | name :: rest -> (
    match Hashtbl.find_opt dir name with
    | None -> Error Fsspec.Enoent
    | Some (File_node _ as f) ->
      if rest = [] then Ok f else Error Fsspec.Enotdir
    | Some (Dir_node d as n) -> if rest = [] then Ok n else walk d rest)

let resolve t path =
  match Fsspec.split_path path with
  | Error e -> Error e
  | Ok comps -> walk t.root comps

let resolve_parent t path =
  match Fsspec.split_path path with
  | Error e -> Error e
  | Ok [] -> Error Fsspec.Einval
  | Ok comps ->
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | c :: rest -> split_last (c :: acc) rest
    in
    let parents, name = split_last [] comps in
    (match walk t.root parents with
    | Ok (Dir_node d) -> Ok (d, name)
    | Ok (File_node _) -> Error Fsspec.Enotdir
    | Error e -> Error e)

let make_node t path node =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (dir, name) ->
    if Hashtbl.mem dir name then Error Fsspec.Eexist
    else begin
      Hashtbl.replace dir name node;
      Ok ()
    end

let mkdir t path = make_node t path (Dir_node (Hashtbl.create 8))

let create t path = make_node t path (File_node (Buffer.create 16))

let open_ t path =
  match resolve t path with
  | Error e -> Error e
  | Ok (Dir_node _) -> Error Fsspec.Eisdir
  | Ok (File_node b) ->
    let fd = t.next_fd in
    t.next_fd <- fd + 1;
    Hashtbl.replace t.fds fd b;
    Ok fd

let close t fd =
  if Hashtbl.mem t.fds fd then begin
    Hashtbl.remove t.fds fd;
    Ok ()
  end
  else Error Fsspec.Ebadf

let read t fd ~off ~len =
  if off < 0 || len < 0 then Error Fsspec.Einval
  else
    match Hashtbl.find_opt t.fds fd with
    | None -> Error Fsspec.Ebadf
    | Some b ->
      let size = Buffer.length b in
      let off = min off size in
      let len = max 0 (min len (size - off)) in
      Ok (Buffer.sub b off len)

let write t fd ~off data =
  if off < 0 then Error Fsspec.Einval
  else
    match Hashtbl.find_opt t.fds fd with
    | None -> Error Fsspec.Ebadf
    | Some b ->
      let size = Buffer.length b in
      let current = Buffer.contents b in
      Buffer.clear b;
      (* keep prefix, pad a hole with zeroes, splice in the data *)
      if off <= size then Buffer.add_string b (String.sub current 0 off)
      else begin
        Buffer.add_string b current;
        Buffer.add_string b (String.make (off - size) '\000')
      end;
      Buffer.add_string b data;
      let tail = off + String.length data in
      if tail < size then
        Buffer.add_string b (String.sub current tail (size - tail));
      Ok (String.length data)

let stat t path =
  match resolve t path with
  | Error e -> Error e
  | Ok (Dir_node d) ->
    Ok { Fsspec.kind = Fsspec.Dir; size = Hashtbl.length d; blocks = 0 }
  | Ok (File_node b) ->
    let size = Buffer.length b in
    Ok
      { Fsspec.kind = Fsspec.File;
        size;
        blocks = (size + Fsspec.block_size - 1) / Fsspec.block_size }

let unlink t path =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (dir, name) -> (
    match Hashtbl.find_opt dir name with
    | None -> Error Fsspec.Enoent
    | Some (Dir_node d) when Hashtbl.length d > 0 -> Error Fsspec.Enotempty
    | Some (Dir_node _ | File_node _) ->
      Hashtbl.remove dir name;
      Ok ())

let rename t src dst =
  if Fsspec.path_inside ~src ~dst then Error Fsspec.Einval
  else
    match resolve_parent t src with
    | Error e -> Error e
    | Ok (sdir, sname) -> (
      match Hashtbl.find_opt sdir sname with
      | None -> Error Fsspec.Enoent
      | Some node -> (
        match resolve_parent t dst with
        | Error e -> Error e
        | Ok (ddir, dname) ->
          if Hashtbl.mem ddir dname then Error Fsspec.Eexist
          else begin
            Hashtbl.remove sdir sname;
            Hashtbl.replace ddir dname node;
            Ok ()
          end))

let readdir t path =
  match resolve t path with
  | Error e -> Error e
  | Ok (File_node _) -> Error Fsspec.Enotdir
  | Ok (Dir_node d) ->
    Ok (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) d []))
