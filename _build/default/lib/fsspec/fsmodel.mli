(** Pure in-memory reference implementation of {!Fsspec.S}.

    The executable specification: no costs, no concurrency, no blocks —
    just the semantics.  Model-based tests drive random operation
    sequences through this model and through each kernel's VFS and
    require identical answers. *)

type t

val make : unit -> t

include Fsspec.S with type t := t
