lib/baseline/lock.ml: Chorus Chorus_machine Chorus_util Fun
