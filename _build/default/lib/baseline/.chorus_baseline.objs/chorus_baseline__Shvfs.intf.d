lib/baseline/shvfs.mli: Chorus_fsspec Chorus_machine
