lib/baseline/signals.mli:
