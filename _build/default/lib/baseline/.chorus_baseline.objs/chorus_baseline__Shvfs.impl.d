lib/baseline/shvfs.ml: Array Bytes Chorus Chorus_fsspec Chorus_machine Hashtbl List Lock Printf Rwlock String Trap
