lib/baseline/machipc.mli:
