lib/baseline/signals.ml: Chorus Chorus_machine List Trap
