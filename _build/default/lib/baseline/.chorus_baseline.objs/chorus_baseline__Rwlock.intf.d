lib/baseline/rwlock.mli:
