lib/baseline/trap.mli:
