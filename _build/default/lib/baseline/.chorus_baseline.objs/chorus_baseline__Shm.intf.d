lib/baseline/shm.mli:
