lib/baseline/flexsc.ml: Chorus Chorus_machine List
