lib/baseline/lock.mli:
