lib/baseline/rwlock.ml: Chorus Chorus_machine Chorus_util Fun Option
