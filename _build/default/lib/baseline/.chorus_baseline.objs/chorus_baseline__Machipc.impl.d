lib/baseline/machipc.ml: Chorus Chorus_machine
