lib/baseline/shm.ml: Chorus Chorus_machine
