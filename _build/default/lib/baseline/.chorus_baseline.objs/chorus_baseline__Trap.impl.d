lib/baseline/trap.ml: Chorus Chorus_machine Fun
