lib/baseline/flexsc.mli:
