module Engine = Chorus.Engine
module Coherence = Chorus_machine.Coherence

type 'a t = { line : Coherence.line; mutable value : 'a }

let create ?home v = { line = Coherence.line ?home (); value = v }

let my_core eng = Engine.fiber_core (Engine.self eng)

let read t =
  let eng = Engine.current () in
  Engine.charge eng (Coherence.read (Engine.machine eng) t.line (my_core eng));
  t.value

let write t v =
  let eng = Engine.current () in
  Engine.charge eng
    (Coherence.write ~now:(Engine.now eng) (Engine.machine eng) t.line
       (my_core eng));
  t.value <- v

let update t f =
  let eng = Engine.current () in
  Engine.charge eng
    (Coherence.rmw ~now:(Engine.now eng) (Engine.machine eng) t.line
       (my_core eng));
  let old = t.value in
  t.value <- f old;
  old

let peek t = t.value
