(** Simulated shared-memory cells.

    A [Shm.t] is a mutable cell living on a tracked cache line: reads
    and writes by fibers are charged coherence costs according to which
    core last owned the line.  This is the data substrate of the
    baseline kernel — every shared kernel structure the paper says
    "does not scale" is built from these, so its coherence traffic is
    accounted rather than assumed. *)

type 'a t

val create : ?home:int -> 'a -> 'a t
(** [create v] allocates a cell holding [v], line initially homed on
    core [home] (default 0). *)

val read : 'a t -> 'a
(** Charged as a coherence read from the calling fiber's core. *)

val write : 'a t -> 'a -> unit
(** Charged as a coherence write (exclusive ownership + invalidation). *)

val update : 'a t -> ('a -> 'a) -> 'a
(** Atomic read-modify-write (one rmw charge); returns the {e old}
    value. *)

val peek : 'a t -> 'a
(** Read without cost accounting (for assertions and test oracles). *)
