(** Middleweight and synchronous IPC comparators (paper Section 2).

    "Most messages seen in systems are middleweight, comparable to a
    system call or network packet: most microkernel messages and
    distributed OS messages fall into this category.  Mach is the
    canonical example.  (Note however that in some systems, such as
    L4, messages are synchronous; the caller is suspended until a
    response arrives.  These are really procedure calls, not messages
    in the general sense.)"

    Two IPC disciplines implemented over the same channels, with their
    characteristic costs charged:

    - {!Port}: Mach-style asynchronous port IPC — every send and every
      receive is a protection-domain crossing, with a port-right
      lookup and a user/kernel copy on each side;
    - {!Sync}: L4-style synchronous IPC — a combined call that
      direct-switches to the server: one crossing in, one out, no
      buffering (rendezvous semantics).

    E18 lines these up against raw lightweight channels. *)

module Port : sig
  type 'a t

  val create : ?label:string -> ?qlimit:int -> unit -> 'a t
  (** Port with a queue limit (default 16 — Mach's default-ish). *)

  val send : ?words:int -> 'a t -> 'a -> unit

  val recv : 'a t -> 'a

  val rpc : ?words:int -> ('a * 'b t) t -> 'a -> 'b
  (** Request with a reply port inside, Mach style. *)
end

module Sync : sig
  type ('a, 'b) t

  val create : ?label:string -> unit -> ('a, 'b) t

  val call : ?words:int -> ('a, 'b) t -> 'a -> 'b
  (** Blocks until the server replies (the "really a procedure call"
      discipline). *)

  val serve : ('a, 'b) t -> ('a -> 'b) -> unit
  (** Receive, compute, reply, forever. *)
end
