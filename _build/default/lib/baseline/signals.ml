module Engine = Chorus.Engine
module Cost = Chorus_machine.Cost

type proc = {
  mutable queue : (unit -> unit) list;  (** pending handlers, FIFO *)
  mutable waiting : unit Engine.waker option;
  mutable wasted : int;
  mutable delivered : int;
}

let create () = { queue = []; waiting = None; wasted = 0; delivered = 0 }

let deliver p ~handler =
  p.queue <- p.queue @ [ handler ];
  match p.waiting with
  | Some w when Engine.waker_live w ->
    p.waiting <- None;
    let eng = Engine.current () in
    Engine.wake_at w (Engine.now eng) ()
  | Some _ | None -> p.waiting <- None

let pending p = List.length p.queue

let wasted_cycles p = p.wasted

let delivered p = p.delivered

(* Run one pending handler with the delivery cost (signal frame setup,
   handler entry, sigreturn). *)
let run_one_handler eng p =
  match p.queue with
  | [] -> ()
  | h :: rest ->
    p.queue <- rest;
    p.delivered <- p.delivered + 1;
    Engine.charge eng (Engine.costs eng).Cost.signal_deliver;
    h ()

let interruptible_syscall ?(quantum = 500) p ~work =
  let eng = Engine.current () in
  Trap.enter ();
  (* attempt the syscall body; restart from zero on interruption *)
  let rec attempt () =
    let rec step done_ =
      if done_ >= work then ()
      else if p.queue <> [] then begin
        (* abandon: the [done_] cycles already charged are wasted *)
        p.wasted <- p.wasted + done_;
        (* unwind back to the boundary, deliver, then restart *)
        Trap.enter ();
        run_one_handler eng p;
        Trap.enter ();
        attempt ()
      end
      else begin
        let chunk = min quantum (work - done_) in
        Engine.charge eng chunk;
        (* a preemption point is where fresh signals become visible;
           yield so simulated deliveries can land between chunks *)
        Engine.yield eng;
        step (done_ + chunk)
      end
    in
    step 0
  in
  attempt ();
  Trap.enter ()

let wait_signal p =
  let eng = Engine.current () in
  if p.queue = [] then
    Engine.suspend eng ~tag:"sigsuspend" (fun w -> p.waiting <- Some w);
  run_one_handler eng p
