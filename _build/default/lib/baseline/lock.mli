(** Blocking ticket lock with modelled coherence contention.

    The incumbent synchronization primitive the paper argues does not
    scale (Sections 1-2).  Acquisition is an atomic RMW on the lock's
    cache line; a contended acquire parks the fiber FIFO and, on
    hand-off, pays the line transfer from the releasing core — so a
    lock bouncing between distant cores costs more than one bouncing
    within a cluster, and a convoy on a global lock serializes with
    per-hand-off coherence latency.  Statistics feed the scalability
    experiments. *)

type t

val create : ?label:string -> unit -> t

val acquire : t -> unit

val release : t -> unit
(** Raises [Invalid_argument] when the caller does not hold the
    lock. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Exception-safe acquire/release bracket. *)

val holder : t -> int option
(** Fiber id of the current holder. *)

(** {1 Contention statistics} *)

val acquisitions : t -> int

val contended : t -> int
(** Acquisitions that had to wait. *)

val wait_cycles : t -> int
(** Total cycles fibers spent parked on this lock. *)

val label : t -> string
