(** Unix signal delivery, with the unwind-and-restart cost the paper
    singles out (Section 3.1): "If the process or thread receiving a
    signal is working in the kernel, it must abandon and unwind
    everything that was in progress in the kernel to deliver the
    signal.  Then, typically, the process must restart the system call
    and redo all the work it just unwound."

    A {!proc} is the signal context of one fiber.  Kernel work is
    performed through {!interruptible_syscall}, which checks for
    pending signals at preemption points; if one arrived, the progress
    made so far is abandoned (those cycles were already spent), the
    handler runs after the delivery cost, and the system call restarts
    from scratch.  Experiment E7 measures the waste against channel
    notification. *)

type proc

val create : unit -> proc

val deliver : proc -> handler:(unit -> unit) -> unit
(** Post a signal.  If the process is parked in {!wait_signal}, it
    wakes; if it is mid-syscall, the signal takes effect at the next
    preemption point. *)

val interruptible_syscall : ?quantum:int -> proc -> work:int -> unit
(** Perform [work] cycles of in-kernel work in [quantum]-cycle chunks
    (default 500), restarting from zero whenever a signal interrupts.
    Includes the trap/return crossings. *)

val wait_signal : proc -> unit
(** Park (sigsuspend) until at least one signal is delivered, then run
    its handler. *)

val pending : proc -> int

val wasted_cycles : proc -> int
(** Cycles of abandoned in-kernel progress so far (the redo tax). *)

val delivered : proc -> int
