module Engine = Chorus.Engine
module Cost = Chorus_machine.Cost

type t = {
  capacity : int;
  mutable entries : (unit -> unit) list;  (** reversed *)
  mutable batched : int;
  mutable traps : int;
}

let create ?(batch = 32) () =
  if batch < 1 then invalid_arg "Flexsc.create: batch must be >= 1";
  { capacity = batch; entries = []; batched = 0; traps = 0 }

let flush t =
  match t.entries with
  | [] -> ()
  | entries ->
    let eng = Engine.current () in
    let c = Engine.costs eng in
    t.traps <- t.traps + 1;
    Engine.charge eng c.Cost.mode_switch;
    List.iter
      (fun syscall ->
        (* the kernel side reads the entry from the shared page *)
        Engine.charge eng c.Cost.cache_hit;
        syscall ();
        t.batched <- t.batched + 1)
      (List.rev entries);
    t.entries <- [];
    Engine.charge eng c.Cost.mode_switch

let submit t syscall =
  let eng = Engine.current () in
  let c = Engine.costs eng in
  (* writing the request into the shared syscall page *)
  Engine.charge eng (c.Cost.cache_miss / 2);
  t.entries <- syscall :: t.entries;
  if List.length t.entries >= t.capacity then flush t

let batched t = t.batched

let traps t = t.traps
