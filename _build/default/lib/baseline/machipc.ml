module Engine = Chorus.Engine
module Chan = Chorus.Chan
module Cost = Chorus_machine.Cost

(* Charged on every user/kernel boundary crossing of a Mach-style
   operation: the trap pair, the port-right lookup in the kernel's
   capability space, and the message copy across the boundary. *)
let charge_crossing ~words =
  let eng = Engine.current () in
  let c = Engine.costs eng in
  Engine.charge eng
    ((2 * c.Cost.mode_switch) + (2 * c.Cost.cache_miss)
    + (words * c.Cost.msg_per_word))

module Port = struct
  type 'a t = 'a Chan.t

  let create ?(label = "port") ?(qlimit = 16) () = Chan.buffered ~label qlimit

  let send ?(words = 4) port v =
    charge_crossing ~words;
    Chan.send ~words port v

  let recv port =
    charge_crossing ~words:4;
    Chan.recv port

  let rpc ?(words = 4) port req =
    let reply = create ~label:"reply-port" ~qlimit:1 () in
    send ~words port (req, reply);
    recv reply
end

module Sync = struct
  type ('a, 'b) t = ('a * 'b Chan.t) Chan.t

  let create ?(label = "l4-gate") () = Chan.rendezvous ~label ()

  (* the L4 fast path: one crossing into the kernel which
     direct-switches to the server, one crossing back with the reply;
     no copies beyond registers (small words) *)
  let charge_fast ~words =
    let eng = Engine.current () in
    let c = Engine.costs eng in
    Engine.charge eng (c.Cost.mode_switch + (words * c.Cost.msg_per_word))

  let call ?(words = 2) gate req =
    charge_fast ~words;
    let reply = Chan.buffered 1 in
    Chan.send ~words gate (req, reply);
    let r = Chan.recv reply in
    charge_fast ~words:2;
    r

  let serve gate handler =
    let rec loop () =
      let req, reply = Chan.recv gate in
      Chan.send reply (handler req);
      loop ()
    in
    loop ()
end
