(** Reader-writer lock (writer-preferring) with coherence-cost
    accounting, for the baseline kernel's read-mostly structures
    (name cache, mount table). *)

type t

val create : ?label:string -> unit -> t

val acquire_read : t -> unit

val release_read : t -> unit

val acquire_write : t -> unit

val release_write : t -> unit

val with_read : t -> (unit -> 'a) -> 'a

val with_write : t -> (unit -> 'a) -> 'a

val readers : t -> int

val acquisitions : t -> int

val contended : t -> int
