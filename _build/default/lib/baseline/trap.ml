module Engine = Chorus.Engine
module Cost = Chorus_machine.Cost

let enter () =
  let eng = Engine.current () in
  Engine.charge eng (Engine.costs eng).Cost.mode_switch

let syscall f =
  enter ();
  Fun.protect ~finally:enter f
