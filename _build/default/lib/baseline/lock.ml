module Engine = Chorus.Engine
module Deque = Chorus_util.Deque
module Coherence = Chorus_machine.Coherence
module Machine = Chorus_machine.Machine

type waiter = {
  waker : unit Engine.waker;
  enq_time : int;
  core : int;
  fid : int;
}

type t = {
  line : Coherence.line;
  mutable holder : int option;  (** fiber id *)
  mutable holder_core : int;
  mutable free_from : int;
      (** virtual time at which the previous critical section ends.
          Fibers whose segments overlap in virtual time but run
          sequentially on the host serialize on this watermark: the
          later acquirer stalls (is charged) until the lock frees. *)
  waiters : waiter Deque.t;
  lk_label : string;
  mutable acquisitions : int;
  mutable contended : int;
  mutable wait_cycles : int;
}

let create ?(label = "lock") () =
  { line = Coherence.line ();
    holder = None;
    holder_core = 0;
    free_from = 0;
    waiters = Deque.create ();
    lk_label = label;
    acquisitions = 0;
    contended = 0;
    wait_cycles = 0 }

let acquire t =
  let eng = Engine.current () in
  let self = Engine.self eng in
  let me = Engine.fiber_id self in
  let core = Engine.fiber_core self in
  let m = Engine.machine eng in
  (* the ticket fetch is an atomic RMW on the lock line *)
  Engine.charge eng (Coherence.rmw ~now:(Engine.now eng) m t.line core);
  t.acquisitions <- t.acquisitions + 1;
  match t.holder with
  | None ->
    (* free in host order, but possibly still held in virtual time *)
    let now = Engine.now eng in
    if t.free_from > now then begin
      t.contended <- t.contended + 1;
      t.wait_cycles <- t.wait_cycles + (t.free_from - now);
      Engine.charge eng (t.free_from - now)
    end;
    t.holder <- Some me;
    t.holder_core <- core
  | Some _ ->
    t.contended <- t.contended + 1;
    (* a spinning waiter keeps re-reading the line: register as a
       sharer so every hand-off pays invalidation traffic *)
    Engine.charge eng (Coherence.read m t.line core);
    let enq_time = Engine.now eng in
    Engine.suspend eng ~tag:("lock:" ^ t.lk_label) (fun w ->
        Deque.push_back t.waiters
          { waker = w; enq_time; core; fid = me })

(* Hand the lock to the first still-live parked waiter (killed fibers
   are skipped); the new holder observes the release only after the
   lock line travels from the releasing core. *)
let rec hand_off t eng ~from_core =
  match Deque.pop_front t.waiters with
  | None -> t.holder <- None
  | Some w ->
    if Engine.waker_live w.waker then begin
      let m = Engine.machine eng in
      let now = Engine.now eng in
      let delay =
        Machine.transfer_latency m ~owner:from_core ~requester:w.core
      in
      t.holder <- Some w.fid;
      t.holder_core <- w.core;
      t.wait_cycles <- t.wait_cycles + (now + delay - w.enq_time);
      Engine.wake_at w.waker (now + delay) ()
    end
    else hand_off t eng ~from_core

let release t =
  let eng = Engine.current () in
  let self = Engine.self eng in
  let me = Engine.fiber_id self in
  (match t.holder with
  | Some h when h = me -> ()
  | Some _ | None ->
    invalid_arg ("Lock.release: not the holder of " ^ t.lk_label));
  let core = Engine.fiber_core self in
  Engine.charge eng
    (Coherence.write ~now:(Engine.now eng) (Engine.machine eng) t.line core);
  t.free_from <- max t.free_from (Engine.now eng);
  hand_off t eng ~from_core:core

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let holder t = t.holder

let acquisitions t = t.acquisitions

let contended t = t.contended

let wait_cycles t = t.wait_cycles

let label t = t.lk_label
