module Engine = Chorus.Engine
module Deque = Chorus_util.Deque
module Coherence = Chorus_machine.Coherence

type wait_kind = Reader | Writer

type waiter = { waker : unit Engine.waker; kind : wait_kind }

type t = {
  line : Coherence.line;
  mutable active_readers : int;
  mutable writer : bool;
  mutable writer_until : int;
      (** virtual end of the latest writer section (see Lock) *)
  mutable readers_until : int;
      (** virtual end of the latest reader section *)
  waiters : waiter Deque.t;
  rw_label : string;
  mutable acquisitions : int;
  mutable contended : int;
}

let create ?(label = "rwlock") () =
  { line = Coherence.line ();
    active_readers = 0;
    writer = false;
    writer_until = 0;
    readers_until = 0;
    waiters = Deque.create ();
    rw_label = label;
    acquisitions = 0;
    contended = 0 }

let charge_rmw t eng =
  let self = Engine.self eng in
  Engine.charge eng
    (Coherence.rmw ~now:(Engine.now eng) (Engine.machine eng) t.line
       (Engine.fiber_core self))

let writer_queued t =
  let any = ref false in
  Deque.iter (fun w -> if w.kind = Writer then any := true) t.waiters;
  !any

let acquire_read t =
  let eng = Engine.current () in
  charge_rmw t eng;
  t.acquisitions <- t.acquisitions + 1;
  if (not t.writer) && not (writer_queued t) then begin
    (* stall past any virtually in-progress writer section *)
    let now = Engine.now eng in
    if t.writer_until > now then begin
      t.contended <- t.contended + 1;
      Engine.charge eng (t.writer_until - now)
    end;
    t.active_readers <- t.active_readers + 1
  end
  else begin
    t.contended <- t.contended + 1;
    Engine.suspend eng ~tag:("rdlock:" ^ t.rw_label) (fun w ->
        Deque.push_back t.waiters { waker = w; kind = Reader })
  end

let acquire_write t =
  let eng = Engine.current () in
  charge_rmw t eng;
  t.acquisitions <- t.acquisitions + 1;
  if (not t.writer) && t.active_readers = 0 then begin
    let now = Engine.now eng in
    let barrier = max t.writer_until t.readers_until in
    if barrier > now then begin
      t.contended <- t.contended + 1;
      Engine.charge eng (barrier - now)
    end;
    t.writer <- true
  end
  else begin
    t.contended <- t.contended + 1;
    Engine.suspend eng ~tag:("wrlock:" ^ t.rw_label) (fun w ->
        Deque.push_back t.waiters { waker = w; kind = Writer })
  end

(* Wake the next writer, or a batch of leading readers. *)
let rec wake_next t eng =
  match Deque.peek_front t.waiters with
  | None -> ()
  | Some { kind = Writer; _ } ->
    let w = Option.get (Deque.pop_front t.waiters) in
    if Engine.waker_live w.waker then begin
      t.writer <- true;
      Engine.wake_at w.waker (Engine.now eng) ()
    end
    else wake_next t eng
  | Some { kind = Reader; _ } ->
    let rec drain () =
      match Deque.peek_front t.waiters with
      | Some { kind = Reader; _ } ->
        let w = Option.get (Deque.pop_front t.waiters) in
        if Engine.waker_live w.waker then begin
          t.active_readers <- t.active_readers + 1;
          Engine.wake_at w.waker (Engine.now eng) ()
        end;
        drain ()
      | Some { kind = Writer; _ } | None -> ()
    in
    drain ();
    if t.active_readers = 0 then wake_next t eng

let release_read t =
  let eng = Engine.current () in
  charge_rmw t eng;
  if t.active_readers <= 0 then
    invalid_arg ("Rwlock.release_read: no readers on " ^ t.rw_label);
  t.active_readers <- t.active_readers - 1;
  t.readers_until <- max t.readers_until (Engine.now eng);
  if t.active_readers = 0 then wake_next t eng

let release_write t =
  let eng = Engine.current () in
  charge_rmw t eng;
  if not t.writer then
    invalid_arg ("Rwlock.release_write: no writer on " ^ t.rw_label);
  t.writer <- false;
  t.writer_until <- max t.writer_until (Engine.now eng);
  wake_next t eng

let with_read t f =
  acquire_read t;
  Fun.protect ~finally:(fun () -> release_read t) f

let with_write t f =
  acquire_write t;
  Fun.protect ~finally:(fun () -> release_write t) f

let readers t = t.active_readers

let acquisitions t = t.acquisitions

let contended t = t.contended
