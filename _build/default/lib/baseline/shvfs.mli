(** The incumbent: a shared-memory, lock-based VFS (macrokernel
    style).

    Every operation traps into the kernel and walks shared structures
    under locks: a writer-preferring rwlock on the global name cache, a
    global inode-table lock for allocation, per-inode locks, sharded
    buffer-cache locks (held across miss I/O, as in classic BSD), and a
    global free-map lock.  All of these are {!Lock}/{!Rwlock} values,
    so the coherence traffic and convoys that the paper claims will
    strangle this design at hundreds of cores are measured, not
    asserted.

    Implements {!Chorus_fsspec.Fsspec.S}; semantics are identical to
    the message kernel's VFS. *)

type config = {
  ninodes : int;
  nblocks : int;
  cache_blocks : int;  (** buffer-cache capacity *)
  shards : int;  (** buffer-cache lock sharding *)
  trap_per_op : bool;  (** charge mode switches around each call *)
  disk : Chorus_machine.Diskmodel.t;
}

val default_config : config
(** 4096 inodes, 65536 blocks, 1024 cached, 8 shards, traps on. *)

type sys
(** The mounted filesystem (shared kernel state). *)

val make : config -> sys
(** Call from inside a running fiber (it allocates simulated shared
    state). *)

type t
(** One client's view (its fd table). *)

val client : sys -> t

include Chorus_fsspec.Fsspec.S with type t := t

(** {1 Introspection for experiments} *)

val lock_report : sys -> (string * int * int * int) list
(** [(label, acquisitions, contended, wait_cycles)] per major lock. *)

val disk_reads : sys -> int

val disk_writes : sys -> int
