(** FlexSC-style exception-less system calls (Soares & Stumm, OSDI'10;
    paper reference [22]).

    The middle point between trap-per-call and message syscalls:
    requests are written into a shared syscall page (coherence-charged
    writes), then one trap processes the whole batch.  E2 compares all
    three mechanisms. *)

type t

val create : ?batch:int -> unit -> t
(** [batch] is the syscall-page capacity (default 32). *)

val submit : t -> (unit -> unit) -> unit
(** Queue one syscall; flushes automatically when the page fills. *)

val flush : t -> unit
(** Trap once and execute every queued syscall. *)

val batched : t -> int
(** Total syscalls executed through this page so far. *)

val traps : t -> int
(** Total traps taken (flushes). *)
