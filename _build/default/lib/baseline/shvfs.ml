module Engine = Chorus.Engine
module Cost = Chorus_machine.Cost
module Diskmodel = Chorus_machine.Diskmodel
module Fsspec = Chorus_fsspec.Fsspec

type config = {
  ninodes : int;
  nblocks : int;
  cache_blocks : int;
  shards : int;
  trap_per_op : bool;
  disk : Diskmodel.t;
}

let default_config =
  { ninodes = 4096;
    nblocks = 65536;
    cache_blocks = 1024;
    shards = 8;
    trap_per_op = true;
    disk = Diskmodel.default }

(* ------------------------------------------------------------------ *)

type inode = {
  ino : int;
  mutable ikind : Fsspec.kind;
  mutable size : int;
  mutable iblocks : int list;  (** data block numbers, in file order *)
  entries : (string, int) Hashtbl.t;  (** directory contents *)
  ilock : Lock.t;
  mutable allocated : bool;
}

type buf = {
  block : int;
  mutable data : bytes;
  mutable dirty : bool;
  mutable last_use : int;
}

type shard = { slock : Lock.t; bufs : (int, buf) Hashtbl.t; capacity : int }

type sys = {
  cfg : config;
  inodes : inode array;
  itable_lock : Lock.t;
  namecache : (int * string, int) Hashtbl.t;
  nc_lock : Rwlock.t;
  freemap : bool array;  (** true = free *)
  mutable free_hint : int;
  freemap_lock : Lock.t;
  shards : shard array;
  disk_store : (int, bytes) Hashtbl.t;
  disk_lock : Lock.t;
  mutable disk_head : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable tick : int;  (** LRU clock *)
}

type t = { sys : sys; fds : (int, int) Hashtbl.t; mutable next_fd : int }

let make cfg =
  let inode i =
    { ino = i; ikind = Fsspec.Dir; size = 0; iblocks = [];
      entries = Hashtbl.create 8;
      ilock = Lock.create ~label:(Printf.sprintf "inode-%d" i) ();
      allocated = false }
  in
  let sys =
    { cfg;
      inodes = Array.init cfg.ninodes inode;
      itable_lock = Lock.create ~label:"itable" ();
      namecache = Hashtbl.create 256;
      nc_lock = Rwlock.create ~label:"namecache" ();
      freemap = Array.make cfg.nblocks true;
      free_hint = 0;
      freemap_lock = Lock.create ~label:"freemap" ();
      shards =
        Array.init cfg.shards (fun i ->
            { slock = Lock.create ~label:(Printf.sprintf "bcache-%d" i) ();
              bufs = Hashtbl.create 64;
              capacity = max 1 (cfg.cache_blocks / cfg.shards) });
      disk_store = Hashtbl.create 1024;
      disk_lock = Lock.create ~label:"disk" ();
      disk_head = 0;
      disk_reads = 0;
      disk_writes = 0;
      tick = 0 }
  in
  (* inode 0 is the root directory *)
  sys.inodes.(0).allocated <- true;
  sys

let client sys = { sys; fds = Hashtbl.create 16; next_fd = 3 }

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)

let disk_io sys ~write block data =
  Lock.with_lock sys.disk_lock (fun () ->
      let eng = Engine.current () in
      let svc =
        Diskmodel.service_time sys.cfg.disk ~last_block:sys.disk_head ~block
      in
      sys.disk_head <- block;
      Engine.sleep eng svc;
      if write then begin
        sys.disk_writes <- sys.disk_writes + 1;
        Hashtbl.replace sys.disk_store block (Bytes.copy data);
        data
      end
      else begin
        sys.disk_reads <- sys.disk_reads + 1;
        match Hashtbl.find_opt sys.disk_store block with
        | Some d -> Bytes.copy d
        | None -> Bytes.make Fsspec.block_size '\000'
      end)

(* ------------------------------------------------------------------ *)
(* Buffer cache (sharded; shard lock held across miss I/O, as in the
   classic design)                                                     *)

let charge_copy eng bytes_len =
  let c = Engine.costs eng in
  Engine.charge eng (bytes_len / 8 * c.Cost.msg_per_word)

let shard_of sys block = sys.shards.(block mod Array.length sys.shards)

let evict_if_full sys shard =
  if Hashtbl.length shard.bufs >= shard.capacity then begin
    (* evict the least recently used buffer in this shard *)
    let victim = ref None in
    Hashtbl.iter
      (fun _ b ->
        match !victim with
        | None -> victim := Some b
        | Some v -> if b.last_use < v.last_use then victim := Some b)
      shard.bufs;
    match !victim with
    | None -> ()
    | Some b ->
      if b.dirty then ignore (disk_io sys ~write:true b.block b.data);
      Hashtbl.remove shard.bufs b.block
  end

(* a freshly allocated block must not be read from disk: seed the
   cache with zeroes *)
let cache_zero sys block =
  let shard = shard_of sys block in
  Lock.with_lock shard.slock (fun () ->
      sys.tick <- sys.tick + 1;
      evict_if_full sys shard;
      Hashtbl.replace shard.bufs block
        { block; data = Bytes.make Fsspec.block_size '\000'; dirty = true;
          last_use = sys.tick })

let with_block sys block f =
  let eng = Engine.current () in
  let shard = shard_of sys block in
  Lock.with_lock shard.slock (fun () ->
      sys.tick <- sys.tick + 1;
      let buf =
        match Hashtbl.find_opt shard.bufs block with
        | Some b ->
          Engine.charge eng (Engine.costs eng).Cost.cache_hit;
          b
        | None ->
          evict_if_full sys shard;
          let data = disk_io sys ~write:false block Bytes.empty in
          let b = { block; data; dirty = false; last_use = sys.tick } in
          Hashtbl.replace shard.bufs block b;
          b
      in
      buf.last_use <- sys.tick;
      f buf)

(* ------------------------------------------------------------------ *)
(* Block allocation                                                    *)

let alloc_block sys =
  Lock.with_lock sys.freemap_lock (fun () ->
      let eng = Engine.current () in
      let n = Array.length sys.freemap in
      let rec scan tried i =
        if tried >= n then None
        else if sys.freemap.(i) then begin
          sys.freemap.(i) <- false;
          sys.free_hint <- (i + 1) mod n;
          Some i
        end
        else scan (tried + 1) ((i + 1) mod n)
      in
      Engine.charge eng (Engine.costs eng).Cost.cache_miss;
      scan 0 sys.free_hint)

let free_block sys b =
  Lock.with_lock sys.freemap_lock (fun () -> sys.freemap.(b) <- true)

(* ------------------------------------------------------------------ *)
(* Inode allocation                                                    *)

let alloc_inode sys kind =
  Lock.with_lock sys.itable_lock (fun () ->
      let eng = Engine.current () in
      Engine.charge eng (Engine.costs eng).Cost.cache_miss;
      let n = Array.length sys.inodes in
      let rec scan i =
        if i >= n then None
        else if not sys.inodes.(i).allocated then begin
          let ind = sys.inodes.(i) in
          ind.allocated <- true;
          ind.ikind <- kind;
          ind.size <- 0;
          ind.iblocks <- [];
          Hashtbl.reset ind.entries;
          Some ind
        end
        else scan (i + 1)
      in
      scan 1)

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)

let nc_lookup sys dir name =
  Rwlock.with_read sys.nc_lock (fun () ->
      let eng = Engine.current () in
      Engine.charge eng (Engine.costs eng).Cost.cache_hit;
      Hashtbl.find_opt sys.namecache (dir, name))

let nc_insert sys dir name ino =
  Rwlock.with_write sys.nc_lock (fun () ->
      Hashtbl.replace sys.namecache (dir, name) ino)

let nc_invalidate sys dir name =
  Rwlock.with_write sys.nc_lock (fun () ->
      Hashtbl.remove sys.namecache (dir, name))

(* Resolve every component; returns the inode. *)
let rec walk sys cur = function
  | [] -> Ok cur
  | name :: rest ->
    let dir = sys.inodes.(cur) in
    if dir.ikind <> Fsspec.Dir then Error Fsspec.Enotdir
    else begin
      let child =
        match nc_lookup sys cur name with
        | Some ino -> Some ino
        | None ->
          Lock.with_lock dir.ilock (fun () ->
              let eng = Engine.current () in
              Engine.charge eng (2 * (Engine.costs eng).Cost.cache_miss);
              match Hashtbl.find_opt dir.entries name with
              | Some ino ->
                nc_insert sys cur name ino;
                Some ino
              | None -> None)
      in
      match child with
      | Some ino -> walk sys ino rest
      | None -> Error Fsspec.Enoent
    end

let resolve sys path =
  match Fsspec.split_path path with
  | Error e -> Error e
  | Ok comps -> walk sys 0 comps

let resolve_parent sys path =
  match Fsspec.split_path path with
  | Error e -> Error e
  | Ok [] -> Error Fsspec.Einval
  | Ok comps ->
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | c :: rest -> split_last (c :: acc) rest
    in
    let parents, name = split_last [] comps in
    (match walk sys 0 parents with
    | Error e -> Error e
    | Ok dir ->
      if sys.inodes.(dir).ikind <> Fsspec.Dir then Error Fsspec.Enotdir
      else Ok (dir, name))

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let maybe_trap sys f = if sys.cfg.trap_per_op then Trap.syscall f else f ()

let make_node t path kind =
  let sys = t.sys in
  maybe_trap sys (fun () ->
      match resolve_parent sys path with
      | Error e -> Error e
      | Ok (dirno, name) ->
        let dir = sys.inodes.(dirno) in
        if dir.ikind <> Fsspec.Dir then Error Fsspec.Enotdir
        else
          Lock.with_lock dir.ilock (fun () ->
              if Hashtbl.mem dir.entries name then Error Fsspec.Eexist
              else
                match alloc_inode sys kind with
                | None -> Error Fsspec.Enospc
                | Some ind ->
                  Hashtbl.replace dir.entries name ind.ino;
                  nc_insert sys dirno name ind.ino;
                  Ok ()))

let mkdir t path = make_node t path Fsspec.Dir

let create t path = make_node t path Fsspec.File

let open_ t path =
  let sys = t.sys in
  maybe_trap sys (fun () ->
      match resolve sys path with
      | Error e -> Error e
      | Ok ino ->
        if sys.inodes.(ino).ikind <> Fsspec.File then Error Fsspec.Eisdir
        else begin
          let fd = t.next_fd in
          t.next_fd <- fd + 1;
          Hashtbl.replace t.fds fd ino;
          Ok fd
        end)

let close t fd =
  maybe_trap t.sys (fun () ->
      if Hashtbl.mem t.fds fd then begin
        Hashtbl.remove t.fds fd;
        Ok ()
      end
      else Error Fsspec.Ebadf)

let fd_inode t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some ino -> Ok ino
  | None -> Error Fsspec.Ebadf

(* file-order block number covering byte offset [off]; allocating as
   needed when [alloc] *)
let rec nth_block sys ind idx ~alloc =
  let rec nth l i =
    match (l, i) with
    | b :: _, 0 -> Some b
    | _ :: rest, i -> nth rest (i - 1)
    | [], _ -> None
  in
  match nth ind.iblocks idx with
  | Some b -> Ok b
  | None ->
    if not alloc then Error Fsspec.Einval
    else begin
      match alloc_block sys with
      | None -> Error Fsspec.Enospc
      | Some b ->
        cache_zero sys b;
        ind.iblocks <- ind.iblocks @ [ b ];
        (* blocks are appended in order; recurse until idx covered *)
        nth_block sys ind idx ~alloc
    end

let read t fd ~off ~len =
  let sys = t.sys in
  maybe_trap sys (fun () ->
      if off < 0 || len < 0 then Error Fsspec.Einval
      else
        match fd_inode t fd with
        | Error e -> Error e
        | Ok ino ->
          let ind = sys.inodes.(ino) in
          Lock.with_lock ind.ilock (fun () ->
              let eng = Engine.current () in
              let len = max 0 (min len (ind.size - off)) in
              let out = Bytes.create len in
              let bs = Fsspec.block_size in
              let rec copy done_ =
                if done_ >= len then ()
                else begin
                  let pos = off + done_ in
                  let bidx = pos / bs in
                  let boff = pos mod bs in
                  let chunk = min (bs - boff) (len - done_) in
                  (match nth_block sys ind bidx ~alloc:false with
                  | Ok b ->
                    with_block sys b (fun buf ->
                        Bytes.blit buf.data boff out done_ chunk)
                  | Error _ -> Bytes.fill out done_ chunk '\000');
                  copy (done_ + chunk)
                end
              in
              copy 0;
              charge_copy eng len;
              Ok (Bytes.to_string out)))

let write t fd ~off data =
  let sys = t.sys in
  maybe_trap sys (fun () ->
      if off < 0 then Error Fsspec.Einval
      else
        match fd_inode t fd with
        | Error e -> Error e
        | Ok ino ->
          let ind = sys.inodes.(ino) in
          Lock.with_lock ind.ilock (fun () ->
              let eng = Engine.current () in
              let len = String.length data in
              let bs = Fsspec.block_size in
              let rec copy done_ =
                if done_ >= len then Ok len
                else begin
                  let pos = off + done_ in
                  let bidx = pos / bs in
                  let boff = pos mod bs in
                  let chunk = min (bs - boff) (len - done_) in
                  match nth_block sys ind bidx ~alloc:true with
                  | Error e -> Error e
                  | Ok b ->
                    with_block sys b (fun buf ->
                        Bytes.blit_string data done_ buf.data boff chunk;
                        buf.dirty <- true);
                    copy (done_ + chunk)
                end
              in
              match copy 0 with
              | Error e -> Error e
              | Ok n ->
                charge_copy eng len;
                if off + len > ind.size then ind.size <- off + len;
                Ok n))

let stat t path =
  let sys = t.sys in
  maybe_trap sys (fun () ->
      match resolve sys path with
      | Error e -> Error e
      | Ok ino ->
        let ind = sys.inodes.(ino) in
        Ok
          { Fsspec.kind = ind.ikind;
            size =
              (if ind.ikind = Fsspec.Dir then Hashtbl.length ind.entries
               else ind.size);
            blocks = List.length ind.iblocks })

let unlink t path =
  let sys = t.sys in
  maybe_trap sys (fun () ->
      match resolve_parent sys path with
      | Error e -> Error e
      | Ok (dirno, name) ->
        let dir = sys.inodes.(dirno) in
        Lock.with_lock dir.ilock (fun () ->
            match Hashtbl.find_opt dir.entries name with
            | None -> Error Fsspec.Enoent
            | Some ino ->
              let ind = sys.inodes.(ino) in
              Lock.with_lock ind.ilock (fun () ->
                  if
                    ind.ikind = Fsspec.Dir && Hashtbl.length ind.entries > 0
                  then Error Fsspec.Enotempty
                  else begin
                    Hashtbl.remove dir.entries name;
                    nc_invalidate sys dirno name;
                    List.iter (free_block sys) ind.iblocks;
                    ind.iblocks <- [];
                    ind.size <- 0;
                    ind.allocated <- false;
                    Ok ()
                  end)))

let rename t src dst =
  let sys = t.sys in
  maybe_trap sys (fun () ->
      if Fsspec.path_inside ~src ~dst then Error Fsspec.Einval
      else
        match resolve_parent sys src with
        | Error e -> Error e
        | Ok (sdirno, sname) ->
          let sdir = sys.inodes.(sdirno) in
          (* source must exist before the destination resolves (error
             precedence matches the reference model) *)
          if not (Lock.with_lock sdir.ilock (fun () ->
                      Hashtbl.mem sdir.entries sname))
          then Error Fsspec.Enoent
          else (
            match resolve_parent sys dst with
            | Error e -> Error e
            | Ok (ddirno, dname) ->
              let ddir = sys.inodes.(ddirno) in
              (* take both directory locks in inode order so two
                 concurrent renames cannot deadlock *)
              let first, second =
                if sdirno = ddirno then (sdir, None)
                else if sdirno < ddirno then (sdir, Some ddir)
                else (ddir, Some sdir)
              in
              Lock.with_lock first.ilock (fun () ->
                  let locked_body () =
                    match Hashtbl.find_opt sdir.entries sname with
                    | None -> Error Fsspec.Enoent
                    | Some ino ->
                      if Hashtbl.mem ddir.entries dname then
                        Error Fsspec.Eexist
                      else begin
                        Hashtbl.remove sdir.entries sname;
                        Hashtbl.replace ddir.entries dname ino;
                        nc_invalidate sys sdirno sname;
                        nc_insert sys ddirno dname ino;
                        Ok ()
                      end
                  in
                  match second with
                  | None -> locked_body ()
                  | Some snd_dir ->
                    Lock.with_lock snd_dir.ilock locked_body)))

let readdir t path =
  let sys = t.sys in
  maybe_trap sys (fun () ->
      match resolve sys path with
      | Error e -> Error e
      | Ok ino ->
        let ind = sys.inodes.(ino) in
        if ind.ikind <> Fsspec.Dir then Error Fsspec.Enotdir
        else
          Lock.with_lock ind.ilock (fun () ->
              let names = Hashtbl.fold (fun k _ acc -> k :: acc) ind.entries [] in
              Ok (List.sort compare names)))

(* ------------------------------------------------------------------ *)

let lock_report sys =
  let l lk =
    (Lock.label lk, Lock.acquisitions lk, Lock.contended lk,
     Lock.wait_cycles lk)
  in
  [ l sys.itable_lock; l sys.freemap_lock; l sys.disk_lock ]
  @ (Array.to_list sys.shards |> List.map (fun s -> l s.slock))
  @ [ ("namecache", Rwlock.acquisitions sys.nc_lock,
       Rwlock.contended sys.nc_lock, 0) ]

let disk_reads sys = sys.disk_reads

let disk_writes sys = sys.disk_writes
