(** Protection-domain crossings for the conventional kernel.

    Every baseline system call pays a trap into supervisor mode and a
    return; the message kernel pays neither (paper Section 4: "it is no
    longer necessary to transition to kernel mode to make system
    calls").  E2/E3 hinge on this asymmetry being explicit. *)

val syscall : (unit -> 'a) -> 'a
(** [syscall f] charges a mode switch, runs [f] "in the kernel",
    charges the return switch. *)

val enter : unit -> unit
(** One-way crossing (used by the signal-delivery model). *)
