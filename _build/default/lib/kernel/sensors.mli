(** Hardware event sources.

    The paper's Section 3.1 examples of events that "necessarily
    originate in the kernel and flow upward" — thermal readings, power
    transitions, core hot-plug — need an origin.  This service fiber
    samples a synthetic die model on a configurable period and
    publishes onto the {!Notify} hub: a complete in-kernel producer for
    the notification path measured in E7. *)

type config = {
  period : int;  (** cycles between samples *)
  samples : int;  (** 0 = run forever *)
  base_temp : int;
  temp_swing : int;  (** deterministic triangular oscillation *)
  power_every : int;  (** publish a power event every n samples *)
  hotplug_every : int;  (** toggle a core every n samples; 0 = never *)
}

val default_config : config
(** 50k-cycle period, forever, 60±15 degrees, power every 7, no
    hotplug. *)

type t

val start : ?config:config -> Notify.t -> t

val samples_taken : t -> int

val stop : t -> unit
