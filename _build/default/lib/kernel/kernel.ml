module Diskmodel = Chorus_machine.Diskmodel

type config = {
  fs : Msgvfs.config;
  bcache_shards : int;
  cache_blocks : int;
  cgroups : int;
  nblocks : int;
  disk : Diskmodel.t;
}

let default_config =
  { fs = Msgvfs.default_config;
    bcache_shards = 8;
    cache_blocks = 1024;
    cgroups = 8;
    nblocks = 65536;
    disk = Diskmodel.default }

type t = {
  dev : Blockdev.t;
  bcache : Bcache.t;
  alloc : Cgalloc.t;
  vfs : Msgvfs.sys;
  notify : Notify.t;
  proc : Proc.t;
  console : Console.t;
}

let boot cfg =
  let dev = Blockdev.start ~disk:cfg.disk () in
  let bcache =
    Bcache.start ~shards:cfg.bcache_shards ~capacity:cfg.cache_blocks ~dev ()
  in
  let alloc = Cgalloc.start ~groups:cfg.cgroups ~nblocks:cfg.nblocks () in
  let vfs = Msgvfs.mount cfg.fs ~bcache ~alloc in
  let notify = Notify.start () in
  let proc = Proc.start ~notify () in
  let console = Console.start () in
  { dev; bcache; alloc; vfs; notify; proc; console }

let fs_client t = Msgvfs.client t.vfs

let sync t = Bcache.flush t.bcache

let service_fibers t =
  (* drivers *)
  2
  + Bcache.shards t.bcache
  + Cgalloc.groups t.alloc
  + Msgvfs.live_vnodes t.vfs
  + (* notify + proc *) 2
