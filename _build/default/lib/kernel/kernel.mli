(** Boot and wiring for the message-passing OS.

    [boot] assembles the paper's architecture on the current simulated
    machine: the single-fiber disk and console drivers, the block-cache
    shard services, the cylinder-group allocators, the vnode-tree VFS,
    the notification hub, and the process table.  Every component is an
    autonomous daemon fiber reachable only through channels; there is
    not a single lock in this kernel.

    System calls are messages: a client either holds plumbed service
    endpoints directly (aggressive distribution of the "outer
    interface") or goes through dispatcher fibers (conservative) —
    see {!Msgvfs.config}. *)

type config = {
  fs : Msgvfs.config;
  bcache_shards : int;
  cache_blocks : int;
  cgroups : int;
  nblocks : int;
  disk : Chorus_machine.Diskmodel.t;
}

val default_config : config

type t = {
  dev : Blockdev.t;
  bcache : Bcache.t;
  alloc : Cgalloc.t;
  vfs : Msgvfs.sys;
  notify : Notify.t;
  proc : Proc.t;
  console : Console.t;
}

val boot : config -> t
(** Call from inside {!Chorus.Runtime.run}. *)

val fs_client : t -> Msgvfs.t
(** A fresh per-application filesystem view. *)

val sync : t -> unit
(** Flush every dirty cached block to the disk driver (call before
    "powering off" a simulation that cares about the disk image). *)

val service_fibers : t -> int
(** How many kernel service fibers are currently alive (drivers +
    shards + allocators + vnodes + hubs). *)
