(** The aggressive design: applications on bare cores with a libOS.

    Paper Section 4: "one might well run applications directly on a
    bare core with no system services at all underneath.  If an
    application wants e.g. virtual memory services ... it can provide
    them itself or link with system-provided code in libOS fashion."

    A libOS filesystem instance is service code linked {e into} the
    application: operations are direct procedure calls on private
    state — no traps (there is no kernel underneath), no messages (no
    one to talk to), and trivially no lock contention (nothing is
    shared).  The trade: no sharing between applications at all.
    E12 prices this against conservative message syscalls. *)

type t

val make :
  ?ninodes:int -> ?nblocks:int -> ?cache_blocks:int ->
  ?disk:Chorus_machine.Diskmodel.t -> unit -> t
(** A private filesystem for one application. *)

include Chorus_fsspec.Fsspec.S with type t := t
