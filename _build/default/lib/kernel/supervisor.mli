(** Erlang-style supervision trees.

    Paper Section 5: "Partial failure ... becomes a problem whenever
    there are multiple nontrivial autonomous entities.  Making a kernel
    built with lightweight channels fully fail-stop is likely to be a
    challenge.  On the other hand, given some of the experience with
    Erlang it may be feasible to aim for {e not failing} as an
    alternative."

    A supervisor owns a set of child services.  Because a service's
    identity is its {e endpoint channel} — not its fiber — a restarted
    child re-attaches to the same endpoint and clients never notice
    beyond the requests lost in the crash window.  Strategies follow
    OTP: [One_for_one] restarts the crashed child; [One_for_all] kills
    and restarts all children (for services with shared protocol
    state).  A child crashing more than [max_restarts] times within
    [window] cycles escalates: the supervisor gives up, kills
    everything, and exits abnormally itself.  Experiment E10 converts
    restart behaviour into measured availability. *)

type strategy = One_for_one | One_for_all

type child_spec = {
  cname : string;
  cstart : unit -> Chorus.Fiber.t;
      (** spawn (or re-spawn) the service; it must re-use its
          pre-existing endpoint so clients survive the restart *)
}

type t

val start :
  ?max_restarts:int -> ?window:int -> strategy -> child_spec list -> t
(** Defaults: 10 restarts within 10M cycles.  The supervisor itself
    runs as a daemon fiber. *)

val restarts : t -> int
(** Total restarts performed. *)

val restart_log : t -> (int * string) list
(** [(time, child)] per restart, oldest first. *)

val gave_up : t -> bool

val stop : t -> unit
(** Kill all children and the supervisor. *)
