lib/kernel/proc.mli: Notify
