lib/kernel/kernel.mli: Bcache Blockdev Cgalloc Chorus_machine Console Msgvfs Notify Proc
