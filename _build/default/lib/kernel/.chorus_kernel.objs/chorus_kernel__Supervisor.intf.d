lib/kernel/supervisor.mli: Chorus
