lib/kernel/blockdev.ml: Bytes Chorus Chorus_fsspec Chorus_machine Hashtbl
