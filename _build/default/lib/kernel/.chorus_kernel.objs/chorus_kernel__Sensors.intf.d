lib/kernel/sensors.mli: Notify
