lib/kernel/blockdev.mli: Chorus Chorus_machine
