lib/kernel/proc.ml: Chorus Hashtbl List Notify Option
