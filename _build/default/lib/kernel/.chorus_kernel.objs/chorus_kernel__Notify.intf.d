lib/kernel/notify.mli: Chorus
