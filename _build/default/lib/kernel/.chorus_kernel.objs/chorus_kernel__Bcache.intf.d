lib/kernel/bcache.mli: Blockdev
