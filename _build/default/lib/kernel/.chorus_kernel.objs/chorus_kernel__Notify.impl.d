lib/kernel/notify.ml: Chorus List
