lib/kernel/sensors.ml: Chorus Notify
