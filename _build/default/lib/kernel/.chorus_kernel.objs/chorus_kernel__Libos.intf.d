lib/kernel/libos.mli: Chorus_fsspec Chorus_machine
