lib/kernel/msgvfs.ml: Array Bcache Bytes Cgalloc Chorus Chorus_fsspec Hashtbl List Printf Result String
