lib/kernel/msgvfs.mli: Bcache Cgalloc Chorus_fsspec
