lib/kernel/kernel.ml: Bcache Blockdev Cgalloc Chorus_machine Console Msgvfs Notify Proc
