lib/kernel/console.ml: Chorus List String
