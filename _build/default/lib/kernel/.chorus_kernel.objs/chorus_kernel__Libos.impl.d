lib/kernel/libos.ml: Chorus_baseline Chorus_machine
