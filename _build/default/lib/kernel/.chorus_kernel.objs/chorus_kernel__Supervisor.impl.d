lib/kernel/supervisor.ml: Array Chorus Hashtbl List
