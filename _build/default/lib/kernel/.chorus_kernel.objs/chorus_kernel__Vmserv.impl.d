lib/kernel/vmserv.ml: Array Chorus Hashtbl Printf Queue
