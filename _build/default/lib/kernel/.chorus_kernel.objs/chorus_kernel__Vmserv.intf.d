lib/kernel/vmserv.mli:
