lib/kernel/cgalloc.mli:
