lib/kernel/bcache.ml: Array Blockdev Bytes Chorus Chorus_fsspec Hashtbl Printf String
