lib/kernel/cgalloc.ml: Array Chorus Printf Queue
