lib/kernel/console.mli:
