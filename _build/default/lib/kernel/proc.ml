module Fiber = Chorus.Fiber
module Chan = Chorus.Chan

type preq =
  | Register of string * int Chan.t
  | Exited of int * bool
  | Wait of int * bool Chan.t

type t = { inbox : preq Chan.t; notify : Notify.t; mutable spawned : int;
           mutable running : int }

let start ~notify () =
  let t = { inbox = Chan.unbounded ~label:"proc-table" (); notify;
            spawned = 0; running = 0 } in
  ignore
    (Fiber.spawn ~label:"proc-table" ~daemon:true (fun () ->
         let next_pid = ref 1 in
         let status : (int, bool) Hashtbl.t = Hashtbl.create 32 in
         let waiters : (int, bool Chan.t list) Hashtbl.t = Hashtbl.create 8 in
         let rec loop () =
           (match Chan.recv t.inbox with
           | Register (_label, reply) ->
             let pid = !next_pid in
             incr next_pid;
             Chan.send reply pid
           | Exited (pid, ok) ->
             Hashtbl.replace status pid ok;
             Notify.publish t.notify (Notify.App_exit { pid; ok });
             (match Hashtbl.find_opt waiters pid with
             | Some ws ->
               Hashtbl.remove waiters pid;
               List.iter (fun ch -> Chan.send ch ok) ws
             | None -> ())
           | Wait (pid, reply) -> (
             match Hashtbl.find_opt status pid with
             | Some ok -> Chan.send reply ok
             | None ->
               if pid >= !next_pid || pid < 1 then
                 (* never registered: don't leave the waiter hanging *)
                 Chan.send reply false
               else begin
                 let ws =
                   Option.value ~default:[] (Hashtbl.find_opt waiters pid)
                 in
                 Hashtbl.replace waiters pid (reply :: ws)
               end));
           loop ()
         in
         loop ()));
  t

let spawn_app t ?on ~label body =
  let reply = Chan.buffered 1 in
  Chan.send t.inbox (Register (label, reply));
  let pid = Chan.recv reply in
  t.spawned <- t.spawned + 1;
  t.running <- t.running + 1;
  let f = Fiber.spawn ?on ~label (fun () -> body ~pid) in
  Fiber.monitor f (fun ~time:_ st ->
      t.running <- t.running - 1;
      Chan.send t.inbox (Exited (pid, st = Fiber.Normal)));
  pid

let wait t pid =
  let reply = Chan.buffered 1 in
  Chan.send t.inbox (Wait (pid, reply));
  Chan.recv reply

let running t = t.running

let spawned t = t.spawned
