module Shvfs = Chorus_baseline.Shvfs
module Diskmodel = Chorus_machine.Diskmodel

(* Linking the service code into the app means the lock-based
   implementation runs with zero contention and zero traps — the same
   code path minus the kernel boundary, which is exactly the
   aggressive design's cost profile. *)
type t = Shvfs.t

let make ?(ninodes = 1024) ?(nblocks = 16384) ?(cache_blocks = 512)
    ?(disk = Diskmodel.default) () =
  let sys =
    Shvfs.make
      { Shvfs.ninodes; nblocks; cache_blocks; shards = 1;
        trap_per_op = false; disk }
  in
  Shvfs.client sys

let mkdir = Shvfs.mkdir

let create = Shvfs.create

let open_ = Shvfs.open_

let close = Shvfs.close

let read = Shvfs.read

let write = Shvfs.write

let stat = Shvfs.stat

let unlink = Shvfs.unlink

let rename = Shvfs.rename

let readdir = Shvfs.readdir
