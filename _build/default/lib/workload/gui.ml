module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Histogram = Chorus_util.Histogram

type config = {
  input_events : int;
  app_updates : int;
  event_work : int;
  render_work : int;
  input_gap : int;
  update_gap : int;
}

let default_config =
  { input_events = 200;
    app_updates = 200;
    event_work = 400;
    render_work = 600;
    input_gap = 2_000;
    update_gap = 2_500 }

type result = {
  update_latency : Histogram.t;
  input_latency : Histogram.t;
  control_transfers : int;
}

type damage = Input_damage of int | Update_damage of int  (** birth time *)

let run_peer cfg =
  let input_ch = Chan.buffered 8 in
  let damage_ch = Chan.buffered 8 in
  let update_latency = Histogram.create () in
  let input_latency = Histogram.create () in
  let transfers = ref 0 in
  let total_damage = cfg.input_events + cfg.app_updates in
  (* the application: services input and its own update timer with
     choice, as peers *)
  let app =
    Fiber.spawn ~label:"app" (fun () ->
        let inputs_left = ref cfg.input_events in
        let updates_left = ref cfg.app_updates in
        while !inputs_left > 0 || !updates_left > 0 do
          let cases = [] in
          let cases =
            if !inputs_left > 0 then
              Chan.recv_case input_ch (fun stamp ->
                  Fiber.work cfg.event_work;
                  Histogram.record input_latency (Fiber.now () - stamp);
                  decr inputs_left;
                  incr transfers;
                  Chan.send damage_ch (Input_damage stamp))
              :: cases
            else cases
          in
          let cases =
            if !updates_left > 0 then
              Chan.after cfg.update_gap (fun () ->
                  decr updates_left;
                  incr transfers;
                  Chan.send damage_ch (Update_damage (Fiber.now ())))
              :: cases
            else cases
          in
          Chan.choose cases
        done)
  in
  (* the display: generates input, renders damage, also with choice *)
  let display =
    Fiber.spawn ~label:"display" (fun () ->
        let to_send = ref cfg.input_events in
        let rendered = ref 0 in
        while !rendered < total_damage do
          let cases =
            [ Chan.recv_case damage_ch (fun d ->
                  Fiber.work cfg.render_work;
                  incr rendered;
                  match d with
                  | Update_damage birth ->
                    Histogram.record update_latency (Fiber.now () - birth)
                  | Input_damage _ -> ()) ]
          in
          let cases =
            if !to_send > 0 then
              Chan.after cfg.input_gap (fun () ->
                  decr to_send;
                  incr transfers;
                  Chan.send input_ch (Fiber.now ()))
              :: cases
            else cases
          in
          Chan.choose cases
        done)
  in
  ignore (Fiber.join app);
  ignore (Fiber.join display);
  { update_latency; input_latency; control_transfers = !transfers }

let run_hierarchical cfg =
  (* the app is a library under the display's loop: input events call
     down into it synchronously; app-originated updates can only be
     queued (by a timer fiber standing in for the timer interrupt) and
     wait for the display to poll between events *)
  let update_latency = Histogram.create () in
  let input_latency = Histogram.create () in
  let transfers = ref 0 in
  let pending : int Queue.t = Queue.create () in
  let timer =
    Fiber.spawn ~label:"timer" (fun () ->
        for _ = 1 to cfg.app_updates do
          Fiber.sleep cfg.update_gap;
          Queue.push (Fiber.now ()) pending
        done)
  in
  let display =
    Fiber.spawn ~label:"display" (fun () ->
        let app_handle_input stamp =
          (* synchronous call down into the app library *)
          Fiber.call (fun () ->
              Fiber.work cfg.event_work;
              Histogram.record input_latency (Fiber.now () - stamp))
        in
        let poll_updates () =
          incr transfers;
          while not (Queue.is_empty pending) do
            let birth = Queue.pop pending in
            Fiber.work cfg.render_work;
            Histogram.record update_latency (Fiber.now () - birth)
          done
        in
        for _ = 1 to cfg.input_events do
          Fiber.sleep cfg.input_gap;
          let stamp = Fiber.now () in
          app_handle_input stamp;
          Fiber.work cfg.render_work;
          (* only now does the loop get a chance to notice queued
             app-side updates *)
          poll_updates ()
        done;
        (* keep polling until the timer source has drained *)
        while
          Histogram.count update_latency < cfg.app_updates
        do
          Fiber.sleep cfg.input_gap;
          poll_updates ()
        done)
  in
  ignore (Fiber.join timer);
  ignore (Fiber.join display);
  { update_latency; input_latency; control_transfers = !transfers }
