module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rng = Chorus_util.Rng
module Lock = Chorus_baseline.Lock
module Shm = Chorus_baseline.Shm

type config = {
  chunks : int;
  words_per_chunk : int;
  vocabulary : int;
  reducers : int;
  lock_shards : int;
  seed : int;
}

let default_config =
  { chunks = 16;
    words_per_chunk = 500;
    vocabulary = 200;
    reducers = 4;
    lock_shards = 4;
    seed = 11 }

type result = { distinct : int; total : int; checksum : int }

(* word i of chunk c, deterministic in the seed *)
let chunk_words cfg c =
  let rng = Rng.make (cfg.seed + (c * 65537)) in
  Array.init cfg.words_per_chunk (fun _ -> Rng.int rng cfg.vocabulary)

let result_of_counts counts =
  let distinct = ref 0 and total = ref 0 and checksum = ref 0 in
  Hashtbl.iter
    (fun w n ->
      incr distinct;
      total := !total + n;
      checksum := !checksum lxor Hashtbl.hash (w, n))
    counts;
  { distinct = !distinct; total = !total; checksum = !checksum }

(* the per-word CPU cost of "parsing" *)
let parse_cost = 20

let run_messages cfg =
  let to_reducer =
    Array.init cfg.reducers (fun i ->
        Chan.unbounded ~label:(Printf.sprintf "shuffle-%d" i) ())
  in
  let done_ch = Chan.unbounded () in
  let reducer_out = Chan.unbounded () in
  (* reducers *)
  let reducers =
    Array.to_list
      (Array.mapi
         (fun _i ch ->
           Fiber.spawn ~label:"reducer" (fun () ->
               let counts = Hashtbl.create 64 in
               let rec loop () =
                 match Chan.recv ch with
                 | exception Chan.Closed ->
                   Chan.send reducer_out counts
                 | w ->
                   Fiber.work 10;
                   Hashtbl.replace counts w
                     (1 + Option.value ~default:0 (Hashtbl.find_opt counts w));
                   loop ()
               in
               loop ()))
         to_reducer)
  in
  (* mappers *)
  let mappers =
    List.init cfg.chunks (fun c ->
        Fiber.spawn ~label:"mapper" (fun () ->
            let words = chunk_words cfg c in
            Array.iter
              (fun w ->
                Fiber.work parse_cost;
                Chan.send ~words:2 to_reducer.(w mod cfg.reducers) w)
              words;
            Chan.send done_ch ()))
  in
  List.iter (fun f -> ignore (Fiber.join f)) mappers;
  for _ = 1 to cfg.chunks do
    Chan.recv done_ch
  done;
  Array.iter Chan.close to_reducer;
  let merged = Hashtbl.create 256 in
  for _ = 1 to cfg.reducers do
    let counts = Chan.recv reducer_out in
    Hashtbl.iter
      (fun w n ->
        Hashtbl.replace merged w
          (n + Option.value ~default:0 (Hashtbl.find_opt merged w)))
      counts
  done;
  List.iter (fun f -> ignore (Fiber.join f)) reducers;
  result_of_counts merged

let run_shared cfg =
  (* one shared table, sharded locks; every update is a coherence-
     charged RMW on the word's shard *)
  let table : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let locks =
    Array.init cfg.lock_shards (fun i ->
        Lock.create ~label:(Printf.sprintf "wc-shard-%d" i) ())
  in
  let lines = Array.init cfg.lock_shards (fun _ -> Shm.create 0) in
  let mappers =
    List.init cfg.chunks (fun c ->
        Fiber.spawn ~label:"mapper" (fun () ->
            let words = chunk_words cfg c in
            Array.iter
              (fun w ->
                Fiber.work parse_cost;
                let s = w mod cfg.lock_shards in
                Lock.with_lock locks.(s) (fun () ->
                    (* touch the shared line, then update *)
                    ignore (Shm.update lines.(s) (fun x -> x + 1));
                    Fiber.work 10;
                    Hashtbl.replace table w
                      (1
                      + Option.value ~default:0 (Hashtbl.find_opt table w))))
              words))
  in
  List.iter (fun f -> ignore (Fiber.join f)) mappers;
  result_of_counts table
