(** GUI peer-messaging workload (paper Section 3.1 / Newsqueak).

    An application and a display server exchange traffic in {e both}
    directions: input events flow display → app, damage/redraw
    requests flow app → display, and both endpoints also generate
    spontaneous traffic (timers redrawing, async input).

    - {!run_peer}: the paper's structure — two peer fibers, a channel
      each way, [choice] to service whichever direction is ready.
    - {!run_hierarchical}: the conventional structure — the app is a
      library under the display's event loop; app-initiated updates
      can only be queued and are picked up when the display next polls
      between input events, adding latency and control transfers.

    E11 compares latency of app-initiated updates. *)

type config = {
  input_events : int;  (** display-originated events *)
  app_updates : int;  (** app-originated (timer) updates *)
  event_work : int;  (** app compute per input event *)
  render_work : int;  (** display compute per damage *)
  input_gap : int;  (** cycles between input events *)
  update_gap : int;  (** cycles between app timer updates *)
}

val default_config : config

type result = {
  update_latency : Chorus_util.Histogram.t;
      (** app-update birth -> rendered *)
  input_latency : Chorus_util.Histogram.t;  (** input -> handled *)
  control_transfers : int;  (** fiber switches attributable to the
                                structure (messages or polls) *)
}

val run_peer : config -> result

val run_hierarchical : config -> result
