module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Histogram = Chorus_util.Histogram

type config = {
  stages : int;
  items : int;
  work_per_stage : int;
  capacity : int;
  words : int;
  pair_affinity : bool;
}

let default_config =
  { stages = 4; items = 500; work_per_stage = 300; capacity = 4; words = 8;
    pair_affinity = false }

type result = { makespan_hint : int; item_latency : Histogram.t }

let make_chan cfg =
  if cfg.capacity = 0 then Chan.rendezvous ()
  else Chan.buffered cfg.capacity

let run cfg =
  if cfg.stages < 1 then invalid_arg "Pipeline.run: stages >= 1";
  let first = make_chan cfg in
  (* each item carries its injection timestamp *)
  let rec build_stage input n =
    if n = 0 then input
    else begin
      let output = make_chan cfg in
      let affinity = if cfg.pair_affinity then Some (n / 2) else None in
      ignore
        (Fiber.spawn ?affinity ~label:(Printf.sprintf "stage-%d" n) (fun () ->
             let rec loop () =
               match Chan.recv input with
               | exception Chan.Closed -> Chan.close output
               | stamp ->
                 Fiber.work cfg.work_per_stage;
                 Chan.send ~words:cfg.words output stamp;
                 loop ()
             in
             loop ()));
      build_stage output (n - 1)
    end
  in
  let last = build_stage first cfg.stages in
  let latency = Histogram.create () in
  let sink =
    Fiber.spawn ~label:"sink" (fun () ->
        for _ = 1 to cfg.items do
          let stamp = Chan.recv last in
          Histogram.record latency (Fiber.now () - stamp)
        done)
  in
  let t0 = Fiber.now () in
  for _ = 1 to cfg.items do
    Chan.send ~words:cfg.words first (Fiber.now ())
  done;
  ignore (Fiber.join sink);
  let dt = Fiber.now () - t0 in
  Chan.close first;
  { makespan_hint = dt; item_latency = latency }
