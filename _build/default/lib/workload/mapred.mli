(** Map/Reduce word count — the shared-nothing workload.

    Paper Section 1: "Moving to the cloud, we also find that
    Map/Reduce is based on a shared-nothing model."  Two
    implementations of the same computation:

    - {!run_messages}: mappers partition (word, 1) pairs by hash and
      send them to reducer fibers over channels — pure shared-nothing;
    - {!run_shared}: mappers fold into one shared hash table guarded
      by sharded locks on the simulated coherent memory — the
      conventional approach.

    E13 compares their scaling. *)

type config = {
  chunks : int;  (** number of input chunks = mapper count *)
  words_per_chunk : int;
  vocabulary : int;  (** distinct words *)
  reducers : int;
  lock_shards : int;  (** sharding for the shared-memory variant *)
  seed : int;
}

val default_config : config

type result = {
  distinct : int;  (** distinct words counted *)
  total : int;  (** total occurrences (= chunks * words_per_chunk) *)
  checksum : int;  (** order-independent digest of the counts *)
}

val run_messages : config -> result

val run_shared : config -> result
(** Same [result] for the same config/seed — tests assert it. *)
