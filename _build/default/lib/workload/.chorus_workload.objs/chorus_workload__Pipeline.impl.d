lib/workload/pipeline.ml: Chorus Chorus_util Printf
