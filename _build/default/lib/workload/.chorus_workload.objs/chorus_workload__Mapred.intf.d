lib/workload/mapred.mli:
