lib/workload/faults.ml: Chorus Chorus_util List
