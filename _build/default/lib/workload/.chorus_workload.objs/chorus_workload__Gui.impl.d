lib/workload/gui.ml: Chorus Chorus_util Queue
