lib/workload/pipeline.mli: Chorus_util
