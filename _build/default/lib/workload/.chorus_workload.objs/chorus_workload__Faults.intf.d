lib/workload/faults.mli: Chorus
