lib/workload/mapred.ml: Array Chorus Chorus_baseline Chorus_util Hashtbl List Option Printf
