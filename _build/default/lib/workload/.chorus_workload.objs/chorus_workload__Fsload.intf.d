lib/workload/fsload.mli: Chorus_fsspec Chorus_util
