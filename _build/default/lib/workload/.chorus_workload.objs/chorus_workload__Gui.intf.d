lib/workload/gui.mli: Chorus_util
