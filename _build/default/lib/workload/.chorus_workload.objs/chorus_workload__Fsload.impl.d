lib/workload/fsload.ml: Char Chorus Chorus_fsspec Chorus_util Hashtbl List Option Printf Result String
