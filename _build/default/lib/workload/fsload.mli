(** File-server workload generator.

    Drives any {!Chorus_fsspec.Fsspec.S} implementation with a
    configurable operation mix over a Zipf-skewed file population —
    the server-style load the paper's scalability argument is about.
    Deterministic in the seed; per-operation latency histograms are
    collected per client and merged. *)

type mix = {
  read_ : int;
  write_ : int;
  stat_ : int;
  create_unlink : int;  (** paired create+unlink of a private file *)
}
(** Relative weights. *)

val default_mix : mix
(** 60 read / 25 write / 10 stat / 5 create+unlink. *)

type config = {
  clients : int;
  ops_per_client : int;
  files : int;  (** shared file population size *)
  dirs : int;  (** directories the population spreads over *)
  file_size : int;  (** bytes preloaded per file *)
  io_size : int;  (** bytes per read/write *)
  theta : float;  (** Zipf skew; 0.0 = uniform *)
  mix : mix;
  think : int;  (** compute cycles between ops *)
  seed : int;
}

val default_config : config

type result = {
  total_ops : int;
  failed_ops : int;
  elapsed : int;
      (** cycles of the measured client phase (setup excluded) *)
  latency : Chorus_util.Histogram.t;  (** all ops *)
  per_op : (string * Chorus_util.Histogram.t) list;
      (** "read" / "write" / "stat" / "create" / "open" *)
}

val throughput : result -> float
(** Ops per Mcycle of the client phase. *)

module Make (F : Chorus_fsspec.Fsspec.S) : sig
  val setup : F.t -> config -> unit
  (** Create the directory tree and preload the file population.
      Call once, from inside the run, before spawning clients. *)

  val client : F.t -> config -> client_id:int -> result
  (** Run one client's op loop to completion (call in its own fiber). *)

  val run_clients : (int -> F.t) -> config -> result
  (** Spawn [config.clients] client fibers (each gets its own view via
      the argument), wait for all, merge results. *)
end
