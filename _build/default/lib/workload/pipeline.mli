(** N-stage pipeline workload.

    A classic channels-program shape: a source feeds items through a
    chain of worker stages to a sink.  Used by the placement experiment
    (E8: stages want to sit near their neighbours) and the
    blocking-vs-buffered experiment (E5: rendezvous hand-offs stall the
    pipeline, buffering decouples it). *)

type config = {
  stages : int;
  items : int;
  work_per_stage : int;  (** compute cycles per item per stage *)
  capacity : int;  (** inter-stage channel capacity; 0 = rendezvous *)
  words : int;  (** message payload size *)
  pair_affinity : bool;
      (** tag adjacent stages with a shared affinity key so gang
          placement can keep communicating neighbours together *)
}

val default_config : config

type result = {
  makespan_hint : int;  (** cycles from first send to last sink recv *)
  item_latency : Chorus_util.Histogram.t;  (** per-item end-to-end *)
}

val run : config -> result
(** Build the pipeline (fibers placed by the run's policy), push the
    items through, tear it down.  Call inside a run. *)
