module Rng = Chorus_util.Rng
module Zipf = Chorus_util.Zipf
module Histogram = Chorus_util.Histogram
module Fiber = Chorus.Fiber
module Fsspec = Chorus_fsspec.Fsspec

type mix = { read_ : int; write_ : int; stat_ : int; create_unlink : int }

let default_mix = { read_ = 60; write_ = 25; stat_ = 10; create_unlink = 5 }

type config = {
  clients : int;
  ops_per_client : int;
  files : int;
  dirs : int;
  file_size : int;
  io_size : int;
  theta : float;
  mix : mix;
  think : int;
  seed : int;
}

let default_config =
  { clients = 4;
    ops_per_client = 200;
    files = 64;
    dirs = 8;
    file_size = 8192;
    io_size = 512;
    theta = 0.9;
    mix = default_mix;
    think = 200;
    seed = 1 }

type result = {
  total_ops : int;
  failed_ops : int;
  elapsed : int;
  latency : Histogram.t;
  per_op : (string * Histogram.t) list;
}

let throughput r =
  if r.elapsed = 0 then 0.0
  else float_of_int r.total_ops *. 1_000_000.0 /. float_of_int r.elapsed

let dir_path cfg i = Printf.sprintf "/dir%d" (i mod cfg.dirs)

let file_path cfg i = Printf.sprintf "%s/file%d" (dir_path cfg i) i

let payload cfg seed =
  String.init cfg.io_size (fun i -> Char.chr (33 + ((seed + i) mod 90)))

module Make (F : Fsspec.S) = struct
  let setup fs cfg =
    for d = 0 to cfg.dirs - 1 do
      match F.mkdir fs (Printf.sprintf "/dir%d" d) with
      | Ok () -> ()
      | Error e -> failwith ("Fsload.setup mkdir: " ^ Fsspec.err_to_string e)
    done;
    let chunk = String.make (min cfg.file_size 4096) 'a' in
    for i = 0 to cfg.files - 1 do
      let path = file_path cfg i in
      (match F.create fs path with
      | Ok () -> ()
      | Error e -> failwith ("Fsload.setup create: " ^ Fsspec.err_to_string e));
      match F.open_ fs path with
      | Error e -> failwith ("Fsload.setup open: " ^ Fsspec.err_to_string e)
      | Ok fd ->
        let rec fill off =
          if off < cfg.file_size then begin
            let n = min (String.length chunk) (cfg.file_size - off) in
            (match F.write fs fd ~off (String.sub chunk 0 n) with
            | Ok _ -> ()
            | Error e ->
              failwith ("Fsload.setup write: " ^ Fsspec.err_to_string e));
            fill (off + n)
          end
        in
        fill 0;
        ignore (F.close fs fd)
    done

  type op_kind = Read | Write | Stat | Create_unlink

  let pick_op mix rng =
    let total = mix.read_ + mix.write_ + mix.stat_ + mix.create_unlink in
    let r = Rng.int rng total in
    if r < mix.read_ then Read
    else if r < mix.read_ + mix.write_ then Write
    else if r < mix.read_ + mix.write_ + mix.stat_ then Stat
    else Create_unlink

  let client fs cfg ~client_id =
    let rng = Rng.make (cfg.seed + (client_id * 7919) + 13) in
    let zipf = Zipf.make ~n:cfg.files ~theta:cfg.theta in
    let latency = Histogram.create () in
    let hist_of = Hashtbl.create 8 in
    let hist name =
      match Hashtbl.find_opt hist_of name with
      | Some h -> h
      | None ->
        let h = Histogram.create () in
        Hashtbl.replace hist_of name h;
        h
    in
    let failed = ref 0 in
    let timed name f =
      let t0 = Fiber.now () in
      let ok = f () in
      let dt = Fiber.now () - t0 in
      Histogram.record latency dt;
      Histogram.record (hist name) dt;
      if not ok then incr failed
    in
    (* one cached open fd per client per file it has touched *)
    let fds = Hashtbl.create 16 in
    let fd_for i =
      match Hashtbl.find_opt fds i with
      | Some fd -> Ok fd
      | None -> (
        match F.open_ fs (file_path cfg i) with
        | Ok fd ->
          Hashtbl.replace fds i fd;
          Ok fd
        | Error e -> Error e)
    in
    for op = 0 to cfg.ops_per_client - 1 do
      if cfg.think > 0 then Fiber.work cfg.think;
      let i = Zipf.sample zipf rng in
      match pick_op cfg.mix rng with
      | Read ->
        timed "read" (fun () ->
            match fd_for i with
            | Error _ -> false
            | Ok fd ->
              let off =
                Rng.int rng (max 1 (cfg.file_size - cfg.io_size))
              in
              Result.is_ok (F.read fs fd ~off ~len:cfg.io_size))
      | Write ->
        timed "write" (fun () ->
            match fd_for i with
            | Error _ -> false
            | Ok fd ->
              let off =
                Rng.int rng (max 1 (cfg.file_size - cfg.io_size))
              in
              Result.is_ok (F.write fs fd ~off (payload cfg op)))
      | Stat ->
        timed "stat" (fun () ->
            Result.is_ok (F.stat fs (file_path cfg i)))
      | Create_unlink ->
        timed "create" (fun () ->
            let p = Printf.sprintf "/dir%d/tmp-%d-%d" (client_id mod cfg.dirs)
                      client_id op in
            match F.create fs p with
            | Error _ -> false
            | Ok () -> Result.is_ok (F.unlink fs p))
    done;
    Hashtbl.iter (fun i fd -> ignore (F.close fs fd); ignore i) fds;
    { total_ops = cfg.ops_per_client;
      failed_ops = !failed;
      elapsed = 0;
      latency;
      per_op =
        Hashtbl.fold (fun name h acc -> (name, h) :: acc) hist_of []
        |> List.sort compare }

  let merge a b =
    let merge_assoc la lb =
      let names =
        List.sort_uniq compare (List.map fst la @ List.map fst lb)
      in
      List.map
        (fun n ->
          let get l =
            Option.value ~default:(Histogram.create ()) (List.assoc_opt n l)
          in
          (n, Histogram.merge (get la) (get lb)))
        names
    in
    { total_ops = a.total_ops + b.total_ops;
      failed_ops = a.failed_ops + b.failed_ops;
      elapsed = max a.elapsed b.elapsed;
      latency = Histogram.merge a.latency b.latency;
      per_op = merge_assoc a.per_op b.per_op }

  let run_clients view cfg =
    let results = Chorus.Chan.unbounded () in
    let t0 = Fiber.now () in
    let fibers =
      List.init cfg.clients (fun id ->
          Fiber.spawn ~label:(Printf.sprintf "client-%d" id) (fun () ->
              let r = client (view id) cfg ~client_id:id in
              Chorus.Chan.send results r))
    in
    List.iter (fun f -> ignore (Fiber.join f)) fibers;
    let elapsed = Fiber.now () - t0 in
    let rec collect acc n =
      if n = 0 then acc
      else collect (merge acc (Chorus.Chan.recv results)) (n - 1)
    in
    let merged =
      collect
        { total_ops = 0; failed_ops = 0; elapsed = 0;
          latency = Histogram.create (); per_op = [] }
        cfg.clients
    in
    { merged with elapsed }
end
