(** Global session types (choreographies) with endpoint projection.

    Where {!Ltype} describes one endpoint, a [Gtype.t] describes the
    whole conversation among named roles — "the file system asks the
    allocator, the allocator answers, then the file system tells the
    cache…" — and {!project} derives each role's local type
    mechanically.  Wiring components from projections of one global
    type rules out label mismatches by construction, which is the
    strongest form of the paper's Section 4 verification claim this
    library supports. *)

type t =
  | Msg of { sender : string; receiver : string; label : string; cont : t }
  | Choice of {
      sender : string;
      receiver : string;
      branches : (string * t) list;
    }  (** [sender] picks the label *)
  | Rec of string * t
  | Var of string
  | End

val msg : string -> string -> string -> t -> t
(** [msg p q l cont]: p sends l to q, then cont. *)

val roles : t -> string list
(** All role names, sorted. *)

val well_formed : t -> (unit, string) result
(** Checks self-messaging, duplicate labels, empty/unguarded
    recursion. *)

val project : t -> string -> (Ltype.t, string) result
(** [project g r] is role [r]'s local view.  Fails when [r] cannot
    consistently follow a choice it does not observe (the standard
    mergeability condition: a non-participant must behave identically
    in every branch). *)

val project_all : t -> (string * Ltype.t) list option
(** Every role's projection, or [None] if any projection fails. *)
