type t =
  | Msg of { sender : string; receiver : string; label : string; cont : t }
  | Choice of {
      sender : string;
      receiver : string;
      branches : (string * t) list;
    }
  | Rec of string * t
  | Var of string
  | End

let msg sender receiver label cont = Msg { sender; receiver; label; cont }

let rec collect_roles acc = function
  | End | Var _ -> acc
  | Rec (_, body) -> collect_roles acc body
  | Msg { sender; receiver; cont; _ } ->
    collect_roles (sender :: receiver :: acc) cont
  | Choice { sender; receiver; branches } ->
    List.fold_left
      (fun acc (_, k) -> collect_roles acc k)
      (sender :: receiver :: acc)
      branches

let roles g = List.sort_uniq compare (collect_roles [] g)

let rec well_formed_in env = function
  | End -> Ok ()
  | Var x ->
    if List.mem_assoc x env then
      if List.assoc x env then Ok ()
      else Error (Printf.sprintf "unguarded recursion on %s" x)
    else Error (Printf.sprintf "free recursion variable %s" x)
  | Rec (x, body) -> well_formed_in ((x, false) :: env) body
  | Msg { sender; receiver; cont; _ } ->
    if sender = receiver then
      Error (Printf.sprintf "role %s messages itself" sender)
    else
      well_formed_in (List.map (fun (x, _) -> (x, true)) env) cont
  | Choice { sender; receiver; branches } ->
    if sender = receiver then
      Error (Printf.sprintf "role %s messages itself" sender)
    else if branches = [] then Error "empty choice"
    else begin
      let labels = List.map fst branches in
      let rec dup = function
        | [] -> None
        | l :: rest -> if List.mem l rest then Some l else dup rest
      in
      match dup labels with
      | Some l -> Error (Printf.sprintf "duplicate label %s" l)
      | None ->
        let env = List.map (fun (x, _) -> (x, true)) env in
        List.fold_left
          (fun acc (_, k) ->
            match acc with Error _ -> acc | Ok () -> well_formed_in env k)
          (Ok ()) branches
    end

let well_formed g = well_formed_in [] g

(* The merge of a non-participant's views of a choice: identical
   behaviours merge trivially; distinct external choices (Recv) merge
   by label union provided common labels agree — the standard "full
   merge", which lets a role be told about an outcome it did not
   observe by whoever did. *)
let rec merge_two role p1 p2 =
  if p1 = p2 then Ok p1
  else
    match (p1, p2) with
    | Ltype.Recv b1, Ltype.Recv b2 ->
      let labels =
        List.sort_uniq compare (List.map fst b1 @ List.map fst b2)
      in
      let rec go acc = function
        | [] -> Ok (Ltype.Recv (List.rev acc))
        | l :: rest -> (
          match (List.assoc_opt l b1, List.assoc_opt l b2) with
          | Some k, None | None, Some k -> go ((l, k) :: acc) rest
          | Some k1, Some k2 -> (
            match merge_two role k1 k2 with
            | Ok k -> go ((l, k) :: acc) rest
            | Error e -> Error e)
          | None, None -> assert false)
      in
      go [] labels
    | _ ->
      Error
        (Printf.sprintf
           "role %s cannot tell the branches of a choice it does not \
            observe apart"
           role)

let merge_projections role projs =
  match projs with
  | [] -> Error "empty choice"
  | first :: rest ->
    List.fold_left
      (fun acc p ->
        match acc with Error e -> Error e | Ok m -> merge_two role m p)
      (Ok first) rest

let rec project g role =
  match g with
  | End -> Ok Ltype.End
  | Var x -> Ok (Ltype.Var x)
  | Rec (x, body) -> (
    match project body role with
    | Error e -> Error e
    | Ok (Ltype.Var y) when y = x ->
      (* the role does not participate in the loop at all *)
      Ok Ltype.End
    | Ok p -> Ok (Ltype.Rec (x, p)))
  | Msg { sender; receiver; label; cont } -> (
    match project cont role with
    | Error e -> Error e
    | Ok k ->
      if role = sender then Ok (Ltype.Send [ (label, k) ])
      else if role = receiver then Ok (Ltype.Recv [ (label, k) ])
      else Ok k)
  | Choice { sender; receiver; branches } ->
    let rec proj_branches acc = function
      | [] -> Ok (List.rev acc)
      | (l, k) :: rest -> (
        match project k role with
        | Error e -> Error e
        | Ok p -> proj_branches ((l, p) :: acc) rest)
    in
    (match proj_branches [] branches with
    | Error e -> Error e
    | Ok projs ->
      if role = sender then Ok (Ltype.Send projs)
      else if role = receiver then Ok (Ltype.Recv projs)
      else merge_projections role (List.map snd projs))

let project_all g =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | r :: rest -> (
      match project g r with
      | Ok p -> go ((r, p) :: acc) rest
      | Error _ -> None)
  in
  go [] (roles g)
