(** Local session types for channel protocols.

    Paper Section 4: "the use of messages, channels, and defined
    protocols offers some potential for static verification using
    techniques developed for networking software."  A [Ltype.t]
    describes one endpoint's view of a conversation: which message
    labels it may send or must be ready to receive, in what order.
    Two endpoints are safe to wire together when their types are
    {!compatible} (each send meets a matching receive). *)

type t =
  | Send of (string * t) list
      (** internal choice: we pick one label and continue *)
  | Recv of (string * t) list
      (** external choice: the peer picks; we must handle every label *)
  | Rec of string * t  (** recursion binder *)
  | Var of string
  | End

(** {1 Constructors} *)

val send : string -> t -> t
(** Single-label send. *)

val recv : string -> t -> t

val loop : string -> t -> t
(** [loop x body] is [Rec (x, body)]. *)

val finish : t

(** {1 Analysis} *)

val well_formed : t -> (unit, string) result
(** Checks: no free recursion variables, recursion is guarded (no
    [Rec (x, Var x)]), and choice labels are distinct. *)

val dual : t -> t
(** Mirror image: sends become receives and vice versa. *)

val unfold : t -> t
(** Expose the head constructor by unrolling one [Rec] if needed. *)

val compatible : t -> t -> bool
(** [compatible a b]: can endpoints following [a] and [b] interact
    forever without a message mismatch?  Coinductive check: [a] must
    behave as [dual b] up to unfolding, allowing the sender to use a
    subset of the labels the receiver handles (standard session
    subtyping). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
