type t =
  | Send of (string * t) list
  | Recv of (string * t) list
  | Rec of string * t
  | Var of string
  | End

let send l k = Send [ (l, k) ]

let recv l k = Recv [ (l, k) ]

let loop x body = Rec (x, body)

let finish = End

let rec well_formed_in env = function
  | End -> Ok ()
  | Var x ->
    if List.mem_assoc x env then
      if List.assoc x env then Ok ()
      else Error (Printf.sprintf "unguarded recursion on %s" x)
    else Error (Printf.sprintf "free recursion variable %s" x)
  | Rec (x, body) -> well_formed_in ((x, false) :: env) body
  | Send branches | Recv branches ->
    let labels = List.map fst branches in
    let rec dup = function
      | [] -> None
      | l :: rest -> if List.mem l rest then Some l else dup rest
    in
    (match dup labels with
    | Some l -> Error (Printf.sprintf "duplicate label %s" l)
    | None ->
      if branches = [] then Error "empty choice"
      else begin
        (* below a communication, every bound variable is guarded *)
        let env = List.map (fun (x, _) -> (x, true)) env in
        List.fold_left
          (fun acc (_, k) ->
            match acc with Error _ -> acc | Ok () -> well_formed_in env k)
          (Ok ()) branches
      end)

let well_formed t = well_formed_in [] t

let rec dual = function
  | End -> End
  | Var x -> Var x
  | Rec (x, body) -> Rec (x, dual body)
  | Send branches -> Recv (List.map (fun (l, k) -> (l, dual k)) branches)
  | Recv branches -> Send (List.map (fun (l, k) -> (l, dual k)) branches)

let rec subst x replacement = function
  | End -> End
  | Var y -> if y = x then replacement else Var y
  | Rec (y, body) ->
    if y = x then Rec (y, body) else Rec (y, subst x replacement body)
  | Send branches ->
    Send (List.map (fun (l, k) -> (l, subst x replacement k)) branches)
  | Recv branches ->
    Recv (List.map (fun (l, k) -> (l, subst x replacement k)) branches)

let rec unfold = function
  | Rec (x, body) as whole -> unfold (subst x whole body)
  | t -> t

(* Coinductive compatibility: explore pairs of (a, dual-expected b)
   states; assume visited pairs hold (standard for regular trees).
   Sender-side subtyping: a Send may offer a subset of what the peer's
   Recv handles; a Recv must cover everything the peer's Send may
   pick. *)
let compatible a b =
  let visited = Hashtbl.create 16 in
  let rec go a b =
    let key = (a, b) in
    if Hashtbl.mem visited key then true
    else begin
      Hashtbl.add visited key ();
      match (unfold a, unfold b) with
      | End, End -> true
      | Send abr, Recv bbr ->
        (* every label a may send, b handles; then continuations match *)
        List.for_all
          (fun (l, ka) ->
            match List.assoc_opt l bbr with
            | Some kb -> go ka kb
            | None -> false)
          abr
      | Recv abr, Send bbr ->
        List.for_all
          (fun (l, kb) ->
            match List.assoc_opt l abr with
            | Some ka -> go ka kb
            | None -> false)
          bbr
      | (End | Send _ | Recv _ | Rec _ | Var _), _ -> false
    end
  in
  go a b

let rec pp ppf = function
  | End -> Format.pp_print_string ppf "end"
  | Var x -> Format.pp_print_string ppf x
  | Rec (x, body) -> Format.fprintf ppf "rec %s.%a" x pp body
  | Send [ (l, k) ] -> Format.fprintf ppf "!%s.%a" l pp k
  | Recv [ (l, k) ] -> Format.fprintf ppf "?%s.%a" l pp k
  | Send branches ->
    Format.fprintf ppf "+{%a}" pp_branches branches
  | Recv branches ->
    Format.fprintf ppf "&{%a}" pp_branches branches

and pp_branches ppf branches =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (l, k) -> Format.fprintf ppf "%s: %a" l pp k)
    ppf branches

let to_string t = Format.asprintf "%a" pp t
