type action =
  | Send of string * string
  | Recv of string * string
  | Tau

type process = {
  pname : string;
  start : int;
  final : int list;
  transitions : (int * action * int) list;
}

type channel_decl = { cname : string; capacity : int }

type system = { processes : process list; channels : channel_decl list }

type verdict =
  | Ok_no_deadlock of { states_explored : int }
  | Deadlock of {
      states_explored : int;
      trace : string list;
      stuck : string list;
    }
  | Budget_exhausted of { states_explored : int }

(* A configuration: local state of each process plus the queued labels
   of each buffered channel. *)
type config = { locs : int list; queues : string list list }

let action_to_string who = function
  | Send (c, l) -> Printf.sprintf "%s: %s!%s" who c l
  | Recv (c, l) -> Printf.sprintf "%s: %s?%s" who c l
  | Tau -> Printf.sprintf "%s: tau" who

let check ?(max_states = 200_000) sys =
  let procs = Array.of_list sys.processes in
  let chans = Array.of_list sys.channels in
  let chan_index name =
    let rec go i =
      if i >= Array.length chans then
        invalid_arg ("Explore.check: unknown channel " ^ name)
      else if chans.(i).cname = name then i
      else go (i + 1)
    in
    go 0
  in
  (* validate channel references up front *)
  Array.iter
    (fun p ->
      List.iter
        (fun (_, a, _) ->
          match a with
          | Send (c, _) | Recv (c, _) -> ignore (chan_index c)
          | Tau -> ())
        p.transitions)
    procs;
  let outgoing p loc =
    List.filter (fun (s, _, _) -> s = loc) p.transitions
  in
  (* successor configurations with a description of the step taken *)
  let successors (cfg : config) =
    let locs = Array.of_list cfg.locs in
    let queues = Array.of_list cfg.queues in
    let succs = ref [] in
    let emit desc locs' queues' =
      succs :=
        (desc, { locs = Array.to_list locs'; queues = Array.to_list queues' })
        :: !succs
    in
    Array.iteri
      (fun i p ->
        List.iter
          (fun (_, a, dst) ->
            match a with
            | Tau ->
              let locs' = Array.copy locs in
              locs'.(i) <- dst;
              emit (action_to_string p.pname Tau) locs' queues
            | Send (cn, l) ->
              let ci = chan_index cn in
              if chans.(ci).capacity > 0 then begin
                if List.length queues.(ci) < chans.(ci).capacity then begin
                  let locs' = Array.copy locs in
                  locs'.(i) <- dst;
                  let queues' = Array.copy queues in
                  queues'.(ci) <- queues.(ci) @ [ l ];
                  emit (action_to_string p.pname a) locs' queues'
                end
              end
              else
                (* rendezvous: find a matching receiver in another
                   process *)
                Array.iteri
                  (fun j q ->
                    if j <> i then
                      List.iter
                        (fun (_, a2, dst2) ->
                          match a2 with
                          | Recv (cn2, l2) when cn2 = cn && l2 = l ->
                            let locs' = Array.copy locs in
                            locs'.(i) <- dst;
                            locs'.(j) <- dst2;
                            emit
                              (Printf.sprintf "%s -> %s on %s!%s" p.pname
                                 q.pname cn l)
                              locs' queues
                          | Recv _ | Send _ | Tau -> ())
                        (outgoing q locs.(j)))
                  procs
            | Recv (cn, l) ->
              let ci = chan_index cn in
              if chans.(ci).capacity > 0 then begin
                match queues.(ci) with
                | head :: rest when head = l ->
                  let locs' = Array.copy locs in
                  locs'.(i) <- dst;
                  let queues' = Array.copy queues in
                  queues'.(ci) <- rest;
                  emit (action_to_string p.pname a) locs' queues'
                | _ -> ()
              end
              (* rendezvous receives fire from the sender side *))
          (outgoing p locs.(i)))
      procs;
    List.rev !succs
  in
  let all_final cfg =
    List.for_all2
      (fun loc p -> List.mem loc p.final)
      cfg.locs (Array.to_list procs)
  in
  let stuck_report cfg =
    List.map2
      (fun loc p ->
        Printf.sprintf "%s at state %d%s" p.pname loc
          (if List.mem loc p.final then " (final)" else ""))
      cfg.locs (Array.to_list procs)
  in
  let initial =
    { locs = Array.to_list (Array.map (fun p -> p.start) procs);
      queues = Array.to_list (Array.map (fun _ -> []) chans) }
  in
  let visited : (config, unit) Hashtbl.t = Hashtbl.create 1024 in
  let parent : (config, config * string) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  Hashtbl.add visited initial ();
  Queue.push initial queue;
  let explored = ref 0 in
  let rec trace_of cfg acc =
    match Hashtbl.find_opt parent cfg with
    | None -> acc
    | Some (prev, desc) -> trace_of prev (desc :: acc)
  in
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    if !explored >= max_states then
      result := Some (Budget_exhausted { states_explored = !explored })
    else begin
      let cfg = Queue.pop queue in
      incr explored;
      let succs = successors cfg in
      if succs = [] && not (all_final cfg) then
        result :=
          Some
            (Deadlock
               { states_explored = !explored;
                 trace = trace_of cfg [];
                 stuck = stuck_report cfg })
      else
        List.iter
          (fun (desc, next) ->
            if not (Hashtbl.mem visited next) then begin
              Hashtbl.add visited next ();
              Hashtbl.add parent next (cfg, desc);
              Queue.push next queue
            end)
          succs
    end
  done;
  match !result with
  | Some v -> v
  | None -> Ok_no_deadlock { states_explored = !explored }

let pp_verdict ppf = function
  | Ok_no_deadlock { states_explored } ->
    Format.fprintf ppf "no deadlock (%d states)" states_explored
  | Budget_exhausted { states_explored } ->
    Format.fprintf ppf "budget exhausted after %d states" states_explored
  | Deadlock { states_explored; trace; stuck } ->
    Format.fprintf ppf "DEADLOCK after %d states@.  trace:@." states_explored;
    List.iter (fun s -> Format.fprintf ppf "    %s@." s) trace;
    Format.fprintf ppf "  stuck:@.";
    List.iter (fun s -> Format.fprintf ppf "    %s@." s) stuck
