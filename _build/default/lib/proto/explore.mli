(** Bounded state-space exploration of communicating processes.

    The static half of the paper's verification claim: a system of
    processes, each a finite automaton over send/receive actions on
    named channels, is explored exhaustively (up to a state budget) for
    global deadlocks — configurations where nobody can move but not
    everyone is finished.  Rendezvous channels synchronize sender and
    receiver; buffered channels hold up to their capacity of labels.

    This is the networking-protocol model-checking style (reachability
    in a product automaton) the paper alludes to; it finds the classic
    two-lock / crossed-rendezvous deadlocks in kernels built from
    autonomous message-passing components before they are run. *)

type action =
  | Send of string * string  (** channel, label *)
  | Recv of string * string
  | Tau  (** internal step *)

type process = {
  pname : string;
  start : int;
  final : int list;  (** states in which termination is acceptable *)
  transitions : (int * action * int) list;
}

type channel_decl = { cname : string; capacity : int (** 0 = rendezvous *) }

type system = { processes : process list; channels : channel_decl list }

type verdict =
  | Ok_no_deadlock of { states_explored : int }
  | Deadlock of {
      states_explored : int;
      trace : string list;  (** readable action path to the deadlock *)
      stuck : string list;  (** which processes are stuck, and where *)
    }
  | Budget_exhausted of { states_explored : int }

val check : ?max_states:int -> system -> verdict
(** Breadth-first reachability from the initial configuration;
    [max_states] defaults to 200_000. *)

val pp_verdict : Format.formatter -> verdict -> unit
