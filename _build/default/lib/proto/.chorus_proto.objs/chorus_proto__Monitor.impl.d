lib/proto/monitor.ml: Chorus List Ltype Option Printf
