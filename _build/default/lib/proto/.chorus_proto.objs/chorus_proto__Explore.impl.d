lib/proto/explore.ml: Array Format Hashtbl List Printf Queue
