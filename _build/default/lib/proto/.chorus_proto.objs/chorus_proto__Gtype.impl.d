lib/proto/gtype.ml: List Ltype Printf
