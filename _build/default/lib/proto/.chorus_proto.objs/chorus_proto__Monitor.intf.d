lib/proto/monitor.mli: Chorus Ltype
