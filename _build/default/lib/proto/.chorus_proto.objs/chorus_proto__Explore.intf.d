lib/proto/explore.mli: Format
