lib/proto/ltype.mli: Format
