lib/proto/ltype.ml: Format Hashtbl List Printf
