lib/proto/gtype.mli: Ltype
