module Chan = Chorus.Chan

exception Violation of string

type 'a t = {
  role : string;
  label_of : 'a -> string;
  tx : 'a Chan.t;
  rx : 'a Chan.t;
  mutable state : Ltype.t;
  mutable violations : int;
}

let create ~role ~spec ~label_of ?rx chan =
  (match Ltype.well_formed spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Monitor.create: " ^ e));
  { role; label_of; tx = chan; rx = Option.value ~default:chan rx;
    state = spec; violations = 0 }

let violate t msg =
  t.violations <- t.violations + 1;
  raise (Violation (Printf.sprintf "[%s] %s (at %s)" t.role msg
                      (Ltype.to_string t.state)))

let send ?words t v =
  let l = t.label_of v in
  match Ltype.unfold t.state with
  | Ltype.Send branches -> (
    match List.assoc_opt l branches with
    | Some k ->
      Chan.send ?words t.tx v;
      t.state <- k
    | None -> violate t (Printf.sprintf "sent unexpected label %S" l))
  | Ltype.Recv _ -> violate t (Printf.sprintf "sent %S when expecting to receive" l)
  | Ltype.End -> violate t (Printf.sprintf "sent %S after protocol end" l)
  | Ltype.Rec _ | Ltype.Var _ -> assert false

let recv t =
  match Ltype.unfold t.state with
  | Ltype.Recv branches -> (
    let v = Chan.recv t.rx in
    let l = t.label_of v in
    match List.assoc_opt l branches with
    | Some k ->
      t.state <- k;
      v
    | None -> violate t (Printf.sprintf "received unexpected label %S" l))
  | Ltype.Send _ -> violate t "receiving when expected to send"
  | Ltype.End -> violate t "receiving after protocol end"
  | Ltype.Rec _ | Ltype.Var _ -> assert false

let state t = t.state

let finished t = Ltype.unfold t.state = Ltype.End

let violations t = t.violations
