(** Runtime protocol enforcement.

    A monitor wraps one endpoint of a channel with a session type and
    checks every message label against the protocol state, raising
    {!Violation} the moment an endpoint misbehaves — turning a silent
    interleaving bug into an immediate, attributable failure.  This is
    the dynamic half of the paper's verification story (the static
    half is {!Explore}). *)

type 'a t

exception Violation of string

val create :
  role:string -> spec:Ltype.t -> label_of:('a -> string) ->
  ?rx:'a Chorus.Chan.t -> 'a Chorus.Chan.t -> 'a t
(** [create ~role ~spec ~label_of chan] monitors [chan] from the
    perspective of [role] following [spec].  [label_of] maps a message
    value to its protocol label.  For a bidirectional session over a
    channel pair, [chan] carries this role's sends and [?rx] (default
    [chan]) its receives.  Raises [Invalid_argument] when [spec] is
    not well-formed. *)

val send : ?words:int -> 'a t -> 'a -> unit
(** Checked send: the label must be one the protocol allows sending
    now. *)

val recv : 'a t -> 'a
(** Checked receive: the received label must be one the protocol
    expects. *)

val state : 'a t -> Ltype.t
(** Remaining protocol. *)

val finished : 'a t -> bool

val violations : 'a t -> int
(** How many violations this monitor has raised so far. *)
