(** Cycle cost model.

    All simulator accounting is in CPU cycles.  The constants below are
    order-of-magnitude figures for a ca. 2011 out-of-order x86 core
    (traps and IPIs in the hundreds of cycles, L1 hits in single
    digits, coherence misses in the tens-to-hundreds); the experiments
    depend on their *ratios*, and the presets expose the paper's key
    hypothetical — native hardware message support (Section 4) — as a
    cheaper message cost vector. *)

type t = {
  cycles_per_us : int;
      (** clock: cycles per microsecond (for human-readable output) *)
  call : int;  (** procedure call+return (E1 yardstick) *)
  fiber_switch : int;  (** resume one runnable fiber on a core *)
  fiber_spawn : int;  (** create a fiber (stacklet + descriptor) *)
  msg_inject : int;  (** fixed sender-side cost of one send *)
  msg_per_hop : int;  (** interconnect latency per link hop *)
  msg_per_word : int;  (** payload copy cost per machine word *)
  msg_receive : int;  (** fixed receiver-side cost of one receive *)
  mode_switch : int;  (** one-way user/kernel protection-domain cross *)
  cache_hit : int;  (** L1 hit *)
  cache_miss : int;  (** miss serviced from local LLC/memory *)
  coherence_per_hop : int;
      (** extra latency per hop when a line is fetched from a remote
          owner (directory coherence) *)
  atomic : int;  (** uncontended atomic RMW *)
  interrupt : int;  (** device interrupt delivery to a core *)
  signal_deliver : int;
      (** Unix signal: frame setup + handler entry + sigreturn *)
}

val software_messages : t
(** Messages implemented over cache-coherent shared memory (today's
    hardware): send/receive cost tens of cycles plus copies. *)

val hardware_messages : t
(** The paper's hypothesis: "future hardware will have native support
    for sending and receiving messages" — injection and delivery cost a
    few cycles and payload moves at line rate. *)

val scale_messages : t -> float -> t
(** [scale_messages c f] multiplies the four message-cost fields by
    [f] (sensitivity sweeps). *)

val pp : Format.formatter -> t -> unit
