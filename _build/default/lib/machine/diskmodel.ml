type t = { seek : int; per_block : int; block_size_words : int }

let default = { seek = 40_000; per_block = 4_000; block_size_words = 512 }

let service_time t ~last_block ~block =
  if block = last_block + 1 || block = last_block then t.per_block
  else t.seek + t.per_block
