(** Directory-coherence cost model for shared cache lines.

    The shared-memory baseline kernel charges its loads and stores
    through this module: each tracked line remembers its current owner
    (last writer) and sharer set, and an access returns the cycle cost
    the requesting core pays — a hit when the line is already local, a
    remote transfer scaled by hop distance otherwise, plus invalidation
    traffic on writes.  This is what makes lock contention and shared
    data structures *cost* something in the simulation, which is the
    mechanism behind the paper's "locks and shared memory do not scale"
    claim. *)

type line

val line : ?home:Topology.core -> unit -> line
(** [line ()] creates a line initially owned by its home node (core 0
    by default) with no sharers. *)

val read : Machine.t -> line -> Topology.core -> int
(** [read m l c] returns the cycles core [c] pays to load the line and
    records [c] as a sharer. *)

val write : ?now:int -> Machine.t -> line -> Topology.core -> int
(** [write m l c] returns the cycles core [c] pays to gain exclusive
    ownership: a transfer from the previous owner if remote plus an
    invalidation round to every other sharer (charged as the farthest
    sharer's round trip).

    When [now] (current virtual time) is supplied, exclusive accesses
    additionally {e serialize} on the line: ownership transfers queue
    behind one another, so N cores hammering one line see their costs
    grow linearly — the coherence collapse that makes hot locks and
    shared counters stop scaling.  This queueing is the physical
    mechanism behind the paper's Section 1 claim. *)

val rmw : ?now:int -> Machine.t -> line -> Topology.core -> int
(** [rmw m l c] is an atomic read-modify-write: [write] cost plus the
    atomic-operation cost.  This is the unit of lock traffic. *)

val owner : line -> Topology.core

val sharers : line -> int
(** Number of cores currently sharing the line (including the owner). *)

val reset : line -> Topology.core -> unit
(** Forget all sharers and set a fresh owner (used when a data
    structure is reinitialised between experiment phases). *)
