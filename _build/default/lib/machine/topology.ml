type shape =
  | Single
  | Crossbar of int
  | Ring of int
  | Mesh of int * int
  | Hierarchy of int * int * int

type t = { shape : shape; cores : int }

type core = int

let cluster_hop = 3
let die_hop = 8

let cores_of_shape = function
  | Single -> 1
  | Crossbar n | Ring n -> n
  | Mesh (w, h) -> w * h
  | Hierarchy (dies, clusters, per_cluster) -> dies * clusters * per_cluster

let make shape =
  let cores = cores_of_shape shape in
  if cores <= 0 then invalid_arg "Topology.make: no cores";
  (match shape with
  | Mesh (w, h) when w <= 0 || h <= 0 -> invalid_arg "Topology.make: bad mesh"
  | _ -> ());
  { shape; cores }

let shape t = t.shape

let cores t = t.cores

let check t c =
  if c < 0 || c >= t.cores then
    invalid_arg (Printf.sprintf "Topology: core %d out of range" c)

let hops t a b =
  check t a;
  check t b;
  if a = b then 0
  else
    match t.shape with
    | Single -> 0
    | Crossbar _ -> 1
    | Ring n ->
      let d = abs (a - b) in
      min d (n - d)
    | Mesh (w, _) ->
      let xa = a mod w and ya = a / w in
      let xb = b mod w and yb = b / w in
      abs (xa - xb) + abs (ya - yb)
    | Hierarchy (_, clusters, per_cluster) ->
      let cluster c = c / per_cluster in
      let die c = c / (clusters * per_cluster) in
      if die a <> die b then die_hop
      else if cluster a <> cluster b then cluster_hop
      else 1

let diameter t =
  match t.shape with
  | Single -> 0
  | Crossbar _ -> 1
  | Ring n -> n / 2
  | Mesh (w, h) -> (w - 1) + (h - 1)
  | Hierarchy (dies, clusters, _) ->
    if dies > 1 then die_hop else if clusters > 1 then cluster_hop else 1

let neighbours t c =
  check t c;
  match t.shape with
  | Single -> []
  | Crossbar n -> List.init n (fun i -> i) |> List.filter (fun i -> i <> c)
  | Ring n ->
    if n = 1 then []
    else if n = 2 then [ 1 - c ]
    else [ (c + n - 1) mod n; (c + 1) mod n ]
  | Mesh (w, h) ->
    let x = c mod w and y = c / w in
    let cand = [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ] in
    List.filter_map
      (fun (x, y) ->
        if x >= 0 && x < w && y >= 0 && y < h then Some ((y * w) + x)
        else None)
      cand
  | Hierarchy (_, _, per_cluster) ->
    let base = c / per_cluster * per_cluster in
    List.init per_cluster (fun i -> base + i)
    |> List.filter (fun i -> i <> c)

let to_string t =
  match t.shape with
  | Single -> "single"
  | Crossbar n -> Printf.sprintf "crossbar-%d" n
  | Ring n -> Printf.sprintf "ring-%d" n
  | Mesh (w, h) -> Printf.sprintf "mesh-%dx%d" w h
  | Hierarchy (d, cl, pc) -> Printf.sprintf "hier-%dx%dx%d" d cl pc

let pp ppf t = Format.pp_print_string ppf (to_string t)
