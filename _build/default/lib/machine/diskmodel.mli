(** Disk service-time model shared by both kernels.

    Both the message-passing kernel's single-fiber disk driver and the
    baseline's lock-based block layer consult the same model, so the
    storage hardware is identical across compared systems and only the
    software architecture differs. *)

type t = {
  seek : int;  (** cycles for a discontiguous access (head movement) *)
  per_block : int;  (** transfer cycles per block *)
  block_size_words : int;
}

val default : t
(** A fast 2011 SSD-ish device: ~20us discontiguous access, ~2us
    per-block transfer at 2GHz. *)

val service_time : t -> last_block:int -> block:int -> int
(** Cycles to service one block access given the previous head
    position: sequential accesses skip the seek. *)
