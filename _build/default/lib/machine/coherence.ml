module Iset = Set.Make (Int)

type line = {
  mutable owner : Topology.core;
  mutable sharers : Iset.t;
  mutable busy_until : int;  (** ownership-transfer queue head *)
}

let line ?(home = 0) () = { owner = home; sharers = Iset.empty; busy_until = 0 }

let read m l c =
  if l.owner = c || Iset.mem c l.sharers then
    (Machine.costs m).Cost.cache_hit
  else begin
    let cost = Machine.transfer_latency m ~owner:l.owner ~requester:c in
    l.sharers <- Iset.add c l.sharers;
    cost
  end

let write ?now m l c =
  let costs = Machine.costs m in
  let others = Iset.remove c l.sharers in
  if l.owner = c && Iset.is_empty others then costs.Cost.cache_hit
  else begin
    let fetch =
      if l.owner = c then costs.Cost.cache_hit
      else Machine.transfer_latency m ~owner:l.owner ~requester:c
    in
    (* Invalidations go out in parallel; the requester waits for the
       farthest acknowledgement. *)
    let inval =
      Iset.fold
        (fun s acc ->
          if s = c then acc
          else
            max acc
              (Machine.hops m s c * costs.Cost.coherence_per_hop))
        others 0
    in
    (* exclusive ownership transfers serialize: queue behind whatever
       transfer is already in flight *)
    let queueing =
      match now with
      | None -> 0
      | Some now ->
        let wait = max 0 (l.busy_until - now) in
        l.busy_until <- now + wait + fetch;
        wait
    in
    l.owner <- c;
    l.sharers <- Iset.singleton c;
    queueing + fetch + inval
  end

let rmw ?now m l c = write ?now m l c + (Machine.costs m).Cost.atomic

let owner l = l.owner

let sharers l =
  Iset.cardinal (Iset.add l.owner l.sharers)

let reset l c =
  l.owner <- c;
  l.sharers <- Iset.empty
