(** On-chip topology: how many cores there are and how far apart any
    two of them sit.

    The paper's target is "hundreds of cores or more in a single chip".
    The distance function feeds the interconnect cost model: a message
    between cores is charged per hop, so topology shapes every
    cross-core cost in the simulator.  [Hierarchy] models the realistic
    core → cluster → die packaging where intra-cluster hops are cheap
    and die crossings expensive. *)

type shape =
  | Single                     (** one core, no interconnect *)
  | Crossbar of int            (** n cores, uniform 1-hop all-to-all *)
  | Ring of int                (** n cores on a bidirectional ring *)
  | Mesh of int * int          (** [Mesh (w, h)]: 2D mesh, XY routing *)
  | Hierarchy of int * int * int
      (** [Hierarchy (dies, clusters_per_die, cores_per_cluster)] *)

type t

type core = int
(** Cores are numbered [0 .. cores-1]. *)

val make : shape -> t

val shape : t -> shape

val cores : t -> int

val hops : t -> core -> core -> int
(** [hops t a b] is the routing distance in link hops; 0 when [a = b].
    For [Hierarchy] a hop count is synthesized as: 1 within a cluster,
    [3] crossing clusters on one die, [8] crossing dies. *)

val diameter : t -> int
(** Maximum [hops] over all core pairs. *)

val neighbours : t -> core -> core list
(** Directly linked cores (used by locality-aware placement). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
