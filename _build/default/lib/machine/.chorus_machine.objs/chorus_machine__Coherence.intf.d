lib/machine/coherence.mli: Machine Topology
