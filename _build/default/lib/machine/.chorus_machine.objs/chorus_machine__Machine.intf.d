lib/machine/machine.mli: Cost Topology
