lib/machine/diskmodel.ml:
