lib/machine/machine.ml: Cost Printf Topology
