lib/machine/topology.ml: Format List Printf
