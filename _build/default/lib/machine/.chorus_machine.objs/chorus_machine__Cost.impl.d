lib/machine/cost.ml: Float Format
