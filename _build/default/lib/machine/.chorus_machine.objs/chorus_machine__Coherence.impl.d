lib/machine/coherence.ml: Cost Int Machine Set Topology
