lib/machine/diskmodel.mli:
