type t = {
  cycles_per_us : int;
  call : int;
  fiber_switch : int;
  fiber_spawn : int;
  msg_inject : int;
  msg_per_hop : int;
  msg_per_word : int;
  msg_receive : int;
  mode_switch : int;
  cache_hit : int;
  cache_miss : int;
  coherence_per_hop : int;
  atomic : int;
  interrupt : int;
  signal_deliver : int;
}

let software_messages =
  {
    cycles_per_us = 2000;
    call = 5;
    fiber_switch = 30;
    fiber_spawn = 80;
    msg_inject = 24;
    msg_per_hop = 6;
    msg_per_word = 2;
    msg_receive = 24;
    mode_switch = 150;
    cache_hit = 4;
    cache_miss = 40;
    coherence_per_hop = 5;
    atomic = 20;
    interrupt = 400;
    signal_deliver = 800;
  }

let hardware_messages =
  {
    software_messages with
    msg_inject = 4;
    msg_per_hop = 1;
    msg_per_word = 1;
    msg_receive = 4;
  }

let scale_messages c f =
  let s x = max 1 (int_of_float (Float.round (float_of_int x *. f))) in
  {
    c with
    msg_inject = s c.msg_inject;
    msg_per_hop = s c.msg_per_hop;
    msg_per_word = s c.msg_per_word;
    msg_receive = s c.msg_receive;
  }

let pp ppf c =
  Format.fprintf ppf
    "call=%d switch=%d spawn=%d msg=(%d,+%d/hop,+%d/w,%d) trap=%d miss=%d"
    c.call c.fiber_switch c.fiber_spawn c.msg_inject c.msg_per_hop
    c.msg_per_word c.msg_receive c.mode_switch c.cache_miss
