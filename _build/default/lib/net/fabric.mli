(** A lossy network fabric connecting simulated NICs.

    The paper remarks that its proposed kernel "is structurally more
    similar to a client/server network application … than to either
    traditional kernel design", and that verification can borrow
    "techniques developed for networking software".  This substrate
    makes that concrete: nodes exchange frames over a fabric with
    latency and (optionally) loss, each NIC's transmit side is a
    single-fiber driver exactly like {!Chorus_kernel.Blockdev}, and the
    receive side delivers frames as messages on a channel — the
    "interrupt" is just a recv.

    Frames are typed records (no byte-level encoding): the simulation
    cares about counts, sizes and ordering, not wire formats. *)

type frame = {
  src : int;
  dst : int;
  port : int;
  seq : int;
  payload : string;
}

type t

type nic

val create : ?latency:int -> ?loss:float -> ?seed:int -> unit -> t
(** [create ()] builds a fabric; [latency] is the one-way frame delay
    in cycles (default 5000 — an on-package interconnect between
    nodes), [loss] a uniform drop probability (default 0). *)

val attach : t -> ?label:string -> unit -> nic
(** Add a node: spawns its transmit-driver fiber and returns the NIC.
    Addresses are assigned 0, 1, 2, … in attach order. *)

val addr : nic -> int

val transmit : nic -> frame -> unit
(** Queue a frame for transmission (never blocks; the driver fiber
    serializes the actual sends). The [src] field is overwritten with
    this NIC's address. *)

val rx : nic -> frame Chorus.Chan.t
(** The receive channel: every frame addressed to this NIC (and not
    lost) appears here in transmission order per sender. *)

val frames_sent : t -> int

val frames_dropped : t -> int

val frames_delivered : t -> int
