lib/net/netkv.ml: Chorus Hashtbl Printf Stack String
