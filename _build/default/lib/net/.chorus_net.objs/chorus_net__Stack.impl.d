lib/net/stack.ml: Chorus Fabric Hashtbl Printf
