lib/net/fabric.mli: Chorus
