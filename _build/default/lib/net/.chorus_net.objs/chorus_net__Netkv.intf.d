lib/net/netkv.mli: Stack
