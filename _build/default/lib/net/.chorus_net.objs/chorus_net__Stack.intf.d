lib/net/stack.mli: Chorus Fabric
