lib/net/fabric.ml: Chorus Chorus_util List Printf String
