module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rng = Chorus_util.Rng

type frame = {
  src : int;
  dst : int;
  port : int;
  seq : int;
  payload : string;
}

type nic = {
  naddr : int;
  tx : frame Chan.t;  (** to the driver fiber *)
  rx_ch : frame Chan.t;
}

type t = {
  latency : int;
  loss : float;
  rng : Rng.t;
  wire : (int * frame * nic) Chan.t;
      (** (deliver_at, frame, destination): drained by the wire pump *)
  mutable nics : nic list;  (** reversed attach order *)
  mutable next_addr : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
}

let frame_words f = 6 + ((String.length f.payload + 7) / 8)

(* The wire pump carries frames in flight: it sleeps until each
   frame's arrival time and posts it on the destination's rx channel
   (the receive interrupt). *)
let wire_pump t =
  let rec loop () =
    let deliver_at, f, dst = Chan.recv t.wire in
    let now = Fiber.now () in
    if deliver_at > now then Fiber.sleep (deliver_at - now);
    t.delivered <- t.delivered + 1;
    if not (Chan.is_closed dst.rx_ch) then
      Chan.send ~words:(frame_words f) dst.rx_ch f;
    loop ()
  in
  loop ()

let create ?(latency = 5_000) ?(loss = 0.0) ?(seed = 17) () =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Fabric.create: loss";
  let t =
    { latency; loss; rng = Rng.make seed; wire = Chan.unbounded ~label:"wire" ();
      nics = []; next_addr = 0; sent = 0; dropped = 0; delivered = 0 }
  in
  ignore (Fiber.spawn ~label:"wire-pump" ~daemon:true (fun () -> wire_pump t));
  t

let find_nic t addr = List.find_opt (fun n -> n.naddr = addr) t.nics

(* The transmit driver: one fiber per NIC, straight-line code, no
   locks (paper Section 4's driver pattern). *)
let driver t nic =
  let rec loop () =
    let f = Chan.recv nic.tx in
    (* serialization/DMA time proportional to the frame *)
    Fiber.work (40 + (frame_words f * 2));
    t.sent <- t.sent + 1;
    (if Rng.bernoulli t.rng t.loss then t.dropped <- t.dropped + 1
     else
       match find_nic t f.dst with
       | None -> t.dropped <- t.dropped + 1
       | Some dst ->
         Chan.send ~words:2 t.wire (Fiber.now () + t.latency, f, dst));
    loop ()
  in
  loop ()

let attach t ?label () =
  let naddr = t.next_addr in
  t.next_addr <- naddr + 1;
  let label =
    match label with Some l -> l | None -> Printf.sprintf "nic-%d" naddr
  in
  let nic =
    { naddr;
      tx = Chan.unbounded ~label:(label ^ "-tx") ();
      rx_ch = Chan.unbounded ~label:(label ^ "-rx") () }
  in
  t.nics <- nic :: t.nics;
  ignore
    (Fiber.spawn ~label:(label ^ "-driver") ~daemon:true (fun () ->
         driver t nic));
  nic

let addr nic = nic.naddr

let transmit nic f =
  Chan.send ~words:(frame_words f) nic.tx { f with src = nic.naddr }

let rx nic = nic.rx_ch

let frames_sent t = t.sent

let frames_dropped t = t.dropped

let frames_delivered t = t.delivered
