(** Per-node protocol stack: port demultiplexing plus a reliable
    request/response protocol over the lossy {!Fabric}.

    Structure follows the paper's model: the demux is an autonomous
    fiber that owns the NIC's receive channel and routes frames to
    per-port channels; the reliable layer is ordinary client code built
    from [choose] — a retransmission is literally a timeout arm firing.
    Duplicate suppression on the server side uses a last-seq cache per
    peer, so retried requests execute exactly once. *)

type t

val create : Fabric.t -> Fabric.nic -> t
(** Spawn the demux fiber for this NIC. *)

val addr : t -> int

val listen : t -> port:int -> Fabric.frame Chorus.Chan.t
(** The channel of frames arriving on [port].  One listener per port;
    raises [Invalid_argument] on a duplicate. *)

val send : t -> dst:int -> port:int -> ?seq:int -> string -> unit
(** Fire-and-forget datagram. *)

(** {1 Reliable request/response} *)

type rel_stats = {
  mutable calls : int;
  mutable retransmissions : int;
  mutable failures : int;  (** gave up after max attempts *)
  mutable duplicates_served : int;  (** server-side replays suppressed *)
}

val rel_stats : t -> rel_stats

val call :
  t -> dst:int -> port:int -> ?timeout:int -> ?attempts:int -> string ->
  string option
(** [call t ~dst ~port req] sends the request and waits for the
    matching reply, retransmitting on [timeout] (default 4x the wire
    round trip heuristic: 50k cycles) up to [attempts] times (default
    5).  [None] when every attempt timed out. *)

val serve : t -> port:int -> (src:int -> string -> string) -> unit
(** Serve requests on [port] forever (run in a daemon fiber):
    deduplicates retransmitted requests by (peer, seq), replaying the
    cached reply instead of re-executing the handler. *)
