(* E18 — message weight classes (paper Section 2).

   The related-work section sorts messaging systems into weight
   classes: lightweight channels (this paper, Erlang, Go), synchronous
   kernel IPC ("really procedure calls" — L4), and middleweight port
   IPC (Mach, distributed OSes).  All three run the same null-RPC
   exercise on the same machine: a server increments an integer.

   Prediction implicit in Section 2-3: lightweight channels sit well
   under L4, which sits well under Mach — that ordering is the paper's
   reason to reject existing microkernel IPC as the substrate. *)

open Exp_common
module Fiber = Chorus.Fiber
module Rpc = Chorus.Rpc
module Machipc = Chorus_baseline.Machipc

let n_calls ~quick = pick ~quick 2_000 20_000

type mech = Chan_rpc | L4_sync | Mach_port

let name = function
  | Chan_rpc -> "lightweight channel rpc"
  | L4_sync -> "L4-style synchronous ipc"
  | Mach_port -> "Mach-style port ipc"

let latency_of ~quick ~seed mech =
  let n = n_calls ~quick in
  let (), stats =
    run ~seed ~cores:4 (fun () ->
        match mech with
        | Chan_rpc ->
          let ep = Rpc.endpoint () in
          let _srv =
            Fiber.spawn ~on:1 ~daemon:true (fun () ->
                Rpc.serve ep (fun x -> x + 1))
          in
          let f =
            Fiber.spawn ~on:0 (fun () ->
                for i = 1 to n do
                  ignore (Rpc.call ep i)
                done)
          in
          ignore (Fiber.join f)
        | L4_sync ->
          let gate = Machipc.Sync.create () in
          let _srv =
            Fiber.spawn ~on:1 ~daemon:true (fun () ->
                Machipc.Sync.serve gate (fun x -> x + 1))
          in
          let f =
            Fiber.spawn ~on:0 (fun () ->
                for i = 1 to n do
                  ignore (Machipc.Sync.call gate i)
                done)
          in
          ignore (Fiber.join f)
        | Mach_port ->
          let port = Machipc.Port.create () in
          let _srv =
            Fiber.spawn ~on:1 ~daemon:true (fun () ->
                let rec loop () =
                  let x, reply = Machipc.Port.recv port in
                  Machipc.Port.send reply (x + 1);
                  loop ()
                in
                loop ())
          in
          let f =
            Fiber.spawn ~on:0 (fun () ->
                for i = 1 to n do
                  ignore (Machipc.Port.rpc port i)
                done)
          in
          ignore (Fiber.join f))
  in
  float_of_int stats.Runstats.makespan /. float_of_int n

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:"E18: null RPC by message weight class (cycles per call)"
      ~columns:
        [ ("mechanism", Tablefmt.Left);
          ("cycles/call", Tablefmt.Right);
          ("x channels", Tablefmt.Right) ]
  in
  let base = latency_of ~quick ~seed Chan_rpc in
  List.iter
    (fun mech ->
      let lat = latency_of ~quick ~seed mech in
      Tablefmt.add_row t
        [ name mech;
          Tablefmt.cell_float lat;
          Tablefmt.cell_float (lat /. base) ])
    [ Chan_rpc; L4_sync; Mach_port ];
  [ t ]
