(* E19 — scheduling the kernel's own threads (Section 5).

   Once drivers and services are ordinary threads, they compete with
   application work for cores — a difficulty the paper's "new range of
   difficulties" umbrella covers.  Here a compute-heavy application
   floods every core while a client performs disk reads.  The
   blockdev driver and bcache shards run either at normal priority
   (they queue behind the batch work on every wake-up) or at high
   priority (they jump the run queue, like an interrupt context).

   Measured: disk-read latency seen by the client (the batch hogs run
   for as long as the reader does, so the run makespan tracks the
   reader's completion). *)

open Exp_common
module Fiber = Chorus.Fiber
module Histogram = Chorus_util.Histogram
module Diskmodel = Chorus_machine.Diskmodel
module Blockdev = Chorus_kernel.Blockdev

let cores = 8

let run_one ~quick ~seed ~priority =
  let reads = pick ~quick 100 600 in
  let latency = Histogram.create () in
  let (), stats =
    run ~seed ~cores (fun () ->
        let dev = Blockdev.start ~priority ~disk:Diskmodel.default () in
        (* background batch load: several runnable fibers per core, so
           every wake-up finds a queue to stand in (or jump) *)
        let stop = ref false in
        let hogs =
          List.init (cores * 4) (fun i ->
              Fiber.spawn ~on:(i mod cores) ~label:"hog" (fun () ->
                  while not !stop do
                    Fiber.work 8_000;
                    Fiber.yield ()
                  done))
        in
        let client =
          Fiber.spawn ~on:0 ~priority ~label:"reader" (fun () ->
              for i = 1 to reads do
                let t0 = Fiber.now () in
                ignore (Blockdev.read dev (i * 7));
                Histogram.record latency (Fiber.now () - t0)
              done)
        in
        ignore (Fiber.join client);
        stop := true;
        List.iter (fun f -> ignore (Fiber.join f)) hogs)
  in
  (latency, stats)

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:
        "E19: disk-read latency under an 8-core compute flood, by \
         service priority"
      ~columns:
        [ ("service priority", Tablefmt.Left);
          ("read mean", Tablefmt.Right);
          ("read p99", Tablefmt.Right);
          ("makespan", Tablefmt.Right) ]
  in
  List.iter
    (fun (name, priority) ->
      let latency, stats = run_one ~quick ~seed ~priority in
      Tablefmt.add_row t
        [ name;
          Tablefmt.cell_float (mean_cycles latency);
          string_of_int (Histogram.percentile latency 99.0);
          string_of_int stats.Runstats.makespan ])
    [ ("normal (queue behind batch)", Fiber.Normal);
      ("high (interrupt-style)", Fiber.High) ];
  [ t ]
