lib/experiments/e17_vm_strawman.ml: Array Chorus Chorus_baseline Chorus_fsspec Chorus_kernel Chorus_net Chorus_util Exp_common Hashtbl List Printf String Tablefmt
