lib/experiments/e03_scaling.ml: Chorus Chorus_baseline Chorus_kernel Chorus_workload Exp_common List Printf Tablefmt
