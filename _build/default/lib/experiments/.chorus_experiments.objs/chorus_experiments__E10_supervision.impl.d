lib/experiments/e10_supervision.ml: Array Chorus Chorus_kernel Chorus_util Chorus_workload Exp_common List Printf Tablefmt
