lib/experiments/e08_placement.ml: Chorus Chorus_sched Chorus_workload Exp_common List Runstats Tablefmt
