lib/experiments/e19_driver_priority.ml: Chorus Chorus_kernel Chorus_machine Chorus_util Exp_common List Runstats Tablefmt
