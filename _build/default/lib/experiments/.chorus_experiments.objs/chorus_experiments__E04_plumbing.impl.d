lib/experiments/e04_plumbing.ml: Chorus_baseline Chorus_kernel Chorus_workload Exp_common List Tablefmt
