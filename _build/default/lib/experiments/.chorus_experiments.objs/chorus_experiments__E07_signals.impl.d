lib/experiments/e07_signals.ml: Chorus Chorus_baseline Chorus_util Exp_common Runstats Tablefmt
