lib/experiments/e05_buffering.ml: Chorus_util Chorus_workload Exp_common List Tablefmt
