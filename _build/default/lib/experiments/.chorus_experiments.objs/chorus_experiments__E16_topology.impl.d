lib/experiments/e16_topology.ml: Chorus_kernel Chorus_machine Chorus_workload Exp_common List Machine Runstats Tablefmt
