lib/experiments/e12_libos.ml: Chorus_kernel Chorus_workload Exp_common Tablefmt
