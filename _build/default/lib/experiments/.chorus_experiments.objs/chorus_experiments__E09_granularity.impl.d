lib/experiments/e09_granularity.ml: Chorus Chorus_kernel Exp_common List Printf Runstats Tablefmt
