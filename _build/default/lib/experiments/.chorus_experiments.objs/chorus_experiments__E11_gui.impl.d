lib/experiments/e11_gui.ml: Chorus_util Chorus_workload Exp_common Tablefmt
