lib/experiments/e14_verification.ml: Chorus Chorus_proto Exp_common List Printf String Tablefmt
