lib/experiments/e06_choice.ml: Array Chorus Exp_common List Runstats Tablefmt
