lib/experiments/experiments.mli: Chorus_util
