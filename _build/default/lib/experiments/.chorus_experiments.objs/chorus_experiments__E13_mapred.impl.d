lib/experiments/e13_mapred.ml: Chorus_workload Exp_common List Runstats Tablefmt
