lib/experiments/e01_primitives.ml: Chorus Exp_common Runstats Tablefmt
