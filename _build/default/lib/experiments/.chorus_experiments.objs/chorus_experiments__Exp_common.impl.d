lib/experiments/exp_common.ml: Chorus Chorus_machine Chorus_sched Chorus_util
