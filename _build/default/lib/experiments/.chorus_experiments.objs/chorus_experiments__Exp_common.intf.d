lib/experiments/exp_common.mli: Chorus Chorus_machine Chorus_sched Chorus_util
