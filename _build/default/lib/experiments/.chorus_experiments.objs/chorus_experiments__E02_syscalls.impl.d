lib/experiments/e02_syscalls.ml: Array Chorus Chorus_baseline Exp_common List Printf Runstats Tablefmt
