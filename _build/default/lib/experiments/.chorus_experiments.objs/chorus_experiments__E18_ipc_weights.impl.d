lib/experiments/e18_ipc_weights.ml: Chorus Chorus_baseline Exp_common List Runstats Tablefmt
